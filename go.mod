module fairrw

go 1.22
