// Package fairlock provides task-fair (FIFO) reader-writer locks for Go,
// mirroring the semantics the paper's Lock Control Unit implements in
// hardware: strict arrival-order admission with consecutive readers
// admitted together, writer and reader starvation freedom, and trylock /
// timed acquisition (the paper's trylock support, Figure 2).
//
// Unlike sync.RWMutex — whose writers block new readers but which makes no
// ordering guarantee among writers — fairlock.RWMutex guarantees that
// every waiter is admitted in arrival order: a continuous stream of
// readers cannot starve a writer, and a stream of writers cannot starve a
// reader beyond the writers already queued ahead of it.
//
// Internally the lock is built in three layers, mirroring how the LCU
// composes with its fallback path:
//
//  1. a single atomic state word (readers | writer | bias | queue length)
//     gives Lock/Unlock/RLock/RUnlock an allocation-free CAS fast path
//     whenever there is no contention;
//  2. a BRAVO-style distributed reader table (bravo.go) lets concurrent
//     readers scale across cores while no writer holds or waits — the
//     fast path is open exactly when TryRLock would succeed, so fairness
//     is unchanged;
//  3. the contended path parks waiters on an intrusive pooled FIFO
//     (waiter.go), preserving arrival order and reader-batch admission
//     without allocating per acquire.
//
// The original single-mutex implementation is preserved as RefRWMutex /
// RefMutex (reference.go) and the differential tests check the two
// implementations admit identically.
package fairlock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// State word layout (RWMutex.state):
//
//	bits 0..29   central reader count (readers admitted via the slow path)
//	bit  30      writer holds the lock
//	bit  31      read bias enabled (BRAVO slot fast path open)
//	bits 32..63  queue length (waiters parked in q)
//
// Queue-length bits only change under qmu, so the queue structure and its
// length in the word can never disagree while qmu is held; reader/writer
// bits change by lock-free CAS from any path.
const (
	writerBit  uint64 = 1 << 30
	biasBit    uint64 = 1 << 31
	readerMask uint64 = writerBit - 1
	qShift            = 32
	qOne       uint64 = 1 << qShift
)

// Bias policy: try to enable the read bias every biasRetryGrants central
// read grants, and after a revocation that had to drain live readers,
// inhibit re-enabling for biasInhibitMult times the drain cost.
const (
	biasRetryGrants = 64
	biasInhibitMult = 9
)

// RWMutex is a fair FIFO reader-writer lock. The zero value is ready to
// use. An RWMutex must not be copied after first use.
type RWMutex struct {
	state atomic.Uint64

	qmu sync.Mutex // guards q and the queue-length bits of state
	q   waitq

	grantsR atomic.Uint64 // central-path read grants (slot grants live in slots)
	grantsW atomic.Uint64

	inhibitUntil atomic.Int64 // unix nanos before which bias may not re-enable
	everBiased   atomic.Bool  // bias was enabled at least once (drain gate)

	cohort       atomic.Pointer[cohortState] // cohort batching config (nil = off)
	cohortGrants atomic.Uint64               // grants handed out of FIFO order to a cohort-mate

	slots [numSlots]rslot // BRAVO distributed reader indicator
}

// spinGrants is how many times a contended acquirer retries its fast path
// (yielding in between) before parking on the FIFO. Spinning delays the
// waiter's own arrival, so it cannot overtake anyone already queued; it
// just avoids the full park/handoff round trip when the holder is about
// to release.
const spinGrants = 4

// fissileSpins is the budget of the fissile TATAS phase (Dice & Kogan,
// "Fissile Locks"): how many active probes of the state word a contended
// acquirer makes before it starts yielding whole scheduling quanta. The
// active probes resolve the common near-miss — the holder releasing
// within a few dozen nanoseconds — without surrendering the P, which is
// what closes the gap to sync.RWMutex under light contention. Zero
// disables the phase (the pre-fissile behavior); the bench matrix sweeps
// it. Spinning still never overtakes a queued waiter: every probe checks
// the queue-length bits first.
var fissileSpins atomic.Int32

const defaultFissileSpins = 64

func init() {
	// Active spinning only pays when the holder can run concurrently; on
	// a single-core machine a spinner just delays the holder's release
	// (the same gate sync.Mutex applies through runtime_canSpin).
	if runtime.NumCPU() > 1 {
		fissileSpins.Store(defaultFissileSpins)
	}
}

// setFissileSpins adjusts the TATAS budget and returns the previous value
// (bench/test knob).
func setFissileSpins(n int32) int32 { return fissileSpins.Swap(n) }

// Lock acquires the lock in write (exclusive) mode.
func (m *RWMutex) Lock() {
	if m.state.CompareAndSwap(0, writerBit) {
		m.grantsW.Add(1)
	} else if !m.spinAcquire(true) {
		if w := m.enqueue(true); w != nil {
			<-w.ready
			putWaiter(w)
		}
	}
	if m.everBiased.Load() {
		m.drainSlots()
	}
}

// RLock acquires the lock in read (shared) mode. The biased slot publish
// is laid out inline so the steady-state read path (bias on) runs without
// an extra call frame; everything else defers to rlockFast.
func (m *RWMutex) RLock() {
	if m.state.Load()&biasBit != 0 {
		sl := &m.slots[slotIndex()]
		sl.word.Add(slotGrant + 1)
		if m.state.Load()&biasBit != 0 {
			return
		}
		m.retract(sl)
	}
	if m.rlockFast() {
		return
	}
	if m.spinAcquire(false) {
		return
	}
	if w := m.enqueue(false); w != nil {
		<-w.ready
		putWaiter(w)
	}
}

// spinAcquire retries the fast path before the caller parks on the FIFO:
// first the fissile TATAS phase (bounded active probes of the state
// word), then a few retries separated by yields. It gives up as soon as
// anyone is queued: spinning only delays this waiter's own arrival, so it
// can never overtake a queued waiter, it just avoids the park/handoff
// round trip when the holder is about to release.
func (m *RWMutex) spinAcquire(write bool) bool {
	for i, n := int32(0), fissileSpins.Load(); i < n; i++ {
		s := m.state.Load()
		if s>>qShift != 0 {
			return false
		}
		if write {
			if s&biasBit != 0 {
				// Fast-path readers never observe a spinning writer; only
				// enqueue revokes the bias. Go revoke instead.
				return false
			}
			if s == 0 && m.state.CompareAndSwap(0, writerBit) {
				m.grantsW.Add(1)
				return true
			}
		} else if s&writerBit == 0 && m.rlockFast() {
			return true
		}
	}
	for i := 0; i < spinGrants; i++ {
		runtime.Gosched()
		s := m.state.Load()
		if s>>qShift != 0 {
			return false
		}
		if write {
			if s&biasBit != 0 {
				// Only enqueue revokes the bias, so spinning can never
				// succeed against a biased lock — and each yield is a full
				// scheduling quantum when fast-path readers never block.
				// Go revoke instead.
				return false
			}
			if s == 0 && m.state.CompareAndSwap(0, writerBit) {
				m.grantsW.Add(1)
				return true
			}
		} else if m.rlockFast() {
			return true
		}
	}
	return false
}

// rlockFast is the uncontended read path: the BRAVO slot publish when the
// lock is read-biased, otherwise a CAS on the central count when no writer
// holds or waits. It succeeds exactly when TryRLock would.
func (m *RWMutex) rlockFast() bool {
	s := m.state.Load()
	if s&biasBit != 0 {
		sl := &m.slots[slotIndex()]
		// One RMW publishes the read credit and counts the grant.
		sl.word.Add(slotGrant + 1)
		if m.state.Load()&biasBit != 0 {
			// Bias still on after publishing: any revoking writer will see
			// our slot and drain it before entering its critical section.
			return true
		}
		// Revoked between publish and recheck: the writer may have scanned
		// past our slot already. Retract and go through the central path.
		m.retract(sl)
		s = m.state.Load()
	}
	for s&writerBit == 0 && s>>qShift == 0 {
		if m.state.CompareAndSwap(s, s+1) {
			m.grantedCentralRead()
			return true
		}
		s = m.state.Load()
	}
	return false
}

// grantedCentralRead accounts a central-path read grant and periodically
// attempts to re-enable the read bias.
func (m *RWMutex) grantedCentralRead() {
	if n := m.grantsR.Add(1); n%biasRetryGrants == 0 {
		m.tryEnableBias()
	}
}

// enqueue takes the slow path: an immediate grant if the lock is free and
// nothing is queued (re-checked under qmu), otherwise a pooled waiter
// appended to the FIFO. A writer revokes the read bias in the same CAS
// that publishes it, so no new slot readers can slip past a queued writer.
// It returns nil on immediate grant.
func (m *RWMutex) enqueue(write bool) *waiter {
	// The cohort tag is derived before qmu so a user CohortFunc can never
	// deadlock against the hand-off path.
	cohort := m.enqueueCohort()
	m.qmu.Lock()
	for {
		s := m.state.Load()
		if s>>qShift == 0 && s&writerBit == 0 && (!write || s&readerMask == 0) {
			var ns uint64
			if write {
				ns = (s | writerBit) &^ biasBit
			} else {
				ns = s + 1
			}
			if !m.state.CompareAndSwap(s, ns) {
				continue
			}
			m.qmu.Unlock()
			if write {
				m.grantsW.Add(1)
			} else {
				m.grantedCentralRead()
			}
			return nil
		}
		ns := s + qOne
		if write {
			ns &^= biasBit
		}
		if !m.state.CompareAndSwap(s, ns) {
			continue
		}
		w := newWaiter(write)
		w.cohort = cohort
		m.q.pushBack(w)
		m.qmu.Unlock()
		return w
	}
}

// admit grants the lock to the queue head — and, for a reader head, to
// every consecutive reader behind it (the reader-batch admission of the
// paper's read-grant chaining) — in strict FIFO order. Hand-offs from a
// release go through admitWith (cohort.go) instead, which may batch
// grants within the releaser's cohort. Callers hold qmu.
func (m *RWMutex) admit() { m.admitWith(noCohort) }

// Unlock releases write mode. It panics if the lock is not write-held.
func (m *RWMutex) Unlock() {
	for {
		s := m.state.Load()
		if s&writerBit == 0 {
			panic("fairlock: Unlock of non-write-locked RWMutex")
		}
		if m.state.CompareAndSwap(s, s&^writerBit) {
			if s>>qShift != 0 {
				rc := m.releaseCohort()
				m.qmu.Lock()
				m.admitWith(rc)
				m.qmu.Unlock()
			}
			return
		}
	}
}

// RUnlock releases read mode. It panics if the lock is not read-held.
// While the lock is read-biased the release is a single blind decrement
// of the hashed slot's packed word: if the reader half goes negative the
// credit was not here (P migration, cross-goroutine unlock, or acquired
// before the bias came on) — undo the borrow and fall back to the full
// credit hunt.
func (m *RWMutex) RUnlock() {
	sl := &m.slots[slotIndex()]
	if m.state.Load()&biasBit != 0 {
		n := sl.word.Add(^uint64(0))
		if slotReaders(n) >= 0 {
			return
		}
		sl.word.Add(1)
	}
	m.releaseReadCredit(sl, true)
}

// tryLockDrain bounds how long TryLock waits on slot credits that appear
// between its table scan and its CAS. A reader racing the scan either
// retracts (it saw the bias off — gone within a few scheduling quanta) or
// committed, in which case the grant is rolled back and TryLock fails
// rather than wait out a reader critical section.
const tryLockDrain = 100 * time.Microsecond

// slotsEmpty reports whether no fast-path reader is published in the
// BRAVO table at the instant of the scan.
func (m *RWMutex) slotsEmpty() bool {
	for i := range m.slots {
		if slotReaders(m.slots[i].word.Load()) != 0 {
			return false
		}
	}
	return true
}

// TryLock attempts write mode without waiting. Consistent with fairness,
// it fails whenever anyone holds the lock or waits for it — including
// fast-path readers published in the BRAVO table. Such readers can be
// live even when the state word is zero: a timed write that rolled back
// mid-drain (finishTimedWrite) leaves the bias off with slot credits
// still outstanding, so both idle states must scan the table.
func (m *RWMutex) TryLock() bool {
	s := m.state.Load()
	if s != 0 && s != biasBit {
		return false
	}
	if m.everBiased.Load() && !m.slotsEmpty() {
		// Hidden slot readers hold the lock; granting would either block
		// on their critical sections or break mutual exclusion.
		return false
	}
	if !m.state.CompareAndSwap(s, writerBit) {
		return false
	}
	m.grantsW.Add(1)
	if !m.everBiased.Load() {
		return true
	}
	// A reader that published between our scan and the CAS drains within
	// the bound if it is retracting; otherwise the grant rolls back and
	// the trylock fails — it never waits on a held read lock.
	return m.finishTimedWrite(time.Now().Add(tryLockDrain))
}

// TryRLock attempts read mode without waiting. It fails if a writer holds
// the lock or any waiter is queued (jumping the queue would be unfair).
func (m *RWMutex) TryRLock() bool {
	return m.rlockFast()
}

// TryLockFor attempts write mode, waiting in queue up to d. On timeout the
// waiter leaves the queue in O(1) (the LCU's expired-trylock entry is
// skipped by its grant timer; here we unlink it synchronously).
func (m *RWMutex) TryLockFor(d time.Duration) bool { return m.tryFor(true, d) }

// TryRLockFor attempts read mode, waiting in queue up to d.
func (m *RWMutex) TryRLockFor(d time.Duration) bool { return m.tryFor(false, d) }

func (m *RWMutex) tryFor(write bool, d time.Duration) bool {
	var w *waiter
	var deadline time.Time
	if write {
		deadline = time.Now().Add(d)
		if m.state.CompareAndSwap(0, writerBit) {
			m.grantsW.Add(1)
			return m.finishTimedWrite(deadline)
		}
		if w = m.enqueue(true); w == nil {
			return m.finishTimedWrite(deadline)
		}
	} else {
		if m.rlockFast() {
			return true
		}
		if w = m.enqueue(false); w == nil {
			return true
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-w.ready:
		putWaiter(w)
		if write {
			return m.finishTimedWrite(deadline)
		}
		return true
	case <-timer.C:
	}
	// Timed out: unlink ourselves, but the grant may have raced the timer.
	if m.abandonWait(w) {
		return false
	}
	// Already unlinked by a grant: the token is (or will be) in the
	// channel; we hold the lock.
	<-w.ready
	putWaiter(w)
	if write {
		return m.finishTimedWrite(deadline)
	}
	return true
}

// finishTimedWrite completes a timed write acquisition that already owns
// the writer bit: fast-path readers must drain before the critical
// section, but only until the caller's deadline. One of those readers can
// be a slot credit held by the calling goroutine itself (an upgrade
// attempt), which will never leave — the reference lock resolves that by
// timing out in queue, so on expiry the grant is rolled back, un-counted,
// and the acquire reports failure.
func (m *RWMutex) finishTimedWrite(deadline time.Time) bool {
	if m.drainSlotsUntil(deadline) {
		return true
	}
	m.rollbackWrite()
	return false
}

// rollbackWrite surrenders a writer bit whose acquisition is being
// abandoned before the critical section was entered: the grant is
// un-counted and any queued waiters are admitted, exactly as if the
// writer had never been granted.
func (m *RWMutex) rollbackWrite() {
	m.grantsW.Add(^uint64(0)) // un-count the rolled-back grant
	for {
		s := m.state.Load()
		if m.state.CompareAndSwap(s, s&^writerBit) {
			if s>>qShift != 0 {
				m.qmu.Lock()
				m.admit()
				m.qmu.Unlock()
			}
			return
		}
	}
}

// cancelDrainSlice bounds each slot-drain attempt of a cancellable write
// acquisition, so revocation is observed within a scheduling quantum or
// two even against a reader that never leaves.
const cancelDrainSlice = 200 * time.Microsecond

// finishCancelWrite completes a cancellable write acquisition that already
// owns the writer bit: fast-path readers drain in bounded slices, checking
// cancel between slices. On cancellation the grant is rolled back and the
// acquire reports failure — like a timed write whose deadline passed.
func (m *RWMutex) finishCancelWrite(cancel <-chan struct{}) bool {
	for !m.drainSlotsUntil(time.Now().Add(cancelDrainSlice)) {
		select {
		case <-cancel:
			m.rollbackWrite()
			return false
		default:
		}
	}
	return true
}

// LockCancel acquires write mode like Lock, but abandons the attempt when
// cancel is closed — the revocation hook a lock service needs to evict the
// queued waiters of a dead session without disturbing arrival order for
// anyone else. It reports whether the lock was acquired. A cancelled
// waiter leaves the queue in O(1); if the grant races the cancellation,
// the caller owns the lock and true is returned (the service releases it
// when it finds the session gone).
func (m *RWMutex) LockCancel(cancel <-chan struct{}) bool {
	if m.state.CompareAndSwap(0, writerBit) {
		m.grantsW.Add(1)
		return m.finishCancelWrite(cancel)
	}
	w := m.enqueue(true)
	if w == nil {
		return m.finishCancelWrite(cancel)
	}
	select {
	case <-w.ready:
		putWaiter(w)
		return m.finishCancelWrite(cancel)
	case <-cancel:
	}
	if m.abandonWait(w) {
		return false
	}
	// Already unlinked by a grant: consume the token; we hold the lock.
	<-w.ready
	putWaiter(w)
	return m.finishCancelWrite(cancel)
}

// RLockCancel acquires read mode like RLock, but abandons the attempt when
// cancel is closed. It reports whether the lock was acquired (see
// LockCancel for the grant/cancel race).
func (m *RWMutex) RLockCancel(cancel <-chan struct{}) bool {
	if m.rlockFast() {
		return true
	}
	w := m.enqueue(false)
	if w == nil {
		return true
	}
	select {
	case <-w.ready:
		putWaiter(w)
		return true
	case <-cancel:
	}
	if m.abandonWait(w) {
		return false
	}
	<-w.ready
	putWaiter(w)
	return true
}

// abandonWait unlinks a waiter whose timeout or cancellation fired. It
// reports whether the waiter was still queued (and is now gone); false
// means a grant won the race and its token is (or will be) in w.ready.
func (m *RWMutex) abandonWait(w *waiter) bool {
	m.qmu.Lock()
	if !w.queued {
		m.qmu.Unlock()
		return false
	}
	m.q.remove(w)
	for {
		s := m.state.Load()
		if m.state.CompareAndSwap(s, s-qOne) {
			break
		}
	}
	// Our departure may unblock followers (e.g. a writer that was queued
	// behind the reader-batch boundary this waiter formed).
	m.admit()
	m.qmu.Unlock()
	putWaiter(w)
	return true
}

// RLocker returns a sync.Locker whose Lock and Unlock call RLock and
// RUnlock, making RWMutex a drop-in replacement for sync.RWMutex.
func (m *RWMutex) RLocker() sync.Locker { return (*rlocker)(m) }

type rlocker RWMutex

func (r *rlocker) Lock()   { (*RWMutex)(r).RLock() }
func (r *rlocker) Unlock() { (*RWMutex)(r).RUnlock() }

// Stats returns the cumulative number of read and write grants. Slot
// grant counters live in the high half of each packed slot word (they
// wrap mod 2^32 per slot, and a blind RUnlock borrow can skew a slot by
// one transiently), so the sums are exact at quiescence and approximate
// under concurrent fast-path traffic — fine for the diagnostics they
// feed.
func (m *RWMutex) Stats() (readGrants, writeGrants uint64) {
	r := m.grantsR.Load()
	for i := range m.slots {
		r += m.slots[i].word.Load() >> 32
	}
	return r, m.grantsW.Load()
}

// QueueLen returns the current number of queued waiters (diagnostics).
func (m *RWMutex) QueueLen() int { return int(m.state.Load() >> qShift) }

// Compile-time drop-in-replacement asserts: fairlock's locks expose the
// same method sets as their sync counterparts.
type rwLocker interface {
	sync.Locker
	RLock()
	RUnlock()
	TryLock() bool
	TryRLock() bool
	RLocker() sync.Locker
}

type tryLocker interface {
	sync.Locker
	TryLock() bool
}

var (
	_ rwLocker  = (*RWMutex)(nil)
	_ rwLocker  = (*sync.RWMutex)(nil)
	_ tryLocker = (*Mutex)(nil)
	_ tryLocker = (*sync.Mutex)(nil)
)
