// Package fairlock provides task-fair (FIFO) reader-writer locks for Go,
// mirroring the semantics the paper's Lock Control Unit implements in
// hardware: strict arrival-order admission with consecutive readers
// admitted together, writer and reader starvation freedom, and trylock /
// timed acquisition (the paper's trylock support, Figure 2).
//
// Unlike sync.RWMutex — whose writers block new readers but which makes no
// ordering guarantee among writers — fairlock.RWMutex guarantees that
// every waiter is admitted in arrival order: a continuous stream of
// readers cannot starve a writer, and a stream of writers cannot starve a
// reader beyond the writers already queued ahead of it.
package fairlock

import (
	"sync"
	"time"
)

// waiter is one queued acquisition.
type waiter struct {
	write bool
	ready chan struct{} // closed when the lock is granted
}

// RWMutex is a fair FIFO reader-writer lock. The zero value is ready to
// use. An RWMutex must not be copied after first use.
type RWMutex struct {
	mu      sync.Mutex
	readers int  // active readers
	writer  bool // active writer
	queue   []*waiter

	// stats
	grantsR, grantsW uint64
}

// admit grants the lock to the queue head — and, for a reader head, to
// every consecutive reader behind it (the reader-batch admission of the
// paper's read-grant chaining). Callers hold mu.
func (m *RWMutex) admit() {
	for len(m.queue) > 0 {
		h := m.queue[0]
		if h.write {
			if m.readers == 0 && !m.writer {
				m.writer = true
				m.grantsW++
				m.queue = m.queue[1:]
				close(h.ready)
			}
			return
		}
		if m.writer {
			return
		}
		m.readers++
		m.grantsR++
		m.queue = m.queue[1:]
		close(h.ready)
	}
}

// enqueue appends a waiter unless the lock is immediately available (no
// queue and no conflicting holder). It returns nil on immediate grant.
func (m *RWMutex) enqueue(write bool) *waiter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 && !m.writer && (!write || m.readers == 0) {
		if write {
			m.writer = true
			m.grantsW++
		} else {
			m.readers++
			m.grantsR++
		}
		return nil
	}
	w := &waiter{write: write, ready: make(chan struct{})}
	m.queue = append(m.queue, w)
	return w
}

// Lock acquires the lock in write (exclusive) mode.
func (m *RWMutex) Lock() {
	if w := m.enqueue(true); w != nil {
		<-w.ready
	}
}

// RLock acquires the lock in read (shared) mode.
func (m *RWMutex) RLock() {
	if w := m.enqueue(false); w != nil {
		<-w.ready
	}
}

// Unlock releases write mode. It panics if the lock is not write-held.
func (m *RWMutex) Unlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.writer {
		panic("fairlock: Unlock of non-write-locked RWMutex")
	}
	m.writer = false
	m.admit()
}

// RUnlock releases read mode. It panics if the lock is not read-held.
func (m *RWMutex) RUnlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.readers == 0 {
		panic("fairlock: RUnlock of non-read-locked RWMutex")
	}
	m.readers--
	if m.readers == 0 {
		m.admit()
	}
}

// TryLock attempts write mode without waiting. Consistent with fairness,
// it fails whenever anyone holds the lock or waits for it.
func (m *RWMutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 && !m.writer && m.readers == 0 {
		m.writer = true
		m.grantsW++
		return true
	}
	return false
}

// TryRLock attempts read mode without waiting. It fails if a writer holds
// the lock or any waiter is queued (jumping the queue would be unfair).
func (m *RWMutex) TryRLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 && !m.writer {
		m.readers++
		m.grantsR++
		return true
	}
	return false
}

// TryLockFor attempts write mode, waiting in queue up to d. On timeout the
// waiter leaves the queue (the LCU's expired-trylock entry is skipped by
// its grant timer; here we remove it synchronously).
func (m *RWMutex) TryLockFor(d time.Duration) bool { return m.tryFor(true, d) }

// TryRLockFor attempts read mode, waiting in queue up to d.
func (m *RWMutex) TryRLockFor(d time.Duration) bool { return m.tryFor(false, d) }

func (m *RWMutex) tryFor(write bool, d time.Duration) bool {
	w := m.enqueue(write)
	if w == nil {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-w.ready:
		return true
	case <-timer.C:
	}
	// Timed out: remove ourselves, but the grant may have raced the timer.
	m.mu.Lock()
	for i, q := range m.queue {
		if q == w {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			// Our departure may unblock followers (e.g. a writer that was
			// queued behind this reader batch boundary).
			m.admit()
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	// Not in the queue: the grant won the race; we hold the lock.
	<-w.ready
	return true
}

// Stats returns the cumulative number of read and write grants.
func (m *RWMutex) Stats() (readGrants, writeGrants uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grantsR, m.grantsW
}

// QueueLen returns the current number of queued waiters (diagnostics).
func (m *RWMutex) QueueLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
