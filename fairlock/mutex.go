package fairlock

import (
	"sync"
	"time"
)

// Mutex is a FIFO-fair mutual-exclusion lock: waiters are admitted in
// strict arrival order, like the write mode of RWMutex (and unlike
// sync.Mutex, whose unlock can be barged by a spinning newcomer). It also
// provides the trylock and timed acquisition of the paper's Figure 2.
// The zero value is ready to use.
type Mutex struct {
	mu     sync.Mutex
	held   bool
	queue  []chan struct{}
	grants uint64
}

// Lock acquires the mutex, queueing FIFO behind earlier waiters.
func (m *Mutex) Lock() {
	m.mu.Lock()
	if !m.held && len(m.queue) == 0 {
		m.held = true
		m.grants++
		m.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	m.queue = append(m.queue, ch)
	m.mu.Unlock()
	<-ch
}

// Unlock releases the mutex, handing it directly to the queue head.
func (m *Mutex) Unlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.held {
		panic("fairlock: Unlock of unlocked Mutex")
	}
	if len(m.queue) > 0 {
		ch := m.queue[0]
		m.queue = m.queue[1:]
		m.grants++
		close(ch) // ownership transfers directly; held stays true
		return
	}
	m.held = false
}

// TryLock acquires the mutex only if it is free and nobody waits.
func (m *Mutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held || len(m.queue) > 0 {
		return false
	}
	m.held = true
	m.grants++
	return true
}

// TryLockFor acquires the mutex, waiting in queue at most d.
func (m *Mutex) TryLockFor(d time.Duration) bool {
	m.mu.Lock()
	if !m.held && len(m.queue) == 0 {
		m.held = true
		m.grants++
		m.mu.Unlock()
		return true
	}
	ch := make(chan struct{})
	m.queue = append(m.queue, ch)
	m.mu.Unlock()

	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-timer.C:
	}
	m.mu.Lock()
	for i, q := range m.queue {
		if q == ch {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	<-ch // the grant raced the timeout: we own the lock
	return true
}

// Grants returns the cumulative number of acquisitions (diagnostics).
func (m *Mutex) Grants() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grants
}
