package fairlock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Mutex is a FIFO-fair mutual-exclusion lock: waiters are admitted in
// strict arrival order, like the write mode of RWMutex (and unlike
// sync.Mutex, whose unlock can be barged by a spinning newcomer). It also
// provides the trylock and timed acquisition of the paper's Figure 2.
// The zero value is ready to use.
//
// Like RWMutex it is layered: an allocation-free CAS fast path on a single
// state word (bit 0 = held, bits 32..63 = queue length), and a contended
// path that parks waiters on the intrusive pooled FIFO. Unlock hands the
// lock directly to the queue head — held never clears while anyone waits,
// so there is no barging window.
type Mutex struct {
	state  atomic.Uint64
	qmu    sync.Mutex // guards q and the queue-length bits of state
	q      waitq
	grants atomic.Uint64
}

const heldBit uint64 = 1

// Lock acquires the mutex, queueing FIFO behind earlier waiters.
func (m *Mutex) Lock() {
	if m.state.CompareAndSwap(0, heldBit) {
		m.grants.Add(1)
		return
	}
	// Fissile TATAS phase, then a brief yield-spin, before parking: a
	// spinner delays only its own arrival (it acquires nothing while
	// anyone is queued), so FIFO order among queued waiters is unaffected.
	for i, n := int32(0), fissileSpins.Load(); i < n; i++ {
		s := m.state.Load()
		if s>>qShift != 0 {
			break
		}
		if s == 0 && m.state.CompareAndSwap(0, heldBit) {
			m.grants.Add(1)
			return
		}
	}
	for i := 0; i < spinGrants; i++ {
		runtime.Gosched()
		s := m.state.Load()
		if s>>qShift != 0 {
			break
		}
		if s == 0 && m.state.CompareAndSwap(0, heldBit) {
			m.grants.Add(1)
			return
		}
	}
	if w := m.enqueue(); w != nil {
		<-w.ready
		putWaiter(w)
	}
}

// enqueue re-checks for an immediate grant under qmu, otherwise parks a
// pooled waiter. Returns nil on immediate grant.
func (m *Mutex) enqueue() *waiter {
	m.qmu.Lock()
	for {
		s := m.state.Load()
		if s == 0 {
			if !m.state.CompareAndSwap(0, heldBit) {
				continue
			}
			m.qmu.Unlock()
			m.grants.Add(1)
			return nil
		}
		if !m.state.CompareAndSwap(s, s+qOne) {
			continue
		}
		w := newWaiter(true)
		m.q.pushBack(w)
		m.qmu.Unlock()
		return w
	}
}

// Unlock releases the mutex, handing it directly to the queue head.
func (m *Mutex) Unlock() {
	for {
		s := m.state.Load()
		if s&heldBit == 0 {
			panic("fairlock: Unlock of unlocked Mutex")
		}
		if s>>qShift == 0 {
			if m.state.CompareAndSwap(s, 0) {
				return
			}
			continue
		}
		m.qmu.Lock()
		if h := m.q.head; h != nil {
			m.q.remove(h)
			for {
				s := m.state.Load()
				if m.state.CompareAndSwap(s, s-qOne) {
					break
				}
			}
			m.grants.Add(1)
			h.ready <- struct{}{} // ownership transfers directly; held stays set
			m.qmu.Unlock()
			return
		}
		// Every waiter timed out between our load and taking qmu; the
		// queue-length bits are already back to zero. Retry the fast path.
		m.qmu.Unlock()
	}
}

// TryLock acquires the mutex only if it is free and nobody waits.
func (m *Mutex) TryLock() bool {
	if m.state.CompareAndSwap(0, heldBit) {
		m.grants.Add(1)
		return true
	}
	return false
}

// TryLockFor acquires the mutex, waiting in queue at most d. A timed-out
// waiter unlinks itself in O(1).
func (m *Mutex) TryLockFor(d time.Duration) bool {
	if m.state.CompareAndSwap(0, heldBit) {
		m.grants.Add(1)
		return true
	}
	w := m.enqueue()
	if w == nil {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-w.ready:
		putWaiter(w)
		return true
	case <-timer.C:
	}
	m.qmu.Lock()
	if w.queued {
		m.q.remove(w)
		for {
			s := m.state.Load()
			if m.state.CompareAndSwap(s, s-qOne) {
				break
			}
		}
		m.qmu.Unlock()
		putWaiter(w)
		return false
	}
	m.qmu.Unlock()
	<-w.ready // the grant raced the timeout: we own the lock
	putWaiter(w)
	return true
}

// Grants returns the cumulative number of acquisitions (diagnostics).
func (m *Mutex) Grants() uint64 { return m.grants.Load() }

// QueueLen returns the current number of queued waiters (diagnostics).
func (m *Mutex) QueueLen() int { return int(m.state.Load() >> qShift) }
