package fairlock

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// The benchmark matrix behind BENCH_fairlock.json: goroutine count ×
// read ratio × critical-section length × flavor, with the flavor
// innermost so one process run alternates fair/cohort/nofissile/ref/sync
// on each cell and adjacent output rows compare directly. Every row
// self-describes its environment (gomaxprocs, num_cpu, and the cohort
// bound B) through b.ReportMetric, so the emitted rows are
// machine-readable without knowing how the run was launched. Parallelism
// is driven through b.SetParallelism so the matrix is meaningful at any
// GOMAXPROCS.
//
// CI runs a short smoke slice of this matrix; regenerate the full matrix
// with:
//
//	GOMAXPROCS=8 go test -run '^$' -bench 'BenchmarkRWMutex|BenchmarkCohortB' -benchmem ./fairlock

// benchRWLock is the minimal surface the matrix needs; satisfied by
// RWMutex, RefRWMutex and sync.RWMutex.
type benchRWLock interface {
	Lock()
	Unlock()
	RLock()
	RUnlock()
}

// spin simulates a critical section of roughly fixed length without
// sleeping or allocating.
func spin(n int) {
	for i := 0; i < n; i++ {
		benchSink++
	}
}

var benchSink int

// rwFlavor is one column of the matrix: which implementation, whether
// cohort batching is on (and with what bound B), and the fissile TATAS
// budget in force while the cell runs.
type rwFlavor struct {
	name    string
	batch   int32 // cohort bound B (0 = cohort off)
	fissile int32 // TATAS budget while the cell runs; -1 = platform default
	mk      func(batch int32) benchRWLock
}

func newFairLock(batch int32) benchRWLock {
	m := &RWMutex{}
	if batch > 0 {
		m.SetCohort(CohortConfig{Batch: batch})
	}
	return m
}

var rwFlavors = []rwFlavor{
	{name: "fair", fissile: -1, mk: newFairLock},
	{name: "cohort", batch: 4, fissile: -1, mk: newFairLock},
	{name: "nofissile", fissile: 0, mk: newFairLock},
	{name: "ref", fissile: -1, mk: func(int32) benchRWLock { return &RefRWMutex{} }},
	{name: "sync", fissile: -1, mk: func(int32) benchRWLock { return &sync.RWMutex{} }},
}

// benchCell runs one matrix cell and stamps the self-describing metrics.
func benchCell(b *testing.B, m benchRWLock, g, readPct, cs int, batch int32) {
	b.SetParallelism(g)
	b.ReportAllocs()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(runtime.NumCPU()), "num_cpu")
	b.ReportMetric(float64(batch), "B")
	b.ReportMetric(float64(fissileSpins.Load()), "fissile_spins")
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%100 < readPct {
				m.RLock()
				spin(cs)
				m.RUnlock()
			} else {
				m.Lock()
				spin(cs)
				m.Unlock()
			}
			i++
		}
	})
}

func BenchmarkRWMutex(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		for _, readPct := range []int{100, 95, 90, 50} {
			for _, cs := range []int{0, 64} {
				for _, fl := range rwFlavors {
					fl := fl
					name := fmt.Sprintf("g%d/r%d/cs%d/%s", g, readPct, cs, fl.name)
					b.Run(name, func(b *testing.B) {
						if fl.fissile >= 0 {
							prev := setFissileSpins(fl.fissile)
							defer setFissileSpins(prev)
						}
						benchCell(b, fl.mk(fl.batch), g, readPct, cs, fl.batch)
					})
				}
			}
		}
	}
}

// BenchmarkCohortB sweeps the cohort bound at the contended mixed cell
// (g8/r90/cs0), reporting how often batching bent FIFO order so the
// fairness/throughput trade-off curve in EXPERIMENTS.md can be read
// straight off the rows.
func BenchmarkCohortB(b *testing.B) {
	for _, batch := range []int32{1, 2, 4, 8, 16} {
		batch := batch
		b.Run(fmt.Sprintf("g8/r90/cs0/B%d", batch), func(b *testing.B) {
			m := &RWMutex{}
			m.SetCohort(CohortConfig{Batch: batch})
			benchCell(b, m, 8, 90, 0, batch)
			b.ReportMetric(float64(m.CohortGrants())/float64(b.N), "cohort_grants/op")
		})
	}
}

// BenchmarkUncontended measures the single-goroutine fast paths — the
// 0 allocs/op CAS paths the alloc guard pins.
func BenchmarkUncontended(b *testing.B) {
	b.Run("fair/Lock", func(b *testing.B) {
		var m RWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("fair/RLock", func(b *testing.B) {
		var m RWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.RLock()
			m.RUnlock()
		}
	})
	b.Run("ref/Lock", func(b *testing.B) {
		var m RefRWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("ref/RLock", func(b *testing.B) {
		var m RefRWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.RLock()
			m.RUnlock()
		}
	})
	b.Run("sync/Lock", func(b *testing.B) {
		var m sync.RWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("sync/RLock", func(b *testing.B) {
		var m sync.RWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.RLock()
			m.RUnlock()
		}
	})
	b.Run("fair/Mutex", func(b *testing.B) {
		var m Mutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("ref/Mutex", func(b *testing.B) {
		var m RefMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
}

// BenchmarkMutexContended compares the contended mutex path (pooled
// intrusive queue vs per-acquire channel allocation).
func BenchmarkMutexContended(b *testing.B) {
	type locker interface {
		Lock()
		Unlock()
	}
	for _, impl := range []struct {
		name string
		mk   func() locker
	}{
		{"fair", func() locker { return &Mutex{} }},
		{"ref", func() locker { return &RefMutex{} }},
		{"sync", func() locker { return &sync.Mutex{} }},
	} {
		b.Run(impl.name, func(b *testing.B) {
			m := impl.mk()
			b.SetParallelism(4)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					m.Lock()
					spin(16)
					m.Unlock()
				}
			})
		})
	}
}
