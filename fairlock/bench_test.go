package fairlock

import (
	"fmt"
	"sync"
	"testing"
)

// The benchmark matrix behind BENCH_fairlock.json: implementation
// (new fairlock / Ref reference model / sync.RWMutex) × goroutine count ×
// read ratio × critical-section length. Parallelism is driven through
// b.SetParallelism so the matrix is meaningful at any GOMAXPROCS.
//
// CI runs a short smoke slice of this matrix; regenerate the full matrix
// with:
//
//	GOMAXPROCS=8 go test -run '^$' -bench BenchmarkRWMutex -benchmem ./fairlock

// benchRWLock is the minimal surface the matrix needs; satisfied by
// RWMutex, RefRWMutex and sync.RWMutex.
type benchRWLock interface {
	Lock()
	Unlock()
	RLock()
	RUnlock()
}

// spin simulates a critical section of roughly fixed length without
// sleeping or allocating.
func spin(n int) {
	for i := 0; i < n; i++ {
		benchSink++
	}
}

var benchSink int

func benchMatrix(b *testing.B, mk func() benchRWLock) {
	for _, g := range []int{1, 4, 8} {
		for _, readPct := range []int{100, 95, 90, 50} {
			for _, cs := range []int{0, 64} {
				name := fmt.Sprintf("g%d/r%d/cs%d", g, readPct, cs)
				b.Run(name, func(b *testing.B) {
					m := mk()
					b.SetParallelism(g)
					b.ReportAllocs()
					b.RunParallel(func(pb *testing.PB) {
						i := 0
						for pb.Next() {
							if i%100 < readPct {
								m.RLock()
								spin(cs)
								m.RUnlock()
							} else {
								m.Lock()
								spin(cs)
								m.Unlock()
							}
							i++
						}
					})
				})
			}
		}
	}
}

func BenchmarkRWMutex(b *testing.B) {
	b.Run("fair", func(b *testing.B) { benchMatrix(b, func() benchRWLock { return &RWMutex{} }) })
	b.Run("ref", func(b *testing.B) { benchMatrix(b, func() benchRWLock { return &RefRWMutex{} }) })
	b.Run("sync", func(b *testing.B) { benchMatrix(b, func() benchRWLock { return &sync.RWMutex{} }) })
}

// BenchmarkUncontended measures the single-goroutine fast paths — the
// 0 allocs/op CAS paths the alloc guard pins.
func BenchmarkUncontended(b *testing.B) {
	b.Run("fair/Lock", func(b *testing.B) {
		var m RWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("fair/RLock", func(b *testing.B) {
		var m RWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.RLock()
			m.RUnlock()
		}
	})
	b.Run("ref/Lock", func(b *testing.B) {
		var m RefRWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("ref/RLock", func(b *testing.B) {
		var m RefRWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.RLock()
			m.RUnlock()
		}
	})
	b.Run("sync/Lock", func(b *testing.B) {
		var m sync.RWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("sync/RLock", func(b *testing.B) {
		var m sync.RWMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.RLock()
			m.RUnlock()
		}
	})
	b.Run("fair/Mutex", func(b *testing.B) {
		var m Mutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("ref/Mutex", func(b *testing.B) {
		var m RefMutex
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
}

// BenchmarkMutexContended compares the contended mutex path (pooled
// intrusive queue vs per-acquire channel allocation).
func BenchmarkMutexContended(b *testing.B) {
	type locker interface {
		Lock()
		Unlock()
	}
	for _, impl := range []struct {
		name string
		mk   func() locker
	}{
		{"fair", func() locker { return &Mutex{} }},
		{"ref", func() locker { return &RefMutex{} }},
		{"sync", func() locker { return &sync.Mutex{} }},
	} {
		b.Run(impl.name, func(b *testing.B) {
			m := impl.mk()
			b.SetParallelism(4)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					m.Lock()
					spin(16)
					m.Unlock()
				}
			})
		})
	}
}
