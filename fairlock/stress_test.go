package fairlock

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressGrantVsTimeoutRW hammers the grant-vs-timeout race in
// RWMutex.tryFor with microsecond deadlines: a timed waiter whose grant
// races its timer must either cleanly leave the queue or end up holding
// the lock (and release it correctly). Exclusion is checked on every
// acquisition; run under -race in CI.
func TestStressGrantVsTimeoutRW(t *testing.T) {
	var m RWMutex
	var writers, readers int32
	var wg sync.WaitGroup
	check := func(write bool) {
		if write {
			if w := atomic.AddInt32(&writers, 1); w != 1 {
				t.Errorf("%d writers inside", w)
			}
			if r := atomic.LoadInt32(&readers); r != 0 {
				t.Errorf("writer inside with %d readers", r)
			}
			atomic.AddInt32(&writers, -1)
		} else {
			atomic.AddInt32(&readers, 1)
			if w := atomic.LoadInt32(&writers); w != 0 {
				t.Errorf("reader inside with %d writers", w)
			}
			atomic.AddInt32(&readers, -1)
		}
	}
	iters := 400
	if testing.Short() {
		iters = 100
	}
	for g := 0; g < 12; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				d := time.Duration(rng.Intn(50)) * time.Microsecond
				switch g % 4 {
				case 0: // timed writer racing grants against the deadline
					if m.TryLockFor(d) {
						check(true)
						m.Unlock()
					}
				case 1: // timed reader
					if m.TryRLockFor(d) {
						check(false)
						m.RUnlock()
					}
				case 2: // blocking writer keeps the queue churning
					m.Lock()
					check(true)
					m.Unlock()
				default: // blocking reader
					m.RLock()
					check(false)
					m.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
	if n := m.QueueLen(); n != 0 {
		t.Fatalf("queue len %d after quiescence", n)
	}
	if !m.TryLock() {
		t.Fatal("lock not free after quiescence")
	}
	m.Unlock()
}

// TestStressGrantVsTimeoutMutex is the Mutex counterpart: timed waiters
// losing the race must still take and release ownership exactly once.
func TestStressGrantVsTimeoutMutex(t *testing.T) {
	var m Mutex
	var inside int32
	var acquired uint64
	var wg sync.WaitGroup
	iters := 400
	if testing.Short() {
		iters = 100
	}
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				ok := true
				if g%2 == 0 {
					ok = m.TryLockFor(time.Duration(rng.Intn(50)) * time.Microsecond)
				} else {
					m.Lock()
				}
				if ok {
					if n := atomic.AddInt32(&inside, 1); n != 1 {
						t.Errorf("%d holders inside", n)
					}
					atomic.AddInt32(&inside, -1)
					atomic.AddUint64(&acquired, 1)
					m.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if n := m.QueueLen(); n != 0 {
		t.Fatalf("queue len %d after quiescence", n)
	}
	if g := m.Grants(); g != acquired {
		t.Fatalf("grants=%d but %d acquisitions observed", g, acquired)
	}
}

// TestStressBiasRevocation drives enough read traffic to enable the BRAVO
// bias, then keeps writers arriving so the bias is revoked and re-enabled
// repeatedly, checking exclusion throughout (run under -race in CI).
func TestStressBiasRevocation(t *testing.T) {
	var m RWMutex
	var data, sum int64
	var wg sync.WaitGroup
	iters := 3000
	if testing.Short() {
		iters = 500
	}
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g == 0 && i%200 == 0 {
					m.Lock()
					data++
					m.Unlock()
				} else {
					m.RLock()
					atomic.AddInt64(&sum, data) // -race flags any writer overlap
					m.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
	r, w := m.Stats()
	want := uint64(8*iters) - uint64((iters+199)/200)
	if r != want {
		t.Fatalf("read grants = %d, want %d", r, want)
	}
	if w != uint64((iters+199)/200) {
		t.Fatalf("write grants = %d, want %d", w, (iters+199)/200)
	}
	_ = sum
}

// TestStressRLockerCrossGoroutine locks via RLocker on one goroutine and
// unlocks on another: read credits must migrate between slots and the
// central count without losing the aggregate.
func TestStressRLockerCrossGoroutine(t *testing.T) {
	var m RWMutex
	rl := m.RLocker()
	handoff := make(chan struct{}, 4)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			rl.Lock()
			handoff <- struct{}{}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			<-handoff
			rl.Unlock()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cross-goroutine RLock/RUnlock wedged")
	}
	m.Lock() // all credits must be gone: a writer can still get in
	m.Unlock()
}

// TestQueueMemoryBounded is the regression test for the old slice-queue
// retention (m.queue = m.queue[1:] kept the backing array alive) and the
// per-acquire channel allocation: under sustained contended churn the
// pooled intrusive queue must not allocate per operation.
func TestQueueMemoryBounded(t *testing.T) {
	const (
		goroutines = 4
		rounds     = 5000
	)
	churn := func() {
		var m Mutex
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					m.Lock()
					m.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	churn() // warm the waiter pool and runtime caches
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	churn()
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / float64(goroutines*rounds)
	// The old implementation allocated >= 1 object (a channel) per
	// contended acquire plus slice growth; the pooled queue amortizes to
	// (near) zero. Allow generous slack for runtime-internal allocation.
	if perOp > 0.5 {
		t.Fatalf("contended churn allocates %.3f objects/op, want ~0", perOp)
	}
}

// TestTimedRemovalIsO1 guards the O(1) unlink: a large cohort of timed
// waiters expiring together must not take quadratic time (the old slice
// scan was O(n) per removal).
func TestTimedRemovalIsO1(t *testing.T) {
	var m Mutex
	m.Lock()
	const n = 2000
	var wg sync.WaitGroup
	results := make(chan bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- m.TryLockFor(30 * time.Millisecond)
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	for i := 0; i < n; i++ {
		if <-results {
			t.Fatal("timed waiter acquired a held mutex")
		}
	}
	if m.QueueLen() != 0 {
		t.Fatalf("queue len %d after mass timeout", m.QueueLen())
	}
	m.Unlock()
	if elapsed > 10*time.Second {
		t.Fatalf("mass timeout took %v", elapsed)
	}
}

// TestTimedWriteUpgradeTimesOut pins the deadline behavior of TryLockFor
// when the calling goroutine already holds a read lock via the BRAVO slot
// fast path. The central reader count is then zero, so the timed writer
// wins the writer bit immediately — but its slot drain must be bounded by
// the deadline and the grant rolled back, matching the reference lock
// (which queues the writer behind the reader and times it out). A naive
// unbounded drain self-deadlocks here.
func TestTimedWriteUpgradeTimesOut(t *testing.T) {
	var m RWMutex
	for i := 0; i < 500; i++ { // enough central grants to enable the bias
		m.RLock()
		m.RUnlock()
	}
	if m.state.Load()&biasBit == 0 {
		t.Fatal("read bias did not enable after sustained read traffic")
	}
	_, w0 := m.Stats()

	m.RLock() // slot-path read credit held by this goroutine
	start := time.Now()
	if m.TryLockFor(20 * time.Millisecond) {
		t.Fatal("TryLockFor succeeded while this goroutine holds a read lock")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("TryLockFor took %v, want ~20ms", d)
	}
	if _, w := m.Stats(); w != w0 {
		t.Fatalf("rolled-back grant still counted: writes %d, want %d", w, w0)
	}
	m.RUnlock()

	// The rollback must leave the lock fully usable.
	if !m.TryLockFor(time.Second) {
		t.Fatal("TryLockFor failed on a free lock after rollback")
	}
	m.Unlock()
	m.RLock()
	m.RUnlock()
	if m.QueueLen() != 0 {
		t.Fatalf("queue len %d after rollback, want 0", m.QueueLen())
	}
}
