package fairlock

import "sync/atomic"

// Cohort grant batching — the software analogue of the paper's direct
// core-to-core grant transfer inside a locality domain (and of lock
// cohorting, Dice/Marathe/Shavit PPoPP 2012). Each queued waiter carries a
// cohort tag assigned at enqueue; when the holder releases, the hand-off
// path may grant up to B waiters from the releaser's own cohort ahead of
// older waiters from other cohorts, because the lock state (and the data
// it protects) is already hot in that domain's caches. B bounds the
// unfairness absolutely: a waiter can be overtaken at most B times in
// total, after which every grant falls back to strict FIFO until it is
// served, so starvation stays impossible and the bound is pinned against
// the reference oracle by the differential tests.

const (
	// noCohort is the sentinel releaser tag meaning "no cohort
	// preference": admission is strict FIFO. Waiter tags never collide
	// with it because enqueue only assigns tags produced by a CohortFunc
	// when cohort mode is on, and the default function ranges over
	// [0, numSlots).
	noCohort = ^uint32(0)

	// cohortScanWindow bounds how far past the queue head admitWith looks
	// for a cohort-mate, so hand-off under a long queue never degrades
	// into a full scan.
	cohortScanWindow = 16
)

// CohortFunc maps the calling goroutine to a cohort (locality-domain) id.
// It runs on the enqueue and unlock paths outside any internal lock, but
// must be fast, allocation-free, and must never touch the RWMutex it
// serves. The id space is the caller's to choose: the default hashes to
// the BRAVO reader slot (a P-local shard), a lock manager can map it to
// its shard index, and a future distributed build can use a node id.
type CohortFunc func() uint32

// CohortConfig configures cohort grant batching for an RWMutex.
type CohortConfig struct {
	// Batch is B, the bound on unfairness: the maximum number of grants
	// that may overtake any single waiter before admission reverts to
	// strict FIFO for it. Values <= 0 disable cohort mode.
	Batch int32

	// Fn derives the cohort id for enqueues and releases on this lock.
	// nil selects the default: the BRAVO slot hash of the calling
	// goroutine's stack, i.e. a P-local shard.
	Fn CohortFunc

	// Grants, when non-nil, is additionally incremented for every grant
	// handed to a cohort-mate ahead of FIFO order — a shared sink so a
	// lock manager can aggregate batching activity across many locks
	// without polling each one.
	Grants *atomic.Uint64
}

// cohortState is the installed form of a CohortConfig; immutable once
// published, swapped atomically by SetCohort.
type cohortState struct {
	batch int32
	fn    CohortFunc
	sink  *atomic.Uint64
}

// SetCohort enables cohort grant batching with cfg, or disables it when
// cfg.Batch <= 0. It is safe to call concurrently with lock operations:
// each hand-off reads the configuration once, so a reconfiguration
// applies from the next release onward.
func (m *RWMutex) SetCohort(cfg CohortConfig) {
	if cfg.Batch <= 0 {
		m.cohort.Store(nil)
		return
	}
	fn := cfg.Fn
	if fn == nil {
		fn = slotIndex
	}
	m.cohort.Store(&cohortState{batch: cfg.Batch, fn: fn, sink: cfg.Grants})
}

// CohortGrants returns the cumulative number of grants that were handed
// to a cohort-mate ahead of an older waiter (zero when cohort mode never
// batched). In-order grants that happen to match the releaser's cohort
// are not counted: the stat measures how often batching actually bent
// FIFO order.
func (m *RWMutex) CohortGrants() uint64 { return m.cohortGrants.Load() }

// releaseCohort derives the releasing holder's cohort tag, or noCohort
// when cohort mode is off. Called outside qmu so a user CohortFunc can
// never deadlock against the hand-off path.
func (m *RWMutex) releaseCohort() uint32 {
	if c := m.cohort.Load(); c != nil {
		return c.fn()
	}
	return noCohort
}

// enqueueCohort derives the tag stored on a waiter about to queue.
// Like releaseCohort it runs before qmu is taken.
func (m *RWMutex) enqueueCohort() uint32 {
	if c := m.cohort.Load(); c != nil {
		return c.fn()
	}
	return 0
}

// feasible reports whether w could be granted right now given the state
// word. Callers hold qmu, which makes a true result stable until the
// grant lands: with waiters queued every acquire fast path is closed
// (they all test the queue-length bits), so central readers only drain,
// and the writer bit is only set by grants this admit performs itself.
func (m *RWMutex) feasible(w *waiter) bool {
	s := m.state.Load()
	if w.write {
		return s&(writerBit|readerMask) == 0
	}
	return s&writerBit == 0
}

// cohortCandidate scans up to cohortScanWindow entries from the head for
// a feasible waiter tagged rc, stopping — and settling for strict FIFO —
// at the first waiter whose bypass budget is exhausted (skips >= B).
// It returns nil when the plain head should be granted. Callers hold qmu.
func (m *RWMutex) cohortCandidate(c *cohortState, rc uint32) *waiter {
	for w, i := m.q.head, 0; w != nil && i < cohortScanWindow; w, i = w.next, i+1 {
		if w.cohort == rc && m.feasible(w) {
			if i == 0 {
				return nil // head already matches: in-order, no bypass
			}
			return w
		}
		if w.skips >= c.batch {
			return nil // bypassing this waiter again would break the bound
		}
	}
	return nil
}

// admitWith grants queued waiters while grants remain feasible. rc is the
// releasing holder's cohort tag (noCohort forces strict FIFO). With
// cohort mode on, each hand-off may pick a feasible cohort-mate of rc
// from within the scan window instead of the head; every waiter the
// grantee overtakes is charged one skip, and a waiter with B skips can
// never be overtaken again, so total bypasses per waiter are bounded by
// B. A granted reader keeps the loop running — the reader-batch admission
// of the paper's read-grant chaining — while a granted writer ends it.
// Callers hold qmu.
func (m *RWMutex) admitWith(rc uint32) {
	c := m.cohort.Load()
	if c == nil {
		rc = noCohort
	}
	for m.q.head != nil {
		h := m.q.head
		if rc != noCohort {
			if cand := m.cohortCandidate(c, rc); cand != nil {
				h = cand
			}
		}
		if !m.feasible(h) {
			return
		}
		if h != m.q.head {
			// Charge the overtaken waiters before h is unlinked, then
			// count the out-of-order grant.
			for w := m.q.head; w != nil && w != h; w = w.next {
				w.skips++
			}
			m.cohortGrants.Add(1)
			if c.sink != nil {
				c.sink.Add(1)
			}
		}
		write := h.write
		if write {
			for {
				s := m.state.Load()
				if s&(writerBit|readerMask) != 0 {
					return
				}
				if m.state.CompareAndSwap(s, ((s-qOne)|writerBit)&^biasBit) {
					break
				}
			}
			m.grantsW.Add(1)
		} else {
			for {
				s := m.state.Load()
				if s&writerBit != 0 {
					return
				}
				if m.state.CompareAndSwap(s, s-qOne+1) {
					break
				}
			}
			m.grantedCentralRead()
		}
		m.q.remove(h)
		h.ready <- struct{}{}
		if write {
			return
		}
	}
}
