package fairlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMutualExclusion(t *testing.T) {
	var m RWMutex
	var inside int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				m.Lock()
				if n := atomic.AddInt32(&inside, 1); n != 1 {
					t.Errorf("%d writers inside", n)
				}
				atomic.AddInt32(&inside, -1)
				m.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestReadersShare(t *testing.T) {
	var m RWMutex
	var inside, peak int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			m.RLock()
			n := atomic.AddInt32(&inside, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			atomic.AddInt32(&inside, -1)
			m.RUnlock()
		}()
	}
	close(start)
	wg.Wait()
	if peak < 2 {
		t.Fatalf("peak concurrent readers = %d, want >= 2", peak)
	}
}

func TestWriterExcludesReaders(t *testing.T) {
	var m RWMutex
	var writerIn int32
	var wg sync.WaitGroup
	m.Lock()
	atomic.StoreInt32(&writerIn, 1)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.RLock()
			if atomic.LoadInt32(&writerIn) == 1 {
				t.Error("reader admitted while writer holds")
			}
			m.RUnlock()
		}()
	}
	time.Sleep(20 * time.Millisecond)
	atomic.StoreInt32(&writerIn, 0)
	m.Unlock()
	wg.Wait()
}

func TestWriterNotStarvedByReaders(t *testing.T) {
	var m RWMutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Continuous reader churn.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.RLock()
				time.Sleep(time.Millisecond)
				m.RUnlock()
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		m.Lock()
		m.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("writer starved by reader churn")
	}
	close(stop)
	wg.Wait()
}

func TestFIFOOrder(t *testing.T) {
	var m RWMutex
	m.Lock()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			m.Unlock()
		}()
		time.Sleep(20 * time.Millisecond) // enforce distinct arrival order
	}
	m.Unlock()
	wg.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("admission order %v, want FIFO", order)
		}
	}
}

func TestLateReaderQueuesBehindWriter(t *testing.T) {
	var m RWMutex
	m.RLock() // active reader batch
	writerIn := make(chan struct{})
	readerIn := make(chan struct{})
	go func() {
		m.Lock()
		close(writerIn)
		time.Sleep(10 * time.Millisecond)
		m.Unlock()
	}()
	time.Sleep(20 * time.Millisecond) // writer is now queued
	go func() {
		m.RLock() // must NOT jump the queued writer
		close(readerIn)
		m.RUnlock()
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-readerIn:
		t.Fatal("late reader jumped a queued writer (not task-fair)")
	default:
	}
	m.RUnlock()
	<-writerIn
	<-readerIn
}

func TestTryLock(t *testing.T) {
	var m RWMutex
	if !m.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	if m.TryRLock() {
		t.Fatal("TryRLock under writer succeeded")
	}
	m.Unlock()
	if !m.TryRLock() {
		t.Fatal("TryRLock on free lock failed")
	}
	if !m.TryRLock() {
		t.Fatal("second TryRLock failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock with readers succeeded")
	}
	m.RUnlock()
	m.RUnlock()
}

// TestTryLockRespectsSlotReaders pins TryLock against readers that are
// visible only in the BRAVO slot table. That happens in two idle states:
// read-biased (state == biasBit), and — after a timed write rolled back
// mid-drain — state == 0 with slot credits still live. In both, TryLock
// must fail promptly: a naive grant either blocks on the reader's critical
// section (forever, when the caller is that reader — an upgrade attempt)
// or reports success while a reader holds the lock.
func TestTryLockRespectsSlotReaders(t *testing.T) {
	var m RWMutex
	for i := 0; i < 500; i++ { // enough central grants to enable the bias
		m.RLock()
		m.RUnlock()
	}
	if m.state.Load()&biasBit == 0 {
		t.Fatal("read bias did not enable after sustained read traffic")
	}
	_, w0 := m.Stats()

	m.RLock() // slot-path read credit held by this goroutine
	if m.TryLock() {
		t.Fatal("TryLock succeeded while a slot reader holds the lock (biased idle)")
	}
	// Time out a write acquisition: the grant rolls back mid-drain,
	// leaving state == 0 with the slot credit still outstanding.
	if m.TryLockFor(10 * time.Millisecond) {
		t.Fatal("TryLockFor succeeded while this goroutine holds a read lock")
	}
	if s := m.state.Load(); s != 0 {
		t.Fatalf("state %#x after rollback, want 0", s)
	}
	start := time.Now()
	if m.TryLock() {
		t.Fatal("TryLock succeeded against a live slot reader after rollback")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("TryLock blocked %v against a slot reader, want prompt failure", d)
	}
	if _, w := m.Stats(); w != w0 {
		t.Fatalf("failed trylocks counted as grants: writes %d, want %d", w, w0)
	}
	m.RUnlock()

	// With the reader gone the same idle state must grant again.
	if !m.TryLock() {
		t.Fatal("TryLock failed on a free lock after the reader left")
	}
	m.Unlock()
	m.RLock()
	m.RUnlock()
	if m.QueueLen() != 0 {
		t.Fatalf("queue len %d after quiescence, want 0", m.QueueLen())
	}
}

func TestTryLockForTimeout(t *testing.T) {
	var m RWMutex
	m.Lock()
	t0 := time.Now()
	if m.TryLockFor(30 * time.Millisecond) {
		t.Fatal("TryLockFor succeeded against a holder")
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("TryLockFor returned after %v, before the deadline", d)
	}
	m.Unlock()
	if !m.TryLockFor(time.Second) {
		t.Fatal("TryLockFor on free lock failed")
	}
	m.Unlock()
	if m.QueueLen() != 0 {
		t.Fatalf("queue not empty after timeout: %d", m.QueueLen())
	}
}

func TestTimedOutWaiterUnblocksFollowers(t *testing.T) {
	var m RWMutex
	m.RLock()
	// Writer with a short timeout queues, then a reader queues behind it.
	go m.TryLockFor(20 * time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	got := make(chan struct{})
	go func() {
		m.RLock()
		close(got)
		m.RUnlock()
	}()
	// After the writer times out, the queued reader must be admitted even
	// though the original read hold is still active.
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("reader stuck behind a timed-out writer")
	}
	m.RUnlock()
}

func TestUnlockPanics(t *testing.T) {
	var m RWMutex
	for _, f := range []func(){m.Unlock, m.RUnlock} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unlock of unheld lock did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStats(t *testing.T) {
	var m RWMutex
	m.Lock()
	m.Unlock()
	m.RLock()
	m.RLock()
	m.RUnlock()
	m.RUnlock()
	r, w := m.Stats()
	if r != 2 || w != 1 {
		t.Fatalf("stats = (%d,%d), want (2,1)", r, w)
	}
}

// Property: any interleaving of n read/write pairs leaves the lock free.
func TestQuickAllReleasedFree(t *testing.T) {
	f := func(ops []bool) bool {
		var m RWMutex
		var wg sync.WaitGroup
		for _, write := range ops {
			write := write
			wg.Add(1)
			go func() {
				defer wg.Done()
				if write {
					m.Lock()
					m.Unlock()
				} else {
					m.RLock()
					m.RUnlock()
				}
			}()
		}
		wg.Wait()
		return m.TryLock() && func() bool { m.Unlock(); return true }() && m.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: reader/writer counters never go inconsistent under load.
func TestStressMixed(t *testing.T) {
	var m RWMutex
	var data int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				switch {
				case i%4 == 0:
					m.Lock()
					data++
					m.Unlock()
				case i%4 == 1 && j%3 == 0:
					if m.TryLockFor(time.Millisecond) {
						data++
						m.Unlock()
					}
				default:
					m.RLock()
					_ = data
					m.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
	if m.QueueLen() != 0 {
		t.Fatalf("queue len %d after quiescence", m.QueueLen())
	}
}
