package fairlock

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// BRAVO-style distributed reader indicator (Dice & Kogan, "BRAVO — Biased
// Locking for Reader-Writer Locks", USENIX ATC 2018), adapted to the
// paper's LCU semantics: when the lock is read-biased, readers publish
// themselves in a per-lock table of padded slots instead of CASing the
// shared state word, so reader admission scales across cores. A writer
// revokes the bias and waits for every slot to drain before entering its
// critical section, which is exactly the read-grant/flush ordering the
// LCU enforces in hardware.
//
// The bias is only ever set while the lock has no writer and no queued
// waiter, so the slot fast path is taken precisely under the conditions
// where TryRLock would succeed — admission order is unchanged.

// numSlots is the size of each RWMutex's reader table. Each slot is one
// 128-byte line, so the table adds 2 KiB to the lock; collisions only
// cost line sharing, never correctness.
const numSlots = 16

// rslot is one padded entry of the distributed reader indicator. Both of
// the slot's counters live in one atomic word so the biased read paths are
// a single RMW each:
//
//	bits 0..31   active fast-path readers published here, as an int32 —
//	             RUnlock decrements blindly and detects (then undoes) a
//	             borrow when the half goes negative
//	bits 32..63  cumulative fast-path read grants via this slot (wraps
//	             mod 2^32; diagnostics only)
//
// Publishing a biased read is word.Add(slotGrant+1): one RMW both takes
// the credit and counts the grant.
type rslot struct {
	word atomic.Uint64
	_    [120]byte // pad to 128 B against false sharing
}

// slotGrant is the packed-word increment for the grants half.
const slotGrant = uint64(1) << 32

// slotReaders extracts the active-reader half of a packed slot word as a
// signed count (negative only in the transient borrow window of a blind
// RUnlock decrement).
func slotReaders(v uint64) int32 { return int32(uint32(v)) }

// slotIndex hashes the current goroutine to a reader slot from the
// address of a stack local, the same trick the BRAVO paper uses with the
// thread's stack pointer: distinct goroutines live on distinct stacks, and
// the same goroutine's RLock and RUnlock frames sit within the same 8 KiB
// window, so the pair lands on the same slot without needing a goroutine
// id. A mismatch (stack growth between lock and unlock, or a
// cross-goroutine RUnlock) is only a performance event — credit release
// falls back to the central count and then to scanning the table.
func slotIndex() uint32 {
	var x byte
	return uint32(uintptr(unsafe.Pointer(&x))>>13) % numSlots
}

// casDecPositive removes one reader credit from the packed slot word iff
// its reader half is currently positive, never driving it below zero.
func casDecPositive(sl *rslot) bool {
	for {
		v := sl.word.Load()
		if slotReaders(v) <= 0 {
			return false
		}
		if sl.word.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// drainSlots waits for fast-path readers (published before the bias was
// revoked) to leave. Every writer runs this after it owns the writer bit
// and before entering its critical section; with an empty table it is
// numSlots uncontended loads.
func (m *RWMutex) drainSlots() { m.drainSlotsUntil(time.Time{}) }

// drainSlotsUntil is drainSlots bounded by a deadline (zero means wait
// forever). It returns false — with slots possibly still populated — once
// the deadline passes; timed write acquisitions use this so they can honor
// their deadline even against a reader that will never leave, e.g. a slot
// credit held by the calling goroutine itself (an upgrade attempt, which
// the reference lock resolves by timing out). A populated drain records
// its cost and inhibits re-enabling the bias for a multiple of it
// (BRAVO's adaptive revocation policy). A transiently negative reader half
// (a blind RUnlock decrement about to be undone) reads as non-zero and
// just extends the spin by an iteration.
func (m *RWMutex) drainSlotsUntil(deadline time.Time) bool {
	if !m.everBiased.Load() {
		// The bias has never been on, so no reader ever published in a
		// slot: write-heavy locks skip the table scan entirely.
		return true
	}
	var began time.Time
	for i := range m.slots {
		if slotReaders(m.slots[i].word.Load()) == 0 {
			continue
		}
		if began.IsZero() {
			began = time.Now()
		}
		for spins := 0; slotReaders(m.slots[i].word.Load()) != 0; spins++ {
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return false
			}
			if spins < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(time.Microsecond)
			}
		}
	}
	if !began.IsZero() {
		cost := time.Since(began)
		m.inhibitUntil.Store(time.Now().Add(biasInhibitMult * cost).UnixNano())
	}
	return true
}

// tryEnableBias flips the read bias on when the policy allows it. Bias is
// only set when there is no writer and no queued waiter, and that holds
// atomically because both facts live in the same state word as the bias
// bit.
func (m *RWMutex) tryEnableBias() {
	if time.Now().UnixNano() < m.inhibitUntil.Load() {
		return
	}
	s := m.state.Load()
	if s&(writerBit|biasBit) == 0 && s>>qShift == 0 {
		// everBiased must be visible before the bias bit is: a writer that
		// never observes the bias must still scan the table if any reader
		// could have published there.
		m.everBiased.Store(true)
		m.state.CompareAndSwap(s, s|biasBit)
	}
}

// retract removes the provisional credit (and its grant count) this reader
// just published in sl after losing the publish/revoke race. If the slot's
// reader half already reads zero, a concurrent RUnlock consumed our credit
// as if we held the lock (a credit swap — see releaseReadCredit); its own
// credit is still in the aggregate, so un-count only the grant here and
// remove one credit from wherever the swapped credit now lives.
func (m *RWMutex) retract(sl *rslot) {
	for {
		v := sl.word.Load()
		if slotReaders(v) > 0 {
			if sl.word.CompareAndSwap(v, v-slotGrant-1) {
				return
			}
			continue
		}
		if sl.word.CompareAndSwap(v, v-slotGrant) {
			m.releaseReadCredit(sl, false)
			return
		}
	}
}

// releaseReadCredit removes exactly one read credit from the aggregate
// reader count (sum of all slots plus the central count). It prefers the
// hashed slot, then the central count, then any slot: credits migrate
// between counters when an RLock and its RUnlock land on different
// counters (P migration, cross-goroutine unlock, or a hash collision), but
// the aggregate — which is all that admission and writer drain depend on —
// is always conserved. mayPanic distinguishes API misuse (RUnlock of an
// unheld lock) from the transient window where a concurrent publication or
// retraction hides the credit; misuse still panics after bounded retries.
func (m *RWMutex) releaseReadCredit(sl *rslot, mayPanic bool) {
	for attempt := 0; ; attempt++ {
		if casDecPositive(sl) {
			return
		}
		for {
			s := m.state.Load()
			if s&readerMask == 0 {
				break
			}
			if m.state.CompareAndSwap(s, s-1) {
				if s&readerMask == 1 && s>>qShift != 0 {
					// Last central reader out with waiters queued.
					rc := m.releaseCohort()
					m.qmu.Lock()
					m.admitWith(rc)
					m.qmu.Unlock()
				}
				return
			}
		}
		for i := range m.slots {
			if casDecPositive(&m.slots[i]) {
				return
			}
		}
		if mayPanic && attempt >= 128 {
			panic("fairlock: RUnlock of non-read-locked RWMutex")
		}
		runtime.Gosched()
	}
}
