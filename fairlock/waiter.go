package fairlock

import "sync"

// waiter is one queued acquisition in the contended (slow) path: an
// intrusive doubly-linked node, so timed waiters unlink in O(1) instead of
// the old O(n) slice scan, recycled through a sync.Pool so contended
// acquires do not allocate in steady state. The ready channel has capacity
// 1 and is reused across lives of the node: each wait consumes exactly the
// one token its grant sends, so the channel is always empty when the node
// returns to the pool.
type waiter struct {
	next, prev *waiter
	write      bool
	queued     bool // linked into a lock's waitq; guarded by that lock's qmu
	ready      chan struct{}

	// Cohort batching state, both guarded by the owning lock's qmu:
	// cohort is the locality-domain tag assigned at enqueue, skips counts
	// how many grants have bypassed this waiter so the cohort scan can
	// enforce the fairness bound B (see admitWith).
	cohort uint32
	skips  int32
}

var waiterPool = sync.Pool{New: func() any {
	return &waiter{ready: make(chan struct{}, 1)}
}}

func newWaiter(write bool) *waiter {
	w := waiterPool.Get().(*waiter)
	w.write = write
	return w
}

// putWaiter recycles a node. The caller must guarantee the grant token has
// been consumed (or can never be sent: the node was unlinked under qmu
// before any grant reached it). Every mutable field is reset here — a
// recycled node must not leak a stale cohort tag or bypass count into its
// next life, and the ready channel is drained (never replaced: replacing
// it would allocate) in case a caller ever recycles a node with an
// unconsumed token.
func putWaiter(w *waiter) {
	w.next, w.prev = nil, nil
	w.write = false
	w.queued = false
	w.cohort = 0
	w.skips = 0
	select {
	case <-w.ready:
	default:
	}
	waiterPool.Put(w)
}

// waitq is an intrusive FIFO of waiters. All operations require the owning
// lock's qmu.
type waitq struct{ head, tail *waiter }

func (q *waitq) pushBack(w *waiter) {
	w.prev = q.tail
	w.next = nil
	if q.tail != nil {
		q.tail.next = w
	} else {
		q.head = w
	}
	q.tail = w
	w.queued = true
}

func (q *waitq) remove(w *waiter) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		q.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		q.tail = w.prev
	}
	w.next, w.prev = nil, nil
	w.queued = false
}
