package fairlock

import "testing"

// TestUncontendedAllocs pins the uncontended fast paths at zero
// allocations per operation (the CI alloc guard). The read path is
// measured in both modes: central CAS (bias off) and BRAVO slot publish
// (bias on).
func TestUncontendedAllocs(t *testing.T) {
	var m RWMutex
	if n := testing.AllocsPerRun(500, func() { m.Lock(); m.Unlock() }); n != 0 {
		t.Errorf("Lock/Unlock allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(500, func() { m.RLock(); m.RUnlock() }); n != 0 {
		t.Errorf("RLock/RUnlock (central) allocates %.1f objects/op, want 0", n)
	}
	// The 500 central read grants above flip the read bias on; verify and
	// measure the slot path.
	if m.state.Load()&biasBit == 0 {
		t.Fatal("read bias did not enable after sustained read traffic")
	}
	if n := testing.AllocsPerRun(500, func() { m.RLock(); m.RUnlock() }); n != 0 {
		t.Errorf("RLock/RUnlock (biased) allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(500, func() {
		if m.TryRLock() {
			m.RUnlock()
		}
	}); n != 0 {
		t.Errorf("TryRLock/RUnlock allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(500, func() {
		if m.TryLock() {
			m.Unlock()
		}
	}); n != 0 {
		t.Errorf("TryLock/Unlock allocates %.1f objects/op, want 0", n)
	}

	var mu Mutex
	if n := testing.AllocsPerRun(500, func() { mu.Lock(); mu.Unlock() }); n != 0 {
		t.Errorf("Mutex Lock/Unlock allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(500, func() {
		if mu.TryLock() {
			mu.Unlock()
		}
	}); n != 0 {
		t.Errorf("Mutex TryLock/Unlock allocates %.1f objects/op, want 0", n)
	}
}
