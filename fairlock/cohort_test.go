package fairlock

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cohortRW is the surface shared by RWMutex and RefRWMutex that the
// cohort differential tests drive.
type cohortRW interface {
	rwLock
	SetCohort(CohortConfig)
	CohortGrants() uint64
	LockCancel(<-chan struct{}) bool
	RLockCancel(<-chan struct{}) bool
}

var (
	_ cohortRW = (*RWMutex)(nil)
	_ cohortRW = (*RefRWMutex)(nil)
)

// goroutineID parses the numeric id out of runtime.Stack's first line
// ("goroutine N [...]"). Far too slow for production CohortFuncs, but it
// gives the tests a deterministic per-goroutine key with no runtime
// hooks.
func goroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// cohortRegistry maps goroutine ids to cohort tags, making a CohortFunc
// deterministic under test: each harness goroutine registers its tag
// before it enqueues, and the same tag is observed when it releases.
type cohortRegistry struct{ m sync.Map }

func (r *cohortRegistry) fn() uint32 {
	if v, ok := r.m.Load(goroutineID()); ok {
		return v.(uint32)
	}
	return 1 << 20 // unregistered goroutines form their own cohort
}

func (r *cohortRegistry) set(c uint32) { r.m.Store(goroutineID(), c) }

// cohortSpec is one scripted waiter: its mode and its cohort tag.
type cohortSpec struct {
	write  bool
	cohort uint32
}

// cohortAdmissionOrder mirrors admissionOrder with per-waiter cohort
// tags: the lock is held in write mode by the harness (registered as
// cohort 0), each spec queues in deterministic arrival order on its own
// registered goroutine, the initial hold is released, and the grant
// order is returned.
func cohortAdmissionOrder(t *testing.T, l cohortRW, batch int32, specs []cohortSpec) []grantEvent {
	t.Helper()
	reg := &cohortRegistry{}
	l.SetCohort(CohortConfig{Batch: batch, Fn: reg.fn})
	reg.set(0)
	l.Lock()
	var mu sync.Mutex
	var order []grantEvent
	var wg sync.WaitGroup
	for i, sp := range specs {
		i, sp := i, sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg.set(sp.cohort)
			if sp.write {
				l.Lock()
			} else {
				l.RLock()
			}
			mu.Lock()
			order = append(order, grantEvent{sp.write, i})
			mu.Unlock()
			if sp.write {
				l.Unlock()
			} else {
				l.RUnlock()
			}
		}()
		deadline := time.Now().Add(5 * time.Second)
		for l.QueueLen() != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued (QueueLen=%d)", i, l.QueueLen())
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	l.Unlock()
	wg.Wait()
	return order
}

// maxBypass returns the largest number of later arrivals granted before
// any single waiter — the quantity the cohort bound B caps.
func maxBypass(order []grantEvent) int {
	worst := 0
	for pos, e := range order {
		bypasses := 0
		for _, g := range order[:pos] {
			if g.id > e.id {
				bypasses++
			}
		}
		if bypasses > worst {
			worst = bypasses
		}
	}
	return worst
}

// TestDifferentialCohortWriters fuzzes all-writer arrival patterns with
// random cohort tags and batch bounds: writer grants fully serialize, so
// the cohort hand-off decisions are deterministic and the new lock must
// match the reference oracle grant for grant — including how often
// batching bent FIFO order — while no waiter is ever bypassed more than
// B times.
func TestDifferentialCohortWriters(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		specs := make([]cohortSpec, n)
		for j := range specs {
			specs[j] = cohortSpec{write: true, cohort: uint32(rng.Intn(3))}
		}
		batch := int32(1 + rng.Intn(3))
		var a RWMutex
		var b RefRWMutex
		gotOrder := cohortAdmissionOrder(t, &a, batch, specs)
		wantOrder := cohortAdmissionOrder(t, &b, batch, specs)
		got, want := canonical(gotOrder), canonical(wantOrder)
		if got != want {
			t.Fatalf("trial %d specs=%v B=%d: admission diverged:\nnew: %s\nref: %s",
				trial, specs, batch, got, want)
		}
		if ag, bg := a.CohortGrants(), b.CohortGrants(); ag != bg {
			t.Fatalf("trial %d: cohort grants diverged: new=%d ref=%d", trial, ag, bg)
		}
		ar, aw := a.Stats()
		br, bw := b.Stats()
		if ar != br || aw != bw {
			t.Fatalf("trial %d: stats diverged: new=(%d,%d) ref=(%d,%d)", trial, ar, aw, br, bw)
		}
		if worst := maxBypass(gotOrder); worst > int(batch) {
			t.Fatalf("trial %d: a waiter was bypassed %d times, bound B=%d\norder: %v",
				trial, worst, batch, gotOrder)
		}
	}
}

// TestCohortBypassBound pins the exact shape of the bound on both
// implementations: with B=2 and a lone cohort-0 writer queued ahead of
// four cohort-1 writers, a cohort-1 release batches exactly two grants
// past the head, then strict FIFO must serve the head before the
// remaining cohort-mates.
func TestCohortBypassBound(t *testing.T) {
	specs := []cohortSpec{
		{write: true, cohort: 5},
		{write: true, cohort: 1},
		{write: true, cohort: 1},
		{write: true, cohort: 1},
		{write: true, cohort: 1},
	}
	for _, l := range []cohortRW{&RWMutex{}, &RefRWMutex{}} {
		// The harness releases as cohort 0; retag it to 1 so the initial
		// release already prefers the cohort-1 run.
		order := func() []grantEvent {
			reg := &cohortRegistry{}
			l.SetCohort(CohortConfig{Batch: 2, Fn: reg.fn})
			reg.set(1)
			l.Lock()
			var mu sync.Mutex
			var order []grantEvent
			var wg sync.WaitGroup
			for i, sp := range specs {
				i, sp := i, sp
				wg.Add(1)
				go func() {
					defer wg.Done()
					reg.set(sp.cohort)
					l.Lock()
					mu.Lock()
					order = append(order, grantEvent{true, i})
					mu.Unlock()
					l.Unlock()
				}()
				deadline := time.Now().Add(5 * time.Second)
				for l.QueueLen() != i+1 {
					if time.Now().After(deadline) {
						t.Fatalf("waiter %d never queued", i)
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
			l.Unlock()
			wg.Wait()
			return order
		}()
		want := []int{1, 2, 0, 3, 4}
		for i, e := range order {
			if e.id != want[i] {
				t.Fatalf("%T: grant order %v, want ids %v", l, order, want)
			}
		}
		if g := l.CohortGrants(); g != 2 {
			t.Fatalf("%T: CohortGrants=%d, want 2 (two bypasses of the head)", l, g)
		}
	}
}

// TestCohortReaderBypass checks the reader side of batching on both
// implementations: a cohort-mate reader behind a foreign writer is
// granted first on a same-cohort release, and the overtaken writer is
// served immediately after.
func TestCohortReaderBypass(t *testing.T) {
	for _, l := range []cohortRW{&RWMutex{}, &RefRWMutex{}} {
		reg := &cohortRegistry{}
		l.SetCohort(CohortConfig{Batch: 1, Fn: reg.fn})
		reg.set(1)
		l.Lock()

		writerIn := make(chan struct{})
		go func() {
			reg.set(0)
			l.Lock()
			close(writerIn)
			l.Unlock()
		}()
		deadline := time.Now().Add(5 * time.Second)
		for l.QueueLen() != 1 {
			if time.Now().After(deadline) {
				t.Fatal("writer never queued")
			}
			time.Sleep(50 * time.Microsecond)
		}
		readerIn := make(chan struct{})
		gate := make(chan struct{})
		go func() {
			reg.set(1)
			l.RLock()
			close(readerIn)
			<-gate
			l.RUnlock()
		}()
		for l.QueueLen() != 2 {
			if time.Now().After(deadline) {
				t.Fatal("reader never queued")
			}
			time.Sleep(50 * time.Microsecond)
		}

		l.Unlock() // released as cohort 1: the reader bypasses the writer
		select {
		case <-readerIn:
		case <-time.After(5 * time.Second):
			t.Fatalf("%T: cohort-mate reader was not granted first", l)
		}
		select {
		case <-writerIn:
			t.Fatalf("%T: writer granted while the bypassing reader holds", l)
		case <-time.After(10 * time.Millisecond):
		}
		close(gate) // reader leaves; the overtaken writer must be served
		select {
		case <-writerIn:
		case <-time.After(5 * time.Second):
			t.Fatalf("%T: overtaken writer never granted", l)
		}
		if g := l.CohortGrants(); g != 1 {
			t.Fatalf("%T: CohortGrants=%d, want 1", l, g)
		}
	}
}

// TestWaiterPoolHygiene is the regression test for recycled waiter nodes
// leaking state between lives: putWaiter must clear the cohort tag, the
// bypass count, the mode, the links, and any unconsumed grant token, so
// a node reused by a different lock or mode starts clean.
func TestWaiterPoolHygiene(t *testing.T) {
	w := newWaiter(true)
	w.cohort = 7
	w.skips = 3
	w.queued = true
	w.ready <- struct{}{} // simulate an unconsumed grant token
	putWaiter(w)
	if w.write || w.queued || w.cohort != 0 || w.skips != 0 || w.next != nil || w.prev != nil {
		t.Fatalf("recycled waiter retains state: %+v", w)
	}
	select {
	case <-w.ready:
		t.Fatal("recycled waiter retains a grant token")
	default:
	}
	if w.ready == nil || cap(w.ready) != 1 {
		t.Fatal("recycled waiter lost its reusable ready channel")
	}
}

// TestStressCohortCancelRevocation mixes cancellable acquires with cohort
// grants and BRAVO bias revocation at small timeouts, checking exclusion
// on every acquisition (run with -race and GOMAXPROCS=4 in CI). The
// shared Grants sink must agree with the lock's own counter at
// quiescence.
func TestStressCohortCancelRevocation(t *testing.T) {
	// Force the fissile TATAS phase on so its interleavings are exercised
	// even where the single-core gate would disable it.
	prev := setFissileSpins(defaultFissileSpins)
	defer setFissileSpins(prev)
	var m RWMutex
	var sink atomic.Uint64
	m.SetCohort(CohortConfig{Batch: 3, Grants: &sink})
	var writers, readers int32
	check := func(write bool) {
		if write {
			if w := atomic.AddInt32(&writers, 1); w != 1 {
				t.Errorf("%d writers inside", w)
			}
			if r := atomic.LoadInt32(&readers); r != 0 {
				t.Errorf("writer inside with %d readers", r)
			}
			atomic.AddInt32(&writers, -1)
		} else {
			atomic.AddInt32(&readers, 1)
			if w := atomic.LoadInt32(&writers); w != 0 {
				t.Errorf("reader inside with %d writers", w)
			}
			atomic.AddInt32(&readers, -1)
		}
	}
	iters := 300
	if testing.Short() {
		iters = 80
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				switch g % 4 {
				case 0: // cancellable writer, sometimes already cancelled
					cancel := make(chan struct{})
					if rng.Intn(4) == 0 {
						close(cancel)
					} else {
						time.AfterFunc(time.Duration(rng.Intn(60))*time.Microsecond,
							func() { close(cancel) })
					}
					if m.LockCancel(cancel) {
						check(true)
						m.Unlock()
					}
				case 1: // cancellable reader
					cancel := make(chan struct{})
					time.AfterFunc(time.Duration(rng.Intn(60))*time.Microsecond,
						func() { close(cancel) })
					if m.RLockCancel(cancel) {
						check(false)
						m.RUnlock()
					}
				case 2: // writer bursts keep revoking the bias
					m.Lock()
					check(true)
					m.Unlock()
				default: // read traffic re-enables the bias and feeds batches
					for j := 0; j < 8; j++ {
						m.RLock()
						check(false)
						m.RUnlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := m.QueueLen(); n != 0 {
		t.Fatalf("queue len %d after quiescence", n)
	}
	if got, want := sink.Load(), m.CohortGrants(); got != want {
		t.Fatalf("shared sink %d != lock cohort grants %d", got, want)
	}
	m.Lock() // the lock must still be fully usable
	m.Unlock()
}

// TestCohortFissileAllocs pins the new fast paths at zero allocations:
// the fissile TATAS acquire and the cohort-enabled lock's uncontended
// paths (SetCohort must not push Lock/RLock off the allocation-free
// route), plus pooled steady-state behavior for contended cohort churn.
func TestCohortFissileAllocs(t *testing.T) {
	var m RWMutex
	m.SetCohort(CohortConfig{Batch: 4})
	if n := testing.AllocsPerRun(500, func() { m.Lock(); m.Unlock() }); n != 0 {
		t.Errorf("cohort Lock/Unlock allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(500, func() { m.RLock(); m.RUnlock() }); n != 0 {
		t.Errorf("cohort RLock/RUnlock (central) allocates %.1f objects/op, want 0", n)
	}
	if m.state.Load()&biasBit == 0 {
		t.Fatal("read bias did not enable after sustained read traffic")
	}
	if n := testing.AllocsPerRun(500, func() { m.RLock(); m.RUnlock() }); n != 0 {
		t.Errorf("cohort RLock/RUnlock (biased) allocates %.1f objects/op, want 0", n)
	}

	// The fissile TATAS phase itself: a writer acquiring against a lock
	// that a peer holds and releases in a tight loop resolves by active
	// spin (or at worst the pooled queue); either way the steady state
	// must stay allocation-free.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Lock()
				m.Unlock() //nolint:staticcheck // empty critical section on purpose
			}
		}
	}()
	if n := testing.AllocsPerRun(2000, func() { m.Lock(); m.Unlock() }); n > 0.1 {
		t.Errorf("fissile contended Lock/Unlock allocates %.2f objects/op, want ~0", n)
	}
	close(stop)
	wg.Wait()
}
