package fairlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMutexExclusion(t *testing.T) {
	var m Mutex
	var inside int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 400; j++ {
				m.Lock()
				if n := atomic.AddInt32(&inside, 1); n != 1 {
					t.Errorf("%d holders", n)
				}
				atomic.AddInt32(&inside, -1)
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if g := m.Grants(); g != 8*400 {
		t.Fatalf("grants = %d, want %d", g, 8*400)
	}
}

func TestMutexFIFO(t *testing.T) {
	var m Mutex
	m.Lock()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			m.Unlock()
		}()
		time.Sleep(20 * time.Millisecond)
	}
	m.Unlock()
	wg.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
}

func TestMutexTryLockFor(t *testing.T) {
	var m Mutex
	m.Lock()
	if m.TryLockFor(20 * time.Millisecond) {
		t.Fatal("TryLockFor succeeded against a holder")
	}
	m.Unlock()
	if !m.TryLockFor(time.Second) {
		t.Fatal("TryLockFor on free mutex failed")
	}
	m.Unlock()
}

func TestMutexUnlockPanics(t *testing.T) {
	var m Mutex
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unlocked mutex did not panic")
		}
	}()
	m.Unlock()
}

func TestMutexHandoffNoBarging(t *testing.T) {
	// After Unlock with a waiter queued, a TryLock must fail: ownership
	// transferred directly to the waiter (no barging window).
	var m Mutex
	m.Lock()
	acquired := make(chan struct{})
	go func() {
		m.Lock()
		close(acquired)
		time.Sleep(20 * time.Millisecond)
		m.Unlock()
	}()
	time.Sleep(20 * time.Millisecond) // waiter is queued
	m.Unlock()
	if m.TryLock() {
		t.Fatal("TryLock barged in during hand-off")
	}
	<-acquired
}
