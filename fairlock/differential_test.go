package fairlock

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// rwLock is the API surface shared by RWMutex and its reference model,
// letting the differential tests drive both with the same script.
type rwLock interface {
	Lock()
	Unlock()
	RLock()
	RUnlock()
	TryLock() bool
	TryRLock() bool
	TryLockFor(time.Duration) bool
	TryRLockFor(time.Duration) bool
	Stats() (uint64, uint64)
	QueueLen() int
}

var (
	_ rwLock = (*RWMutex)(nil)
	_ rwLock = (*RefRWMutex)(nil)
)

// TestDifferentialSequential drives RWMutex and RefRWMutex through the
// same randomized single-goroutine scripts and requires identical trylock
// outcomes, grant counts, and queue lengths after every step.
func TestDifferentialSequential(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var a RWMutex
		var b RefRWMutex
		locks := []rwLock{&a, &b}
		wHeld := false
		rHeld := 0
		for op := 0; op < 400; op++ {
			var got [2]bool
			kind := rng.Intn(6)
			switch kind {
			case 0:
				for i, l := range locks {
					got[i] = l.TryLock()
				}
				if got[0] {
					wHeld = true
				}
			case 1:
				for i, l := range locks {
					got[i] = l.TryRLock()
				}
				if got[0] {
					rHeld++
				}
			case 2:
				for i, l := range locks {
					got[i] = l.TryLockFor(0)
				}
				if got[0] {
					wHeld = true
				}
			case 3:
				for i, l := range locks {
					got[i] = l.TryRLockFor(0)
				}
				if got[0] {
					rHeld++
				}
			case 4:
				if !wHeld {
					continue
				}
				for _, l := range locks {
					l.Unlock()
				}
				wHeld = false
			case 5:
				if rHeld == 0 {
					continue
				}
				for _, l := range locks {
					l.RUnlock()
				}
				rHeld--
			}
			if got[0] != got[1] {
				t.Fatalf("seed %d op %d kind %d: RWMutex=%v RefRWMutex=%v (wHeld=%v rHeld=%d)",
					seed, op, kind, got[0], got[1], wHeld, rHeld)
			}
			ar, aw := a.Stats()
			br, bw := b.Stats()
			if ar != br || aw != bw {
				t.Fatalf("seed %d op %d: stats diverged: new=(%d,%d) ref=(%d,%d)", seed, op, ar, aw, br, bw)
			}
			if a.QueueLen() != b.QueueLen() {
				t.Fatalf("seed %d op %d: queue len diverged: %d vs %d", seed, op, a.QueueLen(), b.QueueLen())
			}
		}
	}
}

type grantEvent struct {
	write bool
	id    int
}

// admissionOrder holds l in write mode, queues one waiter per pattern
// entry (true = writer) in a deterministic arrival order, releases the
// initial hold, and returns the order in which the waiters were granted.
func admissionOrder(t *testing.T, l rwLock, pattern []bool) []grantEvent {
	t.Helper()
	l.Lock()
	var mu sync.Mutex
	var order []grantEvent
	var wg sync.WaitGroup
	for i, write := range pattern {
		i, write := i, write
		wg.Add(1)
		go func() {
			defer wg.Done()
			if write {
				l.Lock()
			} else {
				l.RLock()
			}
			mu.Lock()
			order = append(order, grantEvent{write, i})
			mu.Unlock()
			if write {
				l.Unlock()
			} else {
				l.RUnlock()
			}
		}()
		deadline := time.Now().Add(5 * time.Second)
		for l.QueueLen() != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued (QueueLen=%d)", i, l.QueueLen())
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	l.Unlock()
	wg.Wait()
	return order
}

// canonical sorts reader ids within each maximal run of consecutive read
// grants: readers of one batch are admitted together, so their recording
// order is scheduling noise, while batch boundaries and writer positions
// are part of the fairness contract.
func canonical(order []grantEvent) string {
	out := ""
	i := 0
	for i < len(order) {
		if order[i].write {
			out += fmt.Sprintf("W%d ", order[i].id)
			i++
			continue
		}
		j := i
		for j < len(order) && !order[j].write {
			j++
		}
		ids := make([]int, 0, j-i)
		for _, e := range order[i:j] {
			ids = append(ids, e.id)
		}
		sort.Ints(ids)
		out += fmt.Sprintf("R%v ", ids)
		i = j
	}
	return out
}

// TestDifferentialAdmissionOrder fuzzes arrival patterns and requires the
// new lock to admit waiters in exactly the order and batching of the
// reference model.
func TestDifferentialAdmissionOrder(t *testing.T) {
	patterns := [][]bool{
		{false, false, true, false, true},
		{true, true, false, false, false, true},
		{false, true, false, true, false},
		{true, false, false, false, false, true, true},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		p := make([]bool, 3+rng.Intn(6))
		for j := range p {
			p[j] = rng.Intn(3) == 0
		}
		patterns = append(patterns, p)
	}
	for pi, p := range patterns {
		var a RWMutex
		var b RefRWMutex
		got := canonical(admissionOrder(t, &a, p))
		want := canonical(admissionOrder(t, &b, p))
		if got != want {
			t.Fatalf("pattern %d %v: admission diverged:\nnew: %s\nref: %s", pi, p, got, want)
		}
		ar, aw := a.Stats()
		br, bw := b.Stats()
		if ar != br || aw != bw {
			t.Fatalf("pattern %d: stats diverged: new=(%d,%d) ref=(%d,%d)", pi, ar, aw, br, bw)
		}
	}
}

// TestDifferentialTimedWaiter checks that a timed-out writer unblocks the
// readers queued behind it identically in both implementations.
func TestDifferentialTimedWaiter(t *testing.T) {
	run := func(l rwLock) string {
		l.RLock() // active reader batch
		timedOut := make(chan bool, 1)
		go func() { timedOut <- l.TryLockFor(20 * time.Millisecond) }()
		deadline := time.Now().Add(5 * time.Second)
		for l.QueueLen() != 1 {
			if time.Now().After(deadline) {
				t.Fatal("timed writer never queued")
			}
			time.Sleep(50 * time.Microsecond)
		}
		var mu sync.Mutex
		var order []grantEvent
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.RLock()
				mu.Lock()
				order = append(order, grantEvent{false, i})
				mu.Unlock()
				l.RUnlock()
			}()
			for l.QueueLen() != i+2 {
				if time.Now().After(deadline) {
					t.Fatalf("reader %d never queued", i)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
		ok := <-timedOut // writer expires while the read hold is still active
		if ok {
			t.Fatal("timed writer unexpectedly acquired")
		}
		wg.Wait() // readers must have been admitted past the expired writer
		l.RUnlock()
		return canonical(order)
	}
	var a RWMutex
	var b RefRWMutex
	if got, want := run(&a), run(&b); got != want {
		t.Fatalf("post-timeout admission diverged: new=%s ref=%s", got, want)
	}
}

// TestReaderBatchConcurrent verifies batch admission is genuinely
// concurrent: readers queued consecutively behind a writer must all be
// inside the lock at the same time.
func TestReaderBatchConcurrent(t *testing.T) {
	var m RWMutex
	m.Lock()
	const batch = 3
	var wg sync.WaitGroup
	gate := make(chan struct{})
	arrived := make(chan struct{}, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.RLock()
			arrived <- struct{}{}
			<-gate // hold read mode until every batch-mate has arrived
			m.RUnlock()
		}()
		deadline := time.Now().Add(5 * time.Second)
		for m.QueueLen() != i+1 {
			if time.Now().After(deadline) {
				t.Fatal("reader never queued")
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	m.Unlock()
	for i := 0; i < batch; i++ {
		select {
		case <-arrived:
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d batched readers admitted concurrently", i, batch)
		}
	}
	close(gate)
	wg.Wait()
}
