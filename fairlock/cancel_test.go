package fairlock

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rwLockCancel extends the differential surface with the cancellable
// acquires used by the lock service's session revocation.
type rwLockCancel interface {
	rwLock
	LockCancel(<-chan struct{}) bool
	RLockCancel(<-chan struct{}) bool
}

var (
	_ rwLockCancel = (*RWMutex)(nil)
	_ rwLockCancel = (*RefRWMutex)(nil)
)

// waitQueueLen spins until l's queue holds exactly n waiters.
func waitQueueLen(t *testing.T, l rwLock, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.QueueLen() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (QueueLen=%d)", n, l.QueueLen())
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestCancelImmediate checks the trivial cases: a cancellable acquire on a
// free lock grants immediately, and a pre-cancelled waiter on a held lock
// returns false without disturbing the holder.
func TestCancelImmediate(t *testing.T) {
	for _, l := range []rwLockCancel{&RWMutex{}, &RefRWMutex{}} {
		cancel := make(chan struct{})
		if !l.LockCancel(cancel) {
			t.Fatal("LockCancel on free lock failed")
		}
		close(cancel)
		done := make(chan bool, 1)
		go func() { done <- l.RLockCancel(cancel) }()
		if got := <-done; got {
			t.Fatal("RLockCancel with closed cancel acquired a write-held lock")
		}
		l.Unlock()
		if !l.RLockCancel(cancel) {
			// A closed cancel channel does not forbid an immediate grant:
			// the fast path never parks, so there is nothing to revoke.
			t.Fatal("RLockCancel on free lock failed")
		}
		l.RUnlock()
	}
}

// TestDifferentialCancelledWaiter queues R, W(cancellable), R, W behind a
// write hold, revokes the cancellable writer mid-queue, and requires the
// remaining admission order and batching to match the reference model:
// cancellation must remove exactly the revoked waiter and nothing else.
func TestDifferentialCancelledWaiter(t *testing.T) {
	run := func(l rwLockCancel) string {
		l.Lock()
		cancel := make(chan struct{})
		res := make(chan bool, 1)
		go func() { res <- l.LockCancel(cancel) }()
		waitQueueLen(t, l, 1)

		var mu sync.Mutex
		var order []grantEvent
		var wg sync.WaitGroup
		for i, write := range []bool{false, false, true} {
			i, write := i, write
			wg.Add(1)
			go func() {
				defer wg.Done()
				if write {
					l.Lock()
				} else {
					l.RLock()
				}
				mu.Lock()
				order = append(order, grantEvent{write, i})
				mu.Unlock()
				if write {
					l.Unlock()
				} else {
					l.RUnlock()
				}
			}()
			waitQueueLen(t, l, i+2)
		}

		close(cancel)
		if got := <-res; got {
			t.Fatal("cancelled writer acquired the lock")
		}
		waitQueueLen(t, l, 3) // revoked waiter left; everyone else still queued
		l.Unlock()
		wg.Wait()
		return canonical(order)
	}
	var a RWMutex
	var b RefRWMutex
	if got, want := run(&a), run(&b); got != want {
		t.Fatalf("post-cancel admission diverged: new=%s ref=%s", got, want)
	}
}

// TestDifferentialTimedReader drives TryRLockFor through expiry behind a
// write hold in both implementations: the timed reader must report false,
// leave the queue without disturbing the waiters behind it, and the
// remaining admission order must match the reference model. A second timed
// reader with a comfortable deadline must be granted (true) in both.
func TestDifferentialTimedReader(t *testing.T) {
	run := func(l rwLock) string {
		l.Lock()
		timedOut := make(chan bool, 1)
		go func() { timedOut <- l.TryRLockFor(20 * time.Millisecond) }()
		waitQueueLen(t, l, 1)

		var mu sync.Mutex
		var order []grantEvent
		var wg sync.WaitGroup
		for i, write := range []bool{true, false} {
			i, write := i, write
			wg.Add(1)
			go func() {
				defer wg.Done()
				if write {
					l.Lock()
				} else {
					l.RLock()
				}
				mu.Lock()
				order = append(order, grantEvent{write, i})
				mu.Unlock()
				if write {
					l.Unlock()
				} else {
					l.RUnlock()
				}
			}()
			waitQueueLen(t, l, i+2)
		}
		if ok := <-timedOut; ok {
			t.Fatal("timed reader unexpectedly acquired while writer held")
		}
		waitQueueLen(t, l, 2)
		l.Unlock()
		wg.Wait()

		// Deadline comfortably after the release: the grant must win.
		if !l.TryRLockFor(5 * time.Second) {
			t.Fatal("timed reader on free lock failed")
		}
		l.RUnlock()
		return canonical(order)
	}
	var a RWMutex
	var b RefRWMutex
	if got, want := run(&a), run(&b); got != want {
		t.Fatalf("post-reader-timeout admission diverged: new=%s ref=%s", got, want)
	}
}

// TestStressCancelRace hammers cancellable acquires whose cancel channels
// close at random times, checking mutual exclusion and that every acquire
// reporting true is balanced by a release. Run under -race in CI.
func TestStressCancelRace(t *testing.T) {
	var m RWMutex
	var writers atomic.Int32
	var readers atomic.Int32
	const goroutines = 8
	const iters = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				cancel := make(chan struct{})
				if rng.Intn(4) > 0 {
					// Cancel concurrently with the acquire attempt.
					d := time.Duration(rng.Intn(200)) * time.Microsecond
					go func() {
						time.Sleep(d)
						close(cancel)
					}()
				}
				if rng.Intn(3) == 0 {
					if m.LockCancel(cancel) {
						if w := writers.Add(1); w != 1 {
							t.Errorf("two writers inside (%d)", w)
						}
						if r := readers.Load(); r != 0 {
							t.Errorf("writer inside with %d readers", r)
						}
						writers.Add(-1)
						m.Unlock()
					}
				} else {
					if m.RLockCancel(cancel) {
						readers.Add(1)
						if w := writers.Load(); w != 0 {
							t.Errorf("reader inside with writer")
						}
						readers.Add(-1)
						m.RUnlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	if m.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", m.QueueLen())
	}
	if !m.TryLock() {
		t.Fatal("lock not free after stress")
	}
	m.Unlock()
}
