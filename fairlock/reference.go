package fairlock

import (
	"sync"
	"time"
)

// This file preserves the original, deliberately simple fairlock
// implementation — one sync.Mutex around explicit state, a slice queue,
// and a channel per waiter — as an executable reference model. The
// rewritten locks (fairlock.go, mutex.go, bravo.go) must be
// behaviourally identical to it: the differential tests drive both with
// the same arrival scripts and require the same admission order,
// reader batching, trylock outcomes, and grant counts, and the benchmark
// matrix reports old-vs-new side by side.

// refWaiter is one queued acquisition in the reference model.
type refWaiter struct {
	write bool
	ready chan struct{} // closed when the lock is granted
}

// RefRWMutex is the reference fair FIFO reader-writer lock. It has the
// same API and fairness contract as RWMutex but takes a global mutex on
// every operation and allocates per contended acquire. Use RWMutex; this
// type exists for differential testing and benchmarking.
type RefRWMutex struct {
	mu      sync.Mutex
	readers int  // active readers
	writer  bool // active writer
	queue   []*refWaiter

	grantsR, grantsW uint64
}

// admit grants the lock to the queue head — and, for a reader head, to
// every consecutive reader behind it. Callers hold mu.
func (m *RefRWMutex) admit() {
	for len(m.queue) > 0 {
		h := m.queue[0]
		if h.write {
			if m.readers == 0 && !m.writer {
				m.writer = true
				m.grantsW++
				m.queue = m.queue[1:]
				close(h.ready)
			}
			return
		}
		if m.writer {
			return
		}
		m.readers++
		m.grantsR++
		m.queue = m.queue[1:]
		close(h.ready)
	}
}

// enqueue appends a waiter unless the lock is immediately available (no
// queue and no conflicting holder). It returns nil on immediate grant.
func (m *RefRWMutex) enqueue(write bool) *refWaiter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 && !m.writer && (!write || m.readers == 0) {
		if write {
			m.writer = true
			m.grantsW++
		} else {
			m.readers++
			m.grantsR++
		}
		return nil
	}
	w := &refWaiter{write: write, ready: make(chan struct{})}
	m.queue = append(m.queue, w)
	return w
}

// Lock acquires the lock in write (exclusive) mode.
func (m *RefRWMutex) Lock() {
	if w := m.enqueue(true); w != nil {
		<-w.ready
	}
}

// RLock acquires the lock in read (shared) mode.
func (m *RefRWMutex) RLock() {
	if w := m.enqueue(false); w != nil {
		<-w.ready
	}
}

// Unlock releases write mode. It panics if the lock is not write-held.
func (m *RefRWMutex) Unlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.writer {
		panic("fairlock: Unlock of non-write-locked RefRWMutex")
	}
	m.writer = false
	m.admit()
}

// RUnlock releases read mode. It panics if the lock is not read-held.
func (m *RefRWMutex) RUnlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.readers == 0 {
		panic("fairlock: RUnlock of non-read-locked RefRWMutex")
	}
	m.readers--
	if m.readers == 0 {
		m.admit()
	}
}

// TryLock attempts write mode without waiting.
func (m *RefRWMutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 && !m.writer && m.readers == 0 {
		m.writer = true
		m.grantsW++
		return true
	}
	return false
}

// TryRLock attempts read mode without waiting.
func (m *RefRWMutex) TryRLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 && !m.writer {
		m.readers++
		m.grantsR++
		return true
	}
	return false
}

// TryLockFor attempts write mode, waiting in queue up to d.
func (m *RefRWMutex) TryLockFor(d time.Duration) bool { return m.tryFor(true, d) }

// TryRLockFor attempts read mode, waiting in queue up to d.
func (m *RefRWMutex) TryRLockFor(d time.Duration) bool { return m.tryFor(false, d) }

func (m *RefRWMutex) tryFor(write bool, d time.Duration) bool {
	w := m.enqueue(write)
	if w == nil {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-w.ready:
		return true
	case <-timer.C:
	}
	m.mu.Lock()
	for i, q := range m.queue {
		if q == w {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.admit()
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	<-w.ready // the grant won the race; we hold the lock
	return true
}

// LockCancel acquires write mode, abandoning the attempt when cancel is
// closed. It reports whether the lock was acquired.
func (m *RefRWMutex) LockCancel(cancel <-chan struct{}) bool { return m.cancelFor(true, cancel) }

// RLockCancel acquires read mode, abandoning the attempt when cancel is
// closed. It reports whether the lock was acquired.
func (m *RefRWMutex) RLockCancel(cancel <-chan struct{}) bool { return m.cancelFor(false, cancel) }

func (m *RefRWMutex) cancelFor(write bool, cancel <-chan struct{}) bool {
	w := m.enqueue(write)
	if w == nil {
		return true
	}
	select {
	case <-w.ready:
		return true
	case <-cancel:
	}
	m.mu.Lock()
	for i, q := range m.queue {
		if q == w {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.admit()
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	<-w.ready // the grant won the race; we hold the lock
	return true
}

// Stats returns the cumulative number of read and write grants.
func (m *RefRWMutex) Stats() (readGrants, writeGrants uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grantsR, m.grantsW
}

// QueueLen returns the current number of queued waiters (diagnostics).
func (m *RefRWMutex) QueueLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// RefMutex is the reference FIFO-fair mutex (see RefRWMutex).
type RefMutex struct {
	mu     sync.Mutex
	held   bool
	queue  []chan struct{}
	grants uint64
}

// Lock acquires the mutex, queueing FIFO behind earlier waiters.
func (m *RefMutex) Lock() {
	m.mu.Lock()
	if !m.held && len(m.queue) == 0 {
		m.held = true
		m.grants++
		m.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	m.queue = append(m.queue, ch)
	m.mu.Unlock()
	<-ch
}

// Unlock releases the mutex, handing it directly to the queue head.
func (m *RefMutex) Unlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.held {
		panic("fairlock: Unlock of unlocked RefMutex")
	}
	if len(m.queue) > 0 {
		ch := m.queue[0]
		m.queue = m.queue[1:]
		m.grants++
		close(ch) // ownership transfers directly; held stays true
		return
	}
	m.held = false
}

// TryLock acquires the mutex only if it is free and nobody waits.
func (m *RefMutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held || len(m.queue) > 0 {
		return false
	}
	m.held = true
	m.grants++
	return true
}

// TryLockFor acquires the mutex, waiting in queue at most d.
func (m *RefMutex) TryLockFor(d time.Duration) bool {
	m.mu.Lock()
	if !m.held && len(m.queue) == 0 {
		m.held = true
		m.grants++
		m.mu.Unlock()
		return true
	}
	ch := make(chan struct{})
	m.queue = append(m.queue, ch)
	m.mu.Unlock()

	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-timer.C:
	}
	m.mu.Lock()
	for i, q := range m.queue {
		if q == ch {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	<-ch // the grant raced the timeout: we own the lock
	return true
}

// Grants returns the cumulative number of acquisitions (diagnostics).
func (m *RefMutex) Grants() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grants
}
