package fairlock

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file preserves the original, deliberately simple fairlock
// implementation — one sync.Mutex around explicit state, a slice queue,
// and a channel per waiter — as an executable reference model. The
// rewritten locks (fairlock.go, mutex.go, bravo.go) must be
// behaviourally identical to it: the differential tests drive both with
// the same arrival scripts and require the same admission order,
// reader batching, trylock outcomes, and grant counts, and the benchmark
// matrix reports old-vs-new side by side.

// refWaiter is one queued acquisition in the reference model.
type refWaiter struct {
	write  bool
	cohort uint32 // locality tag assigned at enqueue (cohort mode)
	skips  int32  // grants that have bypassed this waiter
	ready  chan struct{} // closed when the lock is granted
}

// RefRWMutex is the reference fair FIFO reader-writer lock. It has the
// same API and fairness contract as RWMutex but takes a global mutex on
// every operation and allocates per contended acquire. Use RWMutex; this
// type exists for differential testing and benchmarking.
type RefRWMutex struct {
	mu      sync.Mutex
	readers int  // active readers
	writer  bool // active writer
	queue   []*refWaiter

	grantsR, grantsW uint64
	cohortGrants     uint64 // out-of-FIFO grants to a cohort-mate; under mu

	cohort atomic.Pointer[cohortState] // cohort batching config (nil = off)
}

// SetCohort mirrors RWMutex.SetCohort on the reference model, so the
// differential tests can pin the cohort-batching policy — including the
// B-bounded bypass rule — against this oracle.
func (m *RefRWMutex) SetCohort(cfg CohortConfig) {
	if cfg.Batch <= 0 {
		m.cohort.Store(nil)
		return
	}
	fn := cfg.Fn
	if fn == nil {
		fn = slotIndex
	}
	m.cohort.Store(&cohortState{batch: cfg.Batch, fn: fn, sink: cfg.Grants})
}

// CohortGrants mirrors RWMutex.CohortGrants.
func (m *RefRWMutex) CohortGrants() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cohortGrants
}

// releaseCohort derives the releasing holder's cohort tag before mu is
// taken (a user CohortFunc must never run under the lock's own mutex).
func (m *RefRWMutex) releaseCohort() uint32 {
	if c := m.cohort.Load(); c != nil {
		return c.fn()
	}
	return noCohort
}

// feasible mirrors RWMutex.feasible on the reference state. Callers hold mu.
func (m *RefRWMutex) feasible(w *refWaiter) bool {
	if w.write {
		return m.readers == 0 && !m.writer
	}
	return !m.writer
}

// cohortCandidate mirrors RWMutex.cohortCandidate: the queue index to
// grant for releaser cohort rc — 0 for strict FIFO, a bypass otherwise.
// Callers hold mu.
func (m *RefRWMutex) cohortCandidate(c *cohortState, rc uint32) int {
	for i, w := range m.queue {
		if i >= cohortScanWindow {
			break
		}
		if w.cohort == rc && m.feasible(w) {
			return i
		}
		if w.skips >= c.batch {
			break
		}
	}
	return 0
}

// admit grants strictly FIFO: the queue head — and, for a reader head,
// every consecutive reader behind it. Callers hold mu.
func (m *RefRWMutex) admit() { m.admitWith(noCohort) }

// admitWith mirrors RWMutex.admitWith: hand-offs may batch grants within
// the releaser's cohort, charging one skip to every overtaken waiter and
// never overtaking a waiter more than B times. Callers hold mu.
func (m *RefRWMutex) admitWith(rc uint32) {
	c := m.cohort.Load()
	if c == nil {
		rc = noCohort
	}
	for len(m.queue) > 0 {
		ci := 0
		if rc != noCohort {
			ci = m.cohortCandidate(c, rc)
		}
		h := m.queue[ci]
		if !m.feasible(h) {
			return
		}
		if ci > 0 {
			for _, w := range m.queue[:ci] {
				w.skips++
			}
			m.cohortGrants++
			if c.sink != nil {
				c.sink.Add(1)
			}
		}
		if h.write {
			m.writer = true
			m.grantsW++
		} else {
			m.readers++
			m.grantsR++
		}
		m.queue = append(m.queue[:ci], m.queue[ci+1:]...)
		close(h.ready)
		if h.write {
			return
		}
	}
}

// enqueue appends a waiter unless the lock is immediately available (no
// queue and no conflicting holder). It returns nil on immediate grant.
func (m *RefRWMutex) enqueue(write bool) *refWaiter {
	var cohort uint32
	if c := m.cohort.Load(); c != nil {
		cohort = c.fn()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 && !m.writer && (!write || m.readers == 0) {
		if write {
			m.writer = true
			m.grantsW++
		} else {
			m.readers++
			m.grantsR++
		}
		return nil
	}
	w := &refWaiter{write: write, cohort: cohort, ready: make(chan struct{})}
	m.queue = append(m.queue, w)
	return w
}

// Lock acquires the lock in write (exclusive) mode.
func (m *RefRWMutex) Lock() {
	if w := m.enqueue(true); w != nil {
		<-w.ready
	}
}

// RLock acquires the lock in read (shared) mode.
func (m *RefRWMutex) RLock() {
	if w := m.enqueue(false); w != nil {
		<-w.ready
	}
}

// Unlock releases write mode. It panics if the lock is not write-held.
func (m *RefRWMutex) Unlock() {
	rc := m.releaseCohort()
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.writer {
		panic("fairlock: Unlock of non-write-locked RefRWMutex")
	}
	m.writer = false
	m.admitWith(rc)
}

// RUnlock releases read mode. It panics if the lock is not read-held.
func (m *RefRWMutex) RUnlock() {
	rc := m.releaseCohort()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.readers == 0 {
		panic("fairlock: RUnlock of non-read-locked RefRWMutex")
	}
	m.readers--
	if m.readers == 0 {
		m.admitWith(rc)
	}
}

// TryLock attempts write mode without waiting.
func (m *RefRWMutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 && !m.writer && m.readers == 0 {
		m.writer = true
		m.grantsW++
		return true
	}
	return false
}

// TryRLock attempts read mode without waiting.
func (m *RefRWMutex) TryRLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 && !m.writer {
		m.readers++
		m.grantsR++
		return true
	}
	return false
}

// TryLockFor attempts write mode, waiting in queue up to d.
func (m *RefRWMutex) TryLockFor(d time.Duration) bool { return m.tryFor(true, d) }

// TryRLockFor attempts read mode, waiting in queue up to d.
func (m *RefRWMutex) TryRLockFor(d time.Duration) bool { return m.tryFor(false, d) }

func (m *RefRWMutex) tryFor(write bool, d time.Duration) bool {
	w := m.enqueue(write)
	if w == nil {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-w.ready:
		return true
	case <-timer.C:
	}
	m.mu.Lock()
	for i, q := range m.queue {
		if q == w {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.admit()
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	<-w.ready // the grant won the race; we hold the lock
	return true
}

// LockCancel acquires write mode, abandoning the attempt when cancel is
// closed. It reports whether the lock was acquired.
func (m *RefRWMutex) LockCancel(cancel <-chan struct{}) bool { return m.cancelFor(true, cancel) }

// RLockCancel acquires read mode, abandoning the attempt when cancel is
// closed. It reports whether the lock was acquired.
func (m *RefRWMutex) RLockCancel(cancel <-chan struct{}) bool { return m.cancelFor(false, cancel) }

func (m *RefRWMutex) cancelFor(write bool, cancel <-chan struct{}) bool {
	w := m.enqueue(write)
	if w == nil {
		return true
	}
	select {
	case <-w.ready:
		return true
	case <-cancel:
	}
	m.mu.Lock()
	for i, q := range m.queue {
		if q == w {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.admit()
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	<-w.ready // the grant won the race; we hold the lock
	return true
}

// Stats returns the cumulative number of read and write grants.
func (m *RefRWMutex) Stats() (readGrants, writeGrants uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grantsR, m.grantsW
}

// QueueLen returns the current number of queued waiters (diagnostics).
func (m *RefRWMutex) QueueLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// RefMutex is the reference FIFO-fair mutex (see RefRWMutex).
type RefMutex struct {
	mu     sync.Mutex
	held   bool
	queue  []chan struct{}
	grants uint64
}

// Lock acquires the mutex, queueing FIFO behind earlier waiters.
func (m *RefMutex) Lock() {
	m.mu.Lock()
	if !m.held && len(m.queue) == 0 {
		m.held = true
		m.grants++
		m.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	m.queue = append(m.queue, ch)
	m.mu.Unlock()
	<-ch
}

// Unlock releases the mutex, handing it directly to the queue head.
func (m *RefMutex) Unlock() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.held {
		panic("fairlock: Unlock of unlocked RefMutex")
	}
	if len(m.queue) > 0 {
		ch := m.queue[0]
		m.queue = m.queue[1:]
		m.grants++
		close(ch) // ownership transfers directly; held stays true
		return
	}
	m.held = false
}

// TryLock acquires the mutex only if it is free and nobody waits.
func (m *RefMutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held || len(m.queue) > 0 {
		return false
	}
	m.held = true
	m.grants++
	return true
}

// TryLockFor acquires the mutex, waiting in queue at most d.
func (m *RefMutex) TryLockFor(d time.Duration) bool {
	m.mu.Lock()
	if !m.held && len(m.queue) == 0 {
		m.held = true
		m.grants++
		m.mu.Unlock()
		return true
	}
	ch := make(chan struct{})
	m.queue = append(m.queue, ch)
	m.mu.Unlock()

	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-timer.C:
	}
	m.mu.Lock()
	for i, q := range m.queue {
		if q == ch {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	<-ch // the grant raced the timeout: we own the lock
	return true
}

// Grants returns the cumulative number of acquisitions (diagnostics).
func (m *RefMutex) Grants() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grants
}
