package sim

import "testing"

func TestScheduleOrdering(t *testing.T) {
	k := New()
	var got []int
	k.Schedule(10, func() { got = append(got, 2) })
	k.Schedule(5, func() { got = append(got, 1) })
	k.Schedule(10, func() { got = append(got, 3) }) // same time: insertion order
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
	if k.Now() != 10 {
		t.Fatalf("now = %d, want 10", k.Now())
	}
}

func TestScheduleNested(t *testing.T) {
	k := New()
	var fired []Time
	k.Schedule(1, func() {
		fired = append(fired, k.Now())
		k.Schedule(4, func() { fired = append(fired, k.Now()) })
	})
	k.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 5 {
		t.Fatalf("fired = %v, want [1 5]", fired)
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	ran := 0
	k.Schedule(5, func() { ran++ })
	k.Schedule(50, func() { ran++ })
	k.RunUntil(10)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (second event beyond limit)", ran)
	}
	k.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 after full Run", ran)
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	k := New()
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		k.ScheduleAt(5, func() {})
	})
	k.Run()
}

func TestProcWait(t *testing.T) {
	k := New()
	var trace []Time
	k.Spawn("p", func(p *Proc) {
		trace = append(trace, p.Now())
		p.Wait(10)
		trace = append(trace, p.Now())
		p.Wait(7)
		trace = append(trace, p.Now())
	})
	k.Run()
	want := []Time{0, 10, 17}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := New()
		var log []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Wait(10)
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "b")
				p.Wait(10)
			}
		})
		k.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestBlockWake(t *testing.T) {
	k := New()
	var p1 *Proc
	order := []string{}
	p1 = k.Spawn("sleeper", func(p *Proc) {
		p.Block()
		order = append(order, "woke")
	})
	k.Spawn("waker", func(p *Proc) {
		p.Wait(100)
		order = append(order, "waking")
		p1.Wake(5)
	})
	k.Run()
	if k.Now() != 105 {
		t.Fatalf("now = %d, want 105", k.Now())
	}
	if len(order) != 2 || order[0] != "waking" || order[1] != "woke" {
		t.Fatalf("order = %v", order)
	}
}

func TestBlockTimeout(t *testing.T) {
	k := New()
	var wokenEarly, timedOut bool
	var p1, p2 *Proc
	p1 = k.Spawn("timeout", func(p *Proc) {
		timedOut = !p.BlockTimeout(50)
	})
	p2 = k.Spawn("early", func(p *Proc) {
		wokenEarly = p.BlockTimeout(1000)
	})
	k.Spawn("waker", func(p *Proc) {
		p.Wait(10)
		p2.Wake(0)
	})
	k.Run()
	_ = p1
	if !timedOut {
		t.Error("first proc should have timed out")
	}
	if !wokenEarly {
		t.Error("second proc should have been woken before timeout")
	}
	// A stale timeout after an early wake must not fire: kernel time ends at
	// the timeout horizon but nothing else happens.
	if k.Now() != 1000 {
		t.Fatalf("now = %d, want 1000 (stale timer drains quietly)", k.Now())
	}
}

func TestWakeUnblockedPanics(t *testing.T) {
	k := New()
	p1 := k.Spawn("p1", func(p *Proc) { p.Wait(1000) })
	k.Spawn("p2", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Wake on unblocked proc did not panic")
			}
		}()
		p1.Wake(0)
	})
	k.Run()
}

func TestWaitGroup(t *testing.T) {
	k := New()
	var wg WaitGroup
	wg.Add(3)
	done := Time(0)
	for i := 0; i < 3; i++ {
		d := Time((i + 1) * 100)
		k.Spawn("w", func(p *Proc) {
			p.Wait(d)
			wg.Done()
		})
	}
	k.Spawn("join", func(p *Proc) {
		wg.WaitFor(p)
		done = p.Now()
	})
	k.Run()
	if done != 300 {
		t.Fatalf("join completed at %d, want 300", done)
	}
}

func TestWaitGroupDoneUnderflowPanics(t *testing.T) {
	k := New()
	var wg WaitGroup
	wg.Add(1)
	k.Spawn("over-done", func(p *Proc) {
		wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("WaitGroup.Done underflow did not panic")
			}
		}()
		wg.Done()
	})
	k.Run()
}

func TestEventBudget(t *testing.T) {
	k := New()
	k.MaxEvents = 100
	var bomb func()
	bomb = func() { k.Schedule(1, bomb) }
	k.Schedule(1, bomb)
	defer func() {
		if recover() == nil {
			t.Error("runaway event loop did not trip MaxEvents")
		}
	}()
	k.Run()
}

func TestYield(t *testing.T) {
	k := New()
	var log []string
	k.Spawn("a", func(p *Proc) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		log = append(log, "b1")
	})
	k.Run()
	// a starts first, yields, b runs, then a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}
