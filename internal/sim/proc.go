package sim

import "fmt"

// Proc is a simulated thread of execution. Its body runs on a dedicated
// goroutine, but the kernel guarantees that at most one Proc (or event
// callback) executes at a time: a Proc runs only between a resume signal
// from the kernel and its next call to a blocking primitive (Wait, Block,
// or returning from the body). Simulation state therefore needs no locks.
type Proc struct {
	k    *Kernel
	name string
	id   int

	// resume parks the Proc's goroutine between dispatches. Buffered so
	// the kernel's wakeup send never blocks; yields go to the kernel's
	// shared yield channel.
	resume chan struct{}

	blocked  bool // waiting for an explicit Wake
	finished bool
	timedOut bool // set by the kernel when a BlockTimeout expires

	// wakeSeq guards against stale timed wakeups after an early Wake.
	wakeSeq uint64
}

// Spawn creates a Proc running body, scheduled to start at the current
// time (after already-queued events for this instant).
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		id:     len(k.procs),
		resume: make(chan struct{}, 1),
	}
	k.procs = append(k.procs, p)
	go func() {
		<-p.resume // wait for first dispatch
		body(p)
		p.finished = true
		k.yield <- struct{}{}
	}()
	k.pushDispatch(0, p)
	return p
}

// dispatch transfers control to p and blocks the kernel until p yields.
func (k *Kernel) dispatch(p *Proc) {
	if p.finished {
		return
	}
	p.resume <- struct{}{}
	<-k.yield
}

// Name returns the Proc's name.
func (p *Proc) Name() string { return p.name }

// ID returns the Proc's kernel-assigned index.
func (p *Proc) ID() int { return p.id }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Wait advances this Proc's execution by d cycles of virtual time. Other
// events and Procs run in the interim.
//
// Fast path: when nothing else is scheduled before now+d (and the run
// horizon allows it), no event could observe the interim, so the clock
// advances in place without a heap operation or a goroutine handoff.
func (p *Proc) Wait(d Time) {
	p.wakeSeq++
	k := p.k
	at := k.now + d
	if at <= k.limit && (len(k.events) == 0 || k.events[0].at > at) {
		k.now = at
		return
	}
	k.pushDispatch(d, p)
	p.yieldToKernel()
}

// Block suspends the Proc until some agent calls Wake. Typically the Proc
// registers itself on a wait list before calling Block.
func (p *Proc) Block() {
	p.blocked = true
	p.wakeSeq++
	p.yieldToKernel()
}

// BlockTimeout suspends the Proc until Wake or until d cycles elapse,
// whichever comes first. It returns true if woken explicitly, false on
// timeout.
func (p *Proc) BlockTimeout(d Time) bool {
	p.blocked = true
	p.wakeSeq++
	p.timedOut = false
	p.k.pushTimeout(d, p, p.wakeSeq)
	p.yieldToKernel()
	return !p.timedOut
}

// Wake schedules a blocked Proc to resume after delay cycles. Waking a
// Proc that is not blocked is a programming error and panics, since it
// would corrupt the single-runnable invariant.
func (p *Proc) Wake(delay Time) {
	if !p.blocked {
		panic(fmt.Sprintf("sim: Wake(%s) but proc is not blocked", p.name))
	}
	p.blocked = false
	p.wakeSeq++
	p.k.pushDispatch(delay, p)
}

// Blocked reports whether the Proc is suspended waiting for Wake.
func (p *Proc) Blocked() bool { return p.blocked }

// Finished reports whether the Proc's body has returned.
func (p *Proc) Finished() bool { return p.finished }

// Yield lets all other events at the current instant run before resuming.
func (p *Proc) Yield() { p.Wait(0) }

func (p *Proc) yieldToKernel() {
	p.k.yield <- struct{}{}
	<-p.resume
}

// WaitGroup counts outstanding Procs and lets a coordinator Proc join them.
type WaitGroup struct {
	n      int
	waiter *Proc
}

// Add registers n more outstanding Procs.
func (w *WaitGroup) Add(n int) { w.n += n }

// Done marks one Proc complete, waking the waiter when the count hits zero.
// Calling Done more times than Add is a programming error: the count would
// go negative, the zero crossing would never be seen again, and the waiter
// would sleep forever — so it panics instead.
func (w *WaitGroup) Done() {
	w.n--
	if w.n < 0 {
		panic(fmt.Sprintf("sim: WaitGroup.Done without matching Add (count=%d)", w.n))
	}
	if w.n == 0 && w.waiter != nil {
		p := w.waiter
		w.waiter = nil
		p.Wake(0)
	}
}

// WaitFor blocks p until the count reaches zero.
func (w *WaitGroup) WaitFor(p *Proc) {
	if w.n == 0 {
		return
	}
	if w.waiter != nil {
		panic("sim: WaitGroup supports a single waiter")
	}
	w.waiter = p
	p.Block()
}
