// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock measured in cycles and executes
// scheduled events in (time, insertion-order) order. Simulated threads are
// modelled as Procs: goroutine-backed coroutines of which exactly one is
// runnable at any instant, so simulation state needs no locking and every
// run is bit-for-bit reproducible.
package sim

import (
	"fmt"

	"fairrw/internal/obs"
)

// Time is a point in virtual time, in cycles.
type Time uint64

// Event kinds. The Proc hot paths (Wait, Wake, BlockTimeout) push
// specialized kinds carrying the target Proc as plain value fields, so no
// closure is allocated per context switch. evRecv extends the same idea to
// message delivery: the event carries a Receiver plus an opaque tag, so
// senders that key their in-flight state by tag schedule without any
// closure allocation.
const (
	evFn       byte = iota // run fn
	evDispatch             // dispatch proc
	evTimeout              // dispatch proc if still blocked with wakeSeq == wseq
	evRecv                 // recv.Recv(tag)
)

// Receiver consumes tagged deliveries scheduled with ScheduleRecv. The tag
// is opaque to the kernel; receivers typically use it to index a table of
// pending value-typed messages.
type Receiver interface {
	Recv(tag uint64)
}

// event is a scheduled callback, stored by value in the heap.
type event struct {
	at   Time
	seq  uint64   // tie-breaker: insertion order
	wseq uint64   // evTimeout: Proc.wakeSeq guard; evRecv: delivery tag
	fn   func()   // evFn only
	proc *Proc    // evDispatch, evTimeout
	recv Receiver // evRecv only
	kind byte
}

// eventLess orders events by (time, insertion order).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Kernel is the simulation engine. It is not safe for concurrent use from
// multiple goroutines; Procs hand control back to the kernel before it ever
// resumes another Proc. Concurrent sweeps therefore give each run its own
// Kernel.
type Kernel struct {
	now Time
	// events is a value-based binary min-heap ordered by (at, seq). Pushing
	// a value into the slice avoids the per-event allocation and the
	// interface boxing that container/heap would impose.
	events []event
	seq    uint64
	procs  []*Proc
	// limit is the current RunUntil horizon; the Wait fast path must not
	// advance the clock beyond it.
	limit Time
	// yield is the rendezvous the running Proc uses to hand control back.
	// A single buffered channel suffices because at most one Proc runs at
	// a time, and the buffer lets the yielding side continue to its park
	// point without blocking on the kernel's wakeup.
	yield chan struct{}

	// nEvents counts executed events, for diagnostics and runaway guards.
	nEvents uint64
	// MaxEvents aborts the run (panic) when exceeded; 0 means no limit.
	MaxEvents uint64

	// Obs, when non-nil, receives a record per executed event (gated
	// further by its own options). The nil check is the only cost tracing
	// adds to the dispatch loop when disabled.
	Obs *obs.Capture
}

// New returns an empty kernel at time 0.
func New() *Kernel {
	return &Kernel{limit: ^Time(0), yield: make(chan struct{}, 1)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.nEvents }

// push inserts e into the heap (sift-up).
func (k *Kernel) push(e event) {
	h := append(k.events, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	k.events = h
}

// pop removes and returns the minimum event (sift-down).
func (k *Kernel) pop() event {
	h := k.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/proc references
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(&h[r], &h[l]) {
			m = r
		}
		if !eventLess(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	k.events = h
	return top
}

// Schedule runs fn at now+delay. Events scheduled for the same instant run
// in the order they were scheduled.
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.seq++
	k.push(event{at: k.now + delay, seq: k.seq, fn: fn, kind: evFn})
}

// ScheduleAt runs fn at absolute time at, which must not be in the past.
func (k *Kernel) ScheduleAt(at Time, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) in the past (now=%d)", at, k.now))
	}
	k.seq++
	k.push(event{at: at, seq: k.seq, fn: fn, kind: evFn})
}

// pushDispatch schedules a dispatch of p at now+delay without allocating.
func (k *Kernel) pushDispatch(delay Time, p *Proc) {
	k.seq++
	k.push(event{at: k.now + delay, seq: k.seq, proc: p, kind: evDispatch})
}

// pushTimeout schedules a conditional dispatch of p at now+delay, valid
// only while p is still blocked on wait-sequence wseq.
func (k *Kernel) pushTimeout(delay Time, p *Proc, wseq uint64) {
	k.seq++
	k.push(event{at: k.now + delay, seq: k.seq, proc: p, wseq: wseq, kind: evTimeout})
}

// ScheduleRecv schedules r.Recv(tag) at now+delay without allocating: the
// receiver and tag travel as plain event fields. It is the closure-free
// counterpart of Schedule for message-passing senders.
func (k *Kernel) ScheduleRecv(delay Time, r Receiver, tag uint64) {
	k.seq++
	k.push(event{at: k.now + delay, seq: k.seq, recv: r, wseq: tag, kind: evRecv})
}

// Run executes events until the queue is empty or every Proc has finished.
// It returns the final virtual time.
func (k *Kernel) Run() Time {
	return k.RunUntil(^Time(0))
}

// RunUntil executes events with timestamps <= limit. Events beyond the
// limit remain queued.
func (k *Kernel) RunUntil(limit Time) Time {
	k.limit = limit
	for len(k.events) > 0 && k.events[0].at <= limit {
		e := k.pop()
		if e.at > k.now {
			k.now = e.at
		}
		k.nEvents++
		if k.Obs != nil {
			k.Obs.KernelEvent(uint64(k.now), e.kind)
		}
		if k.MaxEvents != 0 && k.nEvents > k.MaxEvents {
			panic(fmt.Sprintf("sim: event budget exceeded (%d events, now=%d)", k.nEvents, k.now))
		}
		switch e.kind {
		case evFn:
			e.fn()
		case evDispatch:
			k.dispatch(e.proc)
		case evRecv:
			e.recv.Recv(e.wseq)
		default: // evTimeout
			p := e.proc
			if p.blocked && p.wakeSeq == e.wseq {
				p.timedOut = true
				p.blocked = false
				k.dispatch(p)
			}
		}
	}
	k.limit = ^Time(0)
	return k.now
}

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool { return len(k.events) == 0 }

// Reset returns the kernel to its post-New state — time zero, no events,
// no procs — while keeping the event heap's backing array, so a reused
// machine pays no kernel rebuild. Any still-queued events are dropped;
// callers reset only after a run has drained.
func (k *Kernel) Reset() {
	clear(k.events) // release fn/proc/recv references
	k.events = k.events[:0]
	clear(k.procs)
	k.procs = k.procs[:0]
	k.now = 0
	k.seq = 0
	k.limit = ^Time(0)
	k.nEvents = 0
	k.Obs = nil
}
