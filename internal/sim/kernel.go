// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock measured in cycles and executes
// scheduled events in (time, insertion-order) order. Simulated threads are
// modelled as Procs: goroutine-backed coroutines of which exactly one is
// runnable at any instant, so simulation state needs no locking and every
// run is bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in cycles.
type Time uint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: insertion order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the simulation engine. It is not safe for concurrent use from
// multiple goroutines; Procs hand control back to the kernel before it ever
// resumes another Proc.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	procs  []*Proc

	// nEvents counts executed events, for diagnostics and runaway guards.
	nEvents uint64
	// MaxEvents aborts the run (panic) when exceeded; 0 means no limit.
	MaxEvents uint64
}

// New returns an empty kernel at time 0.
func New() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.nEvents }

// Schedule runs fn at now+delay. Events scheduled for the same instant run
// in the order they were scheduled.
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.seq++
	heap.Push(&k.events, &event{at: k.now + delay, seq: k.seq, fn: fn})
}

// ScheduleAt runs fn at absolute time at, which must not be in the past.
func (k *Kernel) ScheduleAt(at Time, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) in the past (now=%d)", at, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, fn: fn})
}

// Run executes events until the queue is empty or every Proc has finished.
// It returns the final virtual time.
func (k *Kernel) Run() Time {
	return k.RunUntil(^Time(0))
}

// RunUntil executes events with timestamps <= limit. Events beyond the
// limit remain queued.
func (k *Kernel) RunUntil(limit Time) Time {
	for len(k.events) > 0 {
		e := k.events[0]
		if e.at > limit {
			break
		}
		heap.Pop(&k.events)
		if e.at > k.now {
			k.now = e.at
		}
		k.nEvents++
		if k.MaxEvents != 0 && k.nEvents > k.MaxEvents {
			panic(fmt.Sprintf("sim: event budget exceeded (%d events, now=%d)", k.nEvents, k.now))
		}
		e.fn()
	}
	return k.now
}

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool { return len(k.events) == 0 }
