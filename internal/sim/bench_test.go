package sim

import "testing"

// BenchmarkSchedule measures one push+pop cycle through the event queue at
// a steady-state depth of 256 pending events — the kernel's single hottest
// operation.
func BenchmarkSchedule(b *testing.B) {
	k := New()
	fn := func() {}
	for i := 0; i < 256; i++ {
		k.Schedule(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(256, fn)
		k.RunUntil(k.Now() + 1)
	}
}

// BenchmarkWaitLoop measures the full context-switch path: two Procs
// alternating via Wait(1), so every Wait goes through the scheduler (the
// other Proc always has a pending event).
func BenchmarkWaitLoop(b *testing.B) {
	b.ReportAllocs()
	k := New()
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(p *Proc) {
			for j := 0; j < b.N; j++ {
				p.Wait(1)
			}
		})
	}
	b.ResetTimer()
	k.Run()
}

// BenchmarkWaitLoopSolo measures Wait when the Proc is the only runnable
// entity — the common case during single-threaded simulation phases.
func BenchmarkWaitLoopSolo(b *testing.B) {
	b.ReportAllocs()
	k := New()
	k.Spawn("solo", func(p *Proc) {
		for j := 0; j < b.N; j++ {
			p.Wait(1)
		}
	})
	b.ResetTimer()
	k.Run()
}
