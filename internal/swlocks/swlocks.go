// Package swlocks implements the software lock baselines of Section IV
// executing on the simulated coherent memory system: TAS and TATAS
// single-line locks, the MCS queue lock, a fair reader-writer queue lock
// with a centralized reader counter (the MRSW baseline), a POSIX-style
// adaptive mutex, and the per-object reader-writer word used by the
// lock-based STM.
//
// Every operation goes through machine.Ctx loads, stores and atomics, so
// the coherence traffic — line bouncing for TAS, invalidate+refetch pairs
// on queue-lock handoffs, the reader-counter hotspot of MRSW — is charged
// by the timing model rather than asserted.
package swlocks

import (
	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
)

// RWLock is a lock usable in read or write mode. Mutex-only locks treat
// read mode as write mode.
type RWLock interface {
	Lock(c *machine.Ctx, write bool)
	Unlock(c *machine.Ctx, write bool)
	// Name identifies the implementation in benchmark output.
	Name() string
}

// backoff applies capped exponential backoff; n is per-call attempt state.
func backoff(c *machine.Ctx, n *int) {
	d := sim.Time(64) << uint(*n)
	if d > 4096 {
		d = 4096
	} else {
		*n++
	}
	// Small deterministic jitter decorrelates contenders.
	d += sim.Time(c.TID*13) % 64
	c.Compute(d)
}

// ---------------------------------------------------------------------------
// TAS: test-and-set. Every attempt is an RMW, bouncing the line in M state
// between contenders.

// TAS is a single-word test-and-set spinlock.
type TAS struct{ addr memmodel.Addr }

// NewTAS allocates a TAS lock.
func NewTAS(m *machine.Machine) *TAS { return &TAS{addr: m.Mem.AllocLine()} }

// Name implements RWLock.
func (l *TAS) Name() string { return "tas" }

// Lock acquires the lock (read mode is treated as write).
func (l *TAS) Lock(c *machine.Ctx, write bool) {
	n := 0
	for !c.CAS(l.addr, 0, 1) {
		backoff(c, &n)
	}
}

// Unlock releases the lock.
func (l *TAS) Unlock(c *machine.Ctx, write bool) { c.Store(l.addr, 0) }

// ---------------------------------------------------------------------------
// TATAS: test-and-test-and-set. Spin reading the cached line; attempt the
// RMW only when the lock is observed free.

// TATAS is a test-and-test-and-set spinlock with exponential backoff.
type TATAS struct{ addr memmodel.Addr }

// NewTATAS allocates a TATAS lock.
func NewTATAS(m *machine.Machine) *TATAS { return &TATAS{addr: m.Mem.AllocLine()} }

// Name implements RWLock.
func (l *TATAS) Name() string { return "tatas" }

// Lock acquires the lock (read mode is treated as write).
func (l *TATAS) Lock(c *machine.Ctx, write bool) {
	n := 0
	for {
		v := c.Load(l.addr)
		if v == 0 {
			if c.CAS(l.addr, 0, 1) {
				return
			}
			backoff(c, &n)
			continue
		}
		c.WaitChange(l.addr, v)
	}
}

// Unlock releases the lock.
func (l *TATAS) Unlock(c *machine.Ctx, write bool) { c.Store(l.addr, 0) }

// ---------------------------------------------------------------------------
// MCS queue lock: FIFO, local spinning on a per-thread node.

// MCS is the Mellor-Crummey–Scott queue spinlock.
type MCS struct {
	m    *machine.Machine
	tail memmodel.Addr
	node map[uint64]memmodel.Addr // per-thread qnode: +0 locked, +8 next
}

// NewMCS allocates an MCS lock.
func NewMCS(m *machine.Machine) *MCS {
	return &MCS{m: m, tail: m.Mem.AllocLine(), node: make(map[uint64]memmodel.Addr)}
}

// Name implements RWLock.
func (l *MCS) Name() string { return "mcs" }

func (l *MCS) qnode(tid uint64) memmodel.Addr {
	n, ok := l.node[tid]
	if !ok {
		n = l.m.Mem.AllocLine()
		l.node[tid] = n
	}
	return n
}

// Lock acquires the lock (read mode is treated as write).
func (l *MCS) Lock(c *machine.Ctx, write bool) {
	n := l.qnode(c.TID)
	c.Store(n, 1)   // locked = true
	c.Store(n+8, 0) // next = nil
	pred := c.Swap(l.tail, n)
	if pred == 0 {
		return
	}
	c.Store(pred+8, n)
	for {
		v := c.Load(n)
		if v == 0 {
			return
		}
		c.WaitChange(n, v)
	}
}

// Unlock releases the lock, handing it to the queue successor if any.
func (l *MCS) Unlock(c *machine.Ctx, write bool) {
	n := l.qnode(c.TID)
	next := c.Load(n + 8)
	if next == 0 {
		if c.CAS(l.tail, n, 0) {
			return
		}
		// A successor is linking itself in; wait for the pointer.
		for {
			next = c.Load(n + 8)
			if next != 0 {
				break
			}
			c.WaitChange(n+8, 0)
		}
	}
	c.Store(next, 0) // unblock successor
}

// ---------------------------------------------------------------------------
// MRSW: fair reader-writer queue lock with a centralized reader counter,
// the performance stand-in for the Mellor-Crummey–Scott reader-writer
// queue lock of PPoPP'91 — same FIFO fairness, same two-atomic-ops-per-
// reader counter hotspot the paper measures (Section IV-A).

// MRSW is a ticket-based fair reader-writer lock.
type MRSW struct {
	ticket  memmodel.Addr // next ticket to hand out
	serve   memmodel.Addr // ticket currently being admitted
	readers memmodel.Addr // readers inside the critical section
}

// NewMRSW allocates an MRSW lock (each word on its own line).
func NewMRSW(m *machine.Machine) *MRSW {
	return &MRSW{ticket: m.Mem.AllocLine(), serve: m.Mem.AllocLine(), readers: m.Mem.AllocLine()}
}

// Name implements RWLock.
func (l *MRSW) Name() string { return "mrsw" }

// Lock acquires in the requested mode, in strict ticket (FIFO) order.
func (l *MRSW) Lock(c *machine.Ctx, write bool) {
	t := c.FetchAdd(l.ticket, 1)
	for {
		v := c.Load(l.serve)
		if v == t {
			break
		}
		c.WaitChange(l.serve, v)
	}
	if write {
		// Wait for in-flight readers to drain, holding the turn.
		for {
			r := c.Load(l.readers)
			if r == 0 {
				break
			}
			c.WaitChange(l.readers, r)
		}
		return
	}
	// Reader: join, then immediately admit the next ticket so consecutive
	// readers overlap.
	c.FetchAdd(l.readers, 1)
	c.Store(l.serve, t+1)
}

// Unlock releases the lock.
func (l *MRSW) Unlock(c *machine.Ctx, write bool) {
	if write {
		t := c.Load(l.serve)
		c.Store(l.serve, t+1)
		return
	}
	c.FetchAdd(l.readers, ^uint64(0)) // -1
}

// ---------------------------------------------------------------------------
// Posix: a Solaris-style adaptive mutex — spin briefly, then yield the
// processor between attempts. Used as the Figure 13 software baseline.

// Posix approximates the default POSIX mutex of the paper's Solaris host:
// adaptive — spin while the owner is on-CPU (here: test-and-test-and-set
// with event-driven local spinning), parking only after sustained failure.
type Posix struct {
	addr  memmodel.Addr
	spins int
}

// NewPosix allocates an adaptive mutex.
func NewPosix(m *machine.Machine) *Posix {
	return &Posix{addr: m.Mem.AllocLine(), spins: 30}
}

// Name implements RWLock.
func (l *Posix) Name() string { return "posix" }

// Lock acquires the mutex (read mode is treated as write).
func (l *Posix) Lock(c *machine.Ctx, write bool) {
	n := 0
	for i := 0; ; i++ {
		v := c.Load(l.addr)
		if v == 0 {
			if c.CAS(l.addr, 0, 1) {
				return
			}
			backoff(c, &n)
			continue
		}
		if i < l.spins {
			c.WaitChange(l.addr, v)
			continue
		}
		// Sustained contention: park (yield the processor) and retry.
		c.Yield()
		c.Compute(500)
		i = 0
	}
}

// Unlock releases the mutex.
func (l *Posix) Unlock(c *machine.Ctx, write bool) { c.Store(l.addr, 0) }

// ---------------------------------------------------------------------------
// HWLock adapts the machine's hardware lock device (LCU or SSB) to the
// RWLock interface so benchmarks treat all implementations uniformly.

// HWLock drives the machine's installed LockDevice.
type HWLock struct {
	addr memmodel.Addr
	name string
}

// NewHWLock allocates a hardware-locked address.
func NewHWLock(m *machine.Machine, name string) *HWLock {
	return &HWLock{addr: m.Mem.AllocLine(), name: name}
}

// Name implements RWLock.
func (l *HWLock) Name() string { return l.name }

// Lock acquires through the hardware device.
func (l *HWLock) Lock(c *machine.Ctx, write bool) { c.HwLock(l.addr, write) }

// Unlock releases through the hardware device.
func (l *HWLock) Unlock(c *machine.Ctx, write bool) { c.HwUnlock(l.addr, write) }

// ---------------------------------------------------------------------------
// Traced: observability wrapper for software locks. Hardware locks (HWLock)
// are already traced at the machine layer by Ctx.HwLock/HwUnlock; wrapping
// a software lock in Traced gives it the same acquire/release spans and
// acquire-latency samples in the machine's capture.

// Traced decorates an RWLock with observability records.
type Traced struct {
	L RWLock
	// ID identifies this lock instance in trace records (software locks
	// have no architectural lock address).
	ID uint64
}

// Trace wraps l so its acquisitions are recorded under the given lock id.
func Trace(l RWLock, id uint64) *Traced { return &Traced{L: l, ID: id} }

// Name implements RWLock.
func (t *Traced) Name() string { return t.L.Name() }

// Lock acquires the wrapped lock, recording the wait and the acquisition.
func (t *Traced) Lock(c *machine.Ctx, write bool) {
	t0 := c.P.Now()
	t.L.Lock(c, write)
	if o := c.M.Obs; o != nil {
		now := c.P.Now()
		o.LockAcquired(uint64(now), c.Core(), c.TID, t.ID, uint64(now-t0), write)
	}
}

// Unlock releases the wrapped lock, recording the release.
func (t *Traced) Unlock(c *machine.Ctx, write bool) {
	t.L.Unlock(c, write)
	if o := c.M.Obs; o != nil {
		o.Unlocked(uint64(c.P.Now()), c.Core(), c.TID, t.ID)
	}
}
