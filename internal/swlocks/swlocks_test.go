package swlocks

import (
	"testing"

	"fairrw/internal/machine"
	"fairrw/internal/sim"
)

// exclusionRun hammers a lock with nThreads writers and checks mutual
// exclusion plus termination. It returns total cycles.
func exclusionRun(t *testing.T, mk func(m *machine.Machine) RWLock, nThreads int) sim.Time {
	t.Helper()
	m := machine.ModelA()
	l := mk(m)
	inside := 0
	done := 0
	for i := 0; i < nThreads; i++ {
		m.Spawn("t", uint64(i+1), i%m.P.Cores, func(c *machine.Ctx) {
			for j := 0; j < 15; j++ {
				l.Lock(c, true)
				inside++
				if inside != 1 {
					t.Errorf("%s: %d threads inside", l.Name(), inside)
				}
				c.Compute(50)
				inside--
				l.Unlock(c, true)
				c.Compute(25)
			}
			done++
		})
	}
	m.Run()
	if done != nThreads {
		t.Fatalf("%s: done=%d want %d", l.Name(), done, nThreads)
	}
	return m.K.Now()
}

func TestTASExclusion(t *testing.T) {
	exclusionRun(t, func(m *machine.Machine) RWLock { return NewTAS(m) }, 8)
}

func TestTATASExclusion(t *testing.T) {
	exclusionRun(t, func(m *machine.Machine) RWLock { return NewTATAS(m) }, 8)
}

func TestMCSExclusion(t *testing.T) {
	exclusionRun(t, func(m *machine.Machine) RWLock { return NewMCS(m) }, 8)
}

func TestMRSWExclusion(t *testing.T) {
	exclusionRun(t, func(m *machine.Machine) RWLock { return NewMRSW(m) }, 8)
}

func TestPosixExclusion(t *testing.T) {
	exclusionRun(t, func(m *machine.Machine) RWLock { return NewPosix(m) }, 8)
}

func TestMRSWReadersShare(t *testing.T) {
	m := machine.ModelA()
	l := NewMRSW(m)
	readers, maxR := 0, 0
	bar := m.NewBarrier(5)
	for i := 0; i < 5; i++ {
		m.Spawn("r", uint64(i+1), i, func(c *machine.Ctx) {
			l.Lock(c, false)
			readers++
			if readers > maxR {
				maxR = readers
			}
			bar.Arrive(c)
			readers--
			l.Unlock(c, false)
		})
	}
	m.Run()
	if maxR != 5 {
		t.Fatalf("max concurrent MRSW readers = %d, want 5", maxR)
	}
}

func TestMRSWFIFOFairness(t *testing.T) {
	// A writer arriving during a reader burst must be admitted before
	// readers that arrive after it.
	m := machine.ModelA()
	l := NewMRSW(m)
	var order []string
	m.Spawn("r1", 1, 0, func(c *machine.Ctx) {
		l.Lock(c, false)
		c.Compute(5_000)
		l.Unlock(c, false)
	})
	m.Spawn("w", 2, 1, func(c *machine.Ctx) {
		c.Compute(500)
		l.Lock(c, true)
		order = append(order, "w")
		l.Unlock(c, true)
	})
	m.Spawn("r2", 3, 2, func(c *machine.Ctx) {
		c.Compute(1_500) // requests after the writer
		l.Lock(c, false)
		order = append(order, "r2")
		l.Unlock(c, false)
	})
	m.Run()
	if len(order) != 2 || order[0] != "w" {
		t.Fatalf("order = %v; writer should precede the late reader", order)
	}
}

func TestMRSWWriterExcludesReaders(t *testing.T) {
	m := machine.ModelA()
	l := NewMRSW(m)
	writerIn := false
	violations := 0
	m.Spawn("w", 1, 0, func(c *machine.Ctx) {
		l.Lock(c, true)
		writerIn = true
		c.Compute(3_000)
		writerIn = false
		l.Unlock(c, true)
	})
	for i := 0; i < 4; i++ {
		m.Spawn("r", uint64(i+2), i+1, func(c *machine.Ctx) {
			c.Compute(200)
			l.Lock(c, false)
			if writerIn {
				violations++
			}
			c.Compute(100)
			l.Unlock(c, false)
		})
	}
	m.Run()
	if violations != 0 {
		t.Fatalf("%d readers overlapped a writer", violations)
	}
}

func TestMCSFIFO(t *testing.T) {
	// MCS must grant in arrival order.
	m := machine.ModelA()
	l := NewMCS(m)
	var order []int
	for i := 0; i < 6; i++ {
		id := i
		delay := sim.Time(1000 * (i + 1))
		m.Spawn("t", uint64(i+1), i, func(c *machine.Ctx) {
			c.Compute(delay)
			l.Lock(c, true)
			order = append(order, id)
			c.Compute(10_000) // hold long so all later arrivals queue
			l.Unlock(c, true)
		})
	}
	m.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestTASGeneratesMoreCoherenceTrafficThanMCS(t *testing.T) {
	traffic := func(mk func(m *machine.Machine) RWLock) uint64 {
		m := machine.ModelA()
		l := mk(m)
		for i := 0; i < 8; i++ {
			m.Spawn("t", uint64(i+1), i, func(c *machine.Ctx) {
				for j := 0; j < 10; j++ {
					l.Lock(c, true)
					c.Compute(100)
					l.Unlock(c, true)
				}
			})
		}
		m.Run()
		return m.Sys.Stats.RMWs
	}
	tas := traffic(func(m *machine.Machine) RWLock { return NewTAS(m) })
	mcs := traffic(func(m *machine.Machine) RWLock { return NewMCS(m) })
	if tas <= mcs {
		t.Fatalf("TAS RMWs (%d) should exceed MCS RMWs (%d)", tas, mcs)
	}
}

func TestRWWord(t *testing.T) {
	m := machine.ModelA()
	w := NewRWWord(m)
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		if !w.TryRead(c) {
			t.Error("TryRead on free word failed")
		}
		if !w.TryRead(c) {
			t.Error("second TryRead failed")
		}
		if w.TryWrite(c) {
			t.Error("TryWrite succeeded with readers inside")
		}
		w.UnlockRead(c)
		w.UnlockRead(c)
		if !w.TryWrite(c) {
			t.Error("TryWrite on free word failed")
		}
		if w.TryRead(c) {
			t.Error("TryRead succeeded under a writer")
		}
		w.UnlockWrite(c)
		if !w.TryRead(c) {
			t.Error("TryRead after write unlock failed")
		}
		w.UnlockRead(c)
	})
	m.Run()
}

func TestOversubscribedQueueLockAnomaly(t *testing.T) {
	// With more threads than cores, a preempted MCS queue node stalls
	// everyone behind it; TATAS does not have that failure mode. This is
	// the Figure 10 anomaly.
	run := func(mk func(m *machine.Machine) RWLock, threads int) sim.Time {
		m := machine.ModelA()
		l := mk(m)
		var wg sim.WaitGroup
		wg.Add(threads)
		for i := 0; i < threads; i++ {
			m.Spawn("t", uint64(i+1), i%m.P.Cores, func(c *machine.Ctx) {
				for j := 0; j < 10; j++ {
					l.Lock(c, true)
					c.Compute(100)
					l.Unlock(c, true)
				}
				wg.Done()
			})
		}
		m.Run()
		return m.K.Now()
	}
	mcs40 := run(func(m *machine.Machine) RWLock { return NewMCS(m) }, 40)
	mcs16 := run(func(m *machine.Machine) RWLock { return NewMCS(m) }, 16)
	// Oversubscription should cost far more than 40/16 x.
	if mcs40 < mcs16*4 {
		t.Fatalf("MCS oversubscription anomaly absent: 40t=%d vs 16t=%d", mcs40, mcs16)
	}
}

func TestCLHExclusion(t *testing.T) {
	exclusionRun(t, func(m *machine.Machine) RWLock { return NewCLH(m) }, 8)
}

func TestCLHFIFO(t *testing.T) {
	m := machine.ModelA()
	l := NewCLH(m)
	var order []int
	for i := 0; i < 5; i++ {
		id := i
		delay := sim.Time(1000 * (i + 1))
		m.Spawn("t", uint64(i+1), i, func(c *machine.Ctx) {
			c.Compute(delay)
			l.Lock(c, true)
			order = append(order, id)
			c.Compute(10_000)
			l.Unlock(c, true)
		})
	}
	m.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("CLH order = %v, want FIFO", order)
		}
	}
}

func TestCLHReacquire(t *testing.T) {
	// Node recycling across repeated acquire/release must stay sound.
	m := machine.ModelA()
	l := NewCLH(m)
	count := 0
	for i := 0; i < 2; i++ {
		m.Spawn("t", uint64(i+1), i, func(c *machine.Ctx) {
			for j := 0; j < 30; j++ {
				l.Lock(c, true)
				count++
				c.Compute(40)
				l.Unlock(c, true)
			}
		})
	}
	m.Run()
	if count != 60 {
		t.Fatalf("count = %d, want 60", count)
	}
}
