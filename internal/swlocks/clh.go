package swlocks

import (
	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
)

// CLH is the Craig/Landin-Hagersten queue spinlock: like MCS it is FIFO
// with local spinning, but each waiter spins on its *predecessor's* node
// rather than its own, so no explicit next pointer is needed. Included as
// an additional software baseline (surveyed in the paper's Section II).
type CLH struct {
	m    *machine.Machine
	tail memmodel.Addr
	// node state per thread: the node currently owned and the one being
	// spun on (CLH recycles the predecessor's node on release).
	mine map[uint64]memmodel.Addr
	pred map[uint64]memmodel.Addr
}

// NewCLH allocates a CLH lock with an initially-released sentinel node.
func NewCLH(m *machine.Machine) *CLH {
	l := &CLH{
		m:    m,
		tail: m.Mem.AllocLine(),
		mine: make(map[uint64]memmodel.Addr),
		pred: make(map[uint64]memmodel.Addr),
	}
	sentinel := m.Mem.AllocLine() // released: word == 0
	m.Mem.Write(l.tail, sentinel)
	return l
}

// Name implements RWLock.
func (l *CLH) Name() string { return "clh" }

func (l *CLH) node(tid uint64) memmodel.Addr {
	n, ok := l.mine[tid]
	if !ok {
		n = l.m.Mem.AllocLine()
		l.mine[tid] = n
	}
	return n
}

// Lock acquires the lock (read mode is treated as write).
func (l *CLH) Lock(c *machine.Ctx, write bool) {
	n := l.node(c.TID)
	c.Store(n, 1) // pending
	pred := c.Swap(l.tail, n)
	l.pred[c.TID] = pred
	for {
		v := c.Load(pred)
		if v == 0 {
			return
		}
		c.WaitChange(pred, v)
	}
}

// Unlock releases the lock; the thread adopts its predecessor's node.
func (l *CLH) Unlock(c *machine.Ctx, write bool) {
	n := l.mine[c.TID]
	c.Store(n, 0)                 // grant the successor
	l.mine[c.TID] = l.pred[c.TID] // recycle
}
