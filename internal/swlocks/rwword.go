package swlocks

import (
	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
)

// RWWord is the single-word reader-writer trylock used per-object by the
// lock-based STM (sw-only engine), in the style of TL2/TLRW: the word
// holds a writer bit plus a reader count, both updated with CAS. Reader
// acquisition therefore costs an atomic RMW on a shared line — the visible-
// reader congestion the paper's Section IV-B measures at hot objects.
type RWWord struct {
	Addr memmodel.Addr
}

const rwWriterBit = uint64(1) << 63

// NewRWWord allocates an RW word on its own line.
func NewRWWord(m *machine.Machine) *RWWord { return &RWWord{Addr: m.Mem.AllocLine()} }

// AtAddr wraps an existing word address (e.g. an STM object header).
func AtAddr(a memmodel.Addr) *RWWord { return &RWWord{Addr: a} }

// TryRead attempts to take a read share; it fails if a writer holds.
func (w *RWWord) TryRead(c *machine.Ctx) bool {
	v := c.Load(w.Addr)
	if v&rwWriterBit != 0 {
		return false
	}
	return c.CAS(w.Addr, v, v+1)
}

// TryWrite attempts exclusive ownership; it fails if anyone holds.
func (w *RWWord) TryWrite(c *machine.Ctx) bool {
	return c.CAS(w.Addr, 0, rwWriterBit)
}

// UnlockRead drops a read share.
func (w *RWWord) UnlockRead(c *machine.Ctx) {
	c.FetchAdd(w.Addr, ^uint64(0)) // -1
}

// UnlockWrite drops exclusive ownership.
func (w *RWWord) UnlockWrite(c *machine.Ctx) {
	c.Store(w.Addr, 0)
}

// Held reports the raw lock word (tests only; costs a load).
func (w *RWWord) Held(c *machine.Ctx) uint64 { return c.Load(w.Addr) }
