package ssb

import (
	"testing"

	"fairrw/internal/machine"
	"fairrw/internal/sim"
)

func TestMutualExclusion(t *testing.T) {
	m := machine.ModelA()
	d := New(m, Options{})
	lock := m.Mem.AllocLine()
	inside := 0
	done := 0
	for i := 0; i < 8; i++ {
		m.Spawn("t", uint64(i+1), i, func(c *machine.Ctx) {
			for j := 0; j < 20; j++ {
				c.HwLock(lock, true)
				inside++
				if inside > 1 {
					t.Errorf("two writers inside")
				}
				c.Compute(50)
				inside--
				c.HwUnlock(lock, true)
			}
			done++
		})
	}
	m.Run()
	if done != 8 {
		t.Fatalf("done = %d, want 8", done)
	}
	if d.Stats.Nacks == 0 {
		t.Fatal("contended run should produce NACKs")
	}
}

func TestReadersShare(t *testing.T) {
	m := machine.ModelA()
	New(m, Options{})
	lock := m.Mem.AllocLine()
	readers, maxReaders := 0, 0
	bar := m.NewBarrier(5)
	for i := 0; i < 5; i++ {
		m.Spawn("r", uint64(i+1), i, func(c *machine.Ctx) {
			c.HwLock(lock, false)
			readers++
			if readers > maxReaders {
				maxReaders = readers
			}
			bar.Arrive(c)
			readers--
			c.HwUnlock(lock, false)
		})
	}
	m.Run()
	if maxReaders != 5 {
		t.Fatalf("max concurrent readers = %d, want 5", maxReaders)
	}
}

func TestWriterCanStarveUnderReaderChurn(t *testing.T) {
	// The SSB's reader preference admits arriving readers even while a
	// writer retries: with enough reader churn the writer waits far longer
	// than under the fair LCU. This documents the unfairness the paper
	// contrasts against.
	m := machine.ModelA()
	New(m, Options{})
	lock := m.Mem.AllocLine()
	var writerGot sim.Time
	stop := false
	for i := 0; i < 8; i++ {
		stagger := sim.Time(i * 83) // desynchronize so readers always overlap
		m.Spawn("r", uint64(i+1), i, func(c *machine.Ctx) {
			c.Compute(stagger)
			for !stop {
				c.HwLock(lock, false)
				c.Compute(600)
				c.HwUnlock(lock, false)
				c.Compute(5)
			}
		})
	}
	m.Spawn("w", 100, 9, func(c *machine.Ctx) {
		c.Compute(1_000)
		c.HwLock(lock, true)
		writerGot = c.P.Now()
		c.HwUnlock(lock, true)
		stop = true
	})
	m.K.RunUntil(8_000_000)
	stop = true
	m.Run()
	// Uncontended write acquisition takes one round trip (~130 cycles).
	// Under reader churn with reader preference the writer must wait orders
	// of magnitude longer, or starve outright within the horizon.
	if writerGot != 0 && writerGot < 20_000 {
		t.Fatalf("writer got in after only %d cycles — reader preference should delay it far more", writerGot-1_000)
	}
}

func TestRetriesCostMessages(t *testing.T) {
	m := machine.ModelB()
	d := New(m, Options{})
	lock := m.Mem.AllocLine()
	base := m.Net.Sent
	m.Spawn("holder", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		c.Compute(20_000)
		c.HwUnlock(lock, true)
	})
	m.Spawn("contender", 2, 8, func(c *machine.Ctx) { // other chip
		c.Compute(500)
		c.HwLock(lock, true)
		c.HwUnlock(lock, true)
	})
	m.Run()
	msgs := m.Net.Sent - base
	// The contender retried for ~20k cycles at ~200-cycle backoff with 2
	// messages per attempt: expect substantial traffic.
	if msgs < 60 {
		t.Fatalf("messages = %d; remote retries should generate heavy traffic", msgs)
	}
	if d.Stats.Nacks < 20 {
		t.Fatalf("nacks = %d; expected sustained retrying", d.Stats.Nacks)
	}
}

func TestTableCapacityNACKs(t *testing.T) {
	m := machine.ModelA()
	d := New(m, Options{EntriesPerBank: 1})
	// Two locks homed at the same controller: holding one blocks table
	// allocation for the other.
	var a, b uint64
	for {
		x := m.Mem.AllocLine()
		if m.Mem.HomeOf(x) == 0 {
			if a == 0 {
				a = x
			} else {
				b = x
				break
			}
		}
	}
	full := false
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		c.HwLock(a, true)
		full = !c.Acq(b, true) // table full: must NACK
		c.HwUnlock(a, true)
		c.HwLock(b, true) // then succeeds
		c.HwUnlock(b, true)
	})
	m.Run()
	if !full {
		t.Fatal("expected NACK when the bank table is full")
	}
	if d.Stats.TableFull == 0 {
		t.Fatal("TableFull stat not incremented")
	}
}
