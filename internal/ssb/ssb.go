// Package ssb implements the Synchronization State Buffer baseline (Zhu et
// al., ISCA'07) as characterized in the paper's Sections II and IV-A: a
// dedicated lock table at each home memory controller supporting fine-grain
// reader-writer locks. All operations are remote (request/reply round
// trips), there is no requestor queue — contenders poll remotely with
// backoff — and readers are preferred, so writers can starve and the retry
// traffic saturates scarce inter-chip links (Figure 9b).
package ssb

import (
	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
	"fairrw/internal/obs"
	"fairrw/internal/sim"
	"fairrw/internal/topo"
)

// Options tunes the SSB baseline.
type Options struct {
	// EntriesPerBank bounds each home controller's table (0 = 512).
	EntriesPerBank int
	// Backoff is the remote retry interval after a NACK (0 = 100 cycles).
	Backoff sim.Time
	// BankLat is the SSB lookup latency at the controller (0 = 6 cycles).
	BankLat sim.Time
}

// Stats counts SSB protocol events.
type Stats struct {
	Requests  uint64
	Grants    uint64
	Nacks     uint64
	Releases  uint64
	TableFull uint64
}

type bankEntry struct {
	writeHeld bool
	ownerTid  uint64
	readers   int
}

type bank struct {
	entries map[memmodel.Addr]*bankEntry
	cap     int
}

// Device is the SSB lock unit; it implements machine.LockDevice.
type Device struct {
	M     *machine.Machine
	Opt   Options
	banks []*bank

	attempt map[uint64]uint64 // per-thread retry counter for jitter

	Stats Stats
}

// New builds the SSB device for m and installs it as the lock device.
func New(m *machine.Machine, opt Options) *Device {
	if opt.EntriesPerBank == 0 {
		opt.EntriesPerBank = 512
	}
	if opt.Backoff == 0 {
		opt.Backoff = 100
	}
	if opt.BankLat == 0 {
		opt.BankLat = 6
	}
	d := &Device{M: m, Opt: opt, attempt: make(map[uint64]uint64)}
	d.banks = make([]*bank, m.P.NumMem)
	for i := range d.banks {
		d.banks[i] = &bank{entries: make(map[memmodel.Addr]*bankEntry), cap: opt.EntriesPerBank}
	}
	m.Lock = d
	return d
}

// roundTrip performs a remote operation at addr's home bank: the request
// travels to the controller, op runs there, and the reply returns. The
// calling proc blocks for the full latency.
func (d *Device) roundTrip(p *sim.Proc, core int, addr memmodel.Addr, op func(b *bank) bool) bool {
	home := d.M.Mem.HomeOf(addr)
	src, dst := topo.Core(core), topo.Mem(home)
	ok := false
	done := false
	d.M.Net.Send(src, dst, func() {
		d.M.K.Schedule(d.Opt.BankLat, func() {
			ok = op(d.banks[home])
			// Reply message.
			d.M.Net.Send(dst, src, func() {
				done = true
				if p.Blocked() {
					p.Wake(0)
				}
			})
		})
	})
	for !done {
		p.Block()
	}
	return ok
}

// rec records one protocol event when the machine has tracing attached.
func (d *Device) rec(node int32, k obs.Kind, addr memmodel.Addr, tid, aux uint64) {
	if o := d.M.Obs; o != nil {
		o.Rec(uint64(d.M.K.Now()), node, k, uint64(addr), tid, aux)
	}
}

// Acq requests the lock: one full remote round trip per attempt.
func (d *Device) Acq(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, write bool) bool {
	d.Stats.Requests++
	var w uint64
	if write {
		w = 1
	}
	d.rec(obs.CoreNode(core), obs.KReq, addr, tid, w)
	home := int(d.M.Mem.HomeOf(addr))
	granted := d.roundTrip(p, core, addr, func(b *bank) bool {
		d.rec(obs.LRTNode(home), obs.KLRTReq, addr, tid, w)
		e := b.entries[addr]
		if e == nil {
			if len(b.entries) >= b.cap {
				d.Stats.TableFull++
				return false
			}
			e = &bankEntry{}
			b.entries[addr] = e
		}
		if write {
			if e.writeHeld || e.readers > 0 {
				return false
			}
			e.writeHeld = true
			e.ownerTid = tid
			return true
		}
		// Reader preference: join whenever no writer holds (even if writers
		// are retrying — the SSB keeps no queue to know about them).
		if e.writeHeld {
			return false
		}
		e.readers++
		return true
	})
	if granted {
		d.Stats.Grants++
		d.rec(obs.CoreNode(core), obs.KGrant, addr, tid, w)
		if o := d.M.Obs; o != nil {
			now := uint64(d.M.K.Now())
			o.TransferEnd(now, uint64(addr))
			o.WaitEnd(now, tid)
		}
	} else {
		d.Stats.Nacks++
		d.rec(obs.CoreNode(core), obs.KNack, addr, tid, w)
		if o := d.M.Obs; o != nil {
			o.WaitStart(uint64(d.M.K.Now()), tid)
		}
	}
	return granted
}

// Rel releases the lock. The release message is fire-and-forget: the
// thread does not wait for an acknowledgement (the SSB needs none), so
// only the one-way latency sits on the hand-off critical path.
func (d *Device) Rel(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, write bool) bool {
	d.Stats.Releases++
	home := d.M.Mem.HomeOf(addr)
	var w uint64
	if write {
		w = 1
	}
	d.rec(obs.CoreNode(core), obs.KRel, addr, tid, w)
	if o := d.M.Obs; o != nil {
		o.TransferStart(uint64(d.M.K.Now()), uint64(addr))
	}
	d.M.Net.Send(topo.Core(core), topo.Mem(home), func() {
		d.M.K.Schedule(d.Opt.BankLat, func() {
			d.rec(obs.LRTNode(int(home)), obs.KLRTRel, addr, tid, w)
			b := d.banks[home]
			e := b.entries[addr]
			if e == nil {
				return // idempotent
			}
			if write {
				e.writeHeld = false
			} else if e.readers > 0 {
				e.readers--
			}
			if !e.writeHeld && e.readers == 0 {
				delete(b.entries, addr)
			}
		})
	})
	p.Wait(d.M.P.LCULat) // local issue cost
	return true
}

// WaitEvent is the NACK backoff: the SSB keeps no local state to spin on,
// so contenders simply wait and re-poll remotely. A deterministic
// per-thread, per-attempt jitter decorrelates the pollers; without it the
// deterministic simulator phase-locks them and one contender can lose
// every round indefinitely, which real-system timing noise prevents.
func (d *Device) WaitEvent(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, timeout sim.Time) {
	b := d.Opt.Backoff
	if timeout != 0 && timeout < b {
		b = timeout
	}
	d.attempt[tid]++
	h := (tid*2654435761 + d.attempt[tid]*40503) % uint64(b)
	p.Wait(b/2 + sim.Time(h))
}
