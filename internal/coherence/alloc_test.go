package coherence

import (
	"testing"

	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
	"fairrw/internal/topo"
)

// tinySystem builds a system whose 2-set 1-way L1 and L2 make conflict
// misses trivial to provoke: alternating two same-set lines misses both
// levels every time, driving the full directory + network path.
func tinySystem(cores int) (*sim.Kernel, *System, *memmodel.Memory) {
	k := sim.New()
	net := topo.NewModelA(k, topo.DefaultModelA())
	mem := memmodel.New(4)
	sys := New(k, net, mem, Params{
		Cores: cores, CoresPerChip: 1,
		L1Lat: 3, L2Lat: 10, DRAMLat: 63, CtrlLat: 6, OpLat: 1,
		L1Sets: 2, L1Ways: 1, L2Sets: 2, L2Ways: 1,
	})
	return k, sys, mem
}

// TestHotPathNoAllocs asserts the steady-state coherence fast paths —
// L1-hit read/write, conflict-miss read, and ownership-transfer write —
// allocate nothing once directory pages and cache arrays are warm.
func TestHotPathNoAllocs(t *testing.T) {
	k, sys, mem := tinySystem(4)
	hit := mem.AllocLine()
	// Two lines in the same L1 set: reading them alternately misses forever.
	var missA, missB memmodel.Addr
	lines := []memmodel.Addr{mem.AllocLine(), mem.AllocLine(), mem.AllocLine(), mem.AllocLine()}
	missA, missB = lines[0], lines[2]
	ping := mem.AllocLine()

	k.Spawn("t", func(p *sim.Proc) {
		// Warm up: materialize directory pages and touch every path once.
		sys.Read(p, 0, hit)
		sys.Read(p, 0, missA)
		sys.Read(p, 0, missB)
		sys.Write(p, 0, ping, 1)
		sys.Write(p, 1, ping, 2)

		check := func(name string, f func()) {
			if avg := testing.AllocsPerRun(100, f); avg != 0 {
				t.Errorf("%s allocates %.1f/op, want 0", name, avg)
			}
		}
		check("L1-hit Read", func() { sys.Read(p, 0, hit) })
		check("L1-hit Write", func() { sys.Write(p, 0, hit, 7) })
		check("conflict-miss Read", func() {
			sys.Read(p, 0, missA)
			sys.Read(p, 0, missB)
		})
		check("ownership-transfer Write", func() {
			sys.Write(p, 0, ping, 1)
			sys.Write(p, 1, ping, 2)
		})
	})
	k.Run()
}

// BenchmarkCoherentRead measures the read miss path end to end: directory
// lookup, route-table traversal with link occupancy, and L1 install with
// eviction. The two addresses conflict in the 1-way L1, so every read is a
// capacity miss.
func BenchmarkCoherentRead(b *testing.B) {
	k, sys, mem := tinySystem(1)
	lines := []memmodel.Addr{mem.AllocLine(), mem.AllocLine(), mem.AllocLine(), mem.AllocLine()}
	a, c := lines[0], lines[2]
	b.ReportAllocs()
	k.Spawn("bench", func(p *sim.Proc) {
		sys.Read(p, 0, a)
		sys.Read(p, 0, c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Read(p, 0, a)
			sys.Read(p, 0, c)
		}
	})
	k.Run()
}
