package coherence

import (
	"testing"

	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
	"fairrw/internal/topo"
)

// testSystem builds a small Model-A-like system for unit tests.
func testSystem(cores int) (*sim.Kernel, *System, *memmodel.Memory) {
	k := sim.New()
	cfg := topo.DefaultModelA()
	cfg.Chips = cores
	net := topo.NewModelA(k, cfg)
	mem := memmodel.New(cores)
	sys := New(k, net, mem, Params{
		Cores: cores, CoresPerChip: 1,
		L1Lat: 3, L2Lat: 10, DRAMLat: 63, CtrlLat: 6, OpLat: 1,
		L1Sets: 256, L1Ways: 4, L2Sets: 1024, L2Ways: 8,
	})
	return k, sys, mem
}

// runProc executes body as a single simulated thread and returns the cycles
// it consumed.
func runProc(k *sim.Kernel, body func(p *sim.Proc)) sim.Time {
	var took sim.Time
	k.Spawn("t", func(p *sim.Proc) {
		start := p.Now()
		body(p)
		took = p.Now() - start
	})
	k.Run()
	return took
}

func TestReadMissThenHit(t *testing.T) {
	k, sys, mem := testSystem(4)
	addr := mem.AllocLine()
	mem.Write(addr, 99)
	var missLat, hitLat sim.Time
	runProc(k, func(p *sim.Proc) {
		t0 := p.Now()
		if v := sys.Read(p, 0, addr); v != 99 {
			t.Errorf("read = %d, want 99", v)
		}
		missLat = p.Now() - t0
		t0 = p.Now()
		sys.Read(p, 0, addr)
		hitLat = p.Now() - t0
	})
	if hitLat != 3 {
		t.Fatalf("hit latency = %d, want L1Lat=3", hitLat)
	}
	if missLat < 100 {
		t.Fatalf("miss latency = %d, suspiciously low (network+DRAM expected)", missLat)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	k, sys, mem := testSystem(4)
	addr := mem.AllocLine()
	done := make(chan struct{}) // compile-time unused guard
	_ = done

	// Two readers cache the line, then core 2 writes: both readers must
	// miss on their next read.
	runProc(k, func(p *sim.Proc) {
		sys.Read(p, 0, addr)
		sys.Read(p, 1, addr)
		h0, m0 := sys.L1Stats(0)
		sys.Write(p, 2, addr, 7)
		sys.Read(p, 0, addr) // should miss now
		h1, m1 := sys.L1Stats(0)
		if m1 != m0+1 {
			t.Errorf("reader L1 misses %d -> %d, want one new miss after invalidation", m0, m1)
		}
		if h1 != h0 {
			t.Errorf("unexpected L1 hit after invalidation")
		}
		if v := sys.Read(p, 1, addr); v != 7 {
			t.Errorf("stale value %d after invalidation", v)
		}
	})
}

func TestDirtyForwarding(t *testing.T) {
	k, sys, mem := testSystem(4)
	addr := mem.AllocLine()
	runProc(k, func(p *sim.Proc) {
		sys.Write(p, 0, addr, 5) // core 0 owns dirty
		f0 := sys.Stats.Forwards
		if v := sys.Read(p, 1, addr); v != 5 {
			t.Errorf("read after remote write = %d, want 5", v)
		}
		if sys.Stats.Forwards != f0+1 {
			t.Errorf("expected a cache-to-cache forward, got %d -> %d", f0, sys.Stats.Forwards)
		}
		// Both now share; the old owner still hits.
		h0, _ := sys.L1Stats(0)
		sys.Read(p, 0, addr)
		h1, _ := sys.L1Stats(0)
		if h1 != h0+1 {
			t.Errorf("previous owner should retain a shared copy")
		}
	})
}

func TestInvalidationFanoutCost(t *testing.T) {
	k, sys, mem := testSystem(16)
	few := mem.AllocLine()
	many := mem.AllocLine()
	runProc(k, func(p *sim.Proc) {
		sys.Read(p, 1, few)
		for c := 1; c < 16; c++ {
			sys.Read(p, c, many)
		}
		t0 := p.Now()
		sys.Write(p, 0, few, 1)
		costFew := p.Now() - t0
		t0 = p.Now()
		sys.Write(p, 0, many, 1)
		costMany := p.Now() - t0
		if costMany <= costFew {
			t.Errorf("invalidating 15 sharers (%d) should cost more than 1 (%d)", costMany, costFew)
		}
	})
}

func TestCAS(t *testing.T) {
	k, sys, mem := testSystem(2)
	addr := mem.AllocLine()
	runProc(k, func(p *sim.Proc) {
		if !sys.CAS(p, 0, addr, 0, 10) {
			t.Error("CAS from correct old value failed")
		}
		if sys.CAS(p, 1, addr, 0, 20) {
			t.Error("CAS from stale old value succeeded")
		}
		if v := sys.Read(p, 1, addr); v != 10 {
			t.Errorf("value = %d, want 10", v)
		}
	})
}

func TestFetchAddAndSwap(t *testing.T) {
	k, sys, mem := testSystem(2)
	addr := mem.AllocLine()
	runProc(k, func(p *sim.Proc) {
		if old := sys.FetchAdd(p, 0, addr, 5); old != 0 {
			t.Errorf("first FetchAdd returned %d, want 0", old)
		}
		if old := sys.FetchAdd(p, 1, addr, 5); old != 5 {
			t.Errorf("second FetchAdd returned %d, want 5", old)
		}
		if old := sys.Swap(p, 0, addr, 100); old != 10 {
			t.Errorf("Swap returned %d, want 10", old)
		}
	})
}

func TestWaitChangeWakesSpinner(t *testing.T) {
	k, sys, mem := testSystem(2)
	addr := mem.AllocLine()
	var sawAt sim.Time
	k.Spawn("spinner", func(p *sim.Proc) {
		for {
			v := sys.Read(p, 0, addr)
			if v == 1 {
				sawAt = p.Now()
				return
			}
			sys.WaitChange(p, addr, v)
		}
	})
	k.Spawn("writer", func(p *sim.Proc) {
		p.Wait(5000)
		sys.Write(p, 1, addr, 1)
	})
	k.Run()
	if sawAt < 5000 {
		t.Fatalf("spinner saw value at %d, before the write at 5000", sawAt)
	}
	if sawAt > 6000 {
		t.Fatalf("spinner woke too late: %d", sawAt)
	}
}

func TestWaitChangeImmediateReturn(t *testing.T) {
	k, sys, mem := testSystem(1)
	addr := mem.AllocLine()
	mem.Write(addr, 3)
	ran := false
	k.Spawn("p", func(p *sim.Proc) {
		sys.WaitChange(p, addr, 99) // value already differs: no block
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("WaitChange blocked although the value already changed")
	}
	_ = sys
}

func TestWaitChangeTimeout(t *testing.T) {
	k, sys, mem := testSystem(1)
	addr := mem.AllocLine()
	var ok bool
	k.Spawn("p", func(p *sim.Proc) {
		ok = sys.WaitChangeTimeout(p, addr, 0, 100)
	})
	k.Run()
	if ok {
		t.Fatal("timeout path reported a wake")
	}
	if k.Now() != 100 {
		t.Fatalf("now = %d, want 100", k.Now())
	}
}

func TestCapacityEviction(t *testing.T) {
	k := sim.New()
	net := topo.NewModelA(k, topo.DefaultModelA())
	mem := memmodel.New(4)
	// Tiny L1: 2 sets x 1 way.
	sys := New(k, net, mem, Params{
		Cores: 2, CoresPerChip: 1,
		L1Lat: 3, L2Lat: 10, DRAMLat: 63, CtrlLat: 6, OpLat: 1,
		L1Sets: 2, L1Ways: 1, L2Sets: 1024, L2Ways: 8,
	})
	addrs := make([]memmodel.Addr, 4)
	for i := range addrs {
		addrs[i] = mem.AllocLine()
	}
	runProc(k, func(p *sim.Proc) {
		for _, a := range addrs {
			sys.Read(p, 0, a)
		}
		_, m0 := sys.L1Stats(0)
		sys.Read(p, 0, addrs[0]) // evicted by addrs[2] (same set): miss again
		_, m1 := sys.L1Stats(0)
		if m1 != m0+1 {
			t.Errorf("expected capacity miss after eviction (misses %d -> %d)", m0, m1)
		}
	})
}

func TestUpgradeCheaperThanColdWrite(t *testing.T) {
	k, sys, mem := testSystem(4)
	a := mem.AllocLine()
	b := mem.AllocLine()
	runProc(k, func(p *sim.Proc) {
		sys.Read(p, 0, a) // now shared by core 0
		t0 := p.Now()
		sys.Write(p, 0, a, 1) // upgrade: no data fetch
		up := p.Now() - t0
		t0 = p.Now()
		sys.Write(p, 0, b, 1) // cold write: full GetM with DRAM fetch
		cold := p.Now() - t0
		if up >= cold {
			t.Errorf("upgrade (%d) should be cheaper than cold write (%d)", up, cold)
		}
	})
}

func TestOwnerHitWrite(t *testing.T) {
	k, sys, mem := testSystem(2)
	a := mem.AllocLine()
	runProc(k, func(p *sim.Proc) {
		sys.Write(p, 0, a, 1)
		t0 := p.Now()
		sys.Write(p, 0, a, 2)
		if lat := p.Now() - t0; lat != 3 {
			t.Errorf("owner write hit latency = %d, want 3", lat)
		}
	})
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		k, sys, mem := testSystem(8)
		addr := mem.AllocLine()
		var wg sim.WaitGroup
		wg.Add(8)
		for c := 0; c < 8; c++ {
			c := c
			k.Spawn("w", func(p *sim.Proc) {
				for i := 0; i < 100; i++ {
					sys.FetchAdd(p, c, addr, 1)
				}
				wg.Done()
			})
		}
		k.Run()
		return k.Now()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("nondeterministic end time: %d vs %d", first, again)
		}
	}
}
