package coherence

import "fairrw/internal/memmodel"

// cacheArray is a set-associative presence tracker with LRU replacement.
// It records which lines a cache holds; coherence *state* lives in the
// directory, so the array only answers hit/miss and picks victims.
//
// All ways live in one flat backing slice (set i occupies
// ways[i*assoc:(i+1)*assoc]), so building a cache is a single allocation
// and a set probe walks contiguous memory.
type cacheArray struct {
	ways  []cacheWay // nsets * assoc entries
	nsets int
	assoc int
	clock uint64

	Hits, Misses, Evictions uint64
}

type cacheWay struct {
	line  memmodel.Addr
	valid bool
	used  uint64
}

func newCacheArray(sets, ways int) *cacheArray {
	return &cacheArray{ways: make([]cacheWay, sets*ways), nsets: sets, assoc: ways}
}

func (c *cacheArray) setOf(line memmodel.Addr) []cacheWay {
	s := int((line >> memmodel.LineShift) % uint64(c.nsets))
	return c.ways[s*c.assoc : (s+1)*c.assoc]
}

// findWay returns the index of line within set, or -1. It is the single
// scan shared by has, peek and invalidate.
func findWay(set []cacheWay, line memmodel.Addr) int {
	for i := range set {
		if set[i].valid && set[i].line == line {
			return i
		}
	}
	return -1
}

// has reports whether line is present, updating LRU on hit.
func (c *cacheArray) has(line memmodel.Addr) bool {
	set := c.setOf(line)
	if i := findWay(set, line); i >= 0 {
		c.clock++
		set[i].used = c.clock
		c.Hits++
		return true
	}
	c.Misses++
	return false
}

// peek reports presence without touching LRU or statistics.
func (c *cacheArray) peek(line memmodel.Addr) bool {
	return findWay(c.setOf(line), line) >= 0
}

// insert installs line, returning the evicted line (if any).
func (c *cacheArray) insert(line memmodel.Addr) (victim memmodel.Addr, evicted bool) {
	set := c.setOf(line)
	c.clock++
	// Already present (e.g. upgrade): refresh.
	if i := findWay(set, line); i >= 0 {
		set[i].used = c.clock
		return 0, false
	}
	// Free way.
	for i := range set {
		if !set[i].valid {
			set[i] = cacheWay{line: line, valid: true, used: c.clock}
			return 0, false
		}
	}
	// Evict LRU.
	lru := 0
	for i := 1; i < len(set); i++ {
		if set[i].used < set[lru].used {
			lru = i
		}
	}
	victim = set[lru].line
	set[lru] = cacheWay{line: line, valid: true, used: c.clock}
	c.Evictions++
	return victim, true
}

// invalidate removes line if present, reporting whether it was.
func (c *cacheArray) invalidate(line memmodel.Addr) bool {
	set := c.setOf(line)
	if i := findWay(set, line); i >= 0 {
		set[i].valid = false
		return true
	}
	return false
}

// reset clears all ways and statistics in place, keeping the backing
// slice, so a reused machine rebuilds no cache arrays.
func (c *cacheArray) reset() {
	clear(c.ways)
	c.clock = 0
	c.Hits, c.Misses, c.Evictions = 0, 0, 0
}
