package coherence

import "fairrw/internal/memmodel"

// cacheArray is a set-associative presence tracker with LRU replacement.
// It records which lines a cache holds; coherence *state* lives in the
// directory, so the array only answers hit/miss and picks victims.
type cacheArray struct {
	sets  [][]cacheWay
	ways  int
	clock uint64

	Hits, Misses, Evictions uint64
}

type cacheWay struct {
	line  memmodel.Addr
	valid bool
	used  uint64
}

func newCacheArray(sets, ways int) *cacheArray {
	c := &cacheArray{sets: make([][]cacheWay, sets), ways: ways}
	for i := range c.sets {
		c.sets[i] = make([]cacheWay, ways)
	}
	return c
}

func (c *cacheArray) setOf(line memmodel.Addr) []cacheWay {
	return c.sets[(line>>memmodel.LineShift)%uint64(len(c.sets))]
}

// has reports whether line is present, updating LRU on hit.
func (c *cacheArray) has(line memmodel.Addr) bool {
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			c.clock++
			set[i].used = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// peek reports presence without touching LRU or statistics.
func (c *cacheArray) peek(line memmodel.Addr) bool {
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			return true
		}
	}
	return false
}

// insert installs line, returning the evicted line (if any).
func (c *cacheArray) insert(line memmodel.Addr) (victim memmodel.Addr, evicted bool) {
	set := c.setOf(line)
	c.clock++
	// Already present (e.g. upgrade): refresh.
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].used = c.clock
			return 0, false
		}
	}
	// Free way.
	for i := range set {
		if !set[i].valid {
			set[i] = cacheWay{line: line, valid: true, used: c.clock}
			return 0, false
		}
	}
	// Evict LRU.
	lru := 0
	for i := 1; i < len(set); i++ {
		if set[i].used < set[lru].used {
			lru = i
		}
	}
	victim = set[lru].line
	set[lru] = cacheWay{line: line, valid: true, used: c.clock}
	c.Evictions++
	return victim, true
}

// invalidate removes line if present, reporting whether it was.
func (c *cacheArray) invalidate(line memmodel.Addr) bool {
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].valid = false
			return true
		}
	}
	return false
}
