// Package coherence is the cycle-approximate memory-system timing model:
// per-core set-associative L1s, per-chip L2s, and a directory at each
// line's home memory controller that tracks one exclusive owner or a set
// of sharers. Transactions (read, write/upgrade, read-modify-write) are
// resolved atomically at the directory and charge the latency of the hop
// sequence they would take on real hardware, including invalidation
// fan-out to sharers and cache-to-cache forwarding — the effects that
// differentiate the software locks in Figures 10, 12 and 13.
//
// Spinning is event-driven: a waiter parks on a line's watch list and is
// woken when the line's content changes, instead of polling the simulator.
package coherence

import (
	"fairrw/internal/memmodel"
	"fairrw/internal/obs"
	"fairrw/internal/sim"
	"fairrw/internal/topo"
)

// Params configures the memory hierarchy timing.
type Params struct {
	Cores        int
	CoresPerChip int

	L1Lat   sim.Time // L1 hit latency
	L2Lat   sim.Time // L2 access latency (miss path adder / hit cost)
	DRAMLat sim.Time // DRAM array access at the home controller
	CtrlLat sim.Time // directory/controller processing per transaction
	OpLat   sim.Time // ALU cost of the RMW in an atomic

	L1Sets, L1Ways int
	L2Sets, L2Ways int
}

// Stats aggregates system-wide coherence event counts.
type Stats struct {
	Reads, Writes, RMWs uint64
	L1Hits, L1Misses    uint64
	Invalidations       uint64
	Forwards            uint64 // cache-to-cache transfers
	DRAMAccesses        uint64
}

// dirEntry is the directory state of one coherence line, stored by value
// inside a dirPage so the steady state allocates nothing per line.
type dirEntry struct {
	owner   int    // core holding the line exclusively (M/E), or -1
	sharers uint64 // bitmask of cores holding the line shared
	watch   []*sim.Proc
	// busy serializes ownership transfers of this line: a cache line can
	// only move between cores one transfer at a time, which is what turns
	// a shared counter into a hotspot (e.g. the MRSW reader counter of
	// Section IV-A and the STM root lock word of Section IV-B).
	busy sim.Time
}

// dirPageLines is the number of coherence lines per directory page — the
// lines of one 4 KB memmodel page.
const dirPageLines = (memmodel.PageWords * 8) / memmodel.LineSize

// dirPage holds the directory entries of one heap page inline.
type dirPage [dirPageLines]dirEntry

// newDirPage returns a page with every line unowned.
func newDirPage() *dirPage {
	p := new(dirPage)
	for i := range p {
		p[i].owner = -1
	}
	return p
}

// System is the coherent memory system of one simulated machine.
type System struct {
	K   *sim.Kernel
	Net *topo.Network
	Mem *memmodel.Memory
	P   Params

	l1 []*cacheArray
	l2 []*cacheArray

	// dir is the directory, paged in lockstep with the memory heap: entry
	// pages materialize on first touch and entries are addressed by line
	// number, so lookups are two loads with no hashing. Lines outside the
	// heap (never produced by Alloc) fall back to the sparse map.
	dir    []*dirPage
	dirOvf map[memmodel.Addr]*dirEntry

	// watchPool recycles watch-list slices drained by wake, so parking and
	// waking spinners allocates only until the pool warms up.
	watchPool [][]*sim.Proc

	// Obs, when non-nil, receives cache-transaction records.
	Obs *obs.Capture

	Stats Stats
}

// New builds a coherent memory system over the given network and memory.
func New(k *sim.Kernel, net *topo.Network, mem *memmodel.Memory, p Params) *System {
	s := &System{K: k, Net: net, Mem: mem, P: p}
	s.l1 = make([]*cacheArray, p.Cores)
	for i := range s.l1 {
		s.l1[i] = newCacheArray(p.L1Sets, p.L1Ways)
	}
	chips := (p.Cores + p.CoresPerChip - 1) / p.CoresPerChip
	s.l2 = make([]*cacheArray, chips)
	for i := range s.l2 {
		s.l2[i] = newCacheArray(p.L2Sets, p.L2Ways)
	}
	return s
}

func (s *System) chipOf(core int) int { return core / s.P.CoresPerChip }

// entry returns the directory entry for line, materializing its page on
// first touch. Pointers stay valid for the lifetime of the System: pages
// are fixed arrays and are never moved or dropped.
func (s *System) entry(line memmodel.Addr) *dirEntry {
	pi := memmodel.PageOf(line)
	if pi < uint64(len(s.dir)) {
		p := s.dir[pi]
		if p == nil {
			p = newDirPage()
			s.dir[pi] = p
		}
		return &p[(line>>memmodel.LineShift)%dirPageLines]
	}
	if line < s.Mem.Brk() {
		// Heap grew since the last directory touch: extend the page table.
		for uint64(len(s.dir)) <= pi {
			s.dir = append(s.dir, nil)
		}
		p := newDirPage()
		s.dir[pi] = p
		return &p[(line>>memmodel.LineShift)%dirPageLines]
	}
	e := s.dirOvf[line]
	if e == nil {
		e = &dirEntry{owner: -1}
		if s.dirOvf == nil {
			s.dirOvf = make(map[memmodel.Addr]*dirEntry)
		}
		s.dirOvf[line] = e
	}
	return e
}

// peekEntry returns the directory entry for line without materializing
// anything, or nil if the line was never tracked.
func (s *System) peekEntry(line memmodel.Addr) *dirEntry {
	if pi := memmodel.PageOf(line); pi < uint64(len(s.dir)) {
		if p := s.dir[pi]; p != nil {
			return &p[(line>>memmodel.LineShift)%dirPageLines]
		}
		return nil
	}
	return s.dirOvf[line]
}

// evictFrom handles an L1 victim: the directory forgets this core.
func (s *System) evictFrom(core int, line memmodel.Addr) {
	e := s.peekEntry(line)
	if e == nil {
		return
	}
	if e.owner == core {
		e.owner = -1 // silent writeback; data is already in the backing store
	}
	e.sharers &^= 1 << uint(core)
}

// install records line presence in the core's L1 and its chip's L2.
func (s *System) install(core int, line memmodel.Addr) {
	if victim, ev := s.l1[core].insert(line); ev {
		s.evictFrom(core, victim)
	}
	s.l2[s.chipOf(core)].insert(line)
}

// watchAppend parks p on e's watch list, drawing a recycled slice from the
// pool when the entry has none.
func (s *System) watchAppend(e *dirEntry, p *sim.Proc) {
	if e.watch == nil {
		if n := len(s.watchPool); n > 0 {
			e.watch = s.watchPool[n-1]
			s.watchPool = s.watchPool[:n-1]
		}
	}
	e.watch = append(e.watch, p)
}

// wake releases every proc parked on the line's watch list after delay
// cycles — the point at which the writing transaction completes and its
// invalidations have reached the spinners. The drained slice returns to
// the pool for the next watcher instead of being dropped to the GC.
func (s *System) wake(e *dirEntry, delay sim.Time) {
	if len(e.watch) == 0 {
		return
	}
	ws := e.watch
	e.watch = nil
	for _, p := range ws {
		if p.Blocked() {
			p.Wake(delay)
		}
	}
	clear(ws)
	s.watchPool = append(s.watchPool, ws[:0])
}

// Read performs a coherent load of the 8-byte word at addr from core,
// blocking p for the access latency, and returns the value.
func (s *System) Read(p *sim.Proc, core int, addr memmodel.Addr) uint64 {
	s.Stats.Reads++
	line := memmodel.LineOf(addr)
	e := s.entry(line)

	if s.l1[core].has(line) && (e.owner == core || e.sharers&(1<<uint(core)) != 0) {
		s.Stats.L1Hits++
		p.Wait(s.P.L1Lat)
		return s.Mem.Read(addr)
	}
	s.Stats.L1Misses++
	lat := s.readMissLatency(core, line, e)
	if s.Obs != nil {
		s.Obs.CacheEvent(uint64(s.K.Now()), core, obs.KCacheRd, uint64(line), uint64(lat))
	}
	e.sharers |= 1 << uint(core)
	if e.owner == core {
		e.owner = -1
	}
	s.install(core, line)
	p.Wait(lat)
	return s.Mem.Read(addr)
}

// readMissLatency computes (and charges link occupancy for) a GetS miss.
func (s *System) readMissLatency(core int, line memmodel.Addr, e *dirEntry) sim.Time {
	home := topo.Mem(s.Mem.HomeOf(line))
	src := topo.Core(core)
	t := s.K.Now()
	lat := s.P.L1Lat // miss detection

	chip := s.chipOf(core)
	if e.owner == -1 && s.l2[chip].has(line) {
		// Chip-local L2 hit with no remote dirty copy.
		return lat + s.P.L2Lat
	}

	lat += s.P.L2Lat // L2 lookup on the miss path
	lat += s.Net.DelayAt(t+lat, src, home)
	lat += s.P.CtrlLat
	if e.owner != -1 && e.owner != core {
		// Dirty remote: forward to owner, owner supplies data to requestor.
		s.Stats.Forwards++
		own := topo.Core(e.owner)
		lat += s.Net.DelayAt(t+lat, home, own)
		lat += s.P.L1Lat
		lat += s.Net.DelayAt(t+lat, own, src)
		// Owner downgrades to shared.
		e.sharers |= 1 << uint(e.owner)
		e.owner = -1
		return lat
	}
	// Clean at home: DRAM (or home L2) supplies data.
	s.Stats.DRAMAccesses++
	lat += s.P.DRAMLat
	lat += s.Net.DelayAt(t+lat, home, src)
	return lat
}

// Write performs a coherent store of v to the word at addr from core.
func (s *System) Write(p *sim.Proc, core int, addr memmodel.Addr, v uint64) {
	s.Stats.Writes++
	line := memmodel.LineOf(addr)
	e := s.entry(line)
	lat := s.ownLatency(core, line, e)
	s.Mem.Write(addr, v)
	s.wake(e, lat)
	p.Wait(lat)
}

// RMW performs an atomic read-modify-write: f receives the old value and
// returns the new value to store. It returns the old value. The line is
// owned exclusively for the operation.
func (s *System) RMW(p *sim.Proc, core int, addr memmodel.Addr, f func(old uint64) uint64) uint64 {
	s.Stats.RMWs++
	line := memmodel.LineOf(addr)
	e := s.entry(line)
	lat := s.ownLatency(core, line, e) + s.P.OpLat
	old := s.Mem.Read(addr)
	s.Mem.Write(addr, f(old))
	s.wake(e, lat)
	p.Wait(lat)
	return old
}

// CAS performs an atomic compare-and-swap, returning whether it succeeded.
func (s *System) CAS(p *sim.Proc, core int, addr memmodel.Addr, old, new uint64) bool {
	ok := false
	s.RMW(p, core, addr, func(cur uint64) uint64 {
		if cur == old {
			ok = true
			return new
		}
		return cur
	})
	return ok
}

// FetchAdd atomically adds delta and returns the previous value.
func (s *System) FetchAdd(p *sim.Proc, core int, addr memmodel.Addr, delta uint64) uint64 {
	return s.RMW(p, core, addr, func(cur uint64) uint64 { return cur + delta })
}

// Swap atomically stores v and returns the previous value.
func (s *System) Swap(p *sim.Proc, core int, addr memmodel.Addr, v uint64) uint64 {
	return s.RMW(p, core, addr, func(uint64) uint64 { return v })
}

// ownLatency acquires exclusive ownership of e's line for core, computing
// the latency (hit, upgrade with invalidation fan-out, or full GetM) and
// updating directory state. Concurrent ownership transfers of one line
// serialize behind each other.
func (s *System) ownLatency(core int, line memmodel.Addr, e *dirEntry) sim.Time {
	me := uint64(1) << uint(core)

	if e.owner == core && s.l1[core].has(line) {
		return s.P.L1Lat
	}

	home := topo.Mem(s.Mem.HomeOf(line))
	src := topo.Core(core)
	t := s.K.Now()
	var lat sim.Time
	if e.busy > t {
		lat += e.busy - t // queue behind an in-flight transfer of this line
	}
	lat += s.P.L1Lat

	inL1Shared := e.sharers&me != 0 && s.l1[core].peek(line)

	// Reach the home (upgrade or GetM both consult the directory).
	lat += s.P.L2Lat
	lat += s.Net.DelayAt(t+lat, src, home)
	lat += s.P.CtrlLat

	// Fetch data if we do not have a valid copy.
	if !inL1Shared {
		if e.owner != -1 && e.owner != core {
			s.Stats.Forwards++
			own := topo.Core(e.owner)
			fw := s.Net.DelayAt(t+lat, home, own) + s.P.L1Lat + s.Net.DelayAt(t+lat, own, src)
			s.l1[e.owner].invalidate(line)
			s.Stats.Invalidations++
			lat += fw
			e.owner = -1
		} else {
			s.Stats.DRAMAccesses++
			lat += s.P.DRAMLat + s.Net.DelayAt(t+lat, home, src)
		}
	}

	// Invalidate all other sharers (in parallel; latency is the slowest).
	var worst sim.Time
	for c := 0; c < s.P.Cores; c++ {
		bit := uint64(1) << uint(c)
		if c == core || e.sharers&bit == 0 {
			continue
		}
		d := s.Net.DelayAt(t+lat, home, topo.Core(c)) + s.P.L1Lat +
			s.Net.DelayAt(t+lat, topo.Core(c), home)
		if d > worst {
			worst = d
		}
		s.l1[c].invalidate(line)
		s.Stats.Invalidations++
	}
	if e.owner != -1 && e.owner != core { // exclusive holder not yet handled (upgrade path)
		d := s.Net.DelayAt(t+lat, home, topo.Core(e.owner)) + s.P.L1Lat +
			s.Net.DelayAt(t+lat, topo.Core(e.owner), home)
		if d > worst {
			worst = d
		}
		s.l1[e.owner].invalidate(line)
		s.Stats.Invalidations++
		e.owner = -1
	}
	lat += worst
	if inL1Shared {
		// Upgrade ack returns to the requestor.
		lat += s.Net.DelayAt(t+lat, home, src)
	}

	e.owner = core
	e.sharers = 0
	e.busy = t + lat
	s.install(core, line)
	if s.Obs != nil {
		s.Obs.CacheEvent(uint64(t), core, obs.KCacheOwn, uint64(line), uint64(lat))
	}
	return lat
}

// WaitChange parks p until the word at addr changes from old (or returns
// immediately if it already differs). Spin loops use it so that waiting
// costs no simulator events until the writer arrives.
func (s *System) WaitChange(p *sim.Proc, addr memmodel.Addr, old uint64) {
	if s.Mem.Read(addr) != old {
		return
	}
	s.watchAppend(s.entry(memmodel.LineOf(addr)), p)
	p.Block()
}

// WaitChangeTimeout is WaitChange with an upper bound; it returns false if
// the timeout fired first.
func (s *System) WaitChangeTimeout(p *sim.Proc, addr memmodel.Addr, old uint64, d sim.Time) bool {
	if s.Mem.Read(addr) != old {
		return true
	}
	e := s.entry(memmodel.LineOf(addr))
	s.watchAppend(e, p)
	ok := p.BlockTimeout(d)
	if !ok {
		// Drop the stale registration so a later wake does not hit us.
		for i, w := range e.watch {
			if w == p {
				e.watch = append(e.watch[:i], e.watch[i+1:]...)
				break
			}
		}
	}
	return ok
}

// L1Stats returns hit/miss counters for one core's L1, for tests.
func (s *System) L1Stats(core int) (hits, misses uint64) {
	return s.l1[core].Hits, s.l1[core].Misses
}

// Reset clears all coherence state — caches, directory pages, watch lists
// and statistics — while keeping every backing array, so a reused machine
// rebuilds neither cache ways nor directory pages.
func (s *System) Reset() {
	for _, c := range s.l1 {
		c.reset()
	}
	for _, c := range s.l2 {
		c.reset()
	}
	for _, p := range s.dir {
		if p == nil {
			continue
		}
		for i := range p {
			if w := p[i].watch; w != nil {
				clear(w)
				s.watchPool = append(s.watchPool, w[:0])
			}
			p[i] = dirEntry{owner: -1}
		}
	}
	s.dirOvf = nil
	s.Obs = nil
	s.Stats = Stats{}
}
