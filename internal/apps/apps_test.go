package apps

import (
	"testing"

	"fairrw/internal/core"
	"fairrw/internal/machine"
	"fairrw/internal/sim"
	"fairrw/internal/ssb"
)

func runOnce(t *testing.T, app, lock string, threads int, flt int) sim.Time {
	t.Helper()
	m := machine.ModelA()
	switch lock {
	case "lcu":
		core.New(m, core.Options{FLTSize: flt})
	case "ssb":
		ssb.New(m, ssb.Options{})
	}
	return Run(m, Config{App: app, Lock: lock, Threads: threads, Seed: 7})
}

func TestAllAppsAllLocksComplete(t *testing.T) {
	for _, app := range []string{"fluidanimate", "cholesky", "radiosity"} {
		for _, lock := range []string{"posix", "lcu", "ssb"} {
			cycles := runOnce(t, app, lock, 8, 0)
			if cycles == 0 {
				t.Errorf("%s/%s: zero cycles", app, lock)
			}
		}
	}
}

func TestFluidanimateLCUWins(t *testing.T) {
	// Figure 13: fine-grain contended locks favour the LCU over posix.
	posix := runOnce(t, "fluidanimate", "posix", 32, 0)
	lcu := runOnce(t, "fluidanimate", "lcu", 32, 0)
	if lcu >= posix {
		t.Fatalf("fluidanimate: lcu (%d) should beat posix (%d)", lcu, posix)
	}
}

func TestCholeskyLockInsensitive(t *testing.T) {
	// Figure 13: compute-dominated; lock model changes little (<10%).
	posix := runOnce(t, "cholesky", "posix", 16, 0)
	lcu := runOnce(t, "cholesky", "lcu", 16, 0)
	ratio := float64(posix) / float64(lcu)
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("cholesky should be lock-insensitive: posix=%d lcu=%d (ratio %.2f)",
			posix, lcu, ratio)
	}
}

func TestRadiosityImplicitBiasing(t *testing.T) {
	// Figure 13: thread-private queue locks stay in L1 for posix; the LCU
	// pays remote requests and loses.
	posix := runOnce(t, "radiosity", "posix", 16, 0)
	lcu := runOnce(t, "radiosity", "lcu", 16, 0)
	if lcu <= posix {
		t.Fatalf("radiosity: lcu (%d) should LOSE to posix (%d) without the FLT", lcu, posix)
	}
}

func TestRadiosityFLTRestoresBiasing(t *testing.T) {
	// Section IV-C: the FLT restores the biasing the LCU lacks.
	noFLT := runOnce(t, "radiosity", "lcu", 16, 0)
	withFLT := runOnce(t, "radiosity", "lcu", 16, 4)
	if withFLT >= noFLT {
		t.Fatalf("radiosity: FLT (%d) should improve on plain LCU (%d)", withFLT, noFLT)
	}
}

func TestDeterministicApps(t *testing.T) {
	a := runOnce(t, "fluidanimate", "lcu", 8, 0)
	b := runOnce(t, "fluidanimate", "lcu", 8, 0)
	if a != b {
		t.Fatalf("nondeterministic app run: %d vs %d", a, b)
	}
}
