// Package apps provides the three application kernels of Figure 13 as
// synthetic workloads that reproduce each program's locking pattern (the
// real PARSEC/SPLASH binaries are not runnable here; see DESIGN.md for the
// substitution argument):
//
//   - fluidanimate: a particle grid updated with fine-grain per-value
//     dynamic locks; neighbouring partitions contend on boundary cells.
//     Lock-transfer time matters, so the LCU wins (paper: +7.4%).
//   - cholesky: sparse factorization dominated by computation, with a
//     task queue and per-column locks of low contention. Lock choice is
//     performance-neutral (paper: within the error margin).
//   - radiosity: per-thread task queues locked on every pop, with rare
//     work stealing. The locks are thread-private, so coherence-based
//     software locks enjoy implicit biasing (the line stays in L1) while
//     the LCU pays a remote request per acquire and loses — unless the FLT
//     extension restores the biasing (paper Section IV-C).
package apps

import (
	"math/rand"

	"fairrw/internal/machine"
	"fairrw/internal/sim"
	"fairrw/internal/swlocks"
)

// Config selects and sizes an application run.
type Config struct {
	App     string // fluidanimate, cholesky, radiosity
	Lock    string // posix, lcu, ssb (lock factory names; see LockFactory)
	Threads int
	Scale   int // problem size multiplier (1 = default)
	Seed    int64
}

// LockFactory builds one lock instance for the configured kind. The
// machine must already have the matching device installed for lcu/ssb.
type LockFactory func(m *machine.Machine) swlocks.RWLock

// Factory returns a LockFactory for the named lock kind.
func Factory(kind string) LockFactory {
	switch kind {
	case "posix":
		return func(m *machine.Machine) swlocks.RWLock { return swlocks.NewPosix(m) }
	case "lcu", "ssb":
		return func(m *machine.Machine) swlocks.RWLock { return swlocks.NewHWLock(m, kind) }
	}
	panic("apps: unknown lock kind " + kind)
}

// Run executes the named application and returns the parallel-section
// execution time in cycles.
func Run(m *machine.Machine, cfg Config) sim.Time {
	return RunWith(m, Factory(cfg.Lock), cfg)
}

// RunWith runs the application with an explicit lock factory (ablations).
func RunWith(m *machine.Machine, mk LockFactory, cfg Config) sim.Time {
	start := m.K.Now()
	switch cfg.App {
	case "fluidanimate":
		fluidanimate(m, mk, cfg)
	case "cholesky":
		cholesky(m, mk, cfg)
	case "radiosity":
		radiosity(m, mk, cfg)
	default:
		panic("apps: unknown app " + cfg.App)
	}
	m.Run()
	return m.K.Now() - start
}

// fluidanimate: threads own horizontal bands of a cell grid and apply
// particle-interaction updates to random cells in their band or the row
// just above it (cross-band interactions), each under a fine-grain
// per-cell lock. Boundary-row locks bounce between the two neighbouring
// threads, so lock transfer time matters; accesses are randomized, so no
// cross-thread dependency chain forms.
func fluidanimate(m *machine.Machine, mk LockFactory, cfg Config) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	n := 32
	steps := 4
	updatesPerStep := 128 * cfg.Scale
	locks := make([]swlocks.RWLock, n*n)
	for i := range locks {
		locks[i] = mk(m)
	}
	bar := m.NewBarrier(cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		tid := uint64(t + 1)
		myRow := t * n / cfg.Threads
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)))
		m.Spawn("fluid", tid, t%m.P.Cores, func(c *machine.Ctx) {
			for s := 0; s < steps; s++ {
				for u := 0; u < updatesPerStep; u++ {
					// Compute the interaction, then publish under the lock.
					c.Compute(300 + sim.Time(rng.Intn(100)))
					r := myRow
					if rng.Intn(2) == 0 && r > 0 {
						r-- // interaction with the band above
					}
					cell := r*n + rng.Intn(n)
					locks[cell].Lock(c, true)
					c.Compute(50 + sim.Time(rng.Intn(20)))
					locks[cell].Unlock(c, true)
				}
				bar.Arrive(c)
			}
		})
	}
}

// cholesky: a central task queue hands out column tasks; each task is
// compute-heavy with a short per-column lock for the update.
func cholesky(m *machine.Machine, mk LockFactory, cfg Config) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	nTasks := 96 * cfg.Scale
	queueLock := mk(m)
	next := m.Mem.AllocLine()
	colLocks := make([]swlocks.RWLock, 32)
	for i := range colLocks {
		colLocks[i] = mk(m)
	}
	for t := 0; t < cfg.Threads; t++ {
		tid := uint64(t + 1)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*13))
		m.Spawn("chol", tid, t%m.P.Cores, func(c *machine.Ctx) {
			for {
				queueLock.Lock(c, true)
				task := c.Load(next)
				if int(task) >= nTasks {
					queueLock.Unlock(c, true)
					return
				}
				c.Store(next, task+1)
				queueLock.Unlock(c, true)
				// Factor the column: computation dominates.
				c.Compute(50_000 + sim.Time(rng.Intn(10_000)))
				// Brief update under a column lock.
				cl := colLocks[int(task)%len(colLocks)]
				cl.Lock(c, true)
				c.Compute(60)
				cl.Unlock(c, true)
			}
		})
	}
}

// radiosity: each thread pops work from its own locked queue; when empty
// it steals from a victim. Queue locks are overwhelmingly thread-private.
func radiosity(m *machine.Machine, mk LockFactory, cfg Config) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	tasksPer := 300 * cfg.Scale
	qlocks := make([]swlocks.RWLock, cfg.Threads)
	qcount := make([]machineAddr, cfg.Threads)
	for i := range qlocks {
		qlocks[i] = mk(m)
		qcount[i] = m.Mem.AllocLine()
		m.Mem.Write(qcount[i], uint64(tasksPer))
	}
	for t := 0; t < cfg.Threads; t++ {
		tid := uint64(t + 1)
		me := t
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*29))
		m.Spawn("rad", tid, t%m.P.Cores, func(c *machine.Ctx) {
			for {
				// Pop from my own queue (private lock: the biasing case).
				qlocks[me].Lock(c, true)
				n := c.Load(qcount[me])
				if n > 0 {
					c.Store(qcount[me], n-1)
				}
				qlocks[me].Unlock(c, true)
				if n > 0 {
					c.Compute(2_000 + sim.Time(rng.Intn(1_000)))
					continue
				}
				// Empty: try to steal once from a random victim.
				v := rng.Intn(cfg.Threads)
				if v == me {
					return
				}
				qlocks[v].Lock(c, true)
				vn := c.Load(qcount[v])
				if vn > 1 {
					c.Store(qcount[v], vn-1)
				}
				qlocks[v].Unlock(c, true)
				if vn <= 1 {
					return
				}
				c.Compute(2_000 + sim.Time(rng.Intn(1_000)))
			}
		})
	}
}

type machineAddr = uint64
