// Package bench regenerates every table and figure of the paper's
// evaluation section as text tables: Figure 1 (qualitative comparison),
// Figure 8 (model parameters), Figures 9-10 (critical-section transfer
// time), Figures 11-12 (STM benchmarks) and Figure 13 (applications).
//
// All knobs live in Config rather than package globals, so concurrent
// sweeps are race-free. Each Fig* method enumerates its configurations,
// fans the independent simulations out across a sweep.Runner (every run
// owns its machine and kernel), then renders the collected results in
// enumeration order — output is byte-identical at any worker count.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fairrw/internal/machine"
	"fairrw/internal/microbench"
	"fairrw/internal/obs"
	"fairrw/internal/stats"
	"fairrw/internal/sweep"
)

// App names one Figure 13 application with its thread count.
type App struct {
	Name    string
	Threads int
}

// Config parameterizes the whole figure harness. Use Default() and
// override fields; the zero value is not runnable.
type Config struct {
	// Iters is the number of critical-section entries per microbenchmark
	// configuration. The paper uses 50 000; cycles/CS converges long
	// before that, so the default is smaller. Raise for higher fidelity.
	Iters int
	// STMOps is the per-thread operation count for the STM figures.
	STMOps int
	// Fig13Runs is the number of seeds per Figure 13 configuration (the
	// paper reports a 95% confidence interval over several runs).
	Fig13Runs int
	// Parallel is the sweep worker count: 0 = one per CPU (GOMAXPROCS),
	// 1 = serial.
	Parallel int

	// Fig9Threads is the thread-count sweep of Figure 9.
	Fig9Threads []int
	// Fig9WritePcts is the write-percentage sweep of Figures 9 and 10.
	Fig9WritePcts []int
	// Fig10Threads extends past the core count to expose the preemption
	// anomaly of queue-based software locks.
	Fig10Threads []int

	// Fig11Threads is the thread sweep of Figure 11.
	Fig11Threads []int
	// Fig11Engines are the compared systems (Fraser = nonblocking, unsafe
	// privatization; sw-only = lock-based with software RW words; lcu /
	// ssb = lock-based over the hardware devices).
	Fig11Engines []string
	// Fig11Nodes is the RB-tree key space of Figure 11.
	Fig11Nodes int
	// Fig12Sizes are the structure sizes of Figure 12. The paper uses
	// 2^15 and 2^19 keys; the defaults are smaller for simulation runtime
	// (the shape — root congestion for rb/skip, none for hash — is
	// size-stable; see EXPERIMENTS.md).
	Fig12Sizes []int
	// Fig12Structures are the three benchmarks of Figure 12.
	Fig12Structures []string

	// Fig13Apps lists the applications with the paper's thread counts.
	Fig13Apps []App
	// Fig13Locks are the compared lock models.
	Fig13Locks []string
	// FLTSlots configures the optional Free Lock Table ablation appended
	// to Figure 13 when > 0.
	FLTSlots int

	// Obs, when non-nil, turns on observability: every run of the invoked
	// figures records into its own capture (configured by Obs.Opt), and
	// the captures are added to the collector in enumeration order, so the
	// exported trace is byte-identical at any Parallel setting.
	Obs *obs.Collector
}

// Default returns the harness defaults used by cmd/lcusim.
func Default() Config {
	return Config{
		Iters:           8000,
		STMOps:          60,
		Fig13Runs:       5,
		Fig9Threads:     []int{4, 8, 16, 24, 32},
		Fig9WritePcts:   []int{100, 75, 50, 25},
		Fig10Threads:    []int{4, 8, 16, 24, 32, 40, 48},
		Fig11Threads:    []int{1, 2, 4, 8, 16, 32},
		Fig11Engines:    []string{"swonly", "lcu", "fraser", "ssb"},
		Fig11Nodes:      1 << 8,
		Fig12Sizes:      []int{1 << 10, 1 << 13},
		Fig12Structures: []string{"rb", "skip", "hash"},
		Fig13Apps: []App{
			{"fluidanimate", 32},
			{"cholesky", 16},
			{"radiosity", 16},
		},
		Fig13Locks: []string{"posix", "lcu", "ssb"},
		FLTSlots:   4,
	}
}

// runner returns the sweep pool for this config.
func (c Config) runner() sweep.Runner { return sweep.Runner{Workers: c.Parallel} }

// machinePool hands each of up to n sweep workers a lazily-built machine
// for the requested model, reused (via Reset in the Run* helpers) across
// that worker's share of the sweep points.
func machinePool(n int) func(w int, model string) *machine.Machine {
	pools := make([]map[string]*machine.Machine, n)
	return func(w int, model string) *machine.Machine {
		if pools[w] == nil {
			pools[w] = make(map[string]*machine.Machine, 2)
		}
		m := pools[w][model]
		if m == nil {
			m = microbench.NewMachine(model)
			pools[w][model] = m
		}
		return m
	}
}

// sweepMicro fans the microbenchmark configurations across the pool, with
// each worker reusing one machine per model across its share of the sweep
// points. Results come back in enumeration order.
func (c Config) sweepMicro(cfgs []microbench.Config) []microbench.Result {
	pool := machinePool(len(cfgs))
	return sweep.MapWorkers(c.runner(), len(cfgs), func(w, i int) microbench.Result {
		return microbench.RunOn(pool(w, cfgs[i].Model), cfgs[i])
	})
}

// obsOpt returns the per-run capture options (zero value = disabled).
func (c Config) obsOpt() obs.Options {
	if c.Obs == nil {
		return obs.Options{}
	}
	return c.Obs.Opt
}

// Fig9 regenerates Figure 9 (CS execution time, LCU vs SSB) for the given
// model ("A" => Fig. 9a, "B" => Fig. 9b).
func (c Config) Fig9(w io.Writer, model string) {
	// Enumerate configurations in render order, then fan out.
	var cfgs []microbench.Config
	for _, th := range c.Fig9Threads {
		for _, lock := range []string{"lcu", "ssb"} {
			for _, wp := range c.Fig9WritePcts {
				cfgs = append(cfgs, microbench.Config{
					Model: model, Lock: lock, Threads: th, WritePct: wp,
					TotalIters: c.Iters, Seed: 42, Obs: c.obsOpt(),
				})
			}
		}
	}
	results := c.sweepMicro(cfgs)
	if c.Obs != nil {
		for _, r := range results {
			c.Obs.Add(r.Obs)
		}
	}

	fmt.Fprintf(w, "Figure 9%s — CS execution time (cycles/CS), LCU vs SSB, model %s\n",
		map[string]string{"A": "a", "B": "b"}[model], model)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "threads")
	for _, lock := range []string{"lcu", "ssb"} {
		for _, wp := range c.Fig9WritePcts {
			fmt.Fprintf(tw, "\t%s-%d%%w", lock, wp)
		}
	}
	fmt.Fprintln(tw)

	var lcuMutex, ssbMutex []float64
	idx := 0
	for _, th := range c.Fig9Threads {
		fmt.Fprintf(tw, "%d", th)
		for _, lock := range []string{"lcu", "ssb"} {
			for _, wp := range c.Fig9WritePcts {
				r := results[idx]
				idx++
				fmt.Fprintf(tw, "\t%.0f", r.CyclesPerCS)
				if wp == 100 {
					if lock == "lcu" {
						lcuMutex = append(lcuMutex, r.CyclesPerCS)
					} else {
						ssbMutex = append(ssbMutex, r.CyclesPerCS)
					}
				}
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	var gains []float64
	for i := range lcuMutex {
		gains = append(gains, (ssbMutex[i]-lcuMutex[i])/ssbMutex[i]*100)
	}
	fmt.Fprintf(w, "mutual-exclusion advantage of LCU over SSB: %.1f%% avg (paper: 30.6%% on model A)\n\n",
		stats.Mean(gains))
}

// Fig10 regenerates Figure 10 (CS execution time, LCU vs software locks).
func (c Config) Fig10(w io.Writer, model string) {
	locks := []string{"lcu", "tas", "tatas", "mcs", "mrsw"}
	writePcts := func(lock string) []int {
		if lock == "lcu" || lock == "mrsw" {
			return c.Fig9WritePcts
		}
		return []int{100}
	}
	var cfgs []microbench.Config
	for _, th := range c.Fig10Threads {
		for _, lock := range locks {
			for _, wp := range writePcts(lock) {
				cfgs = append(cfgs, microbench.Config{
					Model: model, Lock: lock, Threads: th, WritePct: wp,
					TotalIters: c.Iters, Seed: 42, Obs: c.obsOpt(),
				})
			}
		}
	}
	results := c.sweepMicro(cfgs)
	if c.Obs != nil {
		for _, r := range results {
			c.Obs.Add(r.Obs)
		}
	}

	fmt.Fprintf(w, "Figure 10%s — CS execution time (cycles/CS), LCU vs software locks, model %s\n",
		map[string]string{"A": "a", "B": "b"}[model], model)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "threads")
	for _, lock := range locks {
		if lock == "lcu" || lock == "mrsw" {
			for _, wp := range c.Fig9WritePcts {
				fmt.Fprintf(tw, "\t%s-%d%%w", lock, wp)
			}
		} else {
			fmt.Fprintf(tw, "\t%s", lock)
		}
	}
	fmt.Fprintln(tw)

	var lcu100, mcs100, lcu75, mrsw75 []float64
	idx := 0
	for _, th := range c.Fig10Threads {
		fmt.Fprintf(tw, "%d", th)
		for _, lock := range locks {
			for _, wp := range writePcts(lock) {
				r := results[idx]
				idx++
				fmt.Fprintf(tw, "\t%.0f", r.CyclesPerCS)
				if th <= 32 {
					switch {
					case lock == "lcu" && wp == 100:
						lcu100 = append(lcu100, r.CyclesPerCS)
					case lock == "mcs" && wp == 100:
						mcs100 = append(mcs100, r.CyclesPerCS)
					case lock == "lcu" && wp == 75:
						lcu75 = append(lcu75, r.CyclesPerCS)
					case lock == "mrsw" && wp == 75:
						mrsw75 = append(mrsw75, r.CyclesPerCS)
					}
				}
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintf(w, "LCU speedup over MCS (mutex, <=32 threads): %.2fx (paper: >2x)\n",
		stats.Mean(mcs100)/stats.Mean(lcu100))
	fmt.Fprintf(w, "LCU speedup over MRSW (75%% reads): %.2fx (paper: 9.14x avg)\n\n",
		stats.Mean(mrsw75)/stats.Mean(lcu75))
}

// Table1 prints the qualitative mechanism comparison of Figure 1.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Figure 1 — locking mechanism comparison")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mechanism\tlocal spin\tFIFO fair\tRW locks\ttrylock\tevict detect\tscales\tmem/area\ttransfer msgs\tL1 changes")
	rows := [][]string{
		{"TAS/TATAS", "no", "no", "no", "yes", "n/a", "poor", "1 word", "O(n) coherence", "no"},
		{"MCS", "yes", "yes", "no", "variant", "no", "good", "O(n) nodes", "inval+fetch", "no"},
		{"MRSW (RW-MCS)", "partly", "yes", "yes", "no", "no", "counter hotspot", "O(n)+counter", "inval+fetch", "no"},
		{"QOLB", "yes", "yes", "no", "no", "no", "good", "2 lines/lock", "direct", "yes"},
		{"Full/Empty bits", "n/a", "no", "no", "no", "no", "good", "tag all memory", "remote", "yes"},
		{"MAO/AMO", "no (remote)", "no", "no", "yes", "n/a", "memory latency", "none", "round trip", "no"},
		{"SSB", "no (remote)", "no", "yes (unfair)", "yes", "n/a", "retry storms", "bank table", "round trip", "no"},
		{"Lock Cache/Table", "no (bus)", "no", "no", "no", "no", "single bus", "central table", "bus", "no"},
		{"LCU+LRT (this)", "yes", "yes", "yes (fair)", "yes", "yes (timer)", "good", "LCU+LRT tables", "direct", "no"},
	}
	for _, r := range rows {
		for i, cell := range r {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// Table8 prints the machine-model parameters of Figure 8.
func Table8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8 — model parameters")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "parameter\tModel A\tModel B")
	for _, row := range [][3]string{
		{"Chips", "32", "4"},
		{"Cores", "32 (32x1)", "32 (4x8)"},
		{"L1 size (KB, I+D per core)", "64+64", "64+64"},
		{"L2 size (KB per chip)", "1024", "8 banks x 256"},
		{"L1 access latency (cycles)", "3", "3"},
		{"L2 access latency (cycles)", "10", "16"},
		{"Local memory latency (cycles)", "186", "210"},
		{"Remote memory latency (cycles)", "186", "315"},
		{"LCU entries", "8+2", "16+2"},
		{"LCU latency (cycles)", "3", "3"},
		{"LRT modules", "32", "8"},
		{"LRT entries (16-way)", "512", "512"},
		{"LRT latency (cycles)", "6", "6"},
	} {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", row[0], row[1], row[2])
	}
	tw.Flush()
	fmt.Fprintln(w)
}
