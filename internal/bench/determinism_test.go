package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"fairrw/internal/obs"
)

// small returns a reduced-size harness config so the determinism sweep
// stays fast under -race.
func small(parallel int) Config {
	c := Default()
	c.Iters = 400
	c.Parallel = parallel
	c.Fig9Threads = []int{4, 8}
	c.Fig10Threads = []int{4, 8}
	c.Fig13Runs = 2
	return c
}

// render produces the Fig9 and Fig10 tables for both models at the given
// worker count.
func render(t *testing.T, parallel int) []byte {
	t.Helper()
	c := small(parallel)
	var b bytes.Buffer
	for _, model := range []string{"A", "B"} {
		c.Fig9(&b, model)
		c.Fig10(&b, model)
	}
	return b.Bytes()
}

// TestParallelRunnerByteIdentical asserts the sweep runner's rendered
// Fig9/Fig10 tables are byte-identical at 1 vs 8 workers: every simulation
// owns its kernel, and results are collected in configuration order, so
// worker count must not be observable in the output.
func TestParallelRunnerByteIdentical(t *testing.T) {
	serial := render(t, 1)
	parallel := render(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("output differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestParallelFig13ByteIdentical covers the flattened Fig13 sweep (apps ×
// locks × seeds plus the FLT ablation) the same way.
func TestParallelFig13ByteIdentical(t *testing.T) {
	run := func(parallel int) []byte {
		c := small(parallel)
		c.Fig13Apps = c.Fig13Apps[1:2] // cholesky only: fastest
		var b bytes.Buffer
		c.Fig13(&b)
		return b.Bytes()
	}
	if s, p := run(1), run(8); !bytes.Equal(s, p) {
		t.Fatalf("Fig13 output differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestParallelTraceByteIdentical asserts the observability layer inherits
// the sweep's determinism: with tracing on, the exported Chrome trace and
// metrics JSON are byte-identical at 1 vs 8 workers. Captures are
// per-machine and the collector is populated in enumeration order, so
// worker count must not leak into either file.
func TestParallelTraceByteIdentical(t *testing.T) {
	run := func(parallel int) (trace, metrics []byte) {
		c := small(parallel)
		c.Obs = &obs.Collector{Opt: obs.Options{Records: true, Metrics: true, Cache: true}}
		var discard bytes.Buffer
		c.Fig9(&discard, "A")
		var tb, mb bytes.Buffer
		if err := c.Obs.WriteChrome(&tb); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		if err := c.Obs.WriteMetrics(&mb); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		return tb.Bytes(), mb.Bytes()
	}
	t1, m1 := run(1)
	t8, m8 := run(8)
	if !json.Valid(t1) {
		t.Fatalf("trace is not valid JSON:\n%.2000s", t1)
	}
	if !json.Valid(m1) {
		t.Fatalf("metrics is not valid JSON:\n%.2000s", m1)
	}
	if !bytes.Contains(t1, []byte(`"ph":`)) {
		t.Fatalf("trace holds no events:\n%.2000s", t1)
	}
	if !bytes.Equal(t1, t8) {
		t.Fatalf("trace differs between -parallel 1 (%d bytes) and -parallel 8 (%d bytes)", len(t1), len(t8))
	}
	if !bytes.Equal(m1, m8) {
		t.Fatalf("metrics differ between -parallel 1 (%d bytes) and -parallel 8 (%d bytes)", len(m1), len(m8))
	}
}
