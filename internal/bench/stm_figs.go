package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fairrw/internal/stmbench"
	"fairrw/internal/sweep"
)

// sweepSTM fans the STM workloads across the pool, one reused machine per
// (worker, model). Results come back in enumeration order.
func (c Config) sweepSTM(wls []stmbench.Workload) []stmbench.Result {
	pool := machinePool(len(wls))
	return sweep.MapWorkers(c.runner(), len(wls), func(w, i int) stmbench.Result {
		return stmbench.RunOn(pool(w, wls[i].Model), wls[i])
	})
}

// Fig11 regenerates Figure 11: RB-tree transaction time and commit-phase
// dissection vs thread count, 75% read-only transactions.
func (c Config) Fig11(w io.Writer, model string) {
	var wls []stmbench.Workload
	for _, th := range c.Fig11Threads {
		for _, e := range c.Fig11Engines {
			wls = append(wls, stmbench.Workload{
				Model: model, Engine: e, Structure: "rb",
				MaxNodes: c.Fig11Nodes, Threads: th, ReadPct: 75,
				OpsPerThr: c.STMOps, Seed: 42, Obs: c.obsOpt(),
			})
		}
	}
	results := c.sweepSTM(wls)
	if c.Obs != nil {
		for _, r := range results {
			c.Obs.Add(r.Obs)
		}
	}

	fmt.Fprintf(w, "Figure 11%s — RB-tree (2^8 keys, 75%% read-only): txn time (cycles) by engine, model %s\n",
		map[string]string{"A": "a", "B": "b"}[model], model)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "threads")
	for _, e := range c.Fig11Engines {
		fmt.Fprintf(tw, "\t%s\t(exec+commit)", e)
	}
	fmt.Fprintln(tw)
	idx := 0
	for _, th := range c.Fig11Threads {
		fmt.Fprintf(tw, "%d", th)
		for range c.Fig11Engines {
			r := results[idx]
			idx++
			fmt.Fprintf(tw, "\t%.0f\t(%.0f+%.0f)", r.MeanTxnCycles, r.ExecPerTxn, r.CommitPerTxn)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// Fig12 regenerates Figure 12: transaction time at 16 threads, 75%
// read-only, for each structure and size, with sw-only/LCU speedups.
func (c Config) Fig12(w io.Writer, model string) {
	var wls []stmbench.Workload
	for _, structure := range c.Fig12Structures {
		for _, size := range c.Fig12Sizes {
			for _, e := range c.Fig11Engines {
				wls = append(wls, stmbench.Workload{
					Model: model, Engine: e, Structure: structure,
					MaxNodes: size, Threads: 16, ReadPct: 75,
					OpsPerThr: c.STMOps, Seed: 42, Obs: c.obsOpt(),
				})
			}
		}
	}
	results := c.sweepSTM(wls)
	if c.Obs != nil {
		for _, r := range results {
			c.Obs.Add(r.Obs)
		}
	}

	fmt.Fprintf(w, "Figure 12%s — txn time (cycles), 16 threads, 75%% read-only, model %s\n",
		map[string]string{"A": "a", "B": "b"}[model], model)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "structure\tsize\tsw-only\tlcu\tfraser\tssb\tlcu speedup vs sw-only")
	idx := 0
	for _, structure := range c.Fig12Structures {
		for _, size := range c.Fig12Sizes {
			row := map[string]float64{}
			for _, e := range c.Fig11Engines {
				row[e] = results[idx].MeanTxnCycles
				idx++
			}
			fmt.Fprintf(tw, "%s\t2^%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.2fx\n",
				structure, log2(size), row["swonly"], row["lcu"], row["fraser"], row["ssb"],
				row["swonly"]/row["lcu"])
		}
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: rb/skip speedups 1.53x-3.35x; hash >= 1.42x")
	fmt.Fprintln(w)
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
