package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fairrw/internal/stmbench"
)

// Fig11Threads is the thread sweep of Figure 11.
var Fig11Threads = []int{1, 2, 4, 8, 16, 32}

// Fig11Engines are the compared systems (Fraser = nonblocking, unsafe
// privatization; sw-only = lock-based with software RW words; lcu / ssb =
// lock-based over the hardware devices).
var Fig11Engines = []string{"swonly", "lcu", "fraser", "ssb"}

// Fig11Nodes is the RB-tree key space of Figure 11 (2^8).
var Fig11Nodes = 1 << 8

// STMOps is the per-thread operation count for the STM figures.
var STMOps = 60

// Fig11 regenerates Figure 11: RB-tree transaction time and commit-phase
// dissection vs thread count, 75% read-only transactions.
func Fig11(w io.Writer, model string) {
	fmt.Fprintf(w, "Figure 11%s — RB-tree (2^8 keys, 75%% read-only): txn time (cycles) by engine, model %s\n",
		map[string]string{"A": "a", "B": "b"}[model], model)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "threads")
	for _, e := range Fig11Engines {
		fmt.Fprintf(tw, "\t%s\t(exec+commit)", e)
	}
	fmt.Fprintln(tw)
	for _, th := range Fig11Threads {
		fmt.Fprintf(tw, "%d", th)
		for _, e := range Fig11Engines {
			r := stmbench.Run(stmbench.Workload{
				Model: model, Engine: e, Structure: "rb",
				MaxNodes: Fig11Nodes, Threads: th, ReadPct: 75,
				OpsPerThr: STMOps, Seed: 42,
			})
			fmt.Fprintf(tw, "\t%.0f\t(%.0f+%.0f)", r.MeanTxnCycles, r.ExecPerTxn, r.CommitPerTxn)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// Fig12Sizes are the structure sizes of Figure 12. The paper uses 2^15 and
// 2^19 keys; the defaults here are 2^10 and 2^13 for simulation runtime
// (the shape — root congestion for rb/skip, none for hash — is size-stable;
// see EXPERIMENTS.md). Pass bigger sizes for higher fidelity.
var Fig12Sizes = []int{1 << 10, 1 << 13}

// Fig12Structures are the three benchmarks of Figure 12.
var Fig12Structures = []string{"rb", "skip", "hash"}

// Fig12 regenerates Figure 12: transaction time at 16 threads, 75%
// read-only, for each structure and size, with sw-only/LCU speedups.
func Fig12(w io.Writer, model string) {
	fmt.Fprintf(w, "Figure 12%s — txn time (cycles), 16 threads, 75%% read-only, model %s\n",
		map[string]string{"A": "a", "B": "b"}[model], model)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "structure\tsize\tsw-only\tlcu\tfraser\tssb\tlcu speedup vs sw-only")
	for _, structure := range Fig12Structures {
		for _, size := range Fig12Sizes {
			row := map[string]float64{}
			for _, e := range Fig11Engines {
				r := stmbench.Run(stmbench.Workload{
					Model: model, Engine: e, Structure: structure,
					MaxNodes: size, Threads: 16, ReadPct: 75,
					OpsPerThr: STMOps, Seed: 42,
				})
				row[e] = r.MeanTxnCycles
			}
			fmt.Fprintf(tw, "%s\t2^%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.2fx\n",
				structure, log2(size), row["swonly"], row["lcu"], row["fraser"], row["ssb"],
				row["swonly"]/row["lcu"])
		}
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: rb/skip speedups 1.53x-3.35x; hash >= 1.42x")
	fmt.Fprintln(w)
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
