package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fairrw/internal/apps"
	"fairrw/internal/core"
	"fairrw/internal/machine"
	"fairrw/internal/obs"
	"fairrw/internal/ssb"
	"fairrw/internal/stats"
	"fairrw/internal/sweep"
	"fairrw/internal/swlocks"
)

func runApp(m *machine.Machine, app string, threads int, lock string, flt int, seed int64, o obs.Options) (float64, *obs.Capture) {
	m.Reset()
	switch lock {
	case "lcu":
		core.New(m, core.Options{FLTSize: flt})
	case "ssb":
		ssb.New(m, ssb.Options{})
	}
	mk := apps.Factory(lock)
	var cap *obs.Capture
	if o.Enabled() {
		cap = m.EnableObs(o, fmt.Sprintf("%s/%s t=%d", app, lock, threads))
		if lock != "lcu" && lock != "ssb" {
			// Software locks need the tracing wrapper; each instance gets a
			// distinct id in allocation order (deterministic: the app builds
			// its locks single-threaded before spawning).
			inner := mk
			var nextID uint64
			mk = func(m *machine.Machine) swlocks.RWLock {
				nextID++
				return swlocks.Trace(inner(m), nextID)
			}
		}
	}
	cycles := apps.RunWith(m, mk, apps.Config{App: app, Lock: lock, Threads: threads, Seed: seed})
	return float64(cycles), cap
}

// Fig13 regenerates Figure 13: application execution time (model A) with
// 95% confidence intervals, plus the paper's speedup commentary and the
// FLT ablation for radiosity (Section IV-C).
func (c Config) Fig13(w io.Writer) {
	// One flattened job per (app, lock, seed) plus the FLT ablation runs.
	type job struct {
		app     string
		threads int
		lock    string
		flt     int
		seed    int64
	}
	var jobs []job
	for _, a := range c.Fig13Apps {
		for _, lock := range c.Fig13Locks {
			for r := 0; r < c.Fig13Runs; r++ {
				jobs = append(jobs, job{a.Name, a.Threads, lock, 0, int64(1000 + r*77)})
			}
		}
	}
	fltBase := len(jobs)
	if c.FLTSlots > 0 {
		for r := 0; r < c.Fig13Runs; r++ {
			jobs = append(jobs, job{"radiosity", 16, "lcu", c.FLTSlots, int64(1000 + r*77)})
		}
	}
	type appOut struct {
		cycles float64
		obs    *obs.Capture
	}
	pool := machinePool(len(jobs))
	outs := sweep.MapWorkers(c.runner(), len(jobs), func(w, i int) appOut {
		j := jobs[i]
		cy, cap := runApp(pool(w, "A"), j.app, j.threads, j.lock, j.flt, j.seed, c.obsOpt())
		return appOut{cy, cap}
	})
	cycles := make([]float64, len(outs))
	for i, o := range outs {
		cycles[i] = o.cycles
		if c.Obs != nil {
			c.Obs.Add(o.obs)
		}
	}

	fmt.Fprintln(w, "Figure 13 — application execution time (cycles, model A, mean ± 95% CI)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tthreads\tposix\tlcu\tssb\tlcu speedup")
	var speedups []float64
	radiosityPosix := 0.0
	idx := 0
	for _, a := range c.Fig13Apps {
		means := map[string]float64{}
		cis := map[string]float64{}
		for _, lock := range c.Fig13Locks {
			xs := cycles[idx : idx+c.Fig13Runs]
			idx += c.Fig13Runs
			means[lock] = stats.Mean(xs)
			cis[lock] = stats.CI95(xs)
		}
		sp := means["posix"] / means["lcu"]
		speedups = append(speedups, sp)
		if a.Name == "radiosity" {
			radiosityPosix = means["posix"]
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f±%.0f\t%.0f±%.0f\t%.0f±%.0f\t%.3fx\n",
			a.Name, a.Threads,
			means["posix"], cis["posix"], means["lcu"], cis["lcu"], means["ssb"], cis["ssb"], sp)
	}
	tw.Flush()
	fmt.Fprintf(w, "geometric-mean LCU speedup over posix: %.3fx (paper: ~1.02x; fluidanimate +7.4%%, radiosity negative)\n",
		stats.GeoMean(speedups))

	if c.FLTSlots > 0 {
		xs := cycles[fltBase:]
		fmt.Fprintf(w, "FLT ablation — radiosity with %d-slot FLT: %.0f±%.0f cycles (%.3fx vs posix; Section IV-C biasing restored)\n",
			c.FLTSlots, stats.Mean(xs), stats.CI95(xs), radiosityPosix/stats.Mean(xs))
	}
	fmt.Fprintln(w)
}
