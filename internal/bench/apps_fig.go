package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fairrw/internal/apps"
	"fairrw/internal/core"
	"fairrw/internal/machine"
	"fairrw/internal/ssb"
	"fairrw/internal/stats"
)

// Fig13Runs is the number of seeds per configuration (the paper reports a
// 95% confidence interval over several runs).
var Fig13Runs = 5

// Fig13Apps lists the applications with the paper's thread counts.
var Fig13Apps = []struct {
	Name    string
	Threads int
}{
	{"fluidanimate", 32},
	{"cholesky", 16},
	{"radiosity", 16},
}

// Fig13Locks are the compared lock models.
var Fig13Locks = []string{"posix", "lcu", "ssb"}

// FLTSlots configures the optional Free Lock Table ablation appended to
// Figure 13 when > 0.
var FLTSlots = 4

func runApp(app string, threads int, lock string, flt int, seed int64) float64 {
	m := machine.ModelA()
	switch lock {
	case "lcu":
		core.New(m, core.Options{FLTSize: flt})
	case "ssb":
		ssb.New(m, ssb.Options{})
	}
	cycles := apps.Run(m, apps.Config{App: app, Lock: lock, Threads: threads, Seed: seed})
	return float64(cycles)
}

// Fig13 regenerates Figure 13: application execution time (model A) with
// 95% confidence intervals, plus the paper's speedup commentary and the
// FLT ablation for radiosity (Section IV-C).
func Fig13(w io.Writer) {
	fmt.Fprintln(w, "Figure 13 — application execution time (cycles, model A, mean ± 95% CI)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tthreads\tposix\tlcu\tssb\tlcu speedup")
	var speedups []float64
	radiosityPosix := 0.0
	for _, a := range Fig13Apps {
		means := map[string]float64{}
		cis := map[string]float64{}
		for _, lock := range Fig13Locks {
			var xs []float64
			for r := 0; r < Fig13Runs; r++ {
				xs = append(xs, runApp(a.Name, a.Threads, lock, 0, int64(1000+r*77)))
			}
			means[lock] = stats.Mean(xs)
			cis[lock] = stats.CI95(xs)
		}
		sp := means["posix"] / means["lcu"]
		speedups = append(speedups, sp)
		if a.Name == "radiosity" {
			radiosityPosix = means["posix"]
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f±%.0f\t%.0f±%.0f\t%.0f±%.0f\t%.3fx\n",
			a.Name, a.Threads,
			means["posix"], cis["posix"], means["lcu"], cis["lcu"], means["ssb"], cis["ssb"], sp)
	}
	tw.Flush()
	fmt.Fprintf(w, "geometric-mean LCU speedup over posix: %.3fx (paper: ~1.02x; fluidanimate +7.4%%, radiosity negative)\n",
		stats.GeoMean(speedups))

	if FLTSlots > 0 {
		var xs []float64
		for r := 0; r < Fig13Runs; r++ {
			xs = append(xs, runApp("radiosity", 16, "lcu", FLTSlots, int64(1000+r*77)))
		}
		fmt.Fprintf(w, "FLT ablation — radiosity with %d-slot FLT: %.0f±%.0f cycles (%.3fx vs posix; Section IV-C biasing restored)\n",
			FLTSlots, stats.Mean(xs), stats.CI95(xs), radiosityPosix/stats.Mean(xs))
	}
	fmt.Fprintln(w)
}
