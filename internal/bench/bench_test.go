package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1Renders(t *testing.T) {
	var b bytes.Buffer
	Table1(&b)
	out := b.String()
	for _, want := range []string{"LCU+LRT", "QOLB", "SSB", "direct"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestTable8Renders(t *testing.T) {
	var b bytes.Buffer
	Table8(&b)
	out := b.String()
	for _, want := range []string{"186", "315", "8+2", "16-way"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 8 missing %q", want)
		}
	}
}

func TestFig9SmallRenders(t *testing.T) {
	c := Default()
	c.Iters = 400
	c.Fig9Threads = []int{4}
	var b bytes.Buffer
	c.Fig9(&b, "A")
	if !strings.Contains(b.String(), "lcu-100%w") {
		t.Fatal("figure 9 header missing")
	}
	if !strings.Contains(b.String(), "advantage") {
		t.Fatal("figure 9 summary missing")
	}
}

func TestFig13SmallRenders(t *testing.T) {
	c := Default()
	c.Fig13Runs = 2
	c.Fig13Apps = c.Fig13Apps[1:2] // cholesky only: fastest
	c.FLTSlots = 0
	var b bytes.Buffer
	c.Fig13(&b)
	if !strings.Contains(b.String(), "cholesky") {
		t.Fatal("figure 13 row missing")
	}
	if !strings.Contains(b.String(), "±") {
		t.Fatal("figure 13 confidence interval missing")
	}
}
