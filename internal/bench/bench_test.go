package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1Renders(t *testing.T) {
	var b bytes.Buffer
	Table1(&b)
	out := b.String()
	for _, want := range []string{"LCU+LRT", "QOLB", "SSB", "direct"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestTable8Renders(t *testing.T) {
	var b bytes.Buffer
	Table8(&b)
	out := b.String()
	for _, want := range []string{"186", "315", "8+2", "16-way"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 8 missing %q", want)
		}
	}
}

func TestFig9SmallRenders(t *testing.T) {
	old := Iters
	Iters = 400
	defer func() { Iters = old }()
	oldT := Fig9Threads
	Fig9Threads = []int{4}
	defer func() { Fig9Threads = oldT }()
	var b bytes.Buffer
	Fig9(&b, "A")
	if !strings.Contains(b.String(), "lcu-100%w") {
		t.Fatal("figure 9 header missing")
	}
	if !strings.Contains(b.String(), "advantage") {
		t.Fatal("figure 9 summary missing")
	}
}

func TestFig13SmallRenders(t *testing.T) {
	oldR := Fig13Runs
	Fig13Runs = 2
	defer func() { Fig13Runs = oldR }()
	oldA := Fig13Apps
	Fig13Apps = Fig13Apps[1:2] // cholesky only: fastest
	defer func() { Fig13Apps = oldA }()
	oldF := FLTSlots
	FLTSlots = 0
	defer func() { FLTSlots = oldF }()
	var b bytes.Buffer
	Fig13(&b)
	if !strings.Contains(b.String(), "cholesky") {
		t.Fatal("figure 13 row missing")
	}
	if !strings.Contains(b.String(), "±") {
		t.Fatal("figure 13 confidence interval missing")
	}
}
