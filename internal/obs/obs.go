// Package obs is the simulator's observability layer: a deterministic
// per-run event capture plus cycle-binned metrics, exportable as Chrome
// trace-event JSON (viewable in Perfetto), structured metrics JSON, and a
// plain-text flight recorder for wedged-state debugging.
//
// The layer is zero-overhead when disabled: every instrumented call site
// holds a *Capture pointer and checks it for nil before doing anything, so
// a run without tracing pays one predictable branch per site and performs
// no allocation. When enabled, each simulated machine (kernel) owns its
// own Capture; records are appended in kernel event order, which is
// deterministic, so a sweep collected in configuration order produces
// byte-identical output at any worker count.
//
// Import discipline: obs depends only on internal/stats and the standard
// library (cycles travel as plain uint64, not sim.Time), so internal/sim
// and everything above it may depend on obs without cycles.
package obs

// Kind classifies one recorded event.
type Kind uint8

const (
	// KReq: an LCU (or SSB core side) issued a lock REQUEST.
	KReq Kind = iota
	// KEnq: the requestor learned it is enqueued (WAIT ack).
	KEnq
	// KGrant: a lock grant arrived at the requesting LCU / core.
	KGrant
	// KAcq: a software thread completed a lock acquisition.
	KAcq
	// KUnlock: a software thread released a lock.
	KUnlock
	// KRel: a RELEASE message was sent toward the lock's home.
	KRel
	// KXfer: a direct LCU-to-LCU lock transfer was initiated.
	KXfer
	// KRetry: a request was RETRYed (LCU) — the software must re-issue.
	KRetry
	// KNack: an SSB acquire attempt was refused at the home bank.
	KNack
	// KTimeout: a grant timer fired (suspended/migrated requestor).
	KTimeout
	// KFwdReq: an enqueue was forwarded to a queue tail.
	KFwdReq
	// KFwdRel: a release was forwarded through the queue (migration).
	KFwdRel
	// KRelDone: a release was acknowledged complete.
	KRelDone
	// KLRTReq: a REQUEST arrived at the home LRT / SSB bank.
	KLRTReq
	// KLRTGrant: the LRT granted the lock directly.
	KLRTGrant
	// KLRTRel: a RELEASE arrived at the home LRT / SSB bank.
	KLRTRel
	// KLRTHead: a head-update notification arrived at the LRT.
	KLRTHead
	// KPreempt: the scheduler preempted a thread at quantum end.
	KPreempt
	// KMigrate: a thread migrated to another core.
	KMigrate
	// KCacheRd: a coherent read miss completed (aux = latency).
	KCacheRd
	// KCacheOwn: an exclusive-ownership transaction completed (aux = latency).
	KCacheOwn
	// KKernel: a raw simulation-kernel event dispatch (very verbose).
	KKernel
)

// Record is one captured event: 32 bytes, appended by value.
type Record struct {
	Cycle uint64 // virtual time of the event
	Lock  uint64 // lock (or cache line) address; 0 when not applicable
	Tid   uint64 // software thread id; 0 when not applicable
	Aux   uint64 // kind-specific detail (latency, flags, target core...)
	Node  int32  // track: CoreNode/LRTNode/KernelTrack
	Kind  Kind
}

// Track numbering: cores occupy [0, lrtBase), LRTs [lrtBase, ...), and the
// kernel gets a single dedicated track.
const (
	lrtBase     = 1000
	KernelTrack = 3000
)

// CoreNode returns the track id for core i.
func CoreNode(i int) int32 { return int32(i) }

// LRTNode returns the track id for LRT (or SSB bank) i.
func LRTNode(i int) int32 { return lrtBase + int32(i) }

// Options selects what a Capture records.
type Options struct {
	// Records enables the event log (required for trace export).
	Records bool
	// Metrics enables histograms, link occupancy and queue-depth series.
	Metrics bool
	// Kernel additionally logs every simulation-kernel event dispatch.
	// Extremely verbose; off by default even when Records is on.
	Kernel bool
	// Cache additionally logs cache-transaction boundaries (misses and
	// ownership transfers).
	Cache bool
	// MaxRecords caps the event log per run; excess events are counted in
	// Capture.Dropped rather than stored. 0 selects a default.
	MaxRecords int
	// BinCycles is the metrics time-series bin width. 0 selects a default.
	BinCycles uint64
}

// Enabled reports whether the options ask for any capture at all.
func (o Options) Enabled() bool { return o.Records || o.Metrics }

// Meta describes the machine a Capture observes, for track naming.
type Meta struct {
	Name  string // run label, e.g. "B/ssb t=32 w=100%"
	Cores int
	LRTs  int
	Links []string // link names in topology order (index = link ID)
}

// Capture is the per-run event and metrics buffer. It is not safe for
// concurrent use; each simulated machine owns exactly one.
type Capture struct {
	Opt  Options
	Meta Meta

	Recs []Record
	// Dropped counts records discarded once Recs reached MaxRecords.
	Dropped uint64

	// M holds the metrics recorder, nil unless Opt.Metrics.
	M *Metrics
}

const defaultMaxRecords = 1 << 18

// New builds a Capture for a machine described by meta.
func New(opt Options, meta Meta) *Capture {
	if opt.MaxRecords == 0 {
		opt.MaxRecords = defaultMaxRecords
	}
	if opt.BinCycles == 0 {
		opt.BinCycles = 10_000
	}
	c := &Capture{Opt: opt, Meta: meta}
	if opt.Metrics {
		c.M = newMetrics(opt.BinCycles, meta.Links)
	}
	return c
}

// Rec appends one event record (when the event log is enabled).
func (c *Capture) Rec(cycle uint64, node int32, k Kind, lock, tid, aux uint64) {
	if !c.Opt.Records {
		return
	}
	if len(c.Recs) >= c.Opt.MaxRecords {
		c.Dropped++
		return
	}
	c.Recs = append(c.Recs, Record{Cycle: cycle, Lock: lock, Tid: tid, Aux: aux, Node: node, Kind: k})
}

// KernelEvent records one raw kernel event dispatch (gated on Opt.Kernel).
func (c *Capture) KernelEvent(cycle uint64, kind byte) {
	if !c.Opt.Kernel {
		return
	}
	c.Rec(cycle, KernelTrack, KKernel, 0, 0, uint64(kind))
}

// CacheEvent records a cache-transaction boundary (gated on Opt.Cache).
// lat is the transaction's total latency; the transaction started at
// cycle and completes at cycle+lat.
func (c *Capture) CacheEvent(cycle uint64, core int, k Kind, line, lat uint64) {
	if !c.Opt.Cache {
		return
	}
	c.Rec(cycle, CoreNode(core), k, line, 0, lat)
}

// LockAcquired records a completed lock acquisition: the thread waited
// `waited` cycles between first request and entry. Aux packs the waited
// time and the access mode (bit 0: write).
func (c *Capture) LockAcquired(cycle uint64, core int, tid, lock, waited uint64, write bool) {
	var w uint64
	if write {
		w = 1
	}
	c.Rec(cycle, CoreNode(core), KAcq, lock, tid, waited<<1|w)
	if c.M != nil {
		c.M.Acquire.Add(waited)
	}
}

// Unlocked records a lock release by the software thread.
func (c *Capture) Unlocked(cycle uint64, core int, tid, lock uint64) {
	c.Rec(cycle, CoreNode(core), KUnlock, lock, tid, 0)
}

// TransferStart marks the beginning of a lock hand-off (release or direct
// transfer initiated); TransferEnd on the same lock closes the interval
// into the transfer-time histogram.
func (c *Capture) TransferStart(cycle, lock uint64) {
	if c.M != nil {
		c.M.transferStart(cycle, lock)
	}
}

// TransferEnd closes a transfer interval opened by TransferStart.
func (c *Capture) TransferEnd(cycle, lock uint64) {
	if c.M != nil {
		c.M.transferEnd(cycle, lock)
	}
}

// WaitStart marks tid as waiting in some lock queue (grows the live
// queue-depth series); WaitEnd removes it. Both are idempotent per tid.
func (c *Capture) WaitStart(cycle, tid uint64) {
	if c.M != nil {
		c.M.waitStart(cycle, tid)
	}
}

// WaitEnd marks tid as no longer waiting.
func (c *Capture) WaitEnd(cycle, tid uint64) {
	if c.M != nil {
		c.M.waitEnd(cycle, tid)
	}
}

// LinkCross charges one message crossing link id at the given cycle: busy
// is the serialization occupancy, wait the queueing delay behind earlier
// messages.
func (c *Capture) LinkCross(id int, cycle, busy, wait uint64) {
	if c.M != nil {
		c.M.linkCross(id, cycle, busy, wait)
	}
}

// Collector accumulates the Captures of a sweep in configuration order, so
// serialized output is deterministic at any worker count.
type Collector struct {
	// Opt is applied to every run the harness attaches a Capture to.
	Opt Options

	Caps []*Capture
}

// Add appends one run's capture (nil captures are skipped).
func (c *Collector) Add(cap *Capture) {
	if cap != nil {
		c.Caps = append(c.Caps, cap)
	}
}
