package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestOptionsEnabled(t *testing.T) {
	if (Options{}).Enabled() {
		t.Error("zero Options must be disabled")
	}
	if !(Options{Records: true}).Enabled() {
		t.Error("Records must enable capture")
	}
	if !(Options{Metrics: true}).Enabled() {
		t.Error("Metrics must enable capture")
	}
	if (Options{Kernel: true, Cache: true}).Enabled() {
		t.Error("Kernel/Cache are refinements; alone they enable nothing")
	}
}

func TestCaptureRecGatingAndCap(t *testing.T) {
	off := New(Options{Metrics: true}, Meta{})
	off.Rec(1, 0, KReq, 1, 1, 0)
	if len(off.Recs) != 0 {
		t.Fatalf("Records disabled but %d records stored", len(off.Recs))
	}

	c := New(Options{Records: true, MaxRecords: 3}, Meta{})
	for i := 0; i < 10; i++ {
		c.Rec(uint64(i), 0, KReq, 1, 1, 0)
	}
	if len(c.Recs) != 3 {
		t.Fatalf("got %d records, want 3 (cap)", len(c.Recs))
	}
	if c.Dropped != 7 {
		t.Fatalf("got %d dropped, want 7", c.Dropped)
	}

	// Kernel and cache events are off by default even with Records on.
	c2 := New(Options{Records: true}, Meta{})
	c2.KernelEvent(1, 'd')
	c2.CacheEvent(1, 0, KCacheRd, 0x40, 10)
	if len(c2.Recs) != 0 {
		t.Fatalf("kernel/cache events recorded without their gates: %d", len(c2.Recs))
	}
}

func TestLockAcquiredAuxPacking(t *testing.T) {
	c := New(Options{Records: true, Metrics: true}, Meta{})
	c.LockAcquired(500, 2, 7, 0x99, 123, true)
	c.LockAcquired(600, 3, 8, 0x99, 0, false)
	if len(c.Recs) != 2 {
		t.Fatalf("got %d records, want 2", len(c.Recs))
	}
	r := c.Recs[0]
	if r.Aux>>1 != 123 || r.Aux&1 != 1 {
		t.Errorf("write acquire aux = %#x, want waited 123 | write bit", r.Aux)
	}
	if r2 := c.Recs[1]; r2.Aux != 0 {
		t.Errorf("read acquire with no wait: aux = %#x, want 0", r2.Aux)
	}
	if got := c.M.Acquire.Count(); got != 2 {
		t.Errorf("acquire histogram count = %d, want 2", got)
	}
}

func TestSamplerDeterministicCompaction(t *testing.T) {
	run := func() []DepthSample {
		var s Sampler
		for i := 0; i < 100_000; i++ {
			s.Add(uint64(i), i%17)
		}
		return s.Samples
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) > samplerCap {
		t.Fatalf("sample count %d out of (0, %d]", len(a), samplerCap)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sample count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Cycles must be strictly increasing (one observation per cycle here).
	for i := 1; i < len(a); i++ {
		if a[i].Cycle <= a[i-1].Cycle {
			t.Fatalf("samples out of order at %d: %v then %v", i, a[i-1], a[i])
		}
	}
}

func TestMetricsTransferAndWait(t *testing.T) {
	m := newMetrics(1000, nil)

	m.transferEnd(50, 0x10) // unmatched end: ignored
	if m.Transfer.Count() != 0 {
		t.Fatal("unmatched transferEnd must not count")
	}
	m.transferStart(100, 0x10)
	m.transferEnd(140, 0x10)
	m.transferEnd(150, 0x10) // interval already closed
	if got := m.Transfer.Count(); got != 1 {
		t.Fatalf("transfer count = %d, want 1", got)
	}
	if got := m.Transfer.Max(); got != 40 {
		t.Fatalf("transfer max = %d, want 40", got)
	}

	m.waitStart(10, 1)
	m.waitStart(11, 1) // idempotent
	m.waitStart(12, 2)
	m.waitEnd(20, 3) // unknown tid: no-op
	m.waitEnd(21, 1)
	if m.depth != 1 {
		t.Fatalf("depth = %d, want 1 (tid 2 still waiting)", m.depth)
	}
	want := []DepthSample{{10, 1}, {12, 2}, {21, 1}}
	if len(m.Depth.Samples) != len(want) {
		t.Fatalf("depth samples = %v, want %v", m.Depth.Samples, want)
	}
	for i, s := range want {
		if m.Depth.Samples[i] != s {
			t.Fatalf("depth samples = %v, want %v", m.Depth.Samples, want)
		}
	}
}

func TestLinkSeriesBinning(t *testing.T) {
	m := newMetrics(1000, []string{"l0", "l1"})
	m.linkCross(0, 100, 8, 0)
	m.linkCross(0, 900, 8, 4)
	m.linkCross(0, 1500, 8, 0)
	m.linkCross(-1, 100, 8, 0) // out of range: ignored
	m.linkCross(2, 100, 8, 0)
	ls := m.Links[0]
	if len(ls.Bins) != 2 {
		t.Fatalf("bins = %v, want 2 bins", ls.Bins)
	}
	if b := ls.Bins[0]; b.Bin != 0 || b.Busy != 16 || b.Wait != 4 || b.Msgs != 2 {
		t.Fatalf("bin 0 = %+v", b)
	}
	if b := ls.Bins[1]; b.Bin != 1 || b.Busy != 8 || b.Msgs != 1 {
		t.Fatalf("bin 1 = %+v", b)
	}
	if len(m.Links[1].Bins) != 0 {
		t.Fatal("untouched link grew bins")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KReq; k <= KKernel; k++ {
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// synthetic builds a small capture exercising every export path.
func synthetic() *Capture {
	c := New(Options{Records: true, Metrics: true, Cache: true},
		Meta{Name: "test run", Cores: 2, LRTs: 1, Links: []string{"hub"}})
	c.Rec(10, CoreNode(0), KReq, 0x80, 1, 1)
	c.WaitStart(10, 1)
	c.TransferStart(15, 0x80)
	c.Rec(40, LRTNode(0), KLRTGrant, 0x80, 1, 0)
	c.TransferEnd(60, 0x80)
	c.WaitEnd(60, 1)
	c.LockAcquired(60, 0, 1, 0x80, 50, true)
	c.Rec(100, CoreNode(0), KUnlock, 0x80, 1, 0)
	c.Rec(110, CoreNode(1), KUnlock, 0x80, 9, 0) // unpaired unlock
	c.CacheEvent(120, 1, KCacheRd, 0x40, 180)
	c.LinkCross(0, 50, 8, 2)
	return c
}

func TestWriteChromeValidJSON(t *testing.T) {
	col := &Collector{}
	col.Add(synthetic())
	col.Add(nil) // skipped
	var b bytes.Buffer
	if err := col.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.Bytes())
	}
	byName := map[string]int{}
	events := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			byName[e.Args.Name]++ // track names live in args
		} else {
			byName[e.Name]++
			events++
		}
	}
	if events == 0 {
		t.Fatal("no non-metadata events")
	}
	for _, want := range []string{"core 0", "lrt 0", "kernel", "wait W", "cs W", "REQ", "LRT_GRANT", "CACHE_RD", "link hub", "lock queue depth"} {
		if byName[want] == 0 {
			t.Errorf("trace has no %q event; names: %v", want, byName)
		}
	}
}

func TestWriteMetricsValidJSON(t *testing.T) {
	col := &Collector{}
	col.Add(synthetic())
	var b bytes.Buffer
	if err := col.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Name     string `json:"name"`
			Acquire  struct{ Count uint64 }
			Transfer struct{ Count uint64 }
			Links    []struct {
				Name string    `json:"name"`
				Bins []LinkBin `json:"bins"`
			} `json:"links"`
			Records int `json:"records"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.Bytes())
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(doc.Runs))
	}
	r := doc.Runs[0]
	if r.Name != "test run" || r.Acquire.Count != 1 || r.Transfer.Count != 1 || r.Records == 0 {
		t.Fatalf("unexpected run summary: %+v", r)
	}
	if len(r.Links) != 1 || r.Links[0].Name != "hub" || len(r.Links[0].Bins) != 1 {
		t.Fatalf("unexpected links: %+v", r.Links)
	}
}

func TestWriteFlight(t *testing.T) {
	c := New(Options{Records: true, MaxRecords: 4}, Meta{})
	for i := 0; i < 6; i++ {
		c.Rec(uint64(i*10), CoreNode(i%2), KReq, 0x80, uint64(i), 0)
	}
	var b bytes.Buffer
	c.WriteFlight(&b, 2)
	out := b.String()
	if !strings.Contains(out, "2 earlier records elided") {
		t.Errorf("missing elision header:\n%s", out)
	}
	if !strings.Contains(out, "REQ") || !strings.Contains(out, "core1") {
		t.Errorf("missing record rendering:\n%s", out)
	}
	if !strings.Contains(out, "2 records dropped at the 4-record cap") {
		t.Errorf("missing dropped footer:\n%s", out)
	}
	if got := strings.Count(out, "REQ"); got != 2 {
		t.Errorf("got %d record lines, want 2:\n%s", got, out)
	}
}
