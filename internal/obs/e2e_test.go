package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"fairrw/internal/microbench"
	"fairrw/internal/obs"
)

// capture runs a small contended microbenchmark with tracing on.
func capture(t *testing.T, lock string) *obs.Capture {
	t.Helper()
	res := microbench.Run(microbench.Config{
		Model: "A", Lock: lock, Threads: 8, WritePct: 50,
		TotalIters: 400, Seed: 42,
		Obs: obs.Options{Records: true, Metrics: true, Cache: true},
	})
	if res.Err != nil {
		t.Fatalf("microbench: %v", res.Err)
	}
	if res.Obs == nil {
		t.Fatal("Obs requested but Result.Obs is nil")
	}
	return res.Obs
}

// TestEndToEndLCU drives the full stack — machine, LCU/LRT device,
// coherence, links — under tracing and checks the capture's shape.
func TestEndToEndLCU(t *testing.T) {
	c := capture(t, "lcu")
	if len(c.Recs) == 0 {
		t.Fatal("no records captured")
	}
	// Kernel event order implies nondecreasing cycles.
	kinds := map[obs.Kind]int{}
	for i, r := range c.Recs {
		kinds[r.Kind]++
		if i > 0 && r.Cycle < c.Recs[i-1].Cycle {
			t.Fatalf("records out of time order at %d: %d after %d", i, r.Cycle, c.Recs[i-1].Cycle)
		}
	}
	for _, k := range []obs.Kind{obs.KReq, obs.KGrant, obs.KAcq, obs.KUnlock, obs.KXfer, obs.KLRTReq} {
		if kinds[k] == 0 {
			t.Errorf("no %v records in an 8-thread contended LCU run; kinds: %v", k, kinds)
		}
	}
	if c.M == nil || c.M.Acquire.Count() == 0 {
		t.Fatal("acquire histogram empty")
	}
	if c.M.Transfer.Count() == 0 {
		t.Fatal("transfer histogram empty")
	}
	links := 0
	for _, ls := range c.M.Links {
		links += len(ls.Bins)
	}
	if links == 0 {
		t.Fatal("no link occupancy recorded")
	}
}

// TestEndToEndSoftwareLock checks the swlocks.Trace wrapper path: MCS is a
// pure software lock, so acquisitions must still appear via the wrapper.
func TestEndToEndSoftwareLock(t *testing.T) {
	c := capture(t, "mcs")
	acq, unl := 0, 0
	for _, r := range c.Recs {
		switch r.Kind {
		case obs.KAcq:
			acq++
		case obs.KUnlock:
			unl++
		}
	}
	if acq == 0 || unl == 0 {
		t.Fatalf("software-lock run recorded %d acquires / %d unlocks, want both > 0", acq, unl)
	}
	if c.M.Acquire.Count() == 0 {
		t.Fatal("acquire histogram empty for software lock")
	}
	// Software locks spin on coherent memory, so cache transactions must
	// show up (the HW-lock path never touches the coherence fabric).
	cache := 0
	for _, r := range c.Recs {
		if r.Kind == obs.KCacheRd || r.Kind == obs.KCacheOwn {
			cache++
		}
	}
	if cache == 0 {
		t.Fatal("no cache-transaction records in a software-lock run")
	}
}

// TestEndToEndDeterministic asserts two identical runs export byte-equal
// traces and metrics.
func TestEndToEndDeterministic(t *testing.T) {
	export := func() ([]byte, []byte) {
		col := &obs.Collector{}
		col.Add(capture(t, "lcu"))
		var tb, mb bytes.Buffer
		if err := col.WriteChrome(&tb); err != nil {
			t.Fatal(err)
		}
		if err := col.WriteMetrics(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes()
	}
	t1, m1 := export()
	t2, m2 := export()
	if !json.Valid(t1) {
		t.Fatal("trace is not valid JSON")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("identical runs exported different traces")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("identical runs exported different metrics")
	}
}
