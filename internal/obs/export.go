package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome renders every collected run as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each run
// becomes one process; cores, LRTs and the kernel get one thread track
// each, interconnect links appear as counter tracks (busy % per time bin)
// derived from the metrics recorder, and lock critical sections and
// acquire waits render as duration spans. Timestamps are simulation
// cycles. The output is byte-deterministic: everything is emitted from
// ordered slices in collection order.
func (c *Collector) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw}
	cw.raw("{\"traceEvents\":[")
	for i, cap := range c.Caps {
		writeRun(cw, i+1, cap)
	}
	cw.raw("\n]}\n")
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

// chromeWriter emits trace events with comma bookkeeping.
type chromeWriter struct {
	w     io.Writer
	first bool
	err   error
}

func (cw *chromeWriter) raw(s string) {
	if cw.err == nil {
		_, cw.err = io.WriteString(cw.w, s)
	}
}

// ev emits one event object given its pre-rendered JSON body.
func (cw *chromeWriter) ev(body string) {
	if cw.err != nil {
		return
	}
	if cw.first {
		cw.raw(",\n")
	} else {
		cw.raw("\n")
		cw.first = true
	}
	cw.raw(body)
}

func q(s string) string { return strconv.Quote(s) }

func writeRun(cw *chromeWriter, pid int, cap *Capture) {
	// Process and thread metadata.
	cw.ev(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`, pid, q(cap.Meta.Name)))
	cw.ev(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`, pid, pid))
	for i := 0; i < cap.Meta.Cores; i++ {
		cw.ev(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			pid, CoreNode(i), q(fmt.Sprintf("core %d", i))))
	}
	for i := 0; i < cap.Meta.LRTs; i++ {
		cw.ev(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			pid, LRTNode(i), q(fmt.Sprintf("lrt %d", i))))
	}
	cw.ev(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"kernel"}}`, pid, KernelTrack))

	// Event records. Acquire/unlock pairs render as "cs" duration spans on
	// the acquiring core's track; the wait preceding an acquire renders as
	// a "wait" span ending at the acquire instant.
	type lockKey struct{ tid, lock uint64 }
	held := map[lockKey]Record{}
	for _, r := range cap.Recs {
		switch r.Kind {
		case KAcq:
			waited, mode := r.Aux>>1, rwMode(r.Aux&1 != 0)
			if waited > 0 {
				cw.ev(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{"tid":%d,"lock":"%#x"}}`,
					pid, r.Node, r.Cycle-waited, waited, q("wait "+mode), r.Tid, r.Lock))
			}
			held[lockKey{r.Tid, r.Lock}] = r
		case KUnlock:
			if a, ok := held[lockKey{r.Tid, r.Lock}]; ok {
				delete(held, lockKey{r.Tid, r.Lock})
				mode := rwMode(a.Aux&1 != 0)
				cw.ev(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{"tid":%d,"lock":"%#x"}}`,
					pid, a.Node, a.Cycle, r.Cycle-a.Cycle, q("cs "+mode), r.Tid, r.Lock))
			} else {
				instant(cw, pid, r)
			}
		case KCacheRd, KCacheOwn:
			cw.ev(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{"line":"%#x"}}`,
				pid, r.Node, r.Cycle, r.Aux, q(r.Kind.String()), r.Lock))
		default:
			instant(cw, pid, r)
		}
	}

	// Counter tracks from the metrics recorder.
	if m := cap.M; m != nil {
		for _, ls := range m.Links {
			for _, b := range ls.Bins {
				busy := float64(b.Busy) / float64(m.BinCycles) * 100
				queued := float64(b.Wait) / float64(m.BinCycles) * 100
				cw.ev(fmt.Sprintf(`{"ph":"C","pid":%d,"ts":%d,"name":%s,"args":{"busy%%":%s,"queued%%":%s}}`,
					pid, b.Bin*m.BinCycles, q("link "+ls.Name), fnum(busy), fnum(queued)))
			}
		}
		for _, s := range m.Depth.Samples {
			cw.ev(fmt.Sprintf(`{"ph":"C","pid":%d,"ts":%d,"name":"lock queue depth","args":{"waiting":%d}}`,
				pid, s.Cycle, s.Depth))
		}
	}
}

func instant(cw *chromeWriter, pid int, r Record) {
	cw.ev(fmt.Sprintf(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"name":%s,"args":{"tid":%d,"lock":"%#x","aux":%d}}`,
		pid, r.Node, r.Cycle, q(r.Kind.String()), r.Tid, r.Lock, r.Aux))
}

func rwMode(write bool) string {
	if write {
		return "W"
	}
	return "R"
}

// fnum formats a float deterministically and compactly for JSON.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
