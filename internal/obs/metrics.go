package obs

import (
	"encoding/json"
	"io"

	"fairrw/internal/stats"
)

// Metrics is the cycle-binned metrics recorder of one run: latency
// histograms, per-link occupancy time series, and a live queue-depth
// sampler. All updates are driven by the (single-goroutine) simulation, so
// no locking is needed and the contents are deterministic.
type Metrics struct {
	BinCycles uint64

	// Acquire is the distribution of cycles threads spent between first
	// requesting a lock and entering the critical section.
	Acquire stats.Histogram
	// Transfer is the distribution of lock hand-off times: release (or
	// direct transfer) initiation to the next grant of the same lock.
	Transfer stats.Histogram

	// Depth samples the number of threads waiting in lock queues.
	Depth Sampler

	// Links holds one binned occupancy series per interconnect link.
	Links []LinkSeries

	lastRel map[uint64]uint64   // lock -> transfer start cycle
	waiting map[uint64]struct{} // tids currently waiting
	depth   int
}

func newMetrics(binCycles uint64, linkNames []string) *Metrics {
	m := &Metrics{
		BinCycles: binCycles,
		lastRel:   make(map[uint64]uint64),
		waiting:   make(map[uint64]struct{}),
	}
	m.Links = make([]LinkSeries, len(linkNames))
	for i, name := range linkNames {
		m.Links[i].Name = name
	}
	return m
}

func (m *Metrics) transferStart(cycle, lock uint64) {
	m.lastRel[lock] = cycle
}

func (m *Metrics) transferEnd(cycle, lock uint64) {
	t0, ok := m.lastRel[lock]
	if !ok {
		return
	}
	delete(m.lastRel, lock)
	if cycle >= t0 {
		m.Transfer.Add(cycle - t0)
	}
}

func (m *Metrics) waitStart(cycle, tid uint64) {
	if _, ok := m.waiting[tid]; ok {
		return
	}
	m.waiting[tid] = struct{}{}
	m.depth++
	m.Depth.Add(cycle, m.depth)
}

func (m *Metrics) waitEnd(cycle, tid uint64) {
	if _, ok := m.waiting[tid]; !ok {
		return
	}
	delete(m.waiting, tid)
	m.depth--
	m.Depth.Add(cycle, m.depth)
}

func (m *Metrics) linkCross(id int, cycle, busy, wait uint64) {
	if id < 0 || id >= len(m.Links) {
		return
	}
	m.Links[id].add(cycle/m.BinCycles, busy, wait)
}

// LinkBin aggregates one link's traffic over one time bin.
type LinkBin struct {
	Bin  uint64 `json:"bin"`  // bin index; start cycle = bin * BinCycles
	Busy uint64 `json:"busy"` // cycles of serialization occupancy charged
	Wait uint64 `json:"wait"` // cycles messages queued behind earlier ones
	Msgs uint64 `json:"msgs"`
}

// LinkSeries is the binned occupancy record of one interconnect link.
// Bins are stored sparsely in increasing time order (simulation time only
// moves forward).
type LinkSeries struct {
	Name string    `json:"name"`
	Bins []LinkBin `json:"bins,omitempty"`
}

func (s *LinkSeries) add(bin, busy, wait uint64) {
	n := len(s.Bins)
	if n == 0 || s.Bins[n-1].Bin != bin {
		s.Bins = append(s.Bins, LinkBin{Bin: bin})
		n++
	}
	b := &s.Bins[n-1]
	b.Busy += busy
	b.Wait += wait
	b.Msgs++
}

// DepthSample is one queue-depth observation.
type DepthSample struct {
	Cycle uint64 `json:"cycle"`
	Depth int    `json:"depth"`
}

// Sampler keeps a bounded, deterministic sample of a time series: it
// records every stride-th observation, and when the buffer fills it drops
// every other retained sample and doubles the stride. The result depends
// only on the observation sequence, never on wall-clock or randomness.
type Sampler struct {
	Samples []DepthSample
	stride  uint64
	skip    uint64
}

const samplerCap = 4096

// Add offers one observation to the sampler.
func (s *Sampler) Add(cycle uint64, depth int) {
	if s.stride == 0 {
		s.stride = 1
	}
	if s.skip > 0 {
		s.skip--
		return
	}
	s.skip = s.stride - 1
	if len(s.Samples) == samplerCap {
		half := s.Samples[:0]
		for i := 0; i < samplerCap; i += 2 {
			half = append(half, s.Samples[i])
		}
		s.Samples = half
		s.stride *= 2
	}
	s.Samples = append(s.Samples, DepthSample{Cycle: cycle, Depth: depth})
}

// histSummary is the serialized form of a latency histogram.
type histSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func summarize(h *stats.Histogram) histSummary {
	return histSummary{
		Count: h.Count(), Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
		P50: h.Percentile(50), P95: h.Percentile(95), P99: h.Percentile(99),
	}
}

// runMetrics is the serialized form of one run's metrics.
type runMetrics struct {
	Name       string        `json:"name"`
	BinCycles  uint64        `json:"bin_cycles"`
	Acquire    histSummary   `json:"acquire"`
	Transfer   histSummary   `json:"transfer"`
	QueueDepth []DepthSample `json:"queue_depth,omitempty"`
	Links      []LinkSeries  `json:"links,omitempty"`
	Records    int           `json:"records"`
	Dropped    uint64        `json:"dropped,omitempty"`
}

// WriteMetrics serializes every collected run's metrics as structured
// JSON. Output is fully deterministic: runs appear in collection order and
// all series are ordered slices.
func (c *Collector) WriteMetrics(w io.Writer) error {
	out := struct {
		Runs []runMetrics `json:"runs"`
	}{Runs: []runMetrics{}}
	for _, cap := range c.Caps {
		if cap.M == nil {
			continue
		}
		m := cap.M
		rm := runMetrics{
			Name:       cap.Meta.Name,
			BinCycles:  m.BinCycles,
			Acquire:    summarize(&m.Acquire),
			Transfer:   summarize(&m.Transfer),
			QueueDepth: m.Depth.Samples,
			Records:    len(cap.Recs),
			Dropped:    cap.Dropped,
		}
		for _, ls := range m.Links {
			if len(ls.Bins) > 0 {
				rm.Links = append(rm.Links, ls)
			}
		}
		out.Runs = append(out.Runs, rm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
