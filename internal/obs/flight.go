package obs

import (
	"fmt"
	"io"
)

// String names the event kind for the flight recorder and trace export.
func (k Kind) String() string {
	switch k {
	case KReq:
		return "REQ"
	case KEnq:
		return "ENQ"
	case KGrant:
		return "GRANT"
	case KAcq:
		return "ACQ"
	case KUnlock:
		return "UNLOCK"
	case KRel:
		return "REL"
	case KXfer:
		return "XFER"
	case KRetry:
		return "RETRY"
	case KNack:
		return "NACK"
	case KTimeout:
		return "TIMEOUT"
	case KFwdReq:
		return "FWD_REQ"
	case KFwdRel:
		return "FWD_REL"
	case KRelDone:
		return "REL_DONE"
	case KLRTReq:
		return "LRT_REQ"
	case KLRTGrant:
		return "LRT_GRANT"
	case KLRTRel:
		return "LRT_REL"
	case KLRTHead:
		return "LRT_HEAD"
	case KPreempt:
		return "PREEMPT"
	case KMigrate:
		return "MIGRATE"
	case KCacheRd:
		return "CACHE_RD"
	case KCacheOwn:
		return "CACHE_OWN"
	case KKernel:
		return "KERNEL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// trackName renders a record's track for human consumption.
func trackName(node int32) string {
	switch {
	case node == KernelTrack:
		return "kernel"
	case node >= lrtBase:
		return fmt.Sprintf("lrt%d", node-lrtBase)
	default:
		return fmt.Sprintf("core%d", node)
	}
}

// WriteFlight renders the last lastN captured records (0 = all) as text:
// the flight recorder for debugging wedged protocol states, complementing
// core.DumpState's structural snapshot with the event history that led
// there.
func (c *Capture) WriteFlight(w io.Writer, lastN int) {
	recs := c.Recs
	if lastN > 0 && len(recs) > lastN {
		fmt.Fprintf(w, "... %d earlier records elided ...\n", len(recs)-lastN)
		recs = recs[len(recs)-lastN:]
	}
	for _, r := range recs {
		fmt.Fprintf(w, "[%10d] %-7s %-9s t%-4d %#x aux=%d\n",
			r.Cycle, trackName(r.Node), r.Kind, r.Tid, r.Lock, r.Aux)
	}
	if c.Dropped > 0 {
		fmt.Fprintf(w, "(%d records dropped at the %d-record cap)\n", c.Dropped, c.Opt.MaxRecords)
	}
}
