// Package sweep provides a deterministic worker-pool runner for
// embarrassingly parallel simulation sweeps.
//
// Every figure of the paper's evaluation is a sweep of independent,
// deterministic simulations: each configuration builds its own
// machine.Machine and sim.Kernel, so configurations share no state and can
// run concurrently. The Runner fans job indices out across a fixed pool of
// goroutines and delivers results in index order, so rendering code that
// consumes them produces output byte-identical to a serial loop.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner is a worker pool for index-addressed jobs. The zero value runs
// with one worker per available CPU (GOMAXPROCS).
type Runner struct {
	// Workers is the pool size: 0 means GOMAXPROCS, 1 runs jobs serially
	// on the calling goroutine (useful as a determinism baseline).
	Workers int
}

// workers resolves the effective pool size for n jobs.
func (r Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes job(i) for every i in [0, n), fanning indices across the
// pool. It returns when all jobs have completed. A panic in any job is
// re-raised on the calling goroutine after the pool drains, so sweeps fail
// the same way a serial loop would.
func (r Runner) Run(n int, job func(i int)) {
	r.RunWorkers(n, func(_, i int) { job(i) })
}

// RunWorkers is Run for jobs that keep per-worker state: job additionally
// receives the worker index w, and no two concurrent calls share a w, so
// the job may reuse state indexed by w — typically a machine that is Reset
// between runs. Worker indices are dense in [0, min(Workers, n)).
func (r Runner) RunWorkers(n int, job func(w, i int)) {
	if n <= 0 {
		return
	}
	w := r.workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			job(0, i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicked = p })
					// Starve the pool so remaining workers drain quickly.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(g, i)
			}
		}(g)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs job(i) for every i in [0, n) across r's pool and returns the
// results in index order, regardless of completion order.
func Map[T any](r Runner, n int, job func(i int) T) []T {
	out := make([]T, n)
	r.Run(n, func(i int) { out[i] = job(i) })
	return out
}

// MapWorkers is Map with per-worker state: see RunWorkers.
func MapWorkers[T any](r Runner, n int, job func(w, i int) T) []T {
	out := make([]T, n)
	r.RunWorkers(n, func(w, i int) { out[i] = job(w, i) })
	return out
}
