// Package sweep provides a deterministic worker-pool runner for
// embarrassingly parallel simulation sweeps.
//
// Every figure of the paper's evaluation is a sweep of independent,
// deterministic simulations: each configuration builds its own
// machine.Machine and sim.Kernel, so configurations share no state and can
// run concurrently. The Runner fans job indices out across a fixed pool of
// goroutines and delivers results in index order, so rendering code that
// consumes them produces output byte-identical to a serial loop.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner is a worker pool for index-addressed jobs. The zero value runs
// with one worker per available CPU (GOMAXPROCS).
type Runner struct {
	// Workers is the pool size: 0 means GOMAXPROCS, 1 runs jobs serially
	// on the calling goroutine (useful as a determinism baseline).
	Workers int
}

// workers resolves the effective pool size for n jobs.
func (r Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes job(i) for every i in [0, n), fanning indices across the
// pool. It returns when all jobs have completed. A panic in any job is
// re-raised on the calling goroutine after the pool drains, so sweeps fail
// the same way a serial loop would.
func (r Runner) Run(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	w := r.workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicked = p })
					// Starve the pool so remaining workers drain quickly.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs job(i) for every i in [0, n) across r's pool and returns the
// results in index order, regardless of completion order.
func Map[T any](r Runner, n int, job func(i int) T) []T {
	out := make([]T, n)
	r.Run(n, func(i int) { out[i] = job(i) })
	return out
}
