package sweep

import (
	"strings"
	"sync/atomic"
	"testing"

	"fairrw/internal/microbench"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		r := Runner{Workers: workers}
		got := Map(r, 57, func(i int) int { return i * i })
		if len(got) != 57 {
			t.Fatalf("workers=%d: len = %d, want 57", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	var calls atomic.Int64
	Runner{}.Run(0, func(int) { calls.Add(1) })
	Runner{}.Run(-3, func(int) { calls.Add(1) })
	if calls.Load() != 0 {
		t.Fatalf("job ran %d times for empty sweeps", calls.Load())
	}
}

func TestRunEachIndexOnce(t *testing.T) {
	const n = 200
	counts := make([]atomic.Int64, n)
	Runner{Workers: 7}.Run(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic in job did not propagate")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", p)
		}
	}()
	Runner{Workers: 4}.Run(32, func(i int) {
		if i == 13 {
			panic("boom at 13")
		}
	})
}

// TestParallelSimulationsDeterministic runs the same simulation config
// concurrently on every worker and serially, asserting identical results:
// each job owns its machine and kernel, so the sweep must be race-free and
// bit-reproducible. Run under -race in CI.
func TestParallelSimulationsDeterministic(t *testing.T) {
	cfg := microbench.Config{
		Model: "A", Lock: "lcu", Threads: 4, WritePct: 75,
		TotalIters: 200, Seed: 42,
	}
	serial := microbench.Run(cfg)
	results := Map(Runner{Workers: 8}, 8, func(i int) microbench.Result {
		return microbench.Run(cfg)
	})
	for i, r := range results {
		if r.TotalCycles != serial.TotalCycles || r.CyclesPerCS != serial.CyclesPerCS {
			t.Fatalf("parallel run %d diverged: %v cycles vs serial %v",
				i, r.TotalCycles, serial.TotalCycles)
		}
	}
}
