// Package memmodel provides the simulated physical memory: a paged
// word-granular backing store, a bump allocator for workloads, and the
// address-to-home-controller interleaving used by the directory, the LRT
// and the SSB.
package memmodel

import "fmt"

// LineShift is log2 of the coherence line size (64 bytes).
const LineShift = 6

// LineSize is the coherence line size in bytes.
const LineSize = 1 << LineShift

// PageShift is log2 of the backing-store page size in bytes. Pages hold
// 512 words (4 KB), so a page index is addr >> PageShift and the word
// slot within it is (addr >> 3) & (PageWords - 1).
const PageShift = 12

// PageWords is the number of 8-byte words per backing-store page.
const PageWords = 1 << (PageShift - 3)

// Addr is a simulated physical address.
type Addr = uint64

// LineOf returns the line-aligned address containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// PageOf returns the page index containing a.
func PageOf(a Addr) uint64 { return a >> PageShift }

// page is one fixed backing-store page of 512 words.
type page [PageWords]uint64

// Memory is the simulated physical memory of one machine.
//
// The heap — everything handed out by Alloc, which is all addresses the
// workloads ever touch — is backed by a flat table of fixed 4 KB pages, so
// the word load/store hot path is two array indexations with no hashing
// and no allocation at steady state. Addresses outside the heap (or not
// 8-byte aligned) fall back to a sparse overflow map; nothing on the
// simulated fast path uses them.
type Memory struct {
	pages    []*page         // indexed by PageOf(addr), covers [0, brk) rounded up
	overflow map[Addr]uint64 // out-of-heap or unaligned words (lazily created)
	brk      Addr
	numHome  int
}

// heapBase is the initial brk: the heap starts at a non-zero base so that
// address 0 can serve as a nil sentinel.
const heapBase Addr = 0x1000

// addrSpace bounds the simulated physical address space. The bump
// allocator refuses to cross it, so page indices stay small and brk
// arithmetic cannot wrap.
const addrSpace Addr = 1 << 40 // 1 TB

// New creates a memory with the given number of home controllers.
func New(numHome int) *Memory {
	if numHome <= 0 {
		panic("memmodel: need at least one home controller")
	}
	m := &Memory{brk: heapBase, numHome: numHome}
	m.growPages()
	return m
}

// NumHomes returns the number of home memory controllers.
func (m *Memory) NumHomes() int { return m.numHome }

// HomeOf returns the memory controller index owning address a. Lines are
// interleaved across controllers, as in the evaluated systems.
func (m *Memory) HomeOf(a Addr) int {
	return int((a >> LineShift) % uint64(m.numHome))
}

// growPages extends (and materializes) the page table to cover [0, brk).
// Pages are allocated eagerly so that Read/Write never allocate for heap
// addresses. Overflow words that the new pages now cover migrate into
// them, so a word written before the heap grew past it stays readable
// through the paged fast path.
func (m *Memory) growPages() {
	want := int(PageOf(m.brk-1)) + 1
	for len(m.pages) < want {
		m.pages = append(m.pages, new(page))
	}
	if len(m.overflow) == 0 {
		return
	}
	for a, v := range m.overflow {
		if m.inHeap(a) {
			m.pages[PageOf(a)][(a>>3)&(PageWords-1)] = v
			delete(m.overflow, a)
		}
	}
}

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the base address. Allocation is simulation-level bookkeeping only; it
// costs no cycles.
//
// A zero size panics: the caller would receive an address aliasing the
// next allocation, a silent sharing bug.
func (m *Memory) Alloc(size, align Addr) Addr {
	if size == 0 {
		panic("memmodel: Alloc(size=0) would alias the next allocation")
	}
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("memmodel: alignment %d is not a power of two", align))
	}
	base := (m.brk + align - 1) &^ (align - 1)
	end := base + size
	if base < m.brk || end < base || end > addrSpace {
		panic(fmt.Sprintf("memmodel: Alloc(%d, %d) exhausts the %d-byte address space (brk=%#x)",
			size, align, addrSpace, m.brk))
	}
	m.brk = end
	m.growPages()
	return base
}

// AllocWords reserves n 8-byte words and returns the base address.
func (m *Memory) AllocWords(n int) Addr {
	return m.Alloc(Addr(n)*8, 8)
}

// AllocLine reserves one full line-aligned coherence line, so the returned
// word shares its line with nothing else. Queue-lock nodes use this to get
// private spin lines.
func (m *Memory) AllocLine() Addr {
	return m.Alloc(LineSize, LineSize)
}

// inHeap reports whether a is an aligned word covered by the page table.
func (m *Memory) inHeap(a Addr) bool {
	return a&7 == 0 && PageOf(a) < uint64(len(m.pages))
}

// Read returns the 8-byte word at address a (zero if never written).
func (m *Memory) Read(a Addr) uint64 {
	if pi := PageOf(a); a&7 == 0 && pi < uint64(len(m.pages)) {
		return m.pages[pi][(a>>3)&(PageWords-1)]
	}
	return m.overflow[a]
}

// Write stores the 8-byte word v at address a.
func (m *Memory) Write(a Addr, v uint64) {
	if pi := PageOf(a); a&7 == 0 && pi < uint64(len(m.pages)) {
		m.pages[pi][(a>>3)&(PageWords-1)] = v
		return
	}
	if v == 0 {
		delete(m.overflow, a)
		return
	}
	if m.overflow == nil {
		m.overflow = make(map[Addr]uint64)
	}
	m.overflow[a] = v
}

// Words returns the number of distinct non-zero words stored, for tests.
func (m *Memory) Words() int {
	n := len(m.overflow)
	for _, p := range m.pages {
		for _, w := range p {
			if w != 0 {
				n++
			}
		}
	}
	return n
}

// Brk returns the current heap break, for tests and reuse bookkeeping.
func (m *Memory) Brk() Addr { return m.brk }

// Reset returns the memory to its post-New state while keeping the page
// arrays, so a reused machine rebuilds no backing store. Pages that were
// ever materialized are zeroed in place.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = page{}
	}
	m.overflow = nil
	m.brk = heapBase
}
