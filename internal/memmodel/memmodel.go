// Package memmodel provides the simulated physical memory: a sparse
// word-granular backing store, a bump allocator for workloads, and the
// address-to-home-controller interleaving used by the directory, the LRT
// and the SSB.
package memmodel

import "fmt"

// LineShift is log2 of the coherence line size (64 bytes).
const LineShift = 6

// LineSize is the coherence line size in bytes.
const LineSize = 1 << LineShift

// Addr is a simulated physical address.
type Addr = uint64

// LineOf returns the line-aligned address containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// Memory is the simulated physical memory of one machine.
type Memory struct {
	words   map[Addr]uint64
	brk     Addr
	numHome int
}

// New creates a memory with the given number of home controllers. The heap
// starts at a non-zero base so that address 0 can serve as a nil sentinel.
func New(numHome int) *Memory {
	if numHome <= 0 {
		panic("memmodel: need at least one home controller")
	}
	return &Memory{
		words:   make(map[Addr]uint64),
		brk:     0x1000,
		numHome: numHome,
	}
}

// NumHomes returns the number of home memory controllers.
func (m *Memory) NumHomes() int { return m.numHome }

// HomeOf returns the memory controller index owning address a. Lines are
// interleaved across controllers, as in the evaluated systems.
func (m *Memory) HomeOf(a Addr) int {
	return int((a >> LineShift) % uint64(m.numHome))
}

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the base address. Allocation is simulation-level bookkeeping only; it
// costs no cycles.
func (m *Memory) Alloc(size, align Addr) Addr {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("memmodel: alignment %d is not a power of two", align))
	}
	base := (m.brk + align - 1) &^ (align - 1)
	m.brk = base + size
	return base
}

// AllocWords reserves n 8-byte words and returns the base address.
func (m *Memory) AllocWords(n int) Addr {
	return m.Alloc(Addr(n)*8, 8)
}

// AllocLine reserves one full line-aligned coherence line, so the returned
// word shares its line with nothing else. Queue-lock nodes use this to get
// private spin lines.
func (m *Memory) AllocLine() Addr {
	return m.Alloc(LineSize, LineSize)
}

// Read returns the 8-byte word at address a (zero if never written).
func (m *Memory) Read(a Addr) uint64 { return m.words[a] }

// Write stores the 8-byte word v at address a.
func (m *Memory) Write(a Addr, v uint64) {
	if v == 0 {
		delete(m.words, a)
		return
	}
	m.words[a] = v
}

// Words returns the number of distinct non-zero words stored, for tests.
func (m *Memory) Words() int { return len(m.words) }
