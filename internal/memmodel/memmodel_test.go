package memmodel

import "testing"

func TestAllocAlignment(t *testing.T) {
	m := New(4)
	a := m.Alloc(24, 8)
	if a%8 != 0 {
		t.Fatalf("addr %#x not 8-aligned", a)
	}
	b := m.Alloc(8, 64)
	if b%64 != 0 {
		t.Fatalf("addr %#x not 64-aligned", b)
	}
	if b < a+24 {
		t.Fatalf("allocations overlap: a=%#x..%#x b=%#x", a, a+24, b)
	}
}

func TestAllocBadAlignmentPanics(t *testing.T) {
	m := New(1)
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two alignment did not panic")
		}
	}()
	m.Alloc(8, 12)
}

func TestAllocLinePrivate(t *testing.T) {
	m := New(2)
	a := m.AllocLine()
	b := m.AllocLine()
	if LineOf(a) == LineOf(b) {
		t.Fatal("AllocLine returned two words on the same line")
	}
}

func TestHomeInterleaving(t *testing.T) {
	m := New(8)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		a := m.AllocLine()
		h := m.HomeOf(a)
		if h < 0 || h >= 8 {
			t.Fatalf("home %d out of range", h)
		}
		seen[h] = true
	}
	if len(seen) != 8 {
		t.Fatalf("interleaving used %d homes, want 8", len(seen))
	}
	// Same line, same home regardless of offset.
	a := m.AllocLine()
	if m.HomeOf(a) != m.HomeOf(a+56) {
		t.Fatal("words on one line mapped to different homes")
	}
}

func TestReadWrite(t *testing.T) {
	m := New(1)
	a := m.AllocWords(2)
	if m.Read(a) != 0 {
		t.Fatal("fresh word not zero")
	}
	m.Write(a, 42)
	m.Write(a+8, 7)
	if m.Read(a) != 42 || m.Read(a+8) != 7 {
		t.Fatal("read after write mismatch")
	}
	m.Write(a, 0)
	if m.Read(a) != 0 {
		t.Fatal("zero write not visible")
	}
	if m.Words() != 1 {
		t.Fatalf("Words() = %d, want 1 (zero words are not stored)", m.Words())
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0x1238) != 0x1200 {
		t.Fatalf("LineOf(0x1238) = %#x", LineOf(0x1238))
	}
	if LineOf(0x1200) != 0x1200 {
		t.Fatal("LineOf not idempotent on aligned addr")
	}
}
