package memmodel

import (
	"math/rand"
	"testing"
)

func TestAllocAlignment(t *testing.T) {
	m := New(4)
	a := m.Alloc(24, 8)
	if a%8 != 0 {
		t.Fatalf("addr %#x not 8-aligned", a)
	}
	b := m.Alloc(8, 64)
	if b%64 != 0 {
		t.Fatalf("addr %#x not 64-aligned", b)
	}
	if b < a+24 {
		t.Fatalf("allocations overlap: a=%#x..%#x b=%#x", a, a+24, b)
	}
}

func TestAllocBadAlignmentPanics(t *testing.T) {
	m := New(1)
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two alignment did not panic")
		}
	}()
	m.Alloc(8, 12)
}

func TestAllocLinePrivate(t *testing.T) {
	m := New(2)
	a := m.AllocLine()
	b := m.AllocLine()
	if LineOf(a) == LineOf(b) {
		t.Fatal("AllocLine returned two words on the same line")
	}
}

func TestHomeInterleaving(t *testing.T) {
	m := New(8)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		a := m.AllocLine()
		h := m.HomeOf(a)
		if h < 0 || h >= 8 {
			t.Fatalf("home %d out of range", h)
		}
		seen[h] = true
	}
	if len(seen) != 8 {
		t.Fatalf("interleaving used %d homes, want 8", len(seen))
	}
	// Same line, same home regardless of offset.
	a := m.AllocLine()
	if m.HomeOf(a) != m.HomeOf(a+56) {
		t.Fatal("words on one line mapped to different homes")
	}
}

func TestReadWrite(t *testing.T) {
	m := New(1)
	a := m.AllocWords(2)
	if m.Read(a) != 0 {
		t.Fatal("fresh word not zero")
	}
	m.Write(a, 42)
	m.Write(a+8, 7)
	if m.Read(a) != 42 || m.Read(a+8) != 7 {
		t.Fatal("read after write mismatch")
	}
	m.Write(a, 0)
	if m.Read(a) != 0 {
		t.Fatal("zero write not visible")
	}
	if m.Words() != 1 {
		t.Fatalf("Words() = %d, want 1 (zero words are not stored)", m.Words())
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0x1238) != 0x1200 {
		t.Fatalf("LineOf(0x1238) = %#x", LineOf(0x1238))
	}
	if LineOf(0x1200) != 0x1200 {
		t.Fatal("LineOf not idempotent on aligned addr")
	}
}

func TestAllocZeroSizePanics(t *testing.T) {
	m := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0, 8) did not panic")
		}
	}()
	m.Alloc(0, 8)
}

func TestAllocExhaustionPanics(t *testing.T) {
	// Both failure shapes must panic rather than wrap brk: a request larger
	// than the remaining address space, and a size so large that base+size
	// overflows uint64.
	for _, size := range []Addr{addrSpace, ^Addr(0) - 7} {
		func() {
			m := New(1)
			defer func() {
				if recover() == nil {
					t.Errorf("Alloc(%#x, 8) did not panic", size)
				}
			}()
			m.Alloc(size, 8)
		}()
	}
}

func TestWordAccessNoAllocs(t *testing.T) {
	m := New(1)
	a := m.AllocWords(64)
	if avg := testing.AllocsPerRun(200, func() {
		m.Write(a+8, 7)
		if m.Read(a+8) != 7 {
			t.Fatal("read after write mismatch")
		}
		m.Write(a+8, 0)
	}); avg != 0 {
		t.Fatalf("heap word access allocates %.1f/op, want 0", avg)
	}
}

func TestOverflowMigratesOnGrowth(t *testing.T) {
	m := New(1)
	// An aligned word beyond the current brk lands in the overflow map.
	far := m.Brk() + 4*PageWords*8
	m.Write(far, 123)
	if m.Read(far) != 123 {
		t.Fatal("overflow word not readable")
	}
	// Grow the heap past it: the word must migrate into the paged store.
	for m.Brk() <= far {
		m.Alloc(PageWords*8, 8)
	}
	if m.Read(far) != 123 {
		t.Fatal("overflow word lost when the heap grew past it")
	}
	m.Write(far, 0)
	if m.Read(far) != 0 {
		t.Fatal("migrated word not writable")
	}
}

// mapStore is the pre-paging sparse word store, kept as the reference
// oracle for the differential test below.
type mapStore struct{ words map[Addr]uint64 }

func (s *mapStore) read(a Addr) uint64 { return s.words[a] }
func (s *mapStore) write(a Addr, v uint64) {
	if v == 0 {
		delete(s.words, a)
		return
	}
	s.words[a] = v
}

// TestDifferentialVsMapStore drives random Alloc/Read/Write/CAS sequences
// against the paged store and the old map-based store in lockstep,
// including unaligned and out-of-heap addresses (the overflow path) and
// heap growth across previously-overflowed words.
func TestDifferentialVsMapStore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(4)
	oracle := &mapStore{words: make(map[Addr]uint64)}

	var addrs []Addr
	pick := func() Addr {
		switch rng.Intn(10) {
		case 0: // unaligned
			return addrs[rng.Intn(len(addrs))] + Addr(rng.Intn(8))
		case 1: // out-of-heap (may later be engulfed by growth)
			return m.Brk() + Addr(rng.Intn(4*PageWords))*8
		default:
			return addrs[rng.Intn(len(addrs))]
		}
	}
	for i := 0; i < 8; i++ {
		addrs = append(addrs, m.AllocWords(16))
	}

	for op := 0; op < 20000; op++ {
		switch rng.Intn(100) {
		case 0: // occasional growth, sometimes by whole pages
			n := 1 + rng.Intn(2*PageWords)
			addrs = append(addrs, m.AllocWords(n))
		case 1, 2, 3, 4:
			a := pick()
			v := uint64(rng.Intn(3)) // include zero: the delete path
			m.Write(a, v)
			oracle.write(a, v)
		case 5, 6: // CAS built from read+write, as the coherence layer does
			a := pick()
			old, new := uint64(rng.Intn(3)), uint64(rng.Intn(3))
			if m.Read(a) == old {
				m.Write(a, new)
			}
			if oracle.read(a) == old {
				oracle.write(a, new)
			}
		default:
			a := pick()
			if got, want := m.Read(a), oracle.read(a); got != want {
				t.Fatalf("op %d: Read(%#x) = %d, oracle says %d", op, a, got, want)
			}
		}
	}
	// Full sweep: every address either store ever saw must agree.
	for _, a := range addrs {
		for off := Addr(0); off < 16*8; off += 8 {
			if got, want := m.Read(a+off), oracle.read(a+off); got != want {
				t.Fatalf("final sweep: Read(%#x) = %d, oracle says %d", a+off, got, want)
			}
		}
	}
	for a, want := range oracle.words {
		if got := m.Read(a); got != want {
			t.Fatalf("final sweep: Read(%#x) = %d, oracle says %d", a, got, want)
		}
	}
}

func TestResetClearsButKeepsPages(t *testing.T) {
	m := New(2)
	a := m.AllocWords(PageWords * 3)
	m.Write(a, 9)
	m.Write(m.Brk()+64, 5) // overflow entry
	m.Reset()
	if m.Words() != 0 {
		t.Fatalf("Words() = %d after Reset, want 0", m.Words())
	}
	if m.Brk() != heapBase {
		t.Fatalf("brk = %#x after Reset, want %#x", m.Brk(), heapBase)
	}
	b := m.AllocWords(1)
	if m.Read(b) != 0 {
		t.Fatal("reused page not zeroed")
	}
}
