package stmbench

import (
	"math/rand"

	"fairrw/internal/machine"
	"fairrw/internal/stm"
)

// skip-list node layout: w0=key, w1=val, w2=level, w3..w3+level-1 = next.
const (
	slKey = iota
	slVal
	slLevel
	slNext0
)

const slMaxLevel = 12

// SkipList is a transactional skip-list. The head tower is the hot entry
// point analogous to the tree root.
type SkipList struct {
	tm   *stm.TM
	head *stm.Obj
	rng  *rand.Rand
}

// NewSkipList creates an empty skip-list on tm with a deterministic level
// generator.
func NewSkipList(tm *stm.TM, seed int64) *SkipList {
	head := tm.NewObj(slNext0 + slMaxLevel)
	head.RawWrite(slLevel, slMaxLevel)
	return &SkipList{tm: tm, head: head, rng: rand.New(rand.NewSource(seed))}
}

func (sl *SkipList) randomLevel() int {
	l := 1
	for l < slMaxLevel && sl.rng.Intn(2) == 0 {
		l++
	}
	return l
}

// Lookup returns the value for key within transaction t.
func (sl *SkipList) Lookup(t *stm.Txn, key uint64) (uint64, bool) {
	x := sl.head
	for lvl := slMaxLevel - 1; lvl >= 0 && !t.Aborted(); lvl-- {
		for {
			nxt := t.ReadObj(x, slNext0+lvl)
			if nxt == nil || t.Aborted() {
				break
			}
			k := t.Read(nxt, slKey)
			if k < key {
				x = nxt
				continue
			}
			if k == key {
				return t.Read(nxt, slVal), true
			}
			break
		}
	}
	return 0, false
}

// findPreds fills preds with the predecessor at every level.
func (sl *SkipList) findPreds(t *stm.Txn, key uint64, preds []*stm.Obj) {
	x := sl.head
	for lvl := slMaxLevel - 1; lvl >= 0 && !t.Aborted(); lvl-- {
		for {
			nxt := t.ReadObj(x, slNext0+lvl)
			if nxt == nil || t.Aborted() {
				break
			}
			if t.Read(nxt, slKey) < key {
				x = nxt
				continue
			}
			break
		}
		preds[lvl] = x
	}
}

// Insert adds or updates key within transaction t.
func (sl *SkipList) Insert(t *stm.Txn, key, val uint64) {
	preds := make([]*stm.Obj, slMaxLevel)
	sl.findPreds(t, key, preds)
	if t.Aborted() {
		return
	}
	// Existing?
	if nxt := t.ReadObj(preds[0], slNext0); nxt != nil && t.Read(nxt, slKey) == key {
		t.Write(nxt, slVal, val)
		return
	}
	lvl := sl.randomLevel()
	n := t.Alloc(slNext0 + lvl)
	t.Write(n, slKey, key)
	t.Write(n, slVal, val)
	t.Write(n, slLevel, uint64(lvl))
	for i := 0; i < lvl && !t.Aborted(); i++ {
		if preds[i] == nil {
			continue
		}
		t.Write(n, slNext0+i, t.Read(preds[i], slNext0+i))
		t.Write(preds[i], slNext0+i, uint64(n.ID()))
	}
}

// Delete removes key within transaction t (no-op if absent).
func (sl *SkipList) Delete(t *stm.Txn, key uint64) {
	preds := make([]*stm.Obj, slMaxLevel)
	sl.findPreds(t, key, preds)
	if t.Aborted() {
		return
	}
	victim := t.ReadObj(preds[0], slNext0)
	if victim == nil || t.Read(victim, slKey) != key || t.Aborted() {
		return
	}
	lvl := int(t.Read(victim, slLevel))
	for i := 0; i < lvl && !t.Aborted(); i++ {
		if preds[i] == nil {
			continue
		}
		if t.ReadObj(preds[i], slNext0+i) == victim {
			t.Write(preds[i], slNext0+i, t.Read(victim, slNext0+i))
		}
	}
}

// Size counts keys without simulation cost.
func (sl *SkipList) Size() int {
	n := 0
	for id := int(sl.head.RawRead(slNext0)); id != 0; {
		o := sl.tm.Get(id)
		n++
		id = int(o.RawRead(slNext0))
	}
	return n
}

// CheckInvariants verifies level-0 key ordering and tower consistency.
func (sl *SkipList) CheckInvariants() string {
	prev := uint64(0)
	first := true
	for id := int(sl.head.RawRead(slNext0)); id != 0; {
		o := sl.tm.Get(id)
		k := o.RawRead(slKey)
		if !first && k <= prev {
			return "level-0 keys out of order"
		}
		prev, first = k, false
		id = int(o.RawRead(slNext0))
	}
	// Every higher-level chain must be a subsequence of level 0.
	for lvl := 1; lvl < slMaxLevel; lvl++ {
		prev := uint64(0)
		first := true
		for id := int(sl.head.RawRead(slNext0 + lvl)); id != 0; {
			o := sl.tm.Get(id)
			if int(o.RawRead(slLevel)) <= lvl {
				return "node linked above its level"
			}
			k := o.RawRead(slKey)
			if !first && k <= prev {
				return "upper-level keys out of order"
			}
			prev, first = k, false
			id = int(o.RawRead(slNext0 + lvl))
		}
	}
	return ""
}

// LookupOp runs a whole lookup transaction.
func (sl *SkipList) LookupOp(c *machine.Ctx, key uint64) (val uint64, found bool) {
	sl.tm.Atomic(c, func(t *stm.Txn) { val, found = sl.Lookup(t, key) })
	return val, found
}

// InsertOp runs a whole insert transaction.
func (sl *SkipList) InsertOp(c *machine.Ctx, key, val uint64) {
	sl.tm.Atomic(c, func(t *stm.Txn) { sl.Insert(t, key, val) })
}

// DeleteOp runs a whole delete transaction.
func (sl *SkipList) DeleteOp(c *machine.Ctx, key uint64) {
	sl.tm.Atomic(c, func(t *stm.Txn) { sl.Delete(t, key) })
}
