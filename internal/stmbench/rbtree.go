// Package stmbench provides the three transactional data-structure
// microbenchmarks of Section IV-B — red-black tree, skip-list and
// hash-table — implemented over the stm package, plus the workload driver
// that regenerates Figures 11 and 12.
package stmbench

import (
	"fairrw/internal/machine"
	"fairrw/internal/stm"
)

// Node word layout for the red-black tree (left-leaning variant).
const (
	rbKey = iota
	rbVal
	rbLeft
	rbRight
	rbRed
	rbWords
)

// RBTree is a transactional left-leaning red-black tree. The root pointer
// lives in a holder object that every operation opens — the hot object
// whose reader-locking congestion Figures 11 and 12 measure.
type RBTree struct {
	tm   *stm.TM
	root *stm.Obj // w0 = root node id
}

// NewRBTree creates an empty tree on tm.
func NewRBTree(tm *stm.TM) *RBTree {
	return &RBTree{tm: tm, root: tm.NewObj(1)}
}

func (rb *RBTree) isRed(t *stm.Txn, h *stm.Obj) bool {
	if h == nil || t.Aborted() {
		return false
	}
	return t.Read(h, rbRed) == 1
}

func (rb *RBTree) rotateLeft(t *stm.Txn, h *stm.Obj) *stm.Obj {
	x := t.ReadObj(h, rbRight)
	if x == nil || t.Aborted() {
		return h
	}
	t.Write(h, rbRight, t.Read(x, rbLeft))
	t.Write(x, rbLeft, uint64(h.ID()))
	t.Write(x, rbRed, t.Read(h, rbRed))
	t.Write(h, rbRed, 1)
	return x
}

func (rb *RBTree) rotateRight(t *stm.Txn, h *stm.Obj) *stm.Obj {
	x := t.ReadObj(h, rbLeft)
	if x == nil || t.Aborted() {
		return h
	}
	t.Write(h, rbLeft, t.Read(x, rbRight))
	t.Write(x, rbRight, uint64(h.ID()))
	t.Write(x, rbRed, t.Read(h, rbRed))
	t.Write(h, rbRed, 1)
	return x
}

func (rb *RBTree) flipColors(t *stm.Txn, h *stm.Obj) {
	t.Write(h, rbRed, 1-t.Read(h, rbRed))
	if l := t.ReadObj(h, rbLeft); l != nil {
		t.Write(l, rbRed, 1-t.Read(l, rbRed))
	}
	if r := t.ReadObj(h, rbRight); r != nil {
		t.Write(r, rbRed, 1-t.Read(r, rbRed))
	}
}

func (rb *RBTree) fixUp(t *stm.Txn, h *stm.Obj) *stm.Obj {
	if h == nil || t.Aborted() {
		return h
	}
	if rb.isRed(t, rb.child(t, h, rbRight)) && !rb.isRed(t, rb.child(t, h, rbLeft)) {
		h = rb.rotateLeft(t, h)
	}
	if l := rb.child(t, h, rbLeft); rb.isRed(t, l) && rb.isRed(t, rb.child(t, l, rbLeft)) {
		h = rb.rotateRight(t, h)
	}
	if rb.isRed(t, rb.child(t, h, rbLeft)) && rb.isRed(t, rb.child(t, h, rbRight)) {
		rb.flipColors(t, h)
	}
	return h
}

func (rb *RBTree) child(t *stm.Txn, h *stm.Obj, w int) *stm.Obj {
	if h == nil || t.Aborted() {
		return nil
	}
	return t.ReadObj(h, w)
}

// Lookup returns the value for key within transaction t.
func (rb *RBTree) Lookup(t *stm.Txn, key uint64) (uint64, bool) {
	h := t.ReadObj(rb.root, 0)
	for h != nil && !t.Aborted() {
		k := t.Read(h, rbKey)
		switch {
		case key == k:
			return t.Read(h, rbVal), true
		case key < k:
			h = t.ReadObj(h, rbLeft)
		default:
			h = t.ReadObj(h, rbRight)
		}
	}
	return 0, false
}

// Insert adds or updates key within transaction t. The root holder is
// written only when the root node actually changes, so most updates do not
// write-lock the hottest object in the structure.
func (rb *RBTree) Insert(t *stm.Txn, key, val uint64) {
	old := t.Read(rb.root, 0)
	r := rb.insert(t, rb.tm.Get(int(old)), key, val)
	if t.Aborted() || r == nil {
		return
	}
	if t.Read(r, rbRed) == 1 {
		t.Write(r, rbRed, 0)
	}
	if uint64(r.ID()) != old {
		t.Write(rb.root, 0, uint64(r.ID()))
	}
}

func (rb *RBTree) insert(t *stm.Txn, h *stm.Obj, key, val uint64) *stm.Obj {
	if t.Aborted() {
		return h
	}
	if h == nil {
		n := t.Alloc(rbWords)
		t.Write(n, rbKey, key)
		t.Write(n, rbVal, val)
		t.Write(n, rbRed, 1)
		return n
	}
	k := t.Read(h, rbKey)
	switch {
	case key == k:
		t.Write(h, rbVal, val)
	case key < k:
		if nl := rb.insert(t, t.ReadObj(h, rbLeft), key, val); nl != nil {
			t.Write(h, rbLeft, uint64(nl.ID()))
		}
	default:
		if nr := rb.insert(t, t.ReadObj(h, rbRight), key, val); nr != nil {
			t.Write(h, rbRight, uint64(nr.ID()))
		}
	}
	return rb.fixUp(t, h)
}

// Delete removes key within transaction t (no-op if absent).
func (rb *RBTree) Delete(t *stm.Txn, key uint64) {
	if _, ok := rb.Lookup(t, key); !ok || t.Aborted() {
		return
	}
	old := t.Read(rb.root, 0)
	r := rb.delete(t, rb.tm.Get(int(old)), key)
	if t.Aborted() {
		return
	}
	if r != nil {
		if t.Read(r, rbRed) == 1 {
			t.Write(r, rbRed, 0)
		}
		if uint64(r.ID()) != old {
			t.Write(rb.root, 0, uint64(r.ID()))
		}
	} else {
		t.Write(rb.root, 0, 0)
	}
}

func (rb *RBTree) moveRedLeft(t *stm.Txn, h *stm.Obj) *stm.Obj {
	rb.flipColors(t, h)
	if r := rb.child(t, h, rbRight); rb.isRed(t, rb.child(t, r, rbLeft)) {
		t.Write(h, rbRight, uint64(idOf(rb.rotateRight(t, r))))
		h = rb.rotateLeft(t, h)
		rb.flipColors(t, h)
	}
	return h
}

func (rb *RBTree) moveRedRight(t *stm.Txn, h *stm.Obj) *stm.Obj {
	rb.flipColors(t, h)
	if l := rb.child(t, h, rbLeft); rb.isRed(t, rb.child(t, l, rbLeft)) {
		h = rb.rotateRight(t, h)
		rb.flipColors(t, h)
	}
	return h
}

func (rb *RBTree) minNode(t *stm.Txn, h *stm.Obj) *stm.Obj {
	for {
		l := rb.child(t, h, rbLeft)
		if l == nil || t.Aborted() {
			return h
		}
		h = l
	}
}

func (rb *RBTree) deleteMin(t *stm.Txn, h *stm.Obj) *stm.Obj {
	if h == nil || t.Aborted() {
		return nil
	}
	if rb.child(t, h, rbLeft) == nil {
		return nil
	}
	if l := rb.child(t, h, rbLeft); !rb.isRed(t, l) && !rb.isRed(t, rb.child(t, l, rbLeft)) {
		h = rb.moveRedLeft(t, h)
	}
	t.Write(h, rbLeft, uint64(idOf(rb.deleteMin(t, rb.child(t, h, rbLeft)))))
	return rb.fixUp(t, h)
}

func (rb *RBTree) delete(t *stm.Txn, h *stm.Obj, key uint64) *stm.Obj {
	if h == nil || t.Aborted() {
		return nil
	}
	if key < t.Read(h, rbKey) {
		if rb.child(t, h, rbLeft) == nil {
			return rb.fixUp(t, h)
		}
		if l := rb.child(t, h, rbLeft); !rb.isRed(t, l) && !rb.isRed(t, rb.child(t, l, rbLeft)) {
			h = rb.moveRedLeft(t, h)
		}
		t.Write(h, rbLeft, uint64(idOf(rb.delete(t, rb.child(t, h, rbLeft), key))))
	} else {
		if rb.isRed(t, rb.child(t, h, rbLeft)) {
			h = rb.rotateRight(t, h)
		}
		if key == t.Read(h, rbKey) && rb.child(t, h, rbRight) == nil {
			return nil
		}
		if r := rb.child(t, h, rbRight); r != nil && !rb.isRed(t, r) && !rb.isRed(t, rb.child(t, r, rbLeft)) {
			h = rb.moveRedRight(t, h)
		}
		if key == t.Read(h, rbKey) {
			m := rb.minNode(t, rb.child(t, h, rbRight))
			if m != nil && !t.Aborted() {
				t.Write(h, rbKey, t.Read(m, rbKey))
				t.Write(h, rbVal, t.Read(m, rbVal))
				t.Write(h, rbRight, uint64(idOf(rb.deleteMin(t, rb.child(t, h, rbRight)))))
			}
		} else {
			t.Write(h, rbRight, uint64(idOf(rb.delete(t, rb.child(t, h, rbRight), key))))
		}
	}
	return rb.fixUp(t, h)
}

func idOf(o *stm.Obj) int {
	if o == nil {
		return 0
	}
	return o.ID()
}

// Size returns the number of keys (sequential check helper; no sim cost).
func (rb *RBTree) Size() int {
	var count func(id int) int
	count = func(id int) int {
		if id == 0 {
			return 0
		}
		o := rb.tm.Get(id)
		return 1 + count(int(o.RawRead(rbLeft))) + count(int(o.RawRead(rbRight)))
	}
	return count(int(rb.root.RawRead(0)))
}

// CheckInvariants verifies BST order and red-black properties without
// simulation cost, returning an explanatory string or "" if valid.
func (rb *RBTree) CheckInvariants() string {
	var walk func(id int, min, max uint64) (black int, msg string)
	walk = func(id int, min, max uint64) (int, string) {
		if id == 0 {
			return 1, ""
		}
		o := rb.tm.Get(id)
		k := o.RawRead(rbKey)
		if k < min || k > max {
			return 0, "BST order violated"
		}
		red := o.RawRead(rbRed) == 1
		l, r := int(o.RawRead(rbLeft)), int(o.RawRead(rbRight))
		if red {
			if l != 0 && rb.tm.Get(l).RawRead(rbRed) == 1 {
				return 0, "red node with red left child"
			}
			if r != 0 && rb.tm.Get(r).RawRead(rbRed) == 1 {
				return 0, "red node with red right child"
			}
		}
		lb, msg := walk(l, min, k)
		if msg != "" {
			return 0, msg
		}
		var rbk int
		rbk, msg = walk(r, k, max)
		if msg != "" {
			return 0, msg
		}
		if lb != rbk {
			return 0, "black height mismatch"
		}
		if red {
			return lb, ""
		}
		return lb + 1, ""
	}
	rootID := int(rb.root.RawRead(0))
	if rootID != 0 && rb.tm.Get(rootID).RawRead(rbRed) == 1 {
		return "red root"
	}
	_, msg := walk(rootID, 0, ^uint64(0))
	return msg
}

// LookupOp runs a whole lookup transaction.
func (rb *RBTree) LookupOp(c *machine.Ctx, key uint64) (val uint64, found bool) {
	rb.tm.Atomic(c, func(t *stm.Txn) {
		val, found = rb.Lookup(t, key)
	})
	return val, found
}

// InsertOp runs a whole insert transaction.
func (rb *RBTree) InsertOp(c *machine.Ctx, key, val uint64) {
	rb.tm.Atomic(c, func(t *stm.Txn) { rb.Insert(t, key, val) })
}

// DeleteOp runs a whole delete transaction.
func (rb *RBTree) DeleteOp(c *machine.Ctx, key uint64) {
	rb.tm.Atomic(c, func(t *stm.Txn) { rb.Delete(t, key) })
}
