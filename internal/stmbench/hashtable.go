package stmbench

import (
	"fairrw/internal/machine"
	"fairrw/internal/stm"
)

// chain node layout: w0=key, w1=val, w2=next.
const (
	htKey = iota
	htVal
	htNext
	htWords
)

// HashTable is a transactional chained hash table. Unlike the tree and the
// skip-list it has no single entry point, so it avoids the root-congestion
// pathology (Figure 12's third benchmark).
type HashTable struct {
	tm      *stm.TM
	buckets []*stm.Obj // each bucket object: w0 = chain head id
}

// NewHashTable creates a table with nBuckets chains.
func NewHashTable(tm *stm.TM, nBuckets int) *HashTable {
	ht := &HashTable{tm: tm, buckets: make([]*stm.Obj, nBuckets)}
	for i := range ht.buckets {
		ht.buckets[i] = tm.NewObj(1)
	}
	return ht
}

func (ht *HashTable) bucket(key uint64) *stm.Obj {
	return ht.buckets[(key*0x9e3779b97f4a7c15)>>32%uint64(len(ht.buckets))]
}

// Lookup returns the value for key within transaction t.
func (ht *HashTable) Lookup(t *stm.Txn, key uint64) (uint64, bool) {
	n := t.ReadObj(ht.bucket(key), 0)
	for n != nil && !t.Aborted() {
		if t.Read(n, htKey) == key {
			return t.Read(n, htVal), true
		}
		n = t.ReadObj(n, htNext)
	}
	return 0, false
}

// Insert adds or updates key within transaction t.
func (ht *HashTable) Insert(t *stm.Txn, key, val uint64) {
	b := ht.bucket(key)
	n := t.ReadObj(b, 0)
	for n != nil && !t.Aborted() {
		if t.Read(n, htKey) == key {
			t.Write(n, htVal, val)
			return
		}
		n = t.ReadObj(n, htNext)
	}
	if t.Aborted() {
		return
	}
	fresh := t.Alloc(htWords)
	t.Write(fresh, htKey, key)
	t.Write(fresh, htVal, val)
	t.Write(fresh, htNext, t.Read(b, 0))
	t.Write(b, 0, uint64(fresh.ID()))
}

// Delete removes key within transaction t (no-op if absent).
func (ht *HashTable) Delete(t *stm.Txn, key uint64) {
	b := ht.bucket(key)
	prev, prevWord := b, 0
	n := t.ReadObj(b, 0)
	for n != nil && !t.Aborted() {
		if t.Read(n, htKey) == key {
			t.Write(prev, prevWord, t.Read(n, htNext))
			return
		}
		prev, prevWord = n, htNext
		n = t.ReadObj(n, htNext)
	}
}

// Size counts keys without simulation cost.
func (ht *HashTable) Size() int {
	n := 0
	for _, b := range ht.buckets {
		for id := int(b.RawRead(0)); id != 0; {
			o := ht.tm.Get(id)
			n++
			id = int(o.RawRead(htNext))
		}
	}
	return n
}

// CheckInvariants verifies every key hashes to the bucket holding it.
func (ht *HashTable) CheckInvariants() string {
	for _, b := range ht.buckets {
		for id := int(b.RawRead(0)); id != 0; {
			o := ht.tm.Get(id)
			if ht.bucket(o.RawRead(htKey)) != b {
				return "key in wrong bucket"
			}
			id = int(o.RawRead(htNext))
		}
	}
	return ""
}

// LookupOp runs a whole lookup transaction.
func (ht *HashTable) LookupOp(c *machine.Ctx, key uint64) (val uint64, found bool) {
	ht.tm.Atomic(c, func(t *stm.Txn) { val, found = ht.Lookup(t, key) })
	return val, found
}

// InsertOp runs a whole insert transaction.
func (ht *HashTable) InsertOp(c *machine.Ctx, key, val uint64) {
	ht.tm.Atomic(c, func(t *stm.Txn) { ht.Insert(t, key, val) })
}

// DeleteOp runs a whole delete transaction.
func (ht *HashTable) DeleteOp(c *machine.Ctx, key uint64) {
	ht.tm.Atomic(c, func(t *stm.Txn) { ht.Delete(t, key) })
}
