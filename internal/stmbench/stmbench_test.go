package stmbench

import (
	"math/rand"
	"testing"

	"fairrw/internal/machine"
	"fairrw/internal/stm"
)

// seqCheck runs a single-threaded op sequence against a Go map oracle.
func seqCheck(t *testing.T, mk func(tm *stm.TM) Structure, inv func() string, ops int, seed int64) {
	t.Helper()
	m, tm := NewTM("A", "fraser")
	s := mk(tm)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(seed))
	m.Spawn("seq", 1, 0, func(c *machine.Ctx) {
		for i := 0; i < ops; i++ {
			key := uint64(rng.Intn(64))
			switch rng.Intn(3) {
			case 0:
				v := uint64(rng.Intn(1000)) + 1
				s.InsertOp(c, key, v)
				oracle[key] = v
			case 1:
				s.DeleteOp(c, key)
				delete(oracle, key)
			default:
				v, ok := s.LookupOp(c, key)
				ov, ook := oracle[key]
				if ok != ook || (ok && v != ov) {
					t.Errorf("op %d: lookup(%d) = (%d,%v), oracle (%d,%v)", i, key, v, ok, ov, ook)
				}
			}
			if msg := inv(); msg != "" {
				t.Fatalf("op %d: invariant: %s", i, msg)
			}
		}
		// Final sweep.
		for key := uint64(0); key < 64; key++ {
			v, ok := s.LookupOp(c, key)
			ov, ook := oracle[key]
			if ok != ook || (ok && v != ov) {
				t.Errorf("final: lookup(%d) = (%d,%v), oracle (%d,%v)", key, v, ok, ov, ook)
			}
		}
	})
	m.Run()
}

func TestRBTreeSequential(t *testing.T) {
	var rb *RBTree
	seqCheck(t, func(tm *stm.TM) Structure { rb = NewRBTree(tm); return rb },
		func() string { return rb.CheckInvariants() }, 400, 11)
}

func TestSkipListSequential(t *testing.T) {
	var sl *SkipList
	seqCheck(t, func(tm *stm.TM) Structure { sl = NewSkipList(tm, 5); return sl },
		func() string { return sl.CheckInvariants() }, 400, 12)
}

func TestHashTableSequential(t *testing.T) {
	var ht *HashTable
	seqCheck(t, func(tm *stm.TM) Structure { ht = NewHashTable(tm, 8); return ht },
		func() string { return ht.CheckInvariants() }, 400, 13)
}

// concurrentCheck runs a parallel mixed workload and verifies structural
// invariants plus linearizable per-key final state via per-key last-writer
// tracking (simplified: just structural + termination).
func concurrentCheck(t *testing.T, engine, structure string) {
	t.Helper()
	w := Workload{
		Model: "A", Engine: engine, Structure: structure,
		MaxNodes: 128, Threads: 8, ReadPct: 60, OpsPerThr: 40, Seed: 99,
	}
	m, tm := NewTM(w.Model, w.Engine)
	s := Build(tm, w)
	Populate(m, s, w)
	done := 0
	for i := 0; i < w.Threads; i++ {
		tid := uint64(i + 1)
		rng := rand.New(rand.NewSource(int64(i) * 31))
		m.Spawn("t", tid, i, func(c *machine.Ctx) {
			for j := 0; j < w.OpsPerThr; j++ {
				key := uint64(rng.Intn(w.MaxNodes))
				switch rng.Intn(3) {
				case 0:
					s.InsertOp(c, key, key+1)
				case 1:
					s.DeleteOp(c, key)
				default:
					s.LookupOp(c, key)
				}
			}
			done++
		})
	}
	m.Run()
	if done != w.Threads {
		t.Fatalf("%s/%s: %d of %d threads finished", engine, structure, done, w.Threads)
	}
	var msg string
	switch v := s.(type) {
	case *RBTree:
		msg = v.CheckInvariants()
	case *SkipList:
		msg = v.CheckInvariants()
	case *HashTable:
		msg = v.CheckInvariants()
	}
	if msg != "" {
		t.Fatalf("%s/%s: invariant violated after concurrency: %s", engine, structure, msg)
	}
	if tm.Commits == 0 {
		t.Fatalf("no commits recorded")
	}
}

func TestConcurrentAllEnginesAllStructures(t *testing.T) {
	for _, engine := range []string{"swonly", "lcu", "fraser", "ssb"} {
		for _, structure := range []string{"rb", "skip", "hash"} {
			t.Run(engine+"/"+structure, func(t *testing.T) {
				concurrentCheck(t, engine, structure)
			})
		}
	}
}

func TestAbortsHappenUnderContention(t *testing.T) {
	w := Workload{
		Model: "A", Engine: "fraser", Structure: "rb",
		MaxNodes: 16, Threads: 8, ReadPct: 0, OpsPerThr: 30, Seed: 3,
	}
	r := Run(w)
	if r.AbortsPerCommit == 0 {
		t.Fatal("tiny write-hot tree should produce aborts")
	}
}

func TestRunReportsDissection(t *testing.T) {
	r := Run(Workload{
		Model: "A", Engine: "lcu", Structure: "rb",
		MaxNodes: 256, Threads: 4, ReadPct: 75, OpsPerThr: 30, Seed: 5,
	})
	if r.MeanTxnCycles <= 0 || r.ExecPerTxn <= 0 || r.CommitPerTxn <= 0 {
		t.Fatalf("bad dissection: %+v", r)
	}
}

func TestSwOnlyCommitCongestsRootVsLCU(t *testing.T) {
	// The heart of Figure 11: with visible readers, the sw-only engine's
	// commit-phase cost at 16 threads blows up on the tree root; the LCU
	// engine keeps it moderate.
	base := Workload{Model: "A", Structure: "rb", MaxNodes: 256, Threads: 16,
		ReadPct: 75, OpsPerThr: 40, Seed: 21}
	sw := base
	sw.Engine = "swonly"
	lc := base
	lc.Engine = "lcu"
	rsw := Run(sw)
	rlc := Run(lc)
	if rlc.MeanTxnCycles >= rsw.MeanTxnCycles {
		t.Fatalf("LCU STM (%.0f) should beat sw-only (%.0f) at 16 threads",
			rlc.MeanTxnCycles, rsw.MeanTxnCycles)
	}
}

func TestDeterministicSTM(t *testing.T) {
	w := Workload{Model: "A", Engine: "swonly", Structure: "skip",
		MaxNodes: 128, Threads: 6, ReadPct: 50, OpsPerThr: 25, Seed: 8}
	a := Run(w)
	b := Run(w)
	if a.TotalCycles != b.TotalCycles || a.MeanTxnCycles != b.MeanTxnCycles {
		t.Fatalf("nondeterministic STM run: %v vs %v", a.TotalCycles, b.TotalCycles)
	}
}
