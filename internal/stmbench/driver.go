package stmbench

import (
	"fmt"
	"math/rand"

	"fairrw/internal/core"
	"fairrw/internal/machine"
	"fairrw/internal/obs"
	"fairrw/internal/sim"
	"fairrw/internal/ssb"
	"fairrw/internal/stm"
)

// Structure abstracts the three benchmarks for the driver.
type Structure interface {
	LookupOp(c *machine.Ctx, key uint64) (uint64, bool)
	InsertOp(c *machine.Ctx, key, val uint64)
	DeleteOp(c *machine.Ctx, key uint64)
}

// Workload parameterizes one STM benchmark run (Figures 11 and 12).
type Workload struct {
	Model     string // "A" or "B"
	Engine    string // swonly, lcu, ssb, fraser
	Structure string // rb, skip, hash
	MaxNodes  int    // key space; tree populated to half
	Threads   int
	ReadPct   int // percentage of read-only (lookup) transactions
	OpsPerThr int
	Seed      int64
	// Obs enables observability capture for the measured phase (zero
	// value = off). Population is excluded.
	Obs obs.Options
}

// Result reports the measured outcome.
type Result struct {
	Workload
	MeanTxnCycles   float64 // mean cycles per completed operation
	ExecPerTxn      float64 // dissection: body execution
	CommitPerTxn    float64 // dissection: commit phase (incl. aborted tries)
	AbortsPerCommit float64
	TotalCycles     sim.Time
	// Obs is the run's observability capture (nil unless Workload.Obs
	// asked for one).
	Obs *obs.Capture
}

// NewTM builds the machine + device + TM for a workload.
func NewTM(model, engine string) (*machine.Machine, *stm.TM) {
	var m *machine.Machine
	switch model {
	case "A":
		m = machine.ModelA()
	case "B":
		m = machine.ModelB()
	default:
		panic(fmt.Sprintf("stmbench: unknown model %q", model))
	}
	return m, NewTMOn(m, engine)
}

// NewTMOn installs the engine's device and a fresh TM on an existing
// (fresh or Reset) machine.
func NewTMOn(m *machine.Machine, engine string) *stm.TM {
	switch engine {
	case "lcu":
		core.New(m, core.Options{})
	case "ssb":
		ssb.New(m, ssb.Options{})
	}
	return stm.New(m, engine)
}

// Build creates and populates the named structure with MaxNodes/2 keys.
// Population runs as real transactions on a single simulated thread; its
// cycles are excluded from measurement by per-operation timing.
func Build(tm *stm.TM, w Workload) Structure {
	var s Structure
	switch w.Structure {
	case "rb":
		s = NewRBTree(tm)
	case "skip":
		s = NewSkipList(tm, w.Seed+1)
	case "hash":
		s = NewHashTable(tm, w.MaxNodes/4+1)
	default:
		panic(fmt.Sprintf("stmbench: unknown structure %q", w.Structure))
	}
	return s
}

// Populate inserts every even key in [0, MaxNodes) from a setup thread.
func Populate(m *machine.Machine, s Structure, w Workload) {
	m.Spawn("setup", 1000, 0, func(c *machine.Ctx) {
		for k := 0; k < w.MaxNodes; k += 2 {
			s.InsertOp(c, uint64(k), uint64(k)*3)
		}
	})
	m.Run()
}

// Run executes the workload on a machine built for the occasion.
func Run(w Workload) Result {
	m, tm := NewTM(w.Model, w.Engine)
	return execOn(m, tm, w)
}

// RunOn executes the workload on m, resetting it first. The machine must
// have been built for w.Model; results are identical to Run's.
func RunOn(m *machine.Machine, w Workload) Result {
	if m.P.Name != w.Model {
		panic(fmt.Sprintf("stmbench: machine is model %q, workload wants %q", m.P.Name, w.Model))
	}
	m.Reset()
	return execOn(m, NewTMOn(m, w.Engine), w)
}

func execOn(m *machine.Machine, tm *stm.TM, w Workload) Result {
	if w.OpsPerThr == 0 {
		w.OpsPerThr = 200
	}
	// The default step budget is sized for huge structures; these walks
	// touch tens of objects, so doomed attempts (mixed-version pointers)
	// should die quickly instead of chasing cycles for 100k reads.
	tm.StepBudget = 4000
	s := Build(tm, w)
	Populate(m, s, w)

	// Reset dissection stats after population.
	tm.Commits, tm.Aborts = 0, 0
	tm.ExecCycles, tm.CommitCycles = 0, 0

	// Attach tracing only now, so the populated structure's setup traffic
	// stays out of the capture.
	var cap *obs.Capture
	if w.Obs.Enabled() {
		cap = m.EnableObs(w.Obs, fmt.Sprintf("%s/%s/%s t=%d r=%d%%", w.Model, w.Engine, w.Structure, w.Threads, w.ReadPct))
	}

	var opCycles []float64
	start := m.K.Now()
	for i := 0; i < w.Threads; i++ {
		tid := uint64(i + 1)
		corenum := i % m.P.Cores
		rng := rand.New(rand.NewSource(w.Seed + int64(i)*7919))
		m.Spawn("stm", tid, corenum, func(c *machine.Ctx) {
			for j := 0; j < w.OpsPerThr; j++ {
				key := uint64(rng.Intn(w.MaxNodes))
				t0 := c.P.Now()
				switch {
				case rng.Intn(100) < w.ReadPct:
					s.LookupOp(c, key)
				case rng.Intn(2) == 0:
					s.InsertOp(c, key, key)
				default:
					s.DeleteOp(c, key)
				}
				opCycles = append(opCycles, float64(c.P.Now()-t0))
			}
		})
	}
	m.Run()

	r := Result{Workload: w, TotalCycles: m.K.Now() - start, Obs: cap}
	sum := 0.0
	for _, x := range opCycles {
		sum += x
	}
	if len(opCycles) > 0 {
		r.MeanTxnCycles = sum / float64(len(opCycles))
	}
	if tm.Commits > 0 {
		r.ExecPerTxn = float64(tm.ExecCycles) / float64(tm.Commits)
		r.CommitPerTxn = float64(tm.CommitCycles) / float64(tm.Commits)
		r.AbortsPerCommit = float64(tm.Aborts) / float64(tm.Commits)
	}
	return r
}
