// Package machine assembles a simulated multiprocessor: cores, the
// coherent memory system, the interconnect, a thread scheduler with
// preemption and migration, and an attachment point for a hardware lock
// device (the LCU/LRT of internal/core, or the SSB baseline).
//
// Two machine models mirror the paper's Figure 8:
//
//   - Model A: 32 single-core chips on a hierarchical-switch network with
//     uniform 186-cycle memory latency (SunFire E25K-like, MESI).
//   - Model B: 4 chips x 8 cores (Sun T5440-like m-CMP), shared per-chip
//     L2, 210/315-cycle local/remote memory, scarce inter-chip bandwidth.
package machine

import (
	"math/rand"

	"fairrw/internal/coherence"
	"fairrw/internal/memmodel"
	"fairrw/internal/obs"
	"fairrw/internal/sim"
	"fairrw/internal/topo"
)

// LockDevice is the hardware locking unit plugged into a machine. The
// LCU/LRT mechanism and the SSB baseline both implement it. Acq and Rel
// mirror the paper's ISA primitives: they do not block for the lock; they
// return immediately with success or failure and the software iterates.
type LockDevice interface {
	// Acq attempts to acquire addr for thread tid from core in read or
	// write mode. It returns true once the lock is held.
	Acq(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, write bool) bool
	// Rel attempts to release addr. It returns true once the release has
	// been initiated successfully.
	Rel(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, write bool) bool
	// WaitEvent parks p until the device state relevant to (core, tid,
	// addr) may have changed — a grant or retry arriving — or until the
	// timeout elapses. A device with no local state (SSB) just backs off.
	WaitEvent(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, timeout sim.Time)
}

// Params holds per-model structural and timing parameters (Figure 8).
type Params struct {
	Name         string
	Cores        int
	CoresPerChip int
	NumMem       int // memory controllers == LRT modules

	LCUOrdinary int      // ordinary LCU entries per core (8 or 16)
	LCULat      sim.Time // LCU access latency
	LRTEntries  int      // LRT entries per module
	LRTAssoc    int
	LRTLat      sim.Time

	GrantTimeout sim.Time // LCU grant timer (suspended/migrated requestor)
	MemLat       sim.Time // DRAM latency for LRT overflow-table accesses

	Quantum    sim.Time // scheduler timeslice when cores are oversubscribed
	SwitchCost sim.Time // context-switch cost
}

// Machine is one simulated system instance. A machine runs one experiment
// at a time; Reset returns it to its freshly-built state so sweep workers
// can reuse one machine per model instead of rebuilding caches, directory
// pages and route tables for every sweep point.
type Machine struct {
	K    *sim.Kernel
	Net  *topo.Network
	Mem  *memmodel.Memory
	Sys  *coherence.System
	P    Params
	Lock LockDevice
	Rand *rand.Rand

	// Obs is the machine's observability capture, nil unless EnableObs was
	// called. Devices read it lazily per event, so it may be attached any
	// time before Run.
	Obs *obs.Capture

	sched []*coreSched
}

// ModelA builds the 32-chip in-order machine (Figure 8, left column).
func ModelA() *Machine {
	k := sim.New()
	net := topo.NewModelA(k, topo.DefaultModelA())
	mem := memmodel.New(32)
	cp := coherence.Params{
		Cores: 32, CoresPerChip: 1,
		L1Lat: 3, L2Lat: 10, DRAMLat: 37, CtrlLat: 6, OpLat: 1,
		L1Sets: 256, L1Ways: 4, // 64 KB, 4-way
		L2Sets: 2048, L2Ways: 8, // 1 MB per chip
	}
	sys := coherence.New(k, net, mem, cp)
	p := Params{
		Name: "A", Cores: 32, CoresPerChip: 1, NumMem: 32,
		LCUOrdinary: 8, LCULat: 3,
		LRTEntries: 512, LRTAssoc: 16, LRTLat: 6,
		GrantTimeout: 1000, MemLat: 186,
		Quantum: 50_000, SwitchCost: 200,
	}
	return newMachine(k, net, mem, sys, p)
}

// ModelB builds the 4x8 m-CMP machine (Figure 8, right column).
func ModelB() *Machine {
	k := sim.New()
	net := topo.NewModelB(k, topo.DefaultModelB())
	mem := memmodel.New(8)
	cp := coherence.Params{
		Cores: 32, CoresPerChip: 8,
		L1Lat: 3, L2Lat: 16, DRAMLat: 141, CtrlLat: 6, OpLat: 1,
		L1Sets: 256, L1Ways: 4, // 64 KB, 4-way
		L2Sets: 4096, L2Ways: 8, // 8 banks x 256 KB shared per chip
	}
	sys := coherence.New(k, net, mem, cp)
	p := Params{
		Name: "B", Cores: 32, CoresPerChip: 8, NumMem: 8,
		LCUOrdinary: 16, LCULat: 3,
		LRTEntries: 512, LRTAssoc: 16, LRTLat: 6,
		GrantTimeout: 1000, MemLat: 210,
		Quantum: 50_000, SwitchCost: 200,
	}
	return newMachine(k, net, mem, sys, p)
}

func newMachine(k *sim.Kernel, net *topo.Network, mem *memmodel.Memory, sys *coherence.System, p Params) *Machine {
	m := &Machine{
		K: k, Net: net, Mem: mem, Sys: sys, P: p,
		Rand:  rand.New(rand.NewSource(0xfa17)),
		sched: make([]*coreSched, p.Cores),
	}
	for i := range m.sched {
		m.sched[i] = &coreSched{core: i}
	}
	return m
}

// EnableObs attaches an observability capture to the machine and every
// instrumented subsystem (kernel, interconnect, memory system). name
// labels the run in exported traces. It returns the capture so a harness
// can collect it after the run.
func (m *Machine) EnableObs(o obs.Options, name string) *obs.Capture {
	links := make([]string, len(m.Net.Links))
	for i, l := range m.Net.Links {
		links[i] = l.Name
	}
	cap := obs.New(o, obs.Meta{Name: name, Cores: m.P.Cores, LRTs: m.P.NumMem, Links: links})
	m.Obs = cap
	m.K.Obs = cap
	m.Net.Obs = cap
	m.Sys.Obs = cap
	return cap
}

// Run executes the simulation to completion and returns the final cycle.
func (m *Machine) Run() sim.Time { return m.K.Run() }

// Reset returns the machine to its freshly-built state: time zero, empty
// memory, cold caches and directory, idle links, reseeded Rand, no lock
// device and no capture attached. Backing storage — cache ways, directory
// pages, route tables, the kernel's event heap — is kept, so a reused
// machine allocates almost nothing on its next run. The lock device is
// per-run state and must be reinstalled after Reset.
func (m *Machine) Reset() {
	m.K.Reset()
	m.Mem.Reset()
	m.Sys.Reset()
	m.Net.ResetStats()
	m.Net.Obs = nil
	m.Lock = nil
	m.Obs = nil
	m.Rand = rand.New(rand.NewSource(0xfa17))
	for _, s := range m.sched {
		s.ctxs = s.ctxs[:0]
		s.cur = 0
		s.timerArmed = false
	}
}
