package machine

import "fairrw/internal/obs"

// coreSched multiplexes simulated threads onto one core with round-robin
// timeslicing. With at most one thread per core (the common case) it adds
// no overhead and never preempts; oversubscribed cores rotate every
// Quantum cycles, which is what produces the queue-lock preemption anomaly
// of Figure 10 when thread counts exceed core counts.
type coreSched struct {
	core       int
	ctxs       []*Ctx
	cur        int
	timerArmed bool
}

func (s *coreSched) add(c *Ctx) {
	s.ctxs = append(s.ctxs, c)
	if len(s.ctxs) == 1 {
		s.cur = 0
		s.dispatch(c)
		return
	}
	c.running = false
	s.armTimer(c.M)
}

func (s *coreSched) remove(c *Ctx) {
	for i, x := range s.ctxs {
		if x == c {
			s.ctxs = append(s.ctxs[:i], s.ctxs[i+1:]...)
			if i < s.cur || s.cur == len(s.ctxs) {
				if s.cur > 0 {
					s.cur--
				}
			}
			break
		}
	}
	c.running = false
	if len(s.ctxs) > 0 {
		s.dispatch(s.ctxs[s.cur])
	}
}

// dispatch marks c runnable and wakes it if it was parked waiting for CPU.
func (s *coreSched) dispatch(c *Ctx) {
	if c.running {
		return
	}
	c.running = true
	if c.waitingToRun {
		c.waitingToRun = false
		c.P.Wake(c.M.P.SwitchCost)
	}
}

// rotate preempts the current thread and dispatches the next.
func (s *coreSched) rotate(m *Machine) {
	if len(s.ctxs) < 2 {
		return
	}
	if m.Obs != nil {
		m.Obs.Rec(uint64(m.K.Now()), obs.CoreNode(s.core), obs.KPreempt, 0, s.ctxs[s.cur].TID, 0)
	}
	s.ctxs[s.cur].running = false
	s.cur = (s.cur + 1) % len(s.ctxs)
	s.dispatch(s.ctxs[s.cur])
}

func (s *coreSched) armTimer(m *Machine) {
	if s.timerArmed {
		return
	}
	s.timerArmed = true
	m.K.Schedule(m.P.Quantum, func() { s.tick(m) })
}

func (s *coreSched) tick(m *Machine) {
	s.timerArmed = false
	if len(s.ctxs) > 1 {
		s.rotate(m)
		s.armTimer(m)
	}
}
