package machine

import (
	"fmt"

	"fairrw/internal/memmodel"
	"fairrw/internal/obs"
	"fairrw/internal/sim"
)

// Ctx is the execution context of one simulated software thread. Every
// memory or lock operation goes through the Ctx so that preemption (when a
// core hosts several threads) and migration are honoured: an operation
// issued by a descheduled thread waits until the scheduler runs it again.
type Ctx struct {
	M   *Machine
	P   *sim.Proc
	TID uint64

	core         int
	running      bool
	waitingToRun bool
	migrations   int
}

// Spawn creates a simulated thread with the given software thread-id,
// initially placed on core. The body runs under the DES kernel.
func (m *Machine) Spawn(name string, tid uint64, core int, body func(c *Ctx)) *Ctx {
	if core < 0 || core >= m.P.Cores {
		panic(fmt.Sprintf("machine: spawn on core %d of %d", core, m.P.Cores))
	}
	c := &Ctx{M: m, TID: tid, core: core}
	c.P = m.K.Spawn(name, func(p *sim.Proc) {
		c.ensureRunning()
		body(c)
		m.sched[c.core].remove(c)
	})
	m.sched[core].add(c)
	return c
}

// Core returns the core the thread currently runs on.
func (c *Ctx) Core() int { return c.core }

// Migrations returns how many times the thread has migrated.
func (c *Ctx) Migrations() int { return c.migrations }

// ensureRunning blocks until the scheduler has dispatched this thread on
// its current core.
func (c *Ctx) ensureRunning() {
	for !c.running {
		c.waitingToRun = true
		c.P.Block()
	}
}

// Compute models local computation taking the given number of cycles. It
// advances in sub-quantum chunks so a preemption during a long computation
// takes effect rather than being noticed only at the next operation.
func (c *Ctx) Compute(cycles sim.Time) {
	chunk := c.M.P.Quantum / 4
	if chunk == 0 {
		chunk = 1
	}
	for cycles > 0 {
		c.ensureRunning()
		step := cycles
		if step > chunk {
			step = chunk
		}
		c.P.Wait(step)
		cycles -= step
	}
}

// Load performs a coherent load.
func (c *Ctx) Load(addr memmodel.Addr) uint64 {
	c.ensureRunning()
	return c.M.Sys.Read(c.P, c.core, addr)
}

// Store performs a coherent store.
func (c *Ctx) Store(addr memmodel.Addr, v uint64) {
	c.ensureRunning()
	c.M.Sys.Write(c.P, c.core, addr, v)
}

// CAS performs an atomic compare-and-swap.
func (c *Ctx) CAS(addr memmodel.Addr, old, new uint64) bool {
	c.ensureRunning()
	return c.M.Sys.CAS(c.P, c.core, addr, old, new)
}

// FetchAdd atomically adds delta, returning the previous value.
func (c *Ctx) FetchAdd(addr memmodel.Addr, delta uint64) uint64 {
	c.ensureRunning()
	return c.M.Sys.FetchAdd(c.P, c.core, addr, delta)
}

// Swap atomically exchanges the word, returning the previous value.
func (c *Ctx) Swap(addr memmodel.Addr, v uint64) uint64 {
	c.ensureRunning()
	return c.M.Sys.Swap(c.P, c.core, addr, v)
}

// WaitChange parks the thread until the word at addr differs from old.
// Software locks use it for event-driven local spinning.
func (c *Ctx) WaitChange(addr memmodel.Addr, old uint64) {
	c.ensureRunning()
	c.M.Sys.WaitChange(c.P, addr, old)
}

// WaitChangeTimeout is WaitChange bounded by d cycles; reports whether the
// value changed (vs. the timeout firing).
func (c *Ctx) WaitChangeTimeout(addr memmodel.Addr, old uint64, d sim.Time) bool {
	c.ensureRunning()
	return c.M.Sys.WaitChangeTimeout(c.P, addr, old, d)
}

// Acq issues the Acquire ISA primitive to the machine's lock device.
func (c *Ctx) Acq(addr memmodel.Addr, write bool) bool {
	c.ensureRunning()
	return c.M.Lock.Acq(c.P, c.core, c.TID, addr, write)
}

// Rel issues the Release ISA primitive to the machine's lock device.
func (c *Ctx) Rel(addr memmodel.Addr, write bool) bool {
	c.ensureRunning()
	return c.M.Lock.Rel(c.P, c.core, c.TID, addr, write)
}

// HwLock acquires addr through the hardware lock device, blocking until
// granted: the paper's lock() loop of Figure 2 with event-driven spinning
// standing in for the local poll.
func (c *Ctx) HwLock(addr memmodel.Addr, write bool) {
	t0 := c.P.Now()
	for !c.Acq(addr, write) {
		c.ensureRunning()
		c.M.Lock.WaitEvent(c.P, c.core, c.TID, addr, c.M.P.GrantTimeout)
	}
	if o := c.M.Obs; o != nil {
		now := c.P.Now()
		o.LockAcquired(uint64(now), c.core, c.TID, uint64(addr), uint64(now-t0), write)
	}
}

// HwUnlock releases addr through the hardware lock device (Figure 2's
// unlock() loop).
func (c *Ctx) HwUnlock(addr memmodel.Addr, write bool) {
	for !c.Rel(addr, write) {
		c.ensureRunning()
		c.M.Lock.WaitEvent(c.P, c.core, c.TID, addr, c.M.P.GrantTimeout)
	}
	if o := c.M.Obs; o != nil {
		o.Unlocked(uint64(c.P.Now()), c.core, c.TID, uint64(addr))
	}
}

// HwTryLock attempts the lock a bounded number of acq iterations (Figure
// 2's trylock()). It reports whether the lock was obtained.
func (c *Ctx) HwTryLock(addr memmodel.Addr, write bool, retries int) bool {
	t0 := c.P.Now()
	for i := 0; i < retries; i++ {
		if c.Acq(addr, write) {
			if o := c.M.Obs; o != nil {
				now := c.P.Now()
				o.LockAcquired(uint64(now), c.core, c.TID, uint64(addr), uint64(now-t0), write)
			}
			return true
		}
		c.ensureRunning()
		c.M.Lock.WaitEvent(c.P, c.core, c.TID, addr, c.M.P.GrantTimeout/4)
	}
	return false
}

// Migrate moves the thread to another core, as an OS would. Outstanding
// lock-queue entries stay behind on the old core's LCU; the grant timer
// eventually skips them (Section III-C).
func (c *Ctx) Migrate(core int) {
	c.ensureRunning()
	if core == c.core {
		return
	}
	if o := c.M.Obs; o != nil {
		o.Rec(uint64(c.P.Now()), obs.CoreNode(c.core), obs.KMigrate, 0, c.TID, uint64(core))
	}
	c.M.sched[c.core].remove(c)
	c.core = core
	c.running = false
	c.migrations++
	c.P.Wait(c.M.P.SwitchCost) // OS migration overhead
	c.M.sched[core].add(c)
	c.ensureRunning()
}

// Yield voluntarily ends the thread's timeslice.
func (c *Ctx) Yield() {
	c.ensureRunning()
	s := c.M.sched[c.core]
	if len(s.ctxs) > 1 {
		s.rotate(c.M)
		c.ensureRunning()
	} else {
		c.P.Yield()
	}
}
