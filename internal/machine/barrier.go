package machine

// Barrier is a simulated centralized barrier for the application kernels.
// Its cost model is a flat reconvergence latency rather than a detailed
// coherence dance: the paper's experiments measure lock behaviour, and the
// barrier cost is identical across lock models.
type Barrier struct {
	n       int
	arrived int
	waiters []*Ctx
}

// barrierLat is the flat cost charged to every thread leaving a barrier.
const barrierLat = 100

// NewBarrier creates a barrier for n participants.
func (m *Machine) NewBarrier(n int) *Barrier {
	return &Barrier{n: n}
}

// Arrive blocks the thread until all n participants have arrived.
func (b *Barrier) Arrive(c *Ctx) {
	c.ensureRunning()
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		ws := b.waiters
		b.waiters = nil
		for _, w := range ws {
			w.P.Wake(barrierLat)
		}
		c.P.Wait(barrierLat)
		return
	}
	b.waiters = append(b.waiters, c)
	c.P.Block()
}
