package machine

import (
	"testing"

	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
)

func TestModelAConstruction(t *testing.T) {
	m := ModelA()
	if m.P.Cores != 32 || m.P.NumMem != 32 || m.P.LCUOrdinary != 8 {
		t.Fatalf("model A params wrong: %+v", m.P)
	}
	if m.Sys.P.L2Lat != 10 {
		t.Fatalf("model A L2 latency = %d, want 10", m.Sys.P.L2Lat)
	}
}

func TestModelBConstruction(t *testing.T) {
	m := ModelB()
	if m.P.Cores != 32 || m.P.NumMem != 8 || m.P.LCUOrdinary != 16 {
		t.Fatalf("model B params wrong: %+v", m.P)
	}
	if m.Sys.P.CoresPerChip != 8 {
		t.Fatalf("model B cores/chip = %d, want 8", m.Sys.P.CoresPerChip)
	}
}

// Memory-latency calibration against Figure 8.
func TestModelAMemoryLatency(t *testing.T) {
	m := ModelA()
	addr := m.Mem.AllocLine()
	var lat sim.Time
	m.Spawn("t", 1, 0, func(c *Ctx) {
		t0 := c.P.Now()
		c.Load(addr)
		lat = c.P.Now() - t0
	})
	m.Run()
	// Paper: 186 cycles (uniform). Allow a narrow band around it.
	if lat < 170 || lat > 205 {
		t.Fatalf("model A cold load = %d cycles, want ~186", lat)
	}
}

func TestModelBMemoryLatency(t *testing.T) {
	var local, remote sim.Time
	m := ModelB()
	// Find a line homed on chip 0 (mem 0 or 1) and one homed on chip 3.
	var la, ra memmodel.Addr
	for {
		a := m.Mem.AllocLine()
		h := m.Mem.HomeOf(a)
		if (h == 0 || h == 1) && la == 0 {
			la = a
		}
		if h >= 6 && ra == 0 {
			ra = a
		}
		if la != 0 && ra != 0 {
			break
		}
	}
	m.Spawn("t", 1, 0, func(c *Ctx) {
		t0 := c.P.Now()
		c.Load(la)
		local = c.P.Now() - t0
		t0 = c.P.Now()
		c.Load(ra)
		remote = c.P.Now() - t0
	})
	m.Run()
	// Paper: 210 local, 315 remote.
	if local < 190 || local > 235 {
		t.Fatalf("model B local load = %d, want ~210", local)
	}
	if remote < 285 || remote > 345 {
		t.Fatalf("model B remote load = %d, want ~315", remote)
	}
}

func TestSchedulerOversubscription(t *testing.T) {
	m := ModelA()
	addr := m.Mem.AllocWords(4)
	// Three threads on one core must interleave via the quantum, and all
	// must finish.
	finished := 0
	for i := 0; i < 3; i++ {
		tid := uint64(i + 1)
		m.Spawn("t", tid, 5, func(c *Ctx) {
			for j := 0; j < 5; j++ {
				c.Compute(30_000) // longer than half a quantum
				c.FetchAdd(addr, 1)
			}
			finished++
		})
	}
	m.Run()
	if finished != 3 {
		t.Fatalf("finished = %d, want 3", finished)
	}
	if got := m.Mem.Read(addr); got != 15 {
		t.Fatalf("counter = %d, want 15", got)
	}
}

func TestPreemptionDelaysThread(t *testing.T) {
	// A thread sharing a core must take much longer than one alone.
	solo := func() sim.Time {
		m := ModelA()
		var took sim.Time
		m.Spawn("t", 1, 0, func(c *Ctx) {
			c.Compute(200_000)
			took = c.P.Now()
		})
		m.Run()
		return took
	}()
	shared := func() sim.Time {
		m := ModelA()
		var took sim.Time
		m.Spawn("t", 1, 0, func(c *Ctx) {
			c.Compute(200_000)
			took = c.P.Now()
		})
		m.Spawn("u", 2, 0, func(c *Ctx) {
			c.Compute(2_000_000)
		})
		m.Run()
		return took
	}()
	if shared < solo+100_000 {
		t.Fatalf("sharing a core: %d vs solo %d — preemption had no effect", shared, solo)
	}
}

func TestMigration(t *testing.T) {
	m := ModelA()
	addr := m.Mem.AllocLine()
	var coreSeen []int
	m.Spawn("t", 1, 0, func(c *Ctx) {
		c.Store(addr, 1)
		coreSeen = append(coreSeen, c.Core())
		c.Migrate(7)
		c.Store(addr, 2)
		coreSeen = append(coreSeen, c.Core())
	})
	m.Run()
	if len(coreSeen) != 2 || coreSeen[0] != 0 || coreSeen[1] != 7 {
		t.Fatalf("cores = %v, want [0 7]", coreSeen)
	}
	if c := m.Mem.Read(addr); c != 2 {
		t.Fatalf("value = %d, want 2", c)
	}
	if m.Sys.Stats.Invalidations == 0 {
		t.Fatal("migrated store should have invalidated the old core's copy")
	}
}

func TestBarrier(t *testing.T) {
	m := ModelA()
	b := m.NewBarrier(4)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn("t", uint64(i+1), i, func(c *Ctx) {
			c.Compute(sim.Time((i + 1) * 1000))
			b.Arrive(c)
			order = append(order, i)
		})
	}
	m.Run()
	if len(order) != 4 {
		t.Fatalf("only %d threads left the barrier", len(order))
	}
	if m.K.Now() < 4000 {
		t.Fatalf("barrier released at %d, before last arrival at 4000+", m.K.Now())
	}
}

func TestCtxSpinViaWaitChange(t *testing.T) {
	m := ModelA()
	flag := m.Mem.AllocLine()
	var sawAt sim.Time
	m.Spawn("spinner", 1, 0, func(c *Ctx) {
		for {
			v := c.Load(flag)
			if v != 0 {
				sawAt = c.P.Now()
				return
			}
			c.WaitChange(flag, v)
		}
	})
	m.Spawn("setter", 2, 1, func(c *Ctx) {
		c.Compute(10_000)
		c.Store(flag, 1)
	})
	m.Run()
	if sawAt < 10_000 || sawAt > 11_000 {
		t.Fatalf("spinner completed at %d, want shortly after 10000", sawAt)
	}
}

func TestYieldRotates(t *testing.T) {
	m := ModelA()
	var order []string
	m.Spawn("a", 1, 0, func(c *Ctx) {
		order = append(order, "a1")
		c.Yield()
		order = append(order, "a2")
	})
	m.Spawn("b", 2, 0, func(c *Ctx) {
		order = append(order, "b1")
	})
	m.Run()
	if len(order) != 3 || order[0] != "a1" || order[1] != "b1" {
		t.Fatalf("order = %v, want a1 b1 a2", order)
	}
}
