package microbench

import "testing"

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	if cfg.TotalIters == 0 {
		cfg.TotalIters = 1600
	}
	return Run(cfg)
}

func TestAllLocksComplete(t *testing.T) {
	for _, lock := range []string{"lcu", "ssb", "tas", "tatas", "mcs", "mrsw", "posix"} {
		r := run(t, Config{Model: "A", Lock: lock, Threads: 8, WritePct: 100})
		if r.CyclesPerCS <= 0 {
			t.Errorf("%s: cycles/CS = %v", lock, r.CyclesPerCS)
		}
		total := 0
		for _, n := range r.PerThread {
			total += n
		}
		if total != 1600/8*8 {
			t.Errorf("%s: executed %d CS, want %d", lock, total, 1600)
		}
	}
}

func TestReadScalingLCU(t *testing.T) {
	w100 := run(t, Config{Model: "A", Lock: "lcu", Threads: 16, WritePct: 100})
	w25 := run(t, Config{Model: "A", Lock: "lcu", Threads: 16, WritePct: 25})
	if w25.CyclesPerCS >= w100.CyclesPerCS {
		t.Fatalf("reader concurrency should reduce cycles/CS: 100%%w=%.0f 25%%w=%.0f",
			w100.CyclesPerCS, w25.CyclesPerCS)
	}
}

func TestLCUBeatsSSBMutex(t *testing.T) {
	// Figure 9a, 100% writes: LCU outperforms SSB (direct transfer vs
	// release+re-poll round trips).
	lcu := run(t, Config{Model: "A", Lock: "lcu", Threads: 16, WritePct: 100})
	sb := run(t, Config{Model: "A", Lock: "ssb", Threads: 16, WritePct: 100})
	if lcu.CyclesPerCS >= sb.CyclesPerCS {
		t.Fatalf("LCU (%.0f) should beat SSB (%.0f) at 100%% writes",
			lcu.CyclesPerCS, sb.CyclesPerCS)
	}
}

func TestSSBCollapsesOnModelB(t *testing.T) {
	// Figure 9b: SSB's remote retries saturate inter-chip links once the
	// contenders span chips; the LCU's local spin does not.
	lcu := run(t, Config{Model: "B", Lock: "lcu", Threads: 24, WritePct: 100})
	sb := run(t, Config{Model: "B", Lock: "ssb", Threads: 24, WritePct: 100})
	if sb.CyclesPerCS < lcu.CyclesPerCS*1.5 {
		t.Fatalf("SSB on model B (%.0f) should collapse vs LCU (%.0f)",
			sb.CyclesPerCS, lcu.CyclesPerCS)
	}
}

func TestLCUBeatsMCS(t *testing.T) {
	// Section IV-A: >2x over software MCS.
	lcu := run(t, Config{Model: "A", Lock: "lcu", Threads: 16, WritePct: 100})
	mcs := run(t, Config{Model: "A", Lock: "mcs", Threads: 16, WritePct: 100})
	if mcs.CyclesPerCS < lcu.CyclesPerCS*1.5 {
		t.Fatalf("MCS (%.0f) should be well above LCU (%.0f)",
			mcs.CyclesPerCS, lcu.CyclesPerCS)
	}
}

func TestMRSWReaderCounterHotspot(t *testing.T) {
	// Section IV-A: MRSW gets worse as the read share rises; LCU improves.
	mrswW := run(t, Config{Model: "A", Lock: "mrsw", Threads: 16, WritePct: 100})
	mrswR := run(t, Config{Model: "A", Lock: "mrsw", Threads: 16, WritePct: 25})
	lcuR := run(t, Config{Model: "A", Lock: "lcu", Threads: 16, WritePct: 25})
	if mrswR.CyclesPerCS < mrswW.CyclesPerCS*0.8 {
		t.Logf("note: MRSW at 25%% writes = %.0f vs 100%% = %.0f", mrswR.CyclesPerCS, mrswW.CyclesPerCS)
	}
	if mrswR.CyclesPerCS < 2*lcuR.CyclesPerCS {
		t.Fatalf("MRSW reader path (%.0f) should be far slower than LCU (%.0f)",
			mrswR.CyclesPerCS, lcuR.CyclesPerCS)
	}
}

func TestQueueLockPreemptionAnomaly(t *testing.T) {
	// Figure 10: beyond 32 threads the MCS lock hits the preemption
	// anomaly; the LCU degrades gracefully via grant timeouts.
	mcsOver := run(t, Config{Model: "A", Lock: "mcs", Threads: 40, WritePct: 100})
	lcuOver := run(t, Config{Model: "A", Lock: "lcu", Threads: 40, WritePct: 100})
	if mcsOver.CyclesPerCS < 3*lcuOver.CyclesPerCS {
		t.Fatalf("MCS oversubscribed (%.0f) should blow up vs LCU (%.0f)",
			mcsOver.CyclesPerCS, lcuOver.CyclesPerCS)
	}
}

func TestFairnessLCUvsSSB(t *testing.T) {
	lcu := run(t, Config{Model: "A", Lock: "lcu", Threads: 16, WritePct: 100})
	if lcu.MaxOverMin > 1.6 {
		t.Fatalf("LCU unfairness %.2f too high", lcu.MaxOverMin)
	}
}

func TestNoIterationsYieldsErrNotNaN(t *testing.T) {
	// Threads <= 0 can never complete a critical section; the result must
	// carry ErrNoIterations with zeroed metrics, not NaN/Inf.
	r := Run(Config{Model: "A", Lock: "lcu", Threads: 0, WritePct: 100})
	if r.Err != ErrNoIterations {
		t.Fatalf("Err = %v, want ErrNoIterations", r.Err)
	}
	if r.CyclesPerCS != 0 || r.TotalCycles != 0 {
		t.Fatalf("metrics not zeroed: cycles/CS=%v total=%v", r.CyclesPerCS, r.TotalCycles)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, Config{Model: "A", Lock: "lcu", Threads: 8, WritePct: 50, Seed: 7})
	b := run(t, Config{Model: "A", Lock: "lcu", Threads: 8, WritePct: 50, Seed: 7})
	if a.TotalCycles != b.TotalCycles {
		t.Fatalf("nondeterministic: %d vs %d", a.TotalCycles, b.TotalCycles)
	}
}
