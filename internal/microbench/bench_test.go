package microbench

import "testing"

// BenchmarkMicrobenchRun measures one end-to-end microbenchmark simulation
// (machine build + 8 simulated threads through the LCU), the unit of work
// the sweep runner fans out.
func BenchmarkMicrobenchRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(Config{
			Model: "A", Lock: "lcu", Threads: 8, WritePct: 75,
			TotalIters: 800, Seed: 42,
		})
	}
}
