// Package microbench implements the Section IV-A critical-section
// microbenchmark: multiple threads iteratively enter one short critical
// section protected by a single lock, with a configurable proportion of
// read accesses. It reports cycles per critical section plus fairness
// metrics (per-thread acquisition counts, writer waiting times), and runs
// against every lock implementation: LCU, SSB, TAS, TATAS, MCS, MRSW and
// the POSIX-style mutex.
package microbench

import (
	"errors"
	"fmt"
	"math/rand"

	"fairrw/internal/core"
	"fairrw/internal/machine"
	"fairrw/internal/obs"
	"fairrw/internal/sim"
	"fairrw/internal/ssb"
	"fairrw/internal/swlocks"
)

// Config parameterizes one microbenchmark run.
type Config struct {
	Model      string // "A" or "B"
	Lock       string // lcu, ssb, tas, tatas, mcs, clh, mrsw, posix
	Threads    int
	WritePct   int // percentage of write (exclusive) accesses; 100 = mutex
	TotalIters int // critical-section entries across all threads
	CSWork     sim.Time
	Gap        sim.Time
	Seed       int64
	FLT        int // FLT slots for the lcu ablation (0 = off)
	// Obs enables observability capture for the run (zero value = off).
	Obs obs.Options
}

// ErrNoIterations reports a run in which no thread completed a single
// critical section (e.g. a wedged lock under a bounded-event run), so
// cycles-per-CS is undefined.
var ErrNoIterations = errors.New("microbench: no critical sections completed")

// Result carries the measured outcome of a run.
type Result struct {
	Config
	// Err is non-nil when the run produced no measurable result; all
	// measurement fields are then zero rather than NaN/Inf.
	Err         error
	TotalCycles sim.Time
	CyclesPerCS float64
	// PerThread is the acquisition count per thread (fairness).
	PerThread []int
	// WriterWaitMean is the mean cycles writers spent waiting to enter.
	WriterWaitMean float64
	// Messages is the total interconnect message count.
	Messages uint64
	// MaxOverMin is the unfairness ratio of acquisition counts.
	MaxOverMin float64
	// Obs is the run's observability capture (nil unless Config.Obs asked
	// for one).
	Obs *obs.Capture
}

// NewMachine builds a machine for the named model.
func NewMachine(model string) *machine.Machine {
	switch model {
	case "A":
		return machine.ModelA()
	case "B":
		return machine.ModelB()
	}
	panic(fmt.Sprintf("microbench: unknown model %q", model))
}

// MakeLock installs the requested lock implementation on m.
func MakeLock(m *machine.Machine, name string, flt int) swlocks.RWLock {
	switch name {
	case "lcu":
		core.New(m, core.Options{FLTSize: flt})
		return swlocks.NewHWLock(m, "lcu")
	case "ssb":
		ssb.New(m, ssb.Options{})
		return swlocks.NewHWLock(m, "ssb")
	case "tas":
		return swlocks.NewTAS(m)
	case "tatas":
		return swlocks.NewTATAS(m)
	case "mcs":
		return swlocks.NewMCS(m)
	case "clh":
		return swlocks.NewCLH(m)
	case "mrsw":
		return swlocks.NewMRSW(m)
	case "posix":
		return swlocks.NewPosix(m)
	}
	panic(fmt.Sprintf("microbench: unknown lock %q", name))
}

// Run executes the microbenchmark on a machine built for the occasion and
// returns its measurements.
func Run(cfg Config) Result {
	if cfg.Threads <= 0 {
		return Result{Config: cfg, Err: ErrNoIterations}
	}
	return execOn(NewMachine(cfg.Model), cfg)
}

// RunOn executes the microbenchmark on m, resetting it first. The machine
// must have been built for cfg.Model. Reusing one machine across the
// points of a sweep skips per-point construction of the kernel, caches,
// directory and route tables; results are identical to Run's.
func RunOn(m *machine.Machine, cfg Config) Result {
	if m.P.Name != cfg.Model {
		panic(fmt.Sprintf("microbench: machine is model %q, config wants %q", m.P.Name, cfg.Model))
	}
	if cfg.Threads <= 0 {
		return Result{Config: cfg, Err: ErrNoIterations}
	}
	m.Reset()
	return execOn(m, cfg)
}

func execOn(m *machine.Machine, cfg Config) Result {
	if cfg.TotalIters == 0 {
		cfg.TotalIters = 8000
	}
	if cfg.CSWork == 0 {
		cfg.CSWork = 100
	}
	if cfg.Gap == 0 {
		cfg.Gap = 100
	}
	l := MakeLock(m, cfg.Lock, cfg.FLT)

	var cap *obs.Capture
	if cfg.Obs.Enabled() {
		cap = m.EnableObs(cfg.Obs, fmt.Sprintf("%s/%s t=%d w=%d%%", cfg.Model, cfg.Lock, cfg.Threads, cfg.WritePct))
		if _, hw := l.(*swlocks.HWLock); !hw {
			// Hardware locks are traced by Ctx.HwLock; software locks need
			// the wrapper.
			l = swlocks.Trace(l, 1)
		}
	}

	iters := cfg.TotalIters / cfg.Threads
	if iters == 0 {
		iters = 1
	}
	res := Result{Config: cfg, PerThread: make([]int, cfg.Threads), Obs: cap}
	var writerWaits []float64

	for i := 0; i < cfg.Threads; i++ {
		idx := i
		tid := uint64(i + 1)
		corenum := i % m.P.Cores
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*104729))
		m.Spawn("mb", tid, corenum, func(c *machine.Ctx) {
			for j := 0; j < iters; j++ {
				write := rng.Intn(100) < cfg.WritePct
				t0 := c.P.Now()
				l.Lock(c, write)
				if write {
					writerWaits = append(writerWaits, float64(c.P.Now()-t0))
				}
				res.PerThread[idx]++
				c.Compute(cfg.CSWork)
				l.Unlock(c, write)
				c.Compute(cfg.Gap)
			}
		})
	}
	m.Run()

	did := 0
	for _, n := range res.PerThread {
		did += n
	}
	if did == 0 {
		return Result{Config: cfg, PerThread: res.PerThread, Err: ErrNoIterations, Obs: cap}
	}
	res.TotalCycles = m.K.Now()
	res.CyclesPerCS = float64(res.TotalCycles) / float64(did)
	res.Messages = m.Net.Sent
	if len(writerWaits) > 0 {
		s := 0.0
		for _, w := range writerWaits {
			s += w
		}
		res.WriterWaitMean = s / float64(len(writerWaits))
	}
	min, max := res.PerThread[0], res.PerThread[0]
	for _, n := range res.PerThread {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min > 0 {
		res.MaxOverMin = float64(max) / float64(min)
	}
	return res
}
