package core

import (
	"fmt"
	"strings"
	"testing"

	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
)

// TestDumpStateLiveEntries freezes a contended run mid-flight and checks
// the dump names every live protocol entry: each LCU entry that is not
// free, and the LRT entry of the contended lock with its current holder
// and queue tail. The dump is the wedged-state debugging tool, so missing
// entries would hide exactly the state one is hunting.
func TestDumpStateLiveEntries(t *testing.T) {
	m := machine.ModelA()
	d := New(m, Options{})
	addr := memmodel.Addr(0x1000)

	const threads = 6
	for i := 0; i < threads; i++ {
		tid := uint64(i + 1)
		m.Spawn("dump", tid, i%m.P.Cores, func(c *machine.Ctx) {
			c.HwLock(addr, true)
			c.Compute(200_000) // hold far past the freeze point
			c.HwUnlock(addr, true)
		})
	}
	// Freeze mid-protocol: one holder plus a queue of waiters.
	m.K.RunUntil(5_000)

	dump := d.DumpState()
	if dump == "" {
		t.Fatal("no live entries at freeze point; the run never contended")
	}

	// Every allocated LCU entry must be reported with its thread.
	live := 0
	for _, u := range d.lcus {
		all := append([]*entry{}, u.ordinary...)
		all = append(all, u.local, u.remote)
		all = append(all, u.forced...)
		for _, e := range all {
			if e.status == StatusFree {
				continue
			}
			live++
			line := fmt.Sprintf("lcu%-3d %-7s t%-4d", u.core, e.status, e.tid)
			if !strings.Contains(dump, line) {
				t.Errorf("dump is missing LCU entry %q:\n%s", line, dump)
			}
		}
	}
	if live < 2 {
		t.Fatalf("only %d live LCU entries at freeze point, want a contended queue:\n%s", live, dump)
	}

	// The contended lock's LRT entry must be reported, granted, with a
	// non-nil queue head.
	lrtLines := 0
	for _, l := range strings.Split(dump, "\n") {
		if strings.HasPrefix(l, "lrt") {
			lrtLines++
			if !strings.Contains(l, fmt.Sprintf("%#x", uint64(addr))) {
				t.Errorf("unexpected LRT entry (wrong address): %q", l)
			}
			if !strings.Contains(l, "granted=true") {
				t.Errorf("LRT entry not granted at freeze point: %q", l)
			}
		}
	}
	if lrtLines != 1 {
		t.Fatalf("got %d LRT lines, want exactly 1 (the contended lock):\n%s", lrtLines, dump)
	}

	// Drain the run to completion: the dump must then be empty (no leaked
	// entries).
	m.Run()
	if rest := d.DumpState(); rest != "" {
		t.Fatalf("entries leaked after completion:\n%s", rest)
	}
}
