package core

import (
	"fmt"
	"strings"
)

// DumpState renders all allocated LCU entries and live LRT entries, for
// debugging wedged protocol states in tests and examples.
func (d *Device) DumpState() string {
	var b strings.Builder
	for _, u := range d.lcus {
		all := append([]*entry{}, u.ordinary...)
		all = append(all, u.local, u.remote)
		all = append(all, u.forced...)
		for _, e := range all {
			if e.status == StatusFree {
				continue
			}
			fmt.Fprintf(&b, "lcu%-3d %-7s t%-4d %#x head=%v ovf=%v next=%s xfer=%d class=%d\n",
				u.core, e.status, e.tid, e.addr, e.head, e.overflow, e.next, e.xfer, e.class)
		}
	}
	for _, l := range d.lrts {
		ents := []*lrtEntry{}
		for _, set := range l.sets {
			ents = append(ents, set...)
		}
		l.ovfEach(func(e *lrtEntry) { ents = append(ents, e) })
		for _, e := range ents {
			fmt.Fprintf(&b, "lrt%-3d %#x head=%s tail=%s granted=%v rdCnt=%d ww=%d xfer=%d resv=%s\n",
				l.index, e.addr, e.head, e.tail, e.granted, e.readerCnt, e.waitingWriters, e.xfer, e.resv)
		}
	}
	return b.String()
}
