package core

import (
	"fmt"

	"fairrw/internal/memmodel"
	"fairrw/internal/obs"
	"fairrw/internal/sim"
)

// lcu is the per-core Lock Control Unit: a fixed table of entries (8 or 16
// ordinary plus one local-request and one remote-request nonblocking slot)
// and the logic reacting to thread requests and protocol messages.
type lcu struct {
	d    *Device
	core int

	ordinary []*entry
	local    *entry // nonblocking, reserved for local thread requests
	remote   *entry // nonblocking, reserved for servicing remote releases

	// forced holds allocations beyond the architected table. The paper
	// leaves the owner-reallocation-on-full corner unspecified; we allow
	// it and count it (Stats.ForcedAllocs) rather than deadlock.
	forced []*entry
}

func newLCU(d *Device, core, nOrdinary int) *lcu {
	u := &lcu{d: d, core: core}
	u.ordinary = make([]*entry, nOrdinary)
	for i := range u.ordinary {
		u.ordinary[i] = &entry{class: ClassOrdinary}
	}
	u.local = &entry{class: ClassLocal}
	u.remote = &entry{class: ClassRemote}
	return u
}

// find returns the entry for (addr, tid), or nil.
func (u *lcu) find(addr memmodel.Addr, tid uint64) *entry {
	for _, e := range u.ordinary {
		if e.status != StatusFree && e.addr == addr && e.tid == tid {
			return e
		}
	}
	if u.local.status != StatusFree && u.local.addr == addr && u.local.tid == tid {
		return u.local
	}
	if u.remote.status != StatusFree && u.remote.addr == addr && u.remote.tid == tid {
		return u.remote
	}
	for _, e := range u.forced {
		if e.status != StatusFree && e.addr == addr && e.tid == tid {
			return e
		}
	}
	return nil
}

// allocLocal allocates an entry for a local thread request: an ordinary
// slot if one is free, else the local-request nonblocking slot.
func (u *lcu) allocLocal() *entry {
	for _, e := range u.ordinary {
		if e.status == StatusFree {
			return e
		}
	}
	// Reclaim a saved (FLT) entry lazily: start its deferred release so a
	// slot frees up soon, but fail this allocation attempt.
	for _, e := range u.ordinary {
		if e.status == StatusSaved {
			u.releaseSaved(e)
			break
		}
	}
	if u.local.status == StatusFree {
		return u.local
	}
	return nil
}

// allocService allocates an entry to service a release or an owner
// re-allocation: ordinary, else the remote-request slot, else a forced
// overflow entry (counted; see Stats.ForcedAllocs).
func (u *lcu) allocService() *entry {
	for _, e := range u.ordinary {
		if e.status == StatusFree {
			return e
		}
	}
	if u.remote.status == StatusFree {
		return u.remote
	}
	for _, e := range u.forced {
		if e.status == StatusFree {
			return e
		}
	}
	u.d.Stats.ForcedAllocs++
	e := &entry{class: ClassOrdinary}
	u.forced = append(u.forced, e)
	return e
}

// savedCount returns the number of FLT-saved entries.
func (u *lcu) savedCount() int {
	n := 0
	for _, e := range u.ordinary {
		if e.status == StatusSaved {
			n++
		}
	}
	return n
}

// releaseSaved converts an FLT-saved entry into a real release.
func (u *lcu) releaseSaved(e *entry) {
	e.status = StatusRel
	u.d.sendRelease(u, e.tid, e.addr, e.write, false, nodeRef{})
}

// ---------------------------------------------------------------------------
// Thread-facing operations (the acq / rel ISA primitives).

// acquire implements acq. It returns true once the lock is held.
func (u *lcu) acquire(p *sim.Proc, tid uint64, addr memmodel.Addr, write bool) bool {
	d := u.d
	e := u.find(addr, tid)
	if e == nil {
		e = u.allocLocal()
		if e == nil {
			return false // table exhausted; software retries
		}
		e.addr, e.tid, e.write = addr, tid, write
		e.status = StatusIssued
		e.nb = e.class != ClassOrdinary
		d.Stats.Requests++
		d.trace("lcu%d REQUEST %s t%d %#x nb=%v", u.core, mode(write), tid, addr, e.nb)
		d.rec(obs.CoreNode(u.core), obs.KReq, addr, tid, flagBits(write, e.nb))
		d.coreToLRT(u.core, msgOfReq(reqMsg{
			addr: addr, req: nodeRef{valid: true, tid: tid, lcu: u.core, write: write}, nb: e.nb}))
		return false
	}

	switch e.status {
	case StatusRcv:
		if e.write != write {
			// The thread changed its mind between retries (e.g. trylock R
			// then lock W). The pending entry must drain first.
			return false
		}
		e.status = StatusAcq
		e.timerSeq++ // cancel grant timer
		if e.overflow || (e.head && !e.next.valid && e.viaLRT) {
			// Uncontended (or overflow-mode) acquisition: drop the entry to
			// free the slot; the LRT still records the lock (Section III-A).
			d.trace("lcu%d DROP t%d %#x", u.core, tid, addr)
			e.reset()
		}
		return true
	case StatusRdRel:
		// Re-acquire in read mode while holding position in the queue
		// (Section III-B).
		if write {
			return false
		}
		e.status = StatusAcq
		return true
	case StatusSaved:
		// FLT hit: the lock was retained locally by a previous release.
		if e.tid == tid {
			d.Stats.FLTHits++
			e.write = write
			e.status = StatusAcq
			return true
		}
		return false
	default:
		// ISSUED, WAIT, ACQ, REL: nothing to do; keep iterating.
		return false
	}
}

// release implements rel. It returns true once the release is under way.
func (u *lcu) release(p *sim.Proc, tid uint64, addr memmodel.Addr, write bool) bool {
	d := u.d
	e := u.find(addr, tid)
	if e == nil {
		// Uncontended-acquired (entry was dropped) or the owner migrated
		// here: re-allocate and send RELEASE to the LRT (Section III-A/C).
		// With the FLT enabled, retain the lock locally instead (only into
		// a genuinely free ordinary slot; never force-allocate for bias).
		if d.Opt.FLTSize > 0 && u.savedCount() < d.Opt.FLTSize {
			for _, fe := range u.ordinary {
				if fe.status == StatusFree {
					fe.addr, fe.tid, fe.write = addr, tid, write
					fe.status = StatusSaved
					fe.head = true
					return true
				}
			}
		}
		e = u.allocService()
		e.addr, e.tid, e.write = addr, tid, write
		e.status = StatusRel
		e.head = true
		d.Stats.RemoteReleases++
		d.sendRelease(u, tid, addr, write, false, nodeRef{})
		return true
	}

	switch e.status {
	case StatusAcq:
		if write || e.head {
			if e.next.valid {
				u.transferLock(e)
				return true
			}
			// No known successor.
			if d.Opt.FLTSize > 0 && !e.overflow && u.savedCount() < d.Opt.FLTSize {
				e.status = StatusSaved
				return true
			}
			e.status = StatusRel
			d.sendRelease(u, tid, addr, write, false, nodeRef{})
			return true
		}
		// Intermediate reader: hold position until the Head token passes
		// (Section III-B). No messages.
		d.trace("lcu%d RDREL t%d %#x next=%s", u.core, tid, addr, e.next)
		e.status = StatusRdRel
		return true
	default:
		// Releasing something not held (or already releasing): incorrectly
		// synchronized program, or a retry of a rel that already succeeded.
		return false
	}
}

// transferLock hands the lock held by e directly to e.next (Figure 5).
func (u *lcu) transferLock(e *entry) {
	d := u.d
	d.Stats.DirectXfers++
	g := grantMsg{
		addr: e.addr, tid: e.next.tid, head: true,
		xfer: e.xfer + 1,
		prev: nodeRef{valid: true, tid: e.tid, lcu: u.core, write: e.write},
	}
	d.trace("lcu%d XFER %#x -> %s", u.core, e.addr, e.next)
	d.rec(obs.CoreNode(u.core), obs.KXfer, e.addr, e.tid, e.next.tid)
	if o := d.obsCap(); o != nil {
		o.TransferStart(uint64(d.M.K.Now()), uint64(e.addr))
	}
	to := e.next.lcu
	e.status = StatusRel
	d.coreToCore(u.core, to, msgOfGrant(g))
}

// ---------------------------------------------------------------------------
// Protocol message handlers.

// onGrant receives a lock grant, a reader share-grant, or the Head token.
func (u *lcu) onGrant(g grantMsg) {
	d := u.d
	e := u.find(g.addr, g.tid)
	if e == nil {
		// The target entry vanished. The only legal path here is a stale
		// head token racing entry teardown; surface it loudly in sim.
		panic(fmt.Sprintf("core: GRANT for missing entry t%d %#x at lcu%d", g.tid, g.addr, u.core))
	}
	if g.xfer > e.xfer {
		e.xfer = g.xfer
	}
	d.Stats.Grants++
	if g.overflow {
		d.Stats.OverflowGrants++
	}
	d.trace("lcu%d GRANT t%d %#x head=%v ovf=%v xfer=%d st=%s", u.core, g.tid, g.addr, g.head, g.overflow, g.xfer, e.status)
	d.rec(obs.CoreNode(u.core), obs.KGrant, g.addr, g.tid, flagBits(g.head, g.overflow, g.fromLRT))
	if o := d.obsCap(); o != nil {
		now := uint64(d.M.K.Now())
		o.TransferEnd(now, uint64(g.addr))
		o.WaitEnd(now, g.tid)
	}

	switch e.status {
	case StatusIssued, StatusWait:
		e.status = StatusRcv
		e.overflow = g.overflow
		e.viaLRT = g.fromLRT
		if g.head {
			e.head = true
			if !g.fromLRT {
				d.notifyHead(u, e, g.prev)
			}
		}
		// A reader holding a grant propagates it to a following reader
		// (Section III-B).
		if !e.write && e.next.valid && !e.next.write {
			u.propagateReadGrant(e)
		}
		u.armGrantTimer(e)
		d.wakeWaiter(e)
	case StatusRcv, StatusAcq:
		// Head token arriving at an entry that already holds the lock.
		if g.head && !e.head {
			e.head = true
			d.notifyHead(u, e, g.prev)
		}
	case StatusRdRel:
		if !g.head {
			return
		}
		// Bypass: the released intermediate reader forwards the token and
		// frees its entry (Section III-B).
		d.Stats.HeadBypass++
		if e.next.valid {
			fw := grantMsg{addr: e.addr, tid: e.next.tid, head: true, xfer: e.xfer + 1, prev: g.prev}
			to := e.next.lcu
			e.reset()
			d.coreToCore(u.core, to, msgOfGrant(fw))
			return
		}
		// Tail of a fully-drained read queue: release at the LRT on behalf
		// of the original head releaser.
		e.status = StatusRel
		e.head = true
		d.sendRelease(u, e.tid, e.addr, e.write, true, g.prev)
	case StatusRel, StatusSaved:
		// Possible if a token chases a release; the release path already
		// owns the hand-off. Nothing to do.
	}
}

// propagateReadGrant forwards a (non-head) read grant down the queue.
func (u *lcu) propagateReadGrant(e *entry) {
	g := grantMsg{addr: e.addr, tid: e.next.tid, xfer: e.xfer}
	u.d.coreToCore(u.core, e.next.lcu, msgOfGrant(g))
}

// onWait acknowledges that the entry is enqueued.
func (u *lcu) onWait(addr memmodel.Addr, tid uint64) {
	e := u.find(addr, tid)
	if e != nil && e.status == StatusIssued {
		e.status = StatusWait
		u.d.Stats.Waits++
		u.d.rec(obs.CoreNode(u.core), obs.KEnq, addr, tid, 0)
		if o := u.d.obsCap(); o != nil {
			o.WaitStart(uint64(u.d.M.K.Now()), tid)
		}
	}
}

// onRetryReq handles a RETRY to a request: the entry is freed and the
// software re-issues (with backoff).
func (u *lcu) onRetryReq(addr memmodel.Addr, tid uint64) {
	e := u.find(addr, tid)
	if e == nil || e.status != StatusIssued {
		return
	}
	u.d.Stats.Retries++
	u.d.rec(obs.CoreNode(u.core), obs.KRetry, addr, tid, 0)
	w := e.waiter
	e.reset()
	if w != nil && w.Blocked() {
		w.Wake(0)
	}
}

// onFwdRequest handles an enqueue forwarded by the LRT to the (previous)
// queue tail (Figure 4b/4c).
func (u *lcu) onFwdRequest(m fwdReqMsg) {
	d := u.d
	d.trace("lcu%d FWDREQ target t%d %#x req=%s", u.core, m.targetTid, m.addr, m.req)
	d.rec(obs.CoreNode(u.core), obs.KFwdReq, m.addr, m.req.tid, m.targetTid)
	e := u.find(m.addr, m.targetTid)
	if e == nil {
		// Case (b): the uncontended owner dropped its entry at acquisition;
		// re-allocate it with the information sent by the LRT.
		e = u.allocService()
		e.addr, e.tid, e.write = m.addr, m.targetTid, m.targetWrite
		e.status = StatusAcq
		e.head = m.targetIsHead
		e.xfer = m.lrtXfer
	}
	if m.lrtXfer > e.xfer {
		e.xfer = m.lrtXfer
	}

	switch e.status {
	case StatusRel:
		// The lock was released while the request was in flight: hand it
		// straight to the requestor (the RETRY race of Section III-A).
		g := grantMsg{addr: e.addr, tid: m.req.tid, head: true, xfer: e.xfer + 1,
			prev: nodeRef{valid: true, tid: e.tid, lcu: u.core, write: e.write}}
		d.Stats.DirectXfers++
		d.coreToCore(u.core, m.req.lcu, msgOfGrant(g))
	case StatusSaved:
		// FLT: the lock is logically free here; grant it away.
		g := grantMsg{addr: e.addr, tid: m.req.tid, head: true, xfer: e.xfer + 1,
			prev: nodeRef{valid: true, tid: e.tid, lcu: u.core, write: e.write}}
		e.status = StatusRel
		d.Stats.DirectXfers++
		d.coreToCore(u.core, m.req.lcu, msgOfGrant(g))
	default:
		e.next = m.req
		// A tail holding (or sharing) the lock in read mode lets a reader
		// requestor in immediately (Section III-B).
		holdsRead := !e.write && (e.status == StatusAcq || e.status == StatusRcv || e.status == StatusRdRel)
		if holdsRead && !m.req.write {
			g := grantMsg{addr: e.addr, tid: m.req.tid, xfer: e.xfer}
			d.coreToCore(u.core, m.req.lcu, msgOfGrant(g))
			return
		}
		d.coreToCore(u.core, m.req.lcu, msgSimple(msgWait, m.addr, m.req.tid))
	}
}

// onFwdRelease handles a release forwarded by the LRT on behalf of a
// migrated owner (Section III-C). searchTid names the queue node at this
// LCU to inspect; if the target is not here, the message follows the queue.
func (u *lcu) onFwdRelease(m fwdRelMsg) {
	d := u.d
	d.Stats.FwdReleases++
	d.rec(obs.CoreNode(u.core), obs.KFwdRel, m.addr, m.tid, m.searchTid)
	// Only an entry in ACQ is the thread's actual hold. A same-tid entry in
	// RCV is a migration duplicate whose grant the timer will pass through
	// (Section III-C); consuming it here would orphan the real hold.
	if e := u.find(m.addr, m.tid); e != nil && e.status == StatusAcq {
		// Found the owner's original entry: release as if local.
		if e.write || e.head {
			if e.next.valid {
				u.transferLock(e)
			} else {
				e.status = StatusRel
				d.sendRelease(u, e.tid, e.addr, e.write, false, nodeRef{})
			}
		} else {
			e.status = StatusRdRel
		}
		// Acknowledge the remote releaser so its temporary entry clears.
		d.coreToCore(u.core, m.replyLCU, msgSimple(msgRelDone, m.addr, m.tid))
		return
	}
	// Not here: follow the queue from the named search node.
	s := u.find(m.addr, m.searchTid)
	if s == nil || !s.next.valid {
		// Queue edge raced away; bounce back to the LRT for a fresh look.
		d.coreToLRT(u.core, msgOfRel(relMsg{addr: m.addr, tid: m.tid, lcu: m.replyLCU, write: m.write}))
		return
	}
	nm := m
	nm.searchTid = s.next.tid
	d.coreToCore(u.core, s.next.lcu, msgOfFwdRel(nm))
}

// onRelDone finalizes a release: the LRT (or a servicing LCU) confirmed
// that the queue head moved on or the lock is free.
func (u *lcu) onRelDone(addr memmodel.Addr, tid uint64) {
	e := u.find(addr, tid)
	u.d.trace("lcu%d RELDONE t%d %#x found=%v", u.core, tid, addr, e != nil)
	u.d.rec(obs.CoreNode(u.core), obs.KRelDone, addr, tid, 0)
	if e != nil && e.status == StatusRel {
		w := e.waiter
		e.reset()
		if w != nil && w.Blocked() {
			w.Wake(0)
		}
	}
}

// onRetryRel handles a RETRY to a RELEASE: a requestor was enqueued while
// the release was in flight. The entry stays in REL; the imminent
// FWD_REQUEST will collect the lock (Section III-A).
func (u *lcu) onRetryRel(addr memmodel.Addr, tid uint64) {
	// State already correct; the entry waits for the forwarded request.
}

// ---------------------------------------------------------------------------
// Grant timer (Section III-C): a lock granted to an entry whose thread
// never takes it (suspended, migrated, or an expired trylock) is forwarded
// onward after a threshold, preventing starvation and deadlock.

func (u *lcu) armGrantTimer(e *entry) {
	d := u.d
	e.timerSeq++
	seq := e.timerSeq
	addr, tid := e.addr, e.tid
	d.M.K.Schedule(d.M.P.GrantTimeout, func() {
		cur := u.find(addr, tid)
		if cur != e || e.timerSeq != seq || e.status != StatusRcv {
			return
		}
		d.Stats.GrantTimeouts++
		d.trace("lcu%d TIMEOUT t%d %#x", u.core, tid, addr)
		d.rec(obs.CoreNode(u.core), obs.KTimeout, addr, tid, 0)
		u.timeoutEntry(e)
	})
}

// timeoutEntry passes a timed-out grant along, as if the absent thread had
// acquired and instantly released.
func (u *lcu) timeoutEntry(e *entry) {
	d := u.d
	if e.overflow {
		// Overflow-mode readers are not queue members: give the grant back
		// to the LRT so its reader count drains (Section III-D).
		e.status = StatusRel
		d.sendRelease(u, e.tid, e.addr, e.write, false, nodeRef{})
		return
	}
	if e.write || e.head {
		if e.next.valid {
			u.transferLock(e)
			return
		}
		e.status = StatusRel
		d.sendRelease(u, e.tid, e.addr, e.write, false, nodeRef{})
		return
	}
	// Non-head reader: it logically held a read share; fold it back as a
	// released intermediate so the head token will bypass it.
	e.status = StatusRdRel
}

// sendRelease emits a RELEASE to the LRT.
func (d *Device) sendRelease(u *lcu, tid uint64, addr memmodel.Addr, write, headDrain bool, origHead nodeRef) {
	d.trace("lcu%d RELEASE %s t%d %#x drain=%v", u.core, mode(write), tid, addr, headDrain)
	d.rec(obs.CoreNode(u.core), obs.KRel, addr, tid, flagBits(write, headDrain))
	if o := d.obsCap(); o != nil {
		o.TransferStart(uint64(d.M.K.Now()), uint64(addr))
	}
	d.coreToLRT(u.core, msgOfRel(relMsg{
		addr: addr, tid: tid, lcu: u.core, write: write, headDrain: headDrain, origHead: origHead}))
}

// notifyHead tells the LRT that this entry is the new queue head, so the
// head pointer stays valid and the previous holder can deallocate
// (Figure 5: the notification is off the critical path).
func (d *Device) notifyHead(u *lcu, e *entry, prev nodeRef) {
	m := headNotifyMsg{
		addr:    e.addr,
		newHead: nodeRef{valid: true, tid: e.tid, lcu: u.core, write: e.write},
		xfer:    e.xfer,
		prev:    prev,
	}
	d.coreToLRT(u.core, msgOfHeadNotify(m))
}

func mode(write bool) string {
	if write {
		return "W"
	}
	return "R"
}

// flagBits packs booleans into a record's aux field, bit i = flags[i].
func flagBits(flags ...bool) uint64 {
	var v uint64
	for i, f := range flags {
		if f {
			v |= 1 << uint(i)
		}
	}
	return v
}
