package core

import (
	"math/rand"
	"testing"

	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
)

// TestChaos mixes every hazard the protocol must survive: reader/writer
// mixes, trylock aborts, migrations mid-wait and mid-hold, and more threads
// than cores. The run must terminate with mutual exclusion intact.
func TestChaos(t *testing.T) {
	m, d := newA(t, Options{})
	m.K.MaxEvents = 80_000_000 // hard wedge detector

	locks := make([]memmodel.Addr, 12)
	cks := make([]*checker, 12)
	for i := range locks {
		locks[i] = m.Mem.AllocLine()
		cks[i] = &checker{t: t}
	}
	const threads = 40 // > 32 cores: oversubscription + preemption
	done := 0
	for i := 0; i < threads; i++ {
		tid := uint64(i + 1)
		core := i % m.P.Cores
		rng := rand.New(rand.NewSource(int64(i)*2654435761 + 99))
		m.Spawn("chaos", tid, core, func(c *machine.Ctx) {
			for j := 0; j < 30; j++ {
				li := rng.Intn(len(locks))
				write := rng.Intn(100) < 30
				switch rng.Intn(10) {
				case 0: // trylock, give up quickly
					if c.HwTryLock(locks[li], write, 2) {
						cks[li].enter(write)
						c.Compute(40)
						cks[li].exit(write)
						c.HwUnlock(locks[li], write)
					}
				case 1: // migrate mid-wait; a successful acq must be honoured
					got := c.Acq(locks[li], write)
					c.Migrate(rng.Intn(m.P.Cores))
					if !got {
						c.HwLock(locks[li], write)
					}
					cks[li].enter(write)
					c.Compute(60)
					cks[li].exit(write)
					c.HwUnlock(locks[li], write)
				case 2: // migrate while holding
					c.HwLock(locks[li], write)
					cks[li].enter(write)
					c.Migrate(rng.Intn(m.P.Cores))
					c.Compute(60)
					cks[li].exit(write)
					c.HwUnlock(locks[li], write)
				default:
					c.HwLock(locks[li], write)
					cks[li].enter(write)
					c.Compute(sim.Time(50 + rng.Intn(100)))
					cks[li].exit(write)
					c.HwUnlock(locks[li], write)
				}
				c.Compute(sim.Time(rng.Intn(200)))
			}
			done++
		})
	}
	m.Run()
	if done != threads {
		t.Fatalf("done = %d of %d — protocol wedged\n%s", done, threads, d.DumpState())
	}
}

// TestChaosModelB repeats the chaos run on the m-CMP machine.
func TestChaosModelB(t *testing.T) {
	m, d := newB(t, Options{})
	m.K.MaxEvents = 80_000_000
	locks := make([]memmodel.Addr, 8)
	cks := make([]*checker, 8)
	for i := range locks {
		locks[i] = m.Mem.AllocLine()
		cks[i] = &checker{t: t}
	}
	done := 0
	for i := 0; i < 24; i++ {
		tid := uint64(i + 1)
		core := i % m.P.Cores
		rng := rand.New(rand.NewSource(int64(i)*7 + 5))
		m.Spawn("chaos", tid, core, func(c *machine.Ctx) {
			for j := 0; j < 25; j++ {
				li := rng.Intn(len(locks))
				write := rng.Intn(100) < 25
				if rng.Intn(8) == 0 {
					c.Migrate(rng.Intn(m.P.Cores))
				}
				c.HwLock(locks[li], write)
				cks[li].enter(write)
				c.Compute(80)
				cks[li].exit(write)
				c.HwUnlock(locks[li], write)
			}
			done++
		})
	}
	m.Run()
	if done != 24 {
		t.Fatalf("done = %d of 24 — protocol wedged\n%s", done, d.DumpState())
	}
}

// TestChaosWithFLT runs the chaos mix with the FLT ablation enabled.
func TestChaosWithFLT(t *testing.T) {
	m, d := newA(t, Options{FLTSize: 2})
	m.K.MaxEvents = 80_000_000
	locks := make([]memmodel.Addr, 6)
	cks := make([]*checker, 6)
	for i := range locks {
		locks[i] = m.Mem.AllocLine()
		cks[i] = &checker{t: t}
	}
	done := 0
	for i := 0; i < 16; i++ {
		tid := uint64(i + 1)
		rng := rand.New(rand.NewSource(int64(i) + 31))
		m.Spawn("chaos", tid, i%m.P.Cores, func(c *machine.Ctx) {
			for j := 0; j < 40; j++ {
				li := rng.Intn(len(locks))
				write := rng.Intn(100) < 50
				c.HwLock(locks[li], write)
				cks[li].enter(write)
				c.Compute(50)
				cks[li].exit(write)
				c.HwUnlock(locks[li], write)
			}
			done++
		})
	}
	m.Run()
	if done != 16 {
		t.Fatalf("done = %d of 16 with FLT\n%s", done, d.DumpState())
	}
}
