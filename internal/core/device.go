package core

import (
	"fmt"

	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
	"fairrw/internal/obs"
	"fairrw/internal/sim"
)

// Options tunes the device beyond the machine's Figure-8 parameters.
type Options struct {
	// FLTSize enables the Free Lock Table extension (Section IV-C) with
	// that many saved-lock slots per LCU. Zero disables it.
	FLTSize int
	// ResvTimeout bounds how long an LRT reservation may block other
	// requestors (Section III-D). Zero selects a default.
	ResvTimeout sim.Time
	// RetryBackoff is the software-visible delay between a RETRY and the
	// re-issued request. Zero selects a default.
	RetryBackoff sim.Time
	// Trace, when set, receives a line per protocol event (debugging and
	// the examples).
	Trace func(string)
}

// Stats counts protocol events, exposed to tests and benchmark harnesses.
type Stats struct {
	Requests       uint64 // REQUEST messages to LRTs
	Grants         uint64 // lock grants delivered (any kind)
	OverflowGrants uint64 // grants in LRT overflow mode (Section III-D)
	Waits          uint64 // WAIT replies (enqueued)
	Retries        uint64 // RETRY replies to requests
	DirectXfers    uint64 // direct LCU-to-LCU transfers
	HeadBypass     uint64 // head tokens bypassed over RD_REL entries
	GrantTimeouts  uint64 // grant-timer expirations (migrated/suspended)
	RemoteReleases uint64 // releases arriving with no allocated entry
	FwdReleases    uint64 // releases forwarded through the queue
	Reservations   uint64 // LRT reservations installed
	ResvGrants     uint64 // grants to reservation holders
	ForcedAllocs   uint64 // entry allocations beyond the hardware table
	FLTHits        uint64 // re-acquisitions served by a saved (FLT) entry

	LRTCreates      uint64
	LRTDeletes      uint64
	LRTEvictions    uint64 // entries displaced to the memory overflow table
	LRTOverflowHits uint64 // lookups served from the memory overflow table
}

// Device is the complete locking mechanism: one LCU per core plus one LRT
// per memory controller. It implements machine.LockDevice.
type Device struct {
	M    *machine.Machine
	Opt  Options
	lcus []*lcu
	lrts []*lrt

	// msgs is the in-flight protocol message slab (see msg.go); freeMsgs
	// lists its unused slots.
	msgs     []devMsg
	freeMsgs []int32

	Stats Stats
}

// New builds the device for m and installs it as the machine's lock device.
func New(m *machine.Machine, opt Options) *Device {
	if opt.ResvTimeout == 0 {
		opt.ResvTimeout = 20_000
	}
	if opt.RetryBackoff == 0 {
		opt.RetryBackoff = 4 * m.P.LCULat
	}
	d := &Device{M: m, Opt: opt}
	d.lcus = make([]*lcu, m.P.Cores)
	for i := range d.lcus {
		d.lcus[i] = newLCU(d, i, m.P.LCUOrdinary)
	}
	d.lrts = make([]*lrt, m.P.NumMem)
	for i := range d.lrts {
		d.lrts[i] = newLRT(d, i, m.P.LRTEntries, m.P.LRTAssoc)
	}
	m.Lock = d
	return d
}

// rec records one protocol event when the machine has tracing attached.
// The capture is read lazily off the machine so EnableObs may be called
// any time before Run.
func (d *Device) rec(node int32, k obs.Kind, addr memmodel.Addr, tid, aux uint64) {
	if o := d.M.Obs; o != nil {
		o.Rec(uint64(d.M.K.Now()), node, k, uint64(addr), tid, aux)
	}
}

// obsCap returns the machine's capture, or nil when tracing is off.
func (d *Device) obsCap() *obs.Capture { return d.M.Obs }

func (d *Device) trace(format string, args ...interface{}) {
	if d.Opt.Trace != nil {
		d.Opt.Trace(fmt.Sprintf("[%8d] %s", d.M.K.Now(), fmt.Sprintf(format, args...)))
	}
}

// homeLRT returns the LRT owning addr.
func (d *Device) homeLRT(addr memmodel.Addr) *lrt {
	return d.lrts[d.M.Mem.HomeOf(addr)]
}

// Acq implements the Acquire ISA primitive (Section III): non-blocking,
// returns true only once the lock is held by (tid) in the given mode.
func (d *Device) Acq(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, write bool) bool {
	p.Wait(d.M.P.LCULat)
	return d.lcus[core].acquire(p, tid, addr, write)
}

// Rel implements the Release ISA primitive: non-blocking, returns true
// once the release has been initiated.
func (d *Device) Rel(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, write bool) bool {
	p.Wait(d.M.P.LCULat)
	return d.lcus[core].release(p, tid, addr, write)
}

// WaitEvent parks p until the LCU entry for (tid, addr) changes state, or
// until timeout. With no entry present (a RETRY freed it), it applies the
// retry backoff instead.
func (d *Device) WaitEvent(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, timeout sim.Time) {
	u := d.lcus[core]
	e := u.find(addr, tid)
	if e == nil {
		p.Wait(d.Opt.RetryBackoff)
		return
	}
	if e.status == StatusRcv || e.status == StatusRdRel {
		return // already actionable; let the caller retry acq immediately
	}
	e.waiter = p
	p.BlockTimeout(timeout)
	if e.waiter == p {
		e.waiter = nil
	}
}

// wakeWaiter unparks the thread spinning on e, if any.
func (d *Device) wakeWaiter(e *entry) {
	if e.waiter != nil && e.waiter.Blocked() {
		w := e.waiter
		e.waiter = nil
		w.Wake(0)
	}
}
