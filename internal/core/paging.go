package core

import (
	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
)

// pageSize is the virtual-memory page granularity of InvalidatePage.
const pageSize = 4096

// InvalidatePage implements the OS support of Section III-F: before a
// virtual page with taken locks is paged out, the OS invalidates every
// lock queue for addresses in the page. Queue entries are removed; the
// current holder shifts to uncontended mode (only the LRT records it), and
// active readers along a queue are converted to overflow readers so their
// releases still reconcile at the LRT. Waiting requestors are RETRYed —
// their software loops re-issue the request, which will fault the page
// back in.
//
// It is invoked by the (simulated) OS, not by threads, and models the TLB-
// shootdown handler's lock work; the OS charges its own execution cost.
func (d *Device) InvalidatePage(pageAddr memmodel.Addr) (invalidated int) {
	base := pageAddr &^ (pageSize - 1)
	inPage := func(a memmodel.Addr) bool { return a >= base && a < base+pageSize }

	for _, u := range d.lcus {
		all := append([]*entry{}, u.ordinary...)
		all = append(all, u.local, u.remote)
		all = append(all, u.forced...)
		for _, e := range all {
			if e.status == StatusFree || !inPage(e.addr) {
				continue
			}
			invalidated++
			switch e.status {
			case StatusAcq, StatusRcv:
				// Holder (or holder-to-be): becomes an uncontended /
				// overflow holder recorded only at the LRT.
				l := d.homeLRT(e.addr)
				if ent := l.peek(e.addr); ent != nil {
					if !e.write && !sameRef(ent.head, nodeRef{valid: true, tid: e.tid, lcu: u.core, write: e.write}) {
						// Reader mid-queue: record as overflow reader.
						ent.readerCnt++
					} else {
						// Head/owner: collapse the queue to just the owner.
						ent.head = nodeRef{valid: true, tid: e.tid, lcu: u.core, write: e.write}
						ent.tail = ent.head
						ent.granted = true
					}
				}
				e.reset()
			case StatusIssued, StatusWait:
				// Waiting requestor: drop the entry; software re-issues.
				w := e.waiter
				e.reset()
				if w != nil && w.Blocked() {
					w.Wake(0)
				}
			case StatusRdRel, StatusRel, StatusSaved:
				e.reset()
			}
		}
	}

	// Fix up LRT queue state: any entry in the page whose queue nodes were
	// just removed keeps only its holder bookkeeping.
	for _, l := range d.lrts {
		for _, set := range l.sets {
			for _, ent := range set {
				if inPage(ent.addr) && ent.head.valid {
					ent.tail = ent.head
					ent.waitingWriters = 0
					ent.resv = nodeRef{}
				}
			}
		}
		l.ovfEach(func(ent *lrtEntry) {
			if inPage(ent.addr) && ent.head.valid {
				ent.tail = ent.head
				ent.waitingWriters = 0
				ent.resv = nodeRef{}
			}
		})
	}
	return invalidated
}

// Enq implements the optional Enqueue primitive of footnote 1: a lock
// prefetch. It joins the queue for addr (exactly like acq) but does not
// acquire; a later acq finds the grant already local. Useful ahead of a
// critical section whose lock address is known early.
func (d *Device) Enq(p *sim.Proc, core int, tid uint64, addr memmodel.Addr, write bool) {
	p.Wait(d.M.P.LCULat)
	u := d.lcus[core]
	if u.find(addr, tid) != nil {
		return // already requested/held
	}
	u.acquireIssue(tid, addr, write)
}

// acquireIssue allocates an entry and sends the REQUEST without consuming
// a grant — the issue half of acquire.
func (u *lcu) acquireIssue(tid uint64, addr memmodel.Addr, write bool) {
	d := u.d
	e := u.allocLocal()
	if e == nil {
		return // table full; prefetch is best-effort
	}
	e.addr, e.tid, e.write = addr, tid, write
	e.status = StatusIssued
	e.nb = e.class != ClassOrdinary
	d.Stats.Requests++
	d.coreToLRT(u.core, msgOfReq(reqMsg{
		addr: addr, req: nodeRef{valid: true, tid: tid, lcu: u.core, write: write}, nb: e.nb}))
}
