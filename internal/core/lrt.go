package core

import (
	"fairrw/internal/memmodel"
	"fairrw/internal/obs"
	"fairrw/internal/sim"
)

// lrtEntry tracks one locked address (Figure 3, right).
type lrtEntry struct {
	addr memmodel.Addr

	head    nodeRef // current (or last known) queue head
	tail    nodeRef // last enqueued requestor
	granted bool    // the head has been granted the lock

	readerCnt      int // overflow-mode readers currently holding the lock
	waitingWriters int // enqueued writers not yet granted

	xfer uint64 // highest observed head-transfer count

	resv    nodeRef // reservation for a starving nonblocking requestor
	resvSeq uint64

	lastUse uint64
}

func sameRef(a, b nodeRef) bool {
	return a.valid && b.valid && a.tid == b.tid && a.lcu == b.lcu
}

// free reports whether no thread holds or waits for the lock.
func (e *lrtEntry) free() bool {
	return !e.head.valid && e.readerCnt == 0
}

// lrtOvfPage holds the memory overflow-table slots for one page's words.
type lrtOvfPage [memmodel.PageWords]*lrtEntry

// lrt is one Lock Reservation Table: a set-associative hardware table
// backed by a table in main memory for overflow (Section III-E).
//
// The overflow table is paged like the backing store: displaced entries
// for word-aligned heap addresses land in a slot table indexed by page and
// word, so the (rare) overflow path still does no hashing; addresses
// outside the simulated heap fall back to a sparse map. Entries keep
// pointer identity across displacement — armResvTimer relies on it.
type lrt struct {
	d     *Device
	index int
	assoc int
	sets  [][]*lrtEntry

	ovfPages  []*lrtOvfPage               // indexed by PageOf(addr)
	ovfSparse map[memmodel.Addr]*lrtEntry // unaligned / out-of-heap
	ovfCount  int
	clock     uint64
}

func newLRT(d *Device, index, entries, assoc int) *lrt {
	nsets := entries / assoc
	if nsets == 0 {
		nsets = 1
	}
	l := &lrt{d: d, index: index, assoc: assoc}
	l.sets = make([][]*lrtEntry, nsets)
	return l
}

// ovfSlot returns the paged overflow slot for addr, materializing the page
// when grow is set. It returns nil for addresses the page table cannot
// index (unaligned or beyond the simulated heap).
func (l *lrt) ovfSlot(addr memmodel.Addr, grow bool) **lrtEntry {
	if addr&7 != 0 || addr >= l.d.M.Mem.Brk() {
		return nil
	}
	pi := memmodel.PageOf(addr)
	if pi >= uint64(len(l.ovfPages)) {
		if !grow {
			return nil
		}
		l.ovfPages = append(l.ovfPages, make([]*lrtOvfPage, int(pi)+1-len(l.ovfPages))...)
	}
	p := l.ovfPages[pi]
	if p == nil {
		if !grow {
			return nil
		}
		p = new(lrtOvfPage)
		l.ovfPages[pi] = p
	}
	return &p[(addr>>3)&(memmodel.PageWords-1)]
}

// ovfPut records a displaced entry in the memory overflow table.
func (l *lrt) ovfPut(e *lrtEntry) {
	if s := l.ovfSlot(e.addr, true); s != nil {
		if *s == nil {
			l.ovfCount++
		}
		*s = e
		return
	}
	if l.ovfSparse == nil {
		l.ovfSparse = make(map[memmodel.Addr]*lrtEntry)
	}
	if _, ok := l.ovfSparse[e.addr]; !ok {
		l.ovfCount++
	}
	l.ovfSparse[e.addr] = e
}

// ovfPeek returns the overflow entry for addr, or nil. The sparse map is
// consulted even when a paged slot exists but is empty: the heap may have
// grown past an address that was out-of-heap when its entry was displaced.
func (l *lrt) ovfPeek(addr memmodel.Addr) *lrtEntry {
	if s := l.ovfSlot(addr, false); s != nil && *s != nil {
		return *s
	}
	return l.ovfSparse[addr]
}

// ovfDel removes the overflow entry for addr, reporting whether one was
// present.
func (l *lrt) ovfDel(addr memmodel.Addr) bool {
	if s := l.ovfSlot(addr, false); s != nil && *s != nil {
		*s = nil
		l.ovfCount--
		return true
	}
	if _, ok := l.ovfSparse[addr]; ok {
		delete(l.ovfSparse, addr)
		l.ovfCount--
		return true
	}
	return false
}

// ovfEach calls f for every overflow entry (page-walk order; used only by
// OS-level operations, never on the protocol path).
func (l *lrt) ovfEach(f func(e *lrtEntry)) {
	if l.ovfCount == 0 {
		return
	}
	for _, p := range l.ovfPages {
		if p == nil {
			continue
		}
		for _, e := range p {
			if e != nil {
				f(e)
			}
		}
	}
	for _, e := range l.ovfSparse {
		f(e)
	}
}

func (l *lrt) setIdx(addr memmodel.Addr) int {
	h := (addr >> memmodel.LineShift) * 0x9e3779b97f4a7c15
	return int(h % uint64(len(l.sets)))
}

// lookup finds the entry for addr, swapping it in from the memory overflow
// table if needed. extra is the added memory latency of overflow handling.
func (l *lrt) lookup(addr memmodel.Addr) (ent *lrtEntry, extra sim.Time) {
	si := l.setIdx(addr)
	for _, e := range l.sets[si] {
		if e.addr == addr {
			l.clock++
			e.lastUse = l.clock
			return e, 0
		}
	}
	if l.ovfCount == 0 {
		return nil, 0
	}
	// The overflow flag is set: the memory table must be consulted.
	extra = l.d.M.P.MemLat
	e := l.ovfPeek(addr)
	if e == nil {
		return nil, extra
	}
	l.ovfDel(addr)
	l.d.Stats.LRTOverflowHits++
	extra += l.place(e)
	return e, extra
}

// peek returns the current entry for addr without cost or LRU effects.
func (l *lrt) peek(addr memmodel.Addr) *lrtEntry {
	for _, e := range l.sets[l.setIdx(addr)] {
		if e.addr == addr {
			return e
		}
	}
	return l.ovfPeek(addr)
}

// place inserts e into its set, evicting the LRU victim to memory if the
// set is full. It returns the added memory latency.
func (l *lrt) place(e *lrtEntry) sim.Time {
	si := l.setIdx(e.addr)
	l.clock++
	e.lastUse = l.clock
	if len(l.sets[si]) < l.assoc {
		l.sets[si] = append(l.sets[si], e)
		return 0
	}
	lru := 0
	for i := 1; i < len(l.sets[si]); i++ {
		if l.sets[si][i].lastUse < l.sets[si][lru].lastUse {
			lru = i
		}
	}
	victim := l.sets[si][lru]
	l.sets[si][lru] = e
	l.ovfPut(victim)
	l.d.Stats.LRTEvictions++
	return l.d.M.P.MemLat
}

// create allocates a fresh entry for addr.
func (l *lrt) create(addr memmodel.Addr) (*lrtEntry, sim.Time) {
	e := &lrtEntry{addr: addr}
	l.d.Stats.LRTCreates++
	return e, l.place(e)
}

// remove deletes the entry for addr wherever it lives.
func (l *lrt) remove(addr memmodel.Addr) {
	si := l.setIdx(addr)
	for i, e := range l.sets[si] {
		if e.addr == addr {
			l.sets[si] = append(l.sets[si][:i], l.sets[si][i+1:]...)
			l.d.Stats.LRTDeletes++
			return
		}
	}
	if l.ovfDel(addr) {
		l.d.Stats.LRTDeletes++
	}
}

// ---------------------------------------------------------------------------
// Message handlers.

// onRequest processes a lock REQUEST (Section III-A cases a/b/c, plus the
// nonblocking/overflow paths of Section III-D).
func (l *lrt) onRequest(m reqMsg) {
	d := l.d
	d.rec(obs.LRTNode(l.index), obs.KLRTReq, m.addr, m.req.tid, flagBits(m.req.write, m.nb))
	ent, extra := l.lookup(m.addr)

	if ent == nil {
		// Case (a): the address is not locked. Allocate and grant.
		ent, ex2 := l.create(m.addr)
		extra += ex2
		ent.head, ent.tail = m.req, m.req
		ent.granted = true
		g := grantMsg{addr: m.addr, tid: m.req.tid, head: true, xfer: ent.xfer, fromLRT: true}
		d.trace("lrt%d GRANT-free %s", l.index, m.req)
		d.rec(obs.LRTNode(l.index), obs.KLRTGrant, m.addr, m.req.tid, 0)
		l.reply(extra, m.req.lcu, msgOfGrant(g))
		return
	}

	// Reservation gate: while a reservation is pending, only the holder's
	// iterative requests are served (Section III-D).
	if ent.resv.valid {
		if sameRef(ent.resv, m.req) {
			if ent.free() {
				ent.resv = nodeRef{}
				ent.head, ent.tail = m.req, m.req
				ent.granted = true
				d.Stats.ResvGrants++
				d.rec(obs.LRTNode(l.index), obs.KLRTGrant, m.addr, m.req.tid, 1)
				g := grantMsg{addr: m.addr, tid: m.req.tid, head: true, xfer: ent.xfer, fromLRT: true}
				l.reply(extra, m.req.lcu, msgOfGrant(g))
				return
			}
		}
		l.retryReq(extra, m)
		return
	}

	if m.nb {
		// Nonblocking entries may take free locks (handled above) or join
		// active readers in overflow mode; anything else is RETRYed.
		readHeld := (ent.head.valid && ent.granted && !ent.head.write && ent.waitingWriters == 0) ||
			(!ent.head.valid && ent.readerCnt > 0)
		if readHeld && !m.req.write {
			ent.readerCnt++
			d.rec(obs.LRTNode(l.index), obs.KLRTGrant, m.addr, m.req.tid, 2)
			g := grantMsg{addr: m.addr, tid: m.req.tid, overflow: true, xfer: ent.xfer, fromLRT: true}
			l.reply(extra, m.req.lcu, msgOfGrant(g))
			return
		}
		if ent.free() {
			ent.head, ent.tail = m.req, m.req
			ent.granted = true
			d.rec(obs.LRTNode(l.index), obs.KLRTGrant, m.addr, m.req.tid, 0)
			g := grantMsg{addr: m.addr, tid: m.req.tid, head: true, xfer: ent.xfer, fromLRT: true}
			l.reply(extra, m.req.lcu, msgOfGrant(g))
			return
		}
		if !ent.resv.valid {
			ent.resv = m.req
			d.Stats.Reservations++
			l.armResvTimer(ent)
		}
		l.retryReq(extra, m)
		return
	}

	if !ent.head.valid {
		// No queue: the lock is free (lingering entry) or held only by
		// overflow readers.
		ent.head, ent.tail = m.req, m.req
		if ent.readerCnt == 0 || !m.req.write {
			ent.granted = true
			d.rec(obs.LRTNode(l.index), obs.KLRTGrant, m.addr, m.req.tid, 0)
			g := grantMsg{addr: m.addr, tid: m.req.tid, head: true, xfer: ent.xfer, fromLRT: true}
			l.reply(extra, m.req.lcu, msgOfGrant(g))
			return
		}
		// A writer must wait for the overflow readers to drain.
		ent.granted = false
		ent.waitingWriters++
		l.reply(extra, m.req.lcu, msgSimple(msgWait, m.addr, m.req.tid))
		return
	}

	// Cases (b)/(c): append to the queue and forward to the previous tail.
	oldTail := ent.tail
	ent.tail = m.req
	if m.req.write {
		ent.waitingWriters++
	}
	fw := fwdReqMsg{
		addr: m.addr, req: m.req,
		targetTid: oldTail.tid, targetWrite: oldTail.write,
		targetIsHead: sameRef(oldTail, ent.head),
		lrtXfer:      ent.xfer,
	}
	d.trace("lrt%d FWD %s -> tail %s", l.index, m.req, oldTail)
	d.rec(obs.LRTNode(l.index), obs.KFwdReq, m.addr, m.req.tid, oldTail.tid)
	l.reply(extra, oldTail.lcu, msgOfFwdReq(fw))
}

func (l *lrt) retryReq(extra sim.Time, m reqMsg) {
	l.d.rec(obs.LRTNode(l.index), obs.KRetry, m.addr, m.req.tid, 0)
	l.reply(extra, m.req.lcu, msgSimple(msgRetryReq, m.addr, m.req.tid))
}

// onRelease processes a RELEASE (Sections III-A, III-B, III-C, III-D).
func (l *lrt) onRelease(m relMsg) {
	d := l.d
	d.rec(obs.LRTNode(l.index), obs.KLRTRel, m.addr, m.tid, flagBits(m.write, m.headDrain))
	ent, extra := l.lookup(m.addr)
	ackTo := m.lcu
	tid := m.tid

	ack := func() {
		l.reply(extra, ackTo, msgSimple(msgRelDone, m.addr, tid))
	}

	if ent == nil {
		// Double release or release racing entry teardown: ack idempotently.
		ack()
		return
	}

	if m.headDrain {
		// The tail of a fully-drained read queue releases on behalf of the
		// original head (Section III-B).
		if m.origHead.valid {
			l.reply(extra, m.origHead.lcu, msgSimple(msgRelDone, m.addr, m.origHead.tid))
		}
		rel := nodeRef{valid: true, tid: m.tid, lcu: m.lcu, write: m.write}
		if sameRef(ent.tail, rel) {
			l.finishHeadRelease(ent, extra, m, ack)
			return
		}
		// A requestor was appended behind the drained tail; the forwarded
		// request will collect the lock from the releaser's REL entry.
		ent.head = rel
		ent.granted = true
		l.reply(extra, ackTo, msgSimple(msgRetryRel, m.addr, tid))
		return
	}

	if ent.head.valid && ent.head.tid == m.tid {
		if ent.head.lcu == m.lcu || sameRef(ent.tail, ent.head) {
			// Normal (or migrated-but-uncontended) head release.
			if sameRef(ent.tail, ent.head) {
				l.finishHeadRelease(ent, extra, m, ack)
				return
			}
			// A queue exists: a FWD_REQUEST is racing towards the releaser;
			// tell it to hand the lock over on arrival (Section III-A).
			l.reply(extra, ackTo, msgSimple(msgRetryRel, m.addr, tid))
			return
		}
		// Migrated owner with a queue: forward the release to the head node.
		fw := fwdRelMsg{addr: m.addr, tid: m.tid, write: m.write, replyLCU: m.lcu, searchTid: ent.head.tid}
		l.reply(extra, ent.head.lcu, msgOfFwdRel(fw))
		return
	}

	if ent.readerCnt > 0 {
		// Overflow reader release (Section III-D).
		ent.readerCnt--
		ack()
		if ent.readerCnt == 0 && ent.head.valid && !ent.granted {
			ent.granted = true
			if ent.head.write && ent.waitingWriters > 0 {
				ent.waitingWriters--
			}
			d.rec(obs.LRTNode(l.index), obs.KLRTGrant, m.addr, ent.head.tid, 0)
			g := grantMsg{addr: m.addr, tid: ent.head.tid, head: true, xfer: ent.xfer, fromLRT: true}
			l.reply(extra, ent.head.lcu, msgOfGrant(g))
		}
		return
	}

	if ent.head.valid {
		// Migrated reader (not the head): search the queue (Section III-C).
		fw := fwdRelMsg{addr: m.addr, tid: m.tid, write: m.write, replyLCU: m.lcu, searchTid: ent.head.tid}
		l.reply(extra, ent.head.lcu, msgOfFwdRel(fw))
		return
	}

	// Nothing matches: spurious release; ack to unwedge the LCU.
	ack()
}

// finishHeadRelease completes a release by the (sole) queue node: the lock
// becomes free, remains with overflow readers, or the entry is deleted.
func (l *lrt) finishHeadRelease(ent *lrtEntry, extra sim.Time, m relMsg, ack func()) {
	if ent.readerCnt > 0 {
		ent.head, ent.tail = nodeRef{}, nodeRef{}
		ent.granted = false
		ack()
		return
	}
	if ent.resv.valid {
		// Keep the entry so the reservation holder finds the lock free.
		ent.head, ent.tail = nodeRef{}, nodeRef{}
		ent.granted = false
		ack()
		return
	}
	l.remove(ent.addr)
	ack()
}

// onHeadNotify updates the head pointer after a direct transfer and
// acknowledges the previous holder (Figure 5).
func (l *lrt) onHeadNotify(m headNotifyMsg) {
	d := l.d
	d.rec(obs.LRTNode(l.index), obs.KLRTHead, m.addr, m.newHead.tid, m.xfer)
	ent, extra := l.lookup(m.addr)
	if ent != nil && m.xfer > ent.xfer {
		ent.xfer = m.xfer
		ent.head = m.newHead
		ent.granted = true
		if m.newHead.write && ent.waitingWriters > 0 {
			ent.waitingWriters--
		}
	}
	if m.prev.valid {
		l.reply(extra, m.prev.lcu, msgSimple(msgRelDone, m.addr, m.prev.tid))
	}
}

// armResvTimer bounds a reservation's lifetime (e.g. the holder's trylock
// expired and it will never re-request).
func (l *lrt) armResvTimer(ent *lrtEntry) {
	ent.resvSeq++
	seq := ent.resvSeq
	addr := ent.addr
	l.d.M.K.Schedule(l.d.Opt.ResvTimeout, func() {
		cur := l.peek(addr)
		if cur != ent || ent.resvSeq != seq || !ent.resv.valid {
			return
		}
		ent.resv = nodeRef{}
		if ent.free() {
			l.remove(addr)
		}
	})
}
