package core

import (
	"testing"

	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
)

func newA(t *testing.T, opt Options) (*machine.Machine, *Device) {
	t.Helper()
	m := machine.ModelA()
	d := New(m, opt)
	return m, d
}

func newB(t *testing.T, opt Options) (*machine.Machine, *Device) {
	t.Helper()
	m := machine.ModelB()
	d := New(m, opt)
	return m, d
}

// checker tracks critical-section invariants: at most one writer, never a
// writer concurrent with readers.
type checker struct {
	t       *testing.T
	writers int
	readers int
	maxRead int
}

func (c *checker) enter(write bool) {
	if write {
		c.writers++
		if c.writers > 1 {
			c.t.Errorf("two writers in the critical section")
		}
		if c.readers > 0 {
			c.t.Errorf("writer entered with %d readers inside", c.readers)
		}
	} else {
		c.readers++
		if c.writers > 0 {
			c.t.Errorf("reader entered with a writer inside")
		}
		if c.readers > c.maxRead {
			c.maxRead = c.readers
		}
	}
}

func (c *checker) exit(write bool) {
	if write {
		c.writers--
	} else {
		c.readers--
	}
}

func TestWriteLockUncontended(t *testing.T) {
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	acquired := false
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		acquired = true
		c.HwUnlock(lock, true)
		// Re-acquire after a full release round-trips correctly.
		c.HwLock(lock, true)
		c.HwUnlock(lock, true)
	})
	m.Run()
	if !acquired {
		t.Fatal("lock never acquired")
	}
	if d.Stats.Grants < 2 {
		t.Fatalf("grants = %d, want >= 2", d.Stats.Grants)
	}
	// Both acquisitions were uncontended: no direct transfers.
	if d.Stats.DirectXfers != 0 {
		t.Fatalf("unexpected direct transfers: %d", d.Stats.DirectXfers)
	}
}

func TestWriteLockMutualExclusion(t *testing.T) {
	m, _ := newA(t, Options{})
	lock := m.Mem.AllocLine()
	ck := &checker{t: t}
	done := 0
	for i := 0; i < 8; i++ {
		tid := uint64(i + 1)
		core := i
		m.Spawn("t", tid, core, func(c *machine.Ctx) {
			for j := 0; j < 20; j++ {
				c.HwLock(lock, true)
				ck.enter(true)
				c.Compute(50)
				ck.exit(true)
				c.HwUnlock(lock, true)
				c.Compute(20)
			}
			done++
		})
	}
	m.Run()
	if done != 8 {
		t.Fatalf("done = %d, want 8 (deadlock?)", done)
	}
}

func TestContendedTransferIsDirect(t *testing.T) {
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	for i := 0; i < 4; i++ {
		tid := uint64(i + 1)
		core := i
		m.Spawn("t", tid, core, func(c *machine.Ctx) {
			for j := 0; j < 10; j++ {
				c.HwLock(lock, true)
				c.Compute(200)
				c.HwUnlock(lock, true)
			}
		})
	}
	m.Run()
	if d.Stats.DirectXfers == 0 {
		t.Fatal("contended handoffs should use direct LCU-to-LCU transfers")
	}
}

func TestReadersShareWritersExclude(t *testing.T) {
	m, _ := newA(t, Options{})
	lock := m.Mem.AllocLine()
	ck := &checker{t: t}
	for i := 0; i < 12; i++ {
		tid := uint64(i + 1)
		core := i
		write := i%4 == 0 // 3 writers, 9 readers
		m.Spawn("t", tid, core, func(c *machine.Ctx) {
			for j := 0; j < 15; j++ {
				c.HwLock(lock, write)
				ck.enter(write)
				c.Compute(100)
				ck.exit(write)
				c.HwUnlock(lock, write)
				c.Compute(30)
			}
		})
	}
	m.Run()
	if ck.maxRead < 2 {
		t.Fatalf("max concurrent readers = %d; readers never actually shared", ck.maxRead)
	}
}

func TestReaderConcurrencyGrantChain(t *testing.T) {
	// All readers: everyone should hold simultaneously at some point.
	m, _ := newA(t, Options{})
	lock := m.Mem.AllocLine()
	ck := &checker{t: t}
	hold := m.NewBarrier(6)
	for i := 0; i < 6; i++ {
		tid := uint64(i + 1)
		core := i
		m.Spawn("t", tid, core, func(c *machine.Ctx) {
			c.HwLock(lock, false)
			ck.enter(false)
			hold.Arrive(c) // forces overlap: all must be inside together
			ck.exit(false)
			c.HwUnlock(lock, false)
		})
	}
	m.Run()
	if ck.maxRead != 6 {
		t.Fatalf("max concurrent readers = %d, want 6", ck.maxRead)
	}
}

func TestWriterNotStarvedByReaders(t *testing.T) {
	// A continuous stream of readers must not starve a writer: the queue
	// ensures the writer gets in (Section III-B's fairness property).
	m, _ := newA(t, Options{})
	lock := m.Mem.AllocLine()
	var writerDone sim.Time
	stop := false
	for i := 0; i < 6; i++ {
		tid := uint64(i + 1)
		core := i
		m.Spawn("reader", tid, core, func(c *machine.Ctx) {
			for !stop {
				c.HwLock(lock, false)
				c.Compute(300)
				c.HwUnlock(lock, false)
				c.Compute(10) // re-request almost immediately
			}
		})
	}
	m.Spawn("writer", 100, 7, func(c *machine.Ctx) {
		c.Compute(2_000) // let readers churn first
		c.HwLock(lock, true)
		writerDone = c.P.Now()
		c.HwUnlock(lock, true)
		stop = true
	})
	m.K.RunUntil(3_000_000)
	if writerDone == 0 {
		t.Fatal("writer starved by readers")
	}
	if writerDone > 1_000_000 {
		t.Fatalf("writer admitted only at %d; fairness is too weak", writerDone)
	}
}

func TestRdRelReacquire(t *testing.T) {
	// An intermediate reader that released can re-acquire in read mode
	// without remote traffic while awaiting the head token (Section III-B).
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()

	// Thread 1 takes read and holds long (head). Threads 2..3 read behind it.
	m.Spawn("head", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, false)
		c.Compute(30_000)
		c.HwUnlock(lock, false)
	})
	reacquired := false
	m.Spawn("mid", 2, 1, func(c *machine.Ctx) {
		c.Compute(500)
		c.HwLock(lock, false)
		c.Compute(100)
		c.HwUnlock(lock, false) // head still holds: entry -> RD_REL
		req0 := d.Stats.Requests
		c.HwLock(lock, false) // re-acquire: must be local
		if d.Stats.Requests != req0 {
			t.Error("re-acquire of RD_REL entry went remote")
		}
		reacquired = true
		c.HwUnlock(lock, false)
	})
	m.Run()
	if !reacquired {
		t.Fatal("mid reader failed to re-acquire")
	}
}

func TestTrylockExpiresAndLockMovesOn(t *testing.T) {
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	var got3 bool
	m.Spawn("holder", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		c.Compute(20_000)
		c.HwUnlock(lock, true)
	})
	m.Spawn("try", 2, 1, func(c *machine.Ctx) {
		c.Compute(100)
		if c.HwTryLock(lock, true, 3) {
			t.Error("trylock should have failed while holder computes")
			c.HwUnlock(lock, true)
		}
		// Thread 2 walks away; its queued entry must not wedge the lock.
	})
	m.Spawn("later", 3, 2, func(c *machine.Ctx) {
		c.Compute(5_000)
		c.HwLock(lock, true)
		got3 = true
		c.HwUnlock(lock, true)
	})
	m.Run()
	if !got3 {
		t.Fatal("lock wedged behind an expired trylock")
	}
	if d.Stats.GrantTimeouts == 0 {
		t.Fatal("expected a grant timeout to skip the aborted trylock entry")
	}
}

func TestMigrationWhileWaiting(t *testing.T) {
	// Section III-C, case (i): a waiting thread migrates; the stale entry
	// passes the grant through and the thread acquires from its new core.
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	var acquiredOn = -1
	m.Spawn("holder", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		c.Compute(10_000)
		c.HwUnlock(lock, true)
	})
	m.Spawn("migrator", 2, 1, func(c *machine.Ctx) {
		c.Compute(200)
		// Request once (enqueues), then migrate before the grant arrives.
		c.Acq(lock, true)
		c.Migrate(9)
		c.HwLock(lock, true) // re-request from core 9: second queue entry
		acquiredOn = c.Core()
		c.HwUnlock(lock, true)
	})
	m.Run()
	if acquiredOn != 9 {
		t.Fatalf("acquired on core %d, want 9", acquiredOn)
	}
	if d.Stats.GrantTimeouts == 0 {
		t.Fatal("the abandoned entry should have timed out and passed the lock on")
	}
}

func TestMigrationWhileHolding(t *testing.T) {
	// Section III-C, case (ii): the owner migrates and releases remotely.
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	var second bool
	m.Spawn("owner", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		c.Migrate(5)
		c.Compute(1000)
		c.HwUnlock(lock, true) // remote release from core 5
	})
	m.Spawn("next", 2, 1, func(c *machine.Ctx) {
		c.Compute(100)
		c.HwLock(lock, true)
		second = true
		c.HwUnlock(lock, true)
	})
	m.Run()
	if !second {
		t.Fatal("lock lost after owner migration")
	}
	if d.Stats.RemoteReleases == 0 {
		t.Fatal("expected a remote release")
	}
}

func TestMigratedReaderReleaseForwardedThroughQueue(t *testing.T) {
	// A non-head reader migrates and releases; the release is forwarded
	// along the queue to its original entry (Section III-C).
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	var writerGot bool
	m.Spawn("head", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, false)
		c.Compute(8_000)
		c.HwUnlock(lock, false)
	})
	m.Spawn("migrating-reader", 2, 1, func(c *machine.Ctx) {
		c.Compute(300)
		c.HwLock(lock, false)
		c.Migrate(6)
		c.Compute(500)
		c.HwUnlock(lock, false) // forwarded through the queue
	})
	m.Spawn("writer", 3, 2, func(c *machine.Ctx) {
		c.Compute(600)
		c.HwLock(lock, true)
		writerGot = true
		c.HwUnlock(lock, true)
	})
	m.Run()
	if !writerGot {
		t.Fatal("writer never admitted after migrated reader release")
	}
	if d.Stats.FwdReleases == 0 {
		t.Fatal("expected the release to be forwarded through the queue")
	}
}

func TestLCUOverflowForwardProgress(t *testing.T) {
	// One thread takes more concurrent read locks than its LCU has
	// ordinary entries. Uncontended acquisitions drop their entries, so
	// this needs many *contended* locks; instead, hold write locks which
	// keep entries only when queued — so approximate by taking many locks
	// while another core contends each one, exhausting ordinary slots.
	m, d := newA(t, Options{})
	n := m.P.LCUOrdinary + 4
	locks := make([]memmodel.Addr, n)
	for i := range locks {
		locks[i] = m.Mem.AllocLine()
	}
	finished := false
	// Core 1 holds every lock in write mode for a while, so core 0's
	// requests all stay ISSUED/WAIT and pin LCU entries.
	m.Spawn("holder", 1, 1, func(c *machine.Ctx) {
		for _, a := range locks {
			c.HwLock(a, true)
		}
		c.Compute(30_000)
		for _, a := range locks {
			c.HwUnlock(a, true)
		}
	})
	m.Spawn("strained", 2, 0, func(c *machine.Ctx) {
		c.Compute(1_000)
		for _, a := range locks {
			c.HwTryLock(a, true, 2) // pins entries in WAIT
		}
		// Even with the table full, a fresh lock must still be acquirable
		// through the nonblocking local entry.
		fresh := m.Mem.AllocLine()
		c.HwLock(fresh, true)
		finished = true
		c.HwUnlock(fresh, true)
	})
	m.Run()
	if !finished {
		t.Fatal("LCU exhaustion blocked an acquirable free lock")
	}
	_ = d
}

func TestOverflowReadersViaNonblockingEntries(t *testing.T) {
	// Fill core 0's LCU with waiting entries, then read-acquire a lock
	// that is read-held elsewhere: the LRT must grant in overflow mode.
	m, d := newA(t, Options{})
	nPin := m.P.LCUOrdinary
	pins := make([]memmodel.Addr, nPin)
	for i := range pins {
		pins[i] = m.Mem.AllocLine()
	}
	shared := m.Mem.AllocLine()
	gotShared := false

	m.Spawn("writer-holder", 1, 1, func(c *machine.Ctx) {
		for _, a := range pins {
			c.HwLock(a, true)
		}
		c.Compute(60_000)
		for _, a := range pins {
			c.HwUnlock(a, true)
		}
	})
	m.Spawn("reader-holder", 2, 2, func(c *machine.Ctx) {
		c.HwLock(shared, false)
		c.Compute(50_000)
		c.HwUnlock(shared, false)
	})
	m.Spawn("overflower", 3, 0, func(c *machine.Ctx) {
		c.Compute(2_000)
		for _, a := range pins {
			c.Acq(a, true) // pin all ordinary entries in WAIT/ISSUED
		}
		c.HwLock(shared, false) // must go through the nonblocking entry
		gotShared = true
		c.HwUnlock(shared, false)
	})
	m.Run()
	if !gotShared {
		t.Fatal("nonblocking read acquisition failed")
	}
	if d.Stats.OverflowGrants == 0 {
		t.Fatal("expected an overflow-mode grant")
	}
}

func TestReservationPreventsNonblockingStarvation(t *testing.T) {
	// A nonblocking requestor that keeps getting RETRY must eventually get
	// the lock via the LRT reservation (Section III-D).
	m, d := newA(t, Options{})
	pins := make([]memmodel.Addr, m.P.LCUOrdinary)
	for i := range pins {
		pins[i] = m.Mem.AllocLine()
	}
	hot := m.Mem.AllocLine()
	var got sim.Time

	// Cores 1..3 hammer the hot lock in write mode.
	stop := false
	for i := 1; i <= 3; i++ {
		tid := uint64(i)
		core := i
		m.Spawn("hammer", tid, core, func(c *machine.Ctx) {
			for !stop {
				c.HwLock(hot, true)
				c.Compute(400)
				c.HwUnlock(hot, true)
			}
		})
	}
	m.Spawn("pinner", 10, 4, func(c *machine.Ctx) {
		for _, a := range pins {
			c.HwLock(a, true)
		}
		c.Compute(2_000_000)
	})
	m.Spawn("starved", 11, 0, func(c *machine.Ctx) {
		c.Compute(1_000)
		for _, a := range pins {
			c.Acq(a, true) // pin core 0's ordinary entries
		}
		c.HwLock(hot, true) // must use nonblocking entry + reservation
		got = c.P.Now()
		c.HwUnlock(hot, true)
		stop = true
	})
	m.K.RunUntil(5_000_000)
	if got == 0 {
		t.Fatal("nonblocking requestor starved")
	}
	if d.Stats.Reservations == 0 {
		t.Fatal("expected an LRT reservation to be installed")
	}
	if d.Stats.ResvGrants == 0 {
		t.Fatal("expected the reservation holder to be granted")
	}
}

func TestLRTOverflowToMemory(t *testing.T) {
	// Shrink the LRT to force eviction into the memory-backed table.
	m := machine.ModelA()
	m.P.LRTEntries = 4
	m.P.LRTAssoc = 2
	d := New(m, Options{})
	// All locks homed at the same memory controller, so one LRT holds all
	// of them and must spill to its memory overflow table.
	n := 64
	locks := make([]memmodel.Addr, 0, n)
	for len(locks) < n {
		a := m.Mem.AllocLine()
		if m.Mem.HomeOf(a) == 0 {
			locks = append(locks, a)
		}
	}
	count := 0
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		// Hold many locks at once: LRT entries cannot be freed while held.
		for _, a := range locks {
			c.HwLock(a, true)
		}
		for _, a := range locks {
			c.HwUnlock(a, true)
		}
		// All still work afterwards.
		for _, a := range locks {
			c.HwLock(a, true)
			c.HwUnlock(a, true)
			count++
		}
	})
	m.Run()
	if count != n {
		t.Fatalf("re-acquired %d locks, want %d", count, n)
	}
	if d.Stats.LRTEvictions == 0 {
		t.Fatal("expected LRT evictions with a 4-entry table and 64 held locks")
	}
	if d.Stats.LRTOverflowHits == 0 {
		t.Fatal("expected lookups served from the overflow table")
	}
}

func TestFLTBiasing(t *testing.T) {
	// With the FLT enabled, repeated acquire/release by one thread goes
	// remote only once (Section IV-C).
	m, d := newA(t, Options{FLTSize: 4})
	lock := m.Mem.AllocLine()
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		for i := 0; i < 50; i++ {
			c.HwLock(lock, true)
			c.Compute(100)
			c.HwUnlock(lock, true)
		}
	})
	m.Run()
	if d.Stats.FLTHits < 45 {
		t.Fatalf("FLT hits = %d, want ~49", d.Stats.FLTHits)
	}
	if d.Stats.Requests != 1 {
		t.Fatalf("remote requests = %d, want 1 with FLT biasing", d.Stats.Requests)
	}
}

func TestFLTHandsOffUnderContention(t *testing.T) {
	// A saved (FLT) lock must still be granted to a remote requestor.
	m, d := newA(t, Options{FLTSize: 4})
	lock := m.Mem.AllocLine()
	var got bool
	m.Spawn("bias", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		c.Compute(100)
		c.HwUnlock(lock, true) // saved in FLT
		c.Compute(10_000)
	})
	m.Spawn("other", 2, 1, func(c *machine.Ctx) {
		c.Compute(2_000)
		c.HwLock(lock, true)
		got = true
		c.HwUnlock(lock, true)
	})
	m.Run()
	if !got {
		t.Fatal("FLT retained the lock against a remote requestor")
	}
	_ = d
}

func TestFairnessFIFOUnderContention(t *testing.T) {
	// Acquisition counts should be roughly equal across threads: FIFO
	// queueing prevents unfairness.
	m, _ := newA(t, Options{})
	lock := m.Mem.AllocLine()
	counts := make([]int, 8)
	stop := false
	for i := 0; i < 8; i++ {
		idx := i
		m.Spawn("t", uint64(i+1), i, func(c *machine.Ctx) {
			for !stop {
				c.HwLock(lock, true)
				counts[idx]++
				c.Compute(100)
				c.HwUnlock(lock, true)
			}
		})
	}
	m.K.Schedule(2_000_000, func() { stop = true })
	m.K.RunUntil(4_000_000)
	min, max := counts[0], counts[0]
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		t.Fatalf("a thread was starved: counts=%v", counts)
	}
	if float64(max)/float64(min) > 1.5 {
		t.Fatalf("unfair acquisition spread: counts=%v", counts)
	}
}

func TestModelBBasicLocking(t *testing.T) {
	m, _ := newB(t, Options{})
	lock := m.Mem.AllocLine()
	ck := &checker{t: t}
	for i := 0; i < 16; i++ {
		write := i%4 == 0 // mostly readers so reader runs form in the queue
		m.Spawn("t", uint64(i+1), i*2%32, func(c *machine.Ctx) {
			for j := 0; j < 10; j++ {
				c.HwLock(lock, write)
				ck.enter(write)
				c.Compute(80)
				ck.exit(write)
				c.HwUnlock(lock, write)
			}
		})
	}
	m.Run()
	if ck.maxRead < 2 {
		t.Fatalf("no reader sharing on model B (maxRead=%d)", ck.maxRead)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (sim.Time, uint64) {
		m, d := newA(t, Options{})
		lock := m.Mem.AllocLine()
		for i := 0; i < 6; i++ {
			write := i%3 == 0
			m.Spawn("t", uint64(i+1), i, func(c *machine.Ctx) {
				for j := 0; j < 25; j++ {
					c.HwLock(lock, write)
					c.Compute(120)
					c.HwUnlock(lock, write)
				}
			})
		}
		m.Run()
		return m.K.Now(), d.Stats.Grants
	}
	t1, g1 := run()
	t2, g2 := run()
	if t1 != t2 || g1 != g2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", t1, g1, t2, g2)
	}
}

func TestManyLocksManyThreads(t *testing.T) {
	// Stress: 16 threads over 32 locks with mixed modes; must terminate
	// with invariants intact.
	m, _ := newA(t, Options{})
	locks := make([]memmodel.Addr, 32)
	cks := make([]*checker, 32)
	for i := range locks {
		locks[i] = m.Mem.AllocLine()
		cks[i] = &checker{t: t}
	}
	done := 0
	for i := 0; i < 16; i++ {
		tid := uint64(i + 1)
		core := i
		seed := int64(i * 7919)
		m.Spawn("t", tid, core, func(c *machine.Ctx) {
			x := uint64(seed) + 1
			for j := 0; j < 60; j++ {
				x = x*6364136223846793005 + 1442695040888963407
				li := int(x>>33) % len(locks)
				write := (x>>17)%4 == 0
				c.HwLock(locks[li], write)
				cks[li].enter(write)
				c.Compute(60)
				cks[li].exit(write)
				c.HwUnlock(locks[li], write)
			}
			done++
		})
	}
	m.Run()
	if done != 16 {
		t.Fatalf("done = %d, want 16 (wedged?)", done)
	}
}
