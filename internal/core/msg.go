package core

import (
	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
	"fairrw/internal/topo"
)

// msgKind discriminates the protocol messages travelling between LCUs and
// LRTs. Kinds up to and including msgHeadNotify are LRT-bound; the rest
// are LCU-bound — the split selects the second-stage pipeline latency.
type msgKind uint8

const (
	msgReq        msgKind = iota // reqMsg        → LRT
	msgRel                       // relMsg        → LRT
	msgHeadNotify                // headNotifyMsg → LRT
	msgGrant                     // grantMsg      → LCU
	msgFwdReq                    // fwdReqMsg     → LCU
	msgFwdRel                    // fwdRelMsg     → LCU
	msgWait                      // (addr, tid)   → LCU
	msgRetryReq                  // (addr, tid)   → LCU
	msgRelDone                   // (addr, tid)   → LCU
	msgRetryRel                  // (addr, tid)   → LCU
)

// devMsg is one in-flight protocol message, stored by value in the
// device's slab so sending allocates nothing at steady state. It is a
// union over the typed message structs; the field-to-message mapping
// lives in the msgOf* constructors and unpack below.
type devMsg struct {
	kind msgKind
	to   int32 // destination LRT index or LCU core

	addr memmodel.Addr
	tid  uint64  // tid / fwdReq targetTid
	aux  uint64  // xfer / lrtXfer / fwdRel searchTid
	refA nodeRef // req / grant prev / headNotify newHead / rel origHead
	refB nodeRef // headNotify prev
	lcu  int32   // rel lcu / fwdRel replyLCU
	w    bool    // write / fwdReq targetWrite
	b1   bool    // req nb / rel headDrain / grant head / fwdReq targetIsHead
	b2   bool    // grant overflow
	b3   bool    // grant fromLRT
}

func msgOfReq(m reqMsg) devMsg {
	return devMsg{kind: msgReq, addr: m.addr, refA: m.req, b1: m.nb}
}

func msgOfRel(m relMsg) devMsg {
	return devMsg{kind: msgRel, addr: m.addr, tid: m.tid, lcu: int32(m.lcu),
		w: m.write, b1: m.headDrain, refA: m.origHead}
}

func msgOfHeadNotify(m headNotifyMsg) devMsg {
	return devMsg{kind: msgHeadNotify, addr: m.addr, refA: m.newHead, aux: m.xfer, refB: m.prev}
}

func msgOfGrant(m grantMsg) devMsg {
	return devMsg{kind: msgGrant, addr: m.addr, tid: m.tid, b1: m.head,
		b2: m.overflow, aux: m.xfer, refA: m.prev, b3: m.fromLRT}
}

func msgOfFwdReq(m fwdReqMsg) devMsg {
	return devMsg{kind: msgFwdReq, addr: m.addr, refA: m.req, tid: m.targetTid,
		w: m.targetWrite, b1: m.targetIsHead, aux: m.lrtXfer}
}

func msgOfFwdRel(m fwdRelMsg) devMsg {
	return devMsg{kind: msgFwdRel, addr: m.addr, tid: m.tid, w: m.write,
		lcu: int32(m.replyLCU), aux: m.searchTid}
}

func msgSimple(kind msgKind, addr memmodel.Addr, tid uint64) devMsg {
	return devMsg{kind: kind, addr: addr, tid: tid}
}

// allocMsg parks m in a slab slot and returns the slot index. Slots come
// from a free list; the slab only grows until it covers the peak number of
// in-flight messages, after which sending allocates nothing.
func (d *Device) allocMsg(m devMsg) int32 {
	if n := len(d.freeMsgs); n > 0 {
		slot := d.freeMsgs[n-1]
		d.freeMsgs = d.freeMsgs[:n-1]
		d.msgs[slot] = m
		return slot
	}
	d.msgs = append(d.msgs, m)
	return int32(len(d.msgs) - 1)
}

// Message delivery is two-staged, like the closure version it replaces:
// the network schedules arrival, and arrival re-arms the same slot for the
// receiving unit's pipeline latency. The stage lives in the tag's low bit
// so both events share the slot.

// coreToLRT sends m from a core to addr's home LRT.
func (d *Device) coreToLRT(fromCore int, m devMsg) {
	l := d.homeLRT(m.addr)
	m.to = int32(l.index)
	d.M.Net.SendTo(topo.Core(fromCore), topo.Mem(l.index), d, uint64(d.allocMsg(m))<<1)
}

// lrtToCore sends m from an LRT to an LCU.
func (d *Device) lrtToCore(fromLRT, toCore int, m devMsg) {
	m.to = int32(toCore)
	d.M.Net.SendTo(topo.Mem(fromLRT), topo.Core(toCore), d, uint64(d.allocMsg(m))<<1)
}

// coreToCore sends m from one LCU to another.
func (d *Device) coreToCore(fromCore, toCore int, m devMsg) {
	m.to = int32(toCore)
	d.M.Net.SendTo(topo.Core(fromCore), topo.Core(toCore), d, uint64(d.allocMsg(m))<<1)
}

// Recv implements sim.Receiver. Stage 0 (tag bit clear) is network
// arrival: charge the receiving unit's pipeline latency by re-arming the
// slot. Stage 1 frees the slot and dispatches to the protocol handler.
func (d *Device) Recv(tag uint64) {
	slot := int32(tag >> 1)
	if tag&1 == 0 {
		lat := d.M.P.LCULat
		if d.msgs[slot].kind <= msgHeadNotify {
			lat = d.M.P.LRTLat
		}
		d.M.K.ScheduleRecv(lat, d, tag|1)
		return
	}
	m := d.msgs[slot]
	d.msgs[slot] = devMsg{}
	d.freeMsgs = append(d.freeMsgs, slot)
	d.dispatch(m)
}

// dispatch unpacks m and invokes the destination unit's handler.
func (d *Device) dispatch(m devMsg) {
	switch m.kind {
	case msgReq:
		d.lrts[m.to].onRequest(reqMsg{addr: m.addr, req: m.refA, nb: m.b1})
	case msgRel:
		d.lrts[m.to].onRelease(relMsg{addr: m.addr, tid: m.tid, lcu: int(m.lcu),
			write: m.w, headDrain: m.b1, origHead: m.refA})
	case msgHeadNotify:
		d.lrts[m.to].onHeadNotify(headNotifyMsg{addr: m.addr, newHead: m.refA, xfer: m.aux, prev: m.refB})
	case msgGrant:
		d.lcus[m.to].onGrant(grantMsg{addr: m.addr, tid: m.tid, head: m.b1,
			overflow: m.b2, xfer: m.aux, prev: m.refA, fromLRT: m.b3})
	case msgFwdReq:
		d.lcus[m.to].onFwdRequest(fwdReqMsg{addr: m.addr, req: m.refA, targetTid: m.tid,
			targetWrite: m.w, targetIsHead: m.b1, lrtXfer: m.aux})
	case msgFwdRel:
		d.lcus[m.to].onFwdRelease(fwdRelMsg{addr: m.addr, tid: m.tid, write: m.w,
			replyLCU: int(m.lcu), searchTid: m.aux})
	case msgWait:
		d.lcus[m.to].onWait(m.addr, m.tid)
	case msgRetryReq:
		d.lcus[m.to].onRetryReq(m.addr, m.tid)
	case msgRelDone:
		d.lcus[m.to].onRelDone(m.addr, m.tid)
	case msgRetryRel:
		d.lcus[m.to].onRetryRel(m.addr, m.tid)
	}
}

// reply sends m to an LCU once the extra (overflow-handling) latency has
// elapsed. The zero-latency common case sends immediately; the overflow
// case is the one remaining closure on the message path, and it is rare
// by construction (Stats.LRTOverflowHits counts it).
func (l *lrt) reply(extra sim.Time, toCore int, m devMsg) {
	if extra == 0 {
		l.d.lrtToCore(l.index, toCore, m)
		return
	}
	d := l.d
	idx := l.index
	d.M.K.Schedule(extra, func() { d.lrtToCore(idx, toCore, m) })
}
