// Package core implements the paper's contribution: the Lock Control Unit
// (LCU), a per-core hardware table that builds distributed reader-writer
// lock queues with direct LCU-to-LCU transfer, and the Lock Reservation
// Table (LRT), a per-memory-controller unit that allocates lock queues,
// tracks their head and tail, and handles overflow (Sections III-A..III-F).
//
// Locks are addressed by physical word address and associated with software
// thread-ids, decoupling them from cores so that thread migration,
// suspension and trylock aborts degrade gracefully instead of wedging the
// queue (Section III-C). Overflow of either structure preserves forward
// progress: LCUs reserve nonblocking entries, the LRT falls back to a
// memory-backed table, and a reservation mechanism prevents starvation of
// requestors that cannot join queues (Sections III-D, III-E).
package core

import (
	"fmt"

	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
)

// Status is the state of an LCU entry (Figure 3).
type Status uint8

const (
	// StatusFree marks an unallocated table slot.
	StatusFree Status = iota
	// StatusIssued: request sent to the LRT, no reply yet.
	StatusIssued
	// StatusWait: enqueued behind another node, spinning locally.
	StatusWait
	// StatusRcv: lock grant received; the local thread has not taken it.
	StatusRcv
	// StatusAcq: lock taken by the local thread.
	StatusAcq
	// StatusRel: release in progress; the entry survives until the LRT
	// acknowledges (or until it hands the lock to a racing requestor).
	StatusRel
	// StatusRdRel: read lock released by an intermediate queue node; the
	// entry waits for the Head token to pass before deallocating, and the
	// local thread may re-acquire in read mode meanwhile (Section III-B).
	StatusRdRel
	// StatusSaved: FLT extension (Section IV-C): the lock is logically
	// free but retained by this LCU so the owning thread can re-acquire
	// without remote traffic.
	StatusSaved
)

func (s Status) String() string {
	switch s {
	case StatusFree:
		return "FREE"
	case StatusIssued:
		return "ISSUED"
	case StatusWait:
		return "WAIT"
	case StatusRcv:
		return "RCV"
	case StatusAcq:
		return "ACQ"
	case StatusRel:
		return "REL"
	case StatusRdRel:
		return "RD_REL"
	case StatusSaved:
		return "SAVED"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Class distinguishes ordinary LCU entries from the nonblocking ones that
// guarantee forward progress under table exhaustion (Section III-D).
type Class uint8

const (
	// ClassOrdinary entries may join queues.
	ClassOrdinary Class = iota
	// ClassLocal is the nonblocking entry reserved for local requests; it
	// may only take free locks or overflow-mode read grants.
	ClassLocal
	// ClassRemote is the nonblocking entry reserved for servicing releases
	// that arrive with no allocated entry (migrated or uncontended).
	ClassRemote
)

// nodeRef identifies a queue node: (threadid, LCUid, R/W mode).
type nodeRef struct {
	valid bool
	tid   uint64
	lcu   int
	write bool
}

func (n nodeRef) String() string {
	if !n.valid {
		return "-"
	}
	m := "R"
	if n.write {
		m = "W"
	}
	return fmt.Sprintf("t%d@lcu%d/%s", n.tid, n.lcu, m)
}

// entry is one LCU table slot (~20 bytes of architectural state in the
// paper's Figure 3).
type entry struct {
	class Class

	addr     memmodel.Addr
	tid      uint64
	write    bool
	status   Status
	head     bool
	overflow bool // granted in LRT overflow mode; not part of any queue
	next     nodeRef
	xfer     uint64 // last observed head-transfer count for this lock

	nb bool // requested through a nonblocking entry
	// viaLRT marks a grant that came directly from the LRT (uncontended or
	// overflow). Only such entries may be dropped at acquisition; a node
	// granted by direct transfer is a queue head and must keep its entry
	// so in-flight forwarded requests find it.
	viaLRT bool

	timerSeq uint64    // grant-timer generation
	waiter   *sim.Proc // local thread parked on this entry
}

// reset clears an entry back to an unallocated slot, preserving its class.
func (e *entry) reset() {
	cl := e.class
	*e = entry{class: cl}
}
