package core

import (
	"testing"

	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
)

// lrtHarness builds a tiny LRT for white-box table tests.
func lrtHarness(t *testing.T, entries, assoc int) *lrt {
	t.Helper()
	m := machine.ModelA()
	m.P.LRTEntries = entries
	m.P.LRTAssoc = assoc
	d := New(m, Options{})
	return d.lrts[0]
}

func TestLRTPlaceAndLookup(t *testing.T) {
	l := lrtHarness(t, 8, 2)
	e, extra := l.create(0x1000)
	if extra != 0 {
		t.Fatalf("create into empty set cost %d", extra)
	}
	got, extra := l.lookup(0x1000)
	if got != e || extra != 0 {
		t.Fatalf("lookup returned %v (extra %d)", got, extra)
	}
	if miss, _ := l.lookup(0x9999000); miss != nil {
		t.Fatal("lookup of absent address returned an entry")
	}
}

func TestLRTEvictionToOverflowAndBack(t *testing.T) {
	// 1 set x 2 ways: the third same-set entry must evict the LRU into the
	// memory overflow table, and looking the victim up must swap it back.
	l := lrtHarness(t, 2, 2)
	addrs := []memmodel.Addr{}
	// All addresses land in the single set.
	for a := memmodel.Addr(0x1000); len(addrs) < 3; a += 64 {
		addrs = append(addrs, a)
	}
	e0, _ := l.create(addrs[0])
	l.create(addrs[1])
	// Touch e0 so addrs[1] is LRU.
	l.lookup(addrs[0])
	l.create(addrs[2]) // evicts addrs[1]
	if l.ovfCount != 1 {
		t.Fatalf("overflow table has %d entries, want 1", l.ovfCount)
	}
	if l.ovfPeek(addrs[1]) == nil {
		t.Fatal("evicted the wrong victim (LRU should be addrs[1])")
	}
	// Swap back: costs memory latency and displaces another entry.
	got, extra := l.lookup(addrs[1])
	if got == nil || got.addr != addrs[1] {
		t.Fatal("overflowed entry not found")
	}
	if extra == 0 {
		t.Fatal("overflow lookup should charge memory latency")
	}
	_ = e0
}

func TestLRTMissWithOverflowChargesMemory(t *testing.T) {
	l := lrtHarness(t, 2, 2)
	for a := memmodel.Addr(0x1000); a < 0x1000+3*64; a += 64 {
		l.create(a)
	}
	// Overflow flag set: even a miss must consult the memory table.
	got, extra := l.lookup(0x77770000)
	if got != nil {
		t.Fatal("phantom entry")
	}
	if extra == 0 {
		t.Fatal("miss with overflow flag should charge memory latency")
	}
}

func TestLRTRemove(t *testing.T) {
	l := lrtHarness(t, 2, 2)
	for a := memmodel.Addr(0x1000); a < 0x1000+3*64; a += 64 {
		l.create(a)
	}
	// 0x1000 was the LRU victim, so it lives in the overflow table; remove
	// it there, then remove one resident entry.
	l.remove(0x1000)
	if l.ovfCount != 0 {
		t.Fatalf("overflow still has %d entries", l.ovfCount)
	}
	l.remove(0x1040)
	n := 0
	for _, set := range l.sets {
		n += len(set)
	}
	if n != 1 {
		t.Fatalf("%d entries remain, want 1", n)
	}
	// Removing an absent address is a no-op.
	l.remove(0xdead000)
	if n := len(l.sets[0]); n != 1 {
		t.Fatalf("no-op remove changed the table: %d", n)
	}
}

func TestLRTEntryFreePredicate(t *testing.T) {
	e := &lrtEntry{}
	if !e.free() {
		t.Fatal("empty entry should be free")
	}
	e.readerCnt = 1
	if e.free() {
		t.Fatal("entry with overflow readers is not free")
	}
	e.readerCnt = 0
	e.head = nodeRef{valid: true, tid: 1, lcu: 0}
	if e.free() {
		t.Fatal("entry with a queue head is not free")
	}
}

func TestSameRef(t *testing.T) {
	a := nodeRef{valid: true, tid: 3, lcu: 5, write: true}
	b := nodeRef{valid: true, tid: 3, lcu: 5, write: false}
	if !sameRef(a, b) {
		t.Fatal("sameRef ignores mode and must match on (tid,lcu)")
	}
	if sameRef(a, nodeRef{}) || sameRef(nodeRef{}, nodeRef{}) {
		t.Fatal("invalid refs never match")
	}
}
