package core

import "fairrw/internal/memmodel"

// reqMsg is a lock REQUEST from an LCU to the home LRT.
type reqMsg struct {
	addr memmodel.Addr
	req  nodeRef
	nb   bool // issued from a nonblocking entry: must not join a queue
}

// relMsg is a RELEASE from an LCU to the home LRT.
type relMsg struct {
	addr  memmodel.Addr
	tid   uint64
	lcu   int
	write bool
	// headDrain marks the tail of a fully-drained read queue releasing on
	// behalf of the original head (whose entry still awaits its ack).
	headDrain bool
	origHead  nodeRef
}

// grantMsg delivers the lock, a reader share-grant (head=false), or the
// Head token (head=true to a node already holding a read grant).
type grantMsg struct {
	addr     memmodel.Addr
	tid      uint64
	head     bool
	overflow bool
	xfer     uint64
	prev     nodeRef // previous head, to be acknowledged via the LRT
	fromLRT  bool    // granted directly by the LRT: no head notification needed
}

// fwdReqMsg is an enqueue forwarded by the LRT to the previous queue tail.
type fwdReqMsg struct {
	addr         memmodel.Addr
	req          nodeRef
	targetTid    uint64
	targetWrite  bool
	targetIsHead bool
	lrtXfer      uint64
}

// fwdRelMsg is a release forwarded through the queue on behalf of a
// migrated owner.
type fwdRelMsg struct {
	addr      memmodel.Addr
	tid       uint64 // thread whose lock hold is being released
	write     bool
	replyLCU  int    // LCU hosting the releaser's temporary entry
	searchTid uint64 // queue node to inspect at the receiving LCU
}

// headNotifyMsg tells the LRT about a head transfer, keeping the head
// pointer valid and acknowledging the previous holder (Figure 5).
type headNotifyMsg struct {
	addr    memmodel.Addr
	newHead nodeRef
	xfer    uint64
	prev    nodeRef
}
