package core

import (
	"testing"

	"fairrw/internal/machine"
	"fairrw/internal/sim"
)

func TestInvalidatePageReleasesWaiters(t *testing.T) {
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	var reacquired bool
	m.Spawn("holder", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		c.Compute(50_000)
		c.HwUnlock(lock, true)
	})
	m.Spawn("waiter", 2, 1, func(c *machine.Ctx) {
		c.Compute(500)
		c.HwLock(lock, true) // queue, survive the invalidation, re-request
		reacquired = true
		c.HwUnlock(lock, true)
	})
	// OS pages out the lock's page mid-wait.
	m.K.Schedule(5_000, func() {
		if n := d.InvalidatePage(lock); n == 0 {
			t.Error("InvalidatePage found nothing to invalidate")
		}
	})
	m.Run()
	if !reacquired {
		t.Fatal("waiter never reacquired after page invalidation")
	}
}

func TestInvalidatePageKeepsOwnerConsistent(t *testing.T) {
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	var second bool
	m.Spawn("owner", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		c.Compute(20_000)
		c.HwUnlock(lock, true) // released after the invalidation: must work
	})
	m.Spawn("later", 2, 1, func(c *machine.Ctx) {
		c.Compute(30_000)
		c.HwLock(lock, true)
		second = true
		c.HwUnlock(lock, true)
	})
	m.K.Schedule(5_000, func() { d.InvalidatePage(lock) })
	m.Run()
	if !second {
		t.Fatal("lock wedged after page invalidation of the owner")
	}
}

func TestInvalidatePageConvertsQueueReadersToOverflow(t *testing.T) {
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	done := 0
	for i := 0; i < 3; i++ {
		tid := uint64(i + 1)
		m.Spawn("reader", tid, i, func(c *machine.Ctx) {
			c.HwLock(lock, false)
			c.Compute(20_000)
			c.HwUnlock(lock, false)
			done++
		})
	}
	var writerGot bool
	m.Spawn("writer", 9, 5, func(c *machine.Ctx) {
		c.Compute(30_000)
		c.HwLock(lock, true)
		writerGot = true
		c.HwUnlock(lock, true)
	})
	m.K.Schedule(8_000, func() { d.InvalidatePage(lock) })
	m.Run()
	if done != 3 {
		t.Fatalf("only %d readers finished", done)
	}
	if !writerGot {
		t.Fatal("writer wedged: overflow reader accounting broken after invalidation")
	}
}

func TestEnqueuePrefetch(t *testing.T) {
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	var coldLat, prefLat sim.Time
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		// Cold acquisition: full LRT round trip visible to the thread.
		t0 := c.P.Now()
		c.HwLock(lock, true)
		coldLat = c.P.Now() - t0
		c.HwUnlock(lock, true)
		c.Compute(5_000)

		// Prefetched acquisition: issue Enq, overlap with compute, then
		// lock. The overlap must stay within the grant timer, or the LCU
		// reclaims the unconsumed grant (Section III-C).
		d.Enq(c.P, c.Core(), c.TID, lock, true)
		c.Compute(500) // grant arrives during this work
		t0 = c.P.Now()
		c.HwLock(lock, true)
		prefLat = c.P.Now() - t0
		c.HwUnlock(lock, true)
	})
	m.Run()
	if prefLat*4 > coldLat {
		t.Fatalf("prefetch did not hide the request latency: cold=%d prefetched=%d", coldLat, prefLat)
	}
}

func TestInvalidatePageIdempotent(t *testing.T) {
	m, d := newA(t, Options{})
	lock := m.Mem.AllocLine()
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		c.HwUnlock(lock, true)
	})
	m.Run()
	// Nothing held: both calls are no-ops.
	if n := d.InvalidatePage(lock); n != 0 {
		t.Fatalf("invalidated %d entries on an idle page", n)
	}
	if n := d.InvalidatePage(lock); n != 0 {
		t.Fatalf("second invalidation found %d entries", n)
	}
}
