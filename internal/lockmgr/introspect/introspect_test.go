package introspect

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorder: every method must be a no-op on a nil receiver —
// that is the whole "observability off" contract.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Record(0, Event{Kind: EvPark})
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil recorder Events() = %v, want nil", evs)
	}
	var sb strings.Builder
	r.Dump(&sb)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatalf("nil recorder Dump() = %q", sb.String())
	}
}

func TestRecorderRetainsAndOrders(t *testing.T) {
	r := NewRecorder(1, 8)
	for i := 1; i <= 5; i++ {
		r.Record(0, Event{TS: int64(i), Kind: EvGrant, SID: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("len(Events) = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.TS != int64(i+1) || ev.SID != uint64(i+1) {
			t.Fatalf("event %d = %+v, out of order", i, ev)
		}
	}
}

// TestRecorderWrapAround: a full ring overwrites oldest-first and never
// grows.
func TestRecorderWrapAround(t *testing.T) {
	const perRing = 8
	r := NewRecorder(1, perRing)
	for i := 1; i <= 3*perRing; i++ {
		r.Record(0, Event{TS: int64(i), Kind: EvPark})
	}
	evs := r.Events()
	if len(evs) != perRing {
		t.Fatalf("len(Events) = %d, want %d", len(evs), perRing)
	}
	// The survivors are exactly the last perRing events, oldest first.
	for i, ev := range evs {
		want := int64(2*perRing + i + 1)
		if ev.TS != want {
			t.Fatalf("event %d TS = %d, want %d", i, ev.TS, want)
		}
	}
}

// TestRecorderSharding: keys land in key&mask rings; ring count rounds
// up to a power of two.
func TestRecorderSharding(t *testing.T) {
	r := NewRecorder(3, 4) // rounds up to 4 rings
	if got := len(r.rings); got != 4 {
		t.Fatalf("rings = %d, want 4", got)
	}
	// 8 distinct keys across 4 rings: 2 events per ring, none evicted.
	for k := uint32(0); k < 8; k++ {
		r.Record(k, Event{TS: int64(k) + 1, Kind: EvUnpark})
	}
	if evs := r.Events(); len(evs) != 8 {
		t.Fatalf("len(Events) = %d, want 8", len(evs))
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(4, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(uint32(g), Event{Kind: EvGrant, SID: uint64(g)})
				if i%100 == 0 {
					r.Events()
				}
			}
		}()
	}
	wg.Wait()
	if evs := r.Events(); len(evs) != 4*64 {
		t.Fatalf("len(Events) = %d, want %d (all rings full)", len(evs), 4*64)
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRecorder(1, 4)
	r.Record(0, Event{TS: 1000, Kind: EvPark, Conn: 7, SID: 42, Hash: Hash("k"), Wait: 5e6})
	r.Record(0, Event{TS: 2000, Kind: EvGrant, Conn: 7, SID: 42, Hash: Hash("k"), Wait: 1e6})
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"PARK", "GRANT", "sid=42", fmt.Sprintf("lock=%08x", Hash("k"))} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestRecordAllocFree(t *testing.T) {
	r := NewRecorder(2, 16)
	ev := Event{TS: 1, Kind: EvGrant, SID: 3, Hash: 4}
	if n := testing.AllocsPerRun(100, func() { r.Record(1, ev) }); n != 0 {
		t.Fatalf("Record allocates %v/op, want 0", n)
	}
}

// TestHashMatchesBytes: the string and byte-slice hashes must agree —
// the server hashes wire names as bytes, the manager as strings, and
// flight-event correlation depends on them colliding on purpose.
func TestHashMatchesBytes(t *testing.T) {
	for _, s := range []string{"", "k", "key-0007", "a longer lock name"} {
		if Hash(s) != HashBytes([]byte(s)) {
			t.Fatalf("Hash(%q) = %08x, HashBytes = %08x", s, Hash(s), HashBytes([]byte(s)))
		}
	}
	if Hash("a") == Hash("b") {
		t.Fatal("distinct names hash equal")
	}
}

func TestPromWriter(t *testing.T) {
	var sb strings.Builder
	pw := &PromWriter{W: &sb}
	pw.Counter("x_total", "", 3)
	pw.Counter("x_total", `worker="1"`, 4) // same family: one TYPE header
	pw.Gauge("g", `name="a\"b"`, 1.5)
	out := sb.String()
	if strings.Count(out, "# TYPE x_total counter") != 1 {
		t.Fatalf("TYPE header not deduped:\n%s", out)
	}
	for _, want := range []string{
		"x_total 3\n", `x_total{worker="1"} 4`, "# TYPE g gauge", `g{name="a\"b"} 1.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	got := EscapeLabel("a\"b\\c\nd")
	want := `a\"b\\c\nd`
	if got != want {
		t.Fatalf("EscapeLabel = %q, want %q", got, want)
	}
}
