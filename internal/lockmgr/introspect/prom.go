package introspect

import (
	"fmt"
	"io"
	"strings"
)

// PromWriter renders counters and gauges in the Prometheus text
// exposition format (version 0.0.4). It tracks which metric names have
// had their # TYPE line emitted so labelled series of the same family
// (per-worker counters, per-lock gauges) declare the type exactly once,
// which is what scrapers require. Histograms are rendered by
// stats.Histogram.WriteProm; this type covers everything else.
type PromWriter struct {
	W     io.Writer
	typed map[string]struct{}
}

func (p *PromWriter) header(name, typ string) {
	if p.typed == nil {
		p.typed = make(map[string]struct{})
	}
	if _, ok := p.typed[name]; ok {
		return
	}
	p.typed[name] = struct{}{}
	fmt.Fprintf(p.W, "# TYPE %s %s\n", name, typ)
}

// Counter emits one counter sample. labels is the brace-free label list
// (`worker="3"`), empty for an unlabelled series.
func (p *PromWriter) Counter(name, labels string, v uint64) {
	p.header(name, "counter")
	if labels == "" {
		fmt.Fprintf(p.W, "%s %d\n", name, v)
	} else {
		fmt.Fprintf(p.W, "%s{%s} %d\n", name, labels, v)
	}
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, labels string, v float64) {
	p.header(name, "gauge")
	if labels == "" {
		fmt.Fprintf(p.W, "%s %g\n", name, v)
	} else {
		fmt.Fprintf(p.W, "%s{%s} %g\n", name, labels, v)
	}
}

// EscapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline. Lock names are caller-controlled bytes, so
// the hot-lock table must escape them before they land in a label.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
