// Package introspect is the live observability substrate for the lock
// service: a grant-path flight recorder and Prometheus text-format
// helpers. It deliberately knows nothing about lockmgr or the server —
// both layers write events into a shared Recorder and the admin plane
// (internal/lockmgr/server) renders them — so there is no import cycle
// and the recorder can be reused by any subsystem.
//
// The design carries over internal/obs's rules: recording is allocation
// free, a nil *Recorder is a no-op on every method (zero overhead when
// observability is disabled), and memory is bounded up front (fixed-size
// rings that overwrite the oldest event, never grow).
package introspect

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind classifies one flight-recorder event. The set covers the grant
// path of a contended acquire end to end: the park that takes it off the
// event loop, the resolution (grant, timeout, lease revocation), the
// injection back into the owning worker, plus the session- and
// connection-lifecycle events that explain why a grant never came.
type Kind uint8

const (
	// EvPark: an acquire would block; the server parked it as a
	// continuation. Wait carries the request's wait bound (ns; <0 means
	// until the lease expires).
	EvPark Kind = iota + 1
	// EvGrant: a contended acquire was granted. Wait is the measured
	// queue wait in ns.
	EvGrant
	// EvTimeout: a contended acquire timed out after Wait ns.
	EvTimeout
	// EvRevoke: a contended acquire was cancelled by session expiry
	// after waiting Wait ns.
	EvRevoke
	// EvSlow: a grant's queue wait crossed the slow-lock threshold
	// (recorded in addition to EvGrant; also hits the slow-lock log).
	EvSlow
	// EvExpire: a session's lease lapsed and the reaper revoked it.
	// Wait carries the number of holds revoked.
	EvExpire
	// EvUnpark: the grant completion was injected back into the owning
	// event-loop worker (response write + deferred-frame re-parse).
	EvUnpark
	// EvCondemn: a connection was condemned (malformed frame or write
	// error); buffered responses still flush, then it drops.
	EvCondemn
	// EvDrain: a connection drained cleanly (EOF with no frames left).
	EvDrain
)

// String names the event kind for dumps.
func (k Kind) String() string {
	switch k {
	case EvPark:
		return "PARK"
	case EvGrant:
		return "GRANT"
	case EvTimeout:
		return "TIMEOUT"
	case EvRevoke:
		return "REVOKE"
	case EvSlow:
		return "SLOW"
	case EvExpire:
		return "EXPIRE"
	case EvUnpark:
		return "UNPARK"
	case EvCondemn:
		return "CONDEMN"
	case EvDrain:
		return "DRAIN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one flight-recorder record. Fields that do not apply to a
// kind are zero; lock names are carried as their FNV-1a hash so the
// record stays fixed-size and recording never allocates.
type Event struct {
	TS   int64  // wall clock, UnixNano
	Wait int64  // ns (see the Kind constants for per-kind meaning)
	SID  uint64 // session id (0 = none)
	Hash uint32 // lock-name hash (0 = none)
	Conn int32  // connection id (0 = none)
	Kind Kind
}

// ring is one writer-sharded event buffer. pos counts events ever
// written, so pos%len is the next slot and min(pos, len) the population.
// The trailing pad keeps neighbouring rings' mutexes and cursors off a
// shared cache line (the same discipline lockmgr's shards use).
type ring struct {
	mu  sync.Mutex
	pos uint64
	buf []Event
	_   [88]byte
}

// Recorder is a fixed-size, sharded flight recorder. Writers pick a ring
// by key (the server uses its worker index, the manager the lock-name
// hash), so in steady state each ring has one writer and the per-event
// mutex is uncontended. All methods are safe on a nil receiver and do
// nothing — callers thread a possibly-nil *Recorder and pay only a nil
// check when observability is off.
type Recorder struct {
	mask  uint32
	rings []ring
}

// NewRecorder creates a recorder with rings rings (rounded up to a power
// of two, default 4) of perRing events each (default 256).
func NewRecorder(rings, perRing int) *Recorder {
	if rings <= 0 {
		rings = 4
	}
	for rings&(rings-1) != 0 {
		rings++
	}
	if perRing <= 0 {
		perRing = 256
	}
	r := &Recorder{mask: uint32(rings - 1), rings: make([]ring, rings)}
	for i := range r.rings {
		r.rings[i].buf = make([]Event, perRing)
	}
	return r
}

// Record appends ev to the ring selected by key, overwriting the oldest
// event once the ring is full. ev.TS is stamped here if zero.
func (r *Recorder) Record(key uint32, ev Event) {
	if r == nil {
		return
	}
	if ev.TS == 0 {
		ev.TS = time.Now().UnixNano()
	}
	rg := &r.rings[key&r.mask]
	rg.mu.Lock()
	rg.buf[rg.pos%uint64(len(rg.buf))] = ev
	rg.pos++
	rg.mu.Unlock()
}

// Events returns a snapshot of every retained event across all rings,
// oldest first (merged by timestamp). Nil-safe; allocates — dump path
// only.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.rings {
		rg := &r.rings[i]
		rg.mu.Lock()
		n := rg.pos
		if n > uint64(len(rg.buf)) {
			n = uint64(len(rg.buf))
		}
		out = append(out, rg.buf[:n]...)
		rg.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Dump renders the retained events as text, one line per event, oldest
// first — the wire-service analogue of obs.Capture.WriteFlight.
func (r *Recorder) Dump(w io.Writer) {
	evs := r.Events()
	if len(evs) == 0 {
		fmt.Fprintln(w, "(flight recorder empty)")
		return
	}
	t0 := evs[0].TS
	for _, ev := range evs {
		fmt.Fprintf(w, "[%+12.6fs] %-8s conn=%-4d sid=%-6d lock=%08x wait=%s\n",
			float64(ev.TS-t0)/1e9, ev.Kind, ev.Conn, ev.SID, ev.Hash,
			time.Duration(ev.Wait))
	}
}

// Hash is FNV-1a over a string: the lock-name hash carried in events.
// It matches lockmgr's shard hash, so a flight-recorder hash can be
// mapped back to a shard (and, via the hot-lock table, usually a name).
func Hash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// HashBytes is Hash for byte slices without a conversion allocation.
func HashBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * 16777619
	}
	return h
}
