// Integration tests for the distributed lockmgr cluster: three real
// lockd servers (manager + event-loop server + cluster node) on
// loopback TCP, driven by real clients and Routers. External test
// package because the client imports cluster (for the map), so an
// in-package test importing client would cycle.
package cluster_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
	"fairrw/internal/lockmgr/cluster"
	"fairrw/internal/lockmgr/server"
)

// testCluster is an in-process N-node cluster. Listeners are created
// before any node starts so every member address is known up front —
// the same order-of-operations cmd/lockd uses.
type testCluster struct {
	t      *testing.T
	addrs  []string
	mgrs   []*lockmgr.Manager
	nodes  []*cluster.Node
	srvs   []*server.Server
	done   []chan struct{}
	killed []bool
}

// startCluster boots n members. fw is the failover window AND the
// managers' MaxLease (lockd wires the same equality: every lease the
// dead node granted has lapsed once the window passes).
func startCluster(t *testing.T, n int, fw time.Duration) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		tc.addrs = append(tc.addrs, ln.Addr().String())
	}
	for i := range lns {
		m := lockmgr.New(lockmgr.Config{
			SweepInterval: 2 * time.Millisecond,
			MaxLease:      fw,
		})
		node, err := cluster.NewNode(cluster.Config{
			Self:           tc.addrs[i],
			Members:        tc.addrs,
			Manager:        m,
			Interval:       20 * time.Millisecond,
			SuspectAfter:   3,
			FailoverWindow: fw,
			BootGrace:      2 * time.Second,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		srv := server.NewWithConfig(m, server.Config{Workers: 2, Cluster: node})
		done := make(chan struct{})
		go func(ln net.Listener) {
			srv.Serve(ln)
			close(done)
		}(lns[i])
		node.Start()
		tc.mgrs = append(tc.mgrs, m)
		tc.nodes = append(tc.nodes, node)
		tc.srvs = append(tc.srvs, srv)
		tc.done = append(tc.done, done)
		tc.killed = append(tc.killed, false)
	}
	t.Cleanup(tc.stopAll)
	return tc
}

// kill takes member i down hard: its heartbeats stop and its listener
// and connections close, so peers see pure transport failures — the
// in-process stand-in for SIGKILL.
func (tc *testCluster) kill(i int) {
	tc.killed[i] = true
	tc.nodes[i].Stop()
	tc.srvs[i].Shutdown(0)
	<-tc.done[i]
}

func (tc *testCluster) stopAll() {
	for i := range tc.nodes {
		if tc.killed[i] {
			continue
		}
		tc.killed[i] = true
		tc.nodes[i].Stop() // before Shutdown: no heartbeat may t.Logf after the test returns
		tc.srvs[i].Shutdown(2 * time.Second)
		<-tc.done[i]
	}
}

// awaitHealthy blocks until every live member has heard from every
// peer at least once. Until then BootGrace (correctly) forgives missed
// heartbeats, so killing a member straight out of boot would not be
// detected — the steady state is the precondition for meaningful
// failure-detection timing.
func (tc *testCluster) awaitHealthy() {
	tc.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := true
		for i, n := range tc.nodes {
			if tc.killed[i] {
				continue
			}
			for _, p := range n.Status().Peers {
				if p.LastAckMS < 0 {
					healthy = false
				}
			}
		}
		if healthy {
			return
		}
		if time.Now().After(deadline) {
			tc.t.Fatal("cluster never became healthy: some peer never acked a heartbeat")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dialSession opens a conn+session on member i.
func (tc *testCluster) dialSession(i int, lease time.Duration) (*client.Conn, uint64) {
	tc.t.Helper()
	c, err := client.Dial(tc.addrs[i])
	if err != nil {
		tc.t.Fatalf("dial %s: %v", tc.addrs[i], err)
	}
	sid, err := c.Open(lease)
	if err != nil {
		tc.t.Fatalf("open on %s: %v", tc.addrs[i], err)
	}
	return c, sid
}

// TestClusterRouting asserts the ownership contract over the wire: for
// every name, exactly the rendezvous owner executes ops, every other
// member answers NotOwner carrying the membership, and all members
// agree on who the owner is.
func TestClusterRouting(t *testing.T) {
	tc := startCluster(t, 3, 2*time.Second)

	conns := make([]*client.Conn, 3)
	sids := make([]uint64, 3)
	for i := range conns {
		conns[i], sids[i] = tc.dialSession(i, 2*time.Second)
		defer conns[i].Close()
	}

	names := []string{
		"key-0000", "key-0001", "key-0002", "key-0003",
		"key-0004", "key-0005", "key-0006", "key-0007",
		"orders/1234", "a", "zz-top", "the-quick-brown-fox",
	}
	ownersSeen := map[string]bool{}
	for _, name := range names {
		want := tc.nodes[0].Current().Owner(name)
		for i := 1; i < 3; i++ {
			if got := tc.nodes[i].Current().Owner(name); got != want {
				t.Fatalf("owner(%q): node %d says %s, node 0 says %s", name, i, got, want)
			}
		}
		ownersSeen[want] = true
		for i := range conns {
			err := conns[i].Acquire(sids[i], name, true, 0)
			if tc.addrs[i] == want {
				if err != nil {
					t.Fatalf("owner %s: acquire %q: %v", want, name, err)
				}
				if err := conns[i].Release(sids[i], name, true); err != nil {
					t.Fatalf("owner %s: release %q: %v", want, name, err)
				}
				continue
			}
			if !errors.Is(err, client.ErrNotOwner) {
				t.Fatalf("non-owner %s: acquire %q: got %v, want ErrNotOwner", tc.addrs[i], name, err)
			}
			wm, ok := conns[i].Membership()
			if !ok {
				t.Fatalf("non-owner %s: NotOwner carried no membership", tc.addrs[i])
			}
			if wm.Epoch != 1 || len(wm.Members) != 3 {
				t.Fatalf("NotOwner membership: epoch %d, %d members; want 1, 3", wm.Epoch, len(wm.Members))
			}
		}
	}
	// Sanity on the namespace split: a dozen names across three nodes
	// should not all land on one member.
	if len(ownersSeen) < 2 {
		t.Fatalf("all %d names owned by one member — rendezvous split implausible", len(names))
	}

	// ClusterInfo from any member reports the same membership.
	wm, err := conns[0].ClusterInfo()
	if err != nil {
		t.Fatalf("ClusterInfo: %v", err)
	}
	if wm.Epoch != 1 || len(wm.Members) != 3 {
		t.Fatalf("ClusterInfo: epoch %d, %d members; want 1, 3", wm.Epoch, len(wm.Members))
	}
}

// TestClusterFailover is the acceptance scenario: a client holds a lock
// on a member, the member is killed mid-hold, and exactly one surviving
// waiter wins the re-granted lock — on the new rendezvous owner, within
// 2x the failover window, in FIFO order among the survivors.
func TestClusterFailover(t *testing.T) {
	// The window is sized so the fixed costs around it — death
	// detection (~60ms) and scheduler noise on a loaded CI host — stay
	// a small fraction of the asserted 2x bound.
	const fw = 600 * time.Millisecond
	tc := startCluster(t, 3, fw)
	tc.awaitHealthy()

	// Find which member owns the contended name, and who inherits it.
	const name = "failover-key"
	m0 := tc.nodes[0].Current()
	victimAddr := m0.Owner(name)
	victim := -1
	for i, a := range tc.addrs {
		if a == victimAddr {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("owner %s not in member list", victimAddr)
	}
	heirAddr := m0.Without(victimAddr).Owner(name)
	heir := -1
	for i, a := range tc.addrs {
		if a == heirAddr {
			heir = i
		}
	}
	t.Logf("name %q: owner %s (node %d), heir %s (node %d)", name, victimAddr, victim, heirAddr, heir)

	// The doomed hold, taken directly on the victim.
	hc, hsid := tc.dialSession(victim, fw)
	defer hc.Close()
	if err := hc.Acquire(hsid, name, true, 0); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	newRouter := func() *client.Router {
		r, err := client.NewRouter(client.RouterConfig{
			Seeds:          tc.addrs,
			Lease:          fw,
			KeepAliveEvery: fw / 4,
		})
		if err != nil {
			t.Fatalf("router: %v", err)
		}
		return r
	}
	r1, r2 := newRouter(), newRouter()
	// Exit ordering matters even when an assertion fails mid-flight: a
	// Router's ops are single-goroutine, so the waiter goroutines must
	// be unblocked and joined BEFORE the routers close, or Close would
	// race an in-flight op on the same conn. Defers run LIFO.
	var wg sync.WaitGroup
	w1Release := make(chan struct{})
	releaseW1 := sync.OnceFunc(func() { close(w1Release) })
	defer r1.Close()
	defer r2.Close()
	defer wg.Wait()
	defer releaseW1()

	tKill := time.Now()
	tc.kill(victim)

	// Waiter 1 re-aims at the heir, queues behind the ghost hold, and is
	// granted when the quarantine lease expires.
	var grants atomic.Int32
	w1Order := make(chan int32, 1)
	w1Done := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := r1.Acquire(name, true, 3*time.Second)
		if err == nil {
			w1Order <- grants.Add(1)
			<-w1Release
			err = r1.Release(name, true)
		}
		w1Done <- err
	}()

	// Stagger arrival: waiter 2 starts only once waiter 1 is parked on
	// the heir's queue (behind the ghost hold), so FIFO order among the
	// survivors is deterministic.
	deadline := time.Now().Add(3 * time.Second)
	for tc.mgrs[heir].QueueLen(name) < 1 {
		select {
		case err := <-w1Done:
			t.Fatalf("waiter 1 finished before queuing behind the ghost: %v", err)
		case ord := <-w1Order:
			t.Fatalf("waiter 1 granted (%d-th) without queuing behind the ghost — quarantine never armed", ord)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiter 1 never queued on heir (QueueLen %d)", tc.mgrs[heir].QueueLen(name))
		}
		time.Sleep(time.Millisecond)
	}
	w2Order := make(chan int32, 1)
	w2Done := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := r2.Acquire(name, true, 3*time.Second)
		if err == nil {
			w2Order <- grants.Add(1)
			err = r2.Release(name, true)
		}
		w2Done <- err
	}()

	// Exactly one re-grant within 2x the window: waiter 1, first.
	select {
	case ord := <-w1Order:
		if ord != 1 {
			t.Fatalf("waiter 1 granted %d-th, want 1st", ord)
		}
		if since := time.Since(tKill); since > 2*fw {
			t.Errorf("waiter 1 granted %v after kill, want <= %v", since, 2*fw)
		}
	case err := <-w1Done:
		t.Fatalf("waiter 1 failed without a grant: %v", err)
	case <-time.After(3 * time.Second):
		t.Fatal("waiter 1 not granted within 3s of the kill")
	}

	// Waiter 2 must still be parked behind waiter 1's exclusive hold.
	select {
	case ord := <-w2Order:
		t.Fatalf("waiter 2 granted (%d-th) while waiter 1 still holds", ord)
	case <-time.After(50 * time.Millisecond):
	}

	releaseW1()
	if err := <-w1Done; err != nil {
		t.Fatalf("waiter 1 release: %v", err)
	}
	select {
	case ord := <-w2Order:
		if ord != 2 {
			t.Fatalf("waiter 2 granted %d-th, want 2nd", ord)
		}
	case err := <-w2Done:
		t.Fatalf("waiter 2 failed without a grant: %v", err)
	case <-time.After(3 * time.Second):
		t.Fatal("waiter 2 not granted after waiter 1 released")
	}
	if err := <-w2Done; err != nil {
		t.Fatalf("waiter 2 release: %v", err)
	}

	// Survivors converged on the shrunken membership, and the routers
	// adopted it.
	for _, i := range []int{(victim + 1) % 3, (victim + 2) % 3} {
		if e := tc.nodes[i].Epoch(); e != 2 {
			t.Errorf("node %d epoch %d, want 2", i, e)
		}
		if n := tc.nodes[i].MemberCount(); n != 2 {
			t.Errorf("node %d has %d members, want 2", i, n)
		}
		if tc.nodes[i].Isolated() {
			t.Errorf("node %d isolated after a single death in a 3-node cluster", i)
		}
	}
	if e := r1.Epoch(); e != 2 {
		t.Errorf("router 1 epoch %d, want 2", e)
	}
	if got := r1.Owner(name); got != heirAddr {
		t.Errorf("router routes %q to %s, want heir %s", name, got, heirAddr)
	}
}

// TestClusterQuorumLoss: a 3-node cluster that loses two members must
// refuse to serve from the survivor — a minority may not grant locks it
// only owns because everyone who would object is unreachable. Isolation
// fences the node completely: sessions granted before the partition are
// revoked, keepalives and new opens are refused, so no lease of the
// minority can outlive the quarantine a healthy majority would wait out
// before re-granting (the split-brain double-holder scenario).
func TestClusterQuorumLoss(t *testing.T) {
	tc := startCluster(t, 3, 300*time.Millisecond)
	tc.awaitHealthy()

	// A pre-partition client holds a name node 0 owns outright; fencing
	// must revoke this hold even though the client never misbehaves.
	held := ""
	m0 := tc.nodes[0].Current()
	for i := 0; i < 64 && held == ""; i++ {
		cand := fmt.Sprintf("fence-key-%d", i)
		if m0.Owner(cand) == tc.addrs[0] {
			held = cand
		}
	}
	if held == "" {
		t.Fatal("no probe name rendezvous-hashed to node 0")
	}
	hc, hsid := tc.dialSession(0, 300*time.Millisecond)
	defer hc.Close()
	if err := hc.Acquire(hsid, held, true, 0); err != nil {
		t.Fatalf("pre-partition acquire %q: %v", held, err)
	}

	tc.kill(1)
	tc.kill(2)

	deadline := time.Now().Add(5 * time.Second)
	for !tc.nodes[0].Isolated() {
		if time.Now().After(deadline) {
			t.Fatal("survivor never isolated after losing quorum")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fenced: the lease lifecycle is refused wholesale — the
	// pre-partition session cannot renew, no new session opens, and
	// every named op answers NotOwner even for names the shrunken map
	// says this node owns.
	if err := hc.KeepAlive(hsid, 300*time.Millisecond); !errors.Is(err, client.ErrNotOwner) {
		t.Fatalf("keepalive on fenced survivor: got %v, want ErrNotOwner", err)
	}
	if err := hc.Acquire(hsid, "any-name-at-all", true, 0); !errors.Is(err, client.ErrNotOwner) {
		t.Fatalf("isolated node acquire: got %v, want ErrNotOwner", err)
	}
	c, err := client.Dial(tc.addrs[0])
	if err != nil {
		t.Fatalf("dial fenced survivor: %v", err)
	}
	defer c.Close()
	if _, err := c.Open(300 * time.Millisecond); !errors.Is(err, client.ErrNotOwner) {
		t.Fatalf("open on fenced survivor: got %v, want ErrNotOwner", err)
	}
	// Every session the survivor ever granted — the fenced client's,
	// the dead peers' heartbeat sessions, the ghost sessions — is
	// revoked or expired; none may linger past the fence.
	deadline = time.Now().Add(2 * time.Second)
	for tc.mgrs[0].SessionCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("fenced survivor still has %d live sessions", tc.mgrs[0].SessionCount())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A Router against the isolated remnant gives up with ErrNoQuorum.
	r, err := client.NewRouter(client.RouterConfig{
		Seeds:     []string{tc.addrs[0]},
		Lease:     300 * time.Millisecond,
		Retries:   2,
		RetryBase: 5 * time.Millisecond,
		RetryMax:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("router bootstrap: %v", err)
	}
	defer r.Close()
	if err := r.Acquire("any-name-at-all", true, 100*time.Millisecond); !errors.Is(err, client.ErrNoQuorum) {
		t.Fatalf("router against isolated remnant: got %v, want ErrNoQuorum", err)
	}
}

// TestNewNodeFailoverWindowValidation: the quarantine must cover every
// lease the manager can grant — NewNode rejects FailoverWindow <
// Manager.MaxLease and accepts equality (lockd's default wiring).
func TestNewNodeFailoverWindowValidation(t *testing.T) {
	m := lockmgr.New(lockmgr.Config{MaxLease: time.Minute})
	defer m.Close()
	cfg := cluster.Config{
		Self:           "a:1",
		Members:        []string{"a:1", "b:1", "c:1"},
		Manager:        m,
		FailoverWindow: 30 * time.Second,
	}
	if _, err := cluster.NewNode(cfg); err == nil {
		t.Fatal("NewNode accepted FailoverWindow 30s < MaxLease 1m")
	}
	cfg.FailoverWindow = time.Minute
	if _, err := cluster.NewNode(cfg); err != nil {
		t.Fatalf("NewNode rejected FailoverWindow == MaxLease: %v", err)
	}
	// The 1m default window also satisfies the default 1m MaxLease.
	cfg.FailoverWindow = 0
	if _, err := cluster.NewNode(cfg); err != nil {
		t.Fatalf("NewNode rejected default FailoverWindow: %v", err)
	}
}
