package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/wire"
)

// Node is one lockd process's view of the cluster: the current
// ownership map, outbound heartbeats to every peer, and the quarantine
// machinery that makes failover safe.
//
// Liveness is symmetric and unilateral: every node holds a session on
// every peer (OpOpen + periodic OpKeepAlive over the ordinary wire
// protocol — a heartbeat is just a tiny client) and declares a peer dead
// after SuspectAfter consecutive transport failures. On death the peer
// is removed from the map at a bumped epoch, so its names rehash to
// survivors; rendezvous hashing guarantees nothing else moves.
//
// Safety: a client of the dead node may still believe it holds a lock —
// its lease, granted by the dead node, runs for up to MaxLease past its
// last renewal, which is at most FailoverWindow past the moment we
// noticed the death (NewNode enforces FailoverWindow >= the local
// manager's MaxLease; deployments must keep -max-lease homogeneous so
// the bound holds for the dead node's leases too). So for each name
// inherited from the dead member, the survivor takes an exclusive
// "ghost" hold (lazily, the first time an acquire for that name
// arrives) under a ghost session whose lease is FailoverWindow and
// which is never kept alive. Real acquires queue FIFO behind the ghost;
// when the existing lease reaper expires the ghost session it revokes
// every ghost hold, and the head waiter is granted — exactly once, in
// arrival order, by machinery that predates the cluster. Membership
// never shrinks without its quarantine: if the ghost session cannot be
// opened (manager closing), the death declaration is aborted and
// retried, so inherited names are never served unprotected.
//
// Split-brain: a node that can no longer reach a majority of the
// INITIAL membership stops serving and fences itself — every named op
// answers NotOwner, OpOpen/OpKeepAlive are refused (the server gates
// them on Isolated), and every session this node ever granted is
// revoked on the spot. Fencing is what makes the survivors' quarantine
// sound under an asymmetric partition: a client still connected to the
// isolated minority cannot renew its lease (keepalives are refused and
// its session is already gone), so every grant of the minority is dead
// well within the FailoverWindow the majority waits out before
// re-granting. The quorum is measured against the initial size, not the
// current map — a partitioned minority also shrinks its current map,
// and measuring against that would let it vote itself a quorum of one.
// A 2-node cluster therefore freezes when either node dies: documented,
// and the reason the smoke tests run 3 nodes. Isolation is terminal and
// dead members never rejoin; a redeploy restarts the cluster at a fresh
// epoch.
type Node struct {
	cfg      Config
	initialN int
	quorum   int // initialN/2 + 1

	cur      atomic.Pointer[Map]
	isolated atomic.Bool
	nquar    atomic.Int32 // fast-path gate: 0 = no active quarantines

	mu    sync.Mutex
	quars []*quarantine
	peers map[string]*peerState

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// Config configures a Node.
type Config struct {
	// Self is this node's client-facing listen address, exactly as it
	// appears in Members.
	Self string
	// Members is the full initial member list, Self included. Order is
	// irrelevant (the map sorts).
	Members []string
	// Manager is the local lock manager ghost holds are taken on.
	Manager *lockmgr.Manager
	// Interval is the heartbeat period. Default 250ms.
	Interval time.Duration
	// SuspectAfter is how many consecutive heartbeat failures kill a
	// peer. Default 3.
	SuspectAfter int
	// FailoverWindow is the ghost-hold quarantine after a death: no
	// inherited name is granted until this much time has passed, so
	// every lease the dead node granted has expired. NewNode rejects a
	// window shorter than Manager.MaxLease — with the required
	// homogeneous -max-lease across the cluster, that is exactly the
	// longest any dead member's lease can run. Default 1m.
	FailoverWindow time.Duration
	// BootGrace is how long after Start a peer that has never answered
	// is forgiven its misses — cluster members boot staggered, and a
	// peer that is merely still starting must not be declared dead.
	// Once a peer has answered even once, SuspectAfter applies in full.
	// Default 20× Interval.
	BootGrace time.Duration
	// Logf, when set, receives one line per membership event.
	Logf func(format string, args ...any)
}

// quarantine tracks one dead member's names through their unsafe window.
type quarantine struct {
	prev     *Map   // membership before the death: prev.Owner(name)==dead ⇒ name moved
	dead     string
	ghostSID uint64
	deadline time.Time
	taken    map[string]struct{}
}

type peerState struct {
	addr    string
	lastAck atomic.Int64 // unix nanos of last successful exchange; 0 = never
	dead    atomic.Bool
}

// NewNode validates cfg and builds the node at epoch 1. Call Start to
// begin heartbeating.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Manager == nil {
		return nil, errors.New("cluster: Config.Manager is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	if cfg.FailoverWindow <= 0 {
		cfg.FailoverWindow = time.Minute
	}
	// Safety invariant: the quarantine must outlive every lease the dead
	// node could have granted. Locally that means FailoverWindow >=
	// MaxLease; heterogeneous -max-lease across members would void the
	// bound, so deployments keep it homogeneous (documented on lockd's
	// flags).
	if maxl := cfg.Manager.MaxLease(); cfg.FailoverWindow < maxl {
		return nil, fmt.Errorf(
			"cluster: FailoverWindow %v < manager MaxLease %v — a dead member's lease could outlive the ghost quarantine; raise -failover-window or lower -max-lease",
			cfg.FailoverWindow, maxl)
	}
	if cfg.BootGrace <= 0 {
		cfg.BootGrace = 20 * cfg.Interval
	}
	m, err := NewMap(1, cfg.Members)
	if err != nil {
		return nil, err
	}
	if m.Len() == 0 {
		return nil, errors.New("cluster: empty member list")
	}
	if !m.Contains(cfg.Self) {
		return nil, fmt.Errorf("cluster: self %q not in member list %v", cfg.Self, m.Members())
	}
	n := &Node{
		cfg:      cfg,
		initialN: m.Len(),
		quorum:   m.Len()/2 + 1,
		peers:    make(map[string]*peerState, m.Len()-1),
		stop:     make(chan struct{}),
	}
	n.cur.Store(m)
	for _, addr := range m.Members() {
		if addr != cfg.Self {
			n.peers[addr] = &peerState{addr: addr}
		}
	}
	return n, nil
}

// Start launches one heartbeat loop per peer.
func (n *Node) Start() {
	for _, ps := range n.peers {
		n.wg.Add(1)
		go n.heartbeat(ps)
	}
}

// Stop halts heartbeats and waits for the loops to exit.
func (n *Node) Stop() {
	n.stopped.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Self returns this node's member address.
func (n *Node) Self() string { return n.cfg.Self }

// Current returns the current ownership map.
func (n *Node) Current() *Map { return n.cur.Load() }

// Epoch reports the current membership epoch (part of the server's
// Cluster interface, scraped as lockd_cluster_epoch).
func (n *Node) Epoch() uint64 { return n.cur.Load().Epoch() }

// MemberCount reports the current member count (lockd_cluster_members).
func (n *Node) MemberCount() int { return n.cur.Load().Len() }

// StatusJSON renders the admin-plane /cluster document.
func (n *Node) StatusJSON() ([]byte, error) {
	return json.MarshalIndent(n.Status(), "", " ")
}

// Isolated reports whether this node lost quorum and fenced itself.
// Part of the server's Cluster interface: an isolated node's server
// refuses OpOpen and OpKeepAlive (NotOwner) so no new lease can be
// granted or renewed, complementing the session revocation done at
// fencing time. Isolation is terminal — members never rejoin.
func (n *Node) Isolated() bool { return n.isolated.Load() }

// GateOp decides whether this node may execute an op on name: it must
// own the name under the current map and still hold quorum. acquire
// additionally arms the ghost quarantine for names inherited from a
// dead member. The server answers StatusNotOwner when this returns
// false. Steady state (no recent death) costs one map lookup and two
// atomic loads — no locks, no allocation.
func (n *Node) GateOp(name []byte, acquire bool) bool {
	if n.isolated.Load() {
		return false
	}
	m := n.cur.Load()
	if m.OwnerBytes(name) != n.cfg.Self {
		return false
	}
	if acquire && n.nquar.Load() > 0 {
		n.applyQuarantine(name)
	}
	return true
}

// applyQuarantine takes the ghost hold for name if any active
// quarantine says its previous owner died. Idempotent per name.
func (n *Node) applyQuarantine(name []byte) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	live := n.quars[:0]
	for _, q := range n.quars {
		if now.After(q.deadline) {
			continue // window passed; the reaper has already revoked
		}
		live = append(live, q)
		if q.prev.OwnerBytes(name) != q.dead {
			continue
		}
		s := string(name)
		if _, ok := q.taken[s]; ok {
			continue
		}
		q.taken[s] = struct{}{}
		// Try-acquire: the name just moved here, so nothing local holds
		// it; a failure means a ghost from an older overlapping
		// quarantine already covers it, which is just as safe.
		if err := n.cfg.Manager.Acquire(q.ghostSID, s, true, 0); err != nil &&
			!errors.Is(err, lockmgr.ErrTimeout) && !errors.Is(err, lockmgr.ErrHeld) {
			n.logf("cluster: ghost hold %q after %s death: %v", s, q.dead, err)
		}
	}
	n.quars = live
	n.nquar.Store(int32(len(live)))
}

// declareDead removes peer from the map, bumps the epoch, opens the
// ghost session, and re-checks quorum. Idempotent. It reports whether
// the declaration committed: membership never shrinks without its ghost
// quarantine, so if the ghost session cannot be opened (only possible
// while the manager is closing) nothing changes and the caller retries.
func (n *Node) declareDead(ps *peerState) bool {
	n.mu.Lock()
	cur := n.cur.Load()
	if !cur.Contains(ps.addr) {
		n.mu.Unlock()
		return true
	}
	sid, err := n.cfg.Manager.Open(n.cfg.FailoverWindow)
	if err != nil {
		n.mu.Unlock()
		n.logf("cluster: NOT declaring %s dead: ghost session unavailable (%v); membership unchanged, will retry", ps.addr, err)
		return false
	}
	next := cur.Without(ps.addr)
	n.quars = append(n.quars, &quarantine{
		prev:     cur,
		dead:     ps.addr,
		ghostSID: sid,
		deadline: time.Now().Add(n.cfg.FailoverWindow),
		taken:    make(map[string]struct{}),
	})
	n.nquar.Store(int32(len(n.quars)))
	n.cur.Store(next)
	ps.dead.Store(true)
	lost := next.Len() < n.quorum
	if lost {
		n.isolated.Store(true)
	}
	n.mu.Unlock()
	if lost {
		// Fence: with isolated set, the server already refuses new
		// OpOpen/OpKeepAlive, and revoking every live session kills the
		// leases granted before the partition. An open racing the fence
		// can slip one session in, but its keepalives are refused from
		// now on, so it too expires within MaxLease <= FailoverWindow of
		// the moment the majority notices this node is gone.
		revoked := n.cfg.Manager.RevokeAllSessions()
		n.logf("cluster: fenced after quorum loss: %d local sessions revoked", revoked)
	}
	n.logf("cluster: member %s dead; epoch %d -> %d, %d/%d members%s",
		ps.addr, cur.Epoch(), next.Epoch(), next.Len(), n.initialN,
		map[bool]string{true: " — QUORUM LOST, refusing ops", false: ""}[lost])
	return true
}

// heartbeat keeps one session alive on a peer and declares it dead
// after SuspectAfter consecutive transport failures. Any response —
// even StatusExpired after a peer restart — counts as liveness; only
// dials and round trips that fail at the transport count as misses.
func (n *Node) heartbeat(ps *peerState) {
	defer n.wg.Done()
	var (
		conn   net.Conn
		sid    uint64
		misses int
		buf    []byte
	)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	// The session we hold on the peer needs to outlive a few missed
	// beats so a slow scheduler doesn't churn sessions.
	lease := time.Duration(n.cfg.SuspectAfter+2) * n.cfg.Interval
	bootDeadline := time.Now().Add(n.cfg.BootGrace)
	everAcked := false
	t := time.NewTicker(n.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		ok := false
		if conn == nil {
			c, err := net.DialTimeout("tcp", ps.addr, n.cfg.Interval)
			if err == nil {
				if sid, err = hbRound(c, n.cfg.Interval, &buf, wire.OpOpen, 0, lease); err == nil {
					conn, ok = c, true
				} else {
					c.Close()
				}
			}
		} else {
			_, err := hbRound(conn, n.cfg.Interval, &buf, wire.OpKeepAlive, sid, lease)
			if err == nil {
				ok = true
			} else if errors.Is(err, errHBExpired) {
				// Peer is alive but forgot us (restart or reaper); reopen
				// next tick on the same conn.
				if sid, err = hbRound(conn, n.cfg.Interval, &buf, wire.OpOpen, 0, lease); err == nil {
					ok = true
				}
			}
			if !ok {
				conn.Close()
				conn = nil
			}
		}
		if ok {
			misses = 0
			everAcked = true
			ps.lastAck.Store(time.Now().UnixNano())
			continue
		}
		if !everAcked && time.Now().Before(bootDeadline) {
			continue // peer still booting; misses don't count yet
		}
		if misses++; misses >= n.cfg.SuspectAfter {
			if n.declareDead(ps) {
				return // members never rejoin
			}
			// Ghost session unavailable (manager closing); keep ticking
			// so the declaration is retried rather than silently lost.
		}
	}
}

var errHBExpired = errors.New("cluster: heartbeat session expired")

// hbRound performs one request/response exchange on a heartbeat conn.
// It returns the response SID (the new session id for OpOpen).
func hbRound(c net.Conn, timeout time.Duration, buf *[]byte, op wire.Op, sid uint64, lease time.Duration) (uint64, error) {
	frame, err := wire.AppendRequestFrame((*buf)[:0], &wire.Request{Op: op, SID: sid, Lease: int64(lease)})
	if err != nil {
		return 0, err
	}
	if err := c.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	if _, err := c.Write(frame); err != nil {
		return 0, err
	}
	p, err := wire.ReadFrame(c, buf)
	if err != nil {
		return 0, err
	}
	resp, err := wire.DecodeResponse(p)
	if err != nil {
		return 0, err
	}
	if resp.Status == wire.StatusExpired {
		return 0, errHBExpired
	}
	if resp.Status != wire.StatusOK {
		return 0, fmt.Errorf("cluster: heartbeat op %d: status %d", op, resp.Status)
	}
	return resp.SID, nil
}

// AppendMembership appends the current membership's wire encoding to
// buf — the payload of StatusNotOwner responses and OpClusterInfo
// replies.
func (n *Node) AppendMembership(buf []byte) []byte {
	wm := n.cur.Load().Membership()
	out, err := wire.AppendMembership(buf, &wm)
	if err != nil {
		// Unreachable: the map enforces the same bounds as the codec.
		return buf
	}
	return out
}

// PeerStatus is one peer's liveness as seen from this node.
type PeerStatus struct {
	Addr      string  `json:"addr"`
	Dead      bool    `json:"dead"`
	LastAckMS float64 `json:"last_ack_ms"` // age of last successful beat; -1 = never
}

// Status is the admin-plane view of the cluster.
type Status struct {
	Self           string             `json:"self"`
	Epoch          uint64             `json:"epoch"`
	Members        []string           `json:"members"`
	InitialMembers int                `json:"initial_members"`
	Quorum         int                `json:"quorum"`
	Isolated       bool               `json:"isolated"`
	Shares         map[string]float64 `json:"owned_share"` // estimated namespace share per member
	Peers          []PeerStatus       `json:"peers"`
	Quarantines    int                `json:"active_quarantines"`
}

// shareProbes sizes the synthetic sample behind the owned-share
// estimate. Rendezvous hashing is uniform, so ~4k probes pin each share
// to within a couple of percent.
const shareProbes = 4096

// Status assembles the admin view. Shares are estimated by hashing a
// fixed synthetic sample of names, not by walking live locks — it
// reports the namespace split the map implies, which is what capacity
// planning wants.
func (n *Node) Status() Status {
	m := n.cur.Load()
	st := Status{
		Self:           n.cfg.Self,
		Epoch:          m.Epoch(),
		Members:        m.Members(),
		InitialMembers: n.initialN,
		Quorum:         n.quorum,
		Isolated:       n.isolated.Load(),
		Shares:         make(map[string]float64, m.Len()),
	}
	var probe [16]byte
	for i := 0; i < shareProbes; i++ {
		p := appendProbe(probe[:0], i)
		st.Shares[m.OwnerBytes(p)] += 1.0 / shareProbes
	}
	now := time.Now()
	n.mu.Lock()
	st.Quarantines = len(n.quars)
	n.mu.Unlock()
	for _, addr := range st.Members {
		if addr == n.cfg.Self {
			continue
		}
		ps := n.peers[addr]
		if ps == nil {
			continue
		}
		p := PeerStatus{Addr: addr, Dead: ps.dead.Load(), LastAckMS: -1}
		if ack := ps.lastAck.Load(); ack > 0 {
			p.LastAckMS = float64(now.UnixNano()-ack) / 1e6
		}
		st.Peers = append(st.Peers, p)
	}
	return st
}

// appendProbe formats "probe-<i>" without fmt so Status stays cheap.
func appendProbe(b []byte, i int) []byte {
	b = append(b, 'p', 'r', 'o', 'b', 'e', '-')
	if i == 0 {
		return append(b, '0')
	}
	var d [8]byte
	j := len(d)
	for i > 0 {
		j--
		d[j] = byte('0' + i%10)
		i /= 10
	}
	return append(b, d[j:]...)
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}
