// Package cluster distributes the lockmgr namespace across N lockd
// nodes — the software analogue of the paper's per-memory-controller
// Lock Reservation Table banks, extended from PR 8's intra-process shard
// affinity to whole processes.
//
// Ownership is rendezvous (highest-random-weight) hashing: every node
// scores every name as mix64(hash(name) ^ hash(member)) and the highest
// score wins. Rendezvous has exactly the property the failover design
// needs: when a member dies, only the names it owned move (each
// surviving member's score for every name is unchanged, so a name's
// owner changes iff its old owner left) — the cluster-wide equivalent
// of minimal reshuffle.
//
// A Map is immutable after construction. Membership changes produce a
// new Map at a higher epoch; the epoch only rises, so clients can adopt
// any membership they see iff its epoch beats their cached one, with no
// coordination.
package cluster

import (
	"fmt"
	"sort"

	"fairrw/internal/lockmgr/wire"
)

// Map is an immutable ownership map: a member list plus the epoch it
// became current at. The zero Map (no members, epoch 0) means "not
// clustered".
type Map struct {
	epoch   uint64
	members []string // sorted, deduplicated
	hashes  []uint64 // hash64(members[i]), precomputed
}

// NewMap builds an ownership map. Members are copied, sorted, and
// deduplicated so two maps built from the same set — in any order — are
// identical, and index-based tie-breaks are order-independent.
func NewMap(epoch uint64, members []string) (*Map, error) {
	if len(members) > wire.MaxMembers {
		return nil, fmt.Errorf("cluster: %d members > %d", len(members), wire.MaxMembers)
	}
	ms := make([]string, len(members))
	copy(ms, members)
	sort.Strings(ms)
	out := ms[:0]
	for i, m := range ms {
		if m == "" || len(m) > wire.MaxMemberAddr {
			return nil, fmt.Errorf("cluster: member address %q", m)
		}
		if i > 0 && m == ms[i-1] {
			continue
		}
		out = append(out, m)
	}
	hs := make([]uint64, len(out))
	for i, m := range out {
		hs[i] = hash64(m)
	}
	return &Map{epoch: epoch, members: out, hashes: hs}, nil
}

// Epoch reports when this membership became current.
func (m *Map) Epoch() uint64 { return m.epoch }

// Len reports the member count.
func (m *Map) Len() int { return len(m.members) }

// Members returns the sorted member list. Callers must not mutate it.
func (m *Map) Members() []string { return m.members }

// Contains reports whether addr is a member.
func (m *Map) Contains(addr string) bool {
	i := sort.SearchStrings(m.members, addr)
	return i < len(m.members) && m.members[i] == addr
}

// Owner returns the member owning name, or "" on an empty map. The
// lookup is allocation-free: one pass hashing the name, one pass mixing
// it against each precomputed member hash.
func (m *Map) Owner(name string) string {
	i := m.OwnerIndex(name)
	if i < 0 {
		return ""
	}
	return m.members[i]
}

// OwnerIndex is Owner returning the member's index, -1 on an empty map.
// Ties (astronomically unlikely with 64-bit scores) break to the lower
// index; since members are sorted that choice is order-independent too.
func (m *Map) OwnerIndex(name string) int {
	if len(m.members) == 0 {
		return -1
	}
	h := hash64(name)
	best, bestScore := 0, mix64(h^m.hashes[0])
	for i := 1; i < len(m.hashes); i++ {
		if s := mix64(h ^ m.hashes[i]); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// OwnerBytes is Owner for a name still aliasing a decode buffer, so the
// server's parse loop can gate ops without materializing a string.
func (m *Map) OwnerBytes(name []byte) string {
	if len(m.members) == 0 {
		return ""
	}
	h := hash64bytes(name)
	best, bestScore := 0, mix64(h^m.hashes[0])
	for i := 1; i < len(m.hashes); i++ {
		if s := mix64(h ^ m.hashes[i]); s > bestScore {
			best, bestScore = i, s
		}
	}
	return m.members[best]
}

// Without returns a new map at epoch+1 lacking addr. Removing a
// non-member returns the receiver unchanged (same epoch): the caller
// learned nothing new about the cluster.
func (m *Map) Without(addr string) *Map {
	if !m.Contains(addr) {
		return m
	}
	members := make([]string, 0, len(m.members)-1)
	hashes := make([]uint64, 0, len(m.members)-1)
	for i, mm := range m.members {
		if mm == addr {
			continue
		}
		members = append(members, mm)
		hashes = append(hashes, m.hashes[i])
	}
	return &Map{epoch: m.epoch + 1, members: members, hashes: hashes}
}

// Membership converts the map to its wire form.
func (m *Map) Membership() wire.Membership {
	return wire.Membership{Epoch: m.epoch, Members: m.members}
}

// FromMembership builds a map from a decoded wire payload.
func FromMembership(wm *wire.Membership) (*Map, error) {
	return NewMap(wm.Epoch, wm.Members)
}

// hash64 is FNV-1a 64 over the string bytes — stable across processes
// (unlike maphash), cheap, and already the family used by the manager's
// shard router.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func hash64bytes(s []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that
// turns the xor of two FNV hashes into an unbiased rendezvous score.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
