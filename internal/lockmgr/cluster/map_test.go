package cluster

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fairrw/internal/lockmgr/wire"
)

func mustMap(t *testing.T, epoch uint64, members []string) *Map {
	t.Helper()
	m, err := NewMap(epoch, members)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("key-%04d", i)
	}
	return names
}

// Rendezvous ownership must not depend on the order the member list
// arrived in: every permutation of the same set yields the same owner
// for every name.
func TestOwnerDeterministicAcrossOrderings(t *testing.T) {
	members := []string{"10.0.0.1:7600", "10.0.0.2:7600", "10.0.0.3:7600", "10.0.0.4:7600", "10.0.0.5:7600"}
	names := testNames(512)
	base := mustMap(t, 1, members)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		m := mustMap(t, 1, shuffled)
		for _, name := range names {
			if got, want := m.Owner(name), base.Owner(name); got != want {
				t.Fatalf("trial %d: Owner(%q) = %q under ordering %v, want %q", trial, name, got, shuffled, want)
			}
		}
	}
}

// Duplicated members must collapse: a repeated address cannot double a
// node's share.
func TestNewMapDedup(t *testing.T) {
	m := mustMap(t, 1, []string{"b:1", "a:1", "b:1", "a:1", "c:1"})
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (deduped)", m.Len())
	}
	if got := m.Members(); got[0] != "a:1" || got[1] != "b:1" || got[2] != "c:1" {
		t.Fatalf("Members = %v, want sorted a,b,c", got)
	}
}

func TestNewMapRejects(t *testing.T) {
	if _, err := NewMap(1, []string{""}); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := NewMap(1, []string{strings.Repeat("a", wire.MaxMemberAddr+1)}); err == nil {
		t.Fatal("oversized address accepted")
	}
	if _, err := NewMap(1, make([]string, wire.MaxMembers+1)); err == nil {
		t.Fatal("oversized member list accepted")
	}
}

// Removing one member must move exactly the names that member owned:
// rendezvous scores for survivors are unchanged, so no other name may
// change hands. The moved share should be ≈ 1/N.
func TestMinimalReshuffleOnRemove(t *testing.T) {
	members := []string{"n1:1", "n2:1", "n3:1", "n4:1"}
	names := testNames(4096)
	before := mustMap(t, 1, members)
	after := before.Without("n3:1")

	if after.Epoch() != 2 {
		t.Fatalf("epoch after removal = %d, want 2", after.Epoch())
	}
	if after.Contains("n3:1") {
		t.Fatal("removed member still present")
	}

	moved := 0
	for _, name := range names {
		was, is := before.Owner(name), after.Owner(name)
		if was == "n3:1" {
			if is == "n3:1" {
				t.Fatalf("%q still owned by removed member", name)
			}
			moved++
			continue
		}
		if was != is {
			t.Fatalf("%q moved %q -> %q though its owner survived", name, was, is)
		}
	}
	// The dead member's share must be roughly 1/4; allow a generous
	// band so the test pins the property, not the hash.
	if lo, hi := len(names)/8, len(names)/2; moved < lo || moved > hi {
		t.Fatalf("removal moved %d/%d names, want within [%d, %d] (≈1/4)", moved, len(names), lo, hi)
	}
}

// Ownership must also be stable under add-then-remove: re-adding the
// same member set at any epoch reproduces identical ownership.
func TestOwnershipStableAcrossEpochs(t *testing.T) {
	members := []string{"n1:1", "n2:1", "n3:1"}
	a := mustMap(t, 1, members)
	b := mustMap(t, 9, members)
	for _, name := range testNames(256) {
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("Owner(%q) differs across epochs with identical members", name)
		}
	}
}

// Every member must own a nonempty, roughly fair share.
func TestShareBalance(t *testing.T) {
	members := []string{"n1:1", "n2:1", "n3:1"}
	m := mustMap(t, 1, members)
	counts := map[string]int{}
	names := testNames(3000)
	for _, name := range names {
		counts[m.Owner(name)]++
	}
	for _, mem := range members {
		share := float64(counts[mem]) / float64(len(names))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("member %s owns %.0f%% of names, want ≈33%%", mem, 100*share)
		}
	}
}

func TestOwnerBytesMatchesOwner(t *testing.T) {
	m := mustMap(t, 1, []string{"n1:1", "n2:1", "n3:1"})
	for _, name := range testNames(128) {
		if m.Owner(name) != m.OwnerBytes([]byte(name)) {
			t.Fatalf("OwnerBytes(%q) disagrees with Owner", name)
		}
	}
}

func TestEmptyAndSingleMaps(t *testing.T) {
	empty := mustMap(t, 0, nil)
	if empty.Owner("x") != "" || empty.OwnerIndex("x") != -1 {
		t.Fatal("empty map claimed an owner")
	}
	solo := mustMap(t, 1, []string{"n1:1"})
	if solo.Owner("anything") != "n1:1" {
		t.Fatal("single-member map must own everything")
	}
	if solo.Without("n1:1").Len() != 0 {
		t.Fatal("removing the only member must empty the map")
	}
	if solo.Without("other:1") != solo {
		t.Fatal("removing a non-member must return the same map")
	}
}

func TestMembershipRoundTrip(t *testing.T) {
	m := mustMap(t, 7, []string{"n2:1", "n1:1"})
	wm := m.Membership()
	p, err := wire.AppendMembership(nil, &wm)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := wire.DecodeMembership(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromMembership(&dec)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch() != 7 || back.Len() != 2 || back.Owner("k") != m.Owner("k") {
		t.Fatalf("round trip lost state: %+v", back)
	}
}

// The lookup path must not allocate: the Router calls Owner per op.
func TestOwnerAllocs(t *testing.T) {
	m := mustMap(t, 1, []string{"n1:1", "n2:1", "n3:1", "n4:1", "n5:1"})
	name := "key-0042"
	raw := []byte(name)
	if n := testing.AllocsPerRun(1000, func() {
		if m.Owner(name) == "" {
			t.Fatal("no owner")
		}
	}); n != 0 {
		t.Fatalf("Owner allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if m.OwnerBytes(raw) == "" {
			t.Fatal("no owner")
		}
	}); n != 0 {
		t.Fatalf("OwnerBytes allocates %.1f/op, want 0", n)
	}
}

func BenchmarkOwner(b *testing.B) {
	m, _ := NewMap(1, []string{"n1:1", "n2:1", "n3:1", "n4:1", "n5:1"})
	names := testNames(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Owner(names[i&63])
	}
}
