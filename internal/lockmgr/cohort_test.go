package lockmgr

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

// goid parses the runtime's goroutine id from the stack header. Test-only:
// it lets a CohortFunc look up per-goroutine cohort tags so the test can
// stage waiters from chosen locality domains.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	f := bytes.Fields(buf[:n])
	id, _ := strconv.ParseUint(string(f[1]), 10, 64)
	return id
}

// lookupEntry fetches the live table entry for name without touching its
// refcount. Test-only: callers must know the entry is pinned (held or
// queued on) so the sweeper cannot GC it out from under the pointer.
func lookupEntry(m *Manager, name string) *entry {
	sh := &m.shards[fnv32(name)&m.mask]
	sh.mu.Lock()
	e := sh.entries[name]
	sh.mu.Unlock()
	return e
}

// TestCohortBatchingAcrossManager wires Config.CohortBatch/CohortFunc
// through to entry locks and checks that (a) a releaser's cohort-mate is
// granted ahead of an older waiter from another cohort, and (b) the
// bypass lands in the manager-wide cohort_grants counter and Snapshot.
func TestCohortBatchingAcrossManager(t *testing.T) {
	var tags sync.Map // goid -> uint32 cohort tag
	cfg := fastCfg()
	cfg.CohortBatch = 2
	cfg.CohortFunc = func() uint32 {
		if v, ok := tags.Load(goid()); ok {
			return v.(uint32)
		}
		return 99
	}
	m := newTest(t, cfg)

	tags.Store(goid(), uint32(1))
	main := mustOpen(t, m, time.Minute)
	if err := m.Acquire(main, "k", true, -1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	e := lookupEntry(m, "k")
	if e == nil {
		t.Fatal("entry not in table while held")
	}

	// Stage two exclusive waiters: first from cohort 5, then from the
	// releaser's cohort 1. Serial QueueLen waits pin FIFO arrival order.
	order := make(chan int, 2)
	errs := make(chan error, 2)
	start := func(id int, cohort uint32, wantQ int) {
		t.Helper()
		go func() {
			tags.Store(goid(), cohort)
			sid, err := m.Open(time.Minute)
			if err == nil {
				err = m.Acquire(sid, "k", true, -1)
			}
			order <- id
			if err == nil {
				err = m.Release(sid, "k", true)
			}
			errs <- err
		}()
		deadline := time.Now().Add(5 * time.Second)
		for e.lock.QueueLen() != wantQ {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued (QueueLen=%d, want %d)",
					id, e.lock.QueueLen(), wantQ)
			}
			runtime.Gosched()
		}
	}
	start(0, 5, 1)
	start(1, 1, 2)

	// Cohort-1 release: waiter 1 (cohort 1) must bypass waiter 0.
	if err := m.Release(main, "k", true); err != nil {
		t.Fatalf("release: %v", err)
	}
	var got []int
	grantDeadline := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case id := <-order:
			got = append(got, id)
		case <-grantDeadline:
			t.Fatalf("waiters stalled; grant order so far %v", got)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("waiter error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never released")
		}
	}
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("grant order = %v, want [1 0]", got)
	}

	snap := m.Stats()
	if snap.CohortGrants != 1 {
		t.Fatalf("CohortGrants = %d, want 1", snap.CohortGrants)
	}
	if snap.CohortBatch != 2 {
		t.Fatalf("CohortBatch = %d, want 2", snap.CohortBatch)
	}
	if m.CohortBatch() != 2 {
		t.Fatalf("Manager.CohortBatch() = %d, want 2", m.CohortBatch())
	}
}

// TestCohortDisabledStrictFIFO pins that a zero CohortBatch leaves entry
// locks in strict arrival order and reports no cohort grants.
func TestCohortDisabledStrictFIFO(t *testing.T) {
	var tags sync.Map
	cfg := fastCfg()
	cfg.CohortFunc = func() uint32 { // ignored without a batch bound
		if v, ok := tags.Load(goid()); ok {
			return v.(uint32)
		}
		return 99
	}
	m := newTest(t, cfg)

	tags.Store(goid(), uint32(1))
	main := mustOpen(t, m, time.Minute)
	if err := m.Acquire(main, "k", true, -1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	e := lookupEntry(m, "k")

	order := make(chan int, 2)
	errs := make(chan error, 2)
	start := func(id int, cohort uint32, wantQ int) {
		t.Helper()
		go func() {
			tags.Store(goid(), cohort)
			sid, err := m.Open(time.Minute)
			if err == nil {
				err = m.Acquire(sid, "k", true, -1)
			}
			order <- id
			if err == nil {
				err = m.Release(sid, "k", true)
			}
			errs <- err
		}()
		deadline := time.Now().Add(5 * time.Second)
		for e.lock.QueueLen() != wantQ {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", id)
			}
			runtime.Gosched()
		}
	}
	start(0, 5, 1)
	start(1, 1, 2)

	if err := m.Release(main, "k", true); err != nil {
		t.Fatalf("release: %v", err)
	}
	var got []int
	deadline := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case id := <-order:
			got = append(got, id)
		case <-deadline:
			t.Fatalf("waiters stalled; grant order so far %v", got)
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("waiter error: %v", err)
		}
	}
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("grant order = %v, want [0 1]", got)
	}
	if snap := m.Stats(); snap.CohortGrants != 0 || snap.CohortBatch != 0 {
		t.Fatalf("snapshot cohort fields = %d/%d, want 0/0",
			snap.CohortGrants, snap.CohortBatch)
	}
}
