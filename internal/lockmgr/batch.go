package lockmgr

import (
	"errors"
	"time"
)

// Batch execution. The event-loop server decodes every frame a worker
// drained in one wakeup into a single []BatchOp and executes it with
// ExecBatch, which amortizes the per-operation overheads of the scalar
// path across the batch:
//
//   - one clock read for the whole batch (the scalar path reads the
//     clock up to three times per op);
//   - one session-table RLock pass resolving every sid at once;
//   - each table shard locked once per batch for entry ref/unref, not
//     once per op (the software analogue of the LRT servicing a burst
//     of requests in one table walk);
//   - grant/timeout counters and the wait histogram updated once with
//     batch totals.
//
// Acquires in a batch only ever take the lock-free try path. An acquire
// that would have to queue returns ErrWouldBlock with no side effects;
// the caller parks it as a continuation (Manager.Acquire on a separate
// goroutine) so the event loop never stalls on a contended lock.
var (
	// ErrWouldBlock: the acquire did not get the lock on the try path
	// and asked to wait (Wait != 0). No state changed; retry with
	// Manager.Acquire off the batch path.
	ErrWouldBlock = errors.New("lockmgr: acquire would block")
	// ErrDeferred: an earlier op with the same Tag returned
	// ErrWouldBlock, so this op was not executed at all (per-connection
	// order must hold). Re-submit it after the parked op completes.
	ErrDeferred = errors.New("lockmgr: op deferred behind a parked acquire")
)

// BatchKind selects what a BatchOp does.
type BatchKind uint8

const (
	BatchAcquire BatchKind = iota + 1
	BatchRelease
	BatchOpen
	BatchKeepAlive
	BatchCloseSession
)

// BatchOp is one operation in a batch. Name aliases the caller's buffer
// (the connection's ring) and is only copied if a new table entry has to
// be created, so a steady-state batch does not allocate.
type BatchOp struct {
	Kind BatchKind
	Tag  int32 // connection id: ops sharing a Tag execute strictly in order
	SID  uint64
	Excl bool
	Wait  int64 // acquire: nanoseconds, as Manager.Acquire
	Lease int64 // open/keepalive: nanoseconds
	Name  []byte

	// Results.
	Err    error
	OutSID uint64 // open: the new session id

	e *entry   // internal: refed entry for acquires
	s *Session // internal: resolved session
}

// BatchScratch is reusable per-worker scratch for ExecBatch so batch
// execution itself does not allocate. The zero value is ready to use.
type BatchScratch struct {
	shardOps [][]int32 // per-shard op indexes (ref phase)
	derefs   [][]int32 // per-shard op indexes (unref phase)
	touched  []int32   // shards with pending work this batch
	blocked  []int32   // tags with a parked acquire this batch
	holdNS   []int64   // hold times observed this batch (phase-5 flush)
}

// NewBatchScratch allocates scratch sized to this manager's shard count.
// One per worker; not safe for concurrent use.
func (m *Manager) NewBatchScratch() *BatchScratch {
	return &BatchScratch{
		shardOps: make([][]int32, len(m.shards)),
		derefs:   make([][]int32, len(m.shards)),
	}
}

func (sc *BatchScratch) reset() {
	for _, si := range sc.touched {
		sc.shardOps[si] = sc.shardOps[si][:0]
		sc.derefs[si] = sc.derefs[si][:0]
	}
	sc.touched = sc.touched[:0]
	sc.blocked = sc.blocked[:0]
	sc.holdNS = sc.holdNS[:0]
}

func (sc *BatchScratch) touch(si int32) {
	for _, t := range sc.touched {
		if t == si {
			return
		}
	}
	sc.touched = append(sc.touched, si)
}

func (sc *BatchScratch) isBlocked(tag int32) bool {
	for _, t := range sc.blocked {
		if t == tag {
			return true
		}
	}
	return false
}

// ExecBatch executes ops in order, writing each op's result into Err
// (and OutSID for opens). See the package comment above for semantics;
// sc must not be shared between concurrent ExecBatch calls.
func (m *Manager) ExecBatch(ops []BatchOp, sc *BatchScratch) {
	if len(ops) == 0 {
		return
	}
	sc.reset()
	now := time.Now()
	closed := m.closed.Load()

	// Phase 1: resolve every session in one table pass.
	m.smu.RLock()
	for i := range ops {
		op := &ops[i]
		if op.Kind != BatchOpen {
			op.s = m.sessions[op.SID]
		}
	}
	m.smu.RUnlock()

	// Phase 2: validate names and ref acquire entries, one shard lock
	// per touched shard.
	for i := range ops {
		op := &ops[i]
		op.Err = nil
		op.e = nil
		if op.Kind != BatchAcquire {
			continue
		}
		if len(op.Name) == 0 || len(op.Name) > MaxNameLen {
			op.Err = ErrName
			continue
		}
		si := int32(fnv32b(op.Name) & m.mask)
		sc.shardOps[si] = append(sc.shardOps[si], int32(i))
		sc.touch(si)
	}
	for _, si := range sc.touched {
		idx := sc.shardOps[si]
		if len(idx) == 0 {
			continue
		}
		sh := &m.shards[si]
		sh.mu.Lock()
		for _, i := range idx {
			op := &ops[i]
			e := sh.entries[string(op.Name)] // alloc-free lookup
			if e == nil {
				name := string(op.Name) // the one copy: entry creation
				e = m.newEntry(name)
				sh.entries[name] = e
				m.c.entriesCreated.Add(1)
			}
			e.refs++
			e.acquires++ // contention profile: only acquires are refed here
			op.e = e
		}
		sh.mu.Unlock()
	}

	// Phase 3: execute in submission order.
	var sharedGrants, exclGrants, releases, timeouts, zeroWaits uint64
	for i := range ops {
		op := &ops[i]
		if op.Err != nil {
			continue
		}
		if sc.isBlocked(op.Tag) {
			op.Err = ErrDeferred
			if op.e != nil {
				m.unref(int32(i), op.e, sc)
			}
			continue
		}
		switch op.Kind {
		case BatchOpen:
			if closed {
				op.Err = ErrClosed
				continue
			}
			op.OutSID, op.Err = m.openAt(time.Duration(op.Lease), now)
		case BatchKeepAlive:
			op.Err = m.keepAliveSession(op.s, time.Duration(op.Lease), now)
		case BatchCloseSession:
			if op.s == nil {
				op.Err = ErrExpired
				continue
			}
			m.expireSession(op.s, false)
		case BatchAcquire:
			granted, err := m.tryAcquireOp(op, now)
			switch {
			case err != nil:
				op.Err = err
				m.unref(int32(i), op.e, sc)
				if err == ErrWouldBlock {
					sc.blocked = append(sc.blocked, op.Tag)
				} else if err == ErrTimeout {
					timeouts++
				}
			case granted && op.Excl:
				exclGrants++
				zeroWaits++
			case granted:
				sharedGrants++
				zeroWaits++
			}
		case BatchRelease:
			if len(op.Name) == 0 || len(op.Name) > MaxNameLen {
				op.Err = ErrName
				continue
			}
			op.Err = m.releaseOp(int32(i), op, sc, now)
			if op.Err == nil {
				releases++
			}
		default:
			op.Err = ErrName
		}
	}

	// Phase 4: apply the batched unrefs, one shard lock per shard.
	for _, si := range sc.touched {
		idx := sc.derefs[si]
		if len(idx) == 0 {
			continue
		}
		sh := &m.shards[si]
		sh.mu.Lock()
		for _, i := range idx {
			e := ops[i].e
			e.refs--
			if e.refs == 0 {
				e.idleAt = now
			}
		}
		sh.mu.Unlock()
	}

	// Phase 5: counters and the wait histogram, once per batch.
	if sharedGrants > 0 {
		m.c.sharedGrants.Add(sharedGrants)
	}
	if exclGrants > 0 {
		m.c.exclGrants.Add(exclGrants)
	}
	if releases > 0 {
		m.c.releases.Add(releases)
	}
	if timeouts > 0 {
		m.c.timeouts.Add(timeouts)
	}
	if zeroWaits > 0 {
		m.observeZeroWaits(zeroWaits)
	}
	if len(sc.holdNS) > 0 {
		m.observeHolds(sc.holdNS)
	}
}

// unref queues the entry reference held by ops[i] for the phase-4
// shard pass.
func (m *Manager) unref(i int32, e *entry, sc *BatchScratch) {
	si := int32(fnv32(e.name) & m.mask)
	sc.derefs[si] = append(sc.derefs[si], i)
	sc.touch(si)
}

// tryAcquireOp is the batch acquire: session checks, the lock-free try,
// and hold bookkeeping under a single session-mutex hold. It returns
// (granted, error); ErrWouldBlock means "park me".
func (m *Manager) tryAcquireOp(op *BatchOp, now time.Time) (bool, error) {
	s := op.s
	if s == nil {
		return false, ErrExpired
	}
	e := op.e
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrExpired
	}
	if now.After(s.deadline) {
		s.mu.Unlock()
		m.expireSession(s, true)
		return false, ErrExpired
	}
	h := s.holds[e.name]
	if op.Excl && h != nil && h.excl {
		s.mu.Unlock()
		return false, ErrHeld
	}
	var ok bool
	if op.Excl {
		ok = e.lock.TryLock()
	} else {
		ok = e.lock.TryRLock()
	}
	if !ok {
		s.mu.Unlock()
		if op.Wait != 0 {
			return false, ErrWouldBlock
		}
		return false, ErrTimeout
	}
	if h == nil {
		if h = s.free; h != nil {
			s.free = nil
			*h = hold{e: e}
		} else {
			h = &hold{e: e}
		}
		s.holds[e.name] = h
	}
	if op.Excl {
		h.excl = true
	} else {
		h.shared++
	}
	h.grantNS = now.UnixNano()
	s.mu.Unlock()
	return true, nil
}

// releaseOp is the batch release; the entry unref is deferred to the
// phase-4 shard pass via op.e, the hold-time sample to the phase-5
// histogram flush via sc.holdNS.
func (m *Manager) releaseOp(i int32, op *BatchOp, sc *BatchScratch, now time.Time) error {
	s := op.s
	if s == nil {
		return ErrExpired
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrExpired
	}
	h := s.holds[string(op.Name)]
	if h == nil || (op.Excl && !h.excl) || (!op.Excl && h.shared == 0) {
		s.mu.Unlock()
		return ErrNotHeld
	}
	e := h.e
	if op.Excl {
		h.excl = false
	} else {
		h.shared--
	}
	sc.holdNS = append(sc.holdNS, now.UnixNano()-h.grantNS)
	if !h.excl && h.shared == 0 {
		delete(s.holds, e.name)
		s.free = h
	}
	s.mu.Unlock()
	if op.Excl {
		e.lock.Unlock()
	} else {
		e.lock.RUnlock()
	}
	op.e = e
	m.unref(i, e, sc)
	return nil
}

// openAt is Open with the caller's clock reading.
func (m *Manager) openAt(lease time.Duration, now time.Time) (uint64, error) {
	s := &Session{
		cancel:   make(chan struct{}),
		holds:    make(map[string]*hold),
		deadline: now.Add(m.clampLease(lease)),
	}
	m.smu.Lock()
	m.nextSID++
	s.id = m.nextSID
	m.sessions[s.id] = s
	m.smu.Unlock()
	m.c.sessionsOpened.Add(1)
	return s.id, nil
}

// keepAliveSession is KeepAlive on an already-resolved session.
func (m *Manager) keepAliveSession(s *Session, lease time.Duration, now time.Time) error {
	if s == nil {
		return ErrExpired
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrExpired
	}
	if now.After(s.deadline) {
		s.mu.Unlock()
		m.expireSession(s, true)
		return ErrExpired
	}
	s.deadline = now.Add(m.clampLease(lease))
	s.mu.Unlock()
	m.c.keepalives.Add(1)
	return nil
}

// fnv32b is fnv32 over bytes (alloc-free shard hash for ring-aliased
// names).
func fnv32b(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * 16777619
	}
	return h
}

// ShardCount reports the number of lock-table shards (a power of two).
func (m *Manager) ShardCount() int { return len(m.shards) }

// ShardIndex returns the shard a lock name hashes to, without
// allocating. This is the partitioning key an affinity-aware runtime
// uses to route an op to the worker that owns the shard — the software
// analogue of the paper's per-memory-controller LRT banks, where a lock
// address picks exactly one bank.
func (m *Manager) ShardIndex(name []byte) uint32 { return fnv32b(name) & m.mask }
