package lockmgr

import "sort"

// LockProfile is one row of the hot-lock table: the per-lock contention
// profile maintained on the lock's table entry and merged across shards
// on scrape. Acquires counts acquire arrivals (the entry-ref count, so a
// parked acquire that retries off the batch path is counted per
// arrival); the wait columns cover contended grants only — uncontended
// try-path grants have zero queue wait by definition.
type LockProfile struct {
	Name        string  `json:"name"`
	Acquires    uint64  `json:"acquires"`
	WaitTotalUS float64 `json:"wait_total_us"`
	WaitMaxUS   float64 `json:"wait_max_us"`
	QueueLen    int     `json:"queue_len"`
}

// HotLocks returns the top-k locks by attributed wait time (acquire
// arrivals break ties), most contended first. It walks the live entry
// table one shard lock at a time — bounded work and memory, since the
// table is GC'd to the working set by the sweeper — so it is safe to
// call on a scrape path while the server is under load. A lock idle
// past IdleTTL has been collected and no longer appears: the table
// profiles live traffic, not history.
func (m *Manager) HotLocks(k int) []LockProfile {
	if k <= 0 {
		return nil
	}
	var all []LockProfile
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.acquires == 0 {
				continue
			}
			all = append(all, LockProfile{
				Name:        e.name,
				Acquires:    e.acquires,
				WaitTotalUS: float64(e.waitNS.Load()) / 1e3,
				WaitMaxUS:   float64(e.maxWaitNS.Load()) / 1e3,
				QueueLen:    e.lock.QueueLen(),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.WaitTotalUS != b.WaitTotalUS {
			return a.WaitTotalUS > b.WaitTotalUS
		}
		if a.Acquires != b.Acquires {
			return a.Acquires > b.Acquires
		}
		return a.Name < b.Name
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
