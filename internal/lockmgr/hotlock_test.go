package lockmgr

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fairrw/internal/lockmgr/introspect"
)

// slowCfg keeps entries alive for the whole test so the hot-lock table
// reflects everything the test did, not what survived the idle GC.
func slowCfg() Config {
	return Config{
		Shards:        4,
		SweepInterval: time.Hour,
		DefaultLease:  time.Minute,
		MaxLease:      time.Minute,
		IdleTTL:       time.Hour,
	}
}

// TestHotLocksDeterministic drives a known skew through the scalar path
// and checks the table's exact counts and order: attributed wait first,
// then acquire arrivals, then name.
func TestHotLocksDeterministic(t *testing.T) {
	m := newTest(t, slowCfg())
	sid := mustOpen(t, m, time.Minute)

	// Uncontended acquires: counted as arrivals, zero attributed wait.
	for i, n := range []int{5, 3, 1} {
		name := fmt.Sprintf("warm-%d", i)
		for j := 0; j < n; j++ {
			if err := m.Acquire(sid, name, false, 0); err != nil {
				t.Fatalf("acquire %s: %v", name, err)
			}
			if err := m.Release(sid, name, false); err != nil {
				t.Fatalf("release %s: %v", name, err)
			}
		}
	}

	// One contended acquire on "hot": a second session queues behind an
	// exclusive hold, so real wait time lands on the entry.
	other := mustOpen(t, m, time.Minute)
	if err := m.Acquire(sid, "hot", true, 0); err != nil {
		t.Fatalf("acquire hot: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(other, "hot", false, time.Second) }()
	waitQueue(t, m, "hot", 1)
	time.Sleep(10 * time.Millisecond) // give the wait something to measure
	if err := m.Release(sid, "hot", true); err != nil {
		t.Fatalf("release hot: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("contended acquire: %v", err)
	}
	if err := m.Release(other, "hot", false); err != nil {
		t.Fatalf("release hot shared: %v", err)
	}

	hl := m.HotLocks(10)
	if len(hl) != 4 {
		t.Fatalf("HotLocks = %d rows, want 4: %+v", len(hl), hl)
	}
	if hl[0].Name != "hot" || hl[0].WaitTotalUS <= 0 || hl[0].WaitMaxUS <= 0 {
		t.Fatalf("top lock = %+v, want contended \"hot\"", hl[0])
	}
	if hl[0].Acquires != 2 {
		t.Fatalf("hot acquires = %d, want 2", hl[0].Acquires)
	}
	wantOrder := []string{"hot", "warm-0", "warm-1", "warm-2"}
	wantAcq := []uint64{2, 5, 3, 1}
	for i := range hl {
		if hl[i].Name != wantOrder[i] || hl[i].Acquires != wantAcq[i] {
			t.Fatalf("row %d = %s/%d, want %s/%d (table: %+v)",
				i, hl[i].Name, hl[i].Acquires, wantOrder[i], wantAcq[i], hl)
		}
	}

	// Truncation: k bounds the table.
	if got := m.HotLocks(2); len(got) != 2 || got[0].Name != "hot" {
		t.Fatalf("HotLocks(2) = %+v", got)
	}
	if got := m.HotLocks(0); got != nil {
		t.Fatalf("HotLocks(0) = %+v, want nil", got)
	}
}

// TestHotLocksQueueLen: a parked waiter shows up as live queue depth.
func TestHotLocksQueueLen(t *testing.T) {
	m := newTest(t, slowCfg())
	a := mustOpen(t, m, time.Minute)
	b := mustOpen(t, m, time.Minute)

	if err := m.Acquire(a, "q", true, 0); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(b, "q", true, time.Second) }()
	waitQueue(t, m, "q", 1)

	hl := m.HotLocks(1)
	if len(hl) != 1 || hl[0].Name != "q" || hl[0].QueueLen != 1 {
		t.Fatalf("HotLocks = %+v, want q with queue_len 1", hl)
	}
	if err := m.Release(a, "q", true); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

func waitQueue(t *testing.T, m *Manager, name string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for m.QueueLen(name) < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue on %q never reached %d", name, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestHoldHistogram: hold times land in the snapshot with sane values.
func TestHoldHistogram(t *testing.T) {
	m := newTest(t, slowCfg())
	sid := mustOpen(t, m, time.Minute)
	for i := 0; i < 4; i++ {
		if err := m.Acquire(sid, "h", true, 0); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		time.Sleep(time.Millisecond)
		if err := m.Release(sid, "h", true); err != nil {
			t.Fatalf("release: %v", err)
		}
	}
	snap := m.Stats()
	if snap.HoldCount != 4 {
		t.Fatalf("hold_count = %d, want 4", snap.HoldCount)
	}
	if snap.HoldP50US < 500 || snap.HoldMaxUS < snap.HoldP50US {
		t.Fatalf("implausible hold stats: %+v", snap)
	}
}

// TestFlightRecorderGrantPath: a contended acquire leaves PARK-side
// manager events (grant with measured wait) and a timeout leaves its
// own; both dump with the lock's hash.
func TestFlightRecorderGrantPath(t *testing.T) {
	rec := introspect.NewRecorder(2, 32)
	cfg := slowCfg()
	cfg.Recorder = rec
	cfg.SlowLock = time.Microsecond // everything contended is "slow"
	var slowMu sync.Mutex
	var slowNames []string
	cfg.SlowLockFn = func(name string, sid uint64, excl bool, wait time.Duration) {
		slowMu.Lock()
		slowNames = append(slowNames, name)
		slowMu.Unlock()
	}
	m := newTest(t, cfg)
	a := mustOpen(t, m, time.Minute)
	b := mustOpen(t, m, time.Minute)

	if err := m.Acquire(a, "flk", true, 0); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(b, "flk", false, time.Second) }()
	waitQueue(t, m, "flk", 1)
	time.Sleep(2 * time.Millisecond)
	if err := m.Release(a, "flk", true); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("contended acquire: %v", err)
	}

	// And a timeout.
	if err := m.Acquire(a, "flk", true, 10*time.Millisecond); err != ErrTimeout {
		t.Fatalf("want ErrTimeout over reader, got %v", err)
	}

	h := introspect.Hash("flk")
	var sawGrant, sawSlow, sawTimeout bool
	for _, ev := range rec.Events() {
		if ev.Hash != h {
			continue
		}
		switch ev.Kind {
		case introspect.EvGrant:
			if ev.SID == b && ev.Wait > 0 {
				sawGrant = true
			}
		case introspect.EvSlow:
			sawSlow = true
		case introspect.EvTimeout:
			if ev.SID == a {
				sawTimeout = true
			}
		}
	}
	if !sawGrant || !sawSlow || !sawTimeout {
		t.Fatalf("flight events grant=%v slow=%v timeout=%v, want all true\n%+v",
			sawGrant, sawSlow, sawTimeout, rec.Events())
	}
	slowMu.Lock()
	defer slowMu.Unlock()
	if len(slowNames) == 0 || slowNames[0] != "flk" {
		t.Fatalf("SlowLockFn calls = %v, want [flk ...]", slowNames)
	}
	var sb strings.Builder
	rec.Dump(&sb)
	if !strings.Contains(sb.String(), "GRANT") {
		t.Fatalf("dump missing GRANT:\n%s", sb.String())
	}
}

// TestManagerPairAllocs: the uncontended scalar acquire+release pair
// must stay allocation-free with the full observability configuration
// live (recorder wired, slow-lock armed, hold histogram recording).
func TestManagerPairAllocs(t *testing.T) {
	cfg := slowCfg()
	cfg.Recorder = introspect.NewRecorder(2, 32)
	cfg.SlowLock = time.Second
	cfg.SlowLockFn = func(string, uint64, bool, time.Duration) {}
	m := newTest(t, cfg)
	sid := mustOpen(t, m, time.Minute)

	n := testing.AllocsPerRun(200, func() {
		if err := m.Acquire(sid, "pair", true, 0); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if err := m.Release(sid, "pair", true); err != nil {
			t.Fatalf("release: %v", err)
		}
	})
	if n != 0 {
		t.Fatalf("acquire+release pair allocates %v/op, want 0", n)
	}
}
