package lockmgr

import (
	"sync"
	"testing"
	"time"
)

// fastCfg keeps test leases and sweeps short: 5ms reaper, 50ms idle GC.
func fastCfg() Config {
	return Config{
		Shards:        4,
		SweepInterval: 5 * time.Millisecond,
		DefaultLease:  time.Second,
		MaxLease:      10 * time.Second,
		IdleTTL:       50 * time.Millisecond,
	}
}

func newTest(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := New(cfg)
	t.Cleanup(m.Close)
	return m
}

func mustOpen(t *testing.T, m *Manager, lease time.Duration) uint64 {
	t.Helper()
	sid, err := m.Open(lease)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return sid
}

func TestAcquireReleaseBasic(t *testing.T) {
	m := newTest(t, fastCfg())
	a := mustOpen(t, m, time.Second)
	b := mustOpen(t, m, time.Second)

	// Two sessions share; an exclusive try fails until both release.
	if err := m.Acquire(a, "k", false, 0); err != nil {
		t.Fatalf("shared acquire: %v", err)
	}
	if err := m.Acquire(b, "k", false, 0); err != nil {
		t.Fatalf("second shared acquire: %v", err)
	}
	if err := m.Acquire(a, "k", true, 0); err != ErrTimeout {
		t.Fatalf("exclusive try over readers = %v, want ErrTimeout", err)
	}
	if err := m.Release(a, "k", false); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := m.Release(b, "k", false); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := m.Acquire(a, "k", true, 0); err != nil {
		t.Fatalf("exclusive after drain: %v", err)
	}
	// Exclusive re-acquire by the same session is rejected, not deadlocked.
	if err := m.Acquire(a, "k", true, -1); err != ErrHeld {
		t.Fatalf("exclusive re-acquire = %v, want ErrHeld", err)
	}
	if err := m.Release(a, "k", true); err != nil {
		t.Fatalf("release exclusive: %v", err)
	}

	// Releasing what is not held, in either mode, is rejected.
	if err := m.Release(a, "k", true); err != ErrNotHeld {
		t.Fatalf("double release = %v, want ErrNotHeld", err)
	}
	if err := m.Release(a, "never", false); err != ErrNotHeld {
		t.Fatalf("release unknown = %v, want ErrNotHeld", err)
	}

	st := m.Stats()
	if st.SharedGrants != 2 || st.ExclGrants != 1 || st.Releases != 3 {
		t.Fatalf("counters = %+v", st)
	}
}

func TestInvalidNamesAndSessions(t *testing.T) {
	m := newTest(t, fastCfg())
	sid := mustOpen(t, m, time.Second)
	if err := m.Acquire(sid, "", false, 0); err != ErrName {
		t.Fatalf("empty name = %v, want ErrName", err)
	}
	long := make([]byte, MaxNameLen+1)
	if err := m.Acquire(sid, string(long), false, 0); err != ErrName {
		t.Fatalf("oversized name = %v, want ErrName", err)
	}
	if err := m.Acquire(999999, "k", false, 0); err != ErrExpired {
		t.Fatalf("unknown session = %v, want ErrExpired", err)
	}
	if err := m.KeepAlive(999999, time.Second); err != ErrExpired {
		t.Fatalf("unknown keepalive = %v, want ErrExpired", err)
	}
}

// TestKilledClientReclaimedFIFO is the acceptance scenario: a session dies
// holding an exclusive lock with a FIFO of waiters behind it. The hold
// must be reclaimed within 2x the lease and every queued waiter granted
// in arrival order (writer first, then the reader batch).
func TestKilledClientReclaimedFIFO(t *testing.T) {
	m := newTest(t, fastCfg())
	const lease = 100 * time.Millisecond

	dead := mustOpen(t, m, lease)
	if err := m.Acquire(dead, "k", true, 0); err != nil {
		t.Fatalf("dead session acquire: %v", err)
	}
	// The "client" now crashes: no keepalive, no release.

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	grantAt := make([]time.Time, 3)
	start := time.Now()
	for i, excl := range []bool{true, false, false} { // W0, then readers R1 R2
		i, excl := i, excl
		sid := mustOpen(t, m, 5*time.Second)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Acquire(sid, "k", excl, -1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			grantAt[i] = time.Now()
			mu.Unlock()
			if excl {
				// Hold long enough that the readers behind cannot be
				// granted before this writer's release.
				time.Sleep(2 * time.Millisecond)
			}
			if err := m.Release(sid, "k", excl); err != nil {
				t.Errorf("waiter %d release: %v", i, err)
			}
		}()
		// Enforce arrival order before launching the next waiter.
		deadline := time.Now().Add(5 * time.Second)
		for m.QueueLen("k") != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	wg.Wait()
	reclaim := grantAt[0].Sub(start)

	if order[0] != 0 {
		t.Fatalf("grant order %v: writer W0 must be first (FIFO)", order)
	}
	if reclaim > 2*lease {
		t.Fatalf("exclusive hold reclaimed after %v, want <= %v", reclaim, 2*lease)
	}
	st := m.Stats()
	if st.LeaseExpirations == 0 || st.RevokedHolds == 0 {
		t.Fatalf("expected expiry accounting, got %+v", st)
	}
	// The dead session is gone: its late release must be rejected.
	if err := m.Release(dead, "k", true); err != ErrExpired {
		t.Fatalf("late release from dead session = %v, want ErrExpired", err)
	}
}

// TestKeepAliveExtendsLease verifies the reservation stays live as long
// as keepalives arrive, and breaks promptly once they stop.
func TestKeepAliveExtendsLease(t *testing.T) {
	m := newTest(t, fastCfg())
	const lease = 60 * time.Millisecond
	sid := mustOpen(t, m, lease)
	if err := m.Acquire(sid, "k", true, 0); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	probe := mustOpen(t, m, 5*time.Second)

	// Keep the session alive for ~4 lease periods.
	stop := time.Now().Add(4 * lease)
	for time.Now().Before(stop) {
		if err := m.KeepAlive(sid, lease); err != nil {
			t.Fatalf("keepalive: %v", err)
		}
		if err := m.Acquire(probe, "k", true, 0); err != ErrTimeout {
			t.Fatalf("probe acquired while keepalives flowing: %v", err)
		}
		time.Sleep(lease / 4)
	}

	// Stop keepalives: the hold must be revoked and the probe granted.
	if err := m.Acquire(probe, "k", true, -1); err != nil {
		t.Fatalf("probe after keepalives stopped: %v", err)
	}
	if err := m.KeepAlive(sid, lease); err != ErrExpired {
		t.Fatalf("keepalive on expired session = %v, want ErrExpired", err)
	}
	if err := m.Release(probe, "k", true); err != nil {
		t.Fatalf("probe release: %v", err)
	}
}

// TestExpiredSessionReleaseRejected pins the satellite requirement
// directly: a release arriving after the lease lapsed — even before the
// reaper ran — must be rejected, in both modes.
func TestExpiredSessionReleaseRejected(t *testing.T) {
	cfg := fastCfg()
	cfg.SweepInterval = 20 * time.Millisecond // slow reaper: expiry seen lazily
	m := newTest(t, cfg)
	sid := mustOpen(t, m, cfg.SweepInterval) // minimum lease
	if err := m.Acquire(sid, "r", false, 0); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	time.Sleep(cfg.SweepInterval + cfg.SweepInterval/2)
	if err := m.Release(sid, "r", false); err != ErrExpired {
		t.Fatalf("lapsed shared release = %v, want ErrExpired", err)
	}
}

// TestBlockedWaiterCancelledOnExpiry: a session blocked in queue dies;
// its unbounded acquire must return ErrExpired and leave the queue clean.
func TestBlockedWaiterCancelledOnExpiry(t *testing.T) {
	m := newTest(t, fastCfg())
	holder := mustOpen(t, m, 5*time.Second)
	if err := m.Acquire(holder, "k", true, 0); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	const lease = 50 * time.Millisecond
	doomed := mustOpen(t, m, lease)
	errc := make(chan error, 1)
	go func() { errc <- m.Acquire(doomed, "k", true, -1) }()
	select {
	case err := <-errc:
		if err != ErrExpired {
			t.Fatalf("doomed acquire = %v, want ErrExpired", err)
		}
	case <-time.After(10 * lease):
		t.Fatal("doomed waiter not cancelled by lease expiry")
	}
	if n := m.QueueLen("k"); n != 0 {
		t.Fatalf("queue not cleaned after cancellation: %d", n)
	}
	if err := m.Release(holder, "k", true); err != nil {
		t.Fatalf("holder release: %v", err)
	}
}

// TestTimedAcquire covers the timed path: bounded FIFO wait, timeout
// against a held lock, and the lease cap on the requested wait.
func TestTimedAcquire(t *testing.T) {
	m := newTest(t, fastCfg())
	holder := mustOpen(t, m, 5*time.Second)
	if err := m.Acquire(holder, "k", true, 0); err != nil {
		t.Fatalf("holder: %v", err)
	}
	w := mustOpen(t, m, 5*time.Second)
	t0 := time.Now()
	if err := m.Acquire(w, "k", false, 30*time.Millisecond); err != ErrTimeout {
		t.Fatalf("timed acquire = %v, want ErrTimeout", err)
	}
	if d := time.Since(t0); d > 3*time.Second {
		t.Fatalf("timed acquire took %v", d)
	}
	// Short-lease session: its 10s request is capped at the lease.
	s := mustOpen(t, m, 50*time.Millisecond)
	t0 = time.Now()
	if err := m.Acquire(s, "k", true, 10*time.Second); err != ErrTimeout {
		t.Fatalf("lease-capped acquire = %v, want ErrTimeout", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("lease cap not applied: waited %v", d)
	}
	// After release the timed path grants.
	if err := m.Release(holder, "k", true); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := m.Acquire(w, "k", false, time.Second); err != nil {
		t.Fatalf("timed acquire after release: %v", err)
	}
}

// TestEntryGC: entries appear on demand and the sweeper collects them
// once idle past IdleTTL, while held entries survive.
func TestEntryGC(t *testing.T) {
	m := newTest(t, fastCfg())
	sid := mustOpen(t, m, time.Second)
	for _, name := range []string{"a", "b", "c"} {
		if err := m.Acquire(sid, name, false, 0); err != nil {
			t.Fatalf("acquire %s: %v", name, err)
		}
	}
	if n := m.EntryCount(); n != 3 {
		t.Fatalf("entries = %d, want 3", n)
	}
	for _, name := range []string{"a", "b"} {
		if err := m.Release(sid, name, false); err != nil {
			t.Fatalf("release %s: %v", name, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.EntryCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("idle entries not collected: %d left", m.EntryCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := m.Stats()
	if st.EntriesCreated != 3 || st.EntriesGCed != 2 {
		t.Fatalf("entry accounting: %+v", st)
	}
	// The held entry survives GC and is still functional.
	if err := m.Release(sid, "c", false); err != nil {
		t.Fatalf("release c: %v", err)
	}
}

// TestCloseSessionReleasesEverything: graceful close is a bulk release.
func TestCloseSessionReleasesEverything(t *testing.T) {
	m := newTest(t, fastCfg())
	sid := mustOpen(t, m, time.Second)
	if err := m.Acquire(sid, "x", true, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(sid, "y", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(sid, "y", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.CloseSession(sid); err != nil {
		t.Fatalf("close: %v", err)
	}
	other := mustOpen(t, m, time.Second)
	if err := m.Acquire(other, "x", true, 0); err != nil {
		t.Fatalf("x still held after close: %v", err)
	}
	if err := m.Acquire(other, "y", true, 0); err != nil {
		t.Fatalf("y still held after close: %v", err)
	}
	if m.SessionCount() != 1 {
		t.Fatalf("sessions = %d, want 1", m.SessionCount())
	}
	st := m.Stats()
	if st.SessionsClosed != 1 || st.RevokedHolds != 3 {
		t.Fatalf("close accounting: %+v", st)
	}
}

// TestManagerClose: Close cancels blocked acquires and is idempotent.
func TestManagerClose(t *testing.T) {
	m := New(fastCfg())
	holder, _ := m.Open(time.Second)
	if err := m.Acquire(holder, "k", true, 0); err != nil {
		t.Fatal(err)
	}
	blocked, _ := m.Open(time.Second)
	errc := make(chan error, 1)
	go func() { errc <- m.Acquire(blocked, "k", true, -1) }()
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueLen("k") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	m.Close()
	if err := <-errc; err != ErrExpired {
		t.Fatalf("blocked acquire after Close = %v, want ErrExpired", err)
	}
	if _, err := m.Open(time.Second); err != ErrClosed {
		t.Fatalf("Open after Close = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

// TestConcurrentChurn hammers the manager from many sessions across a
// small keyspace with mixed modes and waits; run under -race in CI. The
// invariant checks live in fairlock itself; here we assert no errors
// other than the expected timeouts, and a clean final state.
func TestConcurrentChurn(t *testing.T) {
	m := newTest(t, fastCfg())
	keys := []string{"a", "b", "c", "d"}
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sid := mustOpen(t, m, 5*time.Second)
			for i := 0; i < iters; i++ {
				name := keys[(g+i)%len(keys)]
				excl := (g+i)%10 == 0
				err := m.Acquire(sid, name, excl, 100*time.Millisecond)
				if err == ErrTimeout {
					continue
				}
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if err := m.Release(sid, name, excl); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
			if err := m.CloseSession(sid); err != nil {
				t.Errorf("close session: %v", err)
			}
		}()
	}
	wg.Wait()
	if m.SessionCount() != 0 {
		t.Fatalf("sessions leaked: %d", m.SessionCount())
	}
	for _, k := range keys {
		if n := m.QueueLen(k); n != 0 {
			t.Fatalf("queue %s not drained: %d", k, n)
		}
	}
}
