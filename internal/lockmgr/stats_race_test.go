package lockmgr

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairrw/internal/lockmgr/introspect"
)

// TestStatsRaceHammer pits every observability read path (Stats,
// HotLocks, histogram copies, flight-recorder snapshots) against every
// write path at once: batch execution, scalar contended acquires, and
// lease expiry on short-lived sessions. It asserts nothing beyond "no
// error, no panic" — its teeth are `go test -race`, which is how the
// admin plane's scrape-during-load contract is enforced.
func TestStatsRaceHammer(t *testing.T) {
	rec := introspect.NewRecorder(4, 64)
	m := newTest(t, Config{
		Shards:        4,
		SweepInterval: time.Millisecond,
		DefaultLease:  time.Second,
		MaxLease:      time.Second,
		IdleTTL:       5 * time.Millisecond,
		Recorder:      rec,
		SlowLock:      time.Microsecond,
		SlowLockFn:    func(string, uint64, bool, time.Duration) {},
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	start := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				f()
			}
		}()
	}

	// Batch writer: open/acquire/release/close per iteration.
	for g := 0; g < 2; g++ {
		g := g
		sc := m.NewBatchScratch()
		name := []byte(fmt.Sprintf("batch-%d", g))
		start(func() {
			ops := []BatchOp{
				{Kind: BatchOpen, Lease: int64(time.Second)},
			}
			m.ExecBatch(ops, sc)
			if ops[0].Err != nil {
				return
			}
			sid := ops[0].OutSID
			body := []BatchOp{
				{Kind: BatchAcquire, SID: sid, Name: name, Excl: true},
				{Kind: BatchRelease, SID: sid, Name: name, Excl: true},
				{Kind: BatchAcquire, SID: sid, Name: name},
				{Kind: BatchRelease, SID: sid, Name: name},
				{Kind: BatchCloseSession, SID: sid},
			}
			m.ExecBatch(body, sc)
		})
	}

	// Scalar writers: contended acquire/release pairs on a shared name.
	for g := 0; g < 2; g++ {
		sid := mustOpen(t, m, time.Second)
		start(func() {
			if err := m.Acquire(sid, "shared", true, 50*time.Millisecond); err == nil {
				m.Release(sid, "shared", true)
			}
			m.KeepAlive(sid, time.Second)
		})
	}

	// Expiry churn: sessions opened with the minimum lease and abandoned
	// while holding, so the reaper revokes concurrently with everything.
	start(func() {
		sid, err := m.Open(time.Millisecond)
		if err != nil {
			return
		}
		m.Acquire(sid, "expiring", false, 0)
		time.Sleep(2 * time.Millisecond)
	})

	// Readers: the scrape surface.
	start(func() { m.Stats() })
	start(func() { m.HotLocks(8) })
	start(func() {
		m.WaitHistogram()
		m.HoldHistogram()
		rec.Events()
	})

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	snap := m.Stats()
	if snap.SharedGrants+snap.ExclGrants == 0 {
		t.Fatal("hammer made no grants; test is vacuous")
	}
}
