package wire

import "sync"

// Buffer is a pooled byte slice for the encode hot path. Response
// encoding appends to caller-owned buffers, so a long-lived connection
// reaches zero allocations by itself; the pool extends that to
// short-lived owners — per-connection write buffers on a server that
// churns connections, and one-shot payloads (stats snapshots) — by
// recycling the backing arrays instead of leaving them to the GC. Use B
// directly (append semantics: reassign after growing); Free returns the
// backing array to the pool.
type Buffer struct {
	B []byte
}

// bufPool recycles Buffers. New allocates with room for a typical
// coalesced response burst so a freshly pooled buffer usually never
// regrows.
var bufPool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, 4096)} },
}

// MaxRetain bounds the backing-array capacity a Buffer may bring back
// into the pool. A response burst to a pipelining client can grow a
// chunk well past any single frame; retaining such one-off giants would
// pin their memory for the life of the pool (sync.Pool holds survivors
// across GC cycles under steady load), so Free drops anything larger
// and lets the GC have it. One frame's worth is the natural bound: a
// buffer that big serves every single-frame use, and bursts regrow
// cheaply from there.
const MaxRetain = MaxFrame

// GetBuffer returns an empty pooled buffer.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// Free recycles b. The caller must not touch b (or slices of b.B)
// afterwards. Buffers grown past MaxRetain are dropped rather than
// pinned in the pool.
func (b *Buffer) Free() {
	if b == nil || cap(b.B) > MaxRetain {
		return
	}
	bufPool.Put(b)
}
