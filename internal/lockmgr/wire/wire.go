// Package wire defines lockd's length-prefixed binary protocol.
//
// Every message travels in one frame:
//
//	uint32 big-endian payload length | payload
//
// A request payload is a fixed 28-byte header followed by the lock name:
//
//	op:1 | sid:8 | lease:8 | wait:8 | excl:1 | nameLen:2 | name:nameLen
//
// A response payload is a fixed 13-byte header followed by an opaque
// payload (stats JSON):
//
//	status:1 | sid:8 | payloadLen:4 | payload
//
// All integers are big-endian. Decoding is strict: unknown ops or
// statuses, non-boolean excl bytes, lengths that disagree with the
// payload size, and frames over MaxFrame are errors — never panics, and
// never an allocation larger than MaxFrame (the fuzz harness pins this).
// Strictness buys a canonical encoding: any payload that decodes
// re-encodes to identical bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a frame payload; ReadFrame rejects larger claims before
// allocating. MaxName bounds lock names (mirrors lockmgr.MaxNameLen).
// RequestHeaderLen is the fixed request-header size, so the largest
// well-formed request payload is MaxRequestPayload — framing layers can
// condemn a stream claiming more without waiting for the bytes.
const (
	MaxFrame          = 1 << 16
	MaxName           = 1024
	RequestHeaderLen  = 1 + 8 + 8 + 8 + 1 + 2
	MaxRequestPayload = RequestHeaderLen + MaxName
)

// Op identifies a request.
type Op uint8

const (
	OpOpen        Op = 1 // register a session; lease = requested lease ns
	OpKeepAlive   Op = 2 // extend sid's lease
	OpClose       Op = 3 // gracefully end sid, releasing all holds
	OpAcquire     Op = 4 // take name; wait ns: 0 try, >0 timed, <0 until lease expiry
	OpRelease     Op = 5 // drop one hold on name
	OpStats       Op = 6 // server counters as JSON payload
	OpClusterInfo Op = 7 // cluster membership (epoch + members) as a Membership payload
)

// Status is a response code.
type Status uint8

const (
	StatusOK       Status = 1
	StatusTimeout  Status = 2 // try/timed acquire did not get the lock
	StatusExpired  Status = 3 // session unknown, lapsed, or revoked
	StatusNotHeld  Status = 4 // release of a lock the session does not hold
	StatusHeld     Status = 5 // exclusive re-acquire by the same session
	StatusErr      Status = 6 // malformed name or unknown op
	StatusNotOwner Status = 7 // this node does not own the name; payload = Membership
)

// Request is one client message.
type Request struct {
	Op    Op
	SID   uint64
	Lease int64 // nanoseconds (OpOpen, OpKeepAlive)
	Wait  int64 // nanoseconds (OpAcquire)
	Excl  bool  // OpAcquire, OpRelease
	Name  string
}

// Response is one server message.
type Response struct {
	Status  Status
	SID     uint64 // OpOpen result
	Payload []byte // OpStats result (aliases the decode buffer)
}

// Decode errors. Both wrap ErrMalformed so callers can test with
// errors.Is regardless of the specific violation.
var (
	ErrMalformed = errors.New("wire: malformed message")
	ErrTooLarge  = errors.New("wire: frame exceeds MaxFrame")
)

const (
	reqHeader  = RequestHeaderLen
	respHeader = 1 + 8 + 4
)

// AppendRequestFrame appends req's complete frame (length prefix
// included) to buf and returns the extended slice. It errors on names the
// protocol cannot carry.
func AppendRequestFrame(buf []byte, req *Request) ([]byte, error) {
	if len(req.Name) > MaxName {
		return buf, fmt.Errorf("%w: name length %d > %d", ErrMalformed, len(req.Name), MaxName)
	}
	if req.Op < OpOpen || req.Op > OpClusterInfo {
		return buf, fmt.Errorf("%w: unknown op %d", ErrMalformed, req.Op)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(reqHeader+len(req.Name)))
	buf = append(buf, byte(req.Op))
	buf = binary.BigEndian.AppendUint64(buf, req.SID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.Lease))
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.Wait))
	if req.Excl {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(req.Name)))
	return append(buf, req.Name...), nil
}

// DecodeRequest parses one request payload (the frame's contents, without
// the length prefix).
func DecodeRequest(p []byte) (Request, error) {
	var req Request
	if len(p) < reqHeader {
		return req, fmt.Errorf("%w: request payload %d bytes, need %d", ErrMalformed, len(p), reqHeader)
	}
	op := Op(p[0])
	if op < OpOpen || op > OpClusterInfo {
		return req, fmt.Errorf("%w: unknown op %d", ErrMalformed, op)
	}
	if p[25] > 1 {
		return req, fmt.Errorf("%w: excl byte %d", ErrMalformed, p[25])
	}
	nameLen := int(binary.BigEndian.Uint16(p[26:28]))
	if nameLen > MaxName {
		return req, fmt.Errorf("%w: name length %d > %d", ErrMalformed, nameLen, MaxName)
	}
	if len(p) != reqHeader+nameLen {
		return req, fmt.Errorf("%w: payload %d bytes, header claims %d", ErrMalformed, len(p), reqHeader+nameLen)
	}
	req.Op = op
	req.SID = binary.BigEndian.Uint64(p[1:9])
	req.Lease = int64(binary.BigEndian.Uint64(p[9:17]))
	req.Wait = int64(binary.BigEndian.Uint64(p[17:25]))
	req.Excl = p[25] == 1
	req.Name = string(p[28:])
	return req, nil
}

// RawRequest is Request with the name still aliasing the decode buffer.
// The event-loop server decodes straight out of per-connection read
// buffers and only materializes a string if an op actually parks, so
// the request hot path performs no allocation at all.
type RawRequest struct {
	Op    Op
	SID   uint64
	Lease int64
	Wait  int64
	Excl  bool
	Name  []byte // aliases the decode buffer; copy to retain
}

// DecodeRequestRaw parses one request payload without allocating.
// Validation is identical to DecodeRequest; req.Name aliases p.
func DecodeRequestRaw(p []byte, req *RawRequest) error {
	if len(p) < reqHeader {
		return fmt.Errorf("%w: request payload %d bytes, need %d", ErrMalformed, len(p), reqHeader)
	}
	op := Op(p[0])
	if op < OpOpen || op > OpClusterInfo {
		return fmt.Errorf("%w: unknown op %d", ErrMalformed, op)
	}
	if p[25] > 1 {
		return fmt.Errorf("%w: excl byte %d", ErrMalformed, p[25])
	}
	nameLen := int(binary.BigEndian.Uint16(p[26:28]))
	if nameLen > MaxName {
		return fmt.Errorf("%w: name length %d > %d", ErrMalformed, nameLen, MaxName)
	}
	if len(p) != reqHeader+nameLen {
		return fmt.Errorf("%w: payload %d bytes, header claims %d", ErrMalformed, len(p), reqHeader+nameLen)
	}
	req.Op = op
	req.SID = binary.BigEndian.Uint64(p[1:9])
	req.Lease = int64(binary.BigEndian.Uint64(p[9:17]))
	req.Wait = int64(binary.BigEndian.Uint64(p[17:25]))
	req.Excl = p[25] == 1
	req.Name = p[28:]
	return nil
}

// AppendResponseFrame appends resp's complete frame (length prefix
// included) to buf. Oversized payloads are a programming error on the
// sending side and panic-free truncation would corrupt the stream, so
// they are rejected.
func AppendResponseFrame(buf []byte, resp *Response) ([]byte, error) {
	if resp.Status < StatusOK || resp.Status > StatusNotOwner {
		return buf, fmt.Errorf("%w: unknown status %d", ErrMalformed, resp.Status)
	}
	if len(resp.Payload) > MaxFrame-respHeader {
		return buf, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(resp.Payload))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(respHeader+len(resp.Payload)))
	buf = append(buf, byte(resp.Status))
	buf = binary.BigEndian.AppendUint64(buf, resp.SID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(resp.Payload)))
	return append(buf, resp.Payload...), nil
}

// DecodeResponse parses one response payload. The returned Payload
// aliases p; callers that keep it past the next read must copy.
func DecodeResponse(p []byte) (Response, error) {
	var resp Response
	if len(p) < respHeader {
		return resp, fmt.Errorf("%w: response payload %d bytes, need %d", ErrMalformed, len(p), respHeader)
	}
	st := Status(p[0])
	if st < StatusOK || st > StatusNotOwner {
		return resp, fmt.Errorf("%w: unknown status %d", ErrMalformed, st)
	}
	plen := int(binary.BigEndian.Uint32(p[9:13]))
	if plen > MaxFrame-respHeader {
		return resp, fmt.Errorf("%w: payload length %d", ErrTooLarge, plen)
	}
	if len(p) != respHeader+plen {
		return resp, fmt.Errorf("%w: payload %d bytes, header claims %d", ErrMalformed, len(p), respHeader+plen)
	}
	resp.Status = st
	resp.SID = binary.BigEndian.Uint64(p[1:9])
	if plen > 0 {
		resp.Payload = p[respHeader:]
	}
	return resp, nil
}

// Membership is the payload of StatusNotOwner responses and OpClusterInfo
// replies: the responding node's view of the cluster at a given epoch.
// Members are listener addresses; the epoch only ever rises (each member
// death bumps it), so routers adopt a membership iff its epoch exceeds
// the cached one.
//
// Encoding: epoch:8 | n:2 | n × (addrLen:2 | addr). Strict like the rest
// of the protocol: member counts over MaxMembers, empty or oversized
// addresses, and trailing bytes are all errors, so decode∘encode is the
// identity here too.
type Membership struct {
	Epoch   uint64
	Members []string
}

// MaxMembers bounds a membership frame; MaxMemberAddr bounds one
// address. 64 × (2+255) + 10 stays far under MaxFrame.
const (
	MaxMembers    = 64
	MaxMemberAddr = 255
)

// AppendMembership appends m's encoding to buf and returns the extended
// slice.
func AppendMembership(buf []byte, m *Membership) ([]byte, error) {
	if len(m.Members) > MaxMembers {
		return buf, fmt.Errorf("%w: %d members > %d", ErrMalformed, len(m.Members), MaxMembers)
	}
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Members)))
	for _, addr := range m.Members {
		if len(addr) == 0 || len(addr) > MaxMemberAddr {
			return buf, fmt.Errorf("%w: member address length %d", ErrMalformed, len(addr))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(addr)))
		buf = append(buf, addr...)
	}
	return buf, nil
}

// DecodeMembership parses one membership payload.
func DecodeMembership(p []byte) (Membership, error) {
	var m Membership
	if len(p) < 10 {
		return m, fmt.Errorf("%w: membership payload %d bytes, need 10", ErrMalformed, len(p))
	}
	m.Epoch = binary.BigEndian.Uint64(p[0:8])
	n := int(binary.BigEndian.Uint16(p[8:10]))
	if n > MaxMembers {
		return m, fmt.Errorf("%w: %d members > %d", ErrMalformed, n, MaxMembers)
	}
	p = p[10:]
	if n > 0 {
		m.Members = make([]string, 0, n)
	}
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return Membership{}, fmt.Errorf("%w: truncated member %d", ErrMalformed, i)
		}
		alen := int(binary.BigEndian.Uint16(p[0:2]))
		if alen == 0 || alen > MaxMemberAddr {
			return Membership{}, fmt.Errorf("%w: member %d address length %d", ErrMalformed, i, alen)
		}
		if len(p) < 2+alen {
			return Membership{}, fmt.Errorf("%w: truncated member %d address", ErrMalformed, i)
		}
		m.Members = append(m.Members, string(p[2:2+alen]))
		p = p[2+alen:]
	}
	if len(p) != 0 {
		return Membership{}, fmt.Errorf("%w: %d trailing bytes after membership", ErrMalformed, len(p))
	}
	return m, nil
}

// ReadFrame reads one frame from r into *buf (grown as needed, never past
// MaxFrame) and returns the payload slice. The caller owns *buf across
// calls, so steady-state reads do not allocate.
func ReadFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrMalformed)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame claims %d bytes", ErrTooLarge, n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	p := (*buf)[:n]
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return p, nil
}
