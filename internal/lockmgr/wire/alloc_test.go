package wire

import (
	"testing"
)

// TestEncodeDecodeSteadyStateAllocs pins the hot path at zero
// allocations: the server's per-request cycle is DecodeRequestRaw into a
// reused RawRequest, then AppendResponseFrame into a caller-owned
// buffer. Any allocation here multiplies by every request the server
// ever handles, so a regression is a test failure, not a benchmark
// footnote.
func TestEncodeDecodeSteadyStateAllocs(t *testing.T) {
	reqFrame, err := AppendRequestFrame(nil, &Request{
		Op: OpAcquire, SID: 42, Wait: -1, Excl: true, Name: "alloc-guard",
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := reqFrame[4:]
	var raw RawRequest
	resp := Response{Status: StatusOK, SID: 42}
	wbuf := make([]byte, 0, 256)

	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeRequestRaw(payload, &raw); err != nil {
			t.Fatal(err)
		}
		var err error
		wbuf, err = AppendResponseFrame(wbuf[:0], &resp)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decode+encode steady state allocs = %.1f, want 0", allocs)
	}
}

// TestBufferPoolReuse: GetBuffer hands back recycled backing arrays and
// drops oversized ones instead of pinning them in the pool.
func TestBufferPoolReuse(t *testing.T) {
	b := GetBuffer()
	if len(b.B) != 0 {
		t.Fatalf("pooled buffer not reset: len %d", len(b.B))
	}
	b.B = append(b.B, make([]byte, MaxFrame+1)...)
	b.Free() // oversized: must be dropped
	c := GetBuffer()
	if cap(c.B) > MaxFrame {
		t.Fatalf("oversized buffer returned to pool: cap %d", cap(c.B))
	}
	c.Free()
}

// TestBufferRetainBound sweeps Free across capacities straddling
// MaxRetain: no sequence of frees may ever let a later GetBuffer hand
// back a backing array larger than the bound. This is the memory-ceiling
// contract — a response burst can grow a chunk to megabytes, and
// retaining such one-off giants would pin their memory in the pool for
// the life of the process.
func TestBufferRetainBound(t *testing.T) {
	for _, extra := range []int{-1, 0, 1, MaxRetain} {
		b := GetBuffer()
		b.B = append(b.B, make([]byte, MaxRetain+extra)...)
		b.Free()
	}
	for i := 0; i < 64; i++ {
		b := GetBuffer()
		if cap(b.B) > MaxRetain {
			t.Fatalf("GetBuffer returned cap %d > MaxRetain %d", cap(b.B), MaxRetain)
		}
		b.Free()
	}
}

// TestBufferPoolSteadyStateAllocs pins the pooled get→grow→free cycle
// at zero allocations for chunks within the retain bound — the flusher
// does this once per coalesced response chunk, so a miss here is a
// per-flush allocation.
func TestBufferPoolSteadyStateAllocs(t *testing.T) {
	var chunk [512]byte
	// Warm the per-P pool slot.
	for i := 0; i < 8; i++ {
		b := GetBuffer()
		b.B = append(b.B, chunk[:]...)
		b.Free()
	}
	allocs := testing.AllocsPerRun(200, func() {
		b := GetBuffer()
		b.B = append(b.B, chunk[:]...)
		b.Free()
	})
	if allocs != 0 {
		t.Fatalf("pooled buffer cycle allocs = %.1f, want 0", allocs)
	}
}

// TestDecodeRequestRawMatchesDecodeRequest: the two decoders accept and
// reject identical inputs and agree on every field.
func TestDecodeRequestRawMatchesDecodeRequest(t *testing.T) {
	cases := [][]byte{}
	for _, req := range []Request{
		{Op: OpOpen, Lease: 5e9},
		{Op: OpAcquire, SID: 7, Wait: 3, Excl: true, Name: "k"},
		{Op: OpStats},
	} {
		f, err := AppendRequestFrame(nil, &req)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, f[4:])
	}
	// Malformed: short, bad op, bad excl, bad name length.
	cases = append(cases,
		[]byte{1, 2, 3},
		append([]byte{99}, make([]byte, RequestHeaderLen-1)...),
		func() []byte {
			f, _ := AppendRequestFrame(nil, &Request{Op: OpOpen})
			p := f[4:]
			p[25] = 2
			return p
		}(),
		func() []byte {
			f, _ := AppendRequestFrame(nil, &Request{Op: OpOpen})
			p := f[4:]
			p[27] = 9 // claims a name the payload does not carry
			return p
		}(),
	)
	for i, p := range cases {
		want, wantErr := DecodeRequest(p)
		var raw RawRequest
		gotErr := DecodeRequestRaw(p, &raw)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("case %d: DecodeRequest err %v, DecodeRequestRaw err %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if raw.Op != want.Op || raw.SID != want.SID || raw.Lease != want.Lease ||
			raw.Wait != want.Wait || raw.Excl != want.Excl || string(raw.Name) != want.Name {
			t.Fatalf("case %d: raw %+v != %+v", i, raw, want)
		}
	}
}

// BenchmarkDecodeRequestRaw measures the zero-copy request decode.
func BenchmarkDecodeRequestRaw(b *testing.B) {
	f, _ := AppendRequestFrame(nil, &Request{
		Op: OpAcquire, SID: 42, Wait: -1, Excl: true, Name: "bench-key",
	})
	p := f[4:]
	var raw RawRequest
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeRequestRaw(p, &raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeRequest measures the allocating decode for contrast.
func BenchmarkDecodeRequest(b *testing.B) {
	f, _ := AppendRequestFrame(nil, &Request{
		Op: OpAcquire, SID: 42, Wait: -1, Excl: true, Name: "bench-key",
	})
	p := f[4:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendResponseFrame measures response encoding into a reused
// buffer.
func BenchmarkAppendResponseFrame(b *testing.B) {
	resp := Response{Status: StatusOK, SID: 42}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendResponseFrame(buf[:0], &resp)
		if err != nil {
			b.Fatal(err)
		}
	}
}
