package wire

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz harnesses for the decoders. They double as seed-corpus regression
// tests: `go test` (without -fuzz) runs every f.Add seed plus the files
// under testdata/fuzz, so a decoder regression on a past input fails CI
// even when nobody is fuzzing.

// seedRequests are valid encodings fed to the fuzzer as structure hints.
func seedRequests() [][]byte {
	var out [][]byte
	for _, r := range []Request{
		{Op: OpOpen, Lease: int64(10e9)},
		{Op: OpKeepAlive, SID: 3, Lease: int64(1e9)},
		{Op: OpClose, SID: 3},
		{Op: OpAcquire, SID: 3, Wait: -1, Excl: true, Name: "cache/config"},
		{Op: OpAcquire, SID: 3, Wait: int64(5e6), Name: "a"},
		{Op: OpRelease, SID: 3, Excl: true, Name: "cache/config"},
		{Op: OpStats},
		{Op: OpClusterInfo},
		{Op: OpAcquire, Name: strings.Repeat("n", MaxName)},
	} {
		frame, err := AppendRequestFrame(nil, &r)
		if err != nil {
			panic(err)
		}
		out = append(out, frame[4:]) // payload without length prefix
	}
	return out
}

// FuzzDecodeRequest: malformed request payloads must error — never panic,
// never over-allocate — and every accepted payload must re-encode to
// exactly the same bytes (the encoding is canonical).
func FuzzDecodeRequest(f *testing.F) {
	for _, s := range seedRequests() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(bytes.Repeat([]byte{0x41}, reqHeader))
	f.Fuzz(func(t *testing.T, p []byte) {
		req, err := DecodeRequest(p)
		if err != nil {
			return
		}
		if len(req.Name) > MaxName {
			t.Fatalf("decoded name of %d bytes", len(req.Name))
		}
		frame, err := AppendRequestFrame(nil, &req)
		if err != nil {
			t.Fatalf("accepted request failed to re-encode: %v", err)
		}
		if !bytes.Equal(frame[4:], p) {
			t.Fatalf("non-canonical encoding:\n in: %x\nout: %x", p, frame[4:])
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for the response side.
func FuzzDecodeResponse(f *testing.F) {
	notOwner, err := AppendMembership(nil, &Membership{Epoch: 2, Members: []string{"127.0.0.1:7600", "127.0.0.1:7601", "127.0.0.1:7602"}})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range []Response{
		{Status: StatusOK, SID: 9},
		{Status: StatusTimeout},
		{Status: StatusOK, Payload: []byte(`{"shared_grants":1}`)},
		{Status: StatusNotOwner, Payload: notOwner},
	} {
		frame, err := AppendResponseFrame(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, respHeader))
	f.Fuzz(func(t *testing.T, p []byte) {
		resp, err := DecodeResponse(p)
		if err != nil {
			return
		}
		if len(resp.Payload) > MaxFrame {
			t.Fatalf("decoded payload of %d bytes", len(resp.Payload))
		}
		frame, err := AppendResponseFrame(nil, &resp)
		if err != nil {
			t.Fatalf("accepted response failed to re-encode: %v", err)
		}
		if !bytes.Equal(frame[4:], p) {
			t.Fatalf("non-canonical encoding:\n in: %x\nout: %x", p, frame[4:])
		}
	})
}

// FuzzDecodeMembership extends the decode∘encode identity to the cluster
// membership payload carried by StatusNotOwner and OpClusterInfo replies.
func FuzzDecodeMembership(f *testing.F) {
	for _, m := range []Membership{
		{Epoch: 1, Members: []string{"127.0.0.1:7600"}},
		{Epoch: 2, Members: []string{"127.0.0.1:7600", "127.0.0.1:7601", "127.0.0.1:7602"}},
		{Epoch: 0},
		{Epoch: 1 << 40, Members: []string{strings.Repeat("a", MaxMemberAddr)}},
	} {
		p, err := AppendMembership(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x02}, 12))
	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := DecodeMembership(p)
		if err != nil {
			return
		}
		if len(m.Members) > MaxMembers {
			t.Fatalf("decoded %d members", len(m.Members))
		}
		out, err := AppendMembership(nil, &m)
		if err != nil {
			t.Fatalf("accepted membership failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, p) {
			t.Fatalf("non-canonical encoding:\n in: %x\nout: %x", p, out)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the framer: it must never
// panic and never hand back a payload larger than MaxFrame, no matter
// what length the header claims.
func FuzzReadFrame(f *testing.F) {
	frame, err := AppendRequestFrame(nil, &Request{Op: OpAcquire, SID: 1, Name: "k"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		var buf []byte
		r := bytes.NewReader(stream)
		for {
			p, err := ReadFrame(r, &buf)
			if err != nil {
				return
			}
			if len(p) == 0 || len(p) > MaxFrame {
				t.Fatalf("ReadFrame returned %d bytes", len(p))
			}
		}
	})
}
