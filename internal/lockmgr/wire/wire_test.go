package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpOpen, Lease: int64(5e9)},
		{Op: OpKeepAlive, SID: 42, Lease: int64(1e9)},
		{Op: OpClose, SID: 42},
		{Op: OpAcquire, SID: 7, Wait: -1, Excl: true, Name: "users/alice"},
		{Op: OpAcquire, SID: 7, Wait: 0, Name: ""},
		{Op: OpAcquire, SID: 7, Wait: int64(250e6), Name: strings.Repeat("k", MaxName)},
		{Op: OpRelease, SID: 7, Excl: false, Name: "users/alice"},
		{Op: OpStats},
		{Op: OpClusterInfo},
	}
	var buf []byte
	for i, req := range reqs {
		frame, err := AppendRequestFrame(buf[:0], &req)
		if err != nil {
			t.Fatalf("req %d: encode: %v", i, err)
		}
		var rbuf []byte
		p, err := ReadFrame(bytes.NewReader(frame), &rbuf)
		if err != nil {
			t.Fatalf("req %d: ReadFrame: %v", i, err)
		}
		got, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("req %d: decode: %v", i, err)
		}
		if got != req {
			t.Fatalf("req %d: round trip %+v -> %+v", i, req, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, SID: 99},
		{Status: StatusTimeout},
		{Status: StatusExpired},
		{Status: StatusNotHeld},
		{Status: StatusHeld},
		{Status: StatusErr},
		{Status: StatusOK, Payload: []byte(`{"grants":12}`)},
		{Status: StatusNotOwner, Payload: mustMembership(&Membership{
			Epoch:   3,
			Members: []string{"127.0.0.1:7600", "127.0.0.1:7601"},
		})},
	}
	for i, resp := range resps {
		frame, err := AppendResponseFrame(nil, &resp)
		if err != nil {
			t.Fatalf("resp %d: encode: %v", i, err)
		}
		var rbuf []byte
		p, err := ReadFrame(bytes.NewReader(frame), &rbuf)
		if err != nil {
			t.Fatalf("resp %d: ReadFrame: %v", i, err)
		}
		got, err := DecodeResponse(p)
		if err != nil {
			t.Fatalf("resp %d: decode: %v", i, err)
		}
		if got.Status != resp.Status || got.SID != resp.SID || !bytes.Equal(got.Payload, resp.Payload) {
			t.Fatalf("resp %d: round trip %+v -> %+v", i, resp, got)
		}
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := AppendRequestFrame(nil, &Request{Op: OpAcquire, Name: strings.Repeat("x", MaxName+1)}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized name: %v", err)
	}
	if _, err := AppendRequestFrame(nil, &Request{Op: 0}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero op: %v", err)
	}
	if _, err := AppendResponseFrame(nil, &Response{Status: 0}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero status: %v", err)
	}
	if _, err := AppendResponseFrame(nil, &Response{Status: StatusOK, Payload: make([]byte, MaxFrame)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized payload: %v", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	valid, err := AppendRequestFrame(nil, &Request{Op: OpAcquire, SID: 1, Name: "k"})
	if err != nil {
		t.Fatal(err)
	}
	payload := valid[4:]

	cases := []struct {
		name string
		p    []byte
	}{
		{"empty", nil},
		{"truncated header", payload[:reqHeader-1]},
		{"unknown op", append([]byte{0xff}, payload[1:]...)},
		{"bad excl byte", func() []byte {
			p := append([]byte(nil), payload...)
			p[25] = 2
			return p
		}()},
		{"name length beyond payload", func() []byte {
			p := append([]byte(nil), payload...)
			p[26], p[27] = 0x00, 0x09
			return p
		}()},
		{"name length over MaxName", func() []byte {
			p := append([]byte(nil), payload...)
			p[26], p[27] = 0xff, 0xff
			return p
		}()},
		{"trailing garbage", append(append([]byte(nil), payload...), 0)},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.p); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", tc.name, err)
		}
	}

	if _, err := DecodeResponse([]byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short response: %v", err)
	}
	if _, err := DecodeResponse([]byte{byte(StatusOK), 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge response payload claim: %v", err)
	}
}

func mustMembership(m *Membership) []byte {
	p, err := AppendMembership(nil, m)
	if err != nil {
		panic(err)
	}
	return p
}

func TestMembershipRoundTrip(t *testing.T) {
	members := make([]string, MaxMembers)
	for i := range members {
		members[i] = strings.Repeat("m", MaxMemberAddr)
	}
	cases := []Membership{
		{Epoch: 1, Members: []string{"127.0.0.1:7600"}},
		{Epoch: 9, Members: []string{"a:1", "b:2", "c:3"}},
		{Epoch: 0, Members: nil}, // legal on the wire: an emptied cluster
		{Epoch: 1 << 62, Members: members},
	}
	for i, m := range cases {
		p, err := AppendMembership(nil, &m)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := DecodeMembership(p)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Epoch != m.Epoch || len(got.Members) != len(m.Members) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, m, got)
		}
		for j := range m.Members {
			if got.Members[j] != m.Members[j] {
				t.Fatalf("case %d member %d: %q != %q", i, j, got.Members[j], m.Members[j])
			}
		}
	}
}

func TestMembershipRejects(t *testing.T) {
	if _, err := AppendMembership(nil, &Membership{Members: make([]string, MaxMembers+1)}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("too many members: %v", err)
	}
	if _, err := AppendMembership(nil, &Membership{Members: []string{""}}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty address: %v", err)
	}
	if _, err := AppendMembership(nil, &Membership{Members: []string{strings.Repeat("x", MaxMemberAddr+1)}}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized address: %v", err)
	}

	valid := mustMembership(&Membership{Epoch: 2, Members: []string{"n1:1", "n2:2"}})
	cases := []struct {
		name string
		p    []byte
	}{
		{"empty", nil},
		{"short header", valid[:9]},
		{"count beyond payload", func() []byte {
			p := append([]byte(nil), valid...)
			p[8], p[9] = 0x00, 0x07
			return p
		}()},
		{"count over MaxMembers", func() []byte {
			p := append([]byte(nil), valid...)
			p[8], p[9] = 0xff, 0xff
			return p
		}()},
		{"zero-length address", func() []byte {
			p := append([]byte(nil), valid...)
			p[10], p[11] = 0, 0
			return p
		}()},
		{"truncated address", valid[:len(valid)-1]},
		{"trailing garbage", append(append([]byte(nil), valid...), 0)},
	}
	for _, tc := range cases {
		if _, err := DecodeMembership(tc.p); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", tc.name, err)
		}
	}
}

func TestReadFrameGuards(t *testing.T) {
	var buf []byte
	// A frame claiming more than MaxFrame must error before allocating.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(huge), &buf); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized claim: %v", err)
	}
	if cap(buf) > 0 {
		t.Fatalf("oversized claim allocated %d bytes", cap(buf))
	}
	// Zero-length frames are malformed (nothing legal is empty).
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), &buf); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-length frame: %v", err)
	}
	// A truncated body is an io error, not a hang or panic.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 9, 1, 2}), &buf); err == nil {
		t.Fatal("truncated body decoded")
	}
	// The buffer is reused across calls: same backing array, no growth.
	frame, err := AppendRequestFrame(nil, &Request{Op: OpStats})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame), &buf); err != nil {
		t.Fatal(err)
	}
	c := cap(buf)
	for i := 0; i < 4; i++ {
		if _, err := ReadFrame(bytes.NewReader(frame), &buf); err != nil {
			t.Fatal(err)
		}
	}
	if cap(buf) != c {
		t.Fatalf("buffer regrown: %d -> %d", c, cap(buf))
	}
	// EOF propagates untouched so callers can tell clean close from junk.
	if _, err := ReadFrame(bytes.NewReader(nil), &buf); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}
