package lockmgr

import (
	"sync/atomic"
	"time"

	"fairrw/internal/stats"
)

// counters are the manager's obs-style monotonic counters plus the live
// waiter gauge. All fields are updated with atomics on the request paths;
// Stats() reads them without stopping the world, so a snapshot is
// internally consistent only per-field (the convention internal/obs uses
// for its run counters).
type counters struct {
	sharedGrants   atomic.Uint64
	exclGrants     atomic.Uint64
	releases       atomic.Uint64
	timeouts       atomic.Uint64
	keepalives     atomic.Uint64
	sessionsOpened atomic.Uint64
	sessionsClosed atomic.Uint64
	expirations    atomic.Uint64
	revokedHolds   atomic.Uint64
	entriesCreated atomic.Uint64
	entriesGCed    atomic.Uint64
	cohortGrants   atomic.Uint64 // out-of-FIFO cohort grants across all entries
	waiting        atomic.Int64
}

// Snapshot is one consistent-enough view of the manager's counters and
// wait-latency distribution, shaped for JSON dumping (cmd/lockd -metrics,
// the wire Stats op).
type Snapshot struct {
	SharedGrants     uint64 `json:"shared_grants"`
	ExclGrants       uint64 `json:"excl_grants"`
	Releases         uint64 `json:"releases"`
	Timeouts         uint64 `json:"timeouts"`
	Keepalives       uint64 `json:"keepalives"`
	SessionsOpened   uint64 `json:"sessions_opened"`
	SessionsClosed   uint64 `json:"sessions_closed"`
	LeaseExpirations uint64 `json:"lease_expirations"`
	RevokedHolds     uint64 `json:"revoked_holds"`
	EntriesCreated   uint64 `json:"entries_created"`
	EntriesGCed      uint64 `json:"entries_gced"`
	CohortGrants     uint64 `json:"cohort_grants"`
	CohortBatch      int32  `json:"cohort_batch"`

	Entries  int   `json:"entries"`
	Sessions int   `json:"sessions"`
	Waiting  int64 `json:"waiting"`

	WaitCount     uint64  `json:"wait_count"`
	WaitMeanUS    float64 `json:"wait_mean_us"`
	WaitP50US     float64 `json:"wait_p50_us"`
	WaitP99US     float64 `json:"wait_p99_us"`
	WaitMaxUS     float64 `json:"wait_max_us"`
	WaitTotalSecs float64 `json:"wait_total_secs"`

	HoldCount  uint64  `json:"hold_count"`
	HoldMeanUS float64 `json:"hold_mean_us"`
	HoldP50US  float64 `json:"hold_p50_us"`
	HoldP99US  float64 `json:"hold_p99_us"`
	HoldMaxUS  float64 `json:"hold_max_us"`
}

// observeZeroWaits records n uncontended grants (zero queue wait) from
// one batch under a single histogram-lock hold.
func (m *Manager) observeZeroWaits(n uint64) {
	m.waitMu.Lock()
	m.wait.AddN(0, n)
	m.waitMu.Unlock()
}

// observeWait records one grant's queue wait.
func (m *Manager) observeWait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.waitMu.Lock()
	m.wait.Add(uint64(d))
	m.waitMu.Unlock()
}

// observeHold records one release's hold time (grant to release).
func (m *Manager) observeHold(ns int64) {
	if ns < 0 {
		ns = 0
	}
	m.holdMu.Lock()
	m.holdH.Add(uint64(ns))
	m.holdMu.Unlock()
}

// observeHolds records a batch's hold times under one lock hold.
func (m *Manager) observeHolds(ns []int64) {
	m.holdMu.Lock()
	for _, d := range ns {
		if d < 0 {
			d = 0
		}
		m.holdH.Add(uint64(d))
	}
	m.holdMu.Unlock()
}

// Stats returns a snapshot of the manager's counters, table sizes, and
// wait-latency percentiles (p50/p99 via internal/stats histograms).
func (m *Manager) Stats() Snapshot {
	s := Snapshot{
		SharedGrants:     m.c.sharedGrants.Load(),
		ExclGrants:       m.c.exclGrants.Load(),
		Releases:         m.c.releases.Load(),
		Timeouts:         m.c.timeouts.Load(),
		Keepalives:       m.c.keepalives.Load(),
		SessionsOpened:   m.c.sessionsOpened.Load(),
		SessionsClosed:   m.c.sessionsClosed.Load(),
		LeaseExpirations: m.c.expirations.Load(),
		RevokedHolds:     m.c.revokedHolds.Load(),
		EntriesCreated:   m.c.entriesCreated.Load(),
		EntriesGCed:      m.c.entriesGCed.Load(),
		CohortGrants:     m.c.cohortGrants.Load(),
		CohortBatch:      m.cfg.CohortBatch,
		Entries:          m.EntryCount(),
		Sessions:         m.SessionCount(),
		Waiting:          m.c.waiting.Load(),
	}
	m.waitMu.Lock()
	s.WaitCount = m.wait.Count()
	s.WaitMeanUS = m.wait.Mean() / 1e3
	s.WaitP50US = m.wait.Percentile(50) / 1e3
	s.WaitP99US = m.wait.Percentile(99) / 1e3
	s.WaitMaxUS = float64(m.wait.Max()) / 1e3
	s.WaitTotalSecs = m.wait.Mean() * float64(m.wait.Count()) / 1e9
	m.waitMu.Unlock()
	m.holdMu.Lock()
	s.HoldCount = m.holdH.Count()
	s.HoldMeanUS = m.holdH.Mean() / 1e3
	s.HoldP50US = m.holdH.Percentile(50) / 1e3
	s.HoldP99US = m.holdH.Percentile(99) / 1e3
	s.HoldMaxUS = float64(m.holdH.Max()) / 1e3
	m.holdMu.Unlock()
	return s
}

// WaitHistogram returns a copy of the grant-wait histogram (ns samples)
// for exposition (the admin plane's Prometheus histogram).
func (m *Manager) WaitHistogram() stats.Histogram {
	m.waitMu.Lock()
	h := m.wait
	m.waitMu.Unlock()
	return h
}

// HoldHistogram returns a copy of the hold-time histogram (ns samples).
func (m *Manager) HoldHistogram() stats.Histogram {
	m.holdMu.Lock()
	h := m.holdH
	m.holdMu.Unlock()
	return h
}
