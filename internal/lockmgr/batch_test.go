package lockmgr

import (
	"testing"
	"time"
)

// TestExecBatchBasics drives a mixed batch end to end: open, grants in
// both modes, dup-excl rejection, releases, over-release, close.
func TestExecBatchBasics(t *testing.T) {
	m := New(Config{Shards: 4})
	defer m.Close()
	sc := m.NewBatchScratch()

	open := []BatchOp{{Kind: BatchOpen, Lease: int64(time.Second)}}
	m.ExecBatch(open, sc)
	if open[0].Err != nil || open[0].OutSID == 0 {
		t.Fatalf("batch open: %+v", open[0])
	}
	sid := open[0].OutSID

	ops := []BatchOp{
		{Kind: BatchAcquire, SID: sid, Name: []byte("a")},              // shared grant
		{Kind: BatchAcquire, SID: sid, Name: []byte("a")},              // second shared
		{Kind: BatchAcquire, SID: sid, Name: []byte("b"), Excl: true},  // excl grant
		{Kind: BatchAcquire, SID: sid, Name: []byte("b"), Excl: true},  // dup excl
		{Kind: BatchRelease, SID: sid, Name: []byte("a")},              // release shared
		{Kind: BatchRelease, SID: sid, Name: []byte("a")},              // release shared
		{Kind: BatchRelease, SID: sid, Name: []byte("a")},              // over-release
		{Kind: BatchKeepAlive, SID: sid, Lease: int64(time.Second)},
		{Kind: BatchRelease, SID: sid, Name: []byte("b"), Excl: true},
		{Kind: BatchCloseSession, SID: sid},
		{Kind: BatchAcquire, SID: sid, Name: []byte("c")}, // after close
	}
	m.ExecBatch(ops, sc)
	want := []error{nil, nil, nil, ErrHeld, nil, nil, ErrNotHeld, nil, nil, nil, ErrExpired}
	for i, w := range want {
		if ops[i].Err != w {
			t.Fatalf("op %d: got %v, want %v", i, ops[i].Err, w)
		}
	}
	snap := m.Stats()
	if snap.SharedGrants != 2 || snap.ExclGrants != 1 || snap.Releases != 3 {
		t.Fatalf("counters: %+v", snap)
	}
	if snap.WaitCount != 3 {
		t.Fatalf("wait histogram got %d grants, want 3", snap.WaitCount)
	}
}

// TestExecBatchWouldBlockAndDeferral: a contended acquire with Wait != 0
// returns ErrWouldBlock with no side effects, and every later op with
// the same Tag is deferred — while other tags proceed.
func TestExecBatchWouldBlockAndDeferral(t *testing.T) {
	m := New(Config{Shards: 4})
	defer m.Close()
	sc := m.NewBatchScratch()

	holder, _ := m.Open(time.Second)
	other, _ := m.Open(time.Second)
	if err := m.Acquire(holder, "k", true, 0); err != nil {
		t.Fatal(err)
	}

	ops := []BatchOp{
		{Kind: BatchAcquire, Tag: 1, SID: other, Name: []byte("k"), Excl: true, Wait: -1}, // parks
		{Kind: BatchAcquire, Tag: 1, SID: other, Name: []byte("free")},                    // deferred
		{Kind: BatchRelease, Tag: 1, SID: other, Name: []byte("free")},                    // deferred
		{Kind: BatchAcquire, Tag: 2, SID: other, Name: []byte("free")},                    // proceeds
		{Kind: BatchAcquire, Tag: 3, SID: other, Name: []byte("k"), Wait: 0},              // try: timeout
	}
	m.ExecBatch(ops, sc)
	want := []error{ErrWouldBlock, ErrDeferred, ErrDeferred, nil, ErrTimeout}
	for i, w := range want {
		if ops[i].Err != w {
			t.Fatalf("op %d: got %v, want %v", i, ops[i].Err, w)
		}
	}

	// The would-block acquire left no trace: the holder can release and
	// the other session can then take the lock exclusively on a try.
	if err := m.Release(holder, "k", true); err != nil {
		t.Fatal(err)
	}
	retry := []BatchOp{{Kind: BatchAcquire, SID: other, Name: []byte("k"), Excl: true}}
	m.ExecBatch(retry, sc)
	if retry[0].Err != nil {
		t.Fatalf("retry after release: %v", retry[0].Err)
	}
	if got := m.Stats().Timeouts; got != 1 {
		t.Fatalf("timeouts = %d, want 1 (would-block must not count)", got)
	}
}

// TestExecBatchRefcounts: entries refed by failed batch acquires are
// unrefed again, so the sweeper can collect them.
func TestExecBatchRefcounts(t *testing.T) {
	m := New(Config{Shards: 4, SweepInterval: 5 * time.Millisecond, IdleTTL: time.Millisecond})
	defer m.Close()
	sc := m.NewBatchScratch()

	holder, _ := m.Open(time.Minute)
	if err := m.Acquire(holder, "held", true, 0); err != nil {
		t.Fatal(err)
	}
	ops := []BatchOp{
		{Kind: BatchAcquire, SID: holder, Name: []byte("idle1")},
		{Kind: BatchRelease, SID: holder, Name: []byte("idle1")},
		{Kind: BatchAcquire, SID: 999999, Name: []byte("idle2")}, // expired session
	}
	m.ExecBatch(ops, sc)
	if ops[2].Err != ErrExpired {
		t.Fatalf("expired-session acquire: %v", ops[2].Err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.EntryCount() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("idle entries never collected: %d left", m.EntryCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExecBatchSteadyStateAllocs: re-acquiring existing entries through
// the batch path must not allocate (names alias the caller's buffer,
// holds recycle, scratch is reused).
func TestExecBatchSteadyStateAllocs(t *testing.T) {
	m := New(Config{Shards: 4})
	defer m.Close()
	sc := m.NewBatchScratch()
	sid, _ := m.Open(time.Minute)

	name := []byte("steady")
	ops := make([]BatchOp, 2)
	// Prime: create the entry and the hold record once.
	ops[0] = BatchOp{Kind: BatchAcquire, SID: sid, Name: name}
	ops[1] = BatchOp{Kind: BatchRelease, SID: sid, Name: name}
	m.ExecBatch(ops, sc)

	allocs := testing.AllocsPerRun(200, func() {
		ops[0] = BatchOp{Kind: BatchAcquire, SID: sid, Name: name}
		ops[1] = BatchOp{Kind: BatchRelease, SID: sid, Name: name}
		m.ExecBatch(ops, sc)
		if ops[0].Err != nil || ops[1].Err != nil {
			t.Fatal(ops[0].Err, ops[1].Err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ExecBatch steady state allocs = %.1f, want 0", allocs)
	}
}

// BenchmarkExecBatchPair measures the batched acquire+release pair cost
// (compare BenchmarkManagerAcquireRelease in the server package).
func BenchmarkExecBatchPair(b *testing.B) {
	m := New(Config{})
	defer m.Close()
	sc := m.NewBatchScratch()
	sid, _ := m.Open(time.Minute)
	name := []byte("bench-key")
	ops := make([]BatchOp, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 8 {
		for j := 0; j < 8; j++ {
			ops[2*j] = BatchOp{Kind: BatchAcquire, SID: sid, Name: name}
			ops[2*j+1] = BatchOp{Kind: BatchRelease, SID: sid, Name: name}
		}
		m.ExecBatch(ops, sc)
	}
}
