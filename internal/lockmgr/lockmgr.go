// Package lockmgr is a software Lock Reservation Table: a named fair
// reader-writer lock service built on fairlock.RWMutex.
//
// The paper's LRT (§3.3–3.5) is a table-managing agent: it queues
// requesters for named locks in arrival order and guarantees forward
// progress when a holder disappears, spilling reservations to memory and
// recovering them on overflow. lockmgr mirrors that structure in
// software:
//
//   - named locks live in a table striped across power-of-two shards
//     (cache-padded), each entry wrapping a fairlock.RWMutex, created on
//     demand and garbage-collected after sitting idle;
//   - every acquisition belongs to a session with a lease deadline — the
//     software analogue of the LRT's reservation: a client that crashes
//     or stalls past its lease has its holds revoked and its queued
//     waiters cancelled (fairlock.LockCancel/RLockCancel), so the lock
//     always makes forward progress, and waiters behind the dead holder
//     are granted in unchanged arrival order;
//   - keepalives extend the lease, exactly as a live LCU keeps its
//     reservation current.
//
// The wire, client, and server subpackages expose the manager over a
// length-prefixed binary TCP protocol (cmd/lockd, cmd/lockload).
package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fairrw/fairlock"
	"fairrw/internal/lockmgr/introspect"
	"fairrw/internal/stats"
)

// Errors returned by Manager operations. The wire layer maps each to a
// status code one-to-one.
var (
	ErrTimeout = errors.New("lockmgr: acquire timed out")
	ErrExpired = errors.New("lockmgr: session expired or unknown")
	ErrNotHeld = errors.New("lockmgr: lock not held by session")
	ErrHeld    = errors.New("lockmgr: session already holds this lock exclusively")
	ErrClosed  = errors.New("lockmgr: manager closed")
	ErrName    = errors.New("lockmgr: invalid lock name")
)

// MaxNameLen bounds lock names; the wire protocol enforces the same bound
// before a frame ever reaches the manager.
const MaxNameLen = 1024

// Config parameterizes a Manager. The zero value selects the defaults.
type Config struct {
	// Shards is the number of table stripes; rounded up to a power of
	// two. Default 16.
	Shards int
	// SweepInterval is the lease-reaper period: the upper bound on how
	// long past its deadline a dead session keeps its holds. Leases are
	// clamped to at least this, so reclamation always happens within
	// 2x the (effective) lease. Default 10ms.
	SweepInterval time.Duration
	// DefaultLease is used when a session opens with lease <= 0.
	// Default 10s.
	DefaultLease time.Duration
	// MaxLease caps requested leases. Default 1m.
	MaxLease time.Duration
	// IdleTTL is how long an entry with no holders and no waiters
	// survives before the sweeper deletes it. Default 1s.
	IdleTTL time.Duration
	// Recorder, when non-nil, receives grant-path flight events: the
	// resolution of every contended acquire (grant, timeout, lease
	// revocation, with measured wait) and session lease expirations.
	// Uncontended try-path grants are not recorded — they carry no
	// queue wait, which is the quantity the flight recorder attributes
	// — so the manager fast path pays only a nil check.
	Recorder *introspect.Recorder
	// SlowLock is the slow-acquire threshold: a grant whose queue wait
	// reaches it is reported to SlowLockFn (and recorded as EvSlow).
	// Zero disables; only contended acquires ever check it.
	SlowLock time.Duration
	// SlowLockFn receives slow acquires (cmd/lockd logs them as
	// structured one-liners). Called from the granted acquirer's
	// goroutine; must not block.
	SlowLockFn func(name string, sid uint64, excl bool, wait time.Duration)
	// CohortBatch, when > 0, enables cohort grant batching on every
	// entry's lock with bound B = CohortBatch: a release may hand the
	// lock to up to B waiters from the releaser's cohort before strict
	// FIFO resumes (fairlock.CohortConfig). Zero leaves admission
	// strictly FIFO.
	CohortBatch int32
	// CohortFunc maps the acquiring goroutine to a cohort id when
	// CohortBatch is set. nil selects fairlock's default (the BRAVO
	// slot hash, i.e. a P-local shard); a server can map it to its
	// worker index, and a future distributed build to a node id.
	CohortFunc fairlock.CohortFunc
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	for c.Shards&(c.Shards-1) != 0 {
		c.Shards++
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 10 * time.Millisecond
	}
	if c.DefaultLease <= 0 {
		c.DefaultLease = 10 * time.Second
	}
	if c.MaxLease <= 0 {
		c.MaxLease = time.Minute
	}
	if c.IdleTTL <= 0 {
		c.IdleTTL = time.Second
	}
	return c
}

// entry is one named lock in the table. refs counts holds plus in-flight
// acquirers (guarded by the owning shard's mu); an entry whose refs hit
// zero is deleted by the sweeper once it has been idle for IdleTTL.
type entry struct {
	name   string
	lock   fairlock.RWMutex
	refs   int
	idleAt time.Time

	// Contention profile (Manager.HotLocks). acquires counts acquire
	// arrivals and is incremented at ref time, under the shard mutex the
	// ref already holds — the profile's hot-path cost on the uncontended
	// grant path is literally one increment on an already-owned line.
	// The wait fields are touched only by contended acquires (which are
	// already paying for timers and queueing), so they are atomics. The
	// table's memory is the live entry table's: a profile lives exactly
	// as long as its lock entry and is GC'd with it.
	acquires  uint64
	waitNS    atomic.Int64
	maxWaitNS atomic.Int64
}

// shard is one stripe of the lock table, padded so that neighbouring
// shards' mutexes never share a cache line.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	_       [112]byte
}

// hold records what one session holds on one entry. Holds are keyed by
// lock name in the session (O(1) release lookup) and recycled through a
// one-element free list, so the steady acquire/release cycle does not
// allocate.
type hold struct {
	e       *entry
	shared  int
	excl    bool
	grantNS int64 // UnixNano of the most recent grant, for hold-time stats
}

// Session is one client's registration: a lease deadline, a revocation
// channel that cancellable acquires select on, and the set of holds to
// release when the session dies.
type Session struct {
	id     uint64
	cancel chan struct{}

	mu       sync.Mutex
	deadline time.Time
	closed   bool
	holds    map[string]*hold
	free     *hold
}

// Manager is the sharded, lease-based lock service. Create one with New;
// all methods are safe for concurrent use.
type Manager struct {
	cfg  Config
	mask uint32

	shards []shard

	smu      sync.RWMutex
	sessions map[uint64]*Session
	nextSID  uint64

	done   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	c      counters
	waitMu sync.Mutex
	wait   stats.Histogram // grant wait, nanoseconds
	holdMu sync.Mutex
	holdH  stats.Histogram // hold time (grant to release), nanoseconds
}

// New creates a Manager and starts its lease reaper / entry sweeper.
// Callers must Close it to stop the background goroutine.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		mask:     uint32(cfg.Shards - 1),
		shards:   make([]shard, cfg.Shards),
		sessions: make(map[uint64]*Session),
		done:     make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i].entries = make(map[string]*entry)
	}
	m.wg.Add(1)
	go m.reaper()
	return m
}

// Close expires every session (releasing holds, cancelling waiters) and
// stops the background sweeper. Blocked acquires return ErrExpired.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	m.smu.RLock()
	victims := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		victims = append(victims, s)
	}
	m.smu.RUnlock()
	for _, s := range victims {
		m.expireSession(s, false)
	}
	close(m.done)
	m.wg.Wait()
}

// MaxLease reports the effective cap on granted leases — every lease
// this manager hands out expires at most MaxLease past its last
// renewal. The cluster layer validates its failover window against it.
func (m *Manager) MaxLease() time.Duration { return m.cfg.MaxLease }

// RevokeAllSessions expires every live session — holds released, queued
// waiters cancelled with ErrExpired — without closing the manager. It
// returns the number of sessions revoked. This is the cluster layer's
// fencing primitive: an isolated node revokes everything it granted so
// no lease of its outlives the quarantine the survivors wait out.
func (m *Manager) RevokeAllSessions() int {
	m.smu.RLock()
	victims := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		victims = append(victims, s)
	}
	m.smu.RUnlock()
	for _, s := range victims {
		m.expireSession(s, true)
	}
	return len(victims)
}

// fnv32 is FNV-1a, the shard hash for lock names.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// ref returns name's entry (h32 is fnv32(name), computed once by the
// caller), creating it on demand, with one reference taken for the
// caller. Acquire refs are also acquire arrivals, so the contention
// profile counts here, under the shard mutex already held.
func (m *Manager) ref(name string, h32 uint32, acquire bool) *entry {
	sh := &m.shards[h32&m.mask]
	sh.mu.Lock()
	e := sh.entries[name]
	if e == nil {
		e = m.newEntry(name)
		sh.entries[name] = e
		m.c.entriesCreated.Add(1)
	}
	e.refs++
	if acquire {
		e.acquires++
	}
	sh.mu.Unlock()
	return e
}

// newEntry builds a table entry, applying the manager's cohort policy to
// its lock: every entry shares the manager's cohort-grant sink so
// batching activity aggregates across the whole table without polling
// individual locks.
func (m *Manager) newEntry(name string) *entry {
	e := &entry{name: name}
	if m.cfg.CohortBatch > 0 {
		e.lock.SetCohort(fairlock.CohortConfig{
			Batch:  m.cfg.CohortBatch,
			Fn:     m.cfg.CohortFunc,
			Grants: &m.c.cohortGrants,
		})
	}
	return e
}

// CohortBatch returns the cohort bound B entries are configured with
// (0 = strict FIFO).
func (m *Manager) CohortBatch() int32 { return m.cfg.CohortBatch }

// deref drops one reference, stamping idleness with the caller's clock
// reading. The entry stays in the table until the sweeper finds it idle
// past IdleTTL, so a hot name is not reallocated (with its 2 KiB reader
// table) on every acquire/release cycle.
func (m *Manager) deref(e *entry, now time.Time) {
	sh := &m.shards[fnv32(e.name)&m.mask]
	sh.mu.Lock()
	e.refs--
	if e.refs == 0 {
		e.idleAt = now
	}
	sh.mu.Unlock()
}

// clampLease applies the configured lease bounds; the floor is the sweep
// interval so expiry is always detected within 2x the effective lease.
func (m *Manager) clampLease(lease time.Duration) time.Duration {
	if lease <= 0 {
		lease = m.cfg.DefaultLease
	}
	if lease < m.cfg.SweepInterval {
		lease = m.cfg.SweepInterval
	}
	if lease > m.cfg.MaxLease {
		lease = m.cfg.MaxLease
	}
	return lease
}

// Open registers a new session with the given lease and returns its id.
func (m *Manager) Open(lease time.Duration) (uint64, error) {
	if m.closed.Load() {
		return 0, ErrClosed
	}
	s := &Session{
		cancel:   make(chan struct{}),
		holds:    make(map[string]*hold),
		deadline: time.Now().Add(m.clampLease(lease)),
	}
	m.smu.Lock()
	m.nextSID++
	s.id = m.nextSID
	m.sessions[s.id] = s
	m.smu.Unlock()
	m.c.sessionsOpened.Add(1)
	return s.id, nil
}

// session resolves sid, treating unknown ids as expired (the reaper
// deletes expired sessions, so a stale id and an expired one are
// indistinguishable — exactly like a lapsed LRT reservation).
func (m *Manager) session(sid uint64) (*Session, error) {
	m.smu.RLock()
	s := m.sessions[sid]
	m.smu.RUnlock()
	if s == nil {
		return nil, ErrExpired
	}
	return s, nil
}

// KeepAlive extends sid's lease to now+lease (clamped). A session whose
// lease already lapsed is expired immediately and ErrExpired returned:
// keepalive cannot resurrect a reservation the table already broke.
func (m *Manager) KeepAlive(sid uint64, lease time.Duration) error {
	s, err := m.session(sid)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrExpired
	}
	now := time.Now()
	if now.After(s.deadline) {
		s.mu.Unlock()
		m.expireSession(s, true)
		return ErrExpired
	}
	s.deadline = now.Add(m.clampLease(lease))
	s.mu.Unlock()
	m.c.keepalives.Add(1)
	return nil
}

// CloseSession gracefully ends a session: every hold is released, every
// queued waiter cancelled, in one step.
func (m *Manager) CloseSession(sid uint64) error {
	s, err := m.session(sid)
	if err != nil {
		return err
	}
	m.expireSession(s, false)
	return nil
}

// expireSession revokes a session: marks it closed, cancels its queued
// waiters via the revocation channel, releases all holds (unblocking
// FIFO-ordered waiters on each lock), and deletes it from the table. It
// is idempotent; expired says whether this was a lease expiry (reaper,
// lapsed keepalive) or a graceful close.
func (m *Manager) expireSession(s *Session, expired bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	holds := s.holds
	s.holds = nil
	s.mu.Unlock()

	close(s.cancel)
	now := time.Now()
	for _, h := range holds {
		if h.excl {
			h.e.lock.Unlock()
			m.c.revokedHolds.Add(1)
			m.deref(h.e, now)
		}
		for i := 0; i < h.shared; i++ {
			h.e.lock.RUnlock()
			m.c.revokedHolds.Add(1)
			m.deref(h.e, now)
		}
	}
	m.smu.Lock()
	delete(m.sessions, s.id)
	m.smu.Unlock()
	if expired {
		m.c.expirations.Add(1)
		m.cfg.Recorder.Record(uint32(s.id), introspect.Event{
			Kind: introspect.EvExpire, SID: s.id, Wait: int64(len(holds))})
	} else {
		m.c.sessionsClosed.Add(1)
	}
}

// Acquire takes name for sid in shared or exclusive mode.
//
//	wait == 0  try: fail with ErrTimeout unless immediately available
//	wait  > 0  timed: wait in FIFO order up to wait (capped at the
//	           remaining lease), ErrTimeout on expiry
//	wait  < 0  wait until granted or the session's lease expires
//
// All three map one-to-one onto fairlock's TryLock/TryLockFor/LockCancel
// family, so service-side admission order is exactly the lock's.
func (m *Manager) Acquire(sid uint64, name string, excl bool, wait time.Duration) error {
	if name == "" || len(name) > MaxNameLen {
		return ErrName
	}
	s, err := m.session(sid)
	if err != nil {
		return err
	}
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrExpired
	}
	remain := s.deadline.Sub(now)
	if remain <= 0 {
		s.mu.Unlock()
		m.expireSession(s, true)
		return ErrExpired
	}
	if excl {
		if h := s.holds[name]; h != nil && h.excl {
			// Exclusive re-acquire can only deadlock against itself;
			// reject it before it parks.
			s.mu.Unlock()
			return ErrHeld
		}
	}
	s.mu.Unlock()

	h32 := fnv32(name)
	e := m.ref(name, h32, true)
	m.c.waiting.Add(1)
	// Every acquire probes the lock-free try path first; uncontended
	// grants record a zero wait without touching the clock again, and only
	// acquires that actually have to queue pay for timestamps and the
	// timer machinery.
	var ok bool
	if excl {
		ok = e.lock.TryLock()
	} else {
		ok = e.lock.TryRLock()
	}
	waited := time.Duration(0)
	grantNS := now.UnixNano()
	if !ok && wait != 0 {
		t0 := time.Now()
		if wait > 0 {
			if wait > remain {
				wait = remain
			}
			if excl {
				ok = e.lock.TryLockFor(wait)
			} else {
				ok = e.lock.TryRLockFor(wait)
			}
		} else {
			if excl {
				ok = e.lock.LockCancel(s.cancel)
			} else {
				ok = e.lock.RLockCancel(s.cancel)
			}
		}
		waited = time.Since(t0)
		grantNS = t0.Add(waited).UnixNano()
	}
	m.c.waiting.Add(-1)
	if !ok {
		m.deref(e, time.Now())
		if wait < 0 {
			// Only revocation cancels an unbounded wait.
			m.cfg.Recorder.Record(h32, introspect.Event{
				Kind: introspect.EvRevoke, SID: sid, Hash: h32, Wait: int64(waited)})
			return ErrExpired
		}
		m.c.timeouts.Add(1)
		m.cfg.Recorder.Record(h32, introspect.Event{
			Kind: introspect.EvTimeout, SID: sid, Hash: h32, Wait: int64(waited)})
		return ErrTimeout
	}
	m.observeWait(waited)
	if waited > 0 {
		// Contended grant: attribute the wait to the lock (hot-lock
		// table), the flight recorder, and — past the threshold — the
		// slow-acquire log. The try path above never reaches this.
		e.waitNS.Add(int64(waited))
		atomicMax(&e.maxWaitNS, int64(waited))
		m.cfg.Recorder.Record(h32, introspect.Event{
			Kind: introspect.EvGrant, SID: sid, Hash: h32, Wait: int64(waited)})
		if t := m.cfg.SlowLock; t > 0 && waited >= t {
			m.cfg.Recorder.Record(h32, introspect.Event{
				Kind: introspect.EvSlow, SID: sid, Hash: h32, Wait: int64(waited)})
			if fn := m.cfg.SlowLockFn; fn != nil {
				fn(name, sid, excl, waited)
			}
		}
	}

	s.mu.Lock()
	if s.closed || m.closed.Load() {
		// Granted after revocation (the grant/cancel race, or a timed
		// acquire that outlived the lease): hand the lock straight back.
		// The manager-wide flag closes the Close-in-progress window:
		// revoking one session's holds can grant another session's
		// parked waiter before Close reaches that session, and Close
		// promises blocked acquires a definitive ErrExpired, not a
		// grant that is about to be revoked.
		s.mu.Unlock()
		if excl {
			e.lock.Unlock()
		} else {
			e.lock.RUnlock()
		}
		m.deref(e, time.Now())
		return ErrExpired
	}
	h := s.holds[name]
	if h == nil {
		if h = s.free; h != nil {
			s.free = nil
			*h = hold{e: e}
		} else {
			h = &hold{e: e}
		}
		s.holds[name] = h
	}
	if excl {
		h.excl = true
	} else {
		h.shared++
	}
	h.grantNS = grantNS
	s.mu.Unlock()
	if excl {
		m.c.exclGrants.Add(1)
	} else {
		m.c.sharedGrants.Add(1)
	}
	return nil
}

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Release drops one shared or the exclusive hold of sid on name. Releases
// from expired or closed sessions are rejected with ErrExpired — the
// table already revoked (or will revoke) those holds itself, and a late
// release must not unlock a grant that now belongs to someone else.
func (m *Manager) Release(sid uint64, name string, excl bool) error {
	s, err := m.session(sid)
	if err != nil {
		return err
	}
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrExpired
	}
	if now.After(s.deadline) {
		s.mu.Unlock()
		m.expireSession(s, true)
		return ErrExpired
	}
	h := s.holds[name]
	if h == nil || (excl && !h.excl) || (!excl && h.shared == 0) {
		s.mu.Unlock()
		return ErrNotHeld
	}
	e := h.e
	if excl {
		h.excl = false
	} else {
		h.shared--
	}
	held := now.UnixNano() - h.grantNS
	if !h.excl && h.shared == 0 {
		delete(s.holds, name)
		s.free = h
	}
	s.mu.Unlock()
	if excl {
		e.lock.Unlock()
	} else {
		e.lock.RUnlock()
	}
	m.deref(e, now)
	m.c.releases.Add(1)
	m.observeHold(held)
	return nil
}

// reaper periodically expires lapsed sessions and deletes idle entries.
func (m *Manager) reaper() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-t.C:
		}
		m.sweep(time.Now())
	}
}

// sweep runs one reaper pass at the given instant.
func (m *Manager) sweep(now time.Time) {
	var victims []*Session
	m.smu.RLock()
	for _, s := range m.sessions {
		s.mu.Lock()
		if !s.closed && now.After(s.deadline) {
			victims = append(victims, s)
		}
		s.mu.Unlock()
	}
	m.smu.RUnlock()
	for _, s := range victims {
		m.expireSession(s, true)
	}

	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for name, e := range sh.entries {
			if e.refs == 0 && now.Sub(e.idleAt) >= m.cfg.IdleTTL {
				delete(sh.entries, name)
				m.c.entriesGCed.Add(1)
			}
		}
		sh.mu.Unlock()
	}
}

// QueueLen reports how many waiters are queued on name right now (0 for
// an absent entry). Diagnostics only.
func (m *Manager) QueueLen(name string) int {
	sh := &m.shards[fnv32(name)&m.mask]
	sh.mu.Lock()
	e := sh.entries[name]
	sh.mu.Unlock()
	if e == nil {
		return 0
	}
	return e.lock.QueueLen()
}

// EntryCount returns the number of entries currently in the table,
// including idle ones the sweeper has not collected yet.
func (m *Manager) EntryCount() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// SessionCount returns the number of live sessions.
func (m *Manager) SessionCount() int {
	m.smu.RLock()
	defer m.smu.RUnlock()
	return len(m.sessions)
}
