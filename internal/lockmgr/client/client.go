// Package client is the synchronous Go client for lockd's wire protocol.
// A Conn issues one request at a time over one TCP connection and reuses
// its buffers, so the steady-state cost of an operation is one write, one
// read, and zero allocations. Acquire/release traffic can additionally be
// pipelined (QueueAcquire/QueueRelease/Flush): several requests go out in
// one write and the server coalesces the responses into one segment,
// which matters when the syscall, not the lock, is the bottleneck. A Conn
// is not safe for concurrent use: give each goroutine its own (sessions
// are independent of connections, so a keepalive for a session blocked on
// another Conn can ride any Conn).
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/wire"
)

// ErrClientClosed is returned by every operation on a closed Conn,
// including Flush of requests that were queued before Close. It is
// deliberately distinct from the transport's write-on-closed-socket
// error: callers racing a shutdown path against an in-flight pipeline
// can test for it with errors.Is instead of parsing net.OpError.
var ErrClientClosed = errors.New("lockd client: connection closed")

// Cluster errors. ErrNotOwner means the node addressed does not own the
// name under its current membership; the response carried that
// membership and Conn.Membership exposes it, so a router can re-aim.
// ErrNoQuorum means an operation ran out of routing attempts — every
// candidate owner was unreachable or denied ownership, which is what a
// client sees from outside a partitioned or mid-failover cluster.
var (
	ErrNotOwner = errors.New("lockd client: node does not own this lock name")
	ErrNoQuorum = errors.New("lockd client: no reachable owner for this lock name")
)

// Conn is one client connection to a lockd server.
type Conn struct {
	nc      net.Conn
	br      *bufio.Reader
	rbuf    []byte
	wbuf    []byte
	pending int
	closed  bool

	// Last membership seen in a NotOwner response or ClusterInfo reply.
	member    wire.Membership
	hasMember bool
}

// Dial connects to a lockd server at addr (host:port), retrying briefly
// with the default Dialer's capped jittered backoff. For a context
// deadline or custom retry policy use Dialer.Dial.
func Dial(addr string) (*Conn, error) {
	var d Dialer
	return d.Dial(context.Background(), addr)
}

// Close closes the connection. Sessions opened on it live on until their
// leases lapse (or CloseSession is called from another connection).
// Requests queued but not flushed are discarded; a later Flush reports
// ErrClientClosed rather than silently dropping them.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}

// roundTrip sends req and decodes the single response.
func (c *Conn) roundTrip(req *wire.Request) (wire.Response, error) {
	if c.closed {
		return wire.Response{}, ErrClientClosed
	}
	if c.pending != 0 {
		return wire.Response{}, errors.New("lockd client: Flush queued requests before a synchronous call")
	}
	var err error
	c.wbuf, err = wire.AppendRequestFrame(c.wbuf[:0], req)
	if err != nil {
		return wire.Response{}, err
	}
	if _, err := c.nc.Write(c.wbuf); err != nil {
		return wire.Response{}, err
	}
	p, err := wire.ReadFrame(c.br, &c.rbuf)
	if err != nil {
		return wire.Response{}, err
	}
	resp, err := wire.DecodeResponse(p)
	if err == nil {
		c.noteMembership(&resp)
	}
	return resp, err
}

// noteMembership captures the membership payload a NotOwner response
// carries, so the caller can re-aim without an extra round trip.
func (c *Conn) noteMembership(resp *wire.Response) {
	if resp.Status != wire.StatusNotOwner || len(resp.Payload) == 0 {
		return
	}
	if m, err := wire.DecodeMembership(resp.Payload); err == nil {
		c.member = m // strings are copies; safe past the next read
		c.hasMember = true
	}
}

// Membership returns the most recent cluster membership this connection
// has seen (from a NotOwner response or a ClusterInfo call), and whether
// one has been seen at all.
func (c *Conn) Membership() (wire.Membership, bool) {
	return c.member, c.hasMember
}

// statusErr maps a response status to the manager's sentinel errors, so
// remote and in-process callers handle failures identically.
func statusErr(st wire.Status) error {
	switch st {
	case wire.StatusOK:
		return nil
	case wire.StatusTimeout:
		return lockmgr.ErrTimeout
	case wire.StatusExpired:
		return lockmgr.ErrExpired
	case wire.StatusNotHeld:
		return lockmgr.ErrNotHeld
	case wire.StatusHeld:
		return lockmgr.ErrHeld
	case wire.StatusNotOwner:
		return ErrNotOwner
	default:
		return fmt.Errorf("lockd: request rejected (status %d)", st)
	}
}

// Open registers a session with the given lease and returns its id.
func (c *Conn) Open(lease time.Duration) (uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpOpen, Lease: int64(lease)})
	if err != nil {
		return 0, err
	}
	if err := statusErr(resp.Status); err != nil {
		return 0, err
	}
	return resp.SID, nil
}

// KeepAlive extends sid's lease to now+lease on the server.
func (c *Conn) KeepAlive(sid uint64, lease time.Duration) error {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpKeepAlive, SID: sid, Lease: int64(lease)})
	if err != nil {
		return err
	}
	return statusErr(resp.Status)
}

// CloseSession gracefully ends sid, releasing its holds.
func (c *Conn) CloseSession(sid uint64) error {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpClose, SID: sid})
	if err != nil {
		return err
	}
	return statusErr(resp.Status)
}

// Acquire takes name for sid. wait follows lockmgr.Acquire: 0 try, >0
// timed, <0 wait until granted or the lease lapses.
func (c *Conn) Acquire(sid uint64, name string, excl bool, wait time.Duration) error {
	resp, err := c.roundTrip(&wire.Request{
		Op: wire.OpAcquire, SID: sid, Wait: int64(wait), Excl: excl, Name: name,
	})
	if err != nil {
		return err
	}
	return statusErr(resp.Status)
}

// Release drops one hold of sid on name.
func (c *Conn) Release(sid uint64, name string, excl bool) error {
	resp, err := c.roundTrip(&wire.Request{
		Op: wire.OpRelease, SID: sid, Excl: excl, Name: name,
	})
	if err != nil {
		return err
	}
	return statusErr(resp.Status)
}

// QueueAcquire appends an acquire request to the connection's write
// buffer without sending it; Flush sends every queued request in one
// write. wait follows lockmgr.Acquire.
func (c *Conn) QueueAcquire(sid uint64, name string, excl bool, wait time.Duration) error {
	return c.queue(&wire.Request{
		Op: wire.OpAcquire, SID: sid, Wait: int64(wait), Excl: excl, Name: name,
	})
}

// QueueRelease appends a release request to the connection's write buffer
// without sending it.
func (c *Conn) QueueRelease(sid uint64, name string, excl bool) error {
	return c.queue(&wire.Request{Op: wire.OpRelease, SID: sid, Excl: excl, Name: name})
}

func (c *Conn) queue(req *wire.Request) error {
	if c.closed {
		return ErrClientClosed
	}
	if c.pending == 0 {
		// wbuf still holds the previous already-written request; a new
		// batch starts clean.
		c.wbuf = c.wbuf[:0]
	}
	var err error
	c.wbuf, err = wire.AppendRequestFrame(c.wbuf, req)
	if err != nil {
		return err
	}
	c.pending++
	return nil
}

// Flush sends every queued request in one write and reads their responses
// in order, appending each request's outcome to errs (nil for a grant or
// a clean release). The second result is a transport error; after one the
// connection is unusable. The server executes pipelined requests strictly
// in order and coalesces their responses into a single write, so a
// release+acquire pair costs one syscall each way on each side instead of
// two.
func (c *Conn) Flush(errs []error) ([]error, error) {
	if c.closed {
		c.pending = 0
		return errs, ErrClientClosed
	}
	n := c.pending
	c.pending = 0
	if n == 0 {
		return errs, nil
	}
	_, err := c.nc.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	if err != nil {
		return errs, err
	}
	for i := 0; i < n; i++ {
		p, err := wire.ReadFrame(c.br, &c.rbuf)
		if err != nil {
			return errs, err
		}
		resp, err := wire.DecodeResponse(p)
		if err != nil {
			return errs, err
		}
		c.noteMembership(&resp)
		errs = append(errs, statusErr(resp.Status))
	}
	return errs, nil
}

// ClusterInfo fetches the server's current cluster membership. On a
// non-clustered server the membership is empty with epoch 0.
func (c *Conn) ClusterInfo() (wire.Membership, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpClusterInfo})
	if err != nil {
		return wire.Membership{}, err
	}
	if err := statusErr(resp.Status); err != nil {
		return wire.Membership{}, err
	}
	if len(resp.Payload) == 0 {
		return wire.Membership{}, nil
	}
	m, err := wire.DecodeMembership(resp.Payload)
	if err != nil {
		return wire.Membership{}, err
	}
	c.member, c.hasMember = m, true
	return m, nil
}

// Stats fetches the server's metrics snapshot as JSON.
func (c *Conn) Stats() ([]byte, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp.Status); err != nil {
		return nil, err
	}
	return append([]byte(nil), resp.Payload...), nil
}
