package client_test

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
	"fairrw/internal/lockmgr/cluster"
	"fairrw/internal/lockmgr/server"
	"fairrw/internal/lockmgr/wire"
)

// deadAddr reserves a loopback port and closes it, yielding an address
// that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialerBackoff: a dialer pointed at a refusing port spends its
// attempts with backoff between them, then reports the dial error —
// and a cancelled context cuts the wait short.
func TestDialerBackoff(t *testing.T) {
	addr := deadAddr(t)
	d := client.Dialer{Attempts: 3, Base: 5 * time.Millisecond, Max: 10 * time.Millisecond}
	t0 := time.Now()
	_, err := d.Dial(context.Background(), addr)
	if err == nil {
		t.Fatal("dial to refusing port succeeded")
	}
	// Two inter-attempt backoffs, each at least base/2.
	if elapsed := time.Since(t0); elapsed < 5*time.Millisecond {
		t.Errorf("3 attempts took %v, want >= 5ms of backoff", elapsed)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	slow := client.Dialer{Attempts: 1000, Base: 50 * time.Millisecond, Max: 50 * time.Millisecond}
	t0 = time.Now()
	_, err = slow.Dial(ctx, addr)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled dial: %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > time.Second {
		t.Errorf("cancelled dial returned after %v, want promptly", elapsed)
	}
}

// TestRouterSingleNode: a Router seeded with a plain, non-clustered
// lockd treats it as a cluster of one — every op routes there, and
// definitive outcomes (grants, timeouts) come back typed.
func TestRouterSingleNode(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	r, err := client.NewRouter(client.RouterConfig{Seeds: []string{addr}})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer r.Close()
	if got := r.Members(); len(got) != 1 || got[0] != addr {
		t.Fatalf("members %v, want [%s]", got, addr)
	}
	if got := r.Owner("anything"); got != addr {
		t.Fatalf("owner %s, want %s", got, addr)
	}
	if err := r.Acquire("k", true, 0); err != nil {
		t.Fatalf("acquire: %v", err)
	}

	// A second router contending for the same lock times out — the
	// definitive outcome must surface, not be retried into ErrNoQuorum.
	r2, err := client.NewRouter(client.RouterConfig{Seeds: []string{addr}})
	if err != nil {
		t.Fatalf("router 2: %v", err)
	}
	defer r2.Close()
	if err := r2.Acquire("k", true, 20*time.Millisecond); !errors.Is(err, lockmgr.ErrTimeout) {
		t.Fatalf("contended acquire: %v, want ErrTimeout", err)
	}
	if err := r2.Release("k", true); !errors.Is(err, lockmgr.ErrNotHeld) {
		t.Fatalf("release of unheld: %v, want ErrNotHeld", err)
	}
	if err := r.Release("k", true); err != nil {
		t.Fatalf("release: %v", err)
	}
}

// handoffCluster makes a server answer its first membership request
// (the Router's bootstrap) with an old two-member map, then NotOwner
// everything while publishing a newer one-member map — forcing the
// Router down its adopt-and-re-aim path.
type handoffCluster struct {
	calls       atomic.Int32
	first, then wire.Membership
}

func (h *handoffCluster) GateOp(name []byte, acquire bool) bool { return false }

// Not isolated: sessions must still open so the NotOwner answers come
// from ownership, not fencing.
func (h *handoffCluster) Isolated() bool { return false }

func (h *handoffCluster) AppendMembership(buf []byte) []byte {
	wm := &h.then
	if h.calls.Add(1) == 1 {
		wm = &h.first
	}
	out, err := wire.AppendMembership(buf, wm)
	if err != nil {
		panic(err)
	}
	return out
}

func (h *handoffCluster) Epoch() uint64              { return h.then.Epoch }
func (h *handoffCluster) MemberCount() int           { return len(h.then.Members) }
func (h *handoffCluster) StatusJSON() ([]byte, error) { return []byte("{}"), nil }

// TestRouterReaimsOnNotOwner: an op aimed at a member that answers
// NotOwner adopts the attached (newer) membership and lands the op on
// the node it names, without exhausting retries.
func TestRouterReaimsOnNotOwner(t *testing.T) {
	// B is a plain server that accepts everything.
	addrB, shutdownB := startServer(t)
	defer shutdownB()

	// A bootstraps the Router into an {A,B} map, then NotOwners every
	// op while pointing at the epoch-2 {B} map.
	mA := lockmgr.New(lockmgr.Config{})
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA := lnA.Addr().String()
	h := &handoffCluster{
		first: wire.Membership{Epoch: 1, Members: []string{addrA, addrB}},
		then:  wire.Membership{Epoch: 2, Members: []string{addrB}},
	}
	srvA := server.NewWithConfig(mA, server.Config{Workers: 1, Cluster: h})
	doneA := make(chan struct{})
	go func() {
		srvA.Serve(lnA)
		close(doneA)
	}()
	defer func() {
		srvA.Shutdown(2 * time.Second)
		<-doneA
	}()

	// Pick a name the bootstrap map routes to A, so the first attempt
	// hits the NotOwner path.
	bootMap, err := cluster.NewMap(1, []string{addrA, addrB})
	if err != nil {
		t.Fatal(err)
	}
	name := ""
	for _, cand := range []string{"x", "y", "z", "w", "v", "u", "t", "s"} {
		if bootMap.Owner(cand) == addrA {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no candidate name rendezvous-routes to A")
	}

	r, err := client.NewRouter(client.RouterConfig{
		Seeds:     []string{addrA},
		RetryBase: time.Millisecond,
		RetryMax:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer r.Close()
	if e := r.Epoch(); e != 1 {
		t.Fatalf("bootstrap epoch %d, want 1", e)
	}

	if err := r.Acquire(name, true, 0); err != nil {
		t.Fatalf("acquire across handoff: %v", err)
	}
	if err := r.Release(name, true); err != nil {
		t.Fatalf("release: %v", err)
	}
	if e := r.Epoch(); e != 2 {
		t.Errorf("post-handoff epoch %d, want 2", e)
	}
	if got := r.Owner(name); got != addrB {
		t.Errorf("post-handoff owner %s, want %s", got, addrB)
	}
}
