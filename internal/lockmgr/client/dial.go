package client

import (
	"bufio"
	"context"
	"math/rand"
	"net"
	"time"
)

// Dialer dials lockd servers with capped exponential backoff and
// jitter. The zero value is ready to use. A failed attempt sleeps
// Base·2^attempt, capped at Max, with ±50% jitter — full-throttle
// reconnect storms against a restarting node are exactly the thundering
// herd the lock service exists to prevent, so the client does not cause
// one itself.
type Dialer struct {
	// Timeout bounds one TCP connect attempt. Default 1s.
	Timeout time.Duration
	// Attempts is the total number of connect attempts. Default 4.
	Attempts int
	// Base and Max bound the backoff between attempts. Defaults 20ms
	// and 250ms.
	Base, Max time.Duration
}

func (d *Dialer) timeout() time.Duration {
	if d.Timeout > 0 {
		return d.Timeout
	}
	return time.Second
}

func (d *Dialer) attempts() int {
	if d.Attempts > 0 {
		return d.Attempts
	}
	return 4
}

func (d *Dialer) backoff(attempt int) time.Duration {
	base, max := d.Base, d.Max
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	b := base << uint(attempt)
	if b > max || b <= 0 {
		b = max
	}
	// ±50% jitter, never below base/2.
	return b/2 + time.Duration(rand.Int63n(int64(b)))
}

// Dial connects to addr, retrying with backoff until it succeeds, the
// attempts are spent, or ctx is done. The context deadline also bounds
// each individual connect.
func (d *Dialer) Dial(ctx context.Context, addr string) (*Conn, error) {
	var nd net.Dialer
	var lastErr error
	for attempt := 0; attempt < d.attempts(); attempt++ {
		if attempt > 0 {
			t := time.NewTimer(d.backoff(attempt - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		actx, cancel := context.WithTimeout(ctx, d.timeout())
		nc, err := nd.DialContext(actx, "tcp", addr)
		cancel()
		if err == nil {
			return &Conn{nc: nc, br: bufio.NewReaderSize(nc, 4096)}, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}
