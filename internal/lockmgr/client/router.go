package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/cluster"
	"fairrw/internal/lockmgr/wire"
)

// Router is the cluster-aware client: it caches the ownership map,
// routes every op to the member that owns its name, and on NotOwner or
// a transport failure refreshes the map and retries with capped
// jittered backoff. Per-node Conns (and their sessions) are dialed
// lazily on first use.
//
// Like Conn, a Router's operations are single-goroutine: give each
// worker its own Router. The one background goroutine it runs is the
// keepalive loop, which renews every per-node session over dedicated
// keepalive connections — so a session stays alive even while the op
// connection is blocked inside a parked acquire, which is what lets a
// waiter survive the post-failover quarantine window (the ghost hold
// outlives any single timed wait the manager would grant).
//
// Membership only shrinks (dead members never rejoin), so a live node
// never loses a name it owns, and the Router can route a Release by the
// current map: either the owner at acquire time is still the owner, or
// it died and the hold died with it — the new owner answers NotHeld,
// which the caller counts as a lost hold, not a routing error.
type Router struct {
	cfg RouterConfig

	mu    sync.Mutex // guards map_, nodes, closed (ops are single-goroutine; the keepalive loop is not)
	map_  *cluster.Map
	nodes map[string]*routedNode

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Seeds are addresses to bootstrap the membership from — any
	// subset of the cluster (one live member suffices).
	Seeds []string
	// Lease is the session lease requested on every node. Default 10s.
	Lease time.Duration
	// KeepAliveEvery is the background renewal period. Default Lease/3.
	KeepAliveEvery time.Duration
	// Dialer dials members. The zero value is replaced by a
	// single-attempt dialer: the Router's own retry loop supplies the
	// backoff and re-aims at survivors between attempts, so stacking
	// the Dialer's multi-attempt backoff underneath it would multiply
	// the failover delay — exactly the window the cluster works to keep
	// short.
	Dialer Dialer
	// Retries is how many times one op re-aims after NotOwner, expired
	// sessions, or transport failures before giving up with ErrNoQuorum.
	// Default 8.
	Retries int
	// RetryBase and RetryMax bound the between-retry backoff. Defaults
	// 10ms and 500ms. Retries×RetryMax should comfortably cover the
	// cluster's death-detection window or mid-failover ops will give up
	// before the map catches up.
	RetryBase, RetryMax time.Duration
}

// routedNode is one member the Router has dialed: an op conn, a
// keepalive conn, and the session shared by both.
type routedNode struct {
	addr string
	conn *Conn // op conn: owned by the op goroutine
	sid  uint64
	// downUntil backs off redials after a dial failure (op goroutine
	// only): a dead member would otherwise charge its full dial timeout
	// to every routing attempt that still lands on it.
	downUntil time.Time

	kaMu   sync.Mutex
	kaConn *Conn // keepalive conn: owned by the keepalive loop
}

// NewRouter bootstraps the membership from the seeds and starts the
// keepalive loop. It fails only if no seed answers within the dialer's
// patience.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("lockd client: router needs at least one seed")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 10 * time.Second
	}
	if cfg.KeepAliveEvery <= 0 {
		cfg.KeepAliveEvery = cfg.Lease / 3
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 8
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 500 * time.Millisecond
	}
	if cfg.Dialer == (Dialer{}) {
		cfg.Dialer = Dialer{Attempts: 1}
	}
	r := &Router{
		cfg:   cfg,
		nodes: make(map[string]*routedNode),
		stop:  make(chan struct{}),
	}
	if err := r.bootstrap(); err != nil {
		return nil, err
	}
	r.wg.Add(1)
	go r.keepAliveLoop()
	return r, nil
}

// bootstrap learns the initial membership from any answering seed. A
// single-node, non-clustered server answers ClusterInfo with an empty
// membership; the Router then treats that seed as the sole owner.
func (r *Router) bootstrap() error {
	var lastErr error
	for _, seed := range r.cfg.Seeds {
		c, err := r.cfg.Dialer.Dial(context.Background(), seed)
		if err != nil {
			lastErr = err
			continue
		}
		wm, err := c.ClusterInfo()
		c.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if len(wm.Members) == 0 {
			// Not clustered: this seed owns everything.
			wm = wire.Membership{Epoch: 0, Members: []string{seed}}
		}
		m, err := cluster.FromMembership(&wm)
		if err != nil {
			lastErr = err
			continue
		}
		r.map_ = m
		return nil
	}
	return fmt.Errorf("%w: no seed reachable: %v", ErrNoQuorum, lastErr)
}

// Close closes every per-node connection and stops the keepalive loop.
// Sessions are closed best-effort so holds release immediately instead
// of waiting out their leases.
func (r *Router) Close() error {
	r.stopped.Do(func() { close(r.stop) })
	r.wg.Wait()
	r.mu.Lock()
	nodes := r.nodes
	r.nodes = map[string]*routedNode{}
	r.mu.Unlock()
	for _, n := range nodes {
		if n.conn != nil {
			if n.sid != 0 {
				n.conn.CloseSession(n.sid)
			}
			n.conn.Close()
		}
		n.kaMu.Lock()
		if n.kaConn != nil {
			n.kaConn.Close()
			n.kaConn = nil
		}
		n.kaMu.Unlock()
	}
	return nil
}

// Epoch reports the cached membership epoch.
func (r *Router) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.map_.Epoch()
}

// Members reports the cached member list.
func (r *Router) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.map_.Members()
}

// Owner reports which member the cached map routes name to.
func (r *Router) Owner(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.map_.Owner(name)
}

// adopt installs a membership iff it is strictly newer than the cached
// one, closing conns to members that left. Epochs only rise, so "newer"
// is a plain comparison and stale NotOwner payloads are ignored.
func (r *Router) adopt(wm wire.Membership) {
	m, err := cluster.FromMembership(&wm)
	if err != nil || m.Len() == 0 {
		return
	}
	r.mu.Lock()
	if m.Epoch() <= r.map_.Epoch() {
		r.mu.Unlock()
		return
	}
	r.map_ = m
	var gone []*routedNode
	for addr, n := range r.nodes {
		if !m.Contains(addr) {
			gone = append(gone, n)
			delete(r.nodes, addr)
		}
	}
	r.mu.Unlock()
	for _, n := range gone {
		if n.conn != nil {
			n.conn.Close()
		}
		n.kaMu.Lock()
		if n.kaConn != nil {
			n.kaConn.Close()
			n.kaConn = nil
		}
		n.kaMu.Unlock()
	}
}

// Refresh asks any reachable member for its membership and adopts it if
// newer. Used when the cached owner of a name is unreachable: some
// survivor will eventually publish a map without it.
func (r *Router) Refresh() { r.refresh("") }

// refresh polls members for a newer membership, skipping skip — the
// member that just failed, which would charge a pointless dial (or its
// cooldown) to every refresh while teaching the Router nothing.
func (r *Router) refresh(skip string) {
	r.mu.Lock()
	members := r.map_.Members()
	r.mu.Unlock()
	for _, addr := range members {
		if addr == skip {
			continue
		}
		n, err := r.nodeConn(addr)
		if err != nil {
			continue
		}
		wm, err := n.conn.ClusterInfo()
		if err != nil {
			r.dropConn(n)
			continue
		}
		if len(wm.Members) > 0 {
			r.adopt(wm)
		}
		return
	}
}

// nodeConn returns the routedNode for addr with its op conn dialed but
// WITHOUT opening a session. Membership polls use this directly:
// ClusterInfo needs no session, and a session opened as a refresh side
// effect just before a failover is exactly the stale lease that later
// under-bounds a parked acquire (see Acquire).
func (r *Router) nodeConn(addr string) (*routedNode, error) {
	r.mu.Lock()
	n := r.nodes[addr]
	if n == nil {
		n = &routedNode{addr: addr}
		r.nodes[addr] = n
	}
	r.mu.Unlock()
	if n.conn == nil {
		if now := time.Now(); now.Before(n.downUntil) {
			return nil, fmt.Errorf("lockd client: %s cooling down after failed dial", addr)
		}
		c, err := r.cfg.Dialer.Dial(context.Background(), addr)
		if err != nil {
			n.downUntil = time.Now().Add(r.cfg.RetryMax / 2)
			return nil, err
		}
		n.downUntil = time.Time{}
		n.conn = c
	}
	return n, nil
}

// node returns the routedNode for addr, dialing and opening its session
// lazily.
func (r *Router) node(addr string) (*routedNode, error) {
	n, err := r.nodeConn(addr)
	if err != nil {
		return nil, err
	}
	if n.sid == 0 {
		sid, err := n.conn.Open(r.cfg.Lease)
		if err != nil {
			r.dropConn(n)
			return nil, err
		}
		r.mu.Lock()
		n.sid = sid
		r.mu.Unlock()
	}
	return n, nil
}

// dropConn discards a node's op conn and session after a transport
// error; the next op redials.
func (r *Router) dropConn(n *routedNode) {
	if n.conn != nil {
		n.conn.Close()
		n.conn = nil
	}
	r.mu.Lock()
	n.sid = 0
	r.mu.Unlock()
}

func (r *Router) retryBackoff(attempt int) time.Duration {
	b := r.cfg.RetryBase << uint(attempt)
	if b > r.cfg.RetryMax || b <= 0 {
		b = r.cfg.RetryMax
	}
	return b/2 + time.Duration(rand.Int63n(int64(b)))
}

// Acquire routes an acquire to name's owner. wait follows
// lockmgr.Acquire, and a positive wait bounds the total time across
// re-aims, failovers, and retries. The server clamps each parked wait
// to the session's remaining lease, so a single attempt can time out
// with budget left (most visibly while a failover quarantine is still
// running down); such early timeouts are retried — the keepalive loop
// renews the session between attempts — until the budget is spent.
func (r *Router) Acquire(name string, excl bool, wait time.Duration) error {
	attempt := func(w time.Duration) error {
		return r.do(name, func(n *routedNode) error {
			return n.conn.Acquire(n.sid, name, excl, w)
		})
	}
	if wait <= 0 {
		return attempt(wait)
	}
	deadline := time.Now().Add(wait)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return lockmgr.ErrTimeout
		}
		err := attempt(remain)
		if !errors.Is(err, lockmgr.ErrTimeout) || time.Until(deadline) <= r.cfg.RetryBase {
			return err
		}
		time.Sleep(r.cfg.RetryBase)
	}
}

// Release routes a release to name's current owner.
func (r *Router) Release(name string, excl bool) error {
	return r.do(name, func(n *routedNode) error {
		return n.conn.Release(n.sid, name, excl)
	})
}

// do is the routing loop: aim at the cached owner, and on NotOwner /
// expired session / transport failure, refresh and retry with backoff.
// Definitive outcomes — nil, ErrTimeout, ErrNotHeld, ErrHeld — return
// immediately.
func (r *Router) do(name string, op func(*routedNode) error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > r.cfg.Retries {
			return fmt.Errorf("%w: %q after %d attempts: %v", ErrNoQuorum, name, attempt, lastErr)
		}
		if attempt > 0 {
			time.Sleep(r.retryBackoff(attempt - 1))
		}
		r.mu.Lock()
		owner := r.map_.Owner(name)
		r.mu.Unlock()
		if owner == "" {
			lastErr = errors.New("empty membership")
			r.Refresh()
			continue
		}
		n, err := r.node(owner)
		if err != nil {
			// Owner unreachable — likely dead but not yet detected by
			// the cluster; poll survivors until an epoch bump reroutes.
			lastErr = err
			r.refresh(owner)
			continue
		}
		err = op(n)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrNotOwner):
			lastErr = err
			if wm, ok := n.conn.Membership(); ok {
				r.adopt(wm)
			}
			// An isolated (quorum-less) node answers NotOwner while
			// still naming itself the owner; Refresh would learn
			// nothing newer from it. Isolation is terminal — the node
			// fences itself and members never rejoin — so these
			// backed-off retries only ride out the transient case
			// where a healthy majority exists and an epoch bump is
			// about to reroute the name; against a fenced remnant the
			// attempt budget runs out into ErrNoQuorum.
			continue
		case errors.Is(err, lockmgr.ErrExpired):
			// Session lapsed (e.g. this client stalled past its lease).
			// Reopen on the same node and retry.
			lastErr = err
			r.mu.Lock()
			n.sid = 0
			r.mu.Unlock()
			continue
		case errors.Is(err, lockmgr.ErrTimeout), errors.Is(err, lockmgr.ErrNotHeld), errors.Is(err, lockmgr.ErrHeld):
			return err // definitive answer from the owner
		default:
			// Transport failure mid-op: the conn is unusable either way.
			lastErr = err
			r.dropConn(n)
			r.refresh(owner)
			continue
		}
	}
}

// keepAliveLoop renews every dialed node's session over a dedicated
// keepalive connection, so sessions survive while the op conn is blocked
// in a parked acquire. Sessions are connection-independent, which is
// what makes this legal.
func (r *Router) keepAliveLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.KeepAliveEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.mu.Lock()
		nodes := make([]*routedNode, 0, len(r.nodes))
		for _, n := range r.nodes {
			if n.sid != 0 {
				nodes = append(nodes, n)
			}
		}
		r.mu.Unlock()
		for _, n := range nodes {
			r.keepAliveNode(n)
		}
	}
}

func (r *Router) keepAliveNode(n *routedNode) {
	r.mu.Lock()
	sid := n.sid
	r.mu.Unlock()
	if sid == 0 {
		return
	}
	n.kaMu.Lock()
	defer n.kaMu.Unlock()
	if n.kaConn == nil {
		c, err := r.cfg.Dialer.Dial(context.Background(), n.addr)
		if err != nil {
			return // node likely dead; the op path will reroute
		}
		n.kaConn = c
	}
	if err := n.kaConn.KeepAlive(sid, r.cfg.Lease); err != nil && !errors.Is(err, lockmgr.ErrExpired) {
		n.kaConn.Close()
		n.kaConn = nil
	}
}
