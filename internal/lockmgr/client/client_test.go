package client_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
	"fairrw/internal/lockmgr/server"
)

func startServer(t *testing.T) (addr string, shutdown func()) {
	t.Helper()
	m := lockmgr.New(lockmgr.Config{})
	srv := server.New(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	return ln.Addr().String(), func() {
		srv.Shutdown(2 * time.Second)
		<-done
	}
}

// TestClosedConnTyped: every entry point on a closed Conn reports
// ErrClientClosed, including a Flush whose requests were queued (and
// possibly even granted server-side) before Close — the client cannot
// know which, so it refuses with the typed error instead of returning a
// transport error or, worse, a partial result.
func TestClosedConnTyped(t *testing.T) {
	addr, shutdown := startServer(t)
	defer shutdown()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := c.Open(time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// Queue a pipeline but close before Flush: the requests are in
	// flight from the caller's point of view.
	if err := c.QueueAcquire(sid, "a", true, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.QueueRelease(sid, "a", true); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Flush(nil); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("Flush after close: %v, want ErrClientClosed", err)
	}
	// The discarded pipeline must not leak into a later Flush either.
	if errs, err := c.Flush(nil); !errors.Is(err, client.ErrClientClosed) || len(errs) != 0 {
		t.Fatalf("second Flush after close: errs=%v err=%v", errs, err)
	}
	if err := c.QueueAcquire(sid, "b", false, 0); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("QueueAcquire after close: %v", err)
	}
	if err := c.QueueRelease(sid, "b", false); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("QueueRelease after close: %v", err)
	}
	if err := c.Acquire(sid, "b", false, 0); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("Acquire after close: %v", err)
	}
	if err := c.Release(sid, "b", false); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("Release after close: %v", err)
	}
	if _, err := c.Open(time.Minute); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("Open after close: %v", err)
	}
	if err := c.KeepAlive(sid, time.Minute); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("KeepAlive after close: %v", err)
	}
	if err := c.CloseSession(sid); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("CloseSession after close: %v", err)
	}
	if _, err := c.Stats(); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("Stats after close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}

	// The session outlives its connection: a fresh Conn can release the
	// exclusive hold the pipeline may or may not have placed, then close
	// the session for real.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.CloseSession(sid); err != nil {
		t.Fatalf("CloseSession from second conn: %v", err)
	}
}
