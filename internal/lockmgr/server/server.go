// Package server runs a lockmgr.Manager behind lockd's TCP wire
// protocol on a sharded event-loop runtime: a small fixed set of worker
// loops each owns a subset of the connections outright. Readiness is
// delivered by per-connection reader goroutines (riding the Go runtime
// netpoller) into the owning worker's queue; one worker wakeup drains
// every queued event, decodes all ready connections, executes the lot
// as a single lockmgr batch (each shard locked once per batch, one
// clock read, zero allocations), and flushes each touched connection
// with exactly one write. Blocking acquires never stall a loop: they
// park as continuation records serviced by fairlock's cancellable
// queues and their grants are injected back into the owning worker.
//
// The wire protocol and the public surface (New, Serve, Shutdown) are
// unchanged from the goroutine-per-connection server this replaces;
// cmd/lockd remains a thin flag wrapper, and tests can still embed a
// real server in-process.
package server

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/introspect"
	"fairrw/internal/lockmgr/wire"
)

// Config tunes the runtime. The zero value is ready to use.
type Config struct {
	// Workers is the number of event loops. Default GOMAXPROCS. With
	// affinity on (the default) the count is rounded down to a power of
	// two and capped at the manager's shard count, so the power-of-two
	// shard space partitions exactly across workers.
	Workers int
	// NoAffinity disables shard→worker ownership: every worker executes
	// every op it decodes, taking whatever shard mutexes the batch
	// needs (the pre-affinity behaviour, and the automatic mode at one
	// worker, where routing would be a no-op).
	NoAffinity bool
	// WriteTimeout bounds the total time a conn's escalated write may
	// take before the conn is condemned. Default 10s.
	WriteTimeout time.Duration
	// FlushPass bounds one flusher writev pass. A conn that cannot
	// absorb its backlog within this budget escalates to a dedicated
	// writer goroutine so the worker's other conns wait at most one
	// pass behind a stalled peer. Default 20ms.
	FlushPass time.Duration
	// Recorder, when non-nil, receives the server-side grant-path
	// flight events (park, unpark, connection condemn/drain), keyed by
	// worker index so each event loop writes its own ring. Share it
	// with the manager's Config.Recorder so one dump interleaves both
	// layers' views of the same acquire.
	Recorder *introspect.Recorder
	// Cluster, when non-nil, gates named ops by distributed ownership
	// (implemented by cluster.Node): an acquire or release for a name
	// this node does not own under the current membership is answered
	// StatusNotOwner with the membership attached, and OpClusterInfo
	// reports the membership. nil = not clustered; OpClusterInfo then
	// answers OK with an empty payload.
	Cluster Cluster
}

// Cluster is the server's hook into the cluster layer. It is consulted
// on the parse path under a worker's loop mutex, so implementations
// must not block: GateOp in steady state is a map lookup and two atomic
// loads.
type Cluster interface {
	// GateOp reports whether this node may execute an op on name. The
	// byte slice aliases the parse buffer and must not be retained.
	// acquire distinguishes acquires (which may arm failover
	// quarantines) from releases.
	GateOp(name []byte, acquire bool) bool
	// Isolated reports whether the node has fenced itself after quorum
	// loss. While true, OpOpen and OpKeepAlive are answered NotOwner —
	// an isolated node must not grant or renew any lease, or a client
	// still attached to a partitioned minority could hold a lock past
	// the quarantine the majority waits out before re-granting it.
	Isolated() bool
	// AppendMembership appends the current membership's wire encoding.
	AppendMembership(buf []byte) []byte
	// Epoch and MemberCount describe the current map for metrics.
	Epoch() uint64
	MemberCount() int
	// StatusJSON renders the admin-plane cluster document.
	StatusJSON() ([]byte, error)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.FlushPass <= 0 {
		c.FlushPass = 20 * time.Millisecond
	}
}

// Server serves one Manager over TCP.
type Server struct {
	m       *lockmgr.Manager
	cfg     Config
	rec     *introspect.Recorder // alias of cfg.Recorder (nil = disabled)
	cluster Cluster              // alias of cfg.Cluster (nil = not clustered)

	workers []*worker
	// owner maps manager shard index → home worker index, the
	// shard-affinity partition (the paper's lock-address → LRT-bank
	// mapping in software). nil when affinity is off or there is only
	// one worker; then every op is local to whichever worker decodes it.
	owner   []int32
	drainCh chan struct{} // closed once by Shutdown; observed by workers
	wg      sync.WaitGroup

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	nextID   int32
	nextW    int
}

// New wraps m in a Server with default Config. The caller retains
// ownership of m until Shutdown, which closes it.
func New(m *lockmgr.Manager) *Server {
	return NewWithConfig(m, Config{})
}

// NewWithConfig wraps m in a Server and starts its worker loops and
// their flusher stages.
func NewWithConfig(m *lockmgr.Manager, cfg Config) *Server {
	cfg.fill()
	if !cfg.NoAffinity {
		// Exact partitioning needs workers to divide the power-of-two
		// shard count: round down to a power of two and cap at the shard
		// count. (6 workers → 4; never below 1.)
		w := 1
		for w*2 <= cfg.Workers {
			w *= 2
		}
		if sc := m.ShardCount(); w > sc {
			w = sc
		}
		cfg.Workers = w
	}
	s := &Server{
		m:       m,
		cfg:     cfg,
		rec:     cfg.Recorder,
		cluster: cfg.Cluster,
		drainCh: make(chan struct{}),
		conns:   make(map[*conn]struct{}),
	}
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		s.workers[i] = newWorker(s, i)
	}
	if !cfg.NoAffinity && cfg.Workers > 1 {
		s.owner = make([]int32, m.ShardCount())
		for si := range s.owner {
			s.owner[si] = int32(si % cfg.Workers)
		}
	}
	s.wg.Add(2 * len(s.workers))
	for _, w := range s.workers {
		go w.run()
		go w.fl.run()
	}
	return s
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// graceful drain, or the accept error that stopped it. Connections are
// assigned to workers round-robin.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("lockd: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.nextID++
		w := s.workers[s.nextW]
		s.nextW = (s.nextW + 1) % len(s.workers)
		c := &conn{id: s.nextID, nc: nc, w: w}
		c.cond = sync.NewCond(&c.mu)
		wb := wire.GetBuffer()
		c.wb = wb
		c.wbuf = wb.B
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		// Register with the owning worker before any bytes arrive so the
		// worker's connection count (its drain-exit condition) is exact.
		c.mu.Lock()
		c.queued = true
		c.mu.Unlock()
		select {
		case w.q <- c:
		case <-w.dead:
			nc.Close()
		}
		go c.readLoop()
	}
}

// Workers reports the number of event loops the server runs.
func (s *Server) Workers() int { return len(s.workers) }

// Affinity reports whether shard→worker ownership routing is active.
func (s *Server) Affinity() bool { return s.owner != nil }

// connsEmpty reports whether every connection on the server has been
// retired. This is the workers' drain-exit condition: with affinity on,
// a worker whose own conns are gone may still be the shard home for
// runs forwarded by peers whose conns are not.
func (s *Server) connsEmpty() bool {
	s.mu.Lock()
	n := len(s.conns)
	s.mu.Unlock()
	return n == 0
}

// removeConn forgets a connection retired by its worker. When the last
// conn goes during a drain, every worker is nudged into its exit check
// — a worker with no conns of its own has no event left to wake it.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	empty := len(s.conns) == 0
	draining := s.draining
	s.mu.Unlock()
	if draining && empty {
		for _, w := range s.workers {
			select {
			case w.q <- nil:
			default: // a full queue means pending events will wake it anyway
			}
		}
	}
}

// Shutdown gracefully drains the server: stop accepting, close the
// Manager so every parked acquire resolves (its waiter gets a
// definitive StatusExpired response), wake idle connection readers, and
// wait up to grace for the workers to flush and retire every connection
// before force-closing what remains. Buffered requests that arrived
// before the drain are still executed and their responses flushed.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	ln := s.ln
	for c := range s.conns {
		// Kick readers out of their blocking Read; bytes already received
		// are still parsed, executed, and answered by the worker.
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	close(s.drainCh)
	s.m.Close() // expire sessions: unblocks LockCancel/RLockCancel waiters

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// statusOf maps manager errors onto wire statuses one-to-one.
func statusOf(err error) wire.Status {
	switch {
	case err == nil:
		return wire.StatusOK
	case errors.Is(err, lockmgr.ErrTimeout):
		return wire.StatusTimeout
	case errors.Is(err, lockmgr.ErrExpired), errors.Is(err, lockmgr.ErrClosed):
		return wire.StatusExpired
	case errors.Is(err, lockmgr.ErrNotHeld):
		return wire.StatusNotHeld
	case errors.Is(err, lockmgr.ErrHeld):
		return wire.StatusHeld
	default:
		return wire.StatusErr
	}
}
