// Package server runs a lockmgr.Manager behind lockd's TCP wire
// protocol: one goroutine per connection, strict request framing, and a
// graceful drain that answers every in-flight acquire before the process
// exits. cmd/lockd is a thin flag wrapper around this package, so tests
// (and load generators) can embed a real server in-process.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/wire"
)

// Server serves one Manager over TCP.
type Server struct {
	m *lockmgr.Manager

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg sync.WaitGroup
}

// New wraps m in a Server. The caller retains ownership of m until
// Shutdown, which closes it.
func New(m *lockmgr.Manager) *Server {
	return &Server{m: m, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// graceful drain, or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("lockd: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Shutdown gracefully drains the server: stop accepting, cancel blocked
// acquires (every waiter gets a definitive StatusExpired response), wake
// idle connection readers, and wait up to grace for handlers to finish
// before force-closing what remains. The Manager is closed as part of the
// drain.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	ln := s.ln
	for c := range s.conns {
		// Wake handlers parked in ReadFrame; in-flight requests still
		// write their response before noticing the deadline.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	s.m.Close() // expire sessions: unblocks LockCancel/RLockCancel waiters

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// handle is the per-connection loop: read frame, decode, execute, respond.
// Any framing or decode error drops the connection — after garbage the
// stream cannot be trusted. Sessions are not tied to the connection; the
// lease reaper collects them if the client never returns.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	var rbuf, wbuf []byte
	br := bufio.NewReaderSize(conn, 4096)
	for {
		p, err := wire.ReadFrame(br, &rbuf)
		if err != nil {
			return
		}
		req, err := wire.DecodeRequest(p)
		if err != nil {
			return
		}
		resp := s.dispatch(&req)
		wbuf, err = wire.AppendResponseFrame(wbuf, &resp)
		if err != nil {
			return
		}
		// Pipelined clients batch requests into one segment; accumulate
		// the responses and flush them in one write once the read buffer
		// runs dry. A client that never pipelines always flushes here
		// immediately.
		if br.Buffered() > 0 {
			continue
		}
		if _, err := conn.Write(wbuf); err != nil {
			return
		}
		wbuf = wbuf[:0]
	}
}

// dispatch executes one decoded request against the manager.
func (s *Server) dispatch(req *wire.Request) wire.Response {
	var err error
	resp := wire.Response{Status: wire.StatusOK}
	switch req.Op {
	case wire.OpOpen:
		resp.SID, err = s.m.Open(time.Duration(req.Lease))
	case wire.OpKeepAlive:
		err = s.m.KeepAlive(req.SID, time.Duration(req.Lease))
	case wire.OpClose:
		err = s.m.CloseSession(req.SID)
	case wire.OpAcquire:
		err = s.m.Acquire(req.SID, req.Name, req.Excl, time.Duration(req.Wait))
	case wire.OpRelease:
		err = s.m.Release(req.SID, req.Name, req.Excl)
	case wire.OpStats:
		resp.Payload, err = json.Marshal(s.m.Stats())
	default:
		resp.Status = wire.StatusErr
	}
	if err != nil {
		resp.Status = statusOf(err)
	}
	return resp
}

// statusOf maps manager errors onto wire statuses one-to-one.
func statusOf(err error) wire.Status {
	switch {
	case errors.Is(err, lockmgr.ErrTimeout):
		return wire.StatusTimeout
	case errors.Is(err, lockmgr.ErrExpired), errors.Is(err, lockmgr.ErrClosed):
		return wire.StatusExpired
	case errors.Is(err, lockmgr.ErrNotHeld):
		return wire.StatusNotHeld
	case errors.Is(err, lockmgr.ErrHeld):
		return wire.StatusHeld
	default:
		return wire.StatusErr
	}
}
