// Package server runs a lockmgr.Manager behind lockd's TCP wire
// protocol on a sharded event-loop runtime: a small fixed set of worker
// loops each owns a subset of the connections outright. Readiness is
// delivered by per-connection reader goroutines (riding the Go runtime
// netpoller) into the owning worker's queue; one worker wakeup drains
// every queued event, decodes all ready connections, executes the lot
// as a single lockmgr batch (each shard locked once per batch, one
// clock read, zero allocations), and flushes each touched connection
// with exactly one write. Blocking acquires never stall a loop: they
// park as continuation records serviced by fairlock's cancellable
// queues and their grants are injected back into the owning worker.
//
// The wire protocol and the public surface (New, Serve, Shutdown) are
// unchanged from the goroutine-per-connection server this replaces;
// cmd/lockd remains a thin flag wrapper, and tests can still embed a
// real server in-process.
package server

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/introspect"
	"fairrw/internal/lockmgr/wire"
)

// Config tunes the runtime. The zero value is ready to use.
type Config struct {
	// Workers is the number of event loops. Default GOMAXPROCS.
	Workers int
	// WriteTimeout bounds each coalesced response write. Default 10s.
	WriteTimeout time.Duration
	// Recorder, when non-nil, receives the server-side grant-path
	// flight events (park, unpark, connection condemn/drain), keyed by
	// worker index so each event loop writes its own ring. Share it
	// with the manager's Config.Recorder so one dump interleaves both
	// layers' views of the same acquire.
	Recorder *introspect.Recorder
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
}

// Server serves one Manager over TCP.
type Server struct {
	m   *lockmgr.Manager
	cfg Config
	rec *introspect.Recorder // alias of cfg.Recorder (nil = disabled)

	workers []*worker
	drainCh chan struct{} // closed once by Shutdown; observed by workers
	wg      sync.WaitGroup

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	nextID   int32
	nextW    int
}

// New wraps m in a Server with default Config. The caller retains
// ownership of m until Shutdown, which closes it.
func New(m *lockmgr.Manager) *Server {
	return NewWithConfig(m, Config{})
}

// NewWithConfig wraps m in a Server and starts its worker loops.
func NewWithConfig(m *lockmgr.Manager, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		m:       m,
		cfg:     cfg,
		rec:     cfg.Recorder,
		drainCh: make(chan struct{}),
		conns:   make(map[*conn]struct{}),
	}
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		s.workers[i] = newWorker(s, i)
	}
	s.wg.Add(len(s.workers))
	for _, w := range s.workers {
		go w.run()
	}
	return s
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// graceful drain, or the accept error that stopped it. Connections are
// assigned to workers round-robin.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("lockd: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.nextID++
		w := s.workers[s.nextW]
		s.nextW = (s.nextW + 1) % len(s.workers)
		c := &conn{id: s.nextID, nc: nc, w: w}
		c.cond = sync.NewCond(&c.mu)
		wb := wire.GetBuffer()
		c.wb = wb
		c.wbuf = wb.B
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		// Register with the owning worker before any bytes arrive so the
		// worker's connection count (its drain-exit condition) is exact.
		c.mu.Lock()
		c.queued = true
		c.mu.Unlock()
		select {
		case w.q <- c:
		case <-w.dead:
			nc.Close()
		}
		go c.readLoop()
	}
}

// Workers reports the number of event loops the server runs.
func (s *Server) Workers() int { return len(s.workers) }

// removeConn forgets a connection retired by its worker.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown gracefully drains the server: stop accepting, close the
// Manager so every parked acquire resolves (its waiter gets a
// definitive StatusExpired response), wake idle connection readers, and
// wait up to grace for the workers to flush and retire every connection
// before force-closing what remains. Buffered requests that arrived
// before the drain are still executed and their responses flushed.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	ln := s.ln
	for c := range s.conns {
		// Kick readers out of their blocking Read; bytes already received
		// are still parsed, executed, and answered by the worker.
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	close(s.drainCh)
	s.m.Close() // expire sessions: unblocks LockCancel/RLockCancel waiters

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// statusOf maps manager errors onto wire statuses one-to-one.
func statusOf(err error) wire.Status {
	switch {
	case err == nil:
		return wire.StatusOK
	case errors.Is(err, lockmgr.ErrTimeout):
		return wire.StatusTimeout
	case errors.Is(err, lockmgr.ErrExpired), errors.Is(err, lockmgr.ErrClosed):
		return wire.StatusExpired
	case errors.Is(err, lockmgr.ErrNotHeld):
		return wire.StatusNotHeld
	case errors.Is(err, lockmgr.ErrHeld):
		return wire.StatusHeld
	default:
		return wire.StatusErr
	}
}
