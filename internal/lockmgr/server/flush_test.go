package server

import (
	"net"
	"testing"
	"time"

	"fairrw/internal/lockmgr/wire"
)

// TestStalledPeerDoesNotBlockOthers is the regression for the flusher
// stage's reason to exist: a peer with a zero receive window (it simply
// stops reading) must not delay other connections on the same worker by
// more than one flusher pass. The stalled conn's writev pass hits the
// FlushPass deadline, escalates to a dedicated writer goroutine, and
// the worker + flusher keep servicing everyone else at full speed.
//
// Before the flusher stage, the worker wrote each conn's responses
// inline under loopMu — one stalled socket froze every conn the worker
// owned for up to WriteTimeout.
func TestStalledPeerDoesNotBlockOthers(t *testing.T) {
	mcfg := testCfg()
	addr, srv := startServerCfg(t, mcfg, Config{
		Workers:   1, // both conns share the one worker and its flusher
		FlushPass: 5 * time.Millisecond,
	})

	// The stalled peer: open a session, shrink both socket buffers so a
	// modest response backlog overfills the pipe, then flood keepalives
	// and never read another byte.
	stall := dialRaw(t, addr)
	ssid := stall.open(t, time.Minute)
	if tc, ok := stall.nc.(*net.TCPConn); ok {
		tc.SetReadBuffer(2048)
	}
	sc := findServerConn(t, srv, stall.nc.LocalAddr())
	if tc, ok := sc.nc.(*net.TCPConn); ok {
		tc.SetWriteBuffer(2048)
	}

	var burst []byte
	for i := 0; i < 4000; i++ {
		var err error
		burst, err = wire.AppendRequestFrame(burst, &wire.Request{
			Op: wire.OpKeepAlive, SID: ssid, Lease: int64(time.Minute)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := stall.nc.Write(burst); err != nil {
		t.Fatalf("flood write: %v", err)
	}

	// Wait until the flusher has actually given up on the stalled conn
	// at least once (pass deadline hit → escalation).
	deadline := time.Now().Add(5 * time.Second)
	for {
		var esc uint64
		for _, ws := range srv.WorkerStats() {
			esc += ws.FlushEscalations
		}
		if esc > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never escalated past the stalled conn")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A healthy conn on the same worker must still get synchronous
	// round trips, fast. 20 acquire/release pairs through the shared
	// worker and flusher should take milliseconds; anything near
	// WriteTimeout means the stalled peer is still gating the loop.
	c := dial(t, addr)
	sid, err := c.Open(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 20; i++ {
		if err := c.Acquire(sid, "healthy", true, 0); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if err := c.Release(sid, "healthy", true); err != nil {
			t.Fatalf("release: %v", err)
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("healthy conn took %v for 20 round trips behind a stalled peer", d)
	}

	// Unblock cleanup: killing the stalled socket fails its escalated
	// write, condemning the conn, so Shutdown's drain is immediate.
	stall.nc.Close()
}
