package server

import (
	"encoding/binary"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/introspect"
	"fairrw/internal/lockmgr/wire"
	"fairrw/internal/stats"
)

// injection is a grant completion: a parked acquire finished (granted,
// timed out, or revoked) and its response must be written by the conn's
// owning worker, in order, ahead of the frames deferred behind it.
type injection struct {
	c    *conn
	err  error
	sid  uint64
	hash uint32 // lock-name hash, for the flight recorder
}

// flushStallThreshold classifies a response write as stalled: a loopback
// or LAN socket absorbs a coalesced burst in microseconds, so a write
// this slow means the peer's receive window closed (or the scheduler
// preempted the loop) — the head-of-line risk flush's comment documents,
// now countable instead of invisible.
const flushStallThreshold = time.Millisecond

// wstats are one worker's event-loop counters, the live half of the
// observability plane. They are written by whoever holds loopMu (plus
// the reader goroutines for backpressure) and read by the admin scraper
// without stopping the loop, hence atomics; the pad keeps one worker's
// counter block from false-sharing with its neighbour's.
type wstats struct {
	wakeups      atomic.Uint64 // dedicated-goroutine loop cycles
	donations    atomic.Uint64 // cycles run inline on a reader goroutine
	batches      atomic.Uint64 // ExecBatch calls with at least one op
	batchOps     atomic.Uint64 // ops summed over those batches
	parks        atomic.Uint64 // acquires parked as continuations
	unparks      atomic.Uint64 // grant completions injected back
	condemned    atomic.Uint64 // conns condemned (malformed frame, write error)
	drained      atomic.Uint64 // conns retired cleanly at EOF
	flushes      atomic.Uint64 // coalesced response writes
	flushStalls  atomic.Uint64 // writes slower than flushStallThreshold
	flushStallNS atomic.Uint64 // time spent inside stalled writes
	backpressure atomic.Uint64 // reader blocked on the full-inbox bound
	conns        atomic.Int64  // connections currently owned
	_            [24]byte
}

// worker is one event loop. It owns a set of connections outright;
// whoever holds loopMu is the loop at that moment — the only party that
// parses their buffers, executes their requests, and writes their
// sockets. One wakeup drains every event queued since the last one,
// decodes all ready connections into a single lockmgr batch, executes
// it with the shards locked once per batch, encodes the responses, and
// flushes each touched connection with exactly one write.
//
// The loop has two executors. The dedicated goroutine (run) blocks on
// the event channels and is the fallback that guarantees liveness. On
// top of it, a reader that lands new bytes donates its own goroutine
// when loopMu is free (donate), running the identical drain-and-process
// cycle inline. In steady state with staggered arrivals this removes
// the reader-to-worker handoff entirely — one goroutine reads,
// executes, and writes, as a thread-per-connection server would — while
// bursts that arrive during someone else's cycle still pile up in the
// queue and get batched across connections on the next pass.
type worker struct {
	srv  *Server
	idx  int            // worker index, the admin plane's `worker` label
	q    chan *conn     // readiness: conn has new bytes (or hit EOF); nil = recheck exit
	injq chan injection // grant completions from parked continuations
	dead chan struct{}  // closed when the worker exits (unblocks senders)

	st   wstats
	bhMu sync.Mutex      // guards batchH against the admin scraper
	batchH stats.Histogram // ops per executed batch

	loopMu sync.Mutex // held by whoever is being the loop

	// All fields below are guarded by loopMu.
	conns    map[*conn]struct{}
	draining bool

	sc      *lockmgr.BatchScratch
	ops     []lockmgr.BatchOp
	opConn  []*conn // opConn[i] owns ops[i]
	opEnd   []int   // parse cursor just past ops[i]'s frame
	ready   []*conn // conns to service this wakeup
	statsCs []*conn // conns whose parse stopped at an OpStats frame
}

func newWorker(s *Server, idx int) *worker {
	return &worker{
		srv:   s,
		idx:   idx,
		q:     make(chan *conn, 256),
		injq:  make(chan injection, 256),
		dead:  make(chan struct{}),
		conns: make(map[*conn]struct{}),
		sc:    s.m.NewBatchScratch(),
	}
}

// run is the fallback loop executor: block for one event, take the
// loop, drain everything queued, process it as one batch, flush, sleep.
func (w *worker) run() {
	defer func() {
		close(w.dead)
		w.srv.wg.Done()
	}()
	drainCh := w.srv.drainCh
	for {
		w.loopMu.Lock()
		exit := w.draining && len(w.conns) == 0
		w.loopMu.Unlock()
		if exit {
			return
		}
		select {
		case c := <-w.q:
			w.st.wakeups.Add(1)
			w.loopMu.Lock()
			w.noteReady(c)
			w.drainEvents()
			w.process()
			w.loopMu.Unlock()
		case inj := <-w.injq:
			w.st.wakeups.Add(1)
			w.loopMu.Lock()
			w.unpark(inj)
			w.drainEvents()
			w.process()
			w.loopMu.Unlock()
		case <-drainCh:
			w.loopMu.Lock()
			w.draining = true
			w.loopMu.Unlock()
			drainCh = nil // fire once; exit is decided at the loop head
		}
	}
}

// donate lets a reader goroutine be the loop for one cycle if no one
// else currently is. Returns false if the loop was busy — the caller
// must fall back to enqueueing its event.
func (w *worker) donate(c *conn) bool {
	if !w.loopMu.TryLock() {
		return false
	}
	w.st.donations.Add(1)
	w.noteReady(c)
	w.drainEvents()
	w.process()
	w.loopMu.Unlock()
	return true
}

// drainEvents consumes every queued event without blocking.
func (w *worker) drainEvents() {
	for {
		select {
		case c := <-w.q:
			w.noteReady(c)
		case inj := <-w.injq:
			w.unpark(inj)
		default:
			return
		}
	}
}

// noteReady ingests a readiness event: pull the conn's inbox into its
// pending buffer and schedule it for this wakeup.
func (w *worker) noteReady(c *conn) {
	if c == nil || c.removed {
		return // exit nudge, or a late reader event for a retired conn
	}
	if _, ok := w.conns[c]; !ok {
		w.conns[c] = struct{}{} // first event doubles as registration
		w.st.conns.Add(1)
	}
	if c.take() {
		c.eofSeen = true
	}
	if !c.inReady {
		c.inReady = true
		w.ready = append(w.ready, c)
	}
}

// unpark handles a grant completion: the parked acquire's response goes
// out first, then the conn rejoins the parse rotation so the frames
// deferred behind it finally execute.
func (w *worker) unpark(inj injection) {
	c := inj.c
	c.parked = false
	w.st.unparks.Add(1)
	w.srv.rec.Record(uint32(w.idx), introspect.Event{
		Kind: introspect.EvUnpark, Conn: c.id, SID: inj.sid, Hash: inj.hash})
	if !c.dead {
		resp := wire.Response{Status: statusOf(inj.err)}
		c.wbuf, _ = wire.AppendResponseFrame(c.wbuf, &resp)
		c.flushMark = true
	}
	w.noteReady(c)
}

// process services every ready conn: parse → execute → encode rounds
// until no conn can make progress, then one flush per touched conn and
// lifecycle cleanup.
func (w *worker) process() {
	for {
		w.ops = w.ops[:0]
		w.opConn = w.opConn[:0]
		w.opEnd = w.opEnd[:0]
		w.statsCs = w.statsCs[:0]
		for _, c := range w.ready {
			w.parseConn(c)
		}
		if len(w.ops) == 0 && len(w.statsCs) == 0 {
			break
		}
		if n := len(w.ops); n > 0 {
			w.st.batches.Add(1)
			w.st.batchOps.Add(uint64(n))
			w.bhMu.Lock()
			w.batchH.Add(uint64(n))
			w.bhMu.Unlock()
		}
		w.srv.m.ExecBatch(w.ops, w.sc)
		w.encode()
		for _, c := range w.statsCs {
			w.answerStats(c)
		}
		for _, c := range w.ready {
			c.compact()
		}
	}
	for _, c := range w.ready {
		w.flush(c)
	}
	for _, c := range w.ready {
		c.inReady = false
		w.cleanupIfDone(c)
	}
	w.ready = w.ready[:0]
}

// parseConn decodes complete frames from c's pending buffer into the
// batch, stopping at a parked acquire, an OpStats frame (executed
// between batches to keep per-connection order), the first malformed
// frame (which condemns the stream), or the first incomplete frame.
func (w *worker) parseConn(c *conn) {
	var req wire.RawRequest
	for !c.parked && !c.dead && !c.statsWant {
		buf := c.pending[c.parsePos:]
		if len(buf) < 4 {
			return
		}
		n := int(binary.BigEndian.Uint32(buf))
		if n == 0 || n > wire.MaxRequestPayload {
			c.dead = true // flushed responses still go out; then the conn drops
			return
		}
		if len(buf) < 4+n {
			return
		}
		if err := wire.DecodeRequestRaw(buf[4:4+n], &req); err != nil {
			c.dead = true
			return
		}
		c.parsePos += 4 + n
		if req.Op == wire.OpStats {
			c.statsWant = true
			w.statsCs = append(w.statsCs, c)
			return
		}
		op := lockmgr.BatchOp{Tag: c.id, SID: req.SID, Excl: req.Excl,
			Wait: req.Wait, Lease: req.Lease, Name: req.Name}
		switch req.Op {
		case wire.OpOpen:
			op.Kind = lockmgr.BatchOpen
		case wire.OpKeepAlive:
			op.Kind = lockmgr.BatchKeepAlive
		case wire.OpClose:
			op.Kind = lockmgr.BatchCloseSession
		case wire.OpAcquire:
			op.Kind = lockmgr.BatchAcquire
		case wire.OpRelease:
			op.Kind = lockmgr.BatchRelease
		}
		w.ops = append(w.ops, op)
		w.opConn = append(w.opConn, c)
		w.opEnd = append(w.opEnd, c.parsePos)
	}
}

// encode turns batch results into response frames in each conn's write
// buffer. A would-block acquire parks here: its continuation goroutine
// waits FIFO on the lock while the loop moves on, and the conn's parse
// cursor rewinds so deferred frames re-execute after the grant.
func (w *worker) encode() {
	for i := range w.ops {
		op := &w.ops[i]
		c := w.opConn[i]
		if c.dead || op.Err == lockmgr.ErrDeferred {
			continue // deferred frames re-parse after the park resolves
		}
		if op.Err == lockmgr.ErrWouldBlock {
			w.park(c, op, w.opEnd[i])
			continue
		}
		resp := wire.Response{Status: statusOf(op.Err), SID: op.OutSID}
		var err error
		c.wbuf, err = wire.AppendResponseFrame(c.wbuf, &resp)
		if err != nil {
			c.dead = true
			continue
		}
		c.flushMark = true
	}
}

// park hands a blocking acquire to a continuation goroutine. The name
// is copied out of the parse buffer (the one allocation a contended
// acquire pays); Manager.Acquire waits in FIFO order on the lock's own
// queue, bounded by the request's wait and the session lease, and the
// completion is injected back into this worker's queue.
func (w *worker) park(c *conn, op *lockmgr.BatchOp, endPos int) {
	c.parked = true
	c.parsePos = endPos // deferred frames stay buffered for re-parse
	w.st.parks.Add(1)
	hash := introspect.HashBytes(op.Name)
	w.srv.rec.Record(uint32(w.idx), introspect.Event{
		Kind: introspect.EvPark, Conn: c.id, SID: op.SID, Hash: hash, Wait: op.Wait})
	sid, name, excl, wait := op.SID, string(op.Name), op.Excl, time.Duration(op.Wait)
	go func() {
		err := w.srv.m.Acquire(sid, name, excl, wait)
		select {
		case w.injq <- injection{c: c, err: err, sid: sid, hash: hash}:
		case <-w.dead:
		}
	}()
}

// answerStats executes one OpStats inline between batches.
func (w *worker) answerStats(c *conn) {
	c.statsWant = false
	if c.dead {
		return
	}
	if c.parked {
		// An acquire earlier in this round's batch parked after the stats
		// frame was already consumed; park() rewound the parse cursor to
		// before this frame. Answering now would jump ahead of the parked
		// acquire's response and then answer again on re-parse after the
		// grant. Drop the want; the rewound cursor restores order.
		return
	}
	payload := wire.GetBuffer()
	defer payload.Free()
	j, err := json.Marshal(w.srv.m.Stats())
	resp := wire.Response{Status: wire.StatusOK}
	if err != nil {
		resp.Status = wire.StatusErr
	} else {
		payload.B = append(payload.B, j...)
		resp.Payload = payload.B
	}
	c.wbuf, err = wire.AppendResponseFrame(c.wbuf, &resp)
	if err != nil {
		c.dead = true
		return
	}
	c.flushMark = true
}

// flush writes a conn's coalesced responses in a single write.
//
// The write happens under loopMu, so a client that stops reading can
// stall every connection this worker owns for up to ~1.5x WriteTimeout
// per write. That is a deliberate tradeoff: response bursts are small
// (tens of KB) and loopback/LAN sockets absorb them without blocking,
// so the common case stays a single in-loop syscall with no writer
// goroutine or handoff; the deadline below bounds the damage a stuck
// peer can do, and the write error condemns it so it pays at most once.
func (w *worker) flush(c *conn) {
	if !c.flushMark || len(c.wbuf) == 0 {
		c.flushMark = false
		return
	}
	c.flushMark = false
	// Arming a deadline is a runtime timer modify; at tens of thousands of
	// flushes per second that is measurable. A deadline that is stale by up
	// to half the timeout still bounds the write at 1–1.5x WriteTimeout,
	// so re-arm coarsely instead of per write.
	now := time.Now()
	if now.Sub(c.wdlArmed) > w.srv.cfg.WriteTimeout/2 {
		c.nc.SetWriteDeadline(now.Add(w.srv.cfg.WriteTimeout + w.srv.cfg.WriteTimeout/2))
		c.wdlArmed = now
	}
	_, err := c.nc.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	w.st.flushes.Add(1)
	if d := time.Since(now); d >= flushStallThreshold {
		// The head-of-line stall the flush-under-loopMu tradeoff risks:
		// count it and the time it cost this loop's other conns.
		w.st.flushStalls.Add(1)
		w.st.flushStallNS.Add(uint64(d))
	}
	if err != nil {
		c.dead = true
	}
}

// cleanupIfDone retires a conn whose stream is finished: condemned
// (malformed frame, write error) or cleanly drained (reader hit EOF and
// no complete frame remains). A parked conn always waits for its
// injection first so the continuation never posts to a forgotten conn.
func (w *worker) cleanupIfDone(c *conn) {
	if c.parked {
		return
	}
	if c.dead || (c.eofSeen && !c.hasFrame()) {
		w.drop(c)
	}
}

// hasFrame reports whether a complete frame is buffered.
func (c *conn) hasFrame() bool {
	buf := c.pending[c.parsePos:]
	if len(buf) < 4 {
		return false
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n == 0 || n > wire.MaxRequestPayload {
		return true // malformed counts as work: parse will condemn it
	}
	return len(buf) >= 4+n
}

// drop closes and forgets a conn, classifying the exit for the admin
// plane: condemned (malformed frame or write error set dead) or drained
// (clean EOF with nothing left to parse).
func (w *worker) drop(c *conn) {
	if c.removed {
		return
	}
	if c.dead {
		w.st.condemned.Add(1)
		w.srv.rec.Record(uint32(w.idx), introspect.Event{Kind: introspect.EvCondemn, Conn: c.id})
	} else {
		w.st.drained.Add(1)
		w.srv.rec.Record(uint32(w.idx), introspect.Event{Kind: introspect.EvDrain, Conn: c.id})
	}
	c.removed = true
	c.dead = true
	if _, ok := w.conns[c]; ok {
		delete(w.conns, c)
		w.st.conns.Add(-1)
	}
	c.nc.Close()
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast() // free a reader stuck on a full inbox
	c.mu.Unlock()
	w.srv.removeConn(c)
	if wb := c.wb; wb != nil {
		wb.B = c.wbuf // return the grown backing array, not the original
		c.wbuf = nil
		c.wb = nil
		wb.Free()
	}
	if w.draining && len(w.conns) == 0 {
		// A donated cycle just retired the last conn: the dedicated
		// goroutine is asleep with no event left to wake it, so nudge it
		// into its exit check.
		select {
		case w.q <- nil:
		default:
		}
	}
}
