package server

import (
	"encoding/binary"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/introspect"
	"fairrw/internal/lockmgr/wire"
	"fairrw/internal/stats"
)

// injection is a grant completion: a parked acquire finished (granted,
// timed out, or revoked) and its response must be written by the conn's
// owning worker, in order, ahead of the frames deferred behind it.
type injection struct {
	c    *conn
	err  error
	sid  uint64
	hash uint32 // lock-name hash, for the flight recorder
}

// wstats are one worker's event-loop counters, the live half of the
// observability plane. They are written by whoever holds loopMu (plus
// the reader goroutines for backpressure and the flusher for stall
// accounting) and read by the admin scraper without stopping the loop,
// hence atomics; the pad keeps one worker's counter block from
// false-sharing with its neighbour's.
type wstats struct {
	wakeups      atomic.Uint64 // dedicated-goroutine loop cycles
	donations    atomic.Uint64 // cycles run inline on a reader goroutine
	batches      atomic.Uint64 // ExecBatch calls with at least one op
	batchOps     atomic.Uint64 // ops summed over those batches
	parks        atomic.Uint64 // acquires parked as continuations
	unparks      atomic.Uint64 // grant completions injected back
	condemned    atomic.Uint64 // conns condemned (malformed frame, write error)
	drained      atomic.Uint64 // conns retired cleanly at EOF
	flushes      atomic.Uint64 // coalesced chunks handed to the flusher
	flushStalls  atomic.Uint64 // flusher passes that exceeded FlushPass
	flushStallNS atomic.Uint64 // time spent inside escalated writes
	backpressure atomic.Uint64 // reader blocked on the full-inbox bound
	homeOps      atomic.Uint64 // named ops that decoded on their home worker
	fwdRuns      atomic.Uint64 // runs forwarded to a peer's op ring
	fwdOps       atomic.Uint64 // ops summed over those runs
	fwdIn        atomic.Uint64 // foreign ops this worker executed for peers
	fwdInline    atomic.Uint64 // peer cycles run inline right after a forward
	fwdFallbacks atomic.Uint64 // runs executed locally (ring full / draining)
	outBlocked   atomic.Uint64 // times a conn's parse paused on maxOutq
	conns        atomic.Int64  // connections currently owned
	_            [32]byte
}

// fwdSeg maps a slice of this worker's batch back to the foreign run it
// came from, so results can be copied into the source conn's fwd record
// after ExecBatch.
type fwdSeg struct {
	c     *conn
	start int
	n     int
}

// worker is one event loop. It owns a set of connections outright;
// whoever holds loopMu is the loop at that moment — the only party that
// parses their buffers and executes their requests. One wakeup drains
// every event queued since the last one, decodes all ready connections
// into a single lockmgr batch, executes it with the shards locked once
// per batch, encodes the responses, and hands each touched connection's
// coalesced bytes to the worker's flusher stage (socket writes never
// happen under loopMu).
//
// With affinity on, the worker is also a shard home: lock names hash to
// shards and shards partition across workers (the paper's
// per-memory-controller LRT banks in software), so a worker decoding an
// op whose shard lives elsewhere forwards a run of such ops through the
// home's opRing instead of taking the foreign shard mutex itself. In
// steady state each shard mutex is only ever taken by its home worker's
// batches — uncontended except for parked continuations.
//
// The loop has two executors. The dedicated goroutine (run) blocks on
// the event channels and is the fallback that guarantees liveness. On
// top of it, a reader that lands new bytes donates its own goroutine
// when loopMu is free (donate), and a worker that just forwarded a run
// donates its goroutine to the idle home loop the same way (dispatch),
// so the cross-worker hop costs a function call, not a context switch,
// whenever the home is free.
type worker struct {
	srv  *Server
	idx  int            // worker index, the admin plane's `worker` label
	q    chan *conn     // readiness: conn has new bytes (or hit EOF); nil = recheck exit
	injq chan injection // grant completions from parked continuations
	note chan struct{}  // coalesced cross-worker nudge: ring or completions pending
	dead chan struct{}  // closed when the worker exits (unblocks senders)
	ring *opRing        // runs forwarded to this worker (it is their shard home)
	fl   *flusher       // this worker's write stage

	st     wstats
	bhMu   sync.Mutex      // guards batchH against the admin scraper
	batchH stats.Histogram // ops per executed batch

	loopMu sync.Mutex // held by whoever is being the loop

	// All fields below are guarded by loopMu.
	conns    map[*conn]struct{}
	draining bool

	sc      *lockmgr.BatchScratch
	ops     []lockmgr.BatchOp
	opConn  []*conn  // opConn[i] owns ops[i] (local ops only)
	opEnd   []int    // parse cursor just past ops[i]'s frame (local ops only)
	ready   []*conn  // conns to service this wakeup
	wantCs  []*conn  // conns whose parse stopped at an inline-answered frame
	fwdWait []*conn  // source side: conns with a run in flight at a peer
	fwdExec []*conn  // home side: runs popped from the ring this round
	segs    []fwdSeg // home side: batch segments owned by foreign runs
}

func newWorker(s *Server, idx int) *worker {
	w := &worker{
		srv:   s,
		idx:   idx,
		q:     make(chan *conn, 256),
		injq:  make(chan injection, 256),
		note:  make(chan struct{}, 1),
		dead:  make(chan struct{}),
		ring:  newOpRing(),
		conns: make(map[*conn]struct{}),
		sc:    s.m.NewBatchScratch(),
	}
	w.fl = newFlusher(w)
	return w
}

// run is the fallback loop executor: block for one event, take the
// loop, drain everything queued, process it as one batch, sleep. The
// exit condition is global — every connection on the server retired —
// not local: with affinity on, a worker with no conns of its own may
// still be the shard home for runs forwarded by peers that do.
func (w *worker) run() {
	defer func() {
		close(w.dead)
		w.srv.wg.Done()
	}()
	drainCh := w.srv.drainCh
	for {
		w.loopMu.Lock()
		exit := w.draining && w.srv.connsEmpty()
		w.loopMu.Unlock()
		if exit {
			return
		}
		select {
		case c := <-w.q:
			w.st.wakeups.Add(1)
			w.loopMu.Lock()
			w.noteReady(c)
			w.drainEvents()
			w.process()
			w.loopMu.Unlock()
		case inj := <-w.injq:
			w.st.wakeups.Add(1)
			w.loopMu.Lock()
			w.unpark(inj)
			w.drainEvents()
			w.process()
			w.loopMu.Unlock()
		case <-w.note:
			w.st.wakeups.Add(1)
			w.loopMu.Lock()
			w.drainEvents()
			w.process()
			w.loopMu.Unlock()
		case <-drainCh:
			w.loopMu.Lock()
			w.draining = true
			w.loopMu.Unlock()
			drainCh = nil // fire once; exit is decided at the loop head
		}
	}
}

// donate lets a reader goroutine be the loop for one cycle if no one
// else currently is. Returns false if the loop was busy — the caller
// must fall back to enqueueing its event.
func (w *worker) donate(c *conn) bool {
	if !w.loopMu.TryLock() {
		return false
	}
	w.st.donations.Add(1)
	w.noteReady(c)
	w.drainEvents()
	w.process()
	w.loopMu.Unlock()
	return true
}

// nudge delivers a coalesced cross-worker wakeup (ring push or run
// completion). Never blocks: a full note channel means a wakeup is
// already pending and the receiver will find this event too.
func (w *worker) nudge() {
	select {
	case w.note <- struct{}{}:
	default:
	}
}

// wake re-delivers a conn to its worker from outside the loop (the
// flusher, after draining a write-blocked conn's backlog or condemning
// it on a write error). Blocking is fine here — the callers are
// dedicated goroutines and the worker never waits on them in return.
func (w *worker) wake(c *conn) {
	select {
	case w.q <- c:
	case <-w.dead:
	}
}

// drainEvents consumes every queued event without blocking.
func (w *worker) drainEvents() {
	for {
		select {
		case c := <-w.q:
			w.noteReady(c)
		case inj := <-w.injq:
			w.unpark(inj)
		case <-w.note:
			// The ring and completion scans happen every process round.
		default:
			return
		}
	}
}

// noteReady ingests a readiness event: pull the conn's inbox into its
// pending buffer and schedule it for this wakeup.
func (w *worker) noteReady(c *conn) {
	if c == nil || c.removed {
		return // exit nudge, or a late reader event for a retired conn
	}
	if _, ok := w.conns[c]; !ok {
		w.conns[c] = struct{}{} // first event doubles as registration
		w.st.conns.Add(1)
	}
	if c.writeFailed.Load() {
		c.dead = true // the flusher condemned the socket; retire the conn
	}
	if c.wblocked && c.outBytes.Load() <= maxOutq {
		c.wblocked = false // flusher drained the backlog; resume parsing
	}
	if c.take() {
		c.eofSeen = true
	}
	if !c.inReady {
		c.inReady = true
		w.ready = append(w.ready, c)
	}
}

// unpark handles a grant completion: the parked acquire's response goes
// out first, then the conn rejoins the parse rotation so the frames
// deferred behind it finally execute.
func (w *worker) unpark(inj injection) {
	c := inj.c
	c.parked = false
	w.st.unparks.Add(1)
	w.srv.rec.Record(uint32(w.idx), introspect.Event{
		Kind: introspect.EvUnpark, Conn: c.id, SID: inj.sid, Hash: inj.hash})
	if !c.dead {
		resp := wire.Response{Status: statusOf(inj.err)}
		c.wbuf, _ = wire.AppendResponseFrame(c.wbuf, &resp)
		c.flushMark = true
	}
	w.noteReady(c)
}

// process services every ready conn: parse → execute → encode rounds
// until no conn can make progress, then one flusher handoff per touched
// conn and lifecycle cleanup. Each round also reaps completed forwarded
// runs (ours, back from peers) and takes newly arrived foreign runs
// (theirs, from our ring) so cross-worker traffic advances at round
// granularity, not wakeup granularity.
func (w *worker) process() {
	for {
		w.reapFwd()
		w.takeRing()
		w.ops = w.ops[:0]
		w.opConn = w.opConn[:0]
		w.opEnd = w.opEnd[:0]
		w.wantCs = w.wantCs[:0]
		for _, c := range w.ready {
			w.parseConn(c)
		}
		localN := len(w.ops)
		w.segs = w.segs[:0]
		for _, fc := range w.fwdExec {
			start := len(w.ops)
			w.ops = append(w.ops, fc.fwd.ops...)
			w.segs = append(w.segs, fwdSeg{c: fc, start: start, n: len(fc.fwd.ops)})
			w.st.fwdIn.Add(uint64(len(fc.fwd.ops)))
		}
		w.fwdExec = w.fwdExec[:0]
		if len(w.ops) == 0 && len(w.wantCs) == 0 {
			break
		}
		if n := len(w.ops); n > 0 {
			w.st.batches.Add(1)
			w.st.batchOps.Add(uint64(n))
			w.bhMu.Lock()
			w.batchH.Add(uint64(n))
			w.bhMu.Unlock()
		}
		w.srv.m.ExecBatch(w.ops, w.sc)
		w.completeForwards()
		w.encode(localN)
		for _, c := range w.wantCs {
			w.answerWant(c)
		}
		for _, c := range w.ready {
			c.compact()
		}
	}
	for _, c := range w.ready {
		w.flush(c)
	}
	for _, c := range w.ready {
		c.inReady = false
		w.cleanupIfDone(c)
	}
	w.ready = w.ready[:0]
}

// homeOf routes a decoded request: the worker index owning the shard
// its lock name hashes to, or -1 for ops any worker may execute
// (session ops, stats, names ExecBatch will reject). With affinity off
// there are no homes and every op is local.
func (w *worker) homeOf(req *wire.RawRequest) int {
	owner := w.srv.owner
	if owner == nil {
		return -1
	}
	if req.Op != wire.OpAcquire && req.Op != wire.OpRelease {
		return -1
	}
	if len(req.Name) == 0 || len(req.Name) > lockmgr.MaxNameLen {
		return -1
	}
	return int(owner[w.srv.m.ShardIndex(req.Name)])
}

// parseConn decodes complete frames from c's pending buffer, stopping
// at a parked acquire, an in-flight forwarded run, a paused
// write-backlog (wblocked), a want frame — OpStats, OpClusterInfo, or a
// named op the cluster gate refuses, all answered between batches to
// keep per-connection order — the first malformed frame (which condemns
// the stream), or the first incomplete frame.
//
// Routing happens here: an op homed on this worker (or homeless) joins
// the local batch; a foreign op starts a run — the maximal prefix of
// consecutive ops with the same home — which dispatch() forwards.
// Per-conn order admits at most one route per round: local ops parsed
// this round bar a foreign run from starting (it would execute on the
// peer before this round's batch runs), and a home switch ends the run.
// The conn makes one hop per round; pipelined frames behind it stay
// buffered and re-parse next round, exactly like frames behind a park.
func (w *worker) parseConn(c *conn) {
	var req wire.RawRequest
	runHome := -1
	localSeen := false
	for !c.parked && !c.dead && c.want == wantNone && !c.fwdInFlight && !c.wblocked {
		buf := c.pending[c.parsePos:]
		if len(buf) < 4 {
			break
		}
		n := int(binary.BigEndian.Uint32(buf))
		if n == 0 || n > wire.MaxRequestPayload {
			c.dead = true // flushed responses still go out; then the conn drops
			break
		}
		if len(buf) < 4+n {
			break
		}
		if err := wire.DecodeRequestRaw(buf[4:4+n], &req); err != nil {
			c.dead = true
			break
		}
		// Want frames stop the parse and are answered between batches
		// (after this round's encode, so per-connection order holds). A
		// pending foreign run defers them unconsumed to the round after
		// it completes. The cluster gate runs here, before routing: a
		// name this node does not own must never reach a shard.
		if wk := w.wantOf(&req); wk != wantNone {
			if runHome >= 0 {
				break // answer after the run completes
			}
			c.parsePos += 4 + n
			c.want = wk
			w.wantCs = append(w.wantCs, c)
			break
		}
		// Route before consuming: a frame that cannot join this round's
		// batch or run stays buffered for the next round.
		home := w.homeOf(&req)
		if home >= 0 && home != w.idx {
			if localSeen || (runHome >= 0 && runHome != home) {
				break
			}
			runHome = home
		} else {
			if home == w.idx {
				w.st.homeOps.Add(1)
			}
			if runHome >= 0 && home >= 0 {
				break // a home-local op ends the foreign run
			}
			// Homeless ops (session management) ride along in whichever
			// route is active, preserving order without a round-trip of
			// their own.
		}
		c.parsePos += 4 + n
		op := lockmgr.BatchOp{Tag: c.id, SID: req.SID, Excl: req.Excl,
			Wait: req.Wait, Lease: req.Lease, Name: req.Name}
		switch req.Op {
		case wire.OpOpen:
			op.Kind = lockmgr.BatchOpen
		case wire.OpKeepAlive:
			op.Kind = lockmgr.BatchKeepAlive
		case wire.OpClose:
			op.Kind = lockmgr.BatchCloseSession
		case wire.OpAcquire:
			op.Kind = lockmgr.BatchAcquire
		case wire.OpRelease:
			op.Kind = lockmgr.BatchRelease
		}
		if runHome >= 0 {
			c.fwd.ops = append(c.fwd.ops, op)
			c.fwd.ends = append(c.fwd.ends, c.parsePos)
		} else {
			localSeen = true
			w.ops = append(w.ops, op)
			w.opConn = append(w.opConn, c)
			w.opEnd = append(w.opEnd, c.parsePos)
		}
	}
	if runHome >= 0 && len(c.fwd.ops) > 0 {
		w.dispatch(c, runHome)
	}
}

// dispatch forwards c's parsed run to its home worker's ring, then — if
// the home loop is idle — runs the home's cycle inline on this
// goroutine, the cross-worker form of reader donation: the run
// executes, completes, and nudges us back without a context switch.
// When the ring is full or the server is draining, the run executes
// locally instead; the shard mutexes make that correct, it only forgoes
// the affinity win.
func (w *worker) dispatch(c *conn, home int) {
	b := w.srv.workers[home]
	c.fwd.state.Store(fwdPending)
	c.fwdInFlight = true
	if w.draining || !b.ring.push(c) {
		c.fwd.state.Store(fwdFree)
		c.fwdInFlight = false
		w.st.fwdFallbacks.Add(1)
		for i := range c.fwd.ops {
			w.ops = append(w.ops, c.fwd.ops[i])
			w.opConn = append(w.opConn, c)
			w.opEnd = append(w.opEnd, c.fwd.ends[i])
		}
		c.fwd.ops = c.fwd.ops[:0]
		c.fwd.ends = c.fwd.ends[:0]
		return
	}
	w.fwdWait = append(w.fwdWait, c)
	w.st.fwdRuns.Add(1)
	w.st.fwdOps.Add(uint64(len(c.fwd.ops)))
	if b.loopMu.TryLock() {
		w.st.fwdInline.Add(1)
		b.drainEvents()
		b.process()
		b.loopMu.Unlock()
	} else {
		b.nudge()
	}
}

// takeRing collects runs peers forwarded to this worker since the last
// round. They join this round's batch as segments and their results are
// copied back by completeForwards.
func (w *worker) takeRing() {
	for {
		c := w.ring.pop()
		if c == nil {
			return
		}
		w.fwdExec = append(w.fwdExec, c)
	}
}

// completeForwards publishes executed foreign segments back to their
// source conns: results are copied into the conn's fwd record in place,
// the record flips to done, and the source worker is nudged to reap it.
func (w *worker) completeForwards() {
	for _, sg := range w.segs {
		c := sg.c
		res := w.ops[sg.start : sg.start+sg.n]
		for i := range res {
			c.fwd.ops[i].Err = res[i].Err
			c.fwd.ops[i].OutSID = res[i].OutSID
		}
		c.fwd.state.Store(fwdDone)
		c.w.nudge()
	}
	w.segs = w.segs[:0]
}

// reapFwd finalizes runs that came back from their home worker:
// responses are encoded (or a would-block acquire parks, exactly as it
// would from a local batch) and the conn rejoins the parse rotation.
func (w *worker) reapFwd() {
	if len(w.fwdWait) == 0 {
		return
	}
	keep := w.fwdWait[:0]
	for _, c := range w.fwdWait {
		if c.fwd.state.Load() != fwdDone {
			keep = append(keep, c)
			continue
		}
		w.finishRun(c)
	}
	w.fwdWait = keep
}

// finishRun encodes one completed run's responses in op order. A
// would-block acquire parks the conn and rewinds its parse cursor to
// just past the parked op, so frames after it (including the tail of
// this run, deferred by ExecBatch) re-execute after the grant — the
// same continuation discipline the local batch path uses.
func (w *worker) finishRun(c *conn) {
	c.fwdInFlight = false
	c.fwd.state.Store(fwdFree)
	ops, ends := c.fwd.ops, c.fwd.ends
	for i := range ops {
		op := &ops[i]
		if c.dead || op.Err == lockmgr.ErrDeferred {
			continue
		}
		if op.Err == lockmgr.ErrWouldBlock {
			w.park(c, op, ends[i])
			continue
		}
		resp := wire.Response{Status: statusOf(op.Err), SID: op.OutSID}
		var err error
		c.wbuf, err = wire.AppendResponseFrame(c.wbuf, &resp)
		if err != nil {
			c.dead = true
			continue
		}
		c.flushMark = true
	}
	c.fwd.ops = ops[:0]
	c.fwd.ends = ends[:0]
	w.noteReady(c)
}

// encode turns the local half of the batch into response frames in each
// conn's write buffer. A would-block acquire parks here: its
// continuation goroutine waits FIFO on the lock while the loop moves
// on, and the conn's parse cursor rewinds so deferred frames re-execute
// after the grant.
func (w *worker) encode(localN int) {
	for i := 0; i < localN; i++ {
		op := &w.ops[i]
		c := w.opConn[i]
		if c.dead || op.Err == lockmgr.ErrDeferred {
			continue // deferred frames re-parse after the park resolves
		}
		if op.Err == lockmgr.ErrWouldBlock {
			w.park(c, op, w.opEnd[i])
			continue
		}
		resp := wire.Response{Status: statusOf(op.Err), SID: op.OutSID}
		var err error
		c.wbuf, err = wire.AppendResponseFrame(c.wbuf, &resp)
		if err != nil {
			c.dead = true
			continue
		}
		c.flushMark = true
	}
}

// park hands a blocking acquire to a continuation goroutine. The name
// is copied out of the parse buffer (the one allocation a contended
// acquire pays); Manager.Acquire waits in FIFO order on the lock's own
// queue, bounded by the request's wait and the session lease, and the
// completion is injected back into this worker's queue.
func (w *worker) park(c *conn, op *lockmgr.BatchOp, endPos int) {
	c.parked = true
	c.parsePos = endPos // deferred frames stay buffered for re-parse
	w.st.parks.Add(1)
	hash := introspect.HashBytes(op.Name)
	w.srv.rec.Record(uint32(w.idx), introspect.Event{
		Kind: introspect.EvPark, Conn: c.id, SID: op.SID, Hash: hash, Wait: op.Wait})
	sid, name, excl, wait := op.SID, string(op.Name), op.Excl, time.Duration(op.Wait)
	go func() {
		err := w.srv.m.Acquire(sid, name, excl, wait)
		select {
		case w.injq <- injection{c: c, err: err, sid: sid, hash: hash}:
		case <-w.dead:
		}
	}()
}

// wantOf classifies a decoded request as a want frame: one the batch
// cannot answer. OpStats and OpClusterInfo are served from server
// state; an acquire or release whose name the cluster gate refuses —
// this node does not own it under the current membership, or quorum is
// lost — is answered StatusNotOwner with the membership attached so the
// client can re-aim. Names ExecBatch would reject anyway skip the gate.
// On a fenced (isolated) node OpOpen and OpKeepAlive are refused too:
// granting or renewing a lease from a quorum-less minority would let a
// partitioned client outlive the majority's failover quarantine.
// OpClose stays ungated — releasing everything is always safe.
func (w *worker) wantOf(req *wire.RawRequest) uint8 {
	switch req.Op {
	case wire.OpStats:
		return wantStats
	case wire.OpClusterInfo:
		return wantInfo
	case wire.OpOpen, wire.OpKeepAlive:
		if cl := w.srv.cluster; cl != nil && cl.Isolated() {
			return wantNotOwner
		}
	case wire.OpAcquire, wire.OpRelease:
		cl := w.srv.cluster
		if cl == nil || len(req.Name) == 0 || len(req.Name) > lockmgr.MaxNameLen {
			return wantNone
		}
		if !cl.GateOp(req.Name, req.Op == wire.OpAcquire) {
			return wantNotOwner
		}
	}
	return wantNone
}

// statsPayload is the wire Stats response: the manager snapshot plus
// the runtime facts a load generator needs to self-describe its bench
// rows (worker count, affinity mode, cluster shape).
type statsPayload struct {
	lockmgr.Snapshot
	ServerWorkers  int    `json:"server_workers"`
	ServerAffinity bool   `json:"server_affinity"`
	ClusterMembers int    `json:"cluster_members,omitempty"`
	ClusterEpoch   uint64 `json:"cluster_epoch,omitempty"`
}

// answerWant executes one want frame inline between batches.
func (w *worker) answerWant(c *conn) {
	kind := c.want
	c.want = wantNone
	if c.dead || kind == wantNone {
		return
	}
	if c.parked {
		// An acquire earlier in this round's batch parked after the want
		// frame was already consumed; park() rewound the parse cursor to
		// before this frame. Answering now would jump ahead of the parked
		// acquire's response and then answer again on re-parse after the
		// grant. Drop the want; the rewound cursor restores order.
		return
	}
	payload := wire.GetBuffer()
	defer payload.Free()
	var resp wire.Response
	switch kind {
	case wantStats:
		sp := statsPayload{
			Snapshot:       w.srv.m.Stats(),
			ServerWorkers:  len(w.srv.workers),
			ServerAffinity: w.srv.owner != nil,
		}
		if cl := w.srv.cluster; cl != nil {
			sp.ClusterMembers = cl.MemberCount()
			sp.ClusterEpoch = cl.Epoch()
		}
		j, err := json.Marshal(sp)
		resp.Status = wire.StatusOK
		if err != nil {
			resp.Status = wire.StatusErr
		} else {
			payload.B = append(payload.B, j...)
			resp.Payload = payload.B
		}
	case wantInfo:
		// A non-clustered server answers OK with an empty payload: "I am
		// the whole cluster" — the client treats the dialed address as
		// the sole owner.
		resp.Status = wire.StatusOK
		if cl := w.srv.cluster; cl != nil {
			payload.B = cl.AppendMembership(payload.B)
			resp.Payload = payload.B
		}
	case wantNotOwner:
		resp.Status = wire.StatusNotOwner
		if cl := w.srv.cluster; cl != nil {
			payload.B = cl.AppendMembership(payload.B)
			resp.Payload = payload.B
		}
	}
	var err error
	c.wbuf, err = wire.AppendResponseFrame(c.wbuf, &resp)
	if err != nil {
		c.dead = true
		return
	}
	c.flushMark = true
}

// flush hands a conn's coalesced responses to the worker's flusher
// stage and returns immediately — the loop never writes a socket. The
// grown chunk keeps its pooled owner; the conn gets a fresh buffer for
// the next round. A conn whose flusher backlog exceeds maxOutq is
// parse-paused (wblocked) until the flusher drains it, turning a peer
// that reads too slowly into TCP backpressure instead of unbounded
// queue growth.
func (w *worker) flush(c *conn) {
	if !c.flushMark || len(c.wbuf) == 0 {
		c.flushMark = false
		return
	}
	c.flushMark = false
	w.st.flushes.Add(1)
	wb, buf := c.wb, c.wbuf
	wb.B = buf // the chunk travels with its grown backing array
	nb := wire.GetBuffer()
	c.wb, c.wbuf = nb, nb.B
	out := c.outBytes.Add(int64(len(buf)))
	c.fmu.Lock()
	if c.fdropped {
		c.fmu.Unlock()
		c.outBytes.Add(int64(-len(buf)))
		wb.Free()
		return
	}
	c.outq = append(c.outq, buf)
	c.outb = append(c.outb, wb)
	enq := !c.fqueued
	if enq {
		c.fqueued = true
	}
	c.fmu.Unlock()
	if out > maxOutq && !c.wblocked {
		c.wblocked = true
		w.st.outBlocked.Add(1)
	}
	if enq {
		w.fl.enqueue(c)
	}
}

// cleanupIfDone retires a conn whose stream is finished: condemned
// (malformed frame, write error) or cleanly drained (reader hit EOF and
// no complete frame remains). A parked conn always waits for its
// injection first so the continuation never posts to a forgotten conn;
// a conn with a run in flight likewise waits for the home worker's
// completion.
func (w *worker) cleanupIfDone(c *conn) {
	if c.parked || c.fwdInFlight {
		return
	}
	if c.dead || (c.eofSeen && !c.hasFrame()) {
		w.drop(c)
	}
}

// hasFrame reports whether a complete frame is buffered.
func (c *conn) hasFrame() bool {
	buf := c.pending[c.parsePos:]
	if len(buf) < 4 {
		return false
	}
	n := int(binary.BigEndian.Uint32(buf))
	if n == 0 || n > wire.MaxRequestPayload {
		return true // malformed counts as work: parse will condemn it
	}
	return len(buf) >= 4+n
}

// drop forgets a conn, classifying the exit for the admin plane:
// condemned (malformed frame or write error set dead) or drained (clean
// EOF with nothing left to parse). The socket close defers to the
// flusher when responses are still queued — answered requests are
// flushed before the FIN even on a condemned stream, matching the old
// in-loop write-then-close order — unless the flusher itself condemned
// the socket, in which case it is already closed.
func (w *worker) drop(c *conn) {
	if c.removed {
		return
	}
	if c.dead {
		w.st.condemned.Add(1)
		w.srv.rec.Record(uint32(w.idx), introspect.Event{Kind: introspect.EvCondemn, Conn: c.id})
	} else {
		w.st.drained.Add(1)
		w.srv.rec.Record(uint32(w.idx), introspect.Event{Kind: introspect.EvDrain, Conn: c.id})
	}
	c.removed = true
	c.dead = true
	if _, ok := w.conns[c]; ok {
		delete(w.conns, c)
		w.st.conns.Add(-1)
	}
	if wb := c.wb; wb != nil {
		wb.B = c.wbuf // return the grown backing array, not the original
		c.wbuf = nil
		c.wb = nil
		wb.Free()
	}
	c.fmu.Lock()
	pendingOut := (len(c.outq) > 0 || c.fqueued) && !c.writeFailed.Load() && !c.fdropped
	if pendingOut {
		c.closeOnFlush = true // flusher closes after the last writev
		c.fmu.Unlock()
	} else {
		c.fdropped = true
		w.fl.discardLocked(c)
		c.fmu.Unlock()
		c.nc.Close()
	}
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast() // free a reader stuck on a full inbox
	c.mu.Unlock()
	w.srv.removeConn(c)
}
