package server

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/introspect"
)

// startObservedServer is startServer with the full observability wiring
// lockd uses: one Recorder shared by the manager and the server, plus
// the admin handler mounted on an httptest server.
func startObservedServer(t *testing.T) (addr string, srv *Server, admin *httptest.Server) {
	t.Helper()
	rec := introspect.NewRecorder(4, 256)
	cfg := testCfg()
	cfg.IdleTTL = time.Hour // keep entries alive for the hot-lock checks
	cfg.Recorder = rec
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv = NewWithConfig(lockmgr.New(cfg), Config{Workers: 2, Recorder: rec})
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		select {
		case err := <-served:
			if err != nil {
				t.Errorf("Serve returned %v after drain, want nil", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	admin = httptest.NewServer(srv.AdminHandler(BuildInfo{Version: "test", GoVersion: "gotest"}))
	t.Cleanup(admin.Close)
	return ln.Addr().String(), srv, admin
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return string(body), resp
}

// TestAdminPlaneEndToEnd runs real load — including a parked contended
// acquire — against a live server and scrapes every admin endpoint over
// HTTP while it runs.
func TestAdminPlaneEndToEnd(t *testing.T) {
	addr, srv, admin := startObservedServer(t)

	// Uncontended traffic on a skewed key set.
	c1 := dial(t, addr)
	sid1, err := c1.Open(time.Minute)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 16; i++ {
		if err := c1.Acquire(sid1, "hotkey", false, 0); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if err := c1.Release(sid1, "hotkey", false); err != nil {
			t.Fatalf("release: %v", err)
		}
	}

	// A contended acquire that parks: c1 holds excl, c2 queues.
	if err := c1.Acquire(sid1, "parked", true, 0); err != nil {
		t.Fatalf("acquire excl: %v", err)
	}
	c2 := dial(t, addr)
	sid2, err := c2.Open(time.Minute)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- c2.Acquire(sid2, "parked", false, 5*time.Second) }()

	// Wait until the waiter is visibly queued, then scrape mid-park.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if hl := srv.m.HotLocks(10); func() bool {
			for _, p := range hl {
				if p.Name == "parked" && p.QueueLen > 0 {
					return true
				}
			}
			return false
		}() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued on \"parked\"")
		}
		time.Sleep(time.Millisecond)
	}

	midPark, _ := get(t, admin.URL+"/metrics")
	if !strings.Contains(midPark, `lockd_hot_lock_queue_len{lock="parked"} 1`) {
		t.Fatalf("/metrics mid-park missing live queue length:\n%s", midPark)
	}

	if err := c1.Release(sid1, "parked", true); err != nil {
		t.Fatalf("release excl: %v", err)
	}
	if err := <-acquired; err != nil {
		t.Fatalf("parked acquire: %v", err)
	}
	if err := c2.Release(sid2, "parked", false); err != nil {
		t.Fatalf("release shared: %v", err)
	}

	// /metrics: Prometheus text with manager counters, histograms,
	// per-worker series, and the hot-lock table.
	body, resp := get(t, admin.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE lockd_shared_grants_total counter",
		"# TYPE lockd_wait_seconds histogram",
		"lockd_wait_seconds_bucket",
		"lockd_hold_seconds_count",
		"lockd_batch_ops_count",
		`lockd_worker_wakeups_total{worker="0"}`,
		`lockd_worker_wakeups_total{worker="1"}`,
		`lockd_worker_parks_total`,
		`lockd_hot_lock_acquires_total{lock="hotkey"} 16`,
		`lockd_hot_lock_wait_seconds_total{lock="parked"}`,
		`version="test"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /metrics.json: the full payload parses and carries the same story.
	jbody, resp := get(t, admin.URL+"/metrics.json?k=5")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics.json Content-Type = %q", ct)
	}
	var payload MetricsPayload
	if err := json.Unmarshal([]byte(jbody), &payload); err != nil {
		t.Fatalf("/metrics.json parse: %v\n%s", err, jbody)
	}
	if payload.Build.Version != "test" {
		t.Fatalf("build = %+v", payload.Build)
	}
	if payload.Manager.SharedGrants < 17 { // 16 hotkey + 1 parked
		t.Fatalf("manager snapshot: %+v", payload.Manager)
	}
	if len(payload.Workers) != 2 {
		t.Fatalf("workers = %+v", payload.Workers)
	}
	var parks uint64
	for _, w := range payload.Workers {
		parks += w.Parks
	}
	if parks == 0 {
		t.Fatal("no parks counted despite a parked acquire")
	}
	if len(payload.HotLocks) == 0 || len(payload.HotLocks) > 5 {
		t.Fatalf("hot_locks = %+v", payload.HotLocks)
	}

	// /hotlocks parses as the bare table.
	hbody, _ := get(t, admin.URL+"/hotlocks?k=1")
	var hl []lockmgr.LockProfile
	if err := json.Unmarshal([]byte(hbody), &hl); err != nil || len(hl) != 1 {
		t.Fatalf("/hotlocks = %s (err %v)", hbody, err)
	}

	// /flight: the park and its unpark are both on the record.
	fbody, _ := get(t, admin.URL+"/flight")
	for _, want := range []string{"PARK", "UNPARK", "GRANT"} {
		if !strings.Contains(fbody, want) {
			t.Fatalf("/flight missing %q:\n%s", want, fbody)
		}
	}

	// pprof is mounted.
	_, resp = get(t, admin.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	_, resp = get(t, admin.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}

// TestAdminPlaneNoRecorder: the admin surface degrades cleanly when the
// flight recorder is disabled.
func TestAdminPlaneNoRecorder(t *testing.T) {
	_, srv := startServer(t, testCfg())
	admin := httptest.NewServer(srv.AdminHandler(BuildInfo{Version: "v", GoVersion: "g"}))
	defer admin.Close()
	body, _ := get(t, admin.URL+"/flight")
	if !strings.Contains(body, "disabled") {
		t.Fatalf("/flight without recorder = %q", body)
	}
	mbody, _ := get(t, admin.URL+"/metrics")
	if !strings.Contains(mbody, "lockd_build_info") {
		t.Fatalf("/metrics without recorder missing build info:\n%s", mbody)
	}
}
