package server

import (
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
)

// startServer brings up a Manager+Server on a loopback port and returns
// the address. Shutdown runs in cleanup and is verified to terminate.
func startServer(t *testing.T, cfg lockmgr.Config) (addr string, srv *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv = New(lockmgr.New(cfg))
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		select {
		case err := <-served:
			if err != nil {
				t.Errorf("Serve returned %v after drain, want nil", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return ln.Addr().String(), srv
}

func testCfg() lockmgr.Config {
	return lockmgr.Config{
		Shards:        4,
		SweepInterval: 5 * time.Millisecond,
		IdleTTL:       50 * time.Millisecond,
	}
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestEndToEnd drives the whole stack: open, acquire in both modes with
// every wait flavor, keepalive, stats, release, close session.
func TestEndToEnd(t *testing.T) {
	addr, _ := startServer(t, testCfg())
	c := dial(t, addr)

	sid, err := c.Open(2 * time.Second)
	if err != nil || sid == 0 {
		t.Fatalf("open: sid=%d err=%v", sid, err)
	}
	if err := c.Acquire(sid, "cfg", false, 0); err != nil {
		t.Fatalf("shared try: %v", err)
	}
	if err := c.Acquire(sid, "cfg", false, -1); err != nil {
		t.Fatalf("second shared: %v", err)
	}
	// Exclusive try from a second session fails over the readers.
	c2 := dial(t, addr)
	sid2, err := c2.Open(2 * time.Second)
	if err != nil {
		t.Fatalf("open2: %v", err)
	}
	if err := c2.Acquire(sid2, "cfg", true, 0); err != lockmgr.ErrTimeout {
		t.Fatalf("excl try over readers = %v, want ErrTimeout", err)
	}
	if err := c2.Acquire(sid2, "cfg", true, 20*time.Millisecond); err != lockmgr.ErrTimeout {
		t.Fatalf("excl timed over readers = %v, want ErrTimeout", err)
	}
	if err := c.KeepAlive(sid, 2*time.Second); err != nil {
		t.Fatalf("keepalive: %v", err)
	}
	if err := c.Release(sid, "cfg", false); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := c.Release(sid, "cfg", false); err != nil {
		t.Fatalf("release 2: %v", err)
	}
	if err := c.Release(sid, "cfg", false); err != lockmgr.ErrNotHeld {
		t.Fatalf("over-release = %v, want ErrNotHeld", err)
	}
	if err := c2.Acquire(sid2, "cfg", true, -1); err != nil {
		t.Fatalf("excl after drain: %v", err)
	}

	raw, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var snap lockmgr.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("stats json: %v", err)
	}
	if snap.SharedGrants != 2 || snap.ExclGrants != 1 || snap.Sessions != 2 {
		t.Fatalf("stats snapshot: %+v", snap)
	}

	if err := c2.CloseSession(sid2); err != nil {
		t.Fatalf("close session: %v", err)
	}
	if err := c2.Release(sid2, "cfg", true); err != lockmgr.ErrExpired {
		t.Fatalf("release after close = %v, want ErrExpired", err)
	}
}

// TestPipelined drives several requests through one Flush: the server
// must execute them strictly in order and answer every one (responses
// coalesce into fewer segments, but none may be lost or reordered).
func TestPipelined(t *testing.T) {
	addr, _ := startServer(t, testCfg())
	c := dial(t, addr)
	sid, err := c.Open(2 * time.Second)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// shared, shared, release, release, release (over-release) in one batch.
	for i := 0; i < 2; i++ {
		if err := c.QueueAcquire(sid, "p", false, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := c.QueueRelease(sid, "p", false); err != nil {
			t.Fatal(err)
		}
	}
	errs, err := c.Flush(nil)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	want := []error{nil, nil, nil, nil, lockmgr.ErrNotHeld}
	if len(errs) != len(want) {
		t.Fatalf("got %d responses, want %d", len(errs), len(want))
	}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("op %d: got %v, want %v", i, errs[i], want[i])
		}
	}

	// An empty flush is a no-op, and the conn still works synchronously.
	if errs, err := c.Flush(nil); err != nil || len(errs) != 0 {
		t.Fatalf("empty flush: %v %v", errs, err)
	}
	if err := c.Acquire(sid, "p", true, 0); err != nil {
		t.Fatalf("sync acquire after batch: %v", err)
	}

	// Queued-but-unflushed requests make synchronous calls an error
	// rather than silently interleaving frames.
	if err := c.QueueRelease(sid, "p", true); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(sid, "p", true); err == nil {
		t.Fatal("sync call with queued requests should fail")
	}
	if errs, err := c.Flush(nil); err != nil || errs[0] != nil {
		t.Fatalf("flush queued release: %v %v", errs, err)
	}
}

// TestKilledClientOverTCP is the acceptance scenario end to end: a client
// acquires exclusively, its process "dies" (connection closed, no
// keepalive), and the lease reaper must reclaim the hold within 2x the
// lease, granting the FIFO of waiters parked by other clients in arrival
// order.
func TestKilledClientOverTCP(t *testing.T) {
	addr, _ := startServer(t, testCfg())
	const lease = 100 * time.Millisecond

	victim := dial(t, addr)
	vsid, err := victim.Open(lease)
	if err != nil {
		t.Fatalf("open victim: %v", err)
	}
	if err := victim.Acquire(vsid, "k", true, 0); err != nil {
		t.Fatalf("victim acquire: %v", err)
	}
	victim.Close() // the crash: no release, no keepalive, TCP gone

	var mu sync.Mutex
	var order []int
	grantAt := make([]time.Time, 3)
	var wg sync.WaitGroup
	start := time.Now()
	for i, excl := range []bool{true, false, false} {
		i, excl := i, excl
		conn := dial(t, addr)
		sid, err := conn.Open(5 * time.Second)
		if err != nil {
			t.Fatalf("waiter %d open: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := conn.Acquire(sid, "k", excl, -1); err != nil {
				t.Errorf("waiter %d acquire: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			grantAt[i] = time.Now()
			mu.Unlock()
			if excl {
				time.Sleep(2 * time.Millisecond)
			}
			if err := conn.Release(sid, "k", excl); err != nil {
				t.Errorf("waiter %d release: %v", i, err)
			}
		}()
		// Wait for this client's request to be queued server-side before
		// starting the next, pinning arrival order.
		probe := dial(t, addr)
		deadline := time.Now().Add(5 * time.Second)
		for {
			raw, err := probe.Stats()
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			var snap lockmgr.Snapshot
			if err := json.Unmarshal(raw, &snap); err != nil {
				t.Fatal(err)
			}
			if snap.Waiting == int64(i+1) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued (waiting=%d)", i, snap.Waiting)
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()

	if order[0] != 0 {
		t.Fatalf("grant order %v, want writer 0 first", order)
	}
	if reclaim := grantAt[0].Sub(start); reclaim > 2*lease {
		t.Fatalf("reclaim took %v, want <= %v", reclaim, 2*lease)
	}
}

// TestMalformedFrameDropsConn: garbage gets the connection dropped while
// the server keeps serving everyone else.
func TestMalformedFrameDropsConn(t *testing.T) {
	addr, _ := startServer(t, testCfg())

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Valid length prefix, garbage payload: decoder must reject and the
	// server must hang up (read returns EOF, not a stuck connection).
	if _, err := raw.Write([]byte{0, 0, 0, 5, 0xde, 0xad, 0xbe, 0xef, 0x99}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a malformed frame")
	}

	// The server is still healthy for well-formed clients.
	c := dial(t, addr)
	sid, err := c.Open(time.Second)
	if err != nil {
		t.Fatalf("open after garbage conn: %v", err)
	}
	if err := c.Acquire(sid, "x", true, 0); err != nil {
		t.Fatalf("acquire after garbage conn: %v", err)
	}
}

// TestGracefulDrain: a blocked acquire receives a definitive expired
// response during shutdown instead of a dead socket.
func TestGracefulDrain(t *testing.T) {
	addr, srv := startServer(t, testCfg())

	holder := dial(t, addr)
	hsid, err := holder.Open(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Acquire(hsid, "k", true, 0); err != nil {
		t.Fatal(err)
	}
	blocked := dial(t, addr)
	bsid, err := blocked.Open(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- blocked.Acquire(bsid, "k", true, -1) }()

	// Wait until the acquire is parked server-side.
	probe := dial(t, addr)
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw, err := probe.Stats()
		if err != nil {
			t.Fatal(err)
		}
		var snap lockmgr.Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("acquire never parked")
		}
		time.Sleep(time.Millisecond)
	}

	srv.Shutdown(5 * time.Second)
	if err := <-errc; err != lockmgr.ErrExpired {
		t.Fatalf("blocked acquire during drain = %v, want ErrExpired", err)
	}
}
