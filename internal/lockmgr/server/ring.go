package server

import "sync/atomic"

// opRing is the cross-worker forwarding channel: a bounded MPSC ring of
// *conn, one per worker, carrying runs of ops that decoded on a foreign
// worker but hash-home here. It is the software analogue of the paper's
// per-memory-controller request network — each lock name has exactly
// one home bank, and requests travel to it instead of every requester
// contending on a shared structure.
//
// The design is the classic bounded MPMC queue with per-slot sequence
// numbers (used single-consumer here): producers claim a slot by CAS on
// tail, publish by storing seq = tail+1; the consumer observes the
// publish via the slot's seq, never by tail, so a producer that claimed
// but has not yet published simply makes pop return nil until it does.
// push never blocks — a full ring returns false and the sender executes
// the run locally (correctness never depends on forwarding, only the
// shard-affinity win does).
//
// Entries are bare *conn pointers: the run payload (ops, frame ends,
// completion state) lives in the conn's fwd record, so forwarding a run
// moves one pointer through one cache line and allocates nothing.
type opRing struct {
	_     [64]byte // keep head/tail off the allocator's neighbours
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
	_     [56]byte
	slots []ringSlot
	mask  uint64
}

// ringSlot is one ring entry, padded to a cache line so neighbouring
// slots' seq words never false-share under concurrent producers.
type ringSlot struct {
	seq atomic.Uint64
	c   *conn
	_   [48]byte
}

// opRingSize is each worker's inbound run capacity. A run is at least
// one op and sources park the conn until it completes, so depth is
// bounded by (conns × 1) in practice; 1024 slots make overflow a
// pathology counter, not a steady-state path.
const opRingSize = 1024

func newOpRing() *opRing {
	r := &opRing{slots: make([]ringSlot, opRingSize), mask: opRingSize - 1}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push publishes c's forwarded run to the ring. Multiple producers may
// race; returns false when the ring is full.
func (r *opRing) push(c *conn) bool {
	for {
		t := r.tail.Load()
		s := &r.slots[t&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == t:
			if r.tail.CompareAndSwap(t, t+1) {
				s.c = c
				s.seq.Store(t + 1)
				return true
			}
		case seq < t:
			return false // consumer hasn't freed this slot: full
		}
		// seq > t: another producer won the slot; reload tail and retry.
	}
}

// pop takes the next published run, or nil. Single consumer: only the
// home worker (whoever holds its loopMu) calls this.
func (r *opRing) pop() *conn {
	h := r.head.Load()
	s := &r.slots[h&r.mask]
	if s.seq.Load() != h+1 {
		return nil // empty, or the next producer hasn't published yet
	}
	c := s.c
	s.c = nil
	s.seq.Store(h + r.mask + 1)
	r.head.Store(h + 1)
	return c
}

// depth is the admin plane's gauge: published-but-unconsumed runs. It
// is racy by nature (a scrape, not a synchronization point).
func (r *opRing) depth() uint64 {
	t, h := r.tail.Load(), r.head.Load()
	if t < h {
		return 0
	}
	return t - h
}
