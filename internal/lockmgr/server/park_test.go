package server

import (
	"bufio"
	"encoding/json"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/wire"
)

// rawClient is a frame-level client for tests that need to pipeline op
// mixes the production client cannot (e.g. stats behind a blocking
// acquire) and to observe exactly when each response byte arrives.
type rawClient struct {
	t    *testing.T
	nc   net.Conn
	br   *bufio.Reader
	rbuf []byte
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawClient{t: t, nc: nc, br: bufio.NewReaderSize(nc, 4096)}
}

func (r *rawClient) write(reqs ...*wire.Request) {
	r.t.Helper()
	var buf []byte
	for _, req := range reqs {
		var err error
		buf, err = wire.AppendRequestFrame(buf, req)
		if err != nil {
			r.t.Fatal(err)
		}
	}
	if _, err := r.nc.Write(buf); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawClient) read(timeout time.Duration) wire.Response {
	r.t.Helper()
	r.nc.SetReadDeadline(time.Now().Add(timeout))
	p, err := wire.ReadFrame(r.br, &r.rbuf)
	if err != nil {
		r.t.Fatalf("read response: %v", err)
	}
	resp, err := wire.DecodeResponse(p)
	if err != nil {
		r.t.Fatalf("decode response: %v", err)
	}
	return resp
}

// expectSilence asserts no response bytes arrive within d.
func (r *rawClient) expectSilence(d time.Duration) {
	r.t.Helper()
	if r.br.Buffered() > 0 {
		r.t.Fatalf("%d unexpected response bytes already buffered", r.br.Buffered())
	}
	r.nc.SetReadDeadline(time.Now().Add(d))
	_, err := r.br.Peek(1)
	if err == nil {
		r.t.Fatal("got a response while the acquire ahead was still parked")
	}
	if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		r.t.Fatalf("expected read timeout, got %v", err)
	}
}

func (r *rawClient) open(t *testing.T, lease time.Duration) uint64 {
	t.Helper()
	r.write(&wire.Request{Op: wire.OpOpen, Lease: int64(lease)})
	resp := r.read(5 * time.Second)
	if resp.Status != wire.StatusOK || resp.SID == 0 {
		t.Fatalf("open: status=%d sid=%d", resp.Status, resp.SID)
	}
	return resp.SID
}

// TestStatsPipelinedBehindParkedAcquire pins per-connection response
// order when a stats request is pipelined behind a blocking acquire.
// The parse pass consumes the stats frame in the same round the acquire
// parks; the park rewinds the cursor to before the stats frame, so the
// server must NOT answer it this wakeup — it re-parses after the grant.
// The regression this guards: the stats response jumping ahead of the
// parked acquire's response and then being answered a second time on
// re-parse (three responses for two requests, stream desynced).
func TestStatsPipelinedBehindParkedAcquire(t *testing.T) {
	addr, _ := startServer(t, testCfg())

	holder := dial(t, addr)
	hsid, err := holder.Open(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Acquire(hsid, "k", true, 0); err != nil {
		t.Fatal(err)
	}

	rc := dialRaw(t, addr)
	sid := rc.open(t, 5*time.Second)
	// One write, three frames: the acquire parks, the stats and
	// keepalive are stuck behind it.
	rc.write(
		&wire.Request{Op: wire.OpAcquire, SID: sid, Excl: true, Wait: -1, Name: "k"},
		&wire.Request{Op: wire.OpStats},
		&wire.Request{Op: wire.OpKeepAlive, SID: sid, Lease: int64(5 * time.Second)},
	)
	waitForWaiting(t, addr, 1)

	// Nothing may come back while the acquire is parked — in particular
	// not the stats response.
	rc.expectSilence(200 * time.Millisecond)

	if err := holder.Release(hsid, "k", true); err != nil {
		t.Fatal(err)
	}

	// Exactly three responses, in request order.
	if resp := rc.read(5 * time.Second); resp.Status != wire.StatusOK {
		t.Fatalf("acquire response status %d, want OK", resp.Status)
	}
	stats := rc.read(5 * time.Second)
	if stats.Status != wire.StatusOK {
		t.Fatalf("stats response status %d, want OK", stats.Status)
	}
	var snap lockmgr.Snapshot
	if err := json.Unmarshal(stats.Payload, &snap); err != nil {
		t.Fatalf("stats payload is not the snapshot JSON: %v", err)
	}
	if resp := rc.read(5 * time.Second); resp.Status != wire.StatusOK {
		t.Fatalf("keepalive response status %d, want OK", resp.Status)
	}
	// No duplicate stats response trails the burst.
	rc.expectSilence(200 * time.Millisecond)
}

// findServerConn locates the server-side conn for a client socket.
func findServerConn(t *testing.T, srv *Server, local net.Addr) *conn {
	t.Helper()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	for c := range srv.conns {
		if c.nc.RemoteAddr().String() == local.String() {
			return c
		}
	}
	t.Fatalf("no server conn for %v", local)
	return nil
}

// TestParkedConnBackpressure verifies the documented maxInbox bound: a
// client that keeps streaming requests while an earlier acquire is
// parked must be absorbed by the inbox (capped, reader blocks, TCP
// backpressure) — not leak into the worker's pending buffer, which a
// park can hold for a full lease. Afterwards every streamed request is
// still answered exactly once, in order: skipping the inbox transfer
// while parked must not lose a wakeup.
func TestParkedConnBackpressure(t *testing.T) {
	addr, srv := startServer(t, testCfg())

	holder := dial(t, addr)
	hsid, err := holder.Open(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Acquire(hsid, "k", true, 0); err != nil {
		t.Fatal(err)
	}

	rc := dialRaw(t, addr)
	sid := rc.open(t, time.Minute)
	rc.write(&wire.Request{Op: wire.OpAcquire, SID: sid, Excl: true, Wait: -1, Name: "k"})
	waitForWaiting(t, addr, 1)
	sc := findServerConn(t, srv, rc.nc.LocalAddr())

	// Stream ~4x maxInbox of keepalives behind the parked acquire. The
	// write may block once the inbox cap plus socket buffers fill —
	// that IS the backpressure — so it runs in the background and the
	// blocked portion completes after the grant.
	frame, err := wire.AppendRequestFrame(nil,
		&wire.Request{Op: wire.OpKeepAlive, SID: sid, Lease: int64(time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	n := 4 * maxInbox / len(frame)
	var sent atomic.Int64
	writerDone := make(chan error, 1)
	go func() {
		burst := make([]byte, 0, 64<<10)
		for i := 0; i < n; {
			burst = burst[:0]
			for ; i < n && len(burst)+len(frame) <= cap(burst); i++ {
				burst = append(burst, frame...)
			}
			if _, err := rc.nc.Write(burst); err != nil {
				writerDone <- err
				return
			}
			sent.Add(int64(len(burst)))
		}
		writerDone <- nil
	}()

	// While parked, pending must stay bounded no matter how much the
	// client streams; the inbox may fill only to its cap (+ one read
	// chunk, since the reader checks the cap before appending).
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		sc.w.loopMu.Lock()
		pendBacklog := len(sc.pending) - sc.parsePos
		sc.w.loopMu.Unlock()
		if pendBacklog > maxInbox {
			t.Fatalf("pending backlog %d bytes while parked (sent %d): maxInbox backpressure bypassed",
				pendBacklog, sent.Load())
		}
		sc.mu.Lock()
		inboxLen := len(sc.inbox)
		sc.mu.Unlock()
		if inboxLen > maxInbox+readChunk {
			t.Fatalf("inbox %d bytes, cap is %d+%d", inboxLen, maxInbox, readChunk)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := holder.Release(hsid, "k", true); err != nil {
		t.Fatal(err)
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("background writer: %v", err)
	}

	// The grant response, then every keepalive answered in order.
	if resp := rc.read(10 * time.Second); resp.Status != wire.StatusOK {
		t.Fatalf("acquire response status %d, want OK", resp.Status)
	}
	for i := 0; i < n; i++ {
		if resp := rc.read(10 * time.Second); resp.Status != wire.StatusOK {
			t.Fatalf("keepalive %d/%d status %d, want OK", i, n, resp.Status)
		}
	}
	rc.expectSilence(200 * time.Millisecond)
}
