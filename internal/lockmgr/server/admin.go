package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/introspect"
	"fairrw/internal/stats"
)

// The admin plane: a live HTTP view of the lock service. One handler
// serves the same metrics in two encodings — Prometheus text for
// scrapers and JSON (the manager snapshot schema the wire Stats op and
// -metrics files already use, extended with worker and hot-lock tables)
// — plus the flight recorder and net/http/pprof. Every endpoint reads
// through the same lock-free counters the request path updates, so a
// scrape never stops a worker loop.

// defaultHotLocks is the hot-lock table depth served when a request
// does not pass ?k=.
const defaultHotLocks = 20

// BuildInfo identifies the running binary so every metrics payload (and
// each bench JSON row derived from one) is attributable to a build.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

// WorkerStats is one event-loop worker's counters at a scrape.
type WorkerStats struct {
	Worker       int     `json:"worker"`
	Conns        int64   `json:"conns"`
	Wakeups      uint64  `json:"wakeups"`
	Donations    uint64  `json:"donations"`
	Batches      uint64  `json:"batches"`
	BatchOps     uint64  `json:"batch_ops"`
	Parks        uint64  `json:"parks"`
	Unparks      uint64  `json:"unparks"`
	Condemned    uint64  `json:"condemned"`
	Drained      uint64  `json:"drained"`
	Flushes      uint64  `json:"flushes"`
	FlushStalls  uint64  `json:"flush_stalls"`
	FlushStallUS float64 `json:"flush_stall_us"`
	Backpressure uint64  `json:"backpressure"`

	// Shard-affinity counters: the cross-worker forwarding plane.
	HomeOps      uint64 `json:"home_ops"`      // named ops decoded on their home worker
	FwdRuns      uint64 `json:"fwd_runs"`      // runs forwarded to a peer
	FwdOps       uint64 `json:"fwd_ops"`       // ops summed over those runs
	FwdIn        uint64 `json:"fwd_in"`        // foreign ops executed for peers
	FwdInline    uint64 `json:"fwd_inline"`    // peer cycles run inline after a forward
	FwdFallbacks uint64 `json:"fwd_fallbacks"` // runs executed locally (ring full/draining)
	RingDepth    uint64 `json:"ring_depth"`    // published-but-unconsumed inbound runs
	OutBlocked   uint64 `json:"out_blocked"`   // parse pauses on the flusher backlog bound

	// Flusher-stage counters: the writev plane.
	Writevs          uint64 `json:"writevs"`           // writev passes issued
	WritevChunks     uint64 `json:"writev_chunks"`     // per-conn chunks summed over passes
	WritevBytes      uint64 `json:"writev_bytes"`      // bytes written by the stage
	FlushEscalations uint64 `json:"flush_escalations"` // passes handed to a dedicated writer
	WriteErrs        uint64 `json:"write_errs"`        // conns condemned on write errors
}

// WorkerStats snapshots every worker's event-loop counters.
func (s *Server) WorkerStats() []WorkerStats {
	out := make([]WorkerStats, len(s.workers))
	for i, w := range s.workers {
		out[i] = WorkerStats{
			Worker:       w.idx,
			Conns:        w.st.conns.Load(),
			Wakeups:      w.st.wakeups.Load(),
			Donations:    w.st.donations.Load(),
			Batches:      w.st.batches.Load(),
			BatchOps:     w.st.batchOps.Load(),
			Parks:        w.st.parks.Load(),
			Unparks:      w.st.unparks.Load(),
			Condemned:    w.st.condemned.Load(),
			Drained:      w.st.drained.Load(),
			Flushes:      w.st.flushes.Load(),
			FlushStalls:  w.st.flushStalls.Load(),
			FlushStallUS: float64(w.st.flushStallNS.Load()) / 1e3,
			Backpressure: w.st.backpressure.Load(),

			HomeOps:      w.st.homeOps.Load(),
			FwdRuns:      w.st.fwdRuns.Load(),
			FwdOps:       w.st.fwdOps.Load(),
			FwdIn:        w.st.fwdIn.Load(),
			FwdInline:    w.st.fwdInline.Load(),
			FwdFallbacks: w.st.fwdFallbacks.Load(),
			RingDepth:    w.ring.depth(),
			OutBlocked:   w.st.outBlocked.Load(),

			Writevs:          w.fl.writevs.Load(),
			WritevChunks:     w.fl.writevBufs.Load(),
			WritevBytes:      w.fl.writevBytes.Load(),
			FlushEscalations: w.fl.escalations.Load(),
			WriteErrs:        w.fl.writeErrs.Load(),
		}
	}
	return out
}

// BatchSizeHistogram merges the per-worker ops-per-batch histograms.
func (s *Server) BatchSizeHistogram() stats.Histogram {
	var h stats.Histogram
	for _, w := range s.workers {
		w.bhMu.Lock()
		wh := w.batchH
		w.bhMu.Unlock()
		h.Merge(&wh)
	}
	return h
}

// WritevSizeHistogram merges the per-flusher chunks-per-writev
// histograms: how many per-conn response chunks each flusher pass
// coalesced into one writev.
func (s *Server) WritevSizeHistogram() stats.Histogram {
	var h stats.Histogram
	for _, w := range s.workers {
		w.fl.wvMu.Lock()
		wh := w.fl.wvH
		w.fl.wvMu.Unlock()
		h.Merge(&wh)
	}
	return h
}

// Recorder returns the server's flight recorder (nil when disabled).
func (s *Server) Recorder() *introspect.Recorder { return s.rec }

// MetricsPayload is the admin plane's JSON document, also what
// cmd/lockd writes as its -metrics file.
type MetricsPayload struct {
	Build    BuildInfo             `json:"build"`
	Affinity bool                  `json:"affinity"`
	Manager  lockmgr.Snapshot      `json:"manager"`
	Workers  []WorkerStats         `json:"workers"`
	HotLocks []lockmgr.LockProfile `json:"hot_locks"`

	// Cluster shape, present only on clustered servers: the membership
	// epoch and member count at the scrape. The full document — shares,
	// heartbeat ages, quarantines — lives on /cluster.
	ClusterEpoch   uint64 `json:"cluster_epoch,omitempty"`
	ClusterMembers int    `json:"cluster_members,omitempty"`
}

// Metrics assembles the full observability payload.
func (s *Server) Metrics(bi BuildInfo, topK int) MetricsPayload {
	p := MetricsPayload{
		Build:    bi,
		Affinity: s.Affinity(),
		Manager:  s.m.Stats(),
		Workers:  s.WorkerStats(),
		HotLocks: s.m.HotLocks(topK),
	}
	if s.cluster != nil {
		p.ClusterEpoch = s.cluster.Epoch()
		p.ClusterMembers = s.cluster.MemberCount()
	}
	return p
}

// WriteProm renders the full metrics set in the Prometheus text
// exposition format: manager counters and gauges, wait/hold/batch-size
// histograms, per-worker series labelled worker="i", and the top-k
// hot-lock table labelled by lock name.
func (s *Server) WriteProm(w io.Writer, bi BuildInfo, topK int) {
	snap := s.m.Stats()
	pw := &introspect.PromWriter{W: w}

	pw.Gauge("lockd_build_info", fmt.Sprintf(`version=%q,go=%q`, bi.Version, bi.GoVersion), 1)

	pw.Counter("lockd_shared_grants_total", "", snap.SharedGrants)
	pw.Counter("lockd_excl_grants_total", "", snap.ExclGrants)
	pw.Counter("lockd_releases_total", "", snap.Releases)
	pw.Counter("lockd_timeouts_total", "", snap.Timeouts)
	pw.Counter("lockd_keepalives_total", "", snap.Keepalives)
	pw.Counter("lockd_sessions_opened_total", "", snap.SessionsOpened)
	pw.Counter("lockd_sessions_closed_total", "", snap.SessionsClosed)
	pw.Counter("lockd_lease_expirations_total", "", snap.LeaseExpirations)
	pw.Counter("lockd_revoked_holds_total", "", snap.RevokedHolds)
	pw.Counter("lockd_entries_created_total", "", snap.EntriesCreated)
	pw.Counter("lockd_entries_gced_total", "", snap.EntriesGCed)
	pw.Counter("lockd_cohort_grants_total", "", snap.CohortGrants)
	pw.Gauge("lockd_cohort_batch", "", float64(snap.CohortBatch))
	pw.Gauge("lockd_entries", "", float64(snap.Entries))
	pw.Gauge("lockd_sessions", "", float64(snap.Sessions))
	pw.Gauge("lockd_waiting", "", float64(snap.Waiting))

	pw.Gauge("lockd_affinity", "", boolGauge(s.Affinity()))

	if s.cluster != nil {
		pw.Gauge("lockd_cluster_epoch", "", float64(s.cluster.Epoch()))
		pw.Gauge("lockd_cluster_members", "", float64(s.cluster.MemberCount()))
	}

	wh := s.m.WaitHistogram()
	wh.WriteProm(w, "lockd_wait_seconds", "", 1e-9)
	hh := s.m.HoldHistogram()
	hh.WriteProm(w, "lockd_hold_seconds", "", 1e-9)
	bh := s.BatchSizeHistogram()
	bh.WriteProm(w, "lockd_batch_ops", "", 1)
	wvh := s.WritevSizeHistogram()
	wvh.WriteProm(w, "lockd_writev_chunks", "", 1)

	for _, ws := range s.WorkerStats() {
		l := fmt.Sprintf(`worker="%d"`, ws.Worker)
		pw.Gauge("lockd_worker_conns", l, float64(ws.Conns))
		pw.Counter("lockd_worker_wakeups_total", l, ws.Wakeups)
		pw.Counter("lockd_worker_donations_total", l, ws.Donations)
		pw.Counter("lockd_worker_batches_total", l, ws.Batches)
		pw.Counter("lockd_worker_batch_ops_total", l, ws.BatchOps)
		pw.Counter("lockd_worker_parks_total", l, ws.Parks)
		pw.Counter("lockd_worker_unparks_total", l, ws.Unparks)
		pw.Counter("lockd_worker_condemned_total", l, ws.Condemned)
		pw.Counter("lockd_worker_drained_total", l, ws.Drained)
		pw.Counter("lockd_worker_flushes_total", l, ws.Flushes)
		pw.Counter("lockd_worker_flush_stalls_total", l, ws.FlushStalls)
		pw.Gauge("lockd_worker_flush_stall_seconds_total", l, ws.FlushStallUS*1e-6)
		pw.Counter("lockd_worker_backpressure_total", l, ws.Backpressure)
		pw.Counter("lockd_worker_home_ops_total", l, ws.HomeOps)
		pw.Counter("lockd_worker_fwd_runs_total", l, ws.FwdRuns)
		pw.Counter("lockd_worker_fwd_ops_total", l, ws.FwdOps)
		pw.Counter("lockd_worker_fwd_in_total", l, ws.FwdIn)
		pw.Counter("lockd_worker_fwd_inline_total", l, ws.FwdInline)
		pw.Counter("lockd_worker_fwd_fallbacks_total", l, ws.FwdFallbacks)
		pw.Gauge("lockd_worker_ring_depth", l, float64(ws.RingDepth))
		pw.Counter("lockd_worker_out_blocked_total", l, ws.OutBlocked)
		pw.Counter("lockd_worker_writevs_total", l, ws.Writevs)
		pw.Counter("lockd_worker_writev_chunks_total", l, ws.WritevChunks)
		pw.Counter("lockd_worker_writev_bytes_total", l, ws.WritevBytes)
		pw.Counter("lockd_worker_flush_escalations_total", l, ws.FlushEscalations)
		pw.Counter("lockd_worker_write_errs_total", l, ws.WriteErrs)
	}

	for _, hl := range s.m.HotLocks(topK) {
		l := fmt.Sprintf(`lock="%s"`, introspect.EscapeLabel(hl.Name))
		pw.Counter("lockd_hot_lock_acquires_total", l, hl.Acquires)
		pw.Gauge("lockd_hot_lock_wait_seconds_total", l, hl.WaitTotalUS*1e-6)
		pw.Gauge("lockd_hot_lock_wait_max_seconds", l, hl.WaitMaxUS*1e-6)
		pw.Gauge("lockd_hot_lock_queue_len", l, float64(hl.QueueLen))
	}
}

// AdminHandler returns the admin-plane HTTP handler:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   MetricsPayload as JSON (?k= hot-lock depth)
//	/hotlocks       the hot-lock table alone (?k= depth)
//	/cluster        cluster membership, shares, heartbeat ages (JSON)
//	/flight         flight-recorder dump, oldest event first
//	/debug/pprof/   the standard net/http/pprof surface
//
// Mount it on its own listener (lockd -admin): it is an operator
// surface and shares nothing with the wire-protocol port.
func (s *Server) AdminHandler(bi BuildInfo) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteProm(w, bi, hotK(r))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(s.Metrics(bi, hotK(r)))
	})
	mux.HandleFunc("/hotlocks", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(s.m.HotLocks(hotK(r)))
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s.cluster == nil {
			fmt.Fprintln(w, `{"clustered":false}`)
			return
		}
		doc, err := s.cluster.StatusJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(doc)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.rec == nil {
			fmt.Fprintln(w, "(flight recorder disabled)")
			return
		}
		s.rec.Dump(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// boolGauge renders a bool as the conventional 0/1 gauge value.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// hotK parses the ?k= hot-lock depth, defaulting to defaultHotLocks.
func hotK(r *http.Request) int {
	if v := r.URL.Query().Get("k"); v != "" {
		if k, err := strconv.Atoi(v); err == nil && k > 0 {
			return k
		}
	}
	return defaultHotLocks
}
