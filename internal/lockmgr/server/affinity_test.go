package server

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
	"fairrw/internal/lockmgr/wire"
)

// startServerCfg is startServer with an explicit server Config, for
// tests that pin worker count, affinity mode, or flusher budgets.
func startServerCfg(t *testing.T, mcfg lockmgr.Config, scfg Config) (addr string, srv *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv = NewWithConfig(lockmgr.New(mcfg), scfg)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		select {
		case err := <-served:
			if err != nil {
				t.Errorf("Serve returned %v after drain, want nil", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return ln.Addr().String(), srv
}

// nameHomedAt brute-forces a lock name whose shard is owned by worker
// home (distinct from any name already in taken).
func nameHomedAt(t *testing.T, srv *Server, home int, taken map[string]bool) string {
	t.Helper()
	if srv.owner == nil {
		t.Fatal("server has no affinity owner table")
	}
	for i := 0; i < 1<<16; i++ {
		name := fmt.Sprintf("aff-%d-%d", home, i)
		if taken[name] {
			continue
		}
		if int(srv.owner[srv.m.ShardIndex([]byte(name))]) == home {
			taken[name] = true
			return name
		}
	}
	t.Fatalf("no name hashes home to worker %d", home)
	return ""
}

// TestCrossWorkerOrdering pins per-connection response order when
// pipelined ops on one connection hash to different home workers —
// including frames deferred behind a park that itself resolved through
// a forwarded run. The routing machinery may bounce ops across three
// workers, but the client must see exactly one response per request, in
// request order, with nothing delivered while the acquire is parked.
func TestCrossWorkerOrdering(t *testing.T) {
	mcfg := testCfg()
	mcfg.Shards = 8
	addr, srv := startServerCfg(t, mcfg, Config{Workers: 4})
	if got := srv.Workers(); got != 4 {
		t.Fatalf("workers = %d, want 4", got)
	}
	if !srv.Affinity() {
		t.Fatal("affinity should be on by default")
	}

	rc := dialRaw(t, addr)
	sid := rc.open(t, time.Minute)
	sc := findServerConn(t, srv, rc.nc.LocalAddr())
	me := sc.w.idx

	// Three keys homed on three workers, none of them the conn's owner,
	// so every named op below crosses a ring.
	taken := map[string]bool{}
	kA := nameHomedAt(t, srv, (me+1)%4, taken)
	kH := nameHomedAt(t, srv, (me+2)%4, taken)
	kB := nameHomedAt(t, srv, (me+3)%4, taken)

	holder := dial(t, addr)
	hsid, err := holder.Open(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Acquire(hsid, kH, true, 0); err != nil {
		t.Fatal(err)
	}

	// One write, five frames spanning three homes. The kH acquire parks
	// (via a forwarded run executed on its home worker); everything
	// behind it must wait for the grant, then answer in order. The
	// not-held release gives frame 4 a distinguishable status, so any
	// reordering shows up as the wrong status sequence, not just a
	// count mismatch.
	rc.write(
		&wire.Request{Op: wire.OpAcquire, SID: sid, Excl: true, Name: kA},
		&wire.Request{Op: wire.OpAcquire, SID: sid, Excl: true, Wait: -1, Name: kH},
		&wire.Request{Op: wire.OpRelease, SID: sid, Excl: true, Name: kA},
		&wire.Request{Op: wire.OpRelease, SID: sid, Excl: true, Name: kB},
		&wire.Request{Op: wire.OpKeepAlive, SID: sid, Lease: int64(time.Minute)},
	)

	// Frame 1 answers immediately; frame 2 parks; frames 3-5 defer.
	if resp := rc.read(5 * time.Second); resp.Status != wire.StatusOK {
		t.Fatalf("acquire %s status %d, want OK", kA, resp.Status)
	}
	waitForWaiting(t, addr, 1)
	rc.expectSilence(200 * time.Millisecond)

	if err := holder.Release(hsid, kH, true); err != nil {
		t.Fatal(err)
	}

	want := []wire.Status{wire.StatusOK, wire.StatusOK, wire.StatusNotHeld, wire.StatusOK}
	for i, ws := range want {
		if resp := rc.read(5 * time.Second); resp.Status != ws {
			t.Fatalf("deferred response %d status %d, want %d", i, resp.Status, ws)
		}
	}
	rc.expectSilence(200 * time.Millisecond)

	// The ops above really crossed workers: runs were forwarded and
	// executed remotely (inline donation still counts as a forward).
	var fwdRuns, fwdIn uint64
	for _, ws := range srv.WorkerStats() {
		fwdRuns += ws.FwdRuns
		fwdIn += ws.FwdIn
	}
	if fwdRuns == 0 || fwdIn == 0 {
		t.Fatalf("no cross-worker forwarding observed (fwd_runs=%d fwd_in=%d)", fwdRuns, fwdIn)
	}
}

// TestAffinityOffNoForwarding asserts the -affinity off switch: with
// NoAffinity every worker executes everything it decodes and the
// forwarding plane stays untouched.
func TestAffinityOffNoForwarding(t *testing.T) {
	addr, srv := startServerCfg(t, testCfg(), Config{Workers: 4, NoAffinity: true})
	if srv.Affinity() {
		t.Fatal("affinity should be off")
	}
	c := dial(t, addr)
	sid, err := c.Open(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("k-%d", i)
		if err := c.Acquire(sid, name, true, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Release(sid, name, true); err != nil {
			t.Fatal(err)
		}
	}
	for _, ws := range srv.WorkerStats() {
		if ws.FwdRuns != 0 || ws.FwdIn != 0 {
			t.Fatalf("worker %d forwarded with affinity off: %+v", ws.Worker, ws)
		}
	}
}

// TestForwardDrainCondemnHammer is the -race stress for the forwarding
// plane against connection lifecycle: many connections pipeline
// cross-worker op mixes over a tiny keyspace (forcing forwarded runs,
// parks, and contention) while some streams are cut mid-flight
// (condemn/RST paths) and the rest drain cleanly through Shutdown. Run
// it under -race at GOMAXPROCS>=4 to hunt ring and drain ordering
// races; the assertions are liveness (every surviving request answers)
// and a clean global drain.
func TestForwardDrainCondemnHammer(t *testing.T) {
	mcfg := testCfg()
	mcfg.Shards = 16
	addr, _ := startServerCfg(t, mcfg, Config{Workers: 4})

	const clients = 8
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			if g%4 == 3 {
				// Rude client: pipeline a burst, then slam the socket shut
				// without reading a single response. The bogus SID keeps it
				// from mutating real sessions' lock state — every acquire
				// still routes through its home worker before failing.
				nc, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				var buf []byte
				buf, _ = wire.AppendRequestFrame(buf, &wire.Request{Op: wire.OpOpen, Lease: int64(time.Minute)})
				for i := 0; i < iters; i++ {
					buf, _ = wire.AppendRequestFrame(buf, &wire.Request{
						Op: wire.OpAcquire, SID: 1 << 60, Excl: true, Name: fmt.Sprintf("h-%d", rng.Intn(8))})
				}
				nc.Write(buf)
				time.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
				nc.Close()
				return
			}
			c, err := client.Dial(addr)
			if err != nil {
				t.Errorf("client %d dial: %v", g, err)
				return
			}
			defer c.Close()
			sid, err := c.Open(time.Minute)
			if err != nil {
				t.Errorf("client %d open: %v", g, err)
				return
			}
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("h-%d", rng.Intn(8))
				excl := rng.Intn(4) != 0
				if err := c.Acquire(sid, name, excl, time.Second); err != nil {
					t.Errorf("client %d acquire %s: %v", g, name, err)
					return
				}
				if err := c.Release(sid, name, excl); err != nil {
					t.Errorf("client %d release %s: %v", g, name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Shutdown (with its global drain-exit condition) runs in cleanup
	// and asserts Serve returns; a forwarding-vs-drain deadlock shows up
	// there as the 10s watchdog firing.
}
