package server

import (
	"net"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
)

// BenchmarkAcquireRelease measures one closed-loop acquire+release pair
// over loopback TCP — the per-op cost cmd/lockload's throughput is built
// from (two wire round trips per iteration).
func BenchmarkAcquireRelease(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := New(lockmgr.New(lockmgr.Config{}))
	go srv.Serve(ln)
	defer srv.Shutdown(time.Second)

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	sid, err := c.Open(time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Acquire(sid, "bench-key", false, time.Second); err != nil {
			b.Fatal(err)
		}
		if err := c.Release(sid, "bench-key", false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAcquireReleasePipelined is the same pair with the release and
// the next acquire pipelined into one write (what cmd/lockload does).
func BenchmarkAcquireReleasePipelined(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := New(lockmgr.New(lockmgr.Config{}))
	go srv.Serve(ln)
	defer srv.Shutdown(time.Second)

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	sid, err := c.Open(time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Acquire(sid, "bench-key", false, time.Second); err != nil {
		b.Fatal(err)
	}
	var errs []error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.QueueRelease(sid, "bench-key", false)
		c.QueueAcquire(sid, "bench-key", false, time.Second)
		errs, err = c.Flush(errs[:0])
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range errs {
			if e != nil {
				b.Fatal(e)
			}
		}
	}
}

// BenchmarkManagerAcquireRelease is the same pair without the network:
// the manager's own overhead per acquire+release.
func BenchmarkManagerAcquireRelease(b *testing.B) {
	m := lockmgr.New(lockmgr.Config{})
	defer m.Close()
	sid, err := m.Open(time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Acquire(sid, "bench-key", false, time.Second); err != nil {
			b.Fatal(err)
		}
		if err := m.Release(sid, "bench-key", false); err != nil {
			b.Fatal(err)
		}
	}
}
