package server

import (
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/wire"
)

// quietCfg is a manager config with every background period pushed out
// past the test's lifetime, so the sweeper cannot allocate (or collect
// the lock entry under test) while AllocsPerRun is counting mallocs —
// the counter is process-global, not per-goroutine.
func quietCfg() lockmgr.Config {
	return lockmgr.Config{
		Shards:        8,
		SweepInterval: time.Hour,
		DefaultLease:  time.Hour,
		MaxLease:      time.Hour,
		IdleTTL:       time.Hour,
	}
}

// TestForwardRoundTripAllocs pins the steady-state forward→execute→
// reap round trip at zero allocations: parse a foreign run, push it
// through the home worker's ring via the inline-donation path, and
// encode the completed responses — all without a single malloc. This is
// the affinity tentpole's hot path; an allocation here is paid once per
// cross-worker run at saturation.
//
// The test is the loop: it holds the source worker's loopMu for the
// duration (being the loop, exactly as a donating reader goroutine
// would) and drives parseConn/reapFwd directly against a fabricated
// conn, so the whole trip runs synchronously on this goroutine.
func TestForwardRoundTripAllocs(t *testing.T) {
	srv := NewWithConfig(lockmgr.New(quietCfg()), Config{Workers: 2})
	defer srv.Shutdown(time.Second)
	if !srv.Affinity() || srv.Workers() != 2 {
		t.Fatalf("want 2 workers with affinity, got %d affinity=%v", srv.Workers(), srv.Affinity())
	}
	sid, err := srv.m.Open(time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// A name homed on worker 1, parsed by worker 0: every op forwards.
	var name string
	for i := 0; ; i++ {
		name = "fwd-alloc-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if srv.owner[srv.m.ShardIndex([]byte(name))] == 1 {
			break
		}
	}

	var frames []byte
	frames, _ = wire.AppendRequestFrame(frames, &wire.Request{Op: wire.OpAcquire, SID: sid, Excl: true, Name: name})
	frames, _ = wire.AppendRequestFrame(frames, &wire.Request{Op: wire.OpRelease, SID: sid, Excl: true, Name: name})

	src := srv.workers[0]
	c := &conn{id: 1, w: src}
	c.cond = sync.NewCond(&c.mu)
	wb := wire.GetBuffer()
	c.wb, c.wbuf = wb, wb.B

	src.loopMu.Lock()
	defer src.loopMu.Unlock()

	trip := func() {
		c.pending = append(c.pending[:0], frames...)
		c.parsePos = 0
		src.parseConn(c) // builds the run, dispatches, usually donates inline
		for c.fwd.state.Load() != fwdDone {
			runtime.Gosched() // home loop was busy; it will nudge via its own cycle
		}
		src.reapFwd() // finishRun: encode both responses into c.wbuf
		if len(c.wbuf) == 0 {
			t.Fatal("no responses encoded")
		}
		c.wbuf = c.wbuf[:0]
		c.inReady = false
		src.ready = src.ready[:0]
	}
	for i := 0; i < 64; i++ {
		trip() // warm: run record, batch scratch, wbuf, conn registration
	}
	if allocs := testing.AllocsPerRun(100, trip); allocs != 0 {
		t.Fatalf("forward round trip allocates %.1f times per op run, want 0", allocs)
	}
	fwd := src.st.fwdRuns.Load()
	if fwd == 0 {
		t.Fatal("runs were not forwarded")
	}
	if fb := src.st.fwdFallbacks.Load(); fb != 0 {
		t.Fatalf("%d runs fell back to local execution", fb)
	}
}

// TestWritevFlushPassAllocs pins one flusher writev pass — take the
// queued chunks, one net.Buffers WriteTo, release the pooled owners —
// at zero allocations in steady state. The peer drains continuously so
// no pass ever escalates.
func TestWritevFlushPassAllocs(t *testing.T) {
	srv := NewWithConfig(lockmgr.New(quietCfg()), Config{Workers: 1, FlushPass: time.Second})
	defer srv.Shutdown(time.Second)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err == nil {
			accepted <- nc
		}
	}()
	peer, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	go io.Copy(io.Discard, peer) // the healthy reader: writevs never stall
	var nc net.Conn
	select {
	case nc = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	defer nc.Close()

	w := srv.workers[0]
	f := w.fl
	c := &conn{id: 1, nc: nc, w: w}
	c.cond = sync.NewCond(&c.mu)

	var chunk [256]byte // one coalesced response chunk's worth of bytes
	pass := func() {
		wb := wire.GetBuffer()
		wb.B = append(wb.B, chunk[:]...)
		c.outBytes.Add(int64(len(wb.B)))
		c.fmu.Lock()
		c.outq = append(c.outq, wb.B)
		c.outb = append(c.outb, wb)
		c.fqueued = true // we are the single servicer for this conn
		c.fmu.Unlock()
		f.service(c)
		if c.writeFailed.Load() {
			t.Fatal("writev pass condemned the conn")
		}
	}
	for i := 0; i < 64; i++ {
		pass() // warm: deadline timer, iovec cache, double-buffer arrays
	}
	if allocs := testing.AllocsPerRun(100, pass); allocs != 0 {
		t.Fatalf("writev flush pass allocates %.1f times, want 0", allocs)
	}
	if esc := f.escalations.Load(); esc != 0 {
		t.Fatalf("%d passes escalated against a draining peer", esc)
	}
}
