package server

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fairrw/internal/lockmgr/wire"
	"fairrw/internal/stats"
)

// flusher is one worker's write stage: it takes socket writes out from
// under loopMu. The worker's flush() hands each touched conn's
// coalesced response chunk to the flusher and returns immediately; the
// flusher snapshots the conn's queued chunks into a net.Buffers and
// writes them with one writev, preserving per-conn order (chunks are
// appended in loop order and drained FIFO by a single servicer).
//
// A stalled peer — zero receive window — can no longer stall the loop:
// the flusher's per-pass write deadline (Config.FlushPass) bounds how
// long one conn may occupy the stage, after which the remainder of its
// backlog escalates to a dedicated writer goroutine with the full
// WriteTimeout budget. Other conns on the same worker therefore wait at
// most one flusher pass behind a stuck socket, and a conn that exhausts
// even the escalated budget is condemned (writeFailed) exactly as a
// failed in-loop write used to be.
type flusher struct {
	w *worker

	mu      sync.Mutex
	backlog []*conn       // conns with queued chunks, FIFO
	swap    []*conn       // double-buffer for the drain loop
	kick    chan struct{} // cap-1 nudge: backlog became non-empty

	writevs     atomic.Uint64 // writev passes issued
	writevBufs  atomic.Uint64 // chunks summed over those passes
	writevBytes atomic.Uint64 // bytes summed over those passes
	escalations atomic.Uint64 // passes that hit FlushPass and went to a goroutine
	writeErrs   atomic.Uint64 // conns condemned on a write error

	wvMu sync.Mutex
	wvH  stats.Histogram // chunks per writev pass
}

func newFlusher(w *worker) *flusher {
	return &flusher{w: w, kick: make(chan struct{}, 1)}
}

// enqueue schedules c for a flusher pass. Worker only, called with the
// conn's first chunk already appended under fmu and fqueued freshly
// set; the unbounded backlog slice (not a fixed-cap channel) means a
// handoff can never be dropped or block the loop.
func (f *flusher) enqueue(c *conn) {
	f.mu.Lock()
	f.backlog = append(f.backlog, c)
	f.mu.Unlock()
	select {
	case f.kick <- struct{}{}:
	default:
	}
}

// run is the flusher goroutine. It exits once the worker is dead and
// the backlog is drained — every chunk handed off before the worker
// exited is still written (or condemned), which is what keeps the
// drain's flush-before-close promise.
func (f *flusher) run() {
	defer f.w.srv.wg.Done()
	dead := f.w.dead
	for {
		f.mu.Lock()
		batch := f.backlog
		f.backlog = f.swap[:0]
		f.swap = batch
		f.mu.Unlock()
		for _, c := range batch {
			f.service(c)
		}
		if len(batch) > 0 {
			continue // drain fully before sleeping
		}
		if dead == nil {
			return
		}
		select {
		case <-f.kick:
		case <-dead:
			// Final sweep: anything enqueued before dead closed is in the
			// backlog (enqueue appends under mu before the worker exits).
			dead = nil
		}
	}
}

// service writes c's queued chunks until none remain, then either
// requeues nothing (fqueued drops) or performs the deferred close the
// worker asked for. Exactly one goroutine services a conn at a time:
// fqueued stays true from the worker's handoff until this loop (or its
// escalation) observes an empty queue, so the worker never double-
// enqueues and order is preserved.
func (f *flusher) service(c *conn) {
	for {
		c.fmu.Lock()
		if c.fdropped {
			f.discardLocked(c)
			c.fqueued = false
			c.fmu.Unlock()
			return
		}
		if len(c.outq) == 0 {
			c.fqueued = false
			closeNow := c.closeOnFlush
			if closeNow {
				c.fdropped = true
			}
			c.fmu.Unlock()
			if closeNow {
				c.nc.Close()
			}
			return
		}
		// Take the queued chunks, leaving the alternate array for the
		// worker to fill; the arrays swap roles every pass so the steady
		// state allocates nothing.
		bufs, owners := c.outq, c.outb
		c.outq, c.outb = c.outqAlt[:0], c.outbAlt[:0]
		c.outqAlt, c.outbAlt = bufs, owners
		c.fmu.Unlock()

		if !f.writePass(c, bufs, owners, false) {
			return // escalated or condemned; servicing continues elsewhere
		}
	}
}

// writePass issues one writev for bufs with the per-pass deadline.
// Returns true when the chunks were fully written and freed; false when
// the pass handed the conn to an escalation goroutine or condemned it.
// escalated marks the retry under the full WriteTimeout budget.
func (f *flusher) writePass(c *conn, bufs [][]byte, owners []*wire.Buffer, escalated bool) bool {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	budget := f.w.srv.cfg.FlushPass
	if escalated {
		budget = f.w.srv.cfg.WriteTimeout
	}
	c.nc.SetWriteDeadline(time.Now().Add(budget))
	c.wv = net.Buffers(bufs)
	n, err := c.wv.WriteTo(c.nc)

	f.writevs.Add(1)
	f.writevBufs.Add(uint64(len(bufs)))
	f.writevBytes.Add(uint64(n))
	f.wvMu.Lock()
	f.wvH.Add(uint64(len(bufs)))
	f.wvMu.Unlock()

	if err == nil {
		c.wv = nil
		f.release(c, owners, total)
		return true
	}
	if !escalated {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			// The peer's receive window closed mid-pass. Hand the remainder
			// (c.wv was consumed in place by WriteTo) to a dedicated writer
			// so the flusher moves on to this worker's other conns. owners
			// are freed — and the pass's bytes retired from the backlog
			// accounting — only once every chunk is down, so the partially-
			// written head chunk stays alive.
			f.escalations.Add(1)
			f.w.st.flushStalls.Add(1)
			rest := c.wv
			c.wv = nil
			go f.escalate(c, rest, owners, total)
			return false
		}
	}
	c.wv = nil
	f.condemn(c, owners, total)
	return false
}

// escalate finishes a stalled conn's backlog on its own goroutine with
// the full WriteTimeout budget, then resumes normal servicing (more
// chunks may have queued behind the stall). total is the whole pass's
// byte count: the accounting for it is settled here, by release or
// condemn, never split across the passes.
func (f *flusher) escalate(c *conn, nb net.Buffers, owners []*wire.Buffer, total int) {
	start := time.Now()
	c.nc.SetWriteDeadline(start.Add(f.w.srv.cfg.WriteTimeout))
	_, err := nb.WriteTo(c.nc)
	f.w.st.flushStallNS.Add(uint64(time.Since(start)))
	if err != nil {
		f.condemn(c, owners, total)
		return
	}
	f.release(c, owners, total)
	f.service(c)
}

// release frees a fully-written pass's chunk owners and retires the
// bytes from the conn's backlog accounting, nudging the worker if the
// conn was parse-paused over maxOutq and has now drained under it.
func (f *flusher) release(c *conn, owners []*wire.Buffer, written int) {
	for i, wb := range owners {
		owners[i] = nil
		wb.Free()
	}
	was := c.outBytes.Add(int64(-written)) + int64(written)
	if was > maxOutq && was-int64(written) <= maxOutq {
		f.w.wake(c)
	}
}

// condemn retires a conn whose socket failed: drop its remaining
// chunks, mark the failure for the worker, close the socket (which also
// kicks the reader out of its blocking Read), and wake the worker so
// cleanup runs even if the reader is already gone.
func (f *flusher) condemn(c *conn, owners []*wire.Buffer, remaining int) {
	f.writeErrs.Add(1)
	for i, wb := range owners {
		owners[i] = nil
		wb.Free()
	}
	c.outBytes.Add(int64(-remaining))
	c.fmu.Lock()
	f.discardLocked(c)
	c.fdropped = true
	c.fqueued = false
	c.fmu.Unlock()
	c.writeFailed.Store(true)
	c.nc.Close()
	f.w.wake(c)
}

// discardLocked frees every chunk still queued. Caller holds c.fmu.
func (f *flusher) discardLocked(c *conn) {
	drop := 0
	for _, b := range c.outq {
		drop += len(b)
	}
	for i, wb := range c.outb {
		c.outb[i] = nil
		wb.Free()
	}
	c.outq = c.outq[:0]
	c.outb = c.outb[:0]
	if drop > 0 {
		c.outBytes.Add(int64(-drop))
	}
}
