package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
)

// waitForWaiting polls the stats endpoint until the server reports n
// parked waiters.
func waitForWaiting(t *testing.T, addr string, n int64) {
	t.Helper()
	probe := dial(t, addr)
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw, err := probe.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		var snap lockmgr.Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Waiting == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d waiters (waiting=%d)", n, snap.Waiting)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainFlushesParkedAndDeferred is the drain-ordering regression
// test for the event-loop runtime: a pipelined burst whose second frame
// parks leaves its later frames deferred in the per-connection buffer
// and their eventual responses coalesced in the connection's write
// buffer. A graceful shutdown must resolve the parked acquire, execute
// the deferred frames, and flush every response — in request order —
// before the socket closes. Losing any of them (or closing first) is
// exactly the bug this guards against.
func TestDrainFlushesParkedAndDeferred(t *testing.T) {
	addr, srv := startServer(t, testCfg())

	holder := dial(t, addr)
	hsid, err := holder.Open(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Acquire(hsid, "k", true, 0); err != nil {
		t.Fatal(err)
	}

	burst := dial(t, addr)
	bsid, err := burst.Open(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// One write, four frames: grant, park, then two deferred behind the
	// park. Flush blocks reading responses until the drain resolves them.
	if err := burst.QueueAcquire(bsid, "x", true, 0); err != nil {
		t.Fatal(err)
	}
	if err := burst.QueueAcquire(bsid, "k", true, -1); err != nil {
		t.Fatal(err)
	}
	if err := burst.QueueRelease(bsid, "x", true); err != nil {
		t.Fatal(err)
	}
	if err := burst.QueueAcquire(bsid, "y", false, 0); err != nil {
		t.Fatal(err)
	}
	type result struct {
		errs []error
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		errs, err := burst.Flush(nil)
		resc <- result{errs, err}
	}()

	waitForWaiting(t, addr, 1)
	srv.Shutdown(5 * time.Second)

	res := <-resc
	if res.err != nil {
		t.Fatalf("flush transport error: %v (responses dropped at drain)", res.err)
	}
	// The first acquire was granted before the drain; everything behind
	// the park resolves after m.Close expired the sessions.
	want := []error{nil, lockmgr.ErrExpired, lockmgr.ErrExpired, lockmgr.ErrExpired}
	if len(res.errs) != len(want) {
		t.Fatalf("got %d responses, want %d: %v", len(res.errs), len(want), res.errs)
	}
	for i, w := range want {
		if res.errs[i] != w {
			t.Fatalf("response %d: got %v, want %v", i, res.errs[i], w)
		}
	}
}

// TestWireCompatRawBytes pins the on-the-wire encoding with hand-frozen
// bytes, independent of the wire package's encoder: a client built
// against the previous server release must interoperate with this one
// byte for byte. If this test fails, the protocol changed — which this
// runtime rewrite explicitly must not do.
func TestWireCompatRawBytes(t *testing.T) {
	addr, _ := startServer(t, testCfg())
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))

	// OpOpen, sid 0, lease 60s, wait 0, shared, empty name.
	open := []byte{
		0, 0, 0, 28, // frame length: bare 28-byte header
		1,                      // op = OpOpen
		0, 0, 0, 0, 0, 0, 0, 0, // sid
		0, 0, 0, 0x0d, 0xf8, 0x47, 0x58, 0, // lease = 60e9 ns
		0, 0, 0, 0, 0, 0, 0, 0, // wait
		0,    // excl = false
		0, 0, // name length
	}
	if _, err := nc.Write(open); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, 17) // 4 length + 13 header
	if _, err := io.ReadFull(nc, resp); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(resp[:4]); got != 13 {
		t.Fatalf("open response length %d, want 13", got)
	}
	if resp[4] != 1 {
		t.Fatalf("open status %d, want 1 (OK)", resp[4])
	}
	sid := resp[5:13]
	if binary.BigEndian.Uint64(sid) == 0 {
		t.Fatal("open returned sid 0")
	}
	if got := binary.BigEndian.Uint32(resp[13:17]); got != 0 {
		t.Fatalf("open payload length %d, want 0", got)
	}

	// OpAcquire "k" exclusive, try (wait 0), then OpRelease, then an
	// over-release. Every response is a bare 13-byte header whose exact
	// bytes are known in advance.
	frame := func(op byte, excl byte, name string) []byte {
		var b []byte
		b = binary.BigEndian.AppendUint32(b, uint32(28+len(name)))
		b = append(b, op)
		b = append(b, sid...)
		b = append(b, make([]byte, 16)...) // lease, wait
		b = append(b, excl)
		b = binary.BigEndian.AppendUint16(b, uint16(len(name)))
		return append(b, name...)
	}
	okResp := []byte{0, 0, 0, 13, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	notHeldResp := []byte{0, 0, 0, 13, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}

	// Pipelined in one write: the three responses must come back in
	// order (possibly coalesced into one segment — framing still splits
	// them) and byte-identical to the previous release's encoding.
	var burst []byte
	burst = append(burst, frame(4, 1, "k")...) // acquire excl
	burst = append(burst, frame(5, 1, "k")...) // release
	burst = append(burst, frame(5, 1, "k")...) // over-release
	if _, err := nc.Write(burst); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3*17)
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	wantBytes := append(append(append([]byte{}, okResp...), okResp...), notHeldResp...)
	if !bytes.Equal(got, wantBytes) {
		t.Fatalf("pipelined responses:\n got %x\nwant %x", got, wantBytes)
	}
}
