package server

import (
	"net"
	"sync"
	"sync/atomic"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/wire"
)

// maxInbox bounds the bytes a connection may have read-but-unprocessed.
// When the bound is hit — a pipelining client running far ahead of a
// parked acquire — the reader goroutine stops reading, which is exactly
// TCP backpressure: the client's writes eventually block too.
const maxInbox = 256 << 10

// maxOutq bounds the response bytes queued at the flusher for one conn.
// Past it the worker stops parsing the conn (wblocked), the inbox fills
// behind the paused parse, the reader blocks, and TCP backpressure
// reaches the client — the same cascade maxInbox provides on the read
// side. Without this, a client that streams requests but never reads
// responses would grow the flusher queue without bound.
const maxOutq = 256 << 10

// readChunk is the reader's per-syscall buffer. 16 KiB swallows a deep
// pipeline of requests (a request frame is at most 4+1052 bytes) in one
// read.
const readChunk = 16 << 10

// conn is one client connection. Its lifecycle spans three goroutines
// with a strict split of ownership:
//
//   - the reader goroutine reads from the socket into inbox (guarded by
//     mu) and enqueues the conn at its worker;
//   - the owning worker moves inbox into pending, parses frames, and is
//     the only writer to the socket;
//   - Shutdown only touches the net.Conn (deadlines, Close), never the
//     buffers.
type conn struct {
	id int32
	nc net.Conn
	w  *worker

	mu     sync.Mutex
	cond   *sync.Cond // reader waits here while inbox is full
	inbox  []byte     // bytes read, not yet taken by the worker
	queued bool       // conn is sitting in the worker's queue
	eof    bool       // reader finished (EOF, error, or shutdown deadline)
	closed bool       // worker dropped the conn; reader must not block

	// Worker-owned state; no other goroutine touches these.
	pending     []byte       // unparsed frame bytes (inbox is appended here)
	parsePos    int          // parse cursor into pending
	wb          *wire.Buffer // pooled backing store for wbuf
	wbuf        []byte       // encoded responses awaiting the wakeup's flush
	parked      bool         // a blocking acquire is in flight for this conn
	want        uint8        // parse stopped at a frame answered inline between batches
	dead        bool         // connection condemned; cleanup pending
	removed     bool         // retired from the worker; ignore late events
	eofSeen     bool         // worker has observed the reader's eof
	inReady     bool         // already collected into the worker's ready set
	flushMark   bool         // wbuf touched this wakeup; flush before sleeping
	fwdInFlight bool         // a forwarded run is at its home worker
	wblocked    bool         // flusher backlog over maxOutq; parse paused

	// fwd is the conn's forwarding record: the payload behind a *conn
	// pushed onto a home worker's opRing. The source worker fills ops
	// and ends and publishes state=fwdPending; the home worker executes,
	// writes Err/OutSID back into ops in place, and publishes
	// state=fwdDone; the source reaps it on its next wakeup. One record
	// per conn suffices because per-conn order admits at most one
	// outstanding run.
	fwd fwdRun

	// Flusher handoff, guarded by fmu (worker appends, flusher drains).
	fmu          sync.Mutex
	outq         [][]byte       // response chunks awaiting writev, in order
	outb         []*wire.Buffer // pooled owners of outq's chunks
	outqAlt      [][]byte       // double-buffer: the array the flusher is draining
	outbAlt      []*wire.Buffer
	fqueued      bool // conn is queued at (or being serviced by) the flusher
	closeOnFlush bool // worker dropped the conn; flusher closes after draining
	fdropped     bool // flusher-side retirement: discard further chunks

	// wv is the flusher's writev view for the pass in progress. It lives
	// on the conn (already heap-allocated) rather than the stack because
	// net.Buffers.WriteTo takes a pointer receiver through the
	// buffersWriter interface — a stack-local header would escape and
	// cost one allocation per writev pass. Owned by whichever goroutine
	// is servicing the conn (flusher or its escalation).
	wv net.Buffers

	outBytes    atomic.Int64 // bytes in outq not yet written (worker reads for wblocked)
	writeFailed atomic.Bool  // flusher hit a write error; worker must condemn
}

// fwdRun carries one run of consecutive same-home ops from the worker
// that decoded them to the worker that owns their shard. ends[i] is the
// parse cursor just past ops[i]'s frame, so the source can park exactly
// at a would-block acquire when it reaps the completed run.
type fwdRun struct {
	state atomic.Uint32 // fwdFree → fwdPending (source) → fwdDone (home)
	ops   []lockmgr.BatchOp
	ends  []int
}

const (
	fwdFree    = 0
	fwdPending = 1
	fwdDone    = 2
)

// want values: frames the parse loop cannot answer from the batch
// results. They stop the parse (preserving per-connection response
// order) and are answered between batches by answerWant.
const (
	wantNone     = 0
	wantStats    = 1 // OpStats: metrics snapshot JSON
	wantInfo     = 2 // OpClusterInfo: membership payload
	wantNotOwner = 3 // acquire/release gated off by cluster ownership
)

// readLoop is the reader goroutine: blocking (netpoller-driven) reads
// into inbox, waking the owning worker whenever new bytes land. It
// exits on any read error; the final enqueue lets the worker observe
// eof, answer what is already buffered, and reclaim the conn.
func (c *conn) readLoop() {
	buf := make([]byte, readChunk)
	for {
		n, err := c.nc.Read(buf)
		c.mu.Lock()
		if n > 0 {
			if len(c.inbox) > maxInbox && !c.closed {
				// The inbox bound engaged: this reader now blocks, which
				// is what turns a runaway pipelining client into TCP
				// backpressure. Counted once per engagement, not per
				// cond wakeup, so the admin gauge reads as "times a
				// client was throttled".
				c.w.st.backpressure.Add(1)
				for len(c.inbox) > maxInbox && !c.closed {
					c.cond.Wait()
				}
			}
			c.inbox = append(c.inbox, buf[:n]...)
		}
		if err != nil {
			c.eof = true
		}
		c.mu.Unlock()
		if n > 0 || err != nil {
			// Fast path: be the loop ourselves. Only if another goroutine
			// is currently running this worker's loop do we pay for the
			// queue handoff — and then the bytes we just landed get
			// batched with whatever else piled up during that cycle.
			if !c.w.donate(c) {
				c.mu.Lock()
				notify := !c.queued
				if notify {
					c.queued = true
				}
				c.mu.Unlock()
				if notify {
					select {
					case c.w.q <- c:
					case <-c.w.dead:
						return
					}
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// take moves the inbox into the worker's pending buffer. Worker only.
// While the conn is parked (or its flusher backlog is over maxOutq) the
// transfer is skipped: pending must not grow behind a blocking acquire
// (which can hold it for a full lease) or behind a peer that is not
// reading responses, so the bytes stay in the inbox until it hits
// maxInbox and the reader blocks — that is where the backpressure bound
// lives. queued is still cleared so the reader re-enqueues on later
// reads and no wakeup is lost; unpark's (or the flusher-drain nudge's)
// own noteReady drains whatever accumulated.
func (c *conn) take() (eof bool) {
	c.mu.Lock()
	if len(c.inbox) > 0 && !c.parked && !c.wblocked {
		c.pending = append(c.pending, c.inbox...)
		c.inbox = c.inbox[:0]
		c.cond.Signal()
	}
	c.queued = false
	eof = c.eof
	c.mu.Unlock()
	return eof
}

// compact drops the consumed prefix of pending. Called only after the
// batch referencing pending's bytes has been executed and encoded.
// While a forwarded run is in flight the home worker still reads op
// names that alias pending's backing array, so the in-place copy-down
// must wait (appends are fine — they leave the old array intact — but
// compaction is destructive).
func (c *conn) compact() {
	if c.parsePos == 0 || c.fwdInFlight {
		return
	}
	n := copy(c.pending, c.pending[c.parsePos:])
	c.pending = c.pending[:n]
	c.parsePos = 0
}
