package server

import (
	"net"
	"sync"
	"time"

	"fairrw/internal/lockmgr/wire"
)

// maxInbox bounds the bytes a connection may have read-but-unprocessed.
// When the bound is hit — a pipelining client running far ahead of a
// parked acquire — the reader goroutine stops reading, which is exactly
// TCP backpressure: the client's writes eventually block too.
const maxInbox = 256 << 10

// readChunk is the reader's per-syscall buffer. 16 KiB swallows a deep
// pipeline of requests (a request frame is at most 4+1052 bytes) in one
// read.
const readChunk = 16 << 10

// conn is one client connection. Its lifecycle spans three goroutines
// with a strict split of ownership:
//
//   - the reader goroutine reads from the socket into inbox (guarded by
//     mu) and enqueues the conn at its worker;
//   - the owning worker moves inbox into pending, parses frames, and is
//     the only writer to the socket;
//   - Shutdown only touches the net.Conn (deadlines, Close), never the
//     buffers.
type conn struct {
	id int32
	nc net.Conn
	w  *worker

	mu     sync.Mutex
	cond   *sync.Cond // reader waits here while inbox is full
	inbox  []byte     // bytes read, not yet taken by the worker
	queued bool       // conn is sitting in the worker's queue
	eof    bool       // reader finished (EOF, error, or shutdown deadline)
	closed bool       // worker dropped the conn; reader must not block

	// Worker-owned state; no other goroutine touches these.
	pending   []byte       // unparsed frame bytes (inbox is appended here)
	parsePos  int          // parse cursor into pending
	wb        *wire.Buffer // pooled backing store for wbuf
	wbuf      []byte       // encoded responses awaiting the wakeup's flush
	parked    bool         // a blocking acquire is in flight for this conn
	statsWant bool         // parse stopped at an OpStats frame
	dead      bool         // connection condemned; cleanup pending
	removed   bool         // retired from the worker; ignore late events
	eofSeen   bool         // worker has observed the reader's eof
	inReady   bool         // already collected into the worker's ready set
	flushMark bool         // wbuf touched this wakeup; flush before sleeping
	wdlArmed  time.Time    // when the write deadline was last armed
}

// readLoop is the reader goroutine: blocking (netpoller-driven) reads
// into inbox, waking the owning worker whenever new bytes land. It
// exits on any read error; the final enqueue lets the worker observe
// eof, answer what is already buffered, and reclaim the conn.
func (c *conn) readLoop() {
	buf := make([]byte, readChunk)
	for {
		n, err := c.nc.Read(buf)
		c.mu.Lock()
		if n > 0 {
			if len(c.inbox) > maxInbox && !c.closed {
				// The inbox bound engaged: this reader now blocks, which
				// is what turns a runaway pipelining client into TCP
				// backpressure. Counted once per engagement, not per
				// cond wakeup, so the admin gauge reads as "times a
				// client was throttled".
				c.w.st.backpressure.Add(1)
				for len(c.inbox) > maxInbox && !c.closed {
					c.cond.Wait()
				}
			}
			c.inbox = append(c.inbox, buf[:n]...)
		}
		if err != nil {
			c.eof = true
		}
		c.mu.Unlock()
		if n > 0 || err != nil {
			// Fast path: be the loop ourselves. Only if another goroutine
			// is currently running this worker's loop do we pay for the
			// queue handoff — and then the bytes we just landed get
			// batched with whatever else piled up during that cycle.
			if !c.w.donate(c) {
				c.mu.Lock()
				notify := !c.queued
				if notify {
					c.queued = true
				}
				c.mu.Unlock()
				if notify {
					select {
					case c.w.q <- c:
					case <-c.w.dead:
						return
					}
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// take moves the inbox into the worker's pending buffer. Worker only.
// While the conn is parked the transfer is skipped: pending must not
// grow behind a blocking acquire (which can hold it for a full lease),
// so the bytes stay in the inbox until it hits maxInbox and the reader
// blocks — that is where the backpressure bound lives. queued is still
// cleared so the reader re-enqueues on later reads and no wakeup is
// lost; unpark's own noteReady drains whatever accumulated.
func (c *conn) take() (eof bool) {
	c.mu.Lock()
	if len(c.inbox) > 0 && !c.parked {
		c.pending = append(c.pending, c.inbox...)
		c.inbox = c.inbox[:0]
		c.cond.Signal()
	}
	c.queued = false
	eof = c.eof
	c.mu.Unlock()
	return eof
}

// compact drops the consumed prefix of pending. Called only after the
// batch referencing pending's bytes has been executed and encoded.
func (c *conn) compact() {
	if c.parsePos == 0 {
		return
	}
	n := copy(c.pending, c.pending[c.parsePos:])
	c.pending = c.pending[:n]
	c.parsePos = 0
}
