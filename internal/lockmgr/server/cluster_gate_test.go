package server

import (
	"bytes"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
	"fairrw/internal/lockmgr/wire"
)

// fakeCluster gates ops by name prefix: names starting with "mine-"
// are owned here, everything else answers NotOwner. It exercises the
// server's Cluster seam without booting real heartbeats.
type fakeCluster struct {
	wm       wire.Membership
	isolated atomic.Bool
}

func (f *fakeCluster) GateOp(name []byte, acquire bool) bool {
	return !f.isolated.Load() && bytes.HasPrefix(name, []byte("mine-"))
}

func (f *fakeCluster) Isolated() bool { return f.isolated.Load() }

func (f *fakeCluster) AppendMembership(buf []byte) []byte {
	out, err := wire.AppendMembership(buf, &f.wm)
	if err != nil {
		panic(err)
	}
	return out
}

func (f *fakeCluster) Epoch() uint64          { return f.wm.Epoch }
func (f *fakeCluster) MemberCount() int       { return len(f.wm.Members) }
func (f *fakeCluster) StatusJSON() ([]byte, error) {
	return []byte(`{"self":"fake","epoch":7}`), nil
}

func startClusteredServer(t *testing.T) (addr string, m *lockmgr.Manager, fake *fakeCluster) {
	t.Helper()
	m = lockmgr.New(testCfg())
	fake = &fakeCluster{wm: wire.Membership{
		Epoch:   7,
		Members: []string{"10.0.0.1:7600", "10.0.0.2:7600", "10.0.0.3:7600"},
	}}
	srv := NewWithConfig(m, Config{Workers: 2, Cluster: fake})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		<-served
	})
	return ln.Addr().String(), m, fake
}

// TestClusterGateNotOwner: a pipelined batch mixing owned and foreign
// names gets per-op statuses in request order, and the NotOwner
// response carries the membership.
func TestClusterGateNotOwner(t *testing.T) {
	addr, _, _ := startClusteredServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sid, err := c.Open(time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	c.QueueAcquire(sid, "mine-a", true, 0)
	c.QueueAcquire(sid, "theirs-b", true, 0)
	c.QueueRelease(sid, "mine-a", true)
	errs, err := c.Flush(nil)
	if err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(errs) != 3 {
		t.Fatalf("got %d results, want 3", len(errs))
	}
	if errs[0] != nil {
		t.Errorf("acquire mine-a: %v, want nil", errs[0])
	}
	if !errors.Is(errs[1], client.ErrNotOwner) {
		t.Errorf("acquire theirs-b: %v, want ErrNotOwner", errs[1])
	}
	if errs[2] != nil {
		t.Errorf("release mine-a: %v, want nil", errs[2])
	}
	wm, ok := c.Membership()
	if !ok {
		t.Fatal("NotOwner response carried no membership")
	}
	if wm.Epoch != 7 || len(wm.Members) != 3 {
		t.Errorf("membership: epoch %d, %d members; want 7, 3", wm.Epoch, len(wm.Members))
	}

	// A gated release is refused too — a non-owner must not mutate
	// state it no longer authorities.
	if err := c.Release(sid, "theirs-b", true); !errors.Is(err, client.ErrNotOwner) {
		t.Errorf("release theirs-b: %v, want ErrNotOwner", err)
	}
}

// TestClusterGateFenced: on an isolated (quorum-less) node the server
// refuses the whole lease lifecycle — OpOpen and OpKeepAlive answer
// NotOwner exactly like named ops, so a partitioned minority can
// neither grant a new lease nor renew one a client already holds.
// OpClose stays ungated: releasing state is always safe.
func TestClusterGateFenced(t *testing.T) {
	addr, _, fake := startClusteredServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sid, err := c.Open(time.Minute) // healthy node: lease granted
	if err != nil {
		t.Fatalf("open before isolation: %v", err)
	}

	fake.isolated.Store(true)
	if err := c.KeepAlive(sid, time.Minute); !errors.Is(err, client.ErrNotOwner) {
		t.Errorf("keepalive on fenced node: %v, want ErrNotOwner", err)
	}
	if _, err := c.Open(time.Minute); !errors.Is(err, client.ErrNotOwner) {
		t.Errorf("open on fenced node: %v, want ErrNotOwner", err)
	}
	if err := c.Acquire(sid, "mine-a", true, 0); !errors.Is(err, client.ErrNotOwner) {
		t.Errorf("acquire on fenced node: %v, want ErrNotOwner", err)
	}
	// The refusal carries the membership so a routing client can re-aim.
	if wm, ok := c.Membership(); !ok || len(wm.Members) != 3 {
		t.Errorf("fenced NotOwner membership: ok=%v members=%d, want 3", ok, len(wm.Members))
	}
	if err := c.CloseSession(sid); err != nil {
		t.Errorf("close on fenced node: %v, want nil", err)
	}
}

// TestClusterGateBehindParkedAcquire: a gated frame pipelined behind an
// acquire that parks must be answered after the park resolves — wire
// responses stay in request order even when the want short-circuits the
// manager entirely.
func TestClusterGateBehindParkedAcquire(t *testing.T) {
	addr, m, _ := startClusteredServer(t)

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	sid1, err := c1.Open(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Acquire(sid1, "mine-x", true, 0); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	sid2, err := c2.Open(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	type flushResult struct {
		errs []error
		err  error
	}
	resCh := make(chan flushResult, 1)
	go func() {
		c2.QueueAcquire(sid2, "mine-x", true, 5*time.Second) // parks behind c1
		c2.QueueAcquire(sid2, "theirs-y", true, 0)           // gated: NotOwner, but must wait its turn
		errs, err := c2.Flush(nil)
		resCh <- flushResult{errs, err}
	}()

	// Wait until c2 is parked, then release; c2's flush must then
	// resolve both frames in order.
	deadline := time.Now().Add(5 * time.Second)
	for m.QueueLen("mine-x") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never parked")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case r := <-resCh:
		t.Fatalf("flush returned while parked: %v %v", r.errs, r.err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := c1.Release(sid1, "mine-x", true); err != nil {
		t.Fatalf("release: %v", err)
	}
	select {
	case r := <-resCh:
		if r.err != nil {
			t.Fatalf("flush: %v", r.err)
		}
		if len(r.errs) != 2 {
			t.Fatalf("got %d results, want 2", len(r.errs))
		}
		if r.errs[0] != nil {
			t.Errorf("parked acquire resolved %v, want nil", r.errs[0])
		}
		if !errors.Is(r.errs[1], client.ErrNotOwner) {
			t.Errorf("gated frame resolved %v, want ErrNotOwner", r.errs[1])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flush never returned after the release")
	}
}

// TestClusterInfo: clustered servers answer OpClusterInfo with the
// membership; non-clustered servers answer OK with an empty payload so
// a Router can treat any single lockd as a cluster of one.
func TestClusterInfo(t *testing.T) {
	addr, _, _ := startClusteredServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wm, err := c.ClusterInfo()
	if err != nil {
		t.Fatalf("ClusterInfo: %v", err)
	}
	if wm.Epoch != 7 || len(wm.Members) != 3 {
		t.Errorf("clustered: epoch %d, %d members; want 7, 3", wm.Epoch, len(wm.Members))
	}

	plainAddr, _ := startServer(t, testCfg())
	pc, err := client.Dial(plainAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	wm, err = pc.ClusterInfo()
	if err != nil {
		t.Fatalf("ClusterInfo non-clustered: %v", err)
	}
	if wm.Epoch != 0 || len(wm.Members) != 0 {
		t.Errorf("non-clustered: epoch %d, %d members; want empty", wm.Epoch, len(wm.Members))
	}
}

// TestAdminCluster: /cluster serves the node's status document on a
// clustered server and {"clustered":false} otherwise, and the metrics
// plane exports the epoch and member-count gauges.
func TestAdminCluster(t *testing.T) {
	fake := &fakeCluster{wm: wire.Membership{
		Epoch:   7,
		Members: []string{"10.0.0.1:7600", "10.0.0.2:7600", "10.0.0.3:7600"},
	}}
	srv := NewWithConfig(lockmgr.New(testCfg()), Config{Workers: 1, Cluster: fake})
	t.Cleanup(func() { srv.Shutdown(time.Second) })
	h := srv.AdminHandler(BuildInfo{})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cluster", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/cluster: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"epoch":7`) {
		t.Errorf("/cluster body %q lacks epoch", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "lockd_cluster_epoch 7") {
		t.Errorf("metrics lack lockd_cluster_epoch 7")
	}
	if !strings.Contains(body, "lockd_cluster_members 3") {
		t.Errorf("metrics lack lockd_cluster_members 3")
	}

	plainSrv := NewWithConfig(lockmgr.New(testCfg()), Config{Workers: 1})
	t.Cleanup(func() { plainSrv.Shutdown(time.Second) })
	rec = httptest.NewRecorder()
	plainSrv.AdminHandler(BuildInfo{}).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cluster", nil))
	if !strings.Contains(rec.Body.String(), `"clustered": false`) &&
		!strings.Contains(rec.Body.String(), `"clustered":false`) {
		t.Errorf("non-clustered /cluster body %q", rec.Body.String())
	}
}
