// Package stats provides the small statistical toolkit used by the
// benchmark harnesses: means, standard deviations, Student-t 95%
// confidence intervals (Figure 13 reports them), geometric means, speedup
// helpers, percentiles, and a fixed log-bucket histogram for latency
// distributions (the observability layer's acquire/transfer metrics).
package stats

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// t95 holds two-sided 95% Student-t critical values by degrees of freedom
// (1-30); beyond 30 the normal approximation 1.96 is used.
var t95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df < len(t95) {
		t = t95[df]
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// GeoMean returns the geometric mean of xs (which must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Speedup returns base/new, the conventional speedup factor.
func Speedup(base, new float64) float64 {
	if new == 0 {
		return math.Inf(1)
	}
	return base / new
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It copies and sorts, so the
// input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo] + frac*(s[hi]-s[lo])
}

// Histogram counts uint64 samples in fixed logarithmic buckets: exact
// buckets below histSub, then histSub sub-buckets per power of two, so the
// relative quantization error is bounded by 1/histSub at any magnitude.
// The zero value is ready to use, and recording a sample is allocation
// free — suitable for simulator hot paths.
type Histogram struct {
	counts [histSize]uint64
	n      uint64
	sum    uint64
	min    uint64
	max    uint64
}

const (
	histSub  = 4 // sub-buckets per power of two
	histSize = 256
)

// histBucket maps a value to its bucket index.
func histBucket(v uint64) int {
	if v < histSub {
		return int(v)
	}
	b := bits.Len64(v) - 1 // position of the top bit, >= 2
	top := v >> uint(b-2)  // top three bits, in [4, 8)
	return 4*(b-2) + int(top-4) + 4
}

// histBounds returns the closed value range [lo, hi] of bucket i.
func histBounds(i int) (lo, hi uint64) {
	if i < histSub {
		return uint64(i), uint64(i)
	}
	b := (i-histSub)/histSub + 2
	t := uint64((i-histSub)%histSub + histSub)
	lo = t << uint(b-2)
	hi = (t+1)<<uint(b-2) - 1
	return lo, hi
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.counts[histBucket(v)]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
}

// AddN records n identical samples in one update (a batch of
// uncontended grants, say) at the cost of a single bucket increment.
func (h *Histogram) AddN(v, n uint64) {
	if n == 0 {
		return
	}
	h.counts[histBucket(v)] += n
	h.sum += v * n
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n += n
}

// Reset discards every recorded sample, returning h to its zero state.
// Load generators use it to drop warmup samples: record from the start,
// Reset when the warmup window closes, and only steady-state samples
// remain.
func (h *Histogram) Reset() { *h = Histogram{} }

// Merge folds o's samples into h, so per-worker histograms recorded
// without sharing can be aggregated after the fact. Bucket layouts are
// identical by construction, so the merge is exact.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the arithmetic mean of the recorded samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest recorded sample.
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest recorded sample.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile estimates the p-th percentile (0 <= p <= 100) by locating the
// bucket holding the target rank and interpolating linearly within it. The
// result is exact below histSub and within the bucket's bounds above.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return float64(h.min)
	}
	if p >= 100 {
		return float64(h.max)
	}
	rank := p / 100 * float64(h.n)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo, hi := histBounds(i)
			if hi > h.max {
				hi = h.max
			}
			frac := (rank - float64(cum)) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	return float64(h.max)
}

// WriteProm renders h as one Prometheus cumulative histogram: a # TYPE
// header, one `_bucket` line per non-empty bucket (cumulative counts,
// inclusive `le` upper bounds) plus the mandatory `+Inf` bucket, then
// `_sum` and `_count`. scale converts sample units into the exported
// unit — 1e-9 for nanosecond samples exported as Prometheus-conventional
// seconds. labels is the brace-free label list shared by every line
// (empty for none). Rendering only non-empty buckets keeps a 256-bucket
// log histogram's exposition compact while staying a valid cumulative
// histogram: `le` bounds are strictly increasing by construction.
func (h *Histogram) WriteProm(w io.Writer, name, labels string, scale float64) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	h.WritePromSeries(w, name, labels, scale)
}

// WritePromSeries is WriteProm without the # TYPE header, for emitting
// several label sets of the same histogram family under one header.
func (h *Histogram) WritePromSeries(w io.Writer, name, labels string, scale float64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		_, hi := histBounds(i)
		cum += c
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, labels+sep, float64(hi)*scale, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels+sep, h.n)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sum)*scale)
		fmt.Fprintf(w, "%s_count %d\n", name, h.n)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sum)*scale)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.n)
	}
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Lo, Hi uint64 // closed value range
	Count  uint64
}

// Buckets returns the non-empty buckets in increasing value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := histBounds(i)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// MinMax returns the smallest and largest element of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
