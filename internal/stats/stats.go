// Package stats provides the small statistical toolkit used by the
// benchmark harnesses: means, standard deviations, Student-t 95%
// confidence intervals (Figure 13 reports them), geometric means and
// speedup helpers.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// t95 holds two-sided 95% Student-t critical values by degrees of freedom
// (1-30); beyond 30 the normal approximation 1.96 is used.
var t95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df < len(t95) {
		t = t95[df]
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// GeoMean returns the geometric mean of xs (which must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Speedup returns base/new, the conventional speedup factor.
func Speedup(base, new float64) float64 {
	if new == 0 {
		return math.Inf(1)
	}
	return base / new
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MinMax returns the smallest and largest element of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
