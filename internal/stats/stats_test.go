package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7.0)) {
		t.Fatal("stddev wrong")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
}

func TestCI95(t *testing.T) {
	// n=5, df=4, t=2.776
	xs := []float64{10, 12, 14, 16, 18}
	want := 2.776 * StdDev(xs) / math.Sqrt(5)
	if !almost(CI95(xs), want) {
		t.Fatalf("CI95 = %v, want %v", CI95(xs), want)
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI of one sample should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("geomean wrong")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(200, 100) != 2 {
		t.Fatal("speedup wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("zero denominator should be +inf")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax = %v,%v", lo, hi)
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		lo, hi := MinMax(clean)
		m := Mean(clean)
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stddev is non-negative and zero for constant slices.
func TestStdDevProperty(t *testing.T) {
	f := func(v float64, n uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
		xs := make([]float64, int(n%20)+2)
		for i := range xs {
			xs[i] = v
		}
		return almost(StdDev(xs), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Percentile and Histogram (observability-layer metrics).

func TestPercentileExactSmall(t *testing.T) {
	xs := []float64{40, 10, 20, 30}
	for _, tc := range []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {75, 32.5},
	} {
		if got := Percentile(xs, tc.p); !almost(got, tc.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	// The input must not be reordered.
	if xs[0] != 40 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < 4; v++ {
		h.Add(v)
	}
	if h.Count() != 4 || h.Min() != 0 || h.Max() != 3 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if !almost(h.Mean(), 1.5) {
		t.Errorf("mean = %v, want 1.5", h.Mean())
	}
	bs := h.Buckets()
	if len(bs) != 4 {
		t.Fatalf("buckets = %+v, want 4 exact buckets", bs)
	}
	for i, b := range bs {
		if b.Lo != uint64(i) || b.Hi != uint64(i) || b.Count != 1 {
			t.Errorf("bucket %d = %+v", i, b)
		}
	}
}

func TestHistogramBucketMonotonic(t *testing.T) {
	// Bucket index and bounds must be monotone and consistent across
	// magnitudes: every value lands in a bucket whose range contains it.
	prev := -1
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 1 << 20, 1<<40 + 12345, 1<<63 + 9} {
		i := histBucket(v)
		if i < prev {
			t.Fatalf("histBucket(%d) = %d < previous %d", v, i, prev)
		}
		prev = i
		lo, hi := histBounds(i)
		if v < lo || v > hi {
			t.Errorf("value %d in bucket %d with bounds [%d, %d]", v, i, lo, hi)
		}
	}
	if i := histBucket(^uint64(0)); i >= histSize {
		t.Fatalf("histBucket(max) = %d out of range", i)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Add(v)
	}
	// Log-bucket quantization bounds the relative error by 1/histSub.
	for _, tc := range []struct{ p, want float64 }{
		{50, 500}, {95, 950}, {99, 990},
	} {
		got := h.Percentile(tc.p)
		if got < tc.want*0.75 || got > tc.want*1.25 {
			t.Errorf("p%v = %v, want within 25%% of %v", tc.p, got, tc.want)
		}
	}
	if h.Percentile(0) != 1 || h.Percentile(100) != 1000 {
		t.Errorf("p0/p100 = %v/%v, want 1/1000", h.Percentile(0), h.Percentile(100))
	}
	var empty Histogram
	if empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramBucketsCoverAllSamples(t *testing.T) {
	var h Histogram
	const n = 10_000
	for i := 0; i < n; i++ {
		h.Add(uint64(i) * 37 % 4096)
	}
	var total uint64
	for _, b := range h.Buckets() {
		if b.Lo > b.Hi {
			t.Errorf("bucket with inverted bounds: %+v", b)
		}
		total += b.Count
	}
	if total != n {
		t.Errorf("bucket counts sum to %d, want %d", total, n)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1 << 20))
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged count/min/max = %d/%d/%d, want %d/%d/%d",
			a.Count(), a.Min(), a.Max(), whole.Count(), whole.Min(), whole.Max())
	}
	if a.Mean() != whole.Mean() {
		t.Fatalf("merged mean %v, want %v", a.Mean(), whole.Mean())
	}
	for _, p := range []float64{1, 50, 99} {
		if got, want := a.Percentile(p), whole.Percentile(p); got != want {
			t.Fatalf("merged p%v = %v, want %v", p, got, want)
		}
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != whole.Count() {
		t.Fatal("merging an empty histogram changed the count")
	}
	empty.Merge(&a) // merge into zero value adopts min/max
	if empty.Min() != whole.Min() || empty.Max() != whole.Max() {
		t.Fatal("merge into empty histogram lost min/max")
	}
}
