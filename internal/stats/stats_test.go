package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7.0)) {
		t.Fatal("stddev wrong")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
}

func TestCI95(t *testing.T) {
	// n=5, df=4, t=2.776
	xs := []float64{10, 12, 14, 16, 18}
	want := 2.776 * StdDev(xs) / math.Sqrt(5)
	if !almost(CI95(xs), want) {
		t.Fatalf("CI95 = %v, want %v", CI95(xs), want)
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI of one sample should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("geomean wrong")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(200, 100) != 2 {
		t.Fatal("speedup wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("zero denominator should be +inf")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax = %v,%v", lo, hi)
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		lo, hi := MinMax(clean)
		m := Mean(clean)
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stddev is non-negative and zero for constant slices.
func TestStdDevProperty(t *testing.T) {
	f := func(v float64, n uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
		xs := make([]float64, int(n%20)+2)
		for i := range xs {
			xs[i] = v
		}
		return almost(StdDev(xs), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
