package stats

import (
	"strconv"
	"strings"
	"testing"
)

// TestWritePromCumulative checks the exposition invariants scrapers
// rely on: one TYPE header, strictly increasing le bounds, monotone
// non-decreasing cumulative counts, +Inf bucket == _count == n, and
// the scale factor applied to bounds and _sum alike.
func TestWritePromCumulative(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 1, 5, 100, 100, 100, 70000} {
		h.Add(v)
	}
	var sb strings.Builder
	h.WriteProm(&sb, "x_ns", "", 1e-9)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "# TYPE x_ns histogram" {
		t.Fatalf("header = %q", lines[0])
	}

	var prevLE float64 = -1
	var prevCum uint64
	var infSeen bool
	var count uint64
	for _, ln := range lines[1:] {
		switch {
		case strings.HasPrefix(ln, "x_ns_bucket{le=\"+Inf\"}"):
			infSeen = true
			v, _ := strconv.ParseUint(strings.Fields(ln)[1], 10, 64)
			if v != 7 {
				t.Fatalf("+Inf bucket = %d, want 7", v)
			}
		case strings.HasPrefix(ln, "x_ns_bucket{le=\""):
			le, err := strconv.ParseFloat(ln[len(`x_ns_bucket{le="`):strings.Index(ln, `"}`)], 64)
			if err != nil {
				t.Fatalf("bad le in %q: %v", ln, err)
			}
			if le <= prevLE {
				t.Fatalf("le bounds not increasing: %g after %g", le, prevLE)
			}
			if le > 70000*1e-9*2 {
				t.Fatalf("le %g not scaled to seconds", le)
			}
			prevLE = le
			cum, _ := strconv.ParseUint(strings.Fields(ln)[1], 10, 64)
			if cum < prevCum {
				t.Fatalf("cumulative count decreased: %d after %d", cum, prevCum)
			}
			prevCum = cum
		case strings.HasPrefix(ln, "x_ns_sum "):
			sum, _ := strconv.ParseFloat(strings.Fields(ln)[1], 64)
			want := float64(1+1+5+100+100+100+70000) * 1e-9
			if diff := sum - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("_sum = %g, want %g", sum, want)
			}
		case strings.HasPrefix(ln, "x_ns_count "):
			count, _ = strconv.ParseUint(strings.Fields(ln)[1], 10, 64)
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket")
	}
	if count != 7 {
		t.Fatalf("_count = %d, want 7", count)
	}
	if prevCum != 7 {
		t.Fatalf("last finite cumulative = %d, want 7 (all samples finite)", prevCum)
	}
}

// TestWritePromSeriesLabels: labelled series append the shared labels
// to every line and skip their own TYPE header.
func TestWritePromSeriesLabels(t *testing.T) {
	var h Histogram
	h.Add(10)
	var sb strings.Builder
	h.WritePromSeries(&sb, "lat", `run="a"`, 1)
	out := sb.String()
	if strings.Contains(out, "# TYPE") {
		t.Fatalf("WritePromSeries emitted a TYPE header:\n%s", out)
	}
	for _, want := range []string{
		`lat_bucket{run="a",le="`, `lat_bucket{run="a",le="+Inf"} 1`,
		`lat_sum{run="a"} 10`, `lat_count{run="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

// TestWritePromEmpty: an empty histogram is still a valid exposition.
func TestWritePromEmpty(t *testing.T) {
	var h Histogram
	var sb strings.Builder
	h.WriteProm(&sb, "e", "", 1)
	out := sb.String()
	for _, want := range []string{`e_bucket{le="+Inf"} 0`, "e_sum 0", "e_count 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
