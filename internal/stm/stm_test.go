package stm

import (
	"testing"

	"fairrw/internal/core"
	"fairrw/internal/machine"
	"fairrw/internal/ssb"
)

func newTM(t *testing.T, engine string) (*machine.Machine, *TM) {
	t.Helper()
	m := machine.ModelA()
	switch engine {
	case "lcu":
		core.New(m, core.Options{})
	case "ssb":
		ssb.New(m, ssb.Options{})
	}
	return m, New(m, engine)
}

func TestAtomicBasic(t *testing.T) {
	for _, engine := range []string{"swonly", "lcu", "ssb", "fraser"} {
		t.Run(engine, func(t *testing.T) {
			m, tm := newTM(t, engine)
			o := tm.NewObj(2)
			m.Spawn("t", 1, 0, func(c *machine.Ctx) {
				tm.Atomic(c, func(tx *Txn) {
					tx.Write(o, 0, 41)
					tx.Write(o, 1, 1)
				})
				var sum uint64
				tm.Atomic(c, func(tx *Txn) {
					sum = tx.Read(o, 0) + tx.Read(o, 1)
				})
				if sum != 42 {
					t.Errorf("%s: sum = %d, want 42", engine, sum)
				}
			})
			m.Run()
			if tm.Commits != 2 {
				t.Errorf("%s: commits = %d, want 2", engine, tm.Commits)
			}
		})
	}
}

func TestAtomicIsolation(t *testing.T) {
	// Concurrent increments must not lose updates under any engine.
	for _, engine := range []string{"swonly", "lcu", "fraser"} {
		t.Run(engine, func(t *testing.T) {
			m, tm := newTM(t, engine)
			o := tm.NewObj(1)
			const threads, incs = 8, 25
			for i := 0; i < threads; i++ {
				m.Spawn("t", uint64(i+1), i, func(c *machine.Ctx) {
					for j := 0; j < incs; j++ {
						tm.Atomic(c, func(tx *Txn) {
							tx.Write(o, 0, tx.Read(o, 0)+1)
						})
					}
				})
			}
			m.Run()
			if got := o.RawRead(0); got != threads*incs {
				t.Errorf("%s: counter = %d, want %d (lost updates)", engine, got, threads*incs)
			}
		})
	}
}

func TestShadowWritesInvisibleUntilCommit(t *testing.T) {
	m, tm := newTM(t, "fraser")
	o := tm.NewObj(1)
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		tm.Atomic(c, func(tx *Txn) {
			tx.Write(o, 0, 9)
			if o.RawRead(0) != 0 {
				t.Error("write visible before commit")
			}
			if tx.Read(o, 0) != 9 {
				t.Error("own write not visible inside transaction")
			}
		})
		if o.RawRead(0) != 9 {
			t.Error("write not visible after commit")
		}
	})
	m.Run()
}

func TestExplicitAbortRetries(t *testing.T) {
	m, tm := newTM(t, "swonly")
	o := tm.NewObj(1)
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		first := true
		attempts := tm.Atomic(c, func(tx *Txn) {
			tx.Write(o, 0, 5)
			if first {
				first = false
				tx.Abort()
			}
		})
		if attempts != 2 {
			t.Errorf("attempts = %d, want 2", attempts)
		}
	})
	m.Run()
	if o.RawRead(0) != 5 {
		t.Error("retried transaction did not commit")
	}
	if tm.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", tm.Aborts)
	}
}

func TestStepBudgetTerminatesRunawayWalk(t *testing.T) {
	m, tm := newTM(t, "fraser")
	tm.StepBudget = 100
	a := tm.NewObj(1)
	a.RawWrite(0, uint64(a.ID())) // self-loop "pointer"
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		hops := 0
		done := false
		tm.Atomic(c, func(tx *Txn) {
			if done {
				return // second attempt: succeed trivially
			}
			o := a
			for o != nil && !tx.Aborted() {
				o = tx.tm.Get(int(tx.Read(o, 0)))
				hops++
			}
			done = true
		})
		if hops < 100 || hops > 200 {
			t.Errorf("hops = %d; step budget should have stopped the walk near 100", hops)
		}
	})
	m.Run()
}

func TestVersionsAdvanceEvenly(t *testing.T) {
	m, tm := newTM(t, "swonly")
	o := tm.NewObj(1)
	m.Spawn("t", 1, 0, func(c *machine.Ctx) {
		for i := 0; i < 3; i++ {
			tm.Atomic(c, func(tx *Txn) { tx.Write(o, 0, uint64(i)) })
		}
	})
	m.Run()
	if o.version != 6 || o.version&1 != 0 {
		t.Fatalf("version = %d, want 6 (even, two bumps per commit)", o.version)
	}
}

func TestReadOnlyTxnCheapWithFraser(t *testing.T) {
	// Fraser's invisible readers make read-only commits near-free compared
	// to the lock engine's visible read-locking — the Figure 11 contrast.
	measure := func(engine string) float64 {
		m, tm := newTM(t, engine)
		objs := make([]*Obj, 8)
		for i := range objs {
			objs[i] = tm.NewObj(1)
		}
		m.Spawn("t", 1, 0, func(c *machine.Ctx) {
			for i := 0; i < 20; i++ {
				tm.Atomic(c, func(tx *Txn) {
					for _, o := range objs {
						tx.Read(o, 0)
					}
				})
			}
		})
		m.Run()
		return float64(tm.CommitCycles) / float64(tm.Commits)
	}
	fr := measure("fraser")
	sw := measure("swonly")
	if fr >= sw {
		t.Fatalf("fraser read-only commit (%.0f) should be cheaper than swonly (%.0f)", fr, sw)
	}
}
