package stm

import (
	"fairrw/internal/machine"
	"fairrw/internal/swlocks"
)

// objMode is one access-set element with its commit lock mode.
type objMode struct {
	o     *Obj
	write bool
}

// lockOps abstracts the per-object reader-writer trylock used by the
// lock-based commit: software RW words (swonly) or the machine's hardware
// lock device (lcu/ssb).
type lockOps interface {
	// acquireSet locks every element (reads shared, writes exclusive) or
	// nothing, returning success.
	acquireSet(c *machine.Ctx, set []objMode) bool
	// releaseSet unlocks the first n elements of the set.
	releaseSet(c *machine.Ctx, set []objMode, n int)
}

// swLockOps uses TL2/TLRW-style single-word RW locks at object headers,
// acquired sequentially with CAS in canonical order. Reader acquisition is
// an atomic RMW on a shared line: the visible-reader congestion of
// Section IV-B. The flat Compute charges model the lock-function
// instruction overhead (calls, barriers) of the software path.
type swLockOps struct{}

const swLockOverhead = 15 // cycles of instructions around each lock op

func (swLockOps) acquireSet(c *machine.Ctx, set []objMode) bool {
	for i, om := range set {
		c.Compute(swLockOverhead)
		var ok bool
		if om.write {
			ok = swlocks.AtAddr(om.o.hdr).TryWrite(c)
		} else {
			ok = swlocks.AtAddr(om.o.hdr).TryRead(c)
		}
		if !ok {
			(swLockOps{}).releaseSet(c, set, i)
			return false
		}
	}
	return true
}

func (swLockOps) releaseSet(c *machine.Ctx, set []objMode, n int) {
	for i := n - 1; i >= 0; i-- {
		c.Compute(swLockOverhead)
		if set[i].write {
			swlocks.AtAddr(set[i].o.hdr).UnlockWrite(c)
		} else {
			swlocks.AtAddr(set[i].o.hdr).UnlockRead(c)
		}
	}
}

// hwLockOps drives the installed hardware lock device (LCU or SSB). The
// acq ISA primitive is non-blocking (Section III), so the commit issues
// the requests for the whole access set back to back — each costs only the
// LCU access — and then collects the grants, overlapping the request round
// trips instead of serializing them. Stragglers use bounded trylocks; any
// failure releases everything (the STM trylock usage of Section IV-B).
type hwLockOps struct{}

// hwCollectRetries bounds how long the collect phase waits for straggler
// grants. Failing fast matters: a committer holding granted locks while it
// waits inflates everyone else's hold times.
const (
	hwCollectRetries = 16
	hwCollectSlice   = 80 // cycles per straggler wait
)

func (hwLockOps) acquireSet(c *machine.Ctx, set []objMode) bool {
	got := make([]bool, len(set))
	// Phase 1: pipeline the requests (acq is non-blocking).
	for i, om := range set {
		got[i] = c.Acq(om.o.hdr, om.write)
	}
	// Phase 2: collect grants round-robin with a bounded total budget.
	for spin := 0; ; spin++ {
		pending := 0
		for i, om := range set {
			if !got[i] {
				got[i] = c.Acq(om.o.hdr, om.write)
				if !got[i] {
					pending++
				}
			}
			_ = om
		}
		if pending == 0 {
			return true
		}
		if spin >= hwCollectRetries {
			(hwLockOps{}).releaseHeld(c, set, got)
			return false
		}
		c.Compute(hwCollectSlice)
	}
}

// releaseHeld unlocks the granted subset after a failed collect, then
// actively drains the still-queued requests: it keeps polling each one and
// releases it the moment it is granted. Abandoning them instead would be
// correct (the grant timer skips them, Section III-C) but injects dead
// timeout cycles into every queue the transaction touched.
func (hwLockOps) releaseHeld(c *machine.Ctx, set []objMode, got []bool) {
	for i, om := range set {
		if got[i] {
			c.HwUnlock(om.o.hdr, om.write)
		}
	}
	for {
		pending := 0
		for i, om := range set {
			if got[i] {
				continue
			}
			if c.Acq(om.o.hdr, om.write) {
				c.HwUnlock(om.o.hdr, om.write)
				got[i] = true
				continue
			}
			pending++
		}
		if pending == 0 {
			return
		}
		c.Compute(hwCollectSlice)
	}
}

func (hwLockOps) releaseSet(c *machine.Ctx, set []objMode, n int) {
	for i := n - 1; i >= 0; i-- {
		c.HwUnlock(set[i].o.hdr, set[i].write)
	}
}

// lockEngine is the visible-reader, lock-based OSTM commit: acquire RW
// locks over the whole access set in canonical order (writes exclusive,
// reads shared), validate versions, write back, release.
type lockEngine struct {
	name string
	ops  lockOps
}

func (e *lockEngine) Name() string { return e.name }

func (e *lockEngine) Commit(t *Txn) bool {
	objs := sortedObjs(t)
	set := make([]objMode, len(objs))
	for i, o := range objs {
		_, w := t.writes[o]
		set[i] = objMode{o, w}
	}
	if !e.ops.acquireSet(t.c, set) {
		return false
	}
	// Validate: every opened object still at its recorded version.
	for _, o := range sortedReads(t) {
		t.c.Load(o.ver)
		if o.version != t.reads[o] || o.version&1 == 1 {
			e.ops.releaseSet(t.c, set, len(set))
			return false
		}
	}
	writeBack(t)
	e.ops.releaseSet(t.c, set, len(set))
	return true
}

// fraserEngine is the nonblocking commit with invisible readers: CAS
// ownership of the write set, validate the read set, write back, release.
// Read-only transactions validate without writing anything — the source of
// its speed and of its privatization unsafety.
type fraserEngine struct{}

func (e *fraserEngine) Name() string { return "fraser" }

func (e *fraserEngine) Commit(t *Txn) bool {
	objs := make([]*Obj, 0, len(t.writes))
	for o := range t.writes {
		objs = append(objs, o)
	}
	sortByID(objs)
	acquired := 0
	rollback := func() {
		for i := 0; i < acquired; i++ {
			t.c.Store(objs[i].hdr, 0)
		}
	}
	for _, o := range objs {
		if !t.c.CAS(o.hdr, 0, t.c.TID) {
			rollback()
			return false
		}
		acquired++
	}
	for _, o := range sortedReads(t) {
		if _, w := t.writes[o]; w {
			continue // acquisition already protects it; version checked below
		}
		t.c.Load(o.ver)
		if o.version != t.reads[o] || o.version&1 == 1 {
			rollback()
			return false
		}
	}
	// Acquired writes: confirm we saw the latest version at open.
	for _, o := range objs {
		if o.version != t.reads[o] {
			rollback()
			return false
		}
	}
	writeBack(t)
	for _, o := range objs {
		t.c.Store(o.hdr, 0)
	}
	return true
}

func sortByID(objs []*Obj) {
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && objs[j].id < objs[j-1].id; j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
}
