// Package stm implements an object-based software transactional memory in
// the style of Fraser's OSTM, with three interchangeable commit engines
// (Section IV-B):
//
//   - swonly: lock-based commit with per-object software reader-writer
//     trylocks and visible readers — read sets are read-locked during
//     commit, which congests hot objects such as a tree root.
//   - lcu / ssb: the same lock-based commit, but the per-object locks are
//     the machine's hardware lock device (LCU+LRT, or the SSB baseline).
//   - fraser: nonblocking commit with invisible readers (no read locking;
//     commit-time version validation). Faster, but does not support the
//     privatization idiom — the paper's "unsafe" reference point.
//
// Every shared access is charged through the simulated memory system, so
// the coherence cost of visible readers is measured, not asserted.
package stm

import (
	"fmt"
	"sort"

	"fairrw/internal/machine"
	"fairrw/internal/memmodel"
	"fairrw/internal/sim"
)

// Obj is one transactional object: a header word (lock), a version word,
// and a payload of 8-byte words.
type Obj struct {
	id     int
	hdr    memmodel.Addr
	ver    memmodel.Addr
	data   memmodel.Addr
	nWords int

	version uint64
	vals    []uint64
}

// ID returns the object's table index (0 is reserved as nil).
func (o *Obj) ID() int { return o.id }

// TM is one transactional heap bound to a machine.
type TM struct {
	M      *machine.Machine
	engine Engine
	objs   []*Obj
	// freed recycles objects allocated by aborted transactions, keyed by
	// payload size. Without it an abort storm leaks simulated memory and
	// real heap alike.
	freed map[int][]*Obj

	// Stats
	Commits, Aborts uint64
	// ExecCycles and CommitCycles dissect transaction time (Figure 11).
	ExecCycles, CommitCycles sim.Time

	// StepBudget bounds reads per transaction attempt; a doomed attempt
	// walking inconsistent pointers terminates and retries (opacity guard).
	StepBudget int
}

// New creates a TM on m using the named engine: "swonly", "lcu", "ssb"
// (these two require the corresponding device installed on m), "fraser".
func New(m *machine.Machine, engine string) *TM {
	tm := &TM{M: m, StepBudget: 100_000, freed: make(map[int][]*Obj)}
	tm.objs = []*Obj{nil} // id 0 = nil
	switch engine {
	case "swonly":
		tm.engine = &lockEngine{name: "swonly", ops: swLockOps{}}
	case "lcu", "ssb":
		tm.engine = &lockEngine{name: engine, ops: hwLockOps{}}
	case "fraser":
		tm.engine = &fraserEngine{}
	default:
		panic(fmt.Sprintf("stm: unknown engine %q", engine))
	}
	return tm
}

// EngineName reports the active commit engine.
func (tm *TM) EngineName() string { return tm.engine.Name() }

// NewObj allocates a transactional object with nWords payload words.
func (tm *TM) NewObj(nWords int) *Obj {
	o := &Obj{
		id:     len(tm.objs),
		hdr:    tm.M.Mem.AllocLine(),
		data:   tm.M.Mem.Alloc(memmodel.Addr(nWords)*8, 64),
		nWords: nWords,
		vals:   make([]uint64, nWords),
	}
	o.ver = o.hdr + 8 // version shares the header line
	tm.objs = append(tm.objs, o)
	return o
}

// Get returns the object with the given id (nil for id 0).
func (tm *TM) Get(id int) *Obj {
	if id == 0 {
		return nil
	}
	return tm.objs[id]
}

// RawRead reads a committed word without simulation cost (setup/checks).
func (o *Obj) RawRead(w int) uint64 { return o.vals[w] }

// RawWrite writes a committed word without simulation cost (setup only).
func (o *Obj) RawWrite(w int, v uint64) { o.vals[w] = v }

// Txn is one transaction attempt.
type Txn struct {
	tm *TM
	c  *machine.Ctx

	reads   map[*Obj]uint64 // object -> version at first open
	writes  map[*Obj][]uint64
	allocs  []*Obj // objects created by this attempt (recycled on abort)
	aborted bool
	steps   int
}

// Aborted reports whether this attempt has been doomed (conflict or step
// budget); subsequent reads return zero and the attempt will retry.
func (t *Txn) Aborted() bool { return t.aborted }

// Abort dooms the current attempt explicitly.
func (t *Txn) Abort() { t.aborted = true }

// Read returns word w of o within the transaction.
func (t *Txn) Read(o *Obj, w int) uint64 {
	if t.aborted || o == nil {
		t.aborted = true
		return 0
	}
	t.steps++
	if t.steps > t.tm.StepBudget {
		t.aborted = true
		return 0
	}
	if sh, ok := t.writes[o]; ok {
		t.c.Compute(1)
		return sh[w]
	}
	if _, ok := t.reads[o]; !ok {
		t.c.Load(o.ver) // open-for-read: fetch the version word
		if o.version&1 == 1 {
			// A committer is mid-writeback on this object: the data would
			// be torn. Doom the attempt now.
			t.aborted = true
			return 0
		}
		t.reads[o] = o.version
		t.c.Compute(12) // open-for-read bookkeeping instructions
	}
	t.c.Load(o.data + memmodel.Addr(w)*8)
	return o.vals[w]
}

// ReadObj reads word w and resolves it as an object reference.
func (t *Txn) ReadObj(o *Obj, w int) *Obj {
	return t.tm.Get(int(t.Read(o, w)))
}

// Write sets word w of o within the transaction (redo-log shadow copy).
func (t *Txn) Write(o *Obj, w int, v uint64) {
	if t.aborted || o == nil {
		t.aborted = true
		return
	}
	sh, ok := t.writes[o]
	if !ok {
		// Open for write: copy the payload into a shadow.
		if _, seen := t.reads[o]; !seen {
			t.c.Load(o.ver)
			if o.version&1 == 1 {
				t.aborted = true
				return
			}
			t.reads[o] = o.version
		}
		sh = make([]uint64, o.nWords)
		copy(sh, o.vals)
		t.c.Load(o.data) // fetch the object payload
		t.c.Compute(20)  // open-for-write bookkeeping + shadow copy
		t.writes[o] = sh
	}
	t.c.Compute(1)
	sh[w] = v
}

// Alloc creates a new object inside the transaction. Fresh objects are
// private until commit publishes a reference, so they join the write set;
// if the attempt aborts they are recycled.
func (t *Txn) Alloc(nWords int) *Obj {
	var o *Obj
	if pool := t.tm.freed[nWords]; len(pool) > 0 {
		o = pool[len(pool)-1]
		t.tm.freed[nWords] = pool[:len(pool)-1]
	} else {
		o = t.tm.NewObj(nWords)
	}
	t.reads[o] = o.version
	t.writes[o] = make([]uint64, nWords)
	t.allocs = append(t.allocs, o)
	t.c.Compute(10) // allocator cost
	return o
}

// Atomic runs body as a transaction, retrying on conflict, and returns the
// number of attempts it took.
func (tm *TM) Atomic(c *machine.Ctx, body func(t *Txn)) int {
	attempts := 0
	backoff := 0
	for {
		attempts++
		t := &Txn{tm: tm, c: c, reads: make(map[*Obj]uint64), writes: make(map[*Obj][]uint64)}
		t0 := c.P.Now()
		body(t)
		t1 := c.P.Now()
		ok := false
		if !t.aborted {
			ok = tm.engine.Commit(t)
		}
		t2 := c.P.Now()
		tm.ExecCycles += t1 - t0
		tm.CommitCycles += t2 - t1
		if ok {
			tm.Commits++
			return attempts
		}
		tm.Aborts++
		for _, o := range t.allocs {
			tm.freed[o.nWords] = append(tm.freed[o.nWords], o)
		}
		swlocksBackoff(c, &backoff)
	}
}

func swlocksBackoff(c *machine.Ctx, n *int) {
	d := sim.Time(100) << uint(*n)
	if d > 25600 {
		d = 25600
	} else {
		*n++
	}
	d += sim.Time(c.TID*17) % 97
	c.Compute(d)
}

// Engine is a commit strategy.
type Engine interface {
	Name() string
	Commit(t *Txn) bool
}

// sortedObjs returns the union of read and write sets in descending id
// order — a canonical acquisition order (deadlock-free among committers)
// that locks the oldest, hottest objects (roots, entry points) last so
// they are held for the shortest time.
func sortedObjs(t *Txn) []*Obj {
	set := make([]*Obj, 0, len(t.reads)+len(t.writes))
	for o := range t.reads {
		set = append(set, o)
	}
	for o := range t.writes {
		if _, ok := t.reads[o]; !ok {
			set = append(set, o)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i].id > set[j].id })
	return set
}

// writeBack publishes the shadow copies and bumps versions, in canonical
// id order (map iteration order would break run determinism). Call with
// all write locks held (lock engines) or ownership CASed (fraser).
func writeBack(t *Txn) {
	objs := make([]*Obj, 0, len(t.writes))
	for o := range t.writes {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].id < objs[j].id })
	for _, o := range objs {
		sh := t.writes[o]
		// Odd version marks the object busy: invisible readers that open it
		// mid-writeback (fraser engine) see the odd version and abort
		// rather than consuming torn data. Committed versions are even.
		o.version++
		t.c.Store(o.ver, o.version)
		for w := 0; w < o.nWords; w++ {
			if sh[w] != o.vals[w] {
				t.c.Store(o.data+memmodel.Addr(w)*8, sh[w])
				o.vals[w] = sh[w]
			}
		}
		o.version++
		t.c.Store(o.ver, o.version)
	}
}

// sortedReads returns the read set in id order for deterministic
// validation.
func sortedReads(t *Txn) []*Obj {
	objs := make([]*Obj, 0, len(t.reads))
	for o := range t.reads {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].id < objs[j].id })
	return objs
}
