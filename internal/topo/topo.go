// Package topo models the system interconnect: node addressing, links with
// propagation latency and finite bandwidth (serialization occupancy), and
// the two topologies of the paper's evaluation — the hierarchical-switch
// network of Model A and the 4-chip hub-connected m-CMP of Model B.
//
// Congestion is modelled per link: each message occupies a link for its
// serialization time, so a retry storm (e.g. SSB remote retries crossing
// chips) queues behind itself and end-to-end latency grows, which is the
// effect behind Figure 9b.
package topo

import (
	"fmt"

	"fairrw/internal/obs"
	"fairrw/internal/sim"
)

// NodeKind distinguishes the agent classes attached to the network.
type NodeKind uint8

const (
	// CoreNode is a processor core (and its colocated L1 + LCU).
	CoreNode NodeKind = iota
	// MemNode is a memory controller (and its colocated LRT / SSB bank).
	MemNode
)

// NodeID addresses an agent on the interconnect.
type NodeID struct {
	Kind  NodeKind
	Index int
}

// Core returns the NodeID of core i.
func Core(i int) NodeID { return NodeID{CoreNode, i} }

// Mem returns the NodeID of memory controller i.
func Mem(i int) NodeID { return NodeID{MemNode, i} }

func (n NodeID) String() string {
	switch n.Kind {
	case CoreNode:
		return fmt.Sprintf("core%d", n.Index)
	case MemNode:
		return fmt.Sprintf("mem%d", n.Index)
	}
	return fmt.Sprintf("node(%d,%d)", n.Kind, n.Index)
}

// Link is a shared network resource. Messages crossing it are serialized:
// each occupies the link for SerLat cycles, and messages exceeding the
// link's capacity in a time window queue into the next window.
//
// Occupancy is tracked in a ring of fixed-width time buckets rather than a
// single busy-until cursor, because transactions charge their later legs
// at future times: a single cursor would make a present message queue
// behind a reservation hundreds of cycles ahead even though the link is
// idle now, and the artificial waits cascade.
type Link struct {
	Name   string
	ID     int      // index into Network.Links (set by the topology builder)
	SerLat sim.Time // occupancy per message (inverse bandwidth)

	ring [linkRingSize]linkBucket

	// Stats
	Msgs      uint64
	TotalWait sim.Time // cycles spent queueing behind earlier messages
}

const (
	linkBucketBits = 6 // 64-cycle buckets
	linkBucketLen  = sim.Time(1) << linkBucketBits
	linkRingSize   = 64 // 4096-cycle reservation window
)

type linkBucket struct {
	epoch uint64
	used  sim.Time
}

// cross reserves capacity for one message arriving at time t and returns
// the time at which the message has crossed the link.
func (l *Link) cross(t sim.Time) sim.Time {
	l.Msgs++
	if l.SerLat == 0 {
		return t
	}
	for {
		b := uint64(t) >> linkBucketBits
		slot := &l.ring[b%linkRingSize]
		if slot.epoch != b {
			if slot.epoch > b {
				// A newer window already recycled this slot; this (rare)
				// out-of-order charge just pays latency without booking.
				return t + l.SerLat
			}
			slot.epoch = b
			slot.used = 0
		}
		if slot.used+l.SerLat <= linkBucketLen {
			slot.used += l.SerLat
			return t + l.SerLat
		}
		// Window full: queue into the next one.
		next := sim.Time(b+1) << linkBucketBits
		l.TotalWait += next - t
		t = next
	}
}

// Reset clears link occupancy and statistics (between benchmark runs).
func (l *Link) Reset() {
	l.ring = [linkRingSize]linkBucket{}
	l.Msgs = 0
	l.TotalWait = 0
}

// route is one precomputed source→destination path: the ordered shared
// links a message crosses plus the total propagation latency (the
// uncongested one-way latency).
type route struct {
	links []*Link
	prop  sim.Time
}

// Network routes messages between nodes over an all-pairs route table
// precomputed at construction, so the per-message path lookup is two
// index operations and allocates nothing.
type Network struct {
	K     *sim.Kernel
	Name  string
	Links []*Link

	numCores int
	numMems  int
	routes   []route // [idx(from)*nodes + idx(to)]

	// Obs, when non-nil, receives per-link occupancy records.
	Obs *obs.Capture

	// Stats
	Sent uint64
}

// RouteFunc describes a topology: the shared links a message crosses from
// one node to another plus the propagation latency. It is evaluated once
// per node pair when the Network is built, never on the message path.
type RouteFunc func(from, to NodeID) (links []*Link, propagation sim.Time)

// NewNetwork builds a network over the given links for a machine with
// numCores cores and numMems memory controllers, precomputing the
// all-pairs route table from routeOf.
func NewNetwork(k *sim.Kernel, name string, links []*Link, numCores, numMems int, routeOf RouteFunc) *Network {
	for i, l := range links {
		l.ID = i
	}
	n := &Network{
		K: k, Name: name, Links: links,
		numCores: numCores, numMems: numMems,
	}
	nodes := numCores + numMems
	n.routes = make([]route, nodes*nodes)
	for fi := 0; fi < nodes; fi++ {
		for ti := 0; ti < nodes; ti++ {
			ls, prop := routeOf(n.nodeOf(fi), n.nodeOf(ti))
			n.routes[fi*nodes+ti] = route{links: ls, prop: prop}
		}
	}
	return n
}

// idx flattens a NodeID into a route-table index: cores first, then
// memory controllers.
func (n *Network) idx(node NodeID) int {
	if node.Kind == CoreNode {
		if node.Index >= n.numCores {
			panic(fmt.Sprintf("topo: %v beyond the %d-core route table", node, n.numCores))
		}
		return node.Index
	}
	if node.Index >= n.numMems {
		panic(fmt.Sprintf("topo: %v beyond the %d-controller route table", node, n.numMems))
	}
	return n.numCores + node.Index
}

// nodeOf is the inverse of idx, used when building the table.
func (n *Network) nodeOf(i int) NodeID {
	if i < n.numCores {
		return Core(i)
	}
	return Mem(i - n.numCores)
}

// routeOf returns the precomputed route between two nodes.
func (n *Network) routeOf(from, to NodeID) *route {
	return &n.routes[n.idx(from)*(n.numCores+n.numMems)+n.idx(to)]
}

// Delay computes the one-way delivery latency for a message sent now,
// charging occupancy on every shared link along the route.
func (n *Network) Delay(from, to NodeID) sim.Time {
	return n.DelayAt(n.K.Now(), from, to)
}

// DelayAt computes the one-way latency for a message injected at absolute
// time start, charging link occupancy. It lets multi-leg transactions
// (request, forward, reply) charge each leg at the time it actually begins.
func (n *Network) DelayAt(start sim.Time, from, to NodeID) sim.Time {
	n.Sent++
	r := n.routeOf(from, to)
	t := start
	for _, l := range r.links {
		t2 := l.cross(t)
		if n.Obs != nil && l.SerLat > 0 {
			n.Obs.LinkCross(l.ID, uint64(t), uint64(l.SerLat), uint64(t2-t-l.SerLat))
		}
		t = t2
	}
	return (t - start) + r.prop
}

// Send delivers a message: it computes the congested one-way latency and
// schedules deliver at arrival time.
func (n *Network) Send(from, to NodeID, deliver func()) {
	n.K.Schedule(n.Delay(from, to), deliver)
}

// SendTo is the closure-free counterpart of Send: it computes the
// congested one-way latency and schedules r.Recv(tag) at arrival time via
// the kernel's value-typed receive event, so high-rate senders allocate
// nothing per message.
func (n *Network) SendTo(from, to NodeID, r sim.Receiver, tag uint64) {
	n.K.ScheduleRecv(n.Delay(from, to), r, tag)
}

// Uncongested returns the propagation-only latency between two nodes,
// without charging link occupancy. Used for calibration and for modelling
// transactions whose queueing is charged elsewhere.
func (n *Network) Uncongested(from, to NodeID) sim.Time {
	return n.routeOf(from, to).prop
}

// ResetStats clears all link and network counters.
func (n *Network) ResetStats() {
	n.Sent = 0
	for _, l := range n.Links {
		l.Reset()
	}
}
