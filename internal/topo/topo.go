// Package topo models the system interconnect: node addressing, links with
// propagation latency and finite bandwidth (serialization occupancy), and
// the two topologies of the paper's evaluation — the hierarchical-switch
// network of Model A and the 4-chip hub-connected m-CMP of Model B.
//
// Congestion is modelled per link: each message occupies a link for its
// serialization time, so a retry storm (e.g. SSB remote retries crossing
// chips) queues behind itself and end-to-end latency grows, which is the
// effect behind Figure 9b.
package topo

import (
	"fmt"

	"fairrw/internal/obs"
	"fairrw/internal/sim"
)

// NodeKind distinguishes the agent classes attached to the network.
type NodeKind uint8

const (
	// CoreNode is a processor core (and its colocated L1 + LCU).
	CoreNode NodeKind = iota
	// MemNode is a memory controller (and its colocated LRT / SSB bank).
	MemNode
)

// NodeID addresses an agent on the interconnect.
type NodeID struct {
	Kind  NodeKind
	Index int
}

// Core returns the NodeID of core i.
func Core(i int) NodeID { return NodeID{CoreNode, i} }

// Mem returns the NodeID of memory controller i.
func Mem(i int) NodeID { return NodeID{MemNode, i} }

func (n NodeID) String() string {
	switch n.Kind {
	case CoreNode:
		return fmt.Sprintf("core%d", n.Index)
	case MemNode:
		return fmt.Sprintf("mem%d", n.Index)
	}
	return fmt.Sprintf("node(%d,%d)", n.Kind, n.Index)
}

// Link is a shared network resource. Messages crossing it are serialized:
// each occupies the link for SerLat cycles, and messages exceeding the
// link's capacity in a time window queue into the next window.
//
// Occupancy is tracked in a ring of fixed-width time buckets rather than a
// single busy-until cursor, because transactions charge their later legs
// at future times: a single cursor would make a present message queue
// behind a reservation hundreds of cycles ahead even though the link is
// idle now, and the artificial waits cascade.
type Link struct {
	Name   string
	ID     int      // index into Network.Links (set by the topology builder)
	SerLat sim.Time // occupancy per message (inverse bandwidth)

	ring [linkRingSize]linkBucket

	// Stats
	Msgs      uint64
	TotalWait sim.Time // cycles spent queueing behind earlier messages
}

const (
	linkBucketBits = 6 // 64-cycle buckets
	linkBucketLen  = sim.Time(1) << linkBucketBits
	linkRingSize   = 64 // 4096-cycle reservation window
)

type linkBucket struct {
	epoch uint64
	used  sim.Time
}

// cross reserves capacity for one message arriving at time t and returns
// the time at which the message has crossed the link.
func (l *Link) cross(t sim.Time) sim.Time {
	l.Msgs++
	if l.SerLat == 0 {
		return t
	}
	for {
		b := uint64(t) >> linkBucketBits
		slot := &l.ring[b%linkRingSize]
		if slot.epoch != b {
			if slot.epoch > b {
				// A newer window already recycled this slot; this (rare)
				// out-of-order charge just pays latency without booking.
				return t + l.SerLat
			}
			slot.epoch = b
			slot.used = 0
		}
		if slot.used+l.SerLat <= linkBucketLen {
			slot.used += l.SerLat
			return t + l.SerLat
		}
		// Window full: queue into the next one.
		next := sim.Time(b+1) << linkBucketBits
		l.TotalWait += next - t
		t = next
	}
}

// Reset clears link occupancy and statistics (between benchmark runs).
func (l *Link) Reset() {
	l.ring = [linkRingSize]linkBucket{}
	l.Msgs = 0
	l.TotalWait = 0
}

// Network routes messages between nodes. Route returns the ordered shared
// links a message crosses plus the total propagation latency (the
// uncongested one-way latency).
type Network struct {
	K     *sim.Kernel
	Name  string
	Links []*Link
	Route func(from, to NodeID) (links []*Link, propagation sim.Time)

	// Obs, when non-nil, receives per-link occupancy records.
	Obs *obs.Capture

	// Stats
	Sent uint64
}

// Delay computes the one-way delivery latency for a message sent now,
// charging occupancy on every shared link along the route.
func (n *Network) Delay(from, to NodeID) sim.Time {
	return n.DelayAt(n.K.Now(), from, to)
}

// DelayAt computes the one-way latency for a message injected at absolute
// time start, charging link occupancy. It lets multi-leg transactions
// (request, forward, reply) charge each leg at the time it actually begins.
func (n *Network) DelayAt(start sim.Time, from, to NodeID) sim.Time {
	n.Sent++
	links, prop := n.Route(from, to)
	t := start
	for _, l := range links {
		t2 := l.cross(t)
		if n.Obs != nil && l.SerLat > 0 {
			n.Obs.LinkCross(l.ID, uint64(t), uint64(l.SerLat), uint64(t2-t-l.SerLat))
		}
		t = t2
	}
	return (t - start) + prop
}

// Send delivers a message: it computes the congested one-way latency and
// schedules deliver at arrival time.
func (n *Network) Send(from, to NodeID, deliver func()) {
	n.K.Schedule(n.Delay(from, to), deliver)
}

// Uncongested returns the propagation-only latency between two nodes,
// without charging link occupancy. Used for calibration and for modelling
// transactions whose queueing is charged elsewhere.
func (n *Network) Uncongested(from, to NodeID) sim.Time {
	_, prop := n.Route(from, to)
	return prop
}

// ResetStats clears all link and network counters.
func (n *Network) ResetStats() {
	n.Sent = 0
	for _, l := range n.Links {
		l.Reset()
	}
}
