package topo

import (
	"fmt"

	"fairrw/internal/sim"
)

// ModelAConfig parameterizes the Model A (in-order, 32 single-core chips,
// hierarchical switch) interconnect. Latencies follow Figure 8: memory is
// uniform (186 cycles local and remote), so all traffic crosses the
// hierarchy root.
type ModelAConfig struct {
	Chips        int      // number of single-core chips (default 32)
	OneWay       sim.Time // propagation, any chip to any chip
	AccessSerLat sim.Time // per-chip access link occupancy per message
	RootSerLat   sim.Time // root switch occupancy per message
	RootPlanes   int      // parallel crossbar planes at the hierarchy root
}

// DefaultModelA returns the configuration used throughout the evaluation.
// The root is a multi-plane crossbar (the E25K uses an 18x18 crossbar), so
// simultaneous bursts from many chips do not serialize through one funnel.
func DefaultModelA() ModelAConfig {
	return ModelAConfig{Chips: 32, OneWay: 55, AccessSerLat: 4, RootSerLat: 2, RootPlanes: 8}
}

// NewModelA builds the hierarchical-switch network: one access link per
// chip plus a shared root. Cores and memory controllers are numbered
// per-chip (core i and mem i live on chip i).
func NewModelA(k *sim.Kernel, cfg ModelAConfig) *Network {
	access := make([]*Link, cfg.Chips)
	links := make([]*Link, 0, cfg.Chips+1)
	for i := range access {
		access[i] = &Link{Name: fmt.Sprintf("accessA%d", i), SerLat: cfg.AccessSerLat}
		links = append(links, access[i])
	}
	planes := cfg.RootPlanes
	if planes <= 0 {
		planes = 1
	}
	roots := make([]*Link, planes)
	for i := range roots {
		roots[i] = &Link{Name: fmt.Sprintf("rootA%d", i), SerLat: cfg.RootSerLat}
		links = append(links, roots[i])
	}

	chipOf := func(n NodeID) int { return n.Index % cfg.Chips }

	return NewNetwork(k, "modelA", links, cfg.Chips, cfg.Chips,
		func(from, to NodeID) ([]*Link, sim.Time) {
			if from == to {
				return nil, 0
			}
			// Model A memory latency is uniform (Fig. 8: local = remote =
			// 186 cycles), so every route crosses the hierarchy root, even
			// a core talking to its own chip's memory controller.
			cf, ct := chipOf(from), chipOf(to)
			root := roots[ct%len(roots)] // plane by destination chip
			return []*Link{access[cf], root, access[ct]}, cfg.OneWay
		})
}

// ModelBConfig parameterizes the Model B (4-chip × 8-core m-CMP, Sun T5440
// derived) interconnect: per-chip crossbars joined by four coherence hubs
// with scarce bandwidth.
type ModelBConfig struct {
	Chips        int
	CoresPerChip int
	MemPerChip   int
	IntraOneWay  sim.Time // propagation within a chip
	InterOneWay  sim.Time // propagation across chips (via a hub)
	XbarSerLat   sim.Time // per-chip crossbar occupancy per message
	HubSerLat    sim.Time // per-hub occupancy per message
	Hubs         int
}

// DefaultModelB returns the configuration used throughout the evaluation.
func DefaultModelB() ModelBConfig {
	return ModelBConfig{
		Chips: 4, CoresPerChip: 8, MemPerChip: 2,
		IntraOneWay: 20, InterOneWay: 60,
		XbarSerLat: 2, HubSerLat: 10, Hubs: 4,
	}
}

// NewModelB builds the m-CMP network. Cores 0..31 map to chip i/8; memory
// controllers 0..7 map to chip j/2. Cross-chip traffic is spread across
// the hubs deterministically by (source, destination) chip pair.
func NewModelB(k *sim.Kernel, cfg ModelBConfig) *Network {
	xbar := make([]*Link, cfg.Chips)
	links := make([]*Link, 0, cfg.Chips+cfg.Hubs)
	for i := range xbar {
		xbar[i] = &Link{Name: fmt.Sprintf("xbarB%d", i), SerLat: cfg.XbarSerLat}
		links = append(links, xbar[i])
	}
	hubs := make([]*Link, cfg.Hubs)
	for i := range hubs {
		hubs[i] = &Link{Name: fmt.Sprintf("hubB%d", i), SerLat: cfg.HubSerLat}
		links = append(links, hubs[i])
	}

	chipOf := func(n NodeID) int {
		if n.Kind == CoreNode {
			return n.Index / cfg.CoresPerChip
		}
		return n.Index / cfg.MemPerChip
	}

	return NewNetwork(k, "modelB", links, cfg.Chips*cfg.CoresPerChip, cfg.Chips*cfg.MemPerChip,
		func(from, to NodeID) ([]*Link, sim.Time) {
			if from == to {
				return nil, 0
			}
			cf, ct := chipOf(from), chipOf(to)
			if cf == ct {
				return []*Link{xbar[cf]}, cfg.IntraOneWay
			}
			h := hubs[(cf*7+ct*3)%cfg.Hubs]
			return []*Link{xbar[cf], h, xbar[ct]}, cfg.InterOneWay
		})
}
