package topo

import (
	"testing"

	"fairrw/internal/sim"
)

func TestLinkSerialization(t *testing.T) {
	l := &Link{Name: "l", SerLat: 4}
	// A 64-cycle window fits 16 messages at 4 cycles each; the 17th queues
	// into the next window.
	for i := 0; i < 16; i++ {
		if got := l.cross(0); got != 4 {
			t.Fatalf("cross %d = %d, want 4", i, got)
		}
	}
	if got := l.cross(0); got != 68 {
		t.Fatalf("overflow cross = %d, want 68 (next window + SerLat)", got)
	}
	if l.TotalWait != 64 {
		t.Fatalf("TotalWait = %d, want 64", l.TotalWait)
	}
	// A late message in an idle window does not queue.
	if got := l.cross(1000); got != 1004 {
		t.Fatalf("late cross = %d, want 1004", got)
	}
	l.Reset()
	if l.Msgs != 0 || l.TotalWait != 0 {
		t.Fatal("Reset did not clear link state")
	}
}

func TestLinkOutOfOrderChargesDoNotBlockPresent(t *testing.T) {
	l := &Link{Name: "l", SerLat: 4}
	// A reservation far in the future must not delay a message now.
	if got := l.cross(500); got != 504 {
		t.Fatalf("future charge = %d, want 504", got)
	}
	if got := l.cross(0); got != 4 {
		t.Fatalf("present message was blocked by a future reservation: %d", got)
	}
	if l.TotalWait != 0 {
		t.Fatalf("TotalWait = %d, want 0", l.TotalWait)
	}
}

func TestModelARouting(t *testing.T) {
	k := sim.New()
	n := NewModelA(k, DefaultModelA())

	// Self-route is free.
	if d := n.Uncongested(Core(3), Core(3)); d != 0 {
		t.Fatalf("self route latency = %d, want 0", d)
	}
	// Cross-chip propagation equals OneWay.
	if d := n.Uncongested(Core(0), Core(31)); d != 55 {
		t.Fatalf("cross-chip latency = %d, want 55", d)
	}
	// Model A memory is uniform: local and remote controllers cost the same.
	local := n.Uncongested(Core(5), Mem(5))
	remote := n.Uncongested(Core(5), Mem(6))
	if local != remote {
		t.Fatalf("model A memory should be uniform: local %d vs remote %d", local, remote)
	}
}

func TestModelBRouting(t *testing.T) {
	k := sim.New()
	n := NewModelB(k, DefaultModelB())

	// Same chip: cores 0 and 7 share chip 0.
	intra := n.Uncongested(Core(0), Core(7))
	// Cross chip: core 0 (chip 0) to core 8 (chip 1).
	inter := n.Uncongested(Core(0), Core(8))
	if intra != 20 || inter != 60 {
		t.Fatalf("intra=%d inter=%d, want 20/60", intra, inter)
	}
	// Memory controllers 0,1 are on chip 0; 2,3 on chip 1.
	if d := n.Uncongested(Core(3), Mem(1)); d != 20 {
		t.Fatalf("core3->mem1 = %d, want intra 20", d)
	}
	if d := n.Uncongested(Core(3), Mem(2)); d != 60 {
		t.Fatalf("core3->mem2 = %d, want inter 60", d)
	}
}

func TestCongestionGrowsDelay(t *testing.T) {
	k := sim.New()
	n := NewModelB(k, DefaultModelB())

	// Hammer one cross-chip route; later messages should see growing delay
	// as they queue on the hub.
	first := n.Delay(Core(0), Core(8))
	var last sim.Time
	for i := 0; i < 50; i++ {
		last = n.Delay(Core(0), Core(8))
	}
	if last <= first {
		t.Fatalf("delay did not grow under congestion: first=%d last=%d", first, last)
	}
	n.ResetStats()
	again := n.Delay(Core(0), Core(8))
	if again != first {
		t.Fatalf("after reset, delay = %d, want %d", again, first)
	}
}

func TestSendDelivers(t *testing.T) {
	k := sim.New()
	n := NewModelA(k, DefaultModelA())
	var deliveredAt sim.Time
	n.Send(Core(0), Core(1), func() { deliveredAt = k.Now() })
	k.Run()
	// 2 access links (4 each) + root (2) + propagation 55 = 65.
	if deliveredAt != 65 {
		t.Fatalf("delivered at %d, want 65", deliveredAt)
	}
	if n.Sent != 1 {
		t.Fatalf("Sent = %d, want 1", n.Sent)
	}
}

func TestModelBHubSpreading(t *testing.T) {
	k := sim.New()
	n := NewModelB(k, DefaultModelB())
	// Traffic between different chip pairs should not all use one hub.
	for cf := 0; cf < 4; cf++ {
		for ct := 0; ct < 4; ct++ {
			if cf == ct {
				continue
			}
			n.Delay(Core(cf*8), Core(ct*8))
		}
	}
	used := 0
	for _, l := range n.Links {
		if l.Name[:3] == "hub" && l.Msgs > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d hubs carried traffic; routing does not spread load", used)
	}
}

// TestDelayAtNoAllocs asserts the per-message path — precomputed route
// lookup plus link occupancy charging — allocates nothing.
func TestDelayAtNoAllocs(t *testing.T) {
	k := sim.New()
	n := NewModelB(k, DefaultModelB())
	var tm sim.Time
	if avg := testing.AllocsPerRun(500, func() {
		tm += n.DelayAt(tm, Core(0), Core(8))
		tm += n.DelayAt(tm, Core(3), Mem(2))
	}); avg != 0 {
		t.Fatalf("DelayAt allocates %.1f/op, want 0", avg)
	}
}

// BenchmarkDelayAt measures the per-message route cost on the model B
// cross-chip path (3 links: access, hub, access).
func BenchmarkDelayAt(b *testing.B) {
	k := sim.New()
	n := NewModelB(k, DefaultModelB())
	b.ReportAllocs()
	var tm sim.Time
	for i := 0; i < b.N; i++ {
		tm += n.DelayAt(tm, Core(0), Core(8))
	}
}
