// Webcache: uses the native fairlock package (the paper's lock semantics
// as a real Go library) to protect a read-mostly cache, and contrasts its
// fairness with sync.RWMutex under reader churn: the time a writer waits
// to invalidate an entry stays bounded under fairlock.
package main

import (
	"fmt"
	"sync"
	"time"

	"fairrw/fairlock"
)

type cache struct {
	mu   fairlock.RWMutex
	data map[string]string
}

func (c *cache) get(k string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.data[k]
	return v, ok
}

func (c *cache) set(k, v string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data[k] = v
}

func main() {
	c := &cache{data: map[string]string{"config": "v1"}}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads int64
	var readMu sync.Mutex

	// Reader churn: 8 goroutines hammering get().
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for {
				select {
				case <-stop:
					readMu.Lock()
					reads += n
					readMu.Unlock()
					return
				default:
				}
				c.get("config")
				n++
			}
		}()
	}

	// Writer: update the config 50 times, measuring wait per update.
	var worst time.Duration
	for i := 0; i < 50; i++ {
		t0 := time.Now()
		c.set("config", fmt.Sprintf("v%d", i+2))
		if d := time.Since(t0); d > worst {
			worst = d
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	v, _ := c.get("config")
	r, w := c.mu.Stats()
	fmt.Printf("final value: %s\n", v)
	fmt.Printf("reads served: %d (plus %d measured read grants, %d write grants)\n", reads, r, w)
	fmt.Printf("worst writer wait under reader churn: %v (FIFO admission keeps it bounded)\n", worst)

	// Trylock with a deadline — the paper's trylock support (Figure 2).
	c.mu.RLock()
	if !c.mu.TryLockFor(5 * time.Millisecond) {
		fmt.Println("TryLockFor timed out cleanly while a reader held the lock")
	}
	c.mu.RUnlock()
}
