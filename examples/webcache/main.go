// Webcache: uses the native fairlock package (the paper's lock semantics
// as a real Go library) to protect a read-mostly cache, and contrasts its
// fairness with sync.RWMutex under reader churn: the time a writer waits
// to invalidate an entry stays bounded under fairlock.
//
// It doubles as a manual perf check for the lock's rebuilt hot paths
// (atomic fast path + BRAVO reader slots + pooled FIFO): it reports read
// throughput and the lock's own grant counters, so a regression in the
// read fast path shows up directly in reads/sec.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fairrw/fairlock"
)

type cache struct {
	mu   fairlock.RWMutex
	data map[string]string
}

func (c *cache) get(k string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.data[k]
	return v, ok
}

func (c *cache) set(k, v string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data[k] = v
}

func main() {
	c := &cache{data: map[string]string{"config": "v1"}}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads atomic.Int64

	readers := runtime.GOMAXPROCS(0) * 2
	if readers < 8 {
		readers = 8
	}

	// Reader churn hammering get().
	start := time.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for {
				select {
				case <-stop:
					reads.Add(n)
					return
				default:
				}
				c.get("config")
				n++
			}
		}()
	}

	// Writer: update the config 50 times, measuring wait per update.
	var worst, total time.Duration
	const updates = 50
	for i := 0; i < updates; i++ {
		t0 := time.Now()
		c.set("config", fmt.Sprintf("v%d", i+2))
		d := time.Since(t0)
		total += d
		if d > worst {
			worst = d
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	v, _ := c.get("config")
	r, w := c.mu.Stats()
	fmt.Printf("final value: %s\n", v)
	fmt.Printf("readers: %d goroutines for %v\n", readers, elapsed.Round(time.Millisecond))
	fmt.Printf("reads served: %d (%.2fM reads/sec)\n",
		reads.Load(), float64(reads.Load())/elapsed.Seconds()/1e6)
	fmt.Printf("lock grants: %d read, %d write (queue now %d deep)\n", r, w, c.mu.QueueLen())
	fmt.Printf("writer wait under reader churn: worst %v, mean %v (FIFO admission keeps it bounded)\n",
		worst, (total / updates).Round(time.Microsecond))

	// Trylock with a deadline — the paper's trylock support (Figure 2).
	c.mu.RLock()
	if !c.mu.TryLockFor(5 * time.Millisecond) {
		fmt.Println("TryLockFor timed out cleanly while a reader held the lock")
	}
	c.mu.RUnlock()

	// RLocker interoperates with anything expecting a sync.Locker.
	cond := sync.NewCond(c.mu.RLocker())
	cond.L.Lock()
	cond.L.Unlock()
	fmt.Println("RLocker works as a sync.Locker (drop-in for sync.RWMutex)")
}
