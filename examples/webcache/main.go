// Webcache: uses the native fairlock package (the paper's lock semantics
// as a real Go library) to protect a read-mostly cache, and contrasts its
// fairness with sync.RWMutex under reader churn: the time a writer waits
// to invalidate an entry stays bounded under fairlock.
//
// It doubles as a manual perf check for the lock's rebuilt hot paths
// (atomic fast path + BRAVO reader slots + pooled FIFO): it reports read
// throughput and the lock's own grant counters, so a regression in the
// read fast path shows up directly in reads/sec.
//
// With -addr the same workload takes the same lock from a lockd lock
// service (cmd/lockd) instead of in-process: every goroutine opens its
// own connection and session and contends on one named lock, so the
// demo shows the fairness property surviving the move from a mutex in
// shared memory to a lease-based reservation in a server.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fairrw/fairlock"
	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
)

// locker is the slice of the RW-lock surface the demo needs. It is
// satisfied by *fairlock.RWMutex directly and by a lockd session via
// remoteLock.
type locker interface {
	RLock()
	RUnlock()
	Lock()
	Unlock()
}

// remoteLock adapts one lockd connection+session to locker. Each
// goroutine uses its own (a client Conn is not goroutine-safe), but all
// of them contend on the same named lock inside the service, which
// queues them in arrival order exactly like the in-process fairlock.
type remoteLock struct {
	c    *client.Conn
	sid  uint64
	name string
}

func (r *remoteLock) RLock()   { r.acquire(false) }
func (r *remoteLock) RUnlock() { r.release(false) }
func (r *remoteLock) Lock()    { r.acquire(true) }
func (r *remoteLock) Unlock()  { r.release(true) }

func (r *remoteLock) acquire(excl bool) {
	if err := r.c.Acquire(r.sid, r.name, excl, -1); err != nil {
		log.Fatalf("webcache: remote acquire: %v", err)
	}
}

func (r *remoteLock) release(excl bool) {
	if err := r.c.Release(r.sid, r.name, excl); err != nil {
		log.Fatalf("webcache: remote release: %v", err)
	}
}

func main() {
	addr := flag.String("addr", "", "lockd address; empty runs against the in-process fairlock")
	cohortB := flag.Int("cohort", 0, "cohort grant-batch bound B for the in-process lock: prefer up to B consecutive same-cohort grants before strict FIFO (0 = strict FIFO)")
	flag.Parse()

	// The cached value itself lives in an atomic pointer: the lock
	// provides the invalidate-then-publish exclusion being measured, the
	// pointer provides the in-process memory fence (in remote mode the
	// contenders would normally be separate processes).
	var val atomic.Pointer[string]
	v1 := "v1"
	val.Store(&v1)

	// newLock hands each goroutine its lock handle: the one shared
	// mutex locally, or a fresh connection+session against lockd.
	var mu *fairlock.RWMutex
	var newLock func() locker
	if *addr == "" {
		mu = &fairlock.RWMutex{}
		if *cohortB > 0 {
			// Cohort mode: the default CohortFunc maps each goroutine to
			// its BRAVO reader-slot shard, a per-P locality proxy, so
			// hand-offs prefer waiters whose cache state is already warm.
			mu.SetCohort(fairlock.CohortConfig{Batch: int32(*cohortB)})
		}
		newLock = func() locker { return mu }
	} else {
		newLock = func() locker {
			c, err := client.Dial(*addr)
			if err != nil {
				log.Fatalf("webcache: dial %s: %v", *addr, err)
			}
			sid, err := c.Open(30 * time.Second)
			if err != nil {
				log.Fatalf("webcache: open session: %v", err)
			}
			return &remoteLock{c: c, sid: sid, name: "webcache/config"}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads atomic.Int64

	readers := runtime.GOMAXPROCS(0) * 2
	if readers < 8 {
		readers = 8
	}

	// Reader churn hammering the cached value.
	start := time.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lk := newLock()
			n := int64(0)
			for {
				select {
				case <-stop:
					reads.Add(n)
					return
				default:
				}
				lk.RLock()
				_ = *val.Load()
				lk.RUnlock()
				n++
			}
		}()
	}

	// Writer: update the config 50 times, measuring wait per update.
	wlk := newLock()
	var worst, total time.Duration
	const updates = 50
	for i := 0; i < updates; i++ {
		v := fmt.Sprintf("v%d", i+2)
		t0 := time.Now()
		wlk.Lock()
		val.Store(&v)
		wlk.Unlock()
		d := time.Since(t0)
		total += d
		if d > worst {
			worst = d
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("final value: %s\n", *val.Load())
	fmt.Printf("readers: %d goroutines for %v\n", readers, elapsed.Round(time.Millisecond))
	fmt.Printf("reads served: %d (%.2fM reads/sec)\n",
		reads.Load(), float64(reads.Load())/elapsed.Seconds()/1e6)
	if mu != nil {
		r, w := mu.Stats()
		fmt.Printf("lock grants: %d read, %d write (queue now %d deep)\n", r, w, mu.QueueLen())
		if *cohortB > 0 {
			fmt.Printf("cohort grants: %d out-of-FIFO hand-offs within locality domains (B=%d)\n",
				mu.CohortGrants(), *cohortB)
		}
	} else if c, err := client.Dial(*addr); err == nil {
		if raw, err := c.Stats(); err == nil {
			var snap lockmgr.Snapshot
			if json.Unmarshal(raw, &snap) == nil {
				fmt.Printf("lockd grants: %d shared, %d excl (wait p99 %.1fus, %d sessions)\n",
					snap.SharedGrants, snap.ExclGrants, snap.WaitP99US, snap.Sessions)
			}
		}
		c.Close()
	}
	fmt.Printf("writer wait under reader churn: worst %v, mean %v (FIFO admission keeps it bounded)\n",
		worst, (total / updates).Round(time.Microsecond))

	if mu == nil {
		return // the epilogue exercises fairlock-only API surface
	}

	// Trylock with a deadline — the paper's trylock support (Figure 2).
	mu.RLock()
	if !mu.TryLockFor(5 * time.Millisecond) {
		fmt.Println("TryLockFor timed out cleanly while a reader held the lock")
	}
	mu.RUnlock()

	// RLocker interoperates with anything expecting a sync.Locker.
	cond := sync.NewCond(mu.RLocker())
	cond.L.Lock()
	cond.L.Unlock()
	fmt.Println("RLocker works as a sync.Locker (drop-in for sync.RWMutex)")
}
