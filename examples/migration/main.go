// Migration: demonstrates the Section III-C machinery — a thread that
// migrates while waiting in a lock queue (its stale entry is skipped by
// the grant timer), a lock owner that migrates and releases remotely, and
// a trylock that expires without wedging the queue.
package main

import (
	"fmt"

	"fairrw/internal/core"
	"fairrw/internal/machine"
)

func main() {
	m := machine.ModelA()
	dev := core.New(m, core.Options{})
	lock := m.Mem.AllocLine()

	// Thread 1 holds the lock for a while.
	m.Spawn("holder", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		fmt.Printf("[%8d] t1 acquired on core %d\n", c.P.Now(), c.Core())
		c.Compute(20_000)
		c.HwUnlock(lock, true)
		fmt.Printf("[%8d] t1 released\n", c.P.Now())
	})

	// Thread 2 enqueues, then migrates across the machine while waiting;
	// its abandoned queue entry passes the grant along via the timer.
	m.Spawn("migrator", 2, 1, func(c *machine.Ctx) {
		c.Compute(500)
		c.Acq(lock, true) // enqueue from core 1
		fmt.Printf("[%8d] t2 queued from core %d, now migrating to core 9\n", c.P.Now(), c.Core())
		c.Migrate(9)
		c.HwLock(lock, true) // re-request from core 9
		fmt.Printf("[%8d] t2 acquired on core %d after migrating\n", c.P.Now(), c.Core())
		// Migrate while holding: the release will arrive from core 20 and
		// be forwarded through the LRT (remote release).
		c.Migrate(20)
		c.Compute(1_000)
		c.HwUnlock(lock, true)
		fmt.Printf("[%8d] t2 released remotely from core %d\n", c.P.Now(), c.Core())
	})

	// Thread 3 uses a trylock that gives up, then comes back later.
	m.Spawn("trier", 3, 2, func(c *machine.Ctx) {
		c.Compute(1_000)
		if !c.HwTryLock(lock, true, 3) {
			fmt.Printf("[%8d] t3 trylock expired (entry left in queue, timer will skip it)\n", c.P.Now())
		}
		c.Compute(40_000)
		c.HwLock(lock, true)
		fmt.Printf("[%8d] t3 finally acquired\n", c.P.Now())
		c.HwUnlock(lock, true)
	})

	m.Run()
	fmt.Printf("\ndone at cycle %d\n", m.K.Now())
	fmt.Printf("grant timeouts: %d, remote releases: %d, direct transfers: %d\n",
		dev.Stats.GrantTimeouts, dev.Stats.RemoteReleases, dev.Stats.DirectXfers)
}
