// STM tree: runs the transactional red-black tree of Section IV-B on the
// m-CMP Model B with the sw-only (software RW locks, visible readers) and
// LCU commit engines, showing the reader-locking congestion gap.
package main

import (
	"fmt"

	"fairrw/internal/stmbench"
)

func main() {
	fmt.Println("RB-tree, 2^10 keys, 16 threads, 75% read-only, model B")
	fmt.Println()
	for _, engine := range []string{"swonly", "lcu", "fraser"} {
		r := stmbench.Run(stmbench.Workload{
			Model: "B", Engine: engine, Structure: "rb",
			MaxNodes: 1 << 10, Threads: 16, ReadPct: 75,
			OpsPerThr: 100, Seed: 7,
		})
		fmt.Printf("%-7s  %8.0f cycles/txn  (exec %6.0f + commit %6.0f, %.2f aborts/commit)\n",
			engine, r.MeanTxnCycles, r.ExecPerTxn, r.CommitPerTxn, r.AbortsPerCommit)
	}
	fmt.Println()
	fmt.Println("the sw-only commit read-locks the whole read set (visible readers),")
	fmt.Println("congesting the tree root; the LCU's fair hardware RW locks remove it")
}
