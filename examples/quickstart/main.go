// Quickstart: build the Model A machine, attach the LCU/LRT lock device,
// and run two simulated threads taking a reader-writer lock — with a
// protocol trace so the REQUEST / GRANT / transfer message flow of the
// paper's Figures 4-6 is visible.
package main

import (
	"fmt"

	"fairrw/internal/core"
	"fairrw/internal/machine"
)

func main() {
	m := machine.ModelA()
	core.New(m, core.Options{
		Trace: func(line string) { fmt.Println(" ", line) },
	})

	lock := m.Mem.AllocLine()
	fmt.Printf("lock word at %#x (home LRT %d)\n\n", lock, m.Mem.HomeOf(lock))

	// A writer and two readers contend for the same lock.
	m.Spawn("writer", 1, 0, func(c *machine.Ctx) {
		c.HwLock(lock, true)
		fmt.Printf("[%8d] writer t1 entered (core %d)\n", c.P.Now(), c.Core())
		c.Compute(500)
		fmt.Printf("[%8d] writer t1 leaving\n", c.P.Now())
		c.HwUnlock(lock, true)
	})
	for i := 0; i < 2; i++ {
		tid := uint64(i + 2)
		corenum := i + 1
		m.Spawn("reader", tid, corenum, func(c *machine.Ctx) {
			c.Compute(100) // arrive after the writer
			c.HwLock(lock, false)
			fmt.Printf("[%8d] reader t%d entered (core %d) — readers share\n", c.P.Now(), tid, c.Core())
			c.Compute(300)
			c.HwUnlock(lock, false)
			fmt.Printf("[%8d] reader t%d left\n", c.P.Now(), tid)
		})
	}

	m.Run()
	fmt.Printf("\nsimulation finished at cycle %d\n", m.K.Now())
}
