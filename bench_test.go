// Package fairrw's top-level benchmarks regenerate each figure of the
// paper as a testing.B target (one benchmark per table/figure; Figures 9
// and 10 also expose per-lock sub-benchmarks), plus native benchmarks of
// the fairlock package against sync.RWMutex.
//
// Simulator benchmarks report cycles_per_CS / cycles_per_txn via
// b.ReportMetric; wall-clock ns/op measures simulator speed, not the
// modelled hardware.
package main

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"fairrw/fairlock"
	"fairrw/internal/bench"
	"fairrw/internal/machine"
	"fairrw/internal/microbench"
	"fairrw/internal/ssb"
	"fairrw/internal/stmbench"

	"fairrw/internal/apps"
	"fairrw/internal/core"
)

// BenchmarkFig09 measures the CS microbenchmark (LCU vs SSB) per model,
// lock and write percentage — the data behind Figures 9a/9b.
func BenchmarkFig09(b *testing.B) {
	for _, model := range []string{"A", "B"} {
		for _, lock := range []string{"lcu", "ssb"} {
			for _, wp := range []int{100, 75, 50, 25} {
				name := fmt.Sprintf("model%s/%s/%d%%w", model, lock, wp)
				b.Run(name, func(b *testing.B) {
					var cpc float64
					for i := 0; i < b.N; i++ {
						r := microbench.Run(microbench.Config{
							Model: model, Lock: lock, Threads: 16,
							WritePct: wp, TotalIters: 2000, Seed: 42,
						})
						cpc = r.CyclesPerCS
					}
					b.ReportMetric(cpc, "cycles/CS")
				})
			}
		}
	}
}

// BenchmarkFig10 measures the CS microbenchmark against the software
// locks — the data behind Figures 10a/10b.
func BenchmarkFig10(b *testing.B) {
	for _, lock := range []string{"lcu", "tas", "tatas", "mcs", "mrsw"} {
		for _, threads := range []int{16, 40} {
			name := fmt.Sprintf("modelA/%s/%dt", lock, threads)
			b.Run(name, func(b *testing.B) {
				var cpc float64
				for i := 0; i < b.N; i++ {
					r := microbench.Run(microbench.Config{
						Model: "A", Lock: lock, Threads: threads,
						WritePct: 100, TotalIters: 2000, Seed: 42,
					})
					cpc = r.CyclesPerCS
				}
				b.ReportMetric(cpc, "cycles/CS")
			})
		}
	}
}

// BenchmarkFig11 measures STM scalability on the RB-tree (Figure 11).
func BenchmarkFig11(b *testing.B) {
	for _, engine := range []string{"swonly", "lcu", "fraser", "ssb"} {
		for _, threads := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/%dt", engine, threads), func(b *testing.B) {
				var mean float64
				for i := 0; i < b.N; i++ {
					r := stmbench.Run(stmbench.Workload{
						Model: "A", Engine: engine, Structure: "rb",
						MaxNodes: 1 << 8, Threads: threads, ReadPct: 75,
						OpsPerThr: 60, Seed: 42,
					})
					mean = r.MeanTxnCycles
				}
				b.ReportMetric(mean, "cycles/txn")
			})
		}
	}
}

// BenchmarkFig12 measures the three STM structures at 16 threads
// (Figure 12; reduced sizes, see EXPERIMENTS.md).
func BenchmarkFig12(b *testing.B) {
	for _, structure := range []string{"rb", "skip", "hash"} {
		for _, engine := range []string{"swonly", "lcu"} {
			b.Run(fmt.Sprintf("%s/%s", structure, engine), func(b *testing.B) {
				var mean float64
				for i := 0; i < b.N; i++ {
					r := stmbench.Run(stmbench.Workload{
						Model: "A", Engine: engine, Structure: structure,
						MaxNodes: 1 << 12, Threads: 16, ReadPct: 75,
						OpsPerThr: 60, Seed: 42,
					})
					mean = r.MeanTxnCycles
				}
				b.ReportMetric(mean, "cycles/txn")
			})
		}
	}
}

// BenchmarkFig13 measures the application kernels (Figure 13).
func BenchmarkFig13(b *testing.B) {
	for _, app := range []struct {
		name    string
		threads int
	}{{"fluidanimate", 32}, {"cholesky", 16}, {"radiosity", 16}} {
		for _, lock := range []string{"posix", "lcu", "ssb"} {
			b.Run(app.name+"/"+lock, func(b *testing.B) {
				var cycles float64
				for i := 0; i < b.N; i++ {
					m := machine.ModelA()
					switch lock {
					case "lcu":
						core.New(m, core.Options{})
					case "ssb":
						ssb.New(m, ssb.Options{})
					}
					cycles = float64(apps.Run(m, apps.Config{
						App: app.name, Lock: lock, Threads: app.threads, Seed: 7,
					}))
				}
				b.ReportMetric(cycles, "cycles")
			})
		}
	}
}

// BenchmarkTables regenerates the static tables (Figures 1 and 8).
func BenchmarkTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
		bench.Table8(io.Discard)
	}
}

// BenchmarkFairlockRead compares the native fair RW lock with sync.RWMutex
// on a read-only workload (real hardware, not simulated).
func BenchmarkFairlockRead(b *testing.B) {
	b.Run("fairlock", func(b *testing.B) {
		var m fairlock.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m.RLock()
				m.RUnlock()
			}
		})
	})
	b.Run("sync", func(b *testing.B) {
		var m sync.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m.RLock()
				m.RUnlock()
			}
		})
	})
}

// BenchmarkFairlockMixed compares a 90/10 read/write mix.
func BenchmarkFairlockMixed(b *testing.B) {
	b.Run("fairlock", func(b *testing.B) {
		var m fairlock.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if i%10 == 0 {
					m.Lock()
					m.Unlock()
				} else {
					m.RLock()
					m.RUnlock()
				}
				i++
			}
		})
	})
	b.Run("sync", func(b *testing.B) {
		var m sync.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if i%10 == 0 {
					m.Lock()
					m.Unlock()
				} else {
					m.RLock()
					m.RUnlock()
				}
				i++
			}
		})
	})
}
