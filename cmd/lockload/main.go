// lockload is the load generator for lockd. It runs in three modes:
//
// Closed loop (default): N worker goroutines, each with its own
// connection and session, issue lock transactions back to back — each
// worker's next request waits for its previous response. Throughput is
// the primary output; latency percentiles describe an unloaded or
// self-limited system. -depth pipelines several transactions per flush,
// which amortizes the per-syscall cost that dominates loopback runs.
//
// Open loop (-open -rate R): arrivals follow a Poisson process at R
// transactions/second across all connections, and each transaction's
// latency is measured from its *scheduled* arrival time, not from when
// the client got around to sending it. When the server falls behind,
// queueing delay therefore lands in the histogram instead of silently
// stretching the arrival gaps — the coordination-omission correction
// that makes latency-under-load curves honest. -ratesweep produces one
// run per rate point.
//
// Cluster loop (-cluster a,b,c): each worker drives a cluster-aware
// Router seeded with the given members; ops route to each name's
// rendezvous owner and re-aim across failovers. The run reports the
// membership epoch, the per-node op share (the live measurement of the
// rendezvous split), and a separate failover-error count for outcomes
// a member death explains — so a kill-one-node run can be asserted to
// finish with *only* lease-window errors.
//
// One transaction is an acquire+release pair (two wire ops) on a key
// drawn from -keys — uniformly by default, or Zipfian with -zipf s
// (s > 1; key 0 hottest), which is what makes lockd's hot-lock table
// light up with the generator's actual skew.
//
//	lockload -conns 8 -duration 5s -readpct 90            # closed loop
//	lockload -depth 4 -json                               # pipelined, JSON out
//	lockload -open -ratesweep 5000,10000,20000,40000      # latency curve
//	lockload -zipf 1.3 -prom client.prom                  # skewed keys, prom out
//	lockload -cluster :7601,:7602,:7603 -zipf 1.2         # routed cluster loop
//	lockload -check BENCH_lockd.json                      # validate bench doc
//
// -warmup excludes a leading window from every statistic (histograms
// reset when it closes). -json emits machine-readable results for
// assembling BENCH_lockd.json; -check validates such a document and is
// wired into CI so the committed numbers always parse. -prom writes the
// client-observed latency histograms in the same Prometheus text schema
// lockd's admin plane exports (lockload_latency_seconds vs
// lockd_wait_seconds), so client- and server-attributed time can be
// diffed in one report: the gap is the wire, the batching, and the
// event loop.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
	"fairrw/internal/stats"
)

// point is one run's result, shaped for both the human table and the
// JSON document committed as BENCH_lockd.json.
type point struct {
	Mode    string  `json:"mode"` // "closed", "open", or "cluster"
	Server  string  `json:"server,omitempty"`
	ReadPct int     `json:"read_pct"`
	Conns   int     `json:"conns"`
	Depth   int     `json:"depth,omitempty"`
	Rate    float64 `json:"rate,omitempty"` // open loop: target transactions/s
	DurS    float64 `json:"duration_s"`

	// Cluster mode: the membership the Router saw and where the ops
	// landed. node_share is the fraction of successful ops served by
	// each member — the live measurement of the rendezvous split.
	ClusterMembers int                `json:"cluster_members,omitempty"`
	ClusterEpoch   uint64             `json:"cluster_epoch,omitempty"`
	NodeShare      map[string]float64 `json:"node_share,omitempty"`

	// Host/server metadata, so a committed row is self-describing: a
	// "workers=4" number means nothing without knowing how many
	// schedulable CPUs the generator and the daemon actually had, or
	// whether shard-affinity routing was on.
	GoMaxProcs     int  `json:"gomaxprocs,omitempty"`
	NumCPU         int  `json:"num_cpu,omitempty"`
	ServerWorkers  int  `json:"server_workers,omitempty"`
	ServerAffinity bool `json:"server_affinity,omitempty"`

	Pairs        uint64  `json:"pairs"`
	OpsPerSec    float64 `json:"ops_per_sec"` // wire ops: 2 per pair
	AchievedRate float64 `json:"achieved_rate,omitempty"`
	Timeouts     uint64  `json:"timeouts"`
	Errors       uint64  `json:"errors"`
	// FailoverErrs counts cluster-mode outcomes explained by a member
	// death: routing that ran out of reachable owners mid-failover,
	// sessions expired by the survivor's reaper, and holds that died
	// with their node (release answered NotHeld). Expected — and
	// bounded by the lease window — in any run that kills a node;
	// anything else lands in Errors and fails the run.
	FailoverErrs uint64 `json:"failover_errs,omitempty"`

	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MeanUS float64 `json:"mean_us"`
	MaxUS  float64 `json:"max_us"`
}

// benchDoc is the schema of BENCH_lockd.json. CI runs `lockload -check`
// against the committed file, so the required keys below are enforced,
// not aspirational.
type benchDoc struct {
	Host              string  `json:"host"`
	Date              string  `json:"date"`
	GoVersion         string  `json:"go_version"`
	BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
	ClosedLoop        []point `json:"closed_loop"`
	OpenLoop          []point `json:"open_loop"`
	ClusterLoop       []point `json:"cluster_loop,omitempty"`
	Notes             string  `json:"notes,omitempty"`
}

// worker carries one goroutine's tallies; merged after the run.
type worker struct {
	pairs    uint64
	timeouts uint64
	errors   uint64
	failover uint64
	lat      stats.Histogram // transaction latency, ns

	// Cluster mode: successful pairs per serving member, and the
	// membership this worker's Router ended the run with.
	nodeOps map[string]uint64
	epoch   uint64
	members int
}

func (w *worker) reset() {
	w.pairs, w.timeouts, w.errors, w.failover = 0, 0, 0, 0
	w.lat.Reset()
	for k := range w.nodeOps {
		delete(w.nodeOps, k)
	}
}

type runCfg struct {
	addr     string
	seeds    []string // cluster mode: seed addresses for the Router
	conns    int
	duration time.Duration
	warmup   time.Duration
	readPct  int
	keys     int
	depth    int
	rate     float64 // open loop only; transactions/s across all conns
	open     bool
	cluster  bool
	zipf     float64 // key-skew exponent; 0 = uniform
	wait     time.Duration
	lease    time.Duration
	hold     time.Duration
}

// picker draws key indexes: uniform, or Zipfian when -zipf is set (key
// 0 is the hottest — the skew lockd's hot-lock table should surface).
func (cfg *runCfg) picker(rng *rand.Rand, n int) func() int {
	if cfg.zipf > 1 {
		z := rand.NewZipf(rng, cfg.zipf, 1, uint64(n-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(n) }
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7600", "lockd address")
		conns     = flag.Int("conns", 8, "concurrent client goroutines (one connection + session each)")
		duration  = flag.Duration("duration", 5*time.Second, "measurement window per run (after warmup)")
		warmup    = flag.Duration("warmup", 0, "leading window excluded from all statistics")
		readPct   = flag.Int("readpct", 90, "percentage of acquires that are shared")
		keys      = flag.Int("keys", 16, "distinct lock names")
		depth     = flag.Int("depth", 1, "closed loop: transactions pipelined per flush")
		open      = flag.Bool("open", false, "open-loop mode: Poisson arrivals, latency from scheduled arrival")
		rate      = flag.Float64("rate", 10000, "open loop: target transactions/s across all connections")
		zipf      = flag.Float64("zipf", 0, "Zipfian key skew exponent (> 1; 0 = uniform keys)")
		clusterArg = flag.String("cluster", "", "comma-separated cluster seed addresses; route every op through the cluster-aware Router")
		promPath   = flag.String("prom", "", "write client-side latency histograms in Prometheus text format here (\"-\" = stdout)")
		wait      = flag.Duration("wait", time.Second, "acquire wait bound (FIFO timed acquire)")
		lease     = flag.Duration("lease", 10*time.Second, "session lease")
		hold      = flag.Duration("hold", 0, "closed loop, depth 1: critical-section hold time")
		sweepArg  = flag.String("sweep", "", "closed loop: comma-separated read percentages, one run per point")
		rateSweep = flag.String("ratesweep", "", "open loop: comma-separated transaction rates, one run per point")
		jsonOut   = flag.Bool("json", false, "emit a JSON array of run results instead of the table")
		checkPath = flag.String("check", "", "validate a BENCH_lockd.json document and exit")
	)
	flag.Parse()

	if *checkPath != "" {
		if err := checkBenchDoc(*checkPath); err != nil {
			fmt.Fprintf(os.Stderr, "lockload: %s: %v\n", *checkPath, err)
			os.Exit(1)
		}
		fmt.Printf("lockload: %s: ok\n", *checkPath)
		return
	}

	cfg := runCfg{
		addr: *addr, conns: *conns, duration: *duration, warmup: *warmup,
		readPct: *readPct, keys: *keys, depth: *depth, rate: *rate,
		open: *open, zipf: *zipf, wait: *wait, lease: *lease, hold: *hold,
	}
	if *clusterArg != "" {
		for _, s := range strings.Split(*clusterArg, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.seeds = append(cfg.seeds, s)
			}
		}
		cfg.cluster = len(cfg.seeds) > 0
	}
	if cfg.depth < 1 {
		log.Fatal("lockload: -depth must be >= 1")
	}
	if cfg.cluster && *open {
		log.Fatal("lockload: -cluster and -open are mutually exclusive (the Router is a synchronous closed-loop client)")
	}
	if cfg.cluster && cfg.depth > 1 {
		log.Fatal("lockload: -cluster requires -depth 1 (Router ops are unpipelined round trips)")
	}
	if cfg.zipf != 0 && cfg.zipf <= 1 {
		log.Fatal("lockload: -zipf must be > 1 (or 0 for uniform)")
	}
	if cfg.cluster {
		// The stats/serverInfo side channels talk to one member directly.
		cfg.addr = cfg.seeds[0]
	}

	type runSpec struct {
		readPct int
		rate    float64
	}
	specs := []runSpec{{*readPct, *rate}}
	if *open && *rateSweep != "" {
		specs = specs[:0]
		for _, s := range strings.Split(*rateSweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || r <= 0 {
				log.Fatalf("lockload: bad -ratesweep point %q", s)
			}
			specs = append(specs, runSpec{*readPct, r})
		}
	} else if !*open && *sweepArg != "" {
		specs = specs[:0]
		for _, s := range strings.Split(*sweepArg, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || p < 0 || p > 100 {
				log.Fatalf("lockload: bad -sweep point %q", s)
			}
			specs = append(specs, runSpec{p, *rate})
		}
	}

	if !*jsonOut {
		mode := "closed loop"
		target := cfg.addr
		if *open {
			mode = "open loop"
		}
		if cfg.cluster {
			mode = "cluster loop"
			target = strings.Join(cfg.seeds, ",")
		}
		fmt.Printf("lockload: %s, %d conns, depth %d, %v/run (+%v warmup), %d keys, wait %v -> %s\n",
			mode, cfg.conns, cfg.depth, cfg.duration, cfg.warmup, cfg.keys, cfg.wait, target)
		fmt.Printf("%7s %10s %12s %12s %9s %9s %9s %9s %9s %7s %7s\n",
			"read%", "rate", "pairs", "ops/s", "p50(us)", "p95(us)", "p99(us)", "p999(us)", "timeouts", "errors", "failov")
	}
	srvWorkers, srvAffinity := serverInfo(cfg.addr)
	var results []point
	var hists []stats.Histogram
	var failed bool
	for _, spec := range specs {
		c := cfg
		c.readPct, c.rate = spec.readPct, spec.rate
		p, lat := run(c)
		p.GoMaxProcs = runtime.GOMAXPROCS(0)
		p.NumCPU = runtime.NumCPU()
		p.ServerWorkers, p.ServerAffinity = srvWorkers, srvAffinity
		results = append(results, p)
		hists = append(hists, lat)
		if p.Errors > 0 {
			failed = true
		}
		if !*jsonOut {
			rateCol := "-"
			if *open {
				rateCol = fmt.Sprintf("%.0f", p.Rate)
			}
			fmt.Printf("%7d %10s %12d %12.0f %9.1f %9.1f %9.1f %9.1f %9d %7d %7d\n",
				p.ReadPct, rateCol, p.Pairs, p.OpsPerSec,
				p.P50US, p.P95US, p.P99US, p.P999US, p.Timeouts, p.Errors, p.FailoverErrs)
		}
	}

	if *promPath != "" {
		if err := writeProm(*promPath, results, hists); err != nil {
			log.Fatalf("lockload: write prom: %v", err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
	} else if c, err := client.Dial(cfg.addr); err == nil {
		if raw, err := c.Stats(); err == nil {
			var snap lockmgr.Snapshot
			if json.Unmarshal(raw, &snap) == nil {
				fmt.Printf("server: %d shared + %d excl grants, %d timeouts, %d lease expirations, %d entries, wait p99 %.1fus\n",
					snap.SharedGrants, snap.ExclGrants, snap.Timeouts,
					snap.LeaseExpirations, snap.Entries, snap.WaitP99US)
			}
		}
		c.Close()
	}
	if failed {
		os.Exit(1)
	}
}

// serverInfo asks the target daemon to describe itself through the
// Stats payload (worker count, affinity mode). Best effort: a server
// predating those fields, or no server at all, yields zeros and the
// bench rows simply omit the metadata.
func serverInfo(addr string) (workers int, affinity bool) {
	c, err := client.Dial(addr)
	if err != nil {
		return 0, false
	}
	defer c.Close()
	raw, err := c.Stats()
	if err != nil {
		return 0, false
	}
	var info struct {
		ServerWorkers  int  `json:"server_workers"`
		ServerAffinity bool `json:"server_affinity"`
	}
	if json.Unmarshal(raw, &info) != nil {
		return 0, false
	}
	return info.ServerWorkers, info.ServerAffinity
}

// checkBenchDoc enforces BENCH_lockd.json's contract: it parses, it
// names its host and toolchain, it records the pre-change baseline, and
// its open-loop curve has at least 4 rate points with sane percentiles.
func checkBenchDoc(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if doc.Host == "" || doc.Date == "" || doc.GoVersion == "" {
		return fmt.Errorf("missing host/date/go_version")
	}
	if doc.BaselineOpsPerSec <= 0 {
		return fmt.Errorf("baseline_ops_per_sec must be > 0")
	}
	if len(doc.ClosedLoop) == 0 {
		return fmt.Errorf("closed_loop is empty")
	}
	if len(doc.OpenLoop) < 4 {
		return fmt.Errorf("open_loop has %d points, need >= 4", len(doc.OpenLoop))
	}
	all := append(append([]point{}, doc.ClosedLoop...), doc.OpenLoop...)
	all = append(all, doc.ClusterLoop...)
	for i, p := range all {
		if p.Errors > 0 {
			return fmt.Errorf("point %d: recorded with %d errors", i, p.Errors)
		}
		if p.OpsPerSec <= 0 {
			return fmt.Errorf("point %d: ops_per_sec missing", i)
		}
		if p.P50US <= 0 || p.P99US < p.P50US {
			return fmt.Errorf("point %d: implausible percentiles p50=%v p99=%v", i, p.P50US, p.P99US)
		}
		// New-style rows carry host metadata; a row that names the server's
		// worker count must also name the CPU budget it ran under, or the
		// number cannot be interpreted.
		if p.ServerWorkers != 0 && (p.GoMaxProcs <= 0 || p.NumCPU <= 0) {
			return fmt.Errorf("point %d: server_workers=%d without gomaxprocs/num_cpu", i, p.ServerWorkers)
		}
	}
	for i, p := range doc.OpenLoop {
		if p.Mode != "open" || p.Rate <= 0 {
			return fmt.Errorf("open_loop[%d]: not an open-loop point", i)
		}
	}
	for i, p := range doc.ClusterLoop {
		if p.Mode != "cluster" {
			return fmt.Errorf("cluster_loop[%d]: not a cluster point", i)
		}
		if p.ClusterMembers < 1 {
			return fmt.Errorf("cluster_loop[%d]: cluster_members missing", i)
		}
		if len(p.NodeShare) == 0 || len(p.NodeShare) > p.ClusterMembers {
			return fmt.Errorf("cluster_loop[%d]: node_share has %d members for a %d-member cluster",
				i, len(p.NodeShare), p.ClusterMembers)
		}
		var sum float64
		for addr, s := range p.NodeShare {
			if s <= 0 || s > 1 {
				return fmt.Errorf("cluster_loop[%d]: implausible share %v for %s", i, s, addr)
			}
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("cluster_loop[%d]: node_share sums to %v, want 1", i, sum)
		}
	}
	return nil
}

// writeProm renders each run's client-observed latency histogram in the
// Prometheus text schema lockd's admin plane uses, one label set per
// run. Diffing lockload_latency_seconds against the server's
// lockd_wait_seconds attributes a transaction's time: what the server
// never saw (wire + batching + event loop) is the difference.
func writeProm(path string, results []point, hists []stats.Histogram) error {
	var buf strings.Builder
	fmt.Fprintf(&buf, "# TYPE lockload_latency_seconds histogram\n")
	for i := range results {
		p := &results[i]
		labels := fmt.Sprintf(`mode=%q,read_pct="%d",conns="%d",depth="%d",rate="%g"`,
			p.Mode, p.ReadPct, p.Conns, p.Depth, p.Rate)
		hists[i].WritePromSeries(&buf, "lockload_latency_seconds", labels, 1e-9)
	}
	fmt.Fprintf(&buf, "# TYPE lockload_pairs_total counter\n")
	for i := range results {
		p := &results[i]
		labels := fmt.Sprintf(`mode=%q,read_pct="%d",conns="%d",depth="%d",rate="%g"`,
			p.Mode, p.ReadPct, p.Conns, p.Depth, p.Rate)
		fmt.Fprintf(&buf, "lockload_pairs_total{%s} %d\n", labels, p.Pairs)
		fmt.Fprintf(&buf, "lockload_timeouts_total{%s} %d\n", labels, p.Timeouts)
	}
	if path == "-" {
		_, err := os.Stdout.WriteString(buf.String())
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

// run drives one measurement window and folds the workers' tallies.
// The returned histogram is the merged transaction-latency distribution
// (ns), kept whole for -prom output.
func run(cfg runCfg) (point, stats.Histogram) {
	var stop atomic.Bool
	var gen atomic.Uint32 // bumped when the warmup window closes
	workers := make([]worker, cfg.conns)
	names := make([]string, cfg.keys)
	for i := range names {
		names[i] = fmt.Sprintf("key-%04d", i)
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.conns; w++ {
		w := w
		if cfg.cluster {
			workers[w].nodeOps = make(map[string]uint64)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch {
			case cfg.cluster:
				runCluster(cfg, w, names, &workers[w], &stop, &gen)
			case cfg.open:
				runOpen(cfg, w, names, &workers[w], &stop, &gen)
			default:
				runClosed(cfg, w, names, &workers[w], &stop, &gen)
			}
		}()
	}
	if cfg.warmup > 0 {
		time.Sleep(cfg.warmup)
	}
	gen.Add(1) // workers reset their tallies; measurement starts now
	measStart := time.Now()
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(measStart)

	var total worker
	for i := range workers {
		total.pairs += workers[i].pairs
		total.timeouts += workers[i].timeouts
		total.errors += workers[i].errors
		total.failover += workers[i].failover
		total.lat.Merge(&workers[i].lat)
	}
	p := point{
		ReadPct: cfg.readPct, Conns: cfg.conns, DurS: elapsed.Seconds(),
		Pairs: total.pairs, OpsPerSec: float64(2*total.pairs) / elapsed.Seconds(),
		Timeouts: total.timeouts, Errors: total.errors, FailoverErrs: total.failover,
		P50US: total.lat.Percentile(50) / 1e3, P95US: total.lat.Percentile(95) / 1e3,
		P99US: total.lat.Percentile(99) / 1e3, P999US: total.lat.Percentile(99.9) / 1e3,
		MeanUS: total.lat.Mean() / 1e3, MaxUS: float64(total.lat.Max()) / 1e3,
	}
	switch {
	case cfg.cluster:
		p.Mode, p.Depth = "cluster", cfg.depth
		shares := make(map[string]uint64)
		var served uint64
		for i := range workers {
			if workers[i].epoch > p.ClusterEpoch {
				p.ClusterEpoch = workers[i].epoch
			}
			if workers[i].members > p.ClusterMembers {
				p.ClusterMembers = workers[i].members
			}
			for addr, n := range workers[i].nodeOps {
				shares[addr] += n
				served += n
			}
		}
		if served > 0 {
			p.NodeShare = make(map[string]float64, len(shares))
			for addr, n := range shares {
				p.NodeShare[addr] = float64(n) / float64(served)
			}
		}
	case cfg.open:
		p.Mode, p.Rate = "open", cfg.rate
		p.AchievedRate = float64(total.pairs) / elapsed.Seconds()
	default:
		p.Mode, p.Depth = "closed", cfg.depth
	}
	return p, total.lat
}

// runCluster is the cluster-mode worker: one Router per goroutine, every
// transaction routed to its name's rendezvous owner, latency measured
// per acquire+release pair (no pipelining — a Router op is a full round
// trip, possibly several across a failover). Outcomes a member death
// explains — no reachable owner within the retry budget, a session the
// survivor's reaper expired, a hold that died with its node — count as
// failover errors; anything else is a hard error and stops the worker.
func runCluster(cfg runCfg, w int, names []string, res *worker, stop *atomic.Bool, gen *atomic.Uint32) {
	r, err := client.NewRouter(client.RouterConfig{Seeds: cfg.seeds, Lease: cfg.lease})
	if err != nil {
		log.Printf("lockload: worker %d: router: %v", w, err)
		res.errors++
		return
	}
	defer r.Close()
	defer func() {
		res.epoch = r.Epoch()
		res.members = len(r.Members())
	}()
	rng := rand.New(rand.NewSource(int64(w) + 1))
	pick := cfg.picker(rng, len(names))
	var lastGen uint32
	for !stop.Load() {
		if g := gen.Load(); g != lastGen {
			lastGen = g
			res.reset()
		}
		key := names[pick()]
		excl := rng.Intn(100) >= cfg.readPct
		t0 := time.Now()
		err := r.Acquire(key, excl, cfg.wait)
		switch {
		case errors.Is(err, lockmgr.ErrTimeout):
			res.timeouts++
			continue
		case errors.Is(err, client.ErrNoQuorum), errors.Is(err, lockmgr.ErrExpired):
			res.failover++
			continue
		case err != nil:
			log.Printf("lockload: worker %d: acquire %q: %v", w, key, err)
			res.errors++
			return
		}
		if cfg.hold > 0 {
			time.Sleep(cfg.hold)
		}
		relErr := r.Release(key, excl)
		switch {
		case relErr == nil:
			res.pairs++
			res.lat.Add(uint64(time.Since(t0)))
			res.nodeOps[r.Owner(key)]++
		case errors.Is(relErr, lockmgr.ErrNotHeld), errors.Is(relErr, lockmgr.ErrExpired),
			errors.Is(relErr, client.ErrNoQuorum):
			// The owner died between acquire and release: the hold died
			// with it (its successor answers NotHeld once the quarantine
			// clears), or no successor was reachable yet.
			res.failover++
		default:
			log.Printf("lockload: worker %d: release %q: %v", w, key, relErr)
			res.errors++
			return
		}
	}
}

// dialWorker opens one connection+session; errors count, not crash.
func dialWorker(cfg runCfg, w int, res *worker) (*client.Conn, uint64, bool) {
	c, err := client.Dial(cfg.addr)
	if err != nil {
		log.Printf("lockload: worker %d: dial: %v", w, err)
		res.errors++
		return nil, 0, false
	}
	sid, err := c.Open(cfg.lease)
	if err != nil {
		log.Printf("lockload: worker %d: open: %v", w, err)
		res.errors++
		c.Close()
		return nil, 0, false
	}
	return c, sid, true
}

// runClosed is the closed-loop worker. At depth 1 it pipelines the
// previous transaction's release with the next acquire (holding each
// lock across the flush gap, honoring -hold); at depth > 1 it pipelines
// depth complete acquire+release transactions per flush and records the
// flush round trip as the latency of each.
func runClosed(cfg runCfg, w int, names []string, res *worker, stop *atomic.Bool, gen *atomic.Uint32) {
	c, sid, ok := dialWorker(cfg, w, res)
	if !ok {
		return
	}
	defer c.Close()
	defer c.CloseSession(sid)
	rng := rand.New(rand.NewSource(int64(w) + 1))
	pick := cfg.picker(rng, len(names))
	var lastGen uint32
	var errs []error

	if cfg.depth > 1 {
		type slot struct {
			key  string
			excl bool
		}
		slots := make([]slot, cfg.depth)
		for !stop.Load() {
			if g := gen.Load(); g != lastGen {
				lastGen = g
				res.reset()
			}
			for i := range slots {
				slots[i] = slot{names[pick()], rng.Intn(100) >= cfg.readPct}
			}
			t0 := time.Now()
			for _, s := range slots {
				c.QueueAcquire(sid, s.key, s.excl, cfg.wait)
				c.QueueRelease(sid, s.key, s.excl)
			}
			var err error
			errs, err = c.Flush(errs[:0])
			if err != nil {
				log.Printf("lockload: worker %d: flush: %v", w, err)
				res.errors++
				return
			}
			rtt := uint64(time.Since(t0))
			for i := 0; i < len(errs); i += 2 {
				acqErr, relErr := errs[i], errs[i+1]
				switch {
				case acqErr == lockmgr.ErrTimeout:
					res.timeouts++
					if relErr != lockmgr.ErrNotHeld {
						log.Printf("lockload: worker %d: release after timeout: %v", w, relErr)
						res.errors++
						return
					}
				case acqErr != nil || relErr != nil:
					log.Printf("lockload: worker %d: pair: %v / %v", w, acqErr, relErr)
					res.errors++
					return
				default:
					res.pairs++
					res.lat.Add(rtt)
				}
			}
		}
		return
	}

	// Depth 1: the previous iteration's release is pipelined with the
	// next acquire, so the lock is held across the flush gap and a pair
	// costs one write and one (coalesced) read on each side. Clock reads
	// are a measurable slice of the budget, so latency samples 1-in-16.
	const latSample = 16
	var seq uint64
	var t0 time.Time
	held := false
	var heldKey string
	var heldExcl bool
	for !stop.Load() {
		if g := gen.Load(); g != lastGen {
			lastGen = g
			res.reset()
		}
		key := names[pick()]
		excl := rng.Intn(100) >= cfg.readPct
		sampled := seq&(latSample-1) == 0
		seq++
		if sampled {
			t0 = time.Now()
		}
		if held {
			c.QueueRelease(sid, heldKey, heldExcl)
		}
		c.QueueAcquire(sid, key, excl, cfg.wait)
		var err error
		errs, err = c.Flush(errs[:0])
		if err != nil {
			log.Printf("lockload: worker %d: flush: %v", w, err)
			res.errors++
			return
		}
		if held {
			if errs[0] != nil {
				log.Printf("lockload: worker %d: release: %v", w, errs[0])
				res.errors++
				return
			}
			res.pairs++
		}
		acqErr := errs[len(errs)-1]
		if acqErr == lockmgr.ErrTimeout {
			res.timeouts++
			held = false
			continue
		}
		if acqErr != nil {
			log.Printf("lockload: worker %d: acquire: %v", w, acqErr)
			res.errors++
			return
		}
		if sampled {
			res.lat.Add(uint64(time.Since(t0)))
		}
		held, heldKey, heldExcl = true, key, excl
		if cfg.hold > 0 {
			time.Sleep(cfg.hold)
		}
	}
	if held {
		if err := c.Release(sid, heldKey, heldExcl); err == nil {
			res.pairs++
		}
	}
}

// runOpen is the open-loop worker: Poisson arrivals at rate/conns
// transactions/s, every transaction timed from its scheduled arrival.
// If the previous transaction ran long the next one starts late but its
// latency clock started on schedule — queueing delay is charged to the
// response time, never hidden in the arrival process.
func runOpen(cfg runCfg, w int, names []string, res *worker, stop *atomic.Bool, gen *atomic.Uint32) {
	c, sid, ok := dialWorker(cfg, w, res)
	if !ok {
		return
	}
	defer c.Close()
	defer c.CloseSession(sid)
	rng := rand.New(rand.NewSource(int64(w) + 1))
	pick := cfg.picker(rng, len(names))
	lambda := cfg.rate / float64(cfg.conns) // this worker's arrivals/s
	var lastGen uint32
	var errs []error

	next := time.Now()
	for !stop.Load() {
		if g := gen.Load(); g != lastGen {
			lastGen = g
			res.reset()
		}
		next = next.Add(time.Duration(rng.ExpFloat64() / lambda * 1e9))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		key := names[pick()]
		excl := rng.Intn(100) >= cfg.readPct
		c.QueueAcquire(sid, key, excl, cfg.wait)
		c.QueueRelease(sid, key, excl)
		var err error
		errs, err = c.Flush(errs[:0])
		if err != nil {
			log.Printf("lockload: worker %d: flush: %v", w, err)
			res.errors++
			return
		}
		acqErr, relErr := errs[0], errs[1]
		switch {
		case acqErr == lockmgr.ErrTimeout:
			res.timeouts++
			if relErr != lockmgr.ErrNotHeld {
				log.Printf("lockload: worker %d: release after timeout: %v", w, relErr)
				res.errors++
				return
			}
		case acqErr != nil || relErr != nil:
			log.Printf("lockload: worker %d: pair: %v / %v", w, acqErr, relErr)
			res.errors++
			return
		default:
			res.pairs++
			// Latency from the scheduled arrival, not the send.
			res.lat.Add(uint64(time.Since(next)))
		}
	}
}
