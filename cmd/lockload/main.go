// lockload is a closed-loop load generator for lockd: N worker
// goroutines, each with its own connection and session, hammer a shared
// keyspace with acquire/release pairs at a configured read ratio and
// report throughput plus acquire-latency percentiles (per-worker
// internal/stats histograms, merged).
//
// One run:
//
//	lockload -addr 127.0.0.1:7600 -conns 8 -duration 5s -readpct 90
//
// A read-ratio sweep (one run per point, one table at the end):
//
//	lockload -sweep 0,50,90,99,100 -duration 2s
//
// The exit status is non-zero if any operation failed (timeouts on try or
// timed acquires are contention, not failures), so CI can use a short
// burst as a smoke test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/client"
	"fairrw/internal/stats"
)

type result struct {
	readPct  int
	elapsed  time.Duration
	pairs    uint64 // successful acquire+release cycles
	timeouts uint64
	errors   uint64
	lat      stats.Histogram // sampled flush (release+acquire) round-trip latency, ns
}

// ops is the wire-operation count: one acquire plus one release per pair.
func (r *result) ops() uint64 { return 2 * r.pairs }

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7600", "lockd address")
		conns    = flag.Int("conns", 8, "concurrent client goroutines (one connection + session each)")
		duration = flag.Duration("duration", 5*time.Second, "measurement window per run")
		readPct  = flag.Int("readpct", 90, "percentage of acquires that are shared")
		keys     = flag.Int("keys", 16, "distinct lock names")
		wait     = flag.Duration("wait", time.Second, "acquire wait bound (FIFO timed acquire)")
		lease    = flag.Duration("lease", 10*time.Second, "session lease")
		hold     = flag.Duration("hold", 0, "critical-section hold time")
		sweepArg = flag.String("sweep", "", "comma-separated read percentages; one run per point")
	)
	flag.Parse()

	points := []int{*readPct}
	if *sweepArg != "" {
		points = points[:0]
		for _, s := range strings.Split(*sweepArg, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || p < 0 || p > 100 {
				log.Fatalf("lockload: bad -sweep point %q", s)
			}
			points = append(points, p)
		}
	}

	fmt.Printf("lockload: %d conns, %v/run, %d keys, wait %v, hold %v -> %s\n",
		*conns, *duration, *keys, *wait, *hold, *addr)
	fmt.Printf("%7s %12s %12s %10s %10s %10s %9s %7s\n",
		"read%", "pairs", "ops/s", "p50(us)", "p99(us)", "max(us)", "timeouts", "errors")
	var failed bool
	for _, p := range points {
		r := run(*addr, *conns, *duration, p, *keys, *wait, *lease, *hold)
		fmt.Printf("%7d %12d %12.0f %10.1f %10.1f %10.1f %9d %7d\n",
			r.readPct, r.pairs, float64(r.ops())/r.elapsed.Seconds(),
			r.lat.Percentile(50)/1e3, r.lat.Percentile(99)/1e3, float64(r.lat.Max())/1e3,
			r.timeouts, r.errors)
		if r.errors > 0 {
			failed = true
		}
	}

	if c, err := client.Dial(*addr); err == nil {
		if raw, err := c.Stats(); err == nil {
			var snap lockmgr.Snapshot
			if json.Unmarshal(raw, &snap) == nil {
				fmt.Printf("server: %d shared + %d excl grants, %d timeouts, %d lease expirations, %d entries, wait p99 %.1fus\n",
					snap.SharedGrants, snap.ExclGrants, snap.Timeouts,
					snap.LeaseExpirations, snap.Entries, snap.WaitP99US)
			}
		}
		c.Close()
	}
	if failed {
		os.Exit(1)
	}
}

// run drives one closed-loop measurement window at the given read ratio.
func run(addr string, conns int, duration time.Duration, readPct, keys int,
	wait, lease, hold time.Duration) result {

	var stop atomic.Bool
	results := make([]result, conns)
	names := make([]string, keys)
	for i := range names {
		names[i] = fmt.Sprintf("key-%04d", i)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &results[w]
			c, err := client.Dial(addr)
			if err != nil {
				log.Printf("lockload: worker %d: dial: %v", w, err)
				r.errors++
				return
			}
			defer c.Close()
			sid, err := c.Open(lease)
			if err != nil {
				log.Printf("lockload: worker %d: open: %v", w, err)
				r.errors++
				return
			}
			defer c.CloseSession(sid)
			rng := rand.New(rand.NewSource(int64(w) + 1))
			// Clock reads are a measurable slice of a closed-loop worker's
			// budget, so latency is sampled 1-in-16 rather than timed on
			// every op.
			const latSample = 16
			var seq uint64
			var t0 time.Time
			var errs []error
			// The previous iteration's release is pipelined with the next
			// acquire: one write carries both requests and the server
			// coalesces both responses, halving the syscalls per pair.
			held := false
			var heldKey string
			var heldExcl bool
			for !stop.Load() {
				key := names[rng.Intn(keys)]
				excl := rng.Intn(100) >= readPct
				sampled := seq&(latSample-1) == 0
				seq++
				if sampled {
					t0 = time.Now()
				}
				if held {
					c.QueueRelease(sid, heldKey, heldExcl)
				}
				c.QueueAcquire(sid, key, excl, wait)
				var err error
				errs, err = c.Flush(errs[:0])
				if err != nil {
					log.Printf("lockload: worker %d: flush: %v", w, err)
					r.errors++
					return
				}
				if held {
					if errs[0] != nil {
						log.Printf("lockload: worker %d: release: %v", w, errs[0])
						r.errors++
						return
					}
					r.pairs++
				}
				acqErr := errs[len(errs)-1]
				if acqErr == lockmgr.ErrTimeout {
					r.timeouts++
					held = false
					continue
				}
				if acqErr != nil {
					log.Printf("lockload: worker %d: acquire: %v", w, acqErr)
					r.errors++
					return
				}
				if sampled {
					r.lat.Add(uint64(time.Since(t0)))
				}
				held, heldKey, heldExcl = true, key, excl
				if hold > 0 {
					time.Sleep(hold)
				}
			}
			if held {
				if err := c.Release(sid, heldKey, heldExcl); err == nil {
					r.pairs++
				}
			}
		}()
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	total := result{readPct: readPct, elapsed: time.Since(start)}
	for i := range results {
		total.pairs += results[i].pairs
		total.timeouts += results[i].timeouts
		total.errors += results[i].errors
		total.lat.Merge(&results[i].lat)
	}
	return total
}
