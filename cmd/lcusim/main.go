// Command lcusim regenerates the paper's tables and figures from the
// simulator: Figure 1 (mechanism comparison), Figure 8 (model parameters),
// Figures 9-10 (critical-section microbenchmark), Figures 11-12 (STM
// benchmarks) and Figure 13 (applications).
//
// Independent configurations within a figure are fanned out across a
// worker pool (-parallel); results render in deterministic order, so the
// output is byte-identical at any worker count.
//
// Usage:
//
//	lcusim [-iters N] [-stmops N] [-runs N] [-parallel N] [-cpuprofile F] <target>...
//
// Targets: table1 table8 fig9a fig9b fig10a fig10b fig11a fig11b
// fig12a fig12b fig13 micro stm all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"fairrw/internal/bench"
)

func main() {
	cfg := bench.Default()
	flag.IntVar(&cfg.Iters, "iters", cfg.Iters, "critical-section entries per microbenchmark configuration")
	flag.IntVar(&cfg.STMOps, "stmops", cfg.STMOps, "operations per thread in STM benchmarks")
	flag.IntVar(&cfg.Fig13Runs, "runs", cfg.Fig13Runs, "seeds per Figure 13 configuration")
	flag.IntVar(&cfg.Parallel, "parallel", 0, "sweep workers (0 = one per CPU, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lcusim [flags] <target>...")
		fmt.Fprintln(os.Stderr, "targets: table1 table8 fig9a fig9b fig10a fig10b fig11a fig11b fig12a fig12b fig13 micro stm all")
		flag.PrintDefaults()
	}
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lcusim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lcusim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	run := map[string]func(){
		"table1": func() { bench.Table1(os.Stdout) },
		"table8": func() { bench.Table8(os.Stdout) },
		"fig9a":  func() { cfg.Fig9(os.Stdout, "A") },
		"fig9b":  func() { cfg.Fig9(os.Stdout, "B") },
		"fig10a": func() { cfg.Fig10(os.Stdout, "A") },
		"fig10b": func() { cfg.Fig10(os.Stdout, "B") },
		"fig11a": func() { cfg.Fig11(os.Stdout, "A") },
		"fig11b": func() { cfg.Fig11(os.Stdout, "B") },
		"fig12a": func() { cfg.Fig12(os.Stdout, "A") },
		"fig12b": func() { cfg.Fig12(os.Stdout, "B") },
		"fig13":  func() { cfg.Fig13(os.Stdout) },
	}
	groups := map[string][]string{
		"micro": {"fig9a", "fig9b", "fig10a", "fig10b"},
		"stm":   {"fig11a", "fig11b", "fig12a", "fig12b"},
		"all": {"table1", "table8", "fig9a", "fig9b", "fig10a", "fig10b",
			"fig11a", "fig11b", "fig12a", "fig12b", "fig13"},
	}

	var expand func(t string) []string
	expand = func(t string) []string {
		if g, ok := groups[t]; ok {
			var out []string
			for _, x := range g {
				out = append(out, expand(x)...)
			}
			return out
		}
		return []string{t}
	}

	// Validate every target before running anything, so a typo can't waste
	// a long sweep (or truncate an in-flight CPU profile).
	var todo []func()
	for _, t := range targets {
		for _, x := range expand(t) {
			f, ok := run[x]
			if !ok {
				fmt.Fprintf(os.Stderr, "lcusim: unknown target %q\n", x)
				os.Exit(2)
			}
			todo = append(todo, f)
		}
	}
	for _, f := range todo {
		f()
	}
}
