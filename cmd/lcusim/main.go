// Command lcusim regenerates the paper's tables and figures from the
// simulator: Figure 1 (mechanism comparison), Figure 8 (model parameters),
// Figures 9-10 (critical-section microbenchmark), Figures 11-12 (STM
// benchmarks) and Figure 13 (applications).
//
// Independent configurations within a figure are fanned out across a
// worker pool (-parallel); results render in deterministic order, so the
// output — including any trace or metrics file — is byte-identical at any
// worker count.
//
// Usage:
//
//	lcusim [-iters N] [-stmops N] [-runs N] [-parallel N] [-allocstats]
//	       [-cpuprofile F] [-memprofile F] [-trace F] [-metrics F] <target>...
//	lcusim trace <target>...          # shorthand: -trace lcusim.trace.json
//	                                  #            -metrics lcusim.metrics.json
//	lcusim tracecheck <trace.json>    # validate a trace file (CI smoke)
//
// Targets: table1 table8 fig9a fig9b fig10a fig10b fig11a fig11b
// fig12a fig12b fig13 micro stm all
//
// -trace writes Chrome trace-event JSON: open it at https://ui.perfetto.dev
// (or chrome://tracing) to see per-core, per-LRT and link-occupancy tracks
// for every simulated run. -metrics writes acquire-latency/transfer-time
// histograms, queue-depth samples and per-link occupancy bins as JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"fairrw/internal/bench"
	"fairrw/internal/obs"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lcusim: "+format+"\n", args...)
	os.Exit(1)
}

// create opens an output file, exiting on error. All output files are
// created after target validation but before any sweep runs, so a bad path
// cannot waste a long simulation.
func create(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	return f
}

func main() {
	cfg := bench.Default()
	flag.IntVar(&cfg.Iters, "iters", cfg.Iters, "critical-section entries per microbenchmark configuration")
	flag.IntVar(&cfg.STMOps, "stmops", cfg.STMOps, "operations per thread in STM benchmarks")
	flag.IntVar(&cfg.Fig13Runs, "runs", cfg.Fig13Runs, "seeds per Figure 13 configuration")
	flag.IntVar(&cfg.Parallel, "parallel", 0, "sweep workers (0 = one per CPU, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-viewable) to this file")
	metricsOut := flag.String("metrics", "", "write run metrics (histograms, link occupancy) as JSON to this file")
	allocstats := flag.Bool("allocstats", false, "report per-target allocation stats (runtime.MemStats delta) on stderr")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lcusim [flags] <target>...")
		fmt.Fprintln(os.Stderr, "       lcusim trace <target>...        (default -trace/-metrics files)")
		fmt.Fprintln(os.Stderr, "       lcusim tracecheck <trace.json>  (validate a trace file)")
		fmt.Fprintln(os.Stderr, "targets: table1 table8 fig9a fig9b fig10a fig10b fig11a fig11b fig12a fig12b fig13 micro stm all")
		flag.PrintDefaults()
	}
	flag.Parse()

	targets := flag.Args()
	if len(targets) > 0 {
		switch targets[0] {
		case "tracecheck":
			os.Exit(tracecheck(targets[1:]))
		case "trace":
			targets = targets[1:]
			if *traceOut == "" {
				*traceOut = "lcusim.trace.json"
			}
			if *metricsOut == "" {
				*metricsOut = "lcusim.metrics.json"
			}
		}
	}
	if len(targets) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	run := map[string]func(){
		"table1": func() { bench.Table1(os.Stdout) },
		"table8": func() { bench.Table8(os.Stdout) },
		"fig9a":  func() { cfg.Fig9(os.Stdout, "A") },
		"fig9b":  func() { cfg.Fig9(os.Stdout, "B") },
		"fig10a": func() { cfg.Fig10(os.Stdout, "A") },
		"fig10b": func() { cfg.Fig10(os.Stdout, "B") },
		"fig11a": func() { cfg.Fig11(os.Stdout, "A") },
		"fig11b": func() { cfg.Fig11(os.Stdout, "B") },
		"fig12a": func() { cfg.Fig12(os.Stdout, "A") },
		"fig12b": func() { cfg.Fig12(os.Stdout, "B") },
		"fig13":  func() { cfg.Fig13(os.Stdout) },
	}
	groups := map[string][]string{
		"micro": {"fig9a", "fig9b", "fig10a", "fig10b"},
		"stm":   {"fig11a", "fig11b", "fig12a", "fig12b"},
		"all": {"table1", "table8", "fig9a", "fig9b", "fig10a", "fig10b",
			"fig11a", "fig11b", "fig12a", "fig12b", "fig13"},
	}

	var expand func(t string) []string
	expand = func(t string) []string {
		if g, ok := groups[t]; ok {
			var out []string
			for _, x := range g {
				out = append(out, expand(x)...)
			}
			return out
		}
		return []string{t}
	}

	// Validate every target before creating files or running anything, so a
	// typo can't waste a long sweep (or truncate an in-flight CPU profile).
	type target struct {
		name string
		f    func()
	}
	var todo []target
	for _, t := range targets {
		for _, x := range expand(t) {
			f, ok := run[x]
			if !ok {
				fmt.Fprintf(os.Stderr, "lcusim: unknown target %q\n", x)
				os.Exit(2)
			}
			todo = append(todo, target{x, f})
		}
	}

	// Open every output file up front: creation errors exit here, before
	// any sweep has burned CPU.
	var cpuF, memF, traceF, metricsF *os.File
	if *cpuprofile != "" {
		cpuF = create(*cpuprofile)
		defer cpuF.Close()
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			fatalf("%v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		memF = create(*memprofile)
		defer memF.Close()
	}
	if *traceOut != "" {
		traceF = create(*traceOut)
	}
	if *metricsOut != "" {
		metricsF = create(*metricsOut)
	}

	if traceF != nil || metricsF != nil {
		cfg.Obs = &obs.Collector{Opt: obs.Options{
			Records: traceF != nil,
			Metrics: true,
			Cache:   true,
		}}
	}

	for _, t := range todo {
		if !*allocstats {
			t.f()
			continue
		}
		// Allocation stats go to stderr so stdout stays byte-identical to a
		// run without the flag.
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t.f()
		runtime.ReadMemStats(&after)
		fmt.Fprintf(os.Stderr, "lcusim: allocstats %-7s %8.2f MB  %10d allocs  (%d GCs)\n",
			t.name,
			float64(after.TotalAlloc-before.TotalAlloc)/(1<<20),
			after.Mallocs-before.Mallocs,
			after.NumGC-before.NumGC)
	}

	if traceF != nil {
		if err := cfg.Obs.WriteChrome(traceF); err != nil {
			fatalf("writing %s: %v", *traceOut, err)
		}
		if err := traceF.Close(); err != nil {
			fatalf("writing %s: %v", *traceOut, err)
		}
		fmt.Fprintf(os.Stderr, "lcusim: trace written to %s (open at https://ui.perfetto.dev)\n", *traceOut)
	}
	if metricsF != nil {
		if err := cfg.Obs.WriteMetrics(metricsF); err != nil {
			fatalf("writing %s: %v", *metricsOut, err)
		}
		if err := metricsF.Close(); err != nil {
			fatalf("writing %s: %v", *metricsOut, err)
		}
		fmt.Fprintf(os.Stderr, "lcusim: metrics written to %s\n", *metricsOut)
	}
	if memF != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(memF); err != nil {
			fatalf("writing %s: %v", *memprofile, err)
		}
	}
}

// tracecheck validates a Chrome trace file: well-formed JSON with a
// traceEvents array holding at least one non-metadata event. Used by the
// CI smoke job.
func tracecheck(args []string) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: lcusim tracecheck <trace.json>")
		return 2
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcusim: tracecheck: %v\n", err)
		return 1
	}
	defer f.Close()
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(bufio.NewReader(f))
	if err := dec.Decode(&doc); err != nil {
		fmt.Fprintf(os.Stderr, "lcusim: tracecheck: %s: invalid JSON: %v\n", args[0], err)
		return 1
	}
	events := 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			events++
		}
	}
	if events == 0 {
		fmt.Fprintf(os.Stderr, "lcusim: tracecheck: %s: no non-metadata trace events\n", args[0])
		return 1
	}
	fmt.Printf("lcusim: tracecheck: %s ok (%d events, %d non-metadata)\n", args[0], len(doc.TraceEvents), events)
	return 0
}
