// Command lcusim regenerates the paper's tables and figures from the
// simulator: Figure 1 (mechanism comparison), Figure 8 (model parameters),
// Figures 9-10 (critical-section microbenchmark), Figures 11-12 (STM
// benchmarks) and Figure 13 (applications).
//
// Usage:
//
//	lcusim [-iters N] [-stmops N] [-runs N] <target>...
//
// Targets: table1 table8 fig9a fig9b fig10a fig10b fig11a fig11b
// fig12a fig12b fig13 micro stm all
package main

import (
	"flag"
	"fmt"
	"os"

	"fairrw/internal/bench"
)

func main() {
	iters := flag.Int("iters", 8000, "critical-section entries per microbenchmark configuration")
	stmops := flag.Int("stmops", 60, "operations per thread in STM benchmarks")
	runs := flag.Int("runs", 5, "seeds per Figure 13 configuration")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lcusim [flags] <target>...")
		fmt.Fprintln(os.Stderr, "targets: table1 table8 fig9a fig9b fig10a fig10b fig11a fig11b fig12a fig12b fig13 micro stm all")
		flag.PrintDefaults()
	}
	flag.Parse()
	bench.Iters = *iters
	bench.STMOps = *stmops
	bench.Fig13Runs = *runs

	targets := flag.Args()
	if len(targets) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	run := map[string]func(){
		"table1": func() { bench.Table1(os.Stdout) },
		"table8": func() { bench.Table8(os.Stdout) },
		"fig9a":  func() { bench.Fig9(os.Stdout, "A") },
		"fig9b":  func() { bench.Fig9(os.Stdout, "B") },
		"fig10a": func() { bench.Fig10(os.Stdout, "A") },
		"fig10b": func() { bench.Fig10(os.Stdout, "B") },
		"fig11a": func() { bench.Fig11(os.Stdout, "A") },
		"fig11b": func() { bench.Fig11(os.Stdout, "B") },
		"fig12a": func() { bench.Fig12(os.Stdout, "A") },
		"fig12b": func() { bench.Fig12(os.Stdout, "B") },
		"fig13":  func() { bench.Fig13(os.Stdout) },
	}
	groups := map[string][]string{
		"micro": {"fig9a", "fig9b", "fig10a", "fig10b"},
		"stm":   {"fig11a", "fig11b", "fig12a", "fig12b"},
		"all": {"table1", "table8", "fig9a", "fig9b", "fig10a", "fig10b",
			"fig11a", "fig11b", "fig12a", "fig12b", "fig13"},
	}

	var expand func(t string) []string
	expand = func(t string) []string {
		if g, ok := groups[t]; ok {
			var out []string
			for _, x := range g {
				out = append(out, expand(x)...)
			}
			return out
		}
		return []string{t}
	}

	for _, t := range targets {
		for _, x := range expand(t) {
			f, ok := run[x]
			if !ok {
				fmt.Fprintf(os.Stderr, "lcusim: unknown target %q\n", x)
				os.Exit(2)
			}
			f()
		}
	}
}
