// lockd is the fair lock service daemon: a lockmgr.Manager (the software
// LRT — named fair RW locks with sessions and lease-based revocation)
// served over the length-prefixed binary protocol in
// internal/lockmgr/wire.
//
// Run it, point cmd/lockload or any wire client at it, and SIGTERM it
// for a graceful drain: in-flight acquires get definitive responses,
// sessions are revoked, and -metrics dumps the run's counters and wait
// percentiles as JSON.
//
//	lockd -addr 127.0.0.1:7600 -metrics metrics.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7600", "TCP listen address")
		shards       = flag.Int("shards", 32, "lock-table shards (rounded up to a power of two)")
		sweep        = flag.Duration("sweep", 10*time.Millisecond, "lease reaper / entry GC period")
		defaultLease = flag.Duration("default-lease", 10*time.Second, "lease for sessions that open without one")
		maxLease     = flag.Duration("max-lease", time.Minute, "cap on requested leases")
		idle         = flag.Duration("idle", 2*time.Second, "idle time before an unused lock entry is collected")
		grace        = flag.Duration("grace", 5*time.Second, "drain grace period on shutdown")
		workers      = flag.Int("workers", 0, "event-loop workers (0 = GOMAXPROCS)")
		metricsPath  = flag.String("metrics", "", "write metrics JSON here on shutdown (\"-\" = stdout)")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lockd: listen: %v", err)
	}
	mgr := lockmgr.New(lockmgr.Config{
		Shards:        *shards,
		SweepInterval: *sweep,
		DefaultLease:  *defaultLease,
		MaxLease:      *maxLease,
		IdleTTL:       *idle,
	})
	srv := server.NewWithConfig(mgr, server.Config{Workers: *workers})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("lockd: %v: draining (grace %v)", s, *grace)
		srv.Shutdown(*grace)
	}()

	log.Printf("lockd: serving on %s (%d shards, sweep %v, %d workers)",
		ln.Addr(), *shards, *sweep, srv.Workers())
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("lockd: serve: %v", err)
	}

	snap := mgr.Stats()
	log.Printf("lockd: drained: %d shared + %d excl grants, %d lease expirations, %d revoked holds, wait p50 %.1fus p99 %.1fus",
		snap.SharedGrants, snap.ExclGrants, snap.LeaseExpirations, snap.RevokedHolds, snap.WaitP50US, snap.WaitP99US)
	if *metricsPath != "" {
		out, err := json.MarshalIndent(snap, "", " ")
		if err != nil {
			log.Fatalf("lockd: marshal metrics: %v", err)
		}
		out = append(out, '\n')
		if *metricsPath == "-" {
			fmt.Print(string(out))
		} else if err := os.WriteFile(*metricsPath, out, 0o644); err != nil {
			log.Fatalf("lockd: write metrics: %v", err)
		}
	}
}
