// lockd is the fair lock service daemon: a lockmgr.Manager (the software
// LRT — named fair RW locks with sessions and lease-based revocation)
// served over the length-prefixed binary protocol in
// internal/lockmgr/wire.
//
// Run it, point cmd/lockload or any wire client at it, and SIGTERM it
// for a graceful drain: in-flight acquires get definitive responses,
// sessions are revoked, and -metrics dumps the run's counters and wait
// percentiles as JSON.
//
// With -admin the daemon is observable while it runs: the admin HTTP
// listener serves live metrics as Prometheus text (/metrics) and JSON
// (/metrics.json), the per-lock contention table (/hotlocks), the
// grant-path flight recorder (/flight), and net/http/pprof
// (/debug/pprof/). SIGUSR1 dumps metrics on demand, SIGQUIT dumps the
// flight recorder to stderr, -metrics-interval flushes the metrics file
// periodically so a crashed daemon still leaves recent numbers behind,
// and -slowlock logs every pathologically slow acquire as a structured
// one-liner.
//
//	lockd -addr 127.0.0.1:7600 -admin 127.0.0.1:7601 \
//	      -metrics metrics.json -metrics-interval 10s -slowlock 100ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"fairrw/internal/lockmgr"
	"fairrw/internal/lockmgr/cluster"
	"fairrw/internal/lockmgr/introspect"
	"fairrw/internal/lockmgr/server"
)

// The node is the server's cluster gate; keep the contract pinned at
// compile time.
var _ server.Cluster = (*cluster.Node)(nil)

// buildInfo assembles the binary's identity: module version (plus VCS
// revision when the toolchain stamped one) and the Go version. This is
// what makes a metrics payload or bench row attributable to a build.
func buildInfo() server.BuildInfo {
	bi := server.BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Version = info.Main.Version
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		// Newer toolchains already fold the revision into a VCS-derived
		// pseudo-version; only append when it adds information.
		if !strings.Contains(bi.Version, rev) {
			if dirty {
				rev += "-dirty"
			}
			bi.Version += "+" + rev
		} else if dirty && !strings.Contains(bi.Version, "dirty") {
			bi.Version += "+dirty"
		}
	}
	return bi
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7600", "TCP listen address")
		adminAddr    = flag.String("admin", "", "admin HTTP listen address (Prometheus /metrics, /metrics.json, /hotlocks, /flight, /debug/pprof); empty = disabled")
		shards       = flag.Int("shards", 32, "lock-table shards (rounded up to a power of two)")
		sweep        = flag.Duration("sweep", 10*time.Millisecond, "lease reaper / entry GC period")
		defaultLease = flag.Duration("default-lease", 10*time.Second, "lease for sessions that open without one")
		maxLease     = flag.Duration("max-lease", time.Minute, "cap on requested leases")
		idle         = flag.Duration("idle", 2*time.Second, "idle time before an unused lock entry is collected")
		grace        = flag.Duration("grace", 5*time.Second, "drain grace period on shutdown")
		workers      = flag.Int("workers", 0, "event-loop workers (0 = GOMAXPROCS; rounded down to a power of two when -affinity is on)")
		affinity     = flag.Bool("affinity", true, "shard-affine execution: route each op to the worker owning its lock's shard")
		flushPass    = flag.Duration("flushpass", 0, "flusher writev pass budget before a stalled conn escalates to its own writer (0 = default 20ms)")
		metricsPath  = flag.String("metrics", "", "write metrics JSON here on shutdown, SIGUSR1, and every -metrics-interval (\"-\" = stdout, shutdown only)")
		metricsIvl   = flag.Duration("metrics-interval", 0, "periodic metrics flush period (0 = shutdown/SIGUSR1 only)")
		slowlock     = flag.Duration("slowlock", 0, "log acquires whose queue wait reaches this threshold (0 = off)")
		cohortB      = flag.Int("cohort", 0, "cohort grant-batch bound B: prefer up to B consecutive grants from the releaser's locality domain before strict FIFO (0 = strict FIFO)")
		flightN      = flag.Int("flight-events", 256, "flight-recorder ring size per worker (0 = recorder off)")
		hotK         = flag.Int("hotlocks", 20, "hot-lock table depth in metrics payloads")
		clusterArg   = flag.String("cluster", "", "comma-separated member list, this node first (e.g. self:7600,peer:7600,...); enables clustered mode")
		hbIvl        = flag.Duration("hb", 250*time.Millisecond, "cluster heartbeat period")
		suspectAfter = flag.Int("suspect-after", 3, "consecutive heartbeat failures before a peer is declared dead")
		failWindow   = flag.Duration("failover-window", 0, "ghost-hold quarantine after a member death; must be >= -max-lease, which must be homogeneous across the cluster, so every lease the dead node could have granted has expired (0 = -max-lease; smaller values are rejected at startup)")
		showVersion  = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()

	bi := buildInfo()
	if *showVersion {
		fmt.Printf("lockd %s %s\n", bi.Version, bi.GoVersion)
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lockd: listen: %v", err)
	}

	var rec *introspect.Recorder
	if *flightN > 0 {
		// One ring per event-loop worker (the server keys by worker
		// index); the manager's grant/expiry events hash across the same
		// rings.
		nw := *workers
		if nw <= 0 {
			nw = runtime.GOMAXPROCS(0)
		}
		rec = introspect.NewRecorder(nw, *flightN)
	}
	slowFn := func(name string, sid uint64, excl bool, wait time.Duration) {
		log.Printf("lockd: slowlock lock=%q sid=%d excl=%v wait=%v", name, sid, excl, wait)
	}
	if *slowlock <= 0 {
		slowFn = nil
	}
	mgr := lockmgr.New(lockmgr.Config{
		Shards:        *shards,
		SweepInterval: *sweep,
		DefaultLease:  *defaultLease,
		MaxLease:      *maxLease,
		IdleTTL:       *idle,
		Recorder:      rec,
		SlowLock:      *slowlock,
		SlowLockFn:    slowFn,
		CohortBatch:   int32(*cohortB),
	})
	// Clustered mode: this node owns a rendezvous-hashed slice of the
	// namespace and gates every named op on ownership. The member list
	// names this node first; peers are heartbeated as ordinary wire
	// sessions and a dead peer's names rehash to the survivors.
	var node *cluster.Node
	if *clusterArg != "" {
		members := strings.Split(*clusterArg, ",")
		for i := range members {
			members[i] = strings.TrimSpace(members[i])
		}
		fw := *failWindow
		if fw <= 0 {
			// Every lease the dead node granted was capped at its
			// -max-lease; quarantining inherited names for the same
			// window guarantees those leases have expired before a
			// survivor re-grants. (NewNode rejects an explicit window
			// shorter than the manager's MaxLease for the same reason —
			// the invariant assumes -max-lease is homogeneous across
			// the cluster.)
			fw = *maxLease
		}
		var err error
		node, err = cluster.NewNode(cluster.Config{
			Self:           members[0],
			Members:        members,
			Manager:        mgr,
			Interval:       *hbIvl,
			SuspectAfter:   *suspectAfter,
			FailoverWindow: fw,
			Logf:           log.Printf,
		})
		if err != nil {
			log.Fatalf("lockd: cluster: %v", err)
		}
	}
	srvCfg := server.Config{
		Workers:    *workers,
		NoAffinity: !*affinity,
		FlushPass:  *flushPass,
		Recorder:   rec,
	}
	if node != nil {
		srvCfg.Cluster = node
	}
	srv := server.NewWithConfig(mgr, srvCfg)

	// writeMetrics serializes the full admin payload to the -metrics
	// path. Shutdown, SIGUSR1, and the periodic flusher all funnel
	// through here, serialized so a signal cannot interleave with a
	// ticker write.
	var metricsMu sync.Mutex
	writeMetrics := func(reason string) {
		if *metricsPath == "" {
			return
		}
		metricsMu.Lock()
		defer metricsMu.Unlock()
		out, err := json.MarshalIndent(srv.Metrics(bi, *hotK), "", " ")
		if err != nil {
			log.Printf("lockd: marshal metrics (%s): %v", reason, err)
			return
		}
		out = append(out, '\n')
		if *metricsPath == "-" {
			fmt.Print(string(out))
			return
		}
		// Write-then-rename so a crash mid-flush never truncates the
		// previous dump — the whole point of periodic flushing is that
		// the file survives an unclean death.
		tmp := *metricsPath + ".tmp"
		if err := os.WriteFile(tmp, out, 0o644); err != nil {
			log.Printf("lockd: write metrics (%s): %v", reason, err)
			return
		}
		if err := os.Rename(tmp, *metricsPath); err != nil {
			log.Printf("lockd: write metrics (%s): %v", reason, err)
		}
	}

	var adminSrv *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("lockd: admin listen: %v", err)
		}
		adminSrv = &http.Server{Handler: srv.AdminHandler(bi)}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && err != http.ErrServerClosed {
				log.Printf("lockd: admin serve: %v", err)
			}
		}()
		log.Printf("lockd: admin plane on http://%s (/metrics /metrics.json /hotlocks /flight /debug/pprof)", aln.Addr())
	}

	stopFlush := make(chan struct{})
	if *metricsIvl > 0 && *metricsPath != "" && *metricsPath != "-" {
		go func() {
			t := time.NewTicker(*metricsIvl)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					writeMetrics("interval")
				case <-stopFlush:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	dump := make(chan os.Signal, 1)
	signal.Notify(dump, syscall.SIGUSR1, syscall.SIGQUIT)
	go func() {
		for s := range dump {
			switch s {
			case syscall.SIGUSR1:
				log.Printf("lockd: SIGUSR1: dumping metrics")
				if *metricsPath != "" && *metricsPath != "-" {
					writeMetrics("SIGUSR1")
				} else {
					out, _ := json.MarshalIndent(srv.Metrics(bi, *hotK), "", " ")
					fmt.Fprintf(os.Stderr, "%s\n", out)
				}
			case syscall.SIGQUIT:
				log.Printf("lockd: SIGQUIT: flight recorder dump")
				if rec != nil {
					rec.Dump(os.Stderr)
				} else {
					fmt.Fprintln(os.Stderr, "(flight recorder disabled)")
				}
			}
		}
	}()
	go func() {
		s := <-sig
		log.Printf("lockd: %v: draining (grace %v)", s, *grace)
		srv.Shutdown(*grace)
	}()

	mode := "affinity"
	if !srv.Affinity() {
		mode = "no-affinity"
	}
	if node != nil {
		node.Start()
		log.Printf("lockd: cluster member %s of %v (hb %v, suspect after %d, failover window %v)",
			node.Self(), node.Current().Members(), *hbIvl, *suspectAfter, *failWindow)
	}
	log.Printf("lockd: %s %s serving on %s (%d shards, sweep %v, %d workers, %s)",
		bi.Version, bi.GoVersion, ln.Addr(), *shards, *sweep, srv.Workers(), mode)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("lockd: serve: %v", err)
	}
	if node != nil {
		node.Stop()
	}
	close(stopFlush)
	if adminSrv != nil {
		adminSrv.Close()
	}

	snap := mgr.Stats()
	log.Printf("lockd: drained: %d shared + %d excl grants, %d lease expirations, %d revoked holds, wait p50 %.1fus p99 %.1fus, hold p50 %.1fus",
		snap.SharedGrants, snap.ExclGrants, snap.LeaseExpirations, snap.RevokedHolds,
		snap.WaitP50US, snap.WaitP99US, snap.HoldP50US)
	writeMetrics("shutdown")
}
